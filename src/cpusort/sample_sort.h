// Parallel sample sort, in the style of gnu_parallel's balanced multiway
// mergesort / TBB parallel_sort (the library baselines of Section 6's "CPU
// Sort Baseline"): shard the input, sort shards locally, then produce the
// output with one parallel multiway merge.

#ifndef MGS_CPUSORT_SAMPLE_SORT_H_
#define MGS_CPUSORT_SAMPLE_SORT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cpusort/multiway_merge.h"
#include "util/thread_pool.h"

namespace mgs::cpusort {

/// Sorts data[0, n) ascending using aux[0, n) as scratch. Comparison-based
/// and stable; parallel across `pool` (null runs std::stable_sort).
template <typename T>
void SampleSort(T* data, T* aux, std::int64_t n, ThreadPool* pool = nullptr) {
  if (n <= 1) return;
  const int threads = pool ? std::max(1, pool->num_threads()) : 1;
  if (threads == 1 || n < 8192) {
    std::stable_sort(data, data + n);
    return;
  }
  // Phase 1: sort `threads` contiguous shards in parallel.
  const std::int64_t shard = (n + threads - 1) / threads;
  std::vector<MergeInput<T>> runs;
  for (int t = 0; t < threads; ++t) {
    const std::int64_t begin = t * shard;
    const std::int64_t end = std::min<std::int64_t>(begin + shard, n);
    if (begin >= end) break;
    runs.push_back(MergeInput<T>{data + begin, data + end});
    pool->Submit([data, begin, end] {
      std::stable_sort(data + begin, data + end);
    });
  }
  pool->Wait();
  // Phase 2: one parallel multiway merge into aux, then copy back.
  MultiwayMerge(runs, aux, pool);
  std::copy(aux, aux + n, data);
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_SAMPLE_SORT_H_
