// Parallel out-of-place LSB (least-significant-bit-first) radix sort, after
// Polychroniou & Ross (SIGMOD '14) without the SIMD intrinsics: per-thread
// histograms, a cross-thread prefix sum that assigns each thread a private
// scatter window per bucket, and a stable scatter pass per 8-bit digit.
//
// This is also the functional body of the Thrust/CUB device radix sort in
// the GPU simulator (src/gpusort).

#ifndef MGS_CPUSORT_LSB_RADIX_SORT_H_
#define MGS_CPUSORT_LSB_RADIX_SORT_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "cpusort/radix_traits.h"
#include "util/thread_pool.h"

namespace mgs::cpusort {

inline constexpr int kRadixBuckets = 256;

/// Sorts data[0, n) ascending using aux[0, n) as scratch. After return the
/// sorted result is in data (an extra copy pass is made if the final
/// ping-pong parity lands in aux). `pool` may be null for single-threaded.
template <typename T>
void LsbRadixSort(T* data, T* aux, std::int64_t n, ThreadPool* pool = nullptr) {
  if (n <= 1) return;
  const int digits = kRadixDigits<T>;
  T* src = data;
  T* dst = aux;

  const int threads = pool ? std::max(1, pool->num_threads()) : 1;
  const std::int64_t shard = (n + threads - 1) / threads;

  for (int d = 0; d < digits; ++d) {
    // Per-thread histograms.
    std::vector<std::array<std::int64_t, kRadixBuckets>> hist(
        static_cast<std::size_t>(threads));
    auto histogram = [&](int t) {
      auto& h = hist[static_cast<std::size_t>(t)];
      h.fill(0);
      const std::int64_t b = t * shard;
      const std::int64_t e = std::min<std::int64_t>(b + shard, n);
      for (std::int64_t i = b; i < e; ++i) ++h[RadixDigit(src[i], d)];
    };
    if (pool && threads > 1) {
      for (int t = 0; t < threads; ++t) pool->Submit([&, t] { histogram(t); });
      pool->Wait();
    } else {
      for (int t = 0; t < threads; ++t) histogram(t);
    }

    // Column-major prefix sum: thread t's write cursor for bucket b starts
    // after all lower buckets and after buckets b of threads < t. This
    // keeps the scatter stable.
    std::int64_t running = 0;
    std::vector<std::array<std::int64_t, kRadixBuckets>> offset(
        static_cast<std::size_t>(threads));
    for (int b = 0; b < kRadixBuckets; ++b) {
      for (int t = 0; t < threads; ++t) {
        offset[static_cast<std::size_t>(t)][b] = running;
        running += hist[static_cast<std::size_t>(t)][b];
      }
    }

    // Scatter.
    auto scatter = [&](int t) {
      auto& off = offset[static_cast<std::size_t>(t)];
      const std::int64_t b = t * shard;
      const std::int64_t e = std::min<std::int64_t>(b + shard, n);
      for (std::int64_t i = b; i < e; ++i) {
        dst[off[RadixDigit(src[i], d)]++] = src[i];
      }
    };
    if (pool && threads > 1) {
      for (int t = 0; t < threads; ++t) pool->Submit([&, t] { scatter(t); });
      pool->Wait();
    } else {
      for (int t = 0; t < threads; ++t) scatter(t);
    }

    std::swap(src, dst);
  }

  if (src != data) {
    std::copy(src, src + n, data);
  }
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_LSB_RADIX_SORT_H_
