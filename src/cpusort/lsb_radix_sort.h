// Parallel out-of-place LSB (least-significant-bit-first) radix sort, after
// Polychroniou & Ross (SIGMOD '14) without the SIMD intrinsics: per-thread
// histograms, a cross-thread prefix sum that assigns each thread a private
// scatter window per bucket, and a stable scatter pass per 8-bit digit.
//
// Cache behavior:
//  * the scatter goes through write-combining staging buffers — 256 small
//    cache-resident tails flushed with one wide contiguous store each —
//    instead of 256 random single-element write streams;
//  * the histograms for *all* digits are fused into one read pass up front,
//    sharded across the pool. Global per-digit counts are permutation-
//    invariant, so the skip plan for every pass falls out of that single
//    pass; the per-thread shard counts are only valid while the data is
//    still unpermuted, so they also seed the first unskipped pass's
//    histograms (and, summed, every pass when single-threaded). Later
//    passes re-count their shards per digit as before;
//  * passes whose histogram has a single occupied bucket are identity
//    permutations and are skipped outright (common for low-entropy keys
//    and for the high bytes of small-range integers).
//
// This is also the functional body of the Thrust/CUB device radix sort in
// the GPU simulator (src/gpusort).

#ifndef MGS_CPUSORT_LSB_RADIX_SORT_H_
#define MGS_CPUSORT_LSB_RADIX_SORT_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "cpusort/radix_traits.h"
#include "util/thread_pool.h"

namespace mgs::cpusort {

inline constexpr int kRadixBuckets = 256;

namespace lsb_internal {

/// Below this the whole working set is L1/L2-resident and staging overhead
/// costs more than the random stores it replaces.
inline constexpr std::int64_t kBufferedScatterMinN = 1 << 14;

/// ~1 KiB of staged entries per bucket, flushed with wide contiguous stores.
template <typename T>
constexpr std::int64_t ScatterBufEntries() {
  constexpr std::int64_t entries = 1024 / static_cast<std::int64_t>(sizeof(T));
  return entries < 32 ? 32 : entries;
}

/// Stable scatter of src[b, e) into dst through write-combining buffers.
/// off[k] is the caller's private write cursor for bucket k and is left at
/// its final position. buf must hold kRadixBuckets * ScatterBufEntries<T>()
/// entries (caller-owned so parallel passes reuse one allocation).
template <typename T>
void BufferedScatter(const T* src, T* dst, std::int64_t b, std::int64_t e,
                     int d, std::array<std::int64_t, kRadixBuckets>& off,
                     T* buf) {
  const std::int64_t w = ScatterBufEntries<T>();
  std::array<std::int32_t, kRadixBuckets> fill{};
  for (std::int64_t i = b; i < e; ++i) {
    const T v = src[i];
    const unsigned k = RadixDigit(v, d);
    T* stage = buf + static_cast<std::int64_t>(k) * w;
    stage[fill[k]++] = v;
    if (fill[k] == static_cast<std::int32_t>(w)) {
      std::copy(stage, stage + w, dst + off[k]);
      off[k] += w;
      fill[k] = 0;
    }
  }
  for (int k = 0; k < kRadixBuckets; ++k) {
    T* stage = buf + static_cast<std::int64_t>(k) * w;
    std::copy(stage, stage + fill[k], dst + off[k]);
    off[k] += fill[k];
  }
}

}  // namespace lsb_internal

/// Sorts data[0, n) ascending using aux[0, n) as scratch. After return the
/// sorted result is in data (an extra copy pass is made if the final
/// ping-pong parity lands in aux). `pool` may be null for single-threaded.
template <typename T>
void LsbRadixSort(T* data, T* aux, std::int64_t n, ThreadPool* pool = nullptr) {
  if (n <= 1) return;
  const int digits = kRadixDigits<T>;
  T* src = data;
  T* dst = aux;

  const int threads = pool ? std::max(1, pool->num_threads()) : 1;
  const std::int64_t shard = (n + threads - 1) / threads;
  const bool buffered = n / threads >= lsb_internal::kBufferedScatterMinN;
  const std::int64_t w = lsb_internal::ScatterBufEntries<T>();
  std::vector<T> wc;
  if (buffered) {
    wc.resize(static_cast<std::size_t>(threads * kRadixBuckets * w));
  }

  // Fused all-digits histogram: one sharded read pass counts every digit of
  // the input at once (thread t's rows live at fused[t * digits + d]). The
  // global sums are permutation-invariant — a stable scatter only permutes
  // the keys — so the digit-skip decision for *every* pass comes from this
  // single pass. The per-thread rows additionally equal the per-shard
  // histograms for as long as the data is unpermuted, i.e. up to and
  // including the first unskipped pass.
  std::vector<std::array<std::int64_t, kRadixBuckets>> fused(
      static_cast<std::size_t>(threads * digits));
  {
    auto fused_count = [&](int t) {
      auto* rows = fused.data() + static_cast<std::size_t>(t) * digits;
      for (int d = 0; d < digits; ++d) rows[d].fill(0);
      const std::int64_t b = t * shard;
      const std::int64_t e = std::min<std::int64_t>(b + shard, n);
      for (std::int64_t i = b; i < e; ++i) {
        for (int d = 0; d < digits; ++d) ++rows[d][RadixDigit(src[i], d)];
      }
    };
    if (pool && threads > 1) {
      for (int t = 0; t < threads; ++t)
        pool->Submit([&, t] { fused_count(t); });
      pool->Wait();
    } else {
      for (int t = 0; t < threads; ++t) fused_count(t);
    }
  }

  bool permuted = false;  // has any earlier pass rearranged the keys?
  for (int d = 0; d < digits; ++d) {
    // Digit skip: a single occupied bucket makes this pass the identity
    // permutation — don't touch the data (and don't flip the ping-pong).
    {
      int occupied = 0;
      for (int b = 0; b < kRadixBuckets && occupied < 2; ++b) {
        std::int64_t total = 0;
        for (int t = 0; t < threads; ++t)
          total += fused[static_cast<std::size_t>(t) * digits + d][b];
        occupied += total > 0;
      }
      if (occupied <= 1) continue;
    }

    // Per-thread histograms: free until the first scatter (the fused rows
    // still describe the current layout; single-threaded the summed counts
    // stay valid forever), one shard read pass per digit afterwards.
    std::vector<std::array<std::int64_t, kRadixBuckets>> hist(
        static_cast<std::size_t>(threads));
    if (threads == 1 || !permuted) {
      for (int t = 0; t < threads; ++t) {
        hist[static_cast<std::size_t>(t)] =
            fused[static_cast<std::size_t>(t) * digits + d];
      }
    } else {
      auto histogram = [&](int t) {
        auto& h = hist[static_cast<std::size_t>(t)];
        h.fill(0);
        const std::int64_t b = t * shard;
        const std::int64_t e = std::min<std::int64_t>(b + shard, n);
        for (std::int64_t i = b; i < e; ++i) ++h[RadixDigit(src[i], d)];
      };
      if (pool) {
        for (int t = 0; t < threads; ++t)
          pool->Submit([&, t] { histogram(t); });
        pool->Wait();
      } else {
        for (int t = 0; t < threads; ++t) histogram(t);
      }
    }

    // Column-major prefix sum: thread t's write cursor for bucket b starts
    // after all lower buckets and after buckets b of threads < t. This
    // keeps the scatter stable.
    std::int64_t running = 0;
    std::vector<std::array<std::int64_t, kRadixBuckets>> offset(
        static_cast<std::size_t>(threads));
    for (int b = 0; b < kRadixBuckets; ++b) {
      for (int t = 0; t < threads; ++t) {
        offset[static_cast<std::size_t>(t)][b] = running;
        running += hist[static_cast<std::size_t>(t)][b];
      }
    }

    // Scatter.
    auto scatter = [&](int t) {
      auto& off = offset[static_cast<std::size_t>(t)];
      const std::int64_t b = t * shard;
      const std::int64_t e = std::min<std::int64_t>(b + shard, n);
      if (buffered) {
        lsb_internal::BufferedScatter(
            src, dst, b, e, d, off,
            wc.data() + static_cast<std::int64_t>(t) * kRadixBuckets * w);
      } else {
        for (std::int64_t i = b; i < e; ++i) {
          dst[off[RadixDigit(src[i], d)]++] = src[i];
        }
      }
    };
    if (pool && threads > 1) {
      for (int t = 0; t < threads; ++t) pool->Submit([&, t] { scatter(t); });
      pool->Wait();
    } else {
      for (int t = 0; t < threads; ++t) scatter(t);
    }

    std::swap(src, dst);
    permuted = true;
  }

  if (src != data) {
    std::copy(src, src + n, data);
  }

  // Prefix-only keys (string/record normalized keys): the radix passes
  // ordered by encoded prefix; settle ties within equal-prefix runs.
  if constexpr (PrefixOnlyRadix<T>::value) {
    FixupPrefixTies(data, n);
  }
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_LSB_RADIX_SORT_H_
