// Bottom-up merge sort with ping-pong buffers. Serves as the functional
// body of the MGPU (Modern GPU) merge-sort primitive in the GPU simulator
// and as a comparison-based CPU baseline.

#ifndef MGS_CPUSORT_MERGE_SORT_H_
#define MGS_CPUSORT_MERGE_SORT_H_

#include <algorithm>
#include <cstdint>

#include "util/thread_pool.h"

namespace mgs::cpusort {

/// Sorts data[0, n) ascending using aux[0, n) as scratch. Stable. `pool`
/// parallelizes independent run merges within each pass.
template <typename T>
void MergeSort(T* data, T* aux, std::int64_t n, ThreadPool* pool = nullptr) {
  if (n <= 1) return;
  T* src = data;
  T* dst = aux;
  for (std::int64_t width = 1; width < n; width *= 2) {
    const std::int64_t pairs = (n + 2 * width - 1) / (2 * width);
    auto merge_pair = [&](std::int64_t p) {
      const std::int64_t lo = p * 2 * width;
      const std::int64_t mid = std::min(lo + width, n);
      const std::int64_t hi = std::min(lo + 2 * width, n);
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo);
    };
    if (pool && pool->num_threads() > 1 && pairs > 1 && n >= 4096) {
      pool->ParallelFor(pairs, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t p = b; p < e; ++p) merge_pair(p);
      }, /*min_shard=*/1);
    } else {
      for (std::int64_t p = 0; p < pairs; ++p) merge_pair(p);
    }
    std::swap(src, dst);
  }
  if (src != data) std::copy(src, src + n, data);
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_MERGE_SORT_H_
