// Parallel k-way merge, functionally equivalent to
// gnu_parallel::multiway_merge (Section 5.3): a loser tree gives log(k)
// comparisons per key; a multisequence selection splits the output range
// into independent shards so every pool thread merges its own slice.

#ifndef MGS_CPUSORT_MULTIWAY_MERGE_H_
#define MGS_CPUSORT_MULTIWAY_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cpusort/loser_tree.h"
#include "util/thread_pool.h"

namespace mgs::cpusort {

template <typename T>
struct MergeInput {
  const T* begin;
  const T* end;
  std::int64_t size() const { return end - begin; }
};

namespace multiway_internal {

/// Multisequence selection: finds, for a global rank r (0-based count of
/// keys), per-input split positions p_i with sum(p_i) == r such that every
/// key below a split is <= every key above any split (i.e. the splits
/// delimit the r smallest keys overall). Handles duplicates by distributing
/// the equal-key run left-to-right across inputs.
template <typename T>
std::vector<std::int64_t> MultisequenceSelect(
    const std::vector<MergeInput<T>>& inputs, std::int64_t rank) {
  const std::size_t k = inputs.size();
  std::vector<std::int64_t> splits(k, 0);
  if (rank <= 0) return splits;

  // Binary search over the value domain using a candidate key drawn from
  // the inputs: classic "find the key with global rank r" via repeatedly
  // picking the median candidate position.
  // We binary search on (input, position) candidates: collect the set of
  // all positions is too big; instead search each input's positions via a
  // global value-space binary search: find the smallest key v such that
  // count of keys < v is <= rank <= count of keys <= v.
  // Candidate values come from the inputs themselves (rank is achieved at
  // some key boundary).
  // Search bounds as (input index, offset) pairs are complex; simpler and
  // O(k log^2 n): binary search on the answer per a pivot value chosen by
  // bisection over one input at a time.
  //
  // Implementation: gather a sorted range of candidate pivots by binary
  // searching the value space through repeated probing.
  auto count_less = [&](const T& v) {
    std::int64_t c = 0;
    for (const auto& in : inputs) {
      c += std::lower_bound(in.begin, in.end, v) - in.begin;
    }
    return c;
  };
  auto count_less_equal = [&](const T& v) {
    std::int64_t c = 0;
    for (const auto& in : inputs) {
      c += std::upper_bound(in.begin, in.end, v) - in.begin;
    }
    return c;
  };

  // Binary search over candidate keys: the search space is the union of
  // input keys; we bisect by (input, index) lexicographic midpoints.
  // Maintain lo_i/hi_i bounds per input.
  std::vector<std::int64_t> lo(k, 0), hi(k);
  for (std::size_t i = 0; i < k; ++i) hi[i] = inputs[i].size();
  // The pivot v is the key at the midpoint of the largest remaining input
  // interval; converges since every round halves at least one interval.
  for (;;) {
    // Pick the input with the largest open interval.
    std::size_t best = k;
    std::int64_t best_len = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (hi[i] - lo[i] > best_len) {
        best_len = hi[i] - lo[i];
        best = i;
      }
    }
    if (best == k) break;  // all intervals empty: bounds converged
    const std::int64_t mid = lo[best] + (hi[best] - lo[best]) / 2;
    const T v = inputs[best].begin[mid];
    if (count_less(v) > rank) {
      // v is too large: discard positions >= mid in every input.
      for (std::size_t i = 0; i < k; ++i) {
        hi[i] = std::min<std::int64_t>(
            hi[i], std::lower_bound(inputs[i].begin, inputs[i].end, v) -
                       inputs[i].begin);
        if (hi[i] < lo[i]) lo[i] = hi[i];
      }
    } else if (count_less_equal(v) < rank) {
      // v is too small: discard positions <= those holding keys <= v.
      for (std::size_t i = 0; i < k; ++i) {
        lo[i] = std::max<std::int64_t>(
            lo[i], std::upper_bound(inputs[i].begin, inputs[i].end, v) -
                       inputs[i].begin);
        if (hi[i] < lo[i]) hi[i] = lo[i];
      }
    } else {
      // v is the boundary key: take all keys < v, then fill the remainder
      // from the equal-v runs, left to right.
      std::int64_t taken = 0;
      for (std::size_t i = 0; i < k; ++i) {
        splits[i] = std::lower_bound(inputs[i].begin, inputs[i].end, v) -
                    inputs[i].begin;
        taken += splits[i];
      }
      for (std::size_t i = 0; i < k && taken < rank; ++i) {
        const std::int64_t run_end =
            std::upper_bound(inputs[i].begin, inputs[i].end, v) -
            inputs[i].begin;
        const std::int64_t extra =
            std::min(run_end - splits[i], rank - taken);
        splits[i] += extra;
        taken += extra;
      }
      return splits;
    }
  }
  // Degenerate convergence (possible when rank == total): all bounds met.
  for (std::size_t i = 0; i < k; ++i) splits[i] = lo[i];
  return splits;
}

// Cache-sized staging for the buffered tree merge: every run streams
// through a small refillable input buffer (so the tournament's inner loop
// reads L1-resident memory regardless of k or run placement) and winners
// drain through a software-managed output buffer flushed in batches.
inline constexpr std::int64_t kMergeRunBufferBytes = 2048;
inline constexpr std::int64_t kMergeOutBufferBytes = 8192;

template <typename T>
constexpr std::int64_t MergeRunBufferEntries() {
  constexpr std::int64_t entries =
      kMergeRunBufferBytes / static_cast<std::int64_t>(sizeof(T));
  return entries < 16 ? 16 : entries;
}

template <typename T>
constexpr std::int64_t MergeOutBufferEntries() {
  constexpr std::int64_t entries =
      kMergeOutBufferBytes / static_cast<std::int64_t>(sizeof(T));
  return entries < 16 ? 16 : entries;
}

/// Buffered k-way loser-tree merge. Instead of element-at-a-time tournament
/// steps against the run cursors, the merge proceeds in guarded batches: a
/// batch is bounded by the smallest input-buffer residue (and the output
/// buffer's free space), so within a batch no run can drain and the inner
/// loop needs no bounds checks beyond one predictable buffer-end compare.
/// Exhausted runs drop out of the tournament entirely (the tree is rebuilt,
/// which happens at most k times). Stable across inputs: ties go to the
/// earlier input.
template <typename T>
void BufferedTreeMerge(const std::vector<MergeInput<T>>& inputs, T* out) {
  struct Run {
    const T* next;   // source refill cursor
    const T* end;    // source end
    T* buf_cur;      // consumption cursor within the staging buffer
    T* buf_end;      // end of valid staged data
    T* buf;          // staging buffer base
  };
  const std::int64_t buf_entries = MergeRunBufferEntries<T>();
  std::vector<Run> runs;
  runs.reserve(inputs.size());
  for (const auto& in : inputs) {
    if (in.begin != in.end) runs.push_back(Run{in.begin, in.end, {}, {}, {}});
  }
  if (runs.empty()) return;
  std::vector<T> storage(
      static_cast<std::size_t>(static_cast<std::int64_t>(runs.size()) *
                                   buf_entries +
                               MergeOutBufferEntries<T>()));
  // Tops the staging buffer back up to capacity (or to the source's
  // remainder), sliding any unconsumed residue to the front first. The
  // tournament caches keys by value and tracks runs by index, so moving
  // staged elements is invisible to it.
  auto refill = [buf_entries](Run& r) {
    const std::int64_t left = r.buf_end - r.buf_cur;
    if (left > 0 && r.buf_cur != r.buf) {
      std::copy(r.buf_cur, r.buf_end, r.buf);  // dst precedes src: well-defined
    }
    const std::int64_t m =
        std::min<std::int64_t>(buf_entries - left, r.end - r.next);
    std::copy(r.next, r.next + m, r.buf + left);
    r.next += m;
    r.buf_cur = r.buf;
    r.buf_end = r.buf + left + m;
  };
  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i].buf = storage.data() + static_cast<std::int64_t>(i) * buf_entries;
    refill(runs[i]);
  }
  T* const out_buf =
      storage.data() + static_cast<std::int64_t>(runs.size()) * buf_entries;
  T* const out_buf_end = out_buf + MergeOutBufferEntries<T>();
  T* out_cur = out_buf;

  // Loser tree over the active runs with keys cached in the nodes; ties go
  // to the lower run index, which (runs keep their relative order as
  // exhausted ones are erased) is the original input order.
  int size = 1;
  std::vector<int> loser;
  std::vector<T> lkey;
  int winner = -1;
  T wkey{};
  auto beats = [](int b, const T& bk, int a, const T& ak) {
    if (a < 0) return b >= 0;
    if (b < 0) return false;
    if (bk < ak) return true;
    if (ak < bk) return false;
    return b < a;
  };
  auto build = [&] {
    const int k = static_cast<int>(runs.size());
    size = 1;
    while (size < k) size *= 2;
    loser.assign(static_cast<std::size_t>(2 * size), -1);
    lkey.assign(static_cast<std::size_t>(2 * size), T{});
    std::vector<int> wsrc(static_cast<std::size_t>(2 * size), -1);
    std::vector<T> wk(static_cast<std::size_t>(2 * size), T{});
    for (int i = 0; i < k; ++i) {
      wsrc[static_cast<std::size_t>(size + i)] = i;
      wk[static_cast<std::size_t>(size + i)] =
          *runs[static_cast<std::size_t>(i)].buf_cur;
    }
    for (int node = size - 1; node >= 1; --node) {
      const std::size_t l = static_cast<std::size_t>(2 * node);
      const std::size_t r = l + 1;
      const std::size_t n = static_cast<std::size_t>(node);
      if (beats(wsrc[r], wk[r], wsrc[l], wk[l])) {
        wsrc[n] = wsrc[r];
        wk[n] = wk[r];
        loser[n] = wsrc[l];
        lkey[n] = wk[l];
      } else {
        wsrc[n] = wsrc[l];
        wk[n] = wk[l];
        loser[n] = wsrc[r];
        lkey[n] = wk[r];
      }
    }
    winner = wsrc[1];
    if (winner >= 0) wkey = wk[1];
  };
  auto replay = [&](int leaf) {
    for (int node = (size + leaf) / 2; node >= 1; node /= 2) {
      const std::size_t n = static_cast<std::size_t>(node);
      if (beats(loser[n], lkey[n], winner, wkey)) {
        std::swap(winner, loser[n]);
        std::swap(wkey, lkey[n]);
      }
    }
  };
  auto flush_out = [&] {
    out = std::copy(out_buf, out_cur, out);
    out_cur = out_buf;
  };

  build();
  while (runs.size() > 1) {
    // Guarded batch: no buffer can drain mid-batch, and the output buffer
    // cannot overflow, so the loop body is branch-light. A run that loses
    // the tournament for a long stretch would otherwise pin the batch size
    // at its dwindling residue, so low buffers are topped up first — the
    // batch is then bounded by run exhaustion, not by buffer phase.
    std::int64_t safe = out_buf_end - out_cur;
    for (Run& r : runs) {
      if (r.buf_end - r.buf_cur < buf_entries / 2 && r.next != r.end) {
        refill(r);
      }
      safe = std::min<std::int64_t>(safe, r.buf_end - r.buf_cur);
    }
    for (std::int64_t j = 0; j < safe; ++j) {
      *out_cur++ = wkey;
      Run& r = runs[static_cast<std::size_t>(winner)];
      ++r.buf_cur;
      if (r.buf_cur == r.buf_end) [[unlikely]] {
        // Only reachable on the batch's last pop (the guard guarantees it).
        if (r.next != r.end) {
          refill(r);
        } else {
          runs.erase(runs.begin() + winner);
          build();
          break;  // run indices shifted: recompute the batch
        }
      }
      wkey = *r.buf_cur;
      replay(winner);
    }
    if (out_cur == out_buf_end) flush_out();
  }
  flush_out();
  // Single run left: drain its staged data, then bulk-copy the source tail.
  Run& last = runs.front();
  out = std::copy(last.buf_cur, last.buf_end, out);
  std::copy(last.next, last.end, out);
}

/// Largest k handled by the branchless scan merge; beyond it the loser
/// tree's log(k) comparisons beat the scan's k conditional moves (measured
/// crossover on current hardware is around k = 32).
inline constexpr int kScanMergeMaxK = 16;

/// Guarded branchless merge for small k. The k head keys live in a stack
/// array the compiler keeps in registers; each output key is selected by a
/// linear conditional-move scan (no tree state, no branch mispredicts on
/// the key comparisons, which are a coin flip on random runs). Batches are
/// bounded by the smallest remaining run, so the scan loop performs no
/// bounds checks; the final pop of each batch re-checks cursors and drops
/// exhausted runs. Stable: the strict compare keeps the lowest input index
/// on ties, and compaction preserves input order.
template <typename T>
void ScanMerge(const std::vector<MergeInput<T>>& inputs, T* out) {
  const T* cur[kScanMergeMaxK];
  const T* end[kScanMergeMaxK];
  T key[kScanMergeMaxK];
  int k = 0;
  for (const auto& in : inputs) {
    if (in.begin != in.end) {
      cur[k] = in.begin;
      end[k] = in.end;
      key[k] = *in.begin;
      ++k;
    }
  }
  while (k > 2) {
    std::int64_t safe = end[0] - cur[0];
    for (int i = 1; i < k; ++i) {
      safe = std::min<std::int64_t>(safe, end[i] - cur[i]);
    }
    // safe >= 1: exhausted runs were dropped at the end of the last batch.
    for (std::int64_t j = 1; j < safe; ++j) {
      int m = 0;
      T km = key[0];
      for (int i = 1; i < k; ++i) {
        const bool lt = key[i] < km;
        m = lt ? i : m;
        km = lt ? key[i] : km;
      }
      *out++ = km;
      key[m] = *++cur[m];  // cannot pass end[m]: j < safe <= its residue
    }
    {
      // Boundary pop: the reload needs an end check here (and only here).
      int m = 0;
      T km = key[0];
      for (int i = 1; i < k; ++i) {
        const bool lt = key[i] < km;
        m = lt ? i : m;
        km = lt ? key[i] : km;
      }
      *out++ = km;
      if (++cur[m] != end[m]) key[m] = *cur[m];
    }
    for (int i = 0; i < k;) {
      if (cur[i] == end[i]) {
        for (int j = i; j + 1 < k; ++j) {
          cur[j] = cur[j + 1];
          end[j] = end[j + 1];
          key[j] = key[j + 1];
        }
        --k;
      } else {
        ++i;
      }
    }
  }
  if (k == 2) {
    std::merge(cur[0], end[0], cur[1], end[1], out);
  } else if (k == 1) {
    std::copy(cur[0], end[0], out);
  }
}

/// Sequential k-way merge of `inputs` into out[0, total).
template <typename T>
void SequentialMerge(const std::vector<MergeInput<T>>& inputs, T* out) {
  // Count the non-empty runs: one is a plain copy, two is std::merge.
  const MergeInput<T>* a = nullptr;
  const MergeInput<T>* b = nullptr;
  int nonempty = 0;
  for (const auto& in : inputs) {
    if (in.begin == in.end) continue;
    ++nonempty;
    if (nonempty == 1) {
      a = &in;
    } else if (nonempty == 2) {
      b = &in;
    } else if (nonempty > kScanMergeMaxK) {
      break;  // enough to pick the tree path
    }
  }
  if (nonempty == 0) return;
  if (nonempty == 1) {
    std::copy(a->begin, a->end, out);
    return;
  }
  if (nonempty == 2) {
    std::merge(a->begin, a->end, b->begin, b->end, out);
    return;
  }
  if (nonempty <= kScanMergeMaxK) {
    ScanMerge(inputs, out);
    return;
  }
  BufferedTreeMerge(inputs, out);
}

}  // namespace multiway_internal

/// Merges k sorted inputs into `out` (caller-provided, must hold the sum of
/// input sizes). Out-of-place, stable across inputs. `pool` enables the
/// parallel split; null runs sequentially.
template <typename T>
void MultiwayMerge(const std::vector<MergeInput<T>>& inputs, T* out,
                   ThreadPool* pool = nullptr) {
  using multiway_internal::MultisequenceSelect;
  using multiway_internal::SequentialMerge;
  if (inputs.empty()) return;
  std::int64_t total = 0;
  for (const auto& in : inputs) total += in.size();
  if (total == 0) return;

  const int threads = pool ? std::max(1, pool->num_threads()) : 1;
  if (threads == 1 || total < 4096) {
    SequentialMerge(inputs, out);
    return;
  }

  // Split the output into `threads` shards at global ranks; each shard
  // merges its per-input sub-ranges independently.
  std::vector<std::vector<std::int64_t>> cuts(
      static_cast<std::size_t>(threads) + 1);
  cuts[0].assign(inputs.size(), 0);
  for (int t = 1; t < threads; ++t) {
    cuts[static_cast<std::size_t>(t)] =
        MultisequenceSelect(inputs, total * t / threads);
  }
  cuts[static_cast<std::size_t>(threads)].resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    cuts[static_cast<std::size_t>(threads)][i] = inputs[i].size();
  }

  for (int t = 0; t < threads; ++t) {
    pool->Submit([&, t] {
      const auto& a = cuts[static_cast<std::size_t>(t)];
      const auto& b = cuts[static_cast<std::size_t>(t) + 1];
      std::vector<MergeInput<T>> shard;
      std::int64_t out_offset = 0;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        shard.push_back(
            MergeInput<T>{inputs[i].begin + a[i], inputs[i].begin + b[i]});
        out_offset += a[i];
      }
      SequentialMerge(shard, out + out_offset);
    });
  }
  pool->Wait();
}

/// Convenience overload for vectors of vectors.
template <typename T>
void MultiwayMerge(const std::vector<std::vector<T>>& inputs, std::vector<T>* out,
                   ThreadPool* pool = nullptr) {
  std::vector<MergeInput<T>> views;
  std::int64_t total = 0;
  views.reserve(inputs.size());
  for (const auto& in : inputs) {
    views.push_back(MergeInput<T>{in.data(), in.data() + in.size()});
    total += static_cast<std::int64_t>(in.size());
  }
  out->resize(static_cast<std::size_t>(total));
  MultiwayMerge(views, out->data(), pool);
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_MULTIWAY_MERGE_H_
