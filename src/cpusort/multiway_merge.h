// Parallel k-way merge, functionally equivalent to
// gnu_parallel::multiway_merge (Section 5.3): a loser tree gives log(k)
// comparisons per key; a multisequence selection splits the output range
// into independent shards so every pool thread merges its own slice.

#ifndef MGS_CPUSORT_MULTIWAY_MERGE_H_
#define MGS_CPUSORT_MULTIWAY_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cpusort/loser_tree.h"
#include "util/thread_pool.h"

namespace mgs::cpusort {

template <typename T>
struct MergeInput {
  const T* begin;
  const T* end;
  std::int64_t size() const { return end - begin; }
};

namespace multiway_internal {

/// Multisequence selection: finds, for a global rank r (0-based count of
/// keys), per-input split positions p_i with sum(p_i) == r such that every
/// key below a split is <= every key above any split (i.e. the splits
/// delimit the r smallest keys overall). Handles duplicates by distributing
/// the equal-key run left-to-right across inputs.
template <typename T>
std::vector<std::int64_t> MultisequenceSelect(
    const std::vector<MergeInput<T>>& inputs, std::int64_t rank) {
  const std::size_t k = inputs.size();
  std::vector<std::int64_t> splits(k, 0);
  if (rank <= 0) return splits;

  // Binary search over the value domain using a candidate key drawn from
  // the inputs: classic "find the key with global rank r" via repeatedly
  // picking the median candidate position.
  // We binary search on (input, position) candidates: collect the set of
  // all positions is too big; instead search each input's positions via a
  // global value-space binary search: find the smallest key v such that
  // count of keys < v is <= rank <= count of keys <= v.
  // Candidate values come from the inputs themselves (rank is achieved at
  // some key boundary).
  // Search bounds as (input index, offset) pairs are complex; simpler and
  // O(k log^2 n): binary search on the answer per a pivot value chosen by
  // bisection over one input at a time.
  //
  // Implementation: gather a sorted range of candidate pivots by binary
  // searching the value space through repeated probing.
  auto count_less = [&](const T& v) {
    std::int64_t c = 0;
    for (const auto& in : inputs) {
      c += std::lower_bound(in.begin, in.end, v) - in.begin;
    }
    return c;
  };
  auto count_less_equal = [&](const T& v) {
    std::int64_t c = 0;
    for (const auto& in : inputs) {
      c += std::upper_bound(in.begin, in.end, v) - in.begin;
    }
    return c;
  };

  // Binary search over candidate keys: the search space is the union of
  // input keys; we bisect by (input, index) lexicographic midpoints.
  // Maintain lo_i/hi_i bounds per input.
  std::vector<std::int64_t> lo(k, 0), hi(k);
  for (std::size_t i = 0; i < k; ++i) hi[i] = inputs[i].size();
  // The pivot v is the key at the midpoint of the largest remaining input
  // interval; converges since every round halves at least one interval.
  for (;;) {
    // Pick the input with the largest open interval.
    std::size_t best = k;
    std::int64_t best_len = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (hi[i] - lo[i] > best_len) {
        best_len = hi[i] - lo[i];
        best = i;
      }
    }
    if (best == k) break;  // all intervals empty: bounds converged
    const std::int64_t mid = lo[best] + (hi[best] - lo[best]) / 2;
    const T v = inputs[best].begin[mid];
    if (count_less(v) > rank) {
      // v is too large: discard positions >= mid in every input.
      for (std::size_t i = 0; i < k; ++i) {
        hi[i] = std::min<std::int64_t>(
            hi[i], std::lower_bound(inputs[i].begin, inputs[i].end, v) -
                       inputs[i].begin);
        if (hi[i] < lo[i]) lo[i] = hi[i];
      }
    } else if (count_less_equal(v) < rank) {
      // v is too small: discard positions <= those holding keys <= v.
      for (std::size_t i = 0; i < k; ++i) {
        lo[i] = std::max<std::int64_t>(
            lo[i], std::upper_bound(inputs[i].begin, inputs[i].end, v) -
                       inputs[i].begin);
        if (hi[i] < lo[i]) hi[i] = lo[i];
      }
    } else {
      // v is the boundary key: take all keys < v, then fill the remainder
      // from the equal-v runs, left to right.
      std::int64_t taken = 0;
      for (std::size_t i = 0; i < k; ++i) {
        splits[i] = std::lower_bound(inputs[i].begin, inputs[i].end, v) -
                    inputs[i].begin;
        taken += splits[i];
      }
      for (std::size_t i = 0; i < k && taken < rank; ++i) {
        const std::int64_t run_end =
            std::upper_bound(inputs[i].begin, inputs[i].end, v) -
            inputs[i].begin;
        const std::int64_t extra =
            std::min(run_end - splits[i], rank - taken);
        splits[i] += extra;
        taken += extra;
      }
      return splits;
    }
  }
  // Degenerate convergence (possible when rank == total): all bounds met.
  for (std::size_t i = 0; i < k; ++i) splits[i] = lo[i];
  return splits;
}

/// Sequential k-way merge of `inputs` into out[0, total).
template <typename T>
void SequentialMerge(const std::vector<MergeInput<T>>& inputs, T* out) {
  if (inputs.size() == 2) {
    // Two-way fast path.
    std::merge(inputs[0].begin, inputs[0].end, inputs[1].begin, inputs[1].end,
               out);
    return;
  }
  typename LoserTree<T>::Source src;
  std::vector<typename LoserTree<T>::Source> sources;
  sources.reserve(inputs.size());
  for (const auto& in : inputs) {
    src.begin = in.begin;
    src.end = in.end;
    sources.push_back(src);
  }
  LoserTree<T> tree(std::move(sources));
  while (!tree.Empty()) {
    *out++ = tree.Top();
    tree.Pop();
  }
}

}  // namespace multiway_internal

/// Merges k sorted inputs into `out` (caller-provided, must hold the sum of
/// input sizes). Out-of-place, stable across inputs. `pool` enables the
/// parallel split; null runs sequentially.
template <typename T>
void MultiwayMerge(const std::vector<MergeInput<T>>& inputs, T* out,
                   ThreadPool* pool = nullptr) {
  using multiway_internal::MultisequenceSelect;
  using multiway_internal::SequentialMerge;
  if (inputs.empty()) return;
  std::int64_t total = 0;
  for (const auto& in : inputs) total += in.size();
  if (total == 0) return;

  const int threads = pool ? std::max(1, pool->num_threads()) : 1;
  if (threads == 1 || total < 4096) {
    SequentialMerge(inputs, out);
    return;
  }

  // Split the output into `threads` shards at global ranks; each shard
  // merges its per-input sub-ranges independently.
  std::vector<std::vector<std::int64_t>> cuts(
      static_cast<std::size_t>(threads) + 1);
  cuts[0].assign(inputs.size(), 0);
  for (int t = 1; t < threads; ++t) {
    cuts[static_cast<std::size_t>(t)] =
        MultisequenceSelect(inputs, total * t / threads);
  }
  cuts[static_cast<std::size_t>(threads)].resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    cuts[static_cast<std::size_t>(threads)][i] = inputs[i].size();
  }

  for (int t = 0; t < threads; ++t) {
    pool->Submit([&, t] {
      const auto& a = cuts[static_cast<std::size_t>(t)];
      const auto& b = cuts[static_cast<std::size_t>(t) + 1];
      std::vector<MergeInput<T>> shard;
      std::int64_t out_offset = 0;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        shard.push_back(
            MergeInput<T>{inputs[i].begin + a[i], inputs[i].begin + b[i]});
        out_offset += a[i];
      }
      SequentialMerge(shard, out + out_offset);
    });
  }
  pool->Wait();
}

/// Convenience overload for vectors of vectors.
template <typename T>
void MultiwayMerge(const std::vector<std::vector<T>>& inputs, std::vector<T>* out,
                   ThreadPool* pool = nullptr) {
  std::vector<MergeInput<T>> views;
  std::int64_t total = 0;
  views.reserve(inputs.size());
  for (const auto& in : inputs) {
    views.push_back(MergeInput<T>{in.data(), in.data() + in.size()});
    total += static_cast<std::int64_t>(in.size());
  }
  out->resize(static_cast<std::size_t>(total));
  MultiwayMerge(views, out->data(), pool);
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_MULTIWAY_MERGE_H_
