// PARADIS-style parallel in-place radix sort, after Cho, Brand, Bordawekar,
// Finkler, Kulandaisamy, Puri: "PARADIS: An Efficient Parallel Algorithm for
// In-Place Radix Sort" (PVLDB 8(12), 2015). This is the paper's CPU-only
// sorting baseline (Section 6, "CPU Sort Baseline").
//
// Structure (faithful to the original's phases):
//  * MSD radix, 8-bit digits;
//  * per-level: parallel histogram, then iterated
//      {speculative permutation, repair}
//    rounds. In the speculative phase each thread owns a private stripe of
//    every bucket's unresolved region and permutes elements into its own
//    stripes without synchronization, leaving elements it cannot place
//    ("speculation misses") in place. The repair phase compacts each
//    bucket's correctly-placed elements to the region's tail so the next
//    round's unresolved regions stay contiguous.
//  * buckets are then sorted recursively; top-level buckets are distributed
//    across the thread pool, recursion within a bucket is sequential.
//
// A serial cycle-chasing fallback guarantees termination even in the
// adversarial case where a speculative round makes no progress.

#ifndef MGS_CPUSORT_PARADIS_SORT_H_
#define MGS_CPUSORT_PARADIS_SORT_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "cpusort/radix_traits.h"
#include "util/thread_pool.h"

namespace mgs::cpusort {

namespace paradis_internal {

inline constexpr std::int64_t kComparisonSortCutoff = 128;
inline constexpr std::int64_t kInsertionSortCutoff = 32;

/// Minimum region size for the write-combining permutation: below this the
/// plain cycle chase is already cache-resident and staging overhead loses.
inline constexpr std::int64_t kBufferedPlaceMinN = 1 << 16;

/// Write-combining buffer geometry: ~1 KiB of staged entries per digit
/// (256 cache-resident buffer tails), flushed with wide contiguous stores.
template <typename T>
constexpr std::int64_t WcBufEntries() {
  constexpr std::int64_t entries = 1024 / static_cast<std::int64_t>(sizeof(T));
  return entries < 32 ? 32 : entries;
}

template <typename T>
void InsertionSort(T* a, std::int64_t n) {
  for (std::int64_t i = 1; i < n; ++i) {
    T v = a[i];
    std::int64_t j = i - 1;
    while (j >= 0 && v < a[j]) {
      a[j + 1] = a[j];
      --j;
    }
    a[j + 1] = v;
  }
}

/// One speculative round over the unresolved regions of all 256 buckets,
/// executed by a single thread on its private stripes.
/// stripes[b] = {begin, end} of this thread's stripe in bucket b.
template <typename T>
void SpeculativePermute(T* a, int digit,
                        std::array<std::int64_t, 256>& head,
                        const std::array<std::int64_t, 256>& tail) {
  for (int b = 0; b < 256; ++b) {
    for (std::int64_t pos = head[b]; pos < tail[b]; ++pos) {
      T v = a[pos];
      unsigned k = RadixDigit(v, digit);
      // Chase the displacement cycle while there is room in the private
      // stripe of the destination bucket.
      while (k != static_cast<unsigned>(b) &&
             head[k] < tail[k]) {
        std::swap(v, a[head[k]]);
        ++head[k];
        k = RadixDigit(v, digit);
      }
      a[pos] = v;
      if (k == static_cast<unsigned>(b) && pos == head[b]) {
        ++head[b];
      }
    }
  }
}

/// One buffered speculative round over this worker's stripe windows, using
/// write-combining digit buffers. The scan vacuums every stripe element
/// into a per-digit staging buffer; a full buffer is flushed with one wide
/// contiguous store to the destination digit's stripe head (the permanent
/// placement). Flushing over territory the scan has not reached yet
/// displaces the window's occupants into a spill queue that drains through
/// the same classifier, so displaced elements keep their placement chance
/// within the round; the dependent load-chase of the classic cycle
/// placement never happens. Elements the round cannot house (partial
/// buffers, spill overflow) are parked in vacated hole space as speculation
/// misses. On return [orig_head[b], head[b]) are correctly placed and every
/// miss lies inside some [head[b], tail[b]) window; no element leaves the
/// union of the windows.
template <typename T>
void BufferedSpeculativePermute(T* a, int digit,
                                std::array<std::int64_t, 256>& head,
                                const std::array<std::int64_t, 256>& tail) {
  const std::int64_t w = WcBufEntries<T>();
  std::vector<T> buf(static_cast<std::size_t>(256 * w));
  std::array<std::int32_t, 256> fill{};
  std::vector<T> spill;     // displaced occupants awaiting classification
  std::vector<T> homeless;  // misses waiting for hole space
  std::array<std::int64_t, 256> dump = tail;  // miss cursor, from the tail
  int cur = 0;         // digit whose stripe is being scanned
  std::int64_t pos = 0;  // scan cursor within stripe `cur`

  // Parks a miss in vacated hole space ([head[k], dump[k]) of a finished
  // stripe). The current stripe's holes stay reserved for its own flushes.
  auto park = [&](const T& v) {
    for (int k = 0; k < cur; ++k) {
      if (dump[k] > head[k]) {
        a[--dump[k]] = v;
        return;
      }
    }
    homeless.push_back(v);
  };

  // Classifies one element into its digit's staging buffer, flushing first
  // if the buffer is full. Flush targets, in order of preference: pure hole
  // windows (scanned stripes), then unscanned territory with displacement.
  auto classify = [&](T v) {
    const int m = static_cast<int>(RadixDigit(v, digit));
    T* stage = buf.data() + static_cast<std::int64_t>(m) * w;
    if (fill[m] == static_cast<std::int32_t>(w)) {
      const bool hole_window =
          m < cur ? head[m] + w <= dump[m]
                  : (m == cur ? head[m] + w <= pos : false);
      if (hole_window) {
        std::copy(stage, stage + w, a + head[m]);
        head[m] += w;
        fill[m] = 0;
      } else if (m > cur && head[m] + w <= tail[m]) {
        spill.insert(spill.end(), a + head[m], a + head[m] + w);
        std::copy(stage, stage + w, a + head[m]);
        head[m] += w;
        fill[m] = 0;
      } else {
        park(v);
        return;
      }
    }
    stage[fill[m]++] = v;
  };

  for (cur = 0; cur < 256; ++cur) {
    // Flushes from earlier stripes may have advanced head[cur] already;
    // everything behind it is placed.
    for (pos = head[cur]; pos < tail[cur]; ++pos) {
      classify(a[pos]);
      while (!spill.empty()) {
        const T v = spill.back();
        spill.pop_back();
        classify(v);
      }
    }
    // The stripe is fully vacated: its leftover holes can absorb parked
    // misses that found no space earlier.
    while (!homeless.empty() && dump[cur] > head[cur]) {
      a[--dump[cur]] = homeless.back();
      homeless.pop_back();
    }
  }

  // Leftovers: each digit's partial buffer flushes into its own hole space
  // first (correct placements); the rest parks as misses. Conservation
  // (holes created == elements staged) guarantees everything fits.
  cur = 256;  // every stripe now counts as finished for park()
  for (int m = 0; m < 256; ++m) {
    T* stage = buf.data() + static_cast<std::int64_t>(m) * w;
    const std::int64_t take =
        std::min<std::int64_t>(fill[m], dump[m] - head[m]);
    std::copy(stage, stage + take, a + head[m]);
    head[m] += take;
    for (std::int64_t i = take; i < fill[m]; ++i) park(stage[i]);
    fill[m] = 0;
  }
  for (int k = 0; k < 256 && !homeless.empty(); ++k) {
    while (!homeless.empty() && dump[k] > head[k]) {
      a[--dump[k]] = homeless.back();
      homeless.pop_back();
    }
  }
}

/// Serial fallback: classic in-place cycle placement (American flag sort)
/// over the unresolved regions. Always terminates.
template <typename T>
void SerialCyclePlace(T* a, int digit, std::array<std::int64_t, 256>& head,
                      const std::array<std::int64_t, 256>& tail) {
  for (int b = 0; b < 256; ++b) {
    while (head[b] < tail[b]) {
      T v = a[head[b]];
      unsigned k = RadixDigit(v, digit);
      while (k != static_cast<unsigned>(b)) {
        std::swap(v, a[head[k]]);
        ++head[k];
        k = RadixDigit(v, digit);
      }
      a[head[b]] = v;
      ++head[b];
    }
  }
}

template <typename T>
void SortLevel(T* a, std::int64_t lo, std::int64_t hi, int digit,
               ThreadPool* pool, bool parallel);

/// Recursion into the 256 buckets of one resolved level.
template <typename T>
void RecurseBuckets(T* a, const std::array<std::int64_t, 257>& bounds,
                    int digit, ThreadPool* pool, bool parallel) {
  if (digit == 0) return;
  if (parallel && pool && pool->num_threads() > 1) {
    for (int b = 0; b < 256; ++b) {
      const std::int64_t lo = bounds[b], hi = bounds[b + 1];
      if (hi - lo <= 1) continue;
      pool->Submit([a, lo, hi, digit, pool] {
        SortLevel(a, lo, hi, digit - 1, pool, /*parallel=*/false);
      });
    }
    pool->Wait();
  } else {
    for (int b = 0; b < 256; ++b) {
      const std::int64_t lo = bounds[b], hi = bounds[b + 1];
      if (hi - lo <= 1) continue;
      SortLevel(a, lo, hi, digit - 1, pool, /*parallel=*/false);
    }
  }
}

template <typename T>
void SortLevel(T* a, std::int64_t lo, std::int64_t hi, int digit,
               ThreadPool* pool, bool parallel) {
  const std::int64_t n = hi - lo;
  if (n <= 1) return;
  if (n <= kInsertionSortCutoff) {
    InsertionSort(a + lo, n);
    return;
  }
  if (n <= kComparisonSortCutoff) {
    std::sort(a + lo, a + hi);
    return;
  }

  // Histogram.
  std::array<std::int64_t, 256> count{};
  if (parallel && pool && pool->num_threads() > 1) {
    const int threads = pool->num_threads();
    std::vector<std::array<std::int64_t, 256>> partial(
        static_cast<std::size_t>(threads));
    const std::int64_t shard = (n + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      pool->Submit([&, t] {
        auto& h = partial[static_cast<std::size_t>(t)];
        h.fill(0);
        const std::int64_t b = lo + t * shard;
        const std::int64_t e = std::min<std::int64_t>(b + shard, hi);
        for (std::int64_t i = b; i < e; ++i) ++h[RadixDigit(a[i], digit)];
      });
    }
    pool->Wait();
    for (const auto& h : partial) {
      for (int b = 0; b < 256; ++b) count[b] += h[b];
    }
  } else {
    for (std::int64_t i = lo; i < hi; ++i) ++count[RadixDigit(a[i], digit)];
  }

  // Digit skip: a level with one occupied bucket permutes nothing — every
  // element already agrees on this digit, so descend directly.
  int occupied = 0;
  for (int b = 0; b < 256 && occupied < 2; ++b) occupied += count[b] > 0;
  if (occupied == 1) {
    if (digit > 0) SortLevel(a, lo, hi, digit - 1, pool, parallel);
    return;
  }

  std::array<std::int64_t, 257> bounds{};
  bounds[0] = lo;
  for (int b = 0; b < 256; ++b) bounds[b + 1] = bounds[b] + count[b];

  // Unresolved region per bucket.
  std::array<std::int64_t, 256> gh, gt;
  for (int b = 0; b < 256; ++b) {
    gh[b] = bounds[b];
    gt[b] = bounds[b + 1];
  }

  auto unresolved = [&] {
    std::int64_t total = 0;
    for (int b = 0; b < 256; ++b) total += gt[b] - gh[b];
    return total;
  };

  const int threads =
      (parallel && pool) ? std::max(1, pool->num_threads()) : 1;

  std::int64_t remaining = unresolved();
  while (remaining > 0) {
    if (threads == 1) {
      // Write-combining pass does the bulk of the placement with streaming
      // stores; the cycle chase only mops up its speculation misses.
      if (n >= kBufferedPlaceMinN) {
        BufferedSpeculativePermute(a, digit, gh, gt);
      }
      SerialCyclePlace(a, digit, gh, gt);
      break;
    }
    // Partition every bucket's unresolved region into `threads` stripes.
    std::vector<std::array<std::int64_t, 256>> head(
        static_cast<std::size_t>(threads));
    std::vector<std::array<std::int64_t, 256>> tail(
        static_cast<std::size_t>(threads));
    for (int b = 0; b < 256; ++b) {
      const std::int64_t size = gt[b] - gh[b];
      std::int64_t start = gh[b];
      for (int t = 0; t < threads; ++t) {
        const std::int64_t part =
            size / threads + (t < size % threads ? 1 : 0);
        head[static_cast<std::size_t>(t)][b] = start;
        tail[static_cast<std::size_t>(t)][b] = start + part;
        start += part;
      }
    }
    // Speculative permutation: threads work on disjoint stripes. Large
    // stripes use the write-combining variant (same miss contract).
    const bool buffered = n / threads >= kBufferedPlaceMinN;
    for (int t = 0; t < threads; ++t) {
      pool->Submit([&, t, buffered] {
        if (buffered) {
          BufferedSpeculativePermute(a, digit,
                                     head[static_cast<std::size_t>(t)],
                                     tail[static_cast<std::size_t>(t)]);
        } else {
          SpeculativePermute(a, digit, head[static_cast<std::size_t>(t)],
                             tail[static_cast<std::size_t>(t)]);
        }
      });
    }
    pool->Wait();
    // Repair: per bucket, compact correct elements to the region tail so
    // the unresolved region stays a contiguous prefix.
    for (int b = 0; b < 256; ++b) {
      pool->Submit([&, b] {
        std::int64_t write = gt[b];
        for (std::int64_t pos = gt[b] - 1; pos >= gh[b]; --pos) {
          if (RadixDigit(a[pos], digit) == static_cast<unsigned>(b)) {
            --write;
            std::swap(a[pos], a[write]);
          }
        }
        gt[b] = write;
      });
    }
    pool->Wait();

    const std::int64_t now_remaining = unresolved();
    if (now_remaining >= remaining) {
      // No progress (pathological stripe imbalance): finish serially.
      SerialCyclePlace(a, digit, gh, gt);
      break;
    }
    remaining = now_remaining;
  }

  RecurseBuckets(a, bounds, digit, pool, parallel);
}

}  // namespace paradis_internal

/// Sorts data[0, n) ascending, in place. `pool` enables parallel execution
/// (top-level histogram/permutation and bucket-level task parallelism).
template <typename T>
void ParadisSort(T* data, std::int64_t n, ThreadPool* pool = nullptr) {
  paradis_internal::SortLevel(data, 0, n, kRadixDigits<T> - 1, pool,
                              /*parallel=*/pool != nullptr);
  // Prefix-only keys: MSD recursion bottoms out on the encoded prefix, so
  // equal-prefix runs longer than the comparison-sort cutoff are still
  // unordered beyond the prefix. (Buckets below the cutoff were finished
  // with full-order comparison sorts, so this pass is idempotent there.)
  if constexpr (PrefixOnlyRadix<T>::value) {
    FixupPrefixTies(data, n);
  }
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_PARADIS_SORT_H_
