// PARADIS-style parallel in-place radix sort, after Cho, Brand, Bordawekar,
// Finkler, Kulandaisamy, Puri: "PARADIS: An Efficient Parallel Algorithm for
// In-Place Radix Sort" (PVLDB 8(12), 2015). This is the paper's CPU-only
// sorting baseline (Section 6, "CPU Sort Baseline").
//
// Structure (faithful to the original's phases):
//  * MSD radix, 8-bit digits;
//  * per-level: parallel histogram, then iterated
//      {speculative permutation, repair}
//    rounds. In the speculative phase each thread owns a private stripe of
//    every bucket's unresolved region and permutes elements into its own
//    stripes without synchronization, leaving elements it cannot place
//    ("speculation misses") in place. The repair phase compacts each
//    bucket's correctly-placed elements to the region's tail so the next
//    round's unresolved regions stay contiguous.
//  * buckets are then sorted recursively; top-level buckets are distributed
//    across the thread pool, recursion within a bucket is sequential.
//
// A serial cycle-chasing fallback guarantees termination even in the
// adversarial case where a speculative round makes no progress.

#ifndef MGS_CPUSORT_PARADIS_SORT_H_
#define MGS_CPUSORT_PARADIS_SORT_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "cpusort/radix_traits.h"
#include "util/thread_pool.h"

namespace mgs::cpusort {

namespace paradis_internal {

inline constexpr std::int64_t kComparisonSortCutoff = 128;

/// One speculative round over the unresolved regions of all 256 buckets,
/// executed by a single thread on its private stripes.
/// stripes[b] = {begin, end} of this thread's stripe in bucket b.
template <typename T>
void SpeculativePermute(T* a, int digit,
                        std::array<std::int64_t, 256>& head,
                        const std::array<std::int64_t, 256>& tail) {
  for (int b = 0; b < 256; ++b) {
    for (std::int64_t pos = head[b]; pos < tail[b]; ++pos) {
      T v = a[pos];
      unsigned k = RadixDigit(v, digit);
      // Chase the displacement cycle while there is room in the private
      // stripe of the destination bucket.
      while (k != static_cast<unsigned>(b) &&
             head[k] < tail[k]) {
        std::swap(v, a[head[k]]);
        ++head[k];
        k = RadixDigit(v, digit);
      }
      a[pos] = v;
      if (k == static_cast<unsigned>(b) && pos == head[b]) {
        ++head[b];
      }
    }
  }
}

/// Serial fallback: classic in-place cycle placement (American flag sort)
/// over the unresolved regions. Always terminates.
template <typename T>
void SerialCyclePlace(T* a, int digit, std::array<std::int64_t, 256>& head,
                      const std::array<std::int64_t, 256>& tail) {
  for (int b = 0; b < 256; ++b) {
    while (head[b] < tail[b]) {
      T v = a[head[b]];
      unsigned k = RadixDigit(v, digit);
      while (k != static_cast<unsigned>(b)) {
        std::swap(v, a[head[k]]);
        ++head[k];
        k = RadixDigit(v, digit);
      }
      a[head[b]] = v;
      ++head[b];
    }
  }
}

template <typename T>
void SortLevel(T* a, std::int64_t lo, std::int64_t hi, int digit,
               ThreadPool* pool, bool parallel);

/// Recursion into the 256 buckets of one resolved level.
template <typename T>
void RecurseBuckets(T* a, const std::array<std::int64_t, 257>& bounds,
                    int digit, ThreadPool* pool, bool parallel) {
  if (digit == 0) return;
  if (parallel && pool && pool->num_threads() > 1) {
    for (int b = 0; b < 256; ++b) {
      const std::int64_t lo = bounds[b], hi = bounds[b + 1];
      if (hi - lo <= 1) continue;
      pool->Submit([a, lo, hi, digit, pool] {
        SortLevel(a, lo, hi, digit - 1, pool, /*parallel=*/false);
      });
    }
    pool->Wait();
  } else {
    for (int b = 0; b < 256; ++b) {
      const std::int64_t lo = bounds[b], hi = bounds[b + 1];
      if (hi - lo <= 1) continue;
      SortLevel(a, lo, hi, digit - 1, pool, /*parallel=*/false);
    }
  }
}

template <typename T>
void SortLevel(T* a, std::int64_t lo, std::int64_t hi, int digit,
               ThreadPool* pool, bool parallel) {
  const std::int64_t n = hi - lo;
  if (n <= 1) return;
  if (n <= kComparisonSortCutoff) {
    std::sort(a + lo, a + hi);
    return;
  }

  // Histogram.
  std::array<std::int64_t, 256> count{};
  if (parallel && pool && pool->num_threads() > 1) {
    const int threads = pool->num_threads();
    std::vector<std::array<std::int64_t, 256>> partial(
        static_cast<std::size_t>(threads));
    const std::int64_t shard = (n + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      pool->Submit([&, t] {
        auto& h = partial[static_cast<std::size_t>(t)];
        h.fill(0);
        const std::int64_t b = lo + t * shard;
        const std::int64_t e = std::min<std::int64_t>(b + shard, hi);
        for (std::int64_t i = b; i < e; ++i) ++h[RadixDigit(a[i], digit)];
      });
    }
    pool->Wait();
    for (const auto& h : partial) {
      for (int b = 0; b < 256; ++b) count[b] += h[b];
    }
  } else {
    for (std::int64_t i = lo; i < hi; ++i) ++count[RadixDigit(a[i], digit)];
  }

  std::array<std::int64_t, 257> bounds{};
  bounds[0] = lo;
  for (int b = 0; b < 256; ++b) bounds[b + 1] = bounds[b] + count[b];

  // Unresolved region per bucket.
  std::array<std::int64_t, 256> gh, gt;
  for (int b = 0; b < 256; ++b) {
    gh[b] = bounds[b];
    gt[b] = bounds[b + 1];
  }

  auto unresolved = [&] {
    std::int64_t total = 0;
    for (int b = 0; b < 256; ++b) total += gt[b] - gh[b];
    return total;
  };

  const int threads =
      (parallel && pool) ? std::max(1, pool->num_threads()) : 1;

  std::int64_t remaining = unresolved();
  while (remaining > 0) {
    if (threads == 1) {
      SerialCyclePlace(a, digit, gh, gt);
      break;
    }
    // Partition every bucket's unresolved region into `threads` stripes.
    std::vector<std::array<std::int64_t, 256>> head(
        static_cast<std::size_t>(threads));
    std::vector<std::array<std::int64_t, 256>> tail(
        static_cast<std::size_t>(threads));
    for (int b = 0; b < 256; ++b) {
      const std::int64_t size = gt[b] - gh[b];
      std::int64_t start = gh[b];
      for (int t = 0; t < threads; ++t) {
        const std::int64_t part =
            size / threads + (t < size % threads ? 1 : 0);
        head[static_cast<std::size_t>(t)][b] = start;
        tail[static_cast<std::size_t>(t)][b] = start + part;
        start += part;
      }
    }
    // Speculative permutation: threads work on disjoint stripes.
    for (int t = 0; t < threads; ++t) {
      pool->Submit([&, t] {
        SpeculativePermute(a, digit, head[static_cast<std::size_t>(t)],
                           tail[static_cast<std::size_t>(t)]);
      });
    }
    pool->Wait();
    // Repair: per bucket, compact correct elements to the region tail so
    // the unresolved region stays a contiguous prefix.
    for (int b = 0; b < 256; ++b) {
      pool->Submit([&, b] {
        std::int64_t write = gt[b];
        for (std::int64_t pos = gt[b] - 1; pos >= gh[b]; --pos) {
          if (RadixDigit(a[pos], digit) == static_cast<unsigned>(b)) {
            --write;
            std::swap(a[pos], a[write]);
          }
        }
        gt[b] = write;
      });
    }
    pool->Wait();

    const std::int64_t now_remaining = unresolved();
    if (now_remaining >= remaining) {
      // No progress (pathological stripe imbalance): finish serially.
      SerialCyclePlace(a, digit, gh, gt);
      break;
    }
    remaining = now_remaining;
  }

  RecurseBuckets(a, bounds, digit, pool, parallel);
}

}  // namespace paradis_internal

/// Sorts data[0, n) ascending, in place. `pool` enables parallel execution
/// (top-level histogram/permutation and bucket-level task parallelism).
template <typename T>
void ParadisSort(T* data, std::int64_t n, ThreadPool* pool = nullptr) {
  paradis_internal::SortLevel(data, 0, n, kRadixDigits<T> - 1, pool,
                              /*parallel=*/pool != nullptr);
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_PARADIS_SORT_H_
