// Loser-tree (tournament tree) for k-way merging: exactly ceil(log2 k)
// comparisons per extracted key, the property that makes gnu_parallel's
// multiway_merge the best conceivable k-way merge (Section 5.3).
//
// Cache behavior: each internal node caches the *key* of its losing source
// next to the source index, so a leaf-to-root replay touches only the tree
// arrays (a few cache lines for any practical k) instead of chasing the k
// run cursors through memory. Exhausted sources are folded to -1 on the
// spot, which keeps the replay comparison to "index valid? key less?" with
// no per-match end-pointer loads.

#ifndef MGS_CPUSORT_LOSER_TREE_H_
#define MGS_CPUSORT_LOSER_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace mgs::cpusort {

/// A loser tree over k input cursors. The tree stores, at each internal
/// node, the *loser* of the comparison between the winners of its subtrees
/// (index and cached key); the overall winner sits at the root. Replacing
/// the winner and replaying its leaf-to-root path costs exactly the tree
/// height in comparisons. T must be copyable and default-constructible
/// (default-constructed values pad empty nodes and are never compared).
template <typename T>
class LoserTree {
 public:
  struct Source {
    const T* begin;
    const T* end;
  };

  explicit LoserTree(std::vector<Source> sources)
      : sources_(std::move(sources)) {
    k_ = static_cast<int>(sources_.size());
    size_ = 1;
    while (size_ < k_) size_ *= 2;
    loser_.assign(static_cast<std::size_t>(2 * size_), -1);
    key_.assign(static_cast<std::size_t>(2 * size_), T{});
    Build();
  }

  /// True if every source is exhausted.
  bool Empty() const { return winner_ < 0; }

  /// Current smallest key across all sources. Precondition: !Empty().
  const T& Top() const { return winner_key_; }

  /// Index of the source holding the current smallest key.
  int TopSource() const { return winner_; }

  /// Advances past the current smallest key and replays the path.
  void Pop() {
    const int leaf = winner_;
    Source& src = sources_[static_cast<std::size_t>(winner_)];
    ++src.begin;
    if (src.begin != src.end) {
      winner_key_ = *src.begin;
    } else {
      winner_ = -1;  // exhausted: always loses from here on
    }
    Replay(leaf);
  }

 private:
  // True if challenger (b, bk) beats incumbent (a, ak). Exhausted/absent
  // sources (index < 0) always lose; ties go to the lower source index
  // (stable merge).
  static bool Beats(int b, const T& bk, int a, const T& ak) {
    if (a < 0) return b >= 0;
    if (b < 0) return false;
    if (bk < ak) return true;
    if (ak < bk) return false;
    return b < a;
  }

  void Build() {
    // Leaves at [size_, 2*size_): source i (if non-empty) or -1 padding.
    std::vector<int> wsrc(static_cast<std::size_t>(2 * size_), -1);
    std::vector<T> wkey(static_cast<std::size_t>(2 * size_), T{});
    for (int i = 0; i < k_; ++i) {
      const auto& src = sources_[static_cast<std::size_t>(i)];
      if (src.begin != src.end) {
        wsrc[static_cast<std::size_t>(size_ + i)] = i;
        wkey[static_cast<std::size_t>(size_ + i)] = *src.begin;
      }
    }
    for (int node = size_ - 1; node >= 1; --node) {
      const std::size_t l = static_cast<std::size_t>(2 * node);
      const std::size_t r = l + 1;
      const std::size_t n = static_cast<std::size_t>(node);
      if (Beats(wsrc[r], wkey[r], wsrc[l], wkey[l])) {
        wsrc[n] = wsrc[r];
        wkey[n] = wkey[r];
        loser_[n] = wsrc[l];
        key_[n] = wkey[l];
      } else {
        wsrc[n] = wsrc[l];
        wkey[n] = wkey[l];
        loser_[n] = wsrc[r];
        key_[n] = wkey[r];
      }
    }
    winner_ = wsrc[1];
    if (winner_ >= 0) winner_key_ = wkey[1];
  }

  // Replays the path from `leaf` (the previous winner's leaf) to the root;
  // winner_/winner_key_ hold the challenger on entry.
  void Replay(int leaf) {
    for (int node = (size_ + leaf) / 2; node >= 1; node /= 2) {
      const std::size_t n = static_cast<std::size_t>(node);
      if (Beats(loser_[n], key_[n], winner_, winner_key_)) {
        std::swap(winner_, loser_[n]);
        std::swap(winner_key_, key_[n]);
      }
    }
  }

  std::vector<Source> sources_;
  int k_ = 0;
  int size_ = 1;           // number of leaves (power of two)
  std::vector<int> loser_;  // loser_[node] = losing source index, -1 = none
  std::vector<T> key_;      // key_[node] = cached key of loser_[node]
  int winner_ = -1;
  T winner_key_{};
};

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_LOSER_TREE_H_
