// Loser-tree (tournament tree) for k-way merging: exactly ceil(log2 k)
// comparisons per extracted key, the property that makes gnu_parallel's
// multiway_merge the best conceivable k-way merge (Section 5.3).

#ifndef MGS_CPUSORT_LOSER_TREE_H_
#define MGS_CPUSORT_LOSER_TREE_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace mgs::cpusort {

/// A loser tree over k input cursors. The tree stores, at each internal
/// node, the *loser* of the comparison between the winners of its subtrees;
/// the overall winner sits at the root. Replacing the winner and replaying
/// its leaf-to-root path costs exactly the tree height in comparisons.
template <typename T>
class LoserTree {
 public:
  struct Source {
    const T* begin;
    const T* end;
  };

  explicit LoserTree(std::vector<Source> sources)
      : sources_(std::move(sources)) {
    k_ = static_cast<int>(sources_.size());
    size_ = 1;
    while (size_ < k_) size_ *= 2;
    tree_.assign(static_cast<std::size_t>(2 * size_), -1);
    Build();
  }

  /// True if every source is exhausted.
  bool Empty() const { return winner_ < 0; }

  /// Current smallest key across all sources. Precondition: !Empty().
  const T& Top() const { return *sources_[winner_].begin; }

  /// Index of the source holding the current smallest key.
  int TopSource() const { return winner_; }

  /// Advances past the current smallest key and replays the path.
  void Pop() {
    ++sources_[winner_].begin;
    Replay(winner_);
  }

 private:
  // Winner of a match: the source with the smaller current key; exhausted
  // sources always lose. Ties go to the lower index (stable merge).
  int Winner(int a, int b) const {
    if (a < 0) return b;
    if (b < 0) return a;
    const bool a_empty = sources_[a].begin == sources_[a].end;
    const bool b_empty = sources_[b].begin == sources_[b].end;
    if (a_empty) return b_empty ? -1 : b;
    if (b_empty) return a;
    const T& ka = *sources_[a].begin;
    const T& kb = *sources_[b].begin;
    if (kb < ka) return b;
    if (ka < kb) return a;
    return a < b ? a : b;  // equal keys: lower source index (stability)
  }

  void Build() {
    // Leaves at [size_, 2*size_): source i or -1 padding.
    std::vector<int> winners(static_cast<std::size_t>(2 * size_), -1);
    for (int i = 0; i < size_; ++i) {
      winners[static_cast<std::size_t>(size_ + i)] = i < k_ ? i : -1;
    }
    for (int node = size_ - 1; node >= 1; --node) {
      const int a = winners[static_cast<std::size_t>(2 * node)];
      const int b = winners[static_cast<std::size_t>(2 * node + 1)];
      const int w = Winner(a, b);
      winners[static_cast<std::size_t>(node)] = w;
      tree_[static_cast<std::size_t>(node)] = (w == a) ? b : a;  // loser
    }
    winner_ = Normalize(winners[1]);
  }

  // An exhausted source can only be the overall winner when every source is
  // exhausted (exhausted sources always lose matches): report tree-empty.
  int Normalize(int winner) const {
    if (winner >= 0 && sources_[winner].begin == sources_[winner].end) {
      return -1;
    }
    return winner;
  }

  void Replay(int source) {
    int node = (size_ + source) / 2;
    int winner = source;
    while (node >= 1) {
      const int loser = tree_[static_cast<std::size_t>(node)];
      const int w = Winner(winner, loser);
      if (w != winner) {
        tree_[static_cast<std::size_t>(node)] = winner;
        winner = w;
      }
      node /= 2;
    }
    winner_ = Normalize(winner);
  }

  std::vector<Source> sources_;
  int k_ = 0;
  int size_ = 1;        // number of leaves (power of two)
  std::vector<int> tree_;  // tree_[node] = losing source index, -1 = none
  int winner_ = -1;
};

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_LOSER_TREE_H_
