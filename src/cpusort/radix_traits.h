// Order-preserving bit encodings for radix sorting signed integers and
// IEEE-754 floats (the paper sorts int32/int64/float32/float64, Section 6.3).

#ifndef MGS_CPUSORT_RADIX_TRAITS_H_
#define MGS_CPUSORT_RADIX_TRAITS_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <type_traits>

namespace mgs::cpusort {

/// Maps T to an unsigned integer of equal width such that
/// a < b  <=>  Encode(a) < Encode(b). Decode inverts Encode.
template <typename T>
struct RadixTraits;

template <>
struct RadixTraits<std::uint32_t> {
  using Unsigned = std::uint32_t;
  static Unsigned Encode(std::uint32_t v) { return v; }
  static std::uint32_t Decode(Unsigned u) { return u; }
};

template <>
struct RadixTraits<std::uint64_t> {
  using Unsigned = std::uint64_t;
  static Unsigned Encode(std::uint64_t v) { return v; }
  static std::uint64_t Decode(Unsigned u) { return u; }
};

template <>
struct RadixTraits<std::int32_t> {
  using Unsigned = std::uint32_t;
  static Unsigned Encode(std::int32_t v) {
    return static_cast<Unsigned>(v) ^ 0x8000'0000u;
  }
  static std::int32_t Decode(Unsigned u) {
    return static_cast<std::int32_t>(u ^ 0x8000'0000u);
  }
};

template <>
struct RadixTraits<std::int64_t> {
  using Unsigned = std::uint64_t;
  static Unsigned Encode(std::int64_t v) {
    return static_cast<Unsigned>(v) ^ 0x8000'0000'0000'0000ull;
  }
  static std::int64_t Decode(Unsigned u) {
    return static_cast<std::int64_t>(u ^ 0x8000'0000'0000'0000ull);
  }
};

template <>
struct RadixTraits<float> {
  using Unsigned = std::uint32_t;
  static Unsigned Encode(float v) {
    const auto bits = std::bit_cast<Unsigned>(v);
    // Negative floats: flip all bits (reverses their order); positive:
    // set the sign bit (places them above all negatives).
    return (bits & 0x8000'0000u) ? ~bits : bits | 0x8000'0000u;
  }
  static float Decode(Unsigned u) {
    const Unsigned bits = (u & 0x8000'0000u) ? u & 0x7fff'ffffu : ~u;
    return std::bit_cast<float>(bits);
  }
};

template <>
struct RadixTraits<double> {
  using Unsigned = std::uint64_t;
  static Unsigned Encode(double v) {
    const auto bits = std::bit_cast<Unsigned>(v);
    return (bits & 0x8000'0000'0000'0000ull)
               ? ~bits
               : bits | 0x8000'0000'0000'0000ull;
  }
  static double Decode(Unsigned u) {
    const Unsigned bits = (u & 0x8000'0000'0000'0000ull)
                              ? u & 0x7fff'ffff'ffff'ffffull
                              : ~u;
    return std::bit_cast<double>(bits);
  }
};

/// Digit extraction on the encoded key: digit `d` counts from the least
/// significant end, 8 bits per digit.
template <typename T>
inline unsigned RadixDigit(const T& v, int digit) {
  const auto u = RadixTraits<T>::Encode(v);
  return static_cast<unsigned>((u >> (8 * digit)) & 0xff);
}

/// Number of 8-bit digits in T's key. Sized from the encoded key, not the
/// element: records and string keys are wider than their normalized keys,
/// and shifting Unsigned past its own width is UB.
template <typename T>
inline constexpr int kRadixDigits =
    static_cast<int>(sizeof(typename RadixTraits<T>::Unsigned));

/// Some types (core::StringKey, core::SortRecord) radix-sort on a
/// normalized-key *prefix* only: equal Encode() values are not necessarily
/// equal elements, so a pure radix pass leaves equal-prefix runs unordered.
/// Such traits declare `static constexpr bool kPrefixOnly = true`, and the
/// radix entry points finish with FixupPrefixTies.
template <typename T, typename = void>
struct PrefixOnlyRadix : std::false_type {};

template <typename T>
struct PrefixOnlyRadix<T, std::void_t<decltype(RadixTraits<T>::kPrefixOnly)>>
    : std::bool_constant<RadixTraits<T>::kPrefixOnly> {};

/// Cold path after a prefix-only radix sort: every run of equal encoded
/// prefixes is comparison-sorted with the full operator< (which breaks ties
/// beyond the prefix). Runs longer than one element are rare by construction
/// — an 8-byte prefix separates almost all real keys — so this is a linear
/// scan with occasional small sorts.
template <typename T>
inline void FixupPrefixTies(T* data, std::int64_t n) {
  std::int64_t run_begin = 0;
  for (std::int64_t i = 1; i <= n; ++i) {
    if (i == n ||
        RadixTraits<T>::Encode(data[i]) != RadixTraits<T>::Encode(data[run_begin])) {
      if (i - run_begin > 1) std::sort(data + run_begin, data + i);
      run_begin = i;
    }
  }
}

}  // namespace mgs::cpusort

#endif  // MGS_CPUSORT_RADIX_TRAITS_H_
