// Umbrella header for the CPU sorting substrate.

#ifndef MGS_CPUSORT_CPUSORT_H_
#define MGS_CPUSORT_CPUSORT_H_

#include "cpusort/loser_tree.h"         // IWYU pragma: export
#include "cpusort/lsb_radix_sort.h"     // IWYU pragma: export
#include "cpusort/merge_sort.h"         // IWYU pragma: export
#include "cpusort/multiway_merge.h"     // IWYU pragma: export
#include "cpusort/paradis_sort.h"       // IWYU pragma: export
#include "cpusort/radix_traits.h"       // IWYU pragma: export
#include "cpusort/sample_sort.h"        // IWYU pragma: export

#endif  // MGS_CPUSORT_CPUSORT_H_
