// Task graphs for the pipelined executor (docs/executor.md).
//
// A TaskGraph is a DAG of coarse device/host operations — the unit at which
// the sorters used to place phase barriers: host-to-device copies, chunk
// sorts, P2P block swaps, local merge steps, device-to-host copies. Edges
// are explicit data dependencies ("this merge reads the buffers that swap
// produced"), so a node becomes runnable the moment its inputs exist
// instead of when the slowest GPU clears a global barrier.
//
// Each node carries a body: a coroutine factory invoked by the executor
// when the node is dispatched. Bodies enqueue the real vgpu stream work and
// co_await its completion; the graph layer never touches streams itself.
//
// Besides edges, nodes may declare the logical buffer versions they produce
// and consume (opaque integer tokens). Validate() checks the two structural
// invariants every sorter-emitted graph must satisfy: the graph is acyclic,
// and every consumed token is produced by a dependency ancestor (or
// declared as a graph input). The randomized A/B suite runs Validate() on
// every emitted graph.

#ifndef MGS_EXEC_TASK_GRAPH_H_
#define MGS_EXEC_TASK_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/task.h"
#include "util/status.h"

namespace mgs::exec {

/// Node granularity mirrors the sorters' phase vocabulary; the executor
/// maps kinds onto per-device engine lanes (see executor.h).
enum class NodeKind {
  kHtoDCopy,   // host -> device chunk upload (may include a pad-fill kernel)
  kChunkSort,  // on-GPU chunk sort
  kBlockSwap,  // one P2P merge stage's pivot + bidirectional block exchange
  kMergeStep,  // one chunk's local merge of the swapped runs
  kDtoHCopy,   // device -> host download
  kHost,       // host-side work (CPU merge, bookkeeping)
};

const char* NodeKindToString(NodeKind kind);

using NodeId = int;

/// Opaque logical-buffer-version token for produce/consume bookkeeping.
using BufferToken = std::int64_t;

struct Node {
  NodeKind kind = NodeKind::kHost;
  /// Device the node occupies (engine-lane key); -1 for host work.
  int device = -1;
  /// Coroutine factory run at dispatch. May be null (pure ordering node).
  std::function<sim::Task<void>()> body;
  std::string label;
  std::vector<NodeId> deps;
  std::vector<NodeId> succs;
  std::vector<BufferToken> produces;
  std::vector<BufferToken> consumes;
};

class TaskGraph {
 public:
  /// Adds a node and returns its id (dense, insertion-ordered).
  NodeId AddNode(NodeKind kind, int device,
                 std::function<sim::Task<void>()> body,
                 std::string label = {});

  /// Empties the graph but parks its Node storage on an internal free list,
  /// so a recycled graph rebuilds without reallocating per-node vectors —
  /// the per-job constant cost GraphExecutor::AcquireGraph exists to cut.
  void Clear();

  /// Declares that `after` must not start before `before` completes.
  /// Duplicate edges are deduplicated.
  void AddEdge(NodeId before, NodeId after);

  /// Declares that `node` writes / reads the buffer version `token`.
  void Produces(NodeId node, BufferToken token);
  void Consumes(NodeId node, BufferToken token);

  /// Declares `token` available before the graph starts (external input,
  /// e.g. the host array a htod copy reads).
  void AddInput(BufferToken token);

  /// Structural invariants: ids in range, the dependency graph is acyclic,
  /// and every consumed token is produced by a strict ancestor of the
  /// consumer (or is a declared input). O(V * E / 64).
  Status Validate() const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }
  const Node& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  Node& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<BufferToken>& inputs() const { return inputs_; }

 private:
  std::vector<Node> nodes_;
  std::vector<BufferToken> inputs_;
  /// Cleared nodes waiting for reuse; their inner vectors keep capacity.
  std::vector<Node> spare_;
};

}  // namespace mgs::exec

#endif  // MGS_EXEC_TASK_GRAPH_H_
