#include "exec/executor.h"

#include <algorithm>
#include <cstddef>
#include <sstream>

#include "obs/metrics.h"
#include "sim/trace.h"
#include "util/units.h"

namespace mgs::exec {

struct GraphExecutor::Job {
  TaskGraph graph;
  GraphJobOptions options;
  std::vector<NodeRun> runs;
  std::vector<int> pending;  // unmet dependency count per node
  int remaining = 0;
  double submit = 0;
  sim::Trigger done;
};

struct GraphExecutor::JobPool {
  /// Caps both free lists: beyond this, frames just deallocate. Sized for
  /// the realistic co-running job count, not the trace length.
  static constexpr std::size_t kMax = 64;
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<TaskGraph> graphs;
};

std::shared_ptr<GraphExecutor::Job> GraphExecutor::AcquireJob() {
  if (!pool_) pool_ = std::make_shared<JobPool>();
  std::unique_ptr<Job> job;
  if (!pool_->jobs.empty()) {
    job = std::move(pool_->jobs.back());
    pool_->jobs.pop_back();
  } else {
    job = std::make_unique<Job>();
  }
  // The deleter owns a reference to the pool (not the executor), so a job
  // frame still in flight when the executor dies parks itself harmlessly.
  return std::shared_ptr<Job>(
      job.release(), [pool = pool_](Job* raw) {
        std::unique_ptr<Job> j(raw);
        j->graph.Clear();  // parks node storage on the graph's free list
        if (pool->graphs.size() < JobPool::kMax) {
          pool->graphs.push_back(std::move(j->graph));
        }
        j->graph = TaskGraph{};
        j->options = GraphJobOptions{};
        j->runs.clear();     // keeps capacity for the next job
        j->pending.clear();
        j->remaining = 0;
        j->submit = 0;
        j->done = sim::Trigger{};
        if (pool->jobs.size() < JobPool::kMax) {
          pool->jobs.push_back(std::move(j));
        }
      });
}

TaskGraph GraphExecutor::AcquireGraph() {
  if (!pool_) pool_ = std::make_shared<JobPool>();
  if (pool_->graphs.empty()) return TaskGraph{};
  TaskGraph graph = std::move(pool_->graphs.back());
  pool_->graphs.pop_back();
  return graph;
}

double GraphExecutor::Now() const {
  return platform_->simulator().Now();
}

int GraphExecutor::LaneOf(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHtoDCopy:
      return 0;
    case NodeKind::kDtoHCopy:
      return 1;
    case NodeKind::kChunkSort:
    case NodeKind::kMergeStep:
      return 2;
    case NodeKind::kBlockSwap:
    case NodeKind::kHost:
      return -1;
  }
  return -1;
}

sim::Task<void> GraphExecutor::Run(TaskGraph graph, GraphJobOptions options,
                                   ExecReport* report) {
  CheckOk(graph.Validate());
  auto job = AcquireJob();
  job->graph = std::move(graph);
  job->options = std::move(options);
  job->submit = Now();
  const int n = job->graph.num_nodes();
  job->remaining = n;
  // assign(), not resize(): a recycled frame's vectors hold stale values.
  job->runs.assign(static_cast<std::size_t>(n), NodeRun{});
  job->pending.assign(static_cast<std::size_t>(n), 0);
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = job->graph.node(id);
    NodeRun& run = job->runs[static_cast<std::size_t>(id)];
    run.id = id;
    run.kind = node.kind;
    run.device = node.device;
    run.label = node.label.empty() ? NodeKindToString(node.kind) : node.label;
    job->pending[static_cast<std::size_t>(id)] =
        static_cast<int>(node.deps.size());
  }
  if (n > 0) {
    for (NodeId id = 0; id < n; ++id) {
      if (job->pending[static_cast<std::size_t>(id)] == 0) NodeReady(job, id);
    }
    co_await job->done.Wait();
  }
  if (obs::MetricsRegistry* reg = platform_->metrics()) {
    reg->GetCounter(kExecJobsTotal, {},
                    "Task graphs executed to completion")
        .Inc();
  }
  BuildReport(*job, report);
  co_return;
}

void GraphExecutor::NodeReady(const std::shared_ptr<Job>& job, NodeId id) {
  NodeRun& run = job->runs[static_cast<std::size_t>(id)];
  run.ready = Now();
  const Node& node = job->graph.node(id);
  const int lane = LaneOf(node.kind);
  if (lane < 0 || node.device < 0) {
    Dispatch(job, id, -1);
    return;
  }
  const std::int64_t key = static_cast<std::int64_t>(node.device) * 3 + lane;
  lanes_[key].queue.push_back(
      QueueEntry{job, id, job->options.priority, next_seq_++});
  PumpLane(key);
}

void GraphExecutor::PumpLane(std::int64_t key) {
  Lane& lane = lanes_[key];
  if (lane.busy || lane.queue.empty()) return;
  auto best = lane.queue.begin();
  for (auto it = std::next(best); it != lane.queue.end(); ++it) {
    if (it->priority > best->priority ||
        (it->priority == best->priority && it->seq < best->seq)) {
      best = it;
    }
  }
  QueueEntry entry = std::move(*best);
  lane.queue.erase(best);
  lane.busy = true;
  Dispatch(std::move(entry.job), entry.node, key);
}

void GraphExecutor::Dispatch(std::shared_ptr<Job> job, NodeId id,
                             std::int64_t lane_key) {
  sim::Spawn(RunNode(std::move(job), id, lane_key));
}

sim::Task<void> GraphExecutor::RunNode(std::shared_ptr<Job> job, NodeId id,
                                       std::int64_t lane_key) {
  NodeRun& run = job->runs[static_cast<std::size_t>(id)];
  run.start = Now();
  const Node& node = job->graph.node(id);
  if (node.body) co_await node.body();
  run.end = Now();
  if (sim::TraceRecorder* trace = platform_->trace()) {
    const std::string track =
        node.device >= 0 ? "exec:gpu" + std::to_string(node.device)
                         : "exec:host";
    trace->AddSpan(track, job->options.label + "/" + run.label, run.start,
                   run.end);
  }
  if (obs::MetricsRegistry* reg = platform_->metrics()) {
    obs::Labels labels{{"kind", NodeKindToString(node.kind)}};
    reg->GetCounter(kExecNodesTotal, labels, "Graph nodes executed").Inc();
    reg->GetHistogram(kExecNodeSeconds, labels, "Graph node run time")
        .Observe(run.duration());
    reg->GetHistogram(kExecWaitSeconds, labels,
                      "Ready-to-dispatch lane wait")
        .Observe(run.lane_wait());
  }
  OnNodeDone(job, id, lane_key);
  co_return;
}

void GraphExecutor::OnNodeDone(const std::shared_ptr<Job>& job, NodeId id,
                               std::int64_t lane_key) {
  if (lane_key >= 0) lanes_[lane_key].busy = false;
  for (NodeId succ : job->graph.node(id).succs) {
    if (--job->pending[static_cast<std::size_t>(succ)] == 0) {
      NodeReady(job, succ);
    }
  }
  if (lane_key >= 0) PumpLane(lane_key);
  if (--job->remaining == 0) job->done.Fire();
}

void GraphExecutor::BuildReport(const Job& job, ExecReport* report) {
  if (report == nullptr) return;
  report->label = job.options.label;
  report->nodes = job.runs;
  report->critical_path.clear();
  report->critical_seconds = 0;
  report->makespan = 0;
  if (report->nodes.empty()) return;

  // critical_dep: the dependency that actually gated each node (latest end;
  // ties break toward the lower id for determinism).
  for (NodeRun& run : report->nodes) {
    NodeId best = -1;
    double best_end = -1;
    for (NodeId d : job.graph.node(run.id).deps) {
      const NodeRun& dep = report->nodes[static_cast<std::size_t>(d)];
      if (dep.end > best_end || (dep.end == best_end && d < best)) {
        best = d;
        best_end = dep.end;
      }
    }
    run.critical_dep = best;
  }
  NodeId sink = 0;
  for (const NodeRun& run : report->nodes) {
    const NodeRun& cur = report->nodes[static_cast<std::size_t>(sink)];
    if (run.end > cur.end || (run.end == cur.end && run.id < cur.id)) {
      sink = run.id;
    }
  }
  for (NodeId id = sink; id >= 0;
       id = report->nodes[static_cast<std::size_t>(id)].critical_dep) {
    report->critical_path.push_back(id);
    report->critical_seconds +=
        report->nodes[static_cast<std::size_t>(id)].duration();
  }
  std::reverse(report->critical_path.begin(), report->critical_path.end());
  report->makespan =
      report->nodes[static_cast<std::size_t>(sink)].end - job.submit;
}

std::string RenderCriticalPath(const ExecReport& report) {
  std::ostringstream os;
  os << "Critical path (" << report.label
     << "): " << report.critical_path.size() << " of " << report.nodes.size()
     << " nodes, " << FormatDuration(report.critical_seconds) << " on-chain / "
     << FormatDuration(report.makespan) << " makespan\n";
  for (NodeId id : report.critical_path) {
    const NodeRun& run = report.nodes[static_cast<std::size_t>(id)];
    os << "  " << (run.device >= 0 ? "gpu" + std::to_string(run.device)
                                   : "host");
    os << "  " << NodeKindToString(run.kind) << "  " << run.label << "  "
       << FormatDuration(run.duration());
    if (run.lane_wait() > 1e-12) {
      os << "  (+" << FormatDuration(run.lane_wait()) << " queued)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mgs::exec
