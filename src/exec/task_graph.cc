#include "exec/task_graph.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <queue>
#include <unordered_map>
#include <vector>

namespace mgs::exec {

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHtoDCopy:
      return "htod-copy";
    case NodeKind::kChunkSort:
      return "chunk-sort";
    case NodeKind::kBlockSwap:
      return "block-swap";
    case NodeKind::kMergeStep:
      return "merge-step";
    case NodeKind::kDtoHCopy:
      return "dtoh-copy";
    case NodeKind::kHost:
      return "host";
  }
  return "?";
}

NodeId TaskGraph::AddNode(NodeKind kind, int device,
                          std::function<sim::Task<void>()> body,
                          std::string label) {
  Node n;
  if (!spare_.empty()) {
    // Recycle a cleared node: its deps/succs/produces/consumes keep their
    // heap capacity across the move, so a rebuilt graph of similar shape
    // allocates nothing.
    n = std::move(spare_.back());
    spare_.pop_back();
    n.deps.clear();
    n.succs.clear();
    n.produces.clear();
    n.consumes.clear();
  }
  n.kind = kind;
  n.device = device;
  n.body = std::move(body);
  n.label = std::move(label);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void TaskGraph::Clear() {
  for (Node& n : nodes_) {
    n.body = nullptr;  // release captured state now, not at reuse
    n.label.clear();
    spare_.push_back(std::move(n));
  }
  nodes_.clear();
  inputs_.clear();
}

void TaskGraph::AddEdge(NodeId before, NodeId after) {
  assert(before >= 0 && before < num_nodes());
  assert(after >= 0 && after < num_nodes());
  assert(before != after);
  auto& succs = nodes_[static_cast<std::size_t>(before)].succs;
  if (std::find(succs.begin(), succs.end(), after) != succs.end()) return;
  succs.push_back(after);
  nodes_[static_cast<std::size_t>(after)].deps.push_back(before);
}

void TaskGraph::Produces(NodeId node, BufferToken token) {
  assert(node >= 0 && node < num_nodes());
  nodes_[static_cast<std::size_t>(node)].produces.push_back(token);
}

void TaskGraph::Consumes(NodeId node, BufferToken token) {
  assert(node >= 0 && node < num_nodes());
  nodes_[static_cast<std::size_t>(node)].consumes.push_back(token);
}

void TaskGraph::AddInput(BufferToken token) { inputs_.push_back(token); }

Status TaskGraph::Validate() const {
  const int n = num_nodes();
  // Kahn's algorithm; nodes are popped in (in-degree-0, lowest-id) order so
  // the pass is deterministic, though only completeness matters here.
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const Node& node : nodes_) {
    for (NodeId s : node.succs) ++indegree[static_cast<std::size_t>(s)];
  }
  std::vector<NodeId> topo;
  topo.reserve(static_cast<std::size_t>(n));
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId id = 0; id < n; ++id) {
    if (indegree[static_cast<std::size_t>(id)] == 0) ready.push(id);
  }
  while (!ready.empty()) {
    NodeId id = ready.top();
    ready.pop();
    topo.push_back(id);
    for (NodeId s : nodes_[static_cast<std::size_t>(id)].succs) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  if (static_cast<int>(topo.size()) != n) {
    return Status(StatusCode::kInvalidArgument,
                  "task graph contains a dependency cycle");
  }

  // Produce-before-consume: walk in topo order keeping, per node, the set of
  // ancestors (inclusive) as a bitset; a consumed token must be produced by
  // some ancestor, or be a declared graph input.
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> ancestors(static_cast<std::size_t>(n) * words, 0);
  auto row = [&](NodeId id) {
    return ancestors.data() + static_cast<std::size_t>(id) * words;
  };
  std::unordered_map<BufferToken, std::vector<NodeId>> producers;
  for (NodeId id = 0; id < n; ++id) {
    for (BufferToken t : nodes_[static_cast<std::size_t>(id)].produces) {
      producers[t].push_back(id);
    }
  }
  std::unordered_map<BufferToken, bool> is_input;
  for (BufferToken t : inputs_) is_input[t] = true;

  for (NodeId id : topo) {
    std::uint64_t* self = row(id);
    for (NodeId d : nodes_[static_cast<std::size_t>(id)].deps) {
      const std::uint64_t* dep = row(d);
      for (std::size_t w = 0; w < words; ++w) self[w] |= dep[w];
    }
    for (BufferToken t : nodes_[static_cast<std::size_t>(id)].consumes) {
      if (is_input.count(t)) continue;
      auto it = producers.find(t);
      bool satisfied = false;
      if (it != producers.end()) {
        for (NodeId p : it->second) {
          if (self[static_cast<std::size_t>(p) / 64] &
              (std::uint64_t{1} << (static_cast<std::size_t>(p) % 64))) {
            satisfied = true;
            break;
          }
        }
      }
      if (!satisfied) {
        return Status(StatusCode::kInvalidArgument,
                      "node '" + nodes_[static_cast<std::size_t>(id)].label +
                          "' consumes a buffer no dependency ancestor "
                          "produces");
      }
    }
    // Mark self visible to successors (strict ancestors of them).
    self[static_cast<std::size_t>(id) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(id) % 64);
  }
  return Status::OK();
}

}  // namespace mgs::exec
