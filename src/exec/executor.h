// GraphExecutor: drains TaskGraph nodes onto the simulated platform,
// work-conserving across every running job (docs/executor.md).
//
// One executor instance may have any number of graphs in flight at once —
// sched::SortServer owns a single executor and submits each tenant's graph
// to it, so when tenant A's GPU is waiting on a merge input, tenant B's
// copy or sort runs in the gap instead of idling behind A's phase barrier.
//
// Dispatch model:
//  - Every node kind maps to an engine lane on its device: htod copies to
//    the `in` lane, dtoh copies to the `out` lane, chunk sorts and merge
//    steps to the `compute` lane. Each (device, lane) admits one node at a
//    time; further ready nodes queue.
//  - Block-swap nodes (whole-stage P2P exchanges spanning several devices)
//    and host nodes are not throttled by a lane — the underlying streams
//    and flow network already serialize and price their work.
//  - A queued lane picks the highest GraphJobOptions::priority first, then
//    the oldest submission (a global ready sequence number), so dispatch is
//    deterministic and the scheduler can preempt at node granularity: a
//    high-priority job's nodes overtake lower-priority queued nodes at
//    every lane decision, without cancelling work already on an engine.
//
// After a graph completes the executor reconstructs its critical path —
// the dependency chain ending at the last-finishing node in which every
// node waited on its latest-finishing dependency — which `--explain`
// renders next to the per-link blame (RenderCriticalPath).

#ifndef MGS_EXEC_EXECUTOR_H_
#define MGS_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/task_graph.h"
#include "sim/task.h"
#include "vgpu/platform.h"

namespace mgs::exec {

// Metric families the executor publishes when the platform carries a
// metrics registry (labels: kind = NodeKindToString).
inline constexpr char kExecNodesTotal[] = "mgs_exec_nodes_total";
inline constexpr char kExecNodeSeconds[] = "mgs_exec_node_seconds";
inline constexpr char kExecWaitSeconds[] = "mgs_exec_ready_wait_seconds";
inline constexpr char kExecJobsTotal[] = "mgs_exec_jobs_total";

struct GraphJobOptions {
  /// Larger wins every lane-dispatch decision against queued nodes of
  /// lower-priority jobs.
  int priority = 0;
  /// Prefix for trace span names ("<label>/<node label>").
  std::string label = "job";
};

/// Per-node execution record (times are simulated seconds).
struct NodeRun {
  NodeId id = -1;
  NodeKind kind = NodeKind::kHost;
  int device = -1;
  std::string label;
  double ready = -1;  // all dependencies satisfied
  double start = -1;  // dispatched onto its lane
  double end = -1;    // body completed
  /// Latest-finishing dependency (-1 for roots): the edge that actually
  /// gated this node, which is what chains into the critical path.
  NodeId critical_dep = -1;

  double duration() const { return end - start; }
  /// Time spent ready but queued behind the lane (0 for unthrottled nodes).
  double lane_wait() const { return start - ready; }
};

/// What one Run() call reports back.
struct ExecReport {
  std::string label;
  std::vector<NodeRun> nodes;  // indexed by NodeId
  /// Source-to-sink chain of NodeIds along latest-finishing dependencies.
  std::vector<NodeId> critical_path;
  /// Sum of node durations on the critical path.
  double critical_seconds = 0;
  /// Last node end minus graph submission time.
  double makespan = 0;
};

/// Human-readable critical-path table for --explain. Lives here (not in
/// obs) because obs sits below exec in the layer order.
std::string RenderCriticalPath(const ExecReport& report);

class GraphExecutor {
 public:
  explicit GraphExecutor(vgpu::Platform* platform) : platform_(platform) {}

  GraphExecutor(const GraphExecutor&) = delete;
  GraphExecutor& operator=(const GraphExecutor&) = delete;

  /// Executes `graph` to completion on the shared platform; resolves when
  /// every node has run. Concurrent Run() calls interleave at node level.
  /// The graph must pass Validate() (aborts otherwise — emitting an invalid
  /// graph is a programming error). `report`, when non-null, receives the
  /// per-node timeline and critical path.
  sim::Task<void> Run(TaskGraph graph, GraphJobOptions options = {},
                      ExecReport* report = nullptr);

  /// An empty TaskGraph recycled from a finished job when one is pooled
  /// (freshly constructed otherwise). A recycled graph's node storage is
  /// retained, so emitters that build a similar-shaped graph allocate
  /// nothing — worth ~two dozen vector allocations per sort job, which is
  /// the difference under a million-job trace. Pass the built graph to
  /// Run() as usual; it returns to the pool when the job completes.
  TaskGraph AcquireGraph();

  vgpu::Platform* platform() const { return platform_; }

 private:
  struct Job;
  /// Recycled Job frames and cleared TaskGraphs (bounded). Held by
  /// shared_ptr because in-flight jobs return to it from their deleter,
  /// which may outlive the executor.
  struct JobPool;

  std::shared_ptr<Job> AcquireJob();

  struct QueueEntry {
    std::shared_ptr<Job> job;
    NodeId node = -1;
    int priority = 0;
    std::uint64_t seq = 0;  // global ready order (tie-break: oldest first)
  };

  struct Lane {
    bool busy = false;
    std::vector<QueueEntry> queue;
  };

  double Now() const;
  /// Lane index for a kind, or -1 for unthrottled kinds.
  static int LaneOf(NodeKind kind);
  void NodeReady(const std::shared_ptr<Job>& job, NodeId id);
  void PumpLane(std::int64_t key);
  void Dispatch(std::shared_ptr<Job> job, NodeId id, std::int64_t lane_key);
  sim::Task<void> RunNode(std::shared_ptr<Job> job, NodeId id,
                          std::int64_t lane_key);
  void OnNodeDone(const std::shared_ptr<Job>& job, NodeId id,
                  std::int64_t lane_key);
  static void BuildReport(const Job& job, ExecReport* report);

  vgpu::Platform* platform_;
  std::map<std::int64_t, Lane> lanes_;  // key = device * 3 + lane
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<JobPool> pool_;  // lazily created on first acquire
};

}  // namespace mgs::exec

#endif  // MGS_EXEC_EXECUTOR_H_
