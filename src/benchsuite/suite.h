// Shared infrastructure for the paper-reproduction benchmark binaries
// (bench/): experiment configs, environment knobs, and one-shot runners
// that build a fresh platform per run.
//
// Environment variables:
//   MGS_BENCH_ACTUAL_KEYS  cap on *actual* (functional) keys per run
//                          (default 2'000'000; raise for higher-fidelity
//                          pivots, lower for speed)
//   MGS_BENCH_REPEATS      repetitions per data point (default 3; the
//                          paper uses 10)
//   MGS_BENCH_CSV_DIR      also write every table as CSV into this dir

#ifndef MGS_BENCHSUITE_SUITE_H_
#define MGS_BENCHSUITE_SUITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/api.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/report.h"
#include "util/stats.h"
#include "vgpu/platform.h"

namespace mgs::bench {

/// Which sort to run.
enum class Algo {
  kP2p,
  kHet2n,
  kHet3n,
  kHet2nEager,
  kHet3nEager,
  kCpuParadis,
};

const char* AlgoToString(Algo algo);

/// One experiment data point.
struct SortConfig {
  std::string system;             // "ac922" | "delta-d22x" | "dgx-a100"
  Algo algo = Algo::kP2p;
  int gpus = 0;                   // 0 = all; ignored for kCpuParadis
  std::vector<int> gpu_set;       // explicit override (ordered)
  std::int64_t logical_keys = 0;  // paper-scale key count
  DataType type = DataType::kInt32;
  Distribution distribution = Distribution::kUniform;
  std::uint64_t seed = 42;
  double het_gpu_memory_budget = 0;  // per-GPU byte budget (0 = all)
  gpusort::SortAlgo device_sort = gpusort::SortAlgo::kThrustRadix;
  core::PivotPolicy pivot_policy = core::PivotPolicy::kLeftmost;
};

/// Cap on functional (actual) keys per run; logical sizes above the cap
/// use the scale model.
std::int64_t ActualKeyCap();

/// Repeats per data point.
int Repeats();

/// Runs one configuration once (fresh platform, fresh data) and returns
/// the stats. Verifies the output is sorted (aborts on corruption: a
/// benchmark must never report timings for wrong results).
Result<core::SortStats> RunOnce(const SortConfig& config);

/// Runs `Repeats()` times with varying seeds; returns per-run stats of the
/// total duration, and the stats object of the last run in `last` (for
/// phase breakdowns) if non-null.
Result<RunningStats> RunMany(SortConfig config,
                             core::SortStats* last = nullptr);

/// "2.0" style label for a key count in units of 1e9 (the paper's x-axes).
std::string KeysLabel(std::int64_t keys);

}  // namespace mgs::bench

#endif  // MGS_BENCHSUITE_SUITE_H_
