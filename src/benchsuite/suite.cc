#include "benchsuite/suite.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace mgs::bench {

const char* AlgoToString(Algo algo) {
  switch (algo) {
    case Algo::kP2p:
      return "P2P sort";
    case Algo::kHet2n:
      return "HET sort (2n)";
    case Algo::kHet3n:
      return "HET sort (3n)";
    case Algo::kHet2nEager:
      return "HET sort (2n+EM)";
    case Algo::kHet3nEager:
      return "HET sort (3n+EM)";
    case Algo::kCpuParadis:
      return "PARADIS (CPU)";
  }
  return "unknown";
}

std::int64_t ActualKeyCap() {
  if (const char* env = std::getenv("MGS_BENCH_ACTUAL_KEYS")) {
    const std::int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return 2'000'000;
}

int Repeats() {
  if (const char* env = std::getenv("MGS_BENCH_REPEATS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

namespace {

template <typename T>
Result<core::SortStats> RunTyped(const SortConfig& config) {
  const std::int64_t cap = ActualKeyCap();
  const std::int64_t actual =
      std::max<std::int64_t>(1, std::min(config.logical_keys, cap));
  const double scale =
      static_cast<double>(config.logical_keys) / static_cast<double>(actual);
  vgpu::PlatformOptions popts;
  popts.scale = std::max(1.0, scale);
  MGS_ASSIGN_OR_RETURN(auto topology, topo::MakeSystem(config.system));
  MGS_ASSIGN_OR_RETURN(auto platform,
                       vgpu::Platform::Create(std::move(topology), popts));

  DataGenOptions gen;
  gen.distribution = config.distribution;
  gen.seed = config.seed;
  vgpu::HostBuffer<T> data(GenerateKeys<T>(actual, gen));
  // Order-independent fingerprint: the output must be a permutation of the
  // input, not merely sorted (guards against dropped/duplicated keys).
  auto fingerprint = [](const std::vector<T>& v) {
    std::uint64_t h = 0;
    for (const T& x : v) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &x, sizeof(T) < 8 ? sizeof(T) : 8);
      bits = (bits ^ (bits >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h += bits ^ (bits >> 27);
    }
    return h;
  };
  const std::uint64_t input_fingerprint = fingerprint(data.vector());

  core::SortStats stats;
  if (config.algo == Algo::kCpuParadis) {
    MGS_ASSIGN_OR_RETURN(stats,
                         core::CpuSortBaseline(platform.get(), &data));
  } else if (config.algo == Algo::kP2p) {
    core::SortOptions options;
    options.device_sort = config.device_sort;
    options.pivot_policy = config.pivot_policy;
    options.gpu_set = config.gpu_set;
    if (options.gpu_set.empty() && config.gpus > 0) {
      MGS_ASSIGN_OR_RETURN(
          options.gpu_set,
          core::ChooseGpuSet(platform->topology(), config.gpus,
                             /*for_p2p_merge=*/true));
    }
    MGS_ASSIGN_OR_RETURN(stats, core::P2pSort(platform.get(), &data, options));
  } else {
    core::HetOptions options;
    options.device_sort = config.device_sort;
    options.gpu_set = config.gpu_set;
    options.scheme = (config.algo == Algo::kHet2n ||
                      config.algo == Algo::kHet2nEager)
                         ? core::BufferScheme::k2n
                         : core::BufferScheme::k3n;
    options.eager_merge = config.algo == Algo::kHet2nEager ||
                          config.algo == Algo::kHet3nEager;
    options.gpu_memory_budget = config.het_gpu_memory_budget;
    if (options.gpu_set.empty() && config.gpus > 0) {
      MGS_ASSIGN_OR_RETURN(
          options.gpu_set,
          core::ChooseGpuSet(platform->topology(), config.gpus,
                             /*for_p2p_merge=*/false));
    }
    MGS_ASSIGN_OR_RETURN(stats, core::HetSort(platform.get(), &data, options));
  }

  if (!std::is_sorted(data.vector().begin(), data.vector().end())) {
    return Status::Internal("benchmark produced unsorted output: " +
                            std::string(AlgoToString(config.algo)) + " on " +
                            config.system);
  }
  if (fingerprint(data.vector()) != input_fingerprint) {
    return Status::Internal(
        "benchmark output is not a permutation of its input: " +
        std::string(AlgoToString(config.algo)) + " on " + config.system);
  }
  return stats;
}

}  // namespace

Result<core::SortStats> RunOnce(const SortConfig& config) {
  switch (config.type) {
    case DataType::kInt32:
      return RunTyped<std::int32_t>(config);
    case DataType::kInt64:
      return RunTyped<std::int64_t>(config);
    case DataType::kFloat32:
      return RunTyped<float>(config);
    case DataType::kFloat64:
      return RunTyped<double>(config);
  }
  return Status::Invalid("unknown data type");
}

Result<RunningStats> RunMany(SortConfig config, core::SortStats* last) {
  RunningStats stats;
  const int repeats = Repeats();
  for (int r = 0; r < repeats; ++r) {
    config.seed = 42 + static_cast<std::uint64_t>(r) * 1000003;
    MGS_ASSIGN_OR_RETURN(auto run, RunOnce(config));
    stats.Add(run.total_seconds);
    if (last) *last = run;
  }
  return stats;
}

std::string KeysLabel(std::int64_t keys) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(keys) / 1e9);
  return buf;
}

}  // namespace mgs::bench
