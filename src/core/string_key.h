// Variable-length string keys with 8-byte normalized-key prefixes.
//
// The paper (Section 6) sorts fixed-width numeric keys only; real database
// workloads — index builds, dedup, merge joins — sort strings. This header
// makes every sorter in the library handle them through the same two
// customization points the numeric types use:
//
//   * operator<  — compares the 8-byte big-endian prefix hot (one integer
//     compare settles almost all pairs) and falls back to the full byte
//     string cold, so comparison sorters (multiway merge, pivot selection,
//     PARADIS cutoffs) pay string costs only on ties.
//   * RadixTraits<StringKey>::Encode — the same prefix as radix digits, with
//     kPrefixOnly = true so the radix entry points finish equal-prefix runs
//     with a comparison fix-up pass (see cpusort/radix_traits.h).
//
// Bytes live in a StringArena: sort buffers move 24-byte StringKey structs
// (prefix + pointer + length) while the character data stays put, which is
// also how GPU string sorts keep their device working set fixed-width.

#ifndef MGS_CORE_STRING_KEY_H_
#define MGS_CORE_STRING_KEY_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "core/common.h"
#include "cpusort/radix_traits.h"

namespace mgs::core {

/// Big-endian packing of the first 8 bytes of `s`, NUL-padded. Order
/// preserving for the prefix: byte[0] lands in the most significant
/// position, and NUL padding ranks a short string below every proper
/// extension of it (exactly the lexicographic rule, since no byte sorts
/// below 0x00).
inline std::uint64_t NormalizedPrefix(std::string_view s) {
  std::uint64_t p = 0;
  const std::size_t take = std::min<std::size_t>(s.size(), 8);
  for (std::size_t i = 0; i < take; ++i) {
    p |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[i]))
         << (56 - 8 * i);
  }
  return p;
}

/// A sortable view of a variable-length string: fixed 24 bytes, trivially
/// copyable, so device buffers / merge paths / radix scatters move it like
/// any numeric key. `bytes == nullptr` marks the padding sentinel, which
/// ranks above every real key.
struct StringKey {
  std::uint64_t prefix = 0;          // first 8 bytes, big-endian, NUL-padded
  const unsigned char* bytes = nullptr;  // full string (arena-owned), may be null
  std::uint32_t length = 0;

  std::string_view view() const {
    return {reinterpret_cast<const char*>(bytes), length};
  }

  friend bool operator<(const StringKey& a, const StringKey& b) {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    // Equal prefixes. Sentinels (null bytes) sort above all real keys.
    if (a.bytes == nullptr || b.bytes == nullptr) {
      return a.bytes != nullptr && b.bytes == nullptr;
    }
    if (a.length <= 8 || b.length <= 8) {
      // At least one string ends inside the prefix; with equal prefixes the
      // shorter (or equal) one is not greater, so order by length.
      return a.length < b.length;
    }
    const std::size_t an = a.length - 8, bn = b.length - 8;
    const int c = std::memcmp(a.bytes + 8, b.bytes + 8, std::min(an, bn));
    if (c != 0) return c < 0;
    return an < bn;
  }

  friend bool operator==(const StringKey& a, const StringKey& b) {
    if (a.prefix != b.prefix || a.length != b.length) return false;
    if (a.bytes == b.bytes) return true;
    if (a.bytes == nullptr || b.bytes == nullptr) return false;
    return a.length <= 8 ||
           std::memcmp(a.bytes + 8, b.bytes + 8, a.length - 8) == 0;
  }
};

static_assert(sizeof(StringKey) == 24);

/// Bump-pointer arena owning the character data behind StringKeys. Blocks
/// are never reallocated, so pointers handed out stay stable for the arena's
/// lifetime (the sort only moves 24-byte key structs, never the bytes).
class StringArena {
 public:
  static constexpr std::size_t kBlockBytes = 1 << 20;

  StringKey Add(std::string_view s) {
    const unsigned char* p = Append(s);
    return StringKey{NormalizedPrefix(s), p,
                     static_cast<std::uint32_t>(s.size())};
  }

  std::size_t bytes_used() const { return bytes_used_; }

 private:
  const unsigned char* Append(std::string_view s) {
    if (s.empty()) return reinterpret_cast<const unsigned char*>("");
    if (blocks_.empty() || block_fill_ + s.size() > kBlockBytes) {
      blocks_.push_back(std::make_unique<unsigned char[]>(
          std::max(kBlockBytes, s.size())));
      block_fill_ = 0;
    }
    unsigned char* dst = blocks_.back().get() + block_fill_;
    std::memcpy(dst, s.data(), s.size());
    block_fill_ += s.size();
    bytes_used_ += s.size();
    return dst;
  }

  std::vector<std::unique_ptr<unsigned char[]>> blocks_;
  std::size_t block_fill_ = 0;
  std::size_t bytes_used_ = 0;
};

/// Padding sentinel: maximal prefix with null bytes — operator< ranks it
/// above every real key (including real keys whose prefix is all 0xff).
template <>
struct SortableLimits<StringKey> {
  static StringKey Max() {
    return StringKey{~0ull, nullptr, 0xffff'ffffu};
  }
};

}  // namespace mgs::core

namespace mgs::cpusort {

/// Radix digits come from the normalized prefix only; kPrefixOnly makes the
/// radix entry points run FixupPrefixTies to settle longer shared prefixes.
template <>
struct RadixTraits<mgs::core::StringKey> {
  using Unsigned = std::uint64_t;
  static constexpr bool kPrefixOnly = true;
  static Unsigned Encode(const mgs::core::StringKey& k) { return k.prefix; }
};

}  // namespace mgs::cpusort

#endif  // MGS_CORE_STRING_KEY_H_
