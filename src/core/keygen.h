// Generators for the non-numeric key shapes (string keys, multi-column
// records). These live in core rather than util/datagen because they
// produce core types; they reuse datagen's Distribution vocabulary and
// SplitMix64 so every shape is deterministic for a fixed seed.
//
// String shapes by distribution:
//   kUniform        — random printable strings, uniform length in [4, 24]
//   kZipf           — zipfian draws from a ~4096-word vocabulary
//                     (duplicate-heavy, exercises equal-key runs)
//   kNormal /
//   kNearlySorted   — URL-like keys sharing a >8-byte prefix
//                     ("https://<domain>/<path>"), the adversarial case for
//                     normalized-key prefixes: every compare goes cold
//   kSorted /
//   kReverseSorted  — uniform shapes emitted in (reverse) sorted order

#ifndef MGS_CORE_KEYGEN_H_
#define MGS_CORE_KEYGEN_H_

#include <cstdint>
#include <vector>

#include "core/record.h"
#include "core/string_key.h"
#include "util/datagen.h"

namespace mgs::core {

/// Fills `arena` with `n` strings of the shape selected by
/// `options.distribution` and returns their sort keys. The arena must
/// outlive every use of the returned keys.
std::vector<StringKey> GenerateStringKeys(std::int64_t n,
                                          const DataGenOptions& options,
                                          StringArena* arena);

/// Generates `n` multi-column records: ORDER BY columns (a, b) follow the
/// requested numeric distribution, column c is a low-cardinality tie-break
/// column (so the cold path actually runs), rowid = i.
std::vector<SortRecord> GenerateRecords(std::int64_t n,
                                        const DataGenOptions& options);

}  // namespace mgs::core

#endif  // MGS_CORE_KEYGEN_H_
