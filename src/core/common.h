// Shared types for the multi-GPU sorting algorithms.

#ifndef MGS_CORE_COMMON_H_
#define MGS_CORE_COMMON_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/pivot.h"
#include "gpusort/primitives.h"
#include "util/status.h"

namespace mgs {
class ThreadPool;
}

namespace mgs::exec {
class GraphExecutor;
struct ExecReport;
}  // namespace mgs::exec

namespace mgs::core {

/// How a sorter drives its pipeline (see docs/executor.md).
enum class ExecMode {
  /// The seed behavior: coarse phases with global barriers; every GPU
  /// waits for the slowest peer at each phase boundary. Kept as the test
  /// oracle for the graph path.
  kPhased,
  /// Emit a task graph and let exec::GraphExecutor drain nodes as their
  /// data dependencies resolve — no global barriers, and concurrent jobs
  /// sharing one executor interleave at node granularity.
  kGraph,
};

inline const char* ExecModeToString(ExecMode mode) {
  return mode == ExecMode::kGraph ? "graph" : "phase";
}

/// End-to-end sort duration split into the four phases of Section 6.1
/// ("we define a phase to end when the last GPU completes executing it").
struct PhaseBreakdown {
  double htod = 0;   // host-to-device copies
  double sort = 0;   // on-GPU chunk sorts
  double merge = 0;  // P2P merge phase (P2P sort) or CPU merge (HET sort)
  double dtoh = 0;   // device-to-host copies
  double spill = 0;  // HET out-of-core: NVMe spill round-trip

  double total() const { return htod + sort + merge + dtoh + spill; }
};

/// Outcome of one sort run (all times are simulated seconds).
struct SortStats {
  double total_seconds = 0;
  PhaseBreakdown phases;
  int num_gpus = 0;
  std::int64_t keys = 0;               // logical keys sorted
  double p2p_bytes = 0;                // logical bytes moved between GPUs
  double pivot_seconds = 0;            // time spent in pivot selection
  int merge_stages = 0;                // P2P merge stages executed
  int chunk_groups = 1;                // HET: number of chunk groups
  int final_merge_sublists = 0;        // HET: k of the final CPU merge
  int nodes = 1;                       // DIST: cluster nodes participating
  double shuffle_bytes = 0;            // DIST: all-to-all shuffle bytes
  double cross_node_bytes = 0;         // DIST: shuffle bytes over the fabric
  double spilled_bytes = 0;            // HET: logical bytes staged to NVMe
  int spilled_runs = 0;                // HET: sorted runs spilled
  int spill_nvme = -1;                 // HET: nvme index used (-1 = none)
  std::string algorithm;
};

/// Options shared by both algorithms.
struct SortOptions {
  /// Ordered GPU set (Section 5.4). Empty selects a default set of all
  /// GPUs in topology-preferred order.
  std::vector<int> gpu_set;
  /// Single-GPU sorting primitive for the chunk sorts.
  gpusort::SortAlgo device_sort = gpusort::SortAlgo::kThrustRadix;
  /// Pivot policy for the P2P merge phase (ablation knob; the paper's
  /// algorithm uses the minimal-transfer leftmost pivot).
  PivotPolicy pivot_policy = PivotPolicy::kLeftmost;
  /// Thread pool for the host-side sorting work (HET / hybrid CPU multiway
  /// merge, CPU baseline). Null runs those phases single-threaded; the
  /// simulated durations are unaffected either way (they come from the
  /// calibrated model, not wall time).
  ThreadPool* host_pool = nullptr;
  /// Phase-barrier oracle (default) or task-graph execution.
  ExecMode exec_mode = ExecMode::kPhased;
  /// Non-null under kGraph: submit to this (typically server-owned, shared
  /// across tenants) executor instead of a job-private one, so concurrent
  /// jobs interleave at node level.
  exec::GraphExecutor* executor = nullptr;
  /// Node-dispatch priority under kGraph (larger overtakes queued nodes of
  /// lower-priority jobs at every lane decision).
  int exec_priority = 0;
  /// Non-null under kGraph: receives the per-node timeline and critical
  /// path of this sort's graph.
  exec::ExecReport* exec_report = nullptr;
  /// First stream index the sorter may use on each of its devices. Jobs
  /// sharing a GPU get disjoint stream ranges so their ops do not
  /// serialize through one FIFO (each sorter uses at most 3 streams).
  int stream_base = 0;
};

/// Largest value of a sortable element type, used as the device-side
/// padding sentinel (pads sort to the global tail and are never copied
/// back). Arithmetic types use numeric_limits; record types (core/record.h)
/// specialize.
template <typename T>
struct SortableLimits {
  static T Max() { return std::numeric_limits<T>::max(); }
};

/// Remote-read latency charged per key accessed during pivot selection
/// (binary search over P2P memory reads; Section 5.2 measures the whole
/// selection at ~0.03% of the run).
inline constexpr double kPivotRemoteReadLatency = 2e-6;

}  // namespace mgs::core

#endif  // MGS_CORE_COMMON_H_
