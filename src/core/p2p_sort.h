// P2P-based multi-GPU sort (Section 5.2), building on Tanasic et al. and
// generalized to any g = 2^k GPUs (Algorithm 2).
//
// Phase 1: each GPU copies its chunk from host memory and sorts it locally
// (Thrust-class radix sort with a pre-allocated auxiliary buffer).
// Phase 2: a recursive merge phase produces the globally sorted array:
// pairs of sorted halves select a leftmost pivot (Algorithm 1), exchange
// pivot-determined blocks via bidirectional P2P copies into the auxiliary
// buffers (out-of-place swap; the non-swapped remainder is copied
// device-locally, overlapping the interconnect transfer), and merge the two
// sorted runs GPU-locally. Chunks that are swapped wholesale just exchange
// buffer roles. Phase 3: chunks are copied back to host memory.
//
// Arbitrary input sizes are handled by padding the last chunk with +inf
// sentinels on the device (they sort to the global tail and are not copied
// back).

#ifndef MGS_CORE_P2P_SORT_H_
#define MGS_CORE_P2P_SORT_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "core/common.h"
#include "core/pivot.h"
#include "exec/executor.h"
#include "gpusort/device_sort.h"
#include "obs/phase.h"
#include "vgpu/platform.h"

namespace mgs::core {

namespace p2p_internal {

template <typename T>
struct Chunk {
  vgpu::Device* device = nullptr;
  vgpu::DeviceBuffer<T> primary;
  vgpu::DeviceBuffer<T> aux;
};

/// First error across the chunk devices (fail-stop loss or a sticky stream
/// error from a failed copy/kernel). The sort task polls this at phase
/// barriers: between barriers ops fail soft (skipped, streams poisoned),
/// and the barrier turns that into one Status for the whole job.
template <typename T>
Status ChunksHealth(const std::vector<Chunk<T>>& chunks) {
  for (const auto& chunk : chunks) {
    Status st = chunk.device->FirstError();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

template <typename T>
struct MergeContext {
  vgpu::Platform* platform;
  std::vector<Chunk<T>>* chunks;
  std::int64_t m;  // chunk size (actual elements)
  SortStats* stats;
  PivotPolicy pivot_policy = PivotPolicy::kLeftmost;
  /// First stream index to use (P2P/merge on +0, local copies on +1).
  int stream_base = 0;
};

/// Per-chunk record of what one merge stage's block swap deposited in the
/// chunk's aux buffer: the local range [swap_begin, swap_end) was received
/// from the remote half; the rest is the device-locally copied remainder.
struct Touched {
  bool any = false;
  std::int64_t swap_begin = 0;
  std::int64_t swap_end = 0;
};

/// Pivot selection + bidirectional block exchange for the two sorted
/// halves [lo, mid) and [mid, hi), including the stage-wide stream barrier
/// that guarantees every aux buffer is complete. Fills `touched[c]` for
/// each chunk (relative index c in [0, hi-lo)); the per-chunk local merges
/// (MergeChunkLocal) may then proceed independently — which is exactly the
/// graph cut the executor path exploits.
template <typename T>
[[gnu::noinline]] sim::Task<void> SwapPhase(MergeContext<T> ctx, int lo, int hi,
                          std::vector<Touched>* touched_out) {
  auto& chunks = *ctx.chunks;
  const int g = hi - lo;
  const int h = g / 2;
  const std::int64_t m = ctx.m;
  const std::int64_t half = static_cast<std::int64_t>(h) * m;
  const int sb = ctx.stream_base;
  touched_out->assign(static_cast<std::size_t>(g), Touched{});
  std::vector<Touched>& touched = *touched_out;

  // Leftmost pivot across the concatenated halves. Reads of device memory
  // model the P2P/binary-search accesses of Algorithm 1.
  auto read_left = [&chunks, lo, m](std::int64_t i) -> T {
    return chunks[static_cast<std::size_t>(lo + i / m)].primary[i % m];
  };
  auto read_right = [&chunks, lo, h, m](std::int64_t i) -> T {
    return chunks[static_cast<std::size_t>(lo + h + i / m)].primary[i % m];
  };
  const PivotResult pr =
      SelectPivot<T>(read_left, read_right, half, ctx.pivot_policy);
  const double pivot_cost = pr.reads * kPivotRemoteReadLatency;
  ctx.stats->pivot_seconds += pivot_cost;
  ctx.stats->merge_stages += 1;
  co_await sim::Delay{ctx.platform->simulator(), pivot_cost};
  const std::int64_t p = pr.pivot;
  if (p == 0) co_return;  // halves already ordered: skip the swap entirely

  ctx.stats->p2p_bytes +=
      2.0 * static_cast<double>(p) * sizeof(T) * ctx.platform->scale();

  // Exchange the last p keys of the left half with the first p keys of the
  // right half, segment by segment so no copy crosses a chunk boundary.
  // Swaps land in the aux buffers; the kept remainders are copied
  // device-locally (overlapped with the P2P transfers).
  std::int64_t j = 0;
  while (j < p) {
    const std::int64_t a_pos = half - p + j;  // in left half
    const std::int64_t b_pos = j;             // in right half
    const std::int64_t a_off = a_pos % m;
    const std::int64_t b_off = b_pos % m;
    const std::int64_t len =
        std::min({m - a_off, m - b_off, p - j});
    const int ci = lo + static_cast<int>(a_pos / m);
    const int cj = lo + h + static_cast<int>(b_pos / m);
    auto& left = chunks[static_cast<std::size_t>(ci)];
    auto& right = chunks[static_cast<std::size_t>(cj)];
    // Bidirectional P2P copies, each driven by its source GPU.
    left.device->stream(sb).MemcpyPeerAsync(right.aux, b_off, left.primary,
                                            a_off, len);
    right.device->stream(sb).MemcpyPeerAsync(left.aux, a_off, right.primary,
                                             b_off, len);
    auto& tl = touched[static_cast<std::size_t>(ci - lo)];
    if (!tl.any) {
      tl.any = true;
      tl.swap_begin = a_off;
      tl.swap_end = a_off + len;
    } else {
      tl.swap_begin = std::min(tl.swap_begin, a_off);
      tl.swap_end = std::max(tl.swap_end, a_off + len);
    }
    auto& tr = touched[static_cast<std::size_t>(cj - lo)];
    if (!tr.any) {
      tr.any = true;
      tr.swap_begin = b_off;
      tr.swap_end = b_off + len;
    } else {
      tr.swap_begin = std::min(tr.swap_begin, b_off);
      tr.swap_end = std::max(tr.swap_end, b_off + len);
    }
    j += len;
  }

  // Device-local copies of the kept remainders into aux (stream sb+1: the
  // local engine overlaps the P2P stream).
  for (int c = 0; c < g; ++c) {
    auto& t = touched[static_cast<std::size_t>(c)];
    if (!t.any) continue;
    auto& chunk = chunks[static_cast<std::size_t>(lo + c)];
    if (t.swap_begin > 0) {
      chunk.device->stream(sb + 1).MemcpyDtoDAsync(chunk.aux, 0,
                                                   chunk.primary, 0,
                                                   t.swap_begin);
    }
    if (t.swap_end < m) {
      chunk.device->stream(sb + 1).MemcpyDtoDAsync(chunk.aux, t.swap_end,
                                                   chunk.primary, t.swap_end,
                                                   m - t.swap_end);
    }
  }

  // Barrier: all P2P and local copies of this stage must land before the
  // local merges read the aux buffers.
  {
    std::vector<sim::JoinerPtr> joins;
    for (int c = 0; c < g; ++c) {
      if (!touched[static_cast<std::size_t>(c)].any) continue;
      auto& chunk = chunks[static_cast<std::size_t>(lo + c)];
      joins.push_back(sim::Spawn(chunk.device->stream(sb).Synchronize()));
      joins.push_back(
          sim::Spawn(chunk.device->stream(sb + 1).Synchronize()));
    }
    co_await sim::WhenAll(std::move(joins));
  }
}

/// One chunk's local merge after SwapPhase: aux holds [kept][received]
/// (left chunks) or [received][kept] (right chunks) — in both cases two
/// sorted runs split at the swap boundary. Fully-swapped chunks (boundary
/// at 0 or m) just exchange buffer roles. `c` is the chunk's relative
/// index in [0, hi-lo).
template <typename T>
[[gnu::noinline]] sim::Task<void> MergeChunkLocal(MergeContext<T> ctx, int lo, int hi, int c,
                                Touched t) {
  auto& chunks = *ctx.chunks;
  const int h = (hi - lo) / 2;
  const std::int64_t m = ctx.m;
  auto& chunk = chunks[static_cast<std::size_t>(lo + c)];
  if (t.swap_begin == 0 && t.swap_end == m) {
    std::swap(chunk.primary, chunk.aux);
    co_return;
  }
  const std::int64_t split = c < h ? t.swap_begin : t.swap_end;
  auto& stream = chunk.device->stream(ctx.stream_base);
  gpusort::MergeLocalAsync(stream, chunk.primary, 0, chunk.aux, 0, split,
                           split, m - split);
  co_await stream.Synchronize();
}

/// Graph-node form of MergeChunkLocal: reads the stage's Touched vector
/// (kept alive by the shared_ptr) at run time, after the swap node filled
/// it, and no-ops for chunks the stage never touched.
template <typename T>
[[gnu::noinline]] sim::Task<void> MergeChunkIfTouched(
    MergeContext<T> ctx, int lo, int hi, int c,
    std::shared_ptr<std::vector<Touched>> touched) {
  const Touched t = (*touched)[static_cast<std::size_t>(c)];
  if (!t.any) co_return;
  co_await MergeChunkLocal(ctx, lo, hi, c, t);
}

/// Phase-barrier form of one merge stage (the oracle path): swap, then all
/// per-chunk local merges concurrently.
template <typename T>
[[gnu::noinline]] sim::Task<void> MergeStage(MergeContext<T> ctx, int lo, int hi) {
  std::vector<Touched> touched;
  co_await SwapPhase(ctx, lo, hi, &touched);
  std::vector<sim::JoinerPtr> joins;
  for (int c = 0; c < hi - lo; ++c) {
    if (!touched[static_cast<std::size_t>(c)].any) continue;
    joins.push_back(sim::Spawn(
        MergeChunkLocal(ctx, lo, hi, c, touched[static_cast<std::size_t>(c)])));
  }
  co_await sim::WhenAll(std::move(joins));
}

/// Context for the per-chunk phase-1/3 steps, shared by the phased oracle
/// and the graph node bodies. Namespace-scope coroutines (not lambdas in
/// P2pSortTask) for the COMDAT-group reason documented on
/// het_internal::HetContext.
template <typename T>
struct StepContext {
  vgpu::Platform* platform = nullptr;
  vgpu::HostBuffer<T>* data = nullptr;
  std::vector<Chunk<T>>* chunks = nullptr;
  std::int64_t m = 0;  // chunk size (last chunk padded)
  std::int64_t n = 0;  // total keys
  gpusort::SortAlgo device_sort = gpusort::SortAlgo::kThrustRadix;
  int sb = 0;  // first stream index (SortOptions::stream_base)
};

/// HtoD of chunk i; pads the tail of the last chunk with +inf sentinels.
template <typename T>
[[gnu::noinline]] sim::Task<void> UploadChunk(StepContext<T> ctx, int i) {
  auto& chunk = (*ctx.chunks)[static_cast<std::size_t>(i)];
  const std::int64_t begin = static_cast<std::int64_t>(i) * ctx.m;
  const std::int64_t count = std::max<std::int64_t>(
      0, std::min(ctx.m, ctx.n - begin));  // trailing chunks: all padding
  auto& stream = chunk.device->stream(ctx.sb);
  if (count > 0) {
    stream.MemcpyHtoDAsync(chunk.primary, 0, *ctx.data, begin, count);
  }
  if (count < ctx.m) {
    T* pad_begin = chunk.primary.data() + count;
    const std::int64_t pad = ctx.m - count;
    const double fill_time = static_cast<double>(pad) * sizeof(T) *
                             ctx.platform->scale() /
                             chunk.device->spec().memory_bandwidth;
    stream.LaunchAsync(
        fill_time,
        [pad_begin, pad] {
          std::fill(pad_begin, pad_begin + pad, SortableLimits<T>::Max());
        },
        "pad-fill");
  }
  co_await stream.Synchronize();
}

template <typename T>
[[gnu::noinline]] sim::Task<void> SortChunk(StepContext<T> ctx, int i) {
  auto& chunk = (*ctx.chunks)[static_cast<std::size_t>(i)];
  auto& stream = chunk.device->stream(ctx.sb);
  gpusort::SortAsync(stream, chunk.primary, 0, ctx.m, chunk.aux,
                     ctx.device_sort);
  co_await stream.Synchronize();
}

/// DtoH of chunk i; sentinels at the global tail stay behind.
template <typename T>
[[gnu::noinline]] sim::Task<void> DownloadChunk(StepContext<T> ctx, int i) {
  auto& chunk = (*ctx.chunks)[static_cast<std::size_t>(i)];
  const std::int64_t begin = static_cast<std::int64_t>(i) * ctx.m;
  const std::int64_t count =
      std::max<std::int64_t>(0, std::min(ctx.m, ctx.n - begin));
  auto& stream = chunk.device->stream(ctx.sb);
  if (count > 0) {
    stream.MemcpyDtoHAsync(*ctx.data, begin, chunk.primary, 0, count);
  }
  co_await stream.Synchronize();
}

/// Algorithm 2: recursive merge of chunks [lo, hi).
template <typename T>
[[gnu::noinline]] sim::Task<void> MergeChunks(MergeContext<T> ctx, int lo, int hi) {
  const int g = hi - lo;
  if (g < 2) co_return;
  const int mid = lo + g / 2;
  if (g > 2) {
    std::vector<sim::JoinerPtr> joins;
    joins.push_back(sim::Spawn(MergeChunks(ctx, lo, mid)));
    joins.push_back(sim::Spawn(MergeChunks(ctx, mid, hi)));
    co_await sim::WhenAll(std::move(joins));
  }
  co_await MergeStage(ctx, lo, hi);
  if (g > 2) {
    std::vector<sim::JoinerPtr> joins;
    joins.push_back(sim::Spawn(MergeChunks(ctx, lo, mid)));
    joins.push_back(sim::Spawn(MergeChunks(ctx, mid, hi)));
    co_await sim::WhenAll(std::move(joins));
  }
}

}  // namespace p2p_internal

/// Reentrant coroutine form of P2pSort: validates, allocates, and runs the
/// three phases on the platform's *shared* simulator without driving it, so
/// several sorts may execute concurrently and genuinely contend in the flow
/// network (the multi-tenant service in src/sched runs jobs this way). On
/// completion `*out` holds the stats or the error; `total_seconds` and the
/// phase breakdown span this call only — contention from co-running tenants
/// shows up as longer phases, not as a separate term. Device buffers are
/// allocated eagerly, before the first suspension point, so a caller that
/// reserved memory may release the reservation immediately before awaiting.
template <typename T>
[[gnu::noinline]] sim::Task<void> P2pSortTask(vgpu::Platform* platform,
                            vgpu::HostBuffer<T>* data, SortOptions options,
                            Result<SortStats>* out) {
  using p2p_internal::Chunk;
  using p2p_internal::MergeContext;

  std::vector<int> gpus = options.gpu_set;
  if (gpus.empty()) {
    for (int g = 0; g < platform->num_devices(); ++g) gpus.push_back(g);
  }
  const int g = static_cast<int>(gpus.size());
  if ((g & (g - 1)) != 0) {
    *out = Status::Invalid("P2P sort requires a power-of-two GPU count, got " +
                           std::to_string(g));
    co_return;
  }
  for (int id : gpus) {
    if (id < 0 || id >= platform->num_devices()) {
      *out = Status::Invalid("no such GPU: " + std::to_string(id));
      co_return;
    }
  }
  const std::int64_t n = data->size();
  SortStats stats;
  stats.algorithm = "P2P sort";
  stats.num_gpus = g;
  stats.keys = static_cast<std::int64_t>(
      static_cast<double>(n) * platform->scale());
  if (n == 0) {
    *out = std::move(stats);
    co_return;
  }

  const std::int64_t m = (n + g - 1) / g;  // chunk size, last chunk padded
  std::vector<Chunk<T>> chunks(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    auto& chunk = chunks[static_cast<std::size_t>(i)];
    chunk.device = &platform->device(gpus[static_cast<std::size_t>(i)]);
    if (chunk.device->failed()) {
      *out = chunk.device->fail_status();
      co_return;
    }
    // A fresh job must not inherit a previous tenant's sticky copy errors.
    chunk.device->ResetStreamErrors();
    auto primary = chunk.device->template Allocate<T>(m);
    if (!primary.ok()) {
      *out = primary.status();
      co_return;
    }
    chunk.primary = std::move(*primary);
    auto aux = chunk.device->template Allocate<T>(m);
    if (!aux.ok()) {
      *out = aux.status();
      co_return;
    }
    chunk.aux = std::move(*aux);
  }

  const int sb = options.stream_base;
  p2p_internal::StepContext<T> sctx;
  sctx.platform = platform;
  sctx.data = data;
  sctx.chunks = &chunks;
  sctx.m = m;
  sctx.n = n;
  sctx.device_sort = options.device_sort;
  sctx.sb = sb;
  MergeContext<T> ctx{platform, &chunks, m,
                      &stats,   options.pivot_policy, sb};
  const double t0 = platform->simulator().Now();

  if (options.exec_mode == ExecMode::kPhased) {
    obs::PhaseTracker phase_metrics(platform->metrics(), &platform->network(),
                                    &platform->topology(), "p2p");
    phase_metrics.StartPhase("htod", t0);
    // Phase 1a: HtoD.
    {
      std::vector<sim::JoinerPtr> joins;
      for (int i = 0; i < g; ++i) {
        joins.push_back(sim::Spawn(p2p_internal::UploadChunk(sctx, i)));
      }
      co_await sim::WhenAll(std::move(joins));
    }
    if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
      *out = st;  // frame destruction frees the device buffers
      co_return;
    }
    const double t_htod = platform->simulator().Now();
    phase_metrics.StartPhase("sort", t_htod);

    // Phase 1b: local chunk sorts.
    {
      std::vector<sim::JoinerPtr> joins;
      for (int i = 0; i < g; ++i) {
        joins.push_back(sim::Spawn(p2p_internal::SortChunk(sctx, i)));
      }
      co_await sim::WhenAll(std::move(joins));
    }
    if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
      *out = st;
      co_return;
    }
    const double t_sort = platform->simulator().Now();
    phase_metrics.StartPhase("merge", t_sort);

    // Phase 2: recursive P2P merge.
    co_await p2p_internal::MergeChunks(ctx, 0, g);
    if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
      *out = st;
      co_return;
    }
    const double t_merge = platform->simulator().Now();
    phase_metrics.StartPhase("dtoh", t_merge);

    // Phase 3: DtoH.
    {
      std::vector<sim::JoinerPtr> joins;
      for (int i = 0; i < g; ++i) {
        joins.push_back(sim::Spawn(p2p_internal::DownloadChunk(sctx, i)));
      }
      co_await sim::WhenAll(std::move(joins));
    }
    if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
      *out = st;
      co_return;
    }
    phase_metrics.Finish(platform->simulator().Now());
    stats.total_seconds = platform->simulator().Now() - t0;
    stats.phases.htod = t_htod - t0;
    stats.phases.sort = t_sort - t_htod;
    stats.phases.merge = t_merge - t_sort;
    stats.phases.dtoh = t0 + stats.total_seconds - t_merge;
    *out = std::move(stats);
    co_return;
  }

  // Graph mode: emit one node per pipeline step with explicit data
  // dependencies and let the executor drain them — a chunk's sort starts
  // the moment its own upload lands, a merge stage starts when its input
  // chunks are ready, and downloads overlap still-running merges of other
  // subtrees. Equivalence contract with the phased oracle: docs/executor.md
  // (same data movement and results; faults are detected once at the end
  // instead of at each barrier). The executor is chosen before the build so
  // the graph's node storage can come from its recycling pool.
  exec::GraphExecutor local_executor(platform);
  exec::GraphExecutor* executor =
      options.executor ? options.executor : &local_executor;
  exec::TaskGraph graph = executor->AcquireGraph();
  constexpr exec::BufferToken kHostToken = -1000000;
  graph.AddInput(kHostToken);
  // Chunk c's primary buffer after its v-th writer; negative tokens mark
  // whole-stage swap completion.
  auto chunk_token = [](int c, int version) -> exec::BufferToken {
    return static_cast<exec::BufferToken>(c) * 4096 + version;
  };
  std::vector<int> ver(static_cast<std::size_t>(g), 1);
  std::vector<exec::NodeId> last(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    const int dev = gpus[static_cast<std::size_t>(i)];
    const exec::NodeId h_node = graph.AddNode(
        exec::NodeKind::kHtoDCopy, dev,
        [sctx, i] { return p2p_internal::UploadChunk(sctx, i); },
        "htod" + std::to_string(i));
    graph.Consumes(h_node, kHostToken);
    graph.Produces(h_node, chunk_token(i, 0));
    const exec::NodeId s_node = graph.AddNode(
        exec::NodeKind::kChunkSort, dev,
        [sctx, i] { return p2p_internal::SortChunk(sctx, i); },
        "sort" + std::to_string(i));
    graph.AddEdge(h_node, s_node);
    graph.Consumes(s_node, chunk_token(i, 0));
    graph.Produces(s_node, chunk_token(i, 1));
    last[static_cast<std::size_t>(i)] = s_node;
  }

  // Unroll the MergeChunks recursion into swap + per-chunk merge nodes.
  // Each stage's Touched vector is filled by its swap node and read by its
  // merge nodes (ordered by the swap->merge edges).
  int stage_count = 0;
  auto emit_stage = [&](int lo, int hi) {
    auto touched = std::make_shared<std::vector<p2p_internal::Touched>>();
    const exec::NodeId w = graph.AddNode(
        exec::NodeKind::kBlockSwap, gpus[static_cast<std::size_t>(lo)],
        [ctx, lo, hi, touched] {
          return p2p_internal::SwapPhase(ctx, lo, hi, touched.get());
        },
        "swap[" + std::to_string(lo) + "," + std::to_string(hi) + ")");
    const exec::BufferToken stage_token = -(++stage_count);
    graph.Produces(w, stage_token);
    for (int c = lo; c < hi; ++c) {
      graph.AddEdge(last[static_cast<std::size_t>(c)], w);
      graph.Consumes(w, chunk_token(c, ver[static_cast<std::size_t>(c)]));
    }
    for (int c = lo; c < hi; ++c) {
      const int rel = c - lo;
      const exec::NodeId m_node = graph.AddNode(
          exec::NodeKind::kMergeStep, gpus[static_cast<std::size_t>(c)],
          [ctx, lo, hi, rel, touched] {
            return p2p_internal::MergeChunkIfTouched(ctx, lo, hi, rel,
                                                     touched);
          },
          "merge" + std::to_string(c));
      graph.AddEdge(w, m_node);
      graph.Consumes(m_node, stage_token);
      ver[static_cast<std::size_t>(c)] += 1;
      graph.Produces(m_node,
                     chunk_token(c, ver[static_cast<std::size_t>(c)]));
      last[static_cast<std::size_t>(c)] = m_node;
    }
  };
  auto emit_merge = [&](auto&& self, int lo, int hi) -> void {
    const int span = hi - lo;
    if (span < 2) return;
    const int mid = lo + span / 2;
    if (span > 2) {
      self(self, lo, mid);
      self(self, mid, hi);
    }
    emit_stage(lo, hi);
    if (span > 2) {
      self(self, lo, mid);
      self(self, mid, hi);
    }
  };
  emit_merge(emit_merge, 0, g);

  for (int i = 0; i < g; ++i) {
    const exec::NodeId d_node = graph.AddNode(
        exec::NodeKind::kDtoHCopy, gpus[static_cast<std::size_t>(i)],
        [sctx, i] { return p2p_internal::DownloadChunk(sctx, i); },
        "dtoh" + std::to_string(i));
    graph.AddEdge(last[static_cast<std::size_t>(i)], d_node);
    graph.Consumes(d_node, chunk_token(i, ver[static_cast<std::size_t>(i)]));
  }

  exec::GraphJobOptions job_options;
  job_options.priority = options.exec_priority;
  job_options.label = "p2p";
  exec::ExecReport local_report;
  exec::ExecReport* report =
      options.exec_report ? options.exec_report : &local_report;
  co_await executor->Run(std::move(graph), std::move(job_options), report);
  // Single health poll: ops between barriers fail soft, so with the
  // barriers gone the first error surfaces here (the chunk-order-first
  // error, which may differ from the earliest-barrier error the phased
  // path reports — same status code either way).
  if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  // Post-hoc phase attribution from per-kind completion frontiers; phases
  // overlap under graph execution, so later frontiers clamp monotonically
  // (same convention as the HET pipeline).
  double htod_end = t0, sort_end = t0, merge_end = t0, last_end = t0;
  for (const exec::NodeRun& run : report->nodes) {
    last_end = std::max(last_end, run.end);
    switch (run.kind) {
      case exec::NodeKind::kHtoDCopy:
        htod_end = std::max(htod_end, run.end);
        break;
      case exec::NodeKind::kChunkSort:
        sort_end = std::max(sort_end, run.end);
        break;
      case exec::NodeKind::kBlockSwap:
      case exec::NodeKind::kMergeStep:
        merge_end = std::max(merge_end, run.end);
        break;
      default:
        break;
    }
  }
  sort_end = std::max(sort_end, htod_end);
  merge_end = std::max(merge_end, sort_end);
  stats.phases.htod = htod_end - t0;
  stats.phases.sort = sort_end - htod_end;
  stats.phases.merge = merge_end - sort_end;
  stats.phases.dtoh = last_end - merge_end;
  stats.total_seconds = platform->simulator().Now() - t0;
  obs::RecordPhaseBreakdown(platform->metrics(), "p2p",
                            {{"htod", stats.phases.htod},
                             {"sort", stats.phases.sort},
                             {"merge", stats.phases.merge},
                             {"dtoh", stats.phases.dtoh}});
  *out = std::move(stats);
}

/// Sorts `data` (host memory, NUMA node 0 by convention) ascending using
/// the P2P multi-GPU algorithm on `options.gpu_set`. The data must fit the
/// combined memory of the selected GPUs (primary + auxiliary buffer per
/// GPU). Returns phase-level timing statistics in simulated seconds. Drives
/// the platform's simulator to completion; for concurrent execution on a
/// shared simulator use P2pSortTask.
template <typename T>
Result<SortStats> P2pSort(vgpu::Platform* platform, vgpu::HostBuffer<T>* data,
                          const SortOptions& options) {
  Result<SortStats> out = Status::Internal("P2P sort task never ran");
  MGS_RETURN_IF_ERROR(
      platform->Run(P2pSortTask(platform, data, options, &out)).status());
  return out;
}

}  // namespace mgs::core

#endif  // MGS_CORE_P2P_SORT_H_
