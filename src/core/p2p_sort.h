// P2P-based multi-GPU sort (Section 5.2), building on Tanasic et al. and
// generalized to any g = 2^k GPUs (Algorithm 2).
//
// Phase 1: each GPU copies its chunk from host memory and sorts it locally
// (Thrust-class radix sort with a pre-allocated auxiliary buffer).
// Phase 2: a recursive merge phase produces the globally sorted array:
// pairs of sorted halves select a leftmost pivot (Algorithm 1), exchange
// pivot-determined blocks via bidirectional P2P copies into the auxiliary
// buffers (out-of-place swap; the non-swapped remainder is copied
// device-locally, overlapping the interconnect transfer), and merge the two
// sorted runs GPU-locally. Chunks that are swapped wholesale just exchange
// buffer roles. Phase 3: chunks are copied back to host memory.
//
// Arbitrary input sizes are handled by padding the last chunk with +inf
// sentinels on the device (they sort to the global tail and are not copied
// back).

#ifndef MGS_CORE_P2P_SORT_H_
#define MGS_CORE_P2P_SORT_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "core/common.h"
#include "core/pivot.h"
#include "gpusort/device_sort.h"
#include "vgpu/platform.h"

namespace mgs::core {

namespace p2p_internal {

template <typename T>
struct Chunk {
  vgpu::Device* device = nullptr;
  vgpu::DeviceBuffer<T> primary;
  vgpu::DeviceBuffer<T> aux;
};

/// First error across the chunk devices (fail-stop loss or a sticky stream
/// error from a failed copy/kernel). The sort task polls this at phase
/// barriers: between barriers ops fail soft (skipped, streams poisoned),
/// and the barrier turns that into one Status for the whole job.
template <typename T>
Status ChunksHealth(const std::vector<Chunk<T>>& chunks) {
  for (const auto& chunk : chunks) {
    Status st = chunk.device->FirstError();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

template <typename T>
struct MergeContext {
  vgpu::Platform* platform;
  std::vector<Chunk<T>>* chunks;
  std::int64_t m;  // chunk size (actual elements)
  SortStats* stats;
  PivotPolicy pivot_policy = PivotPolicy::kLeftmost;
};

/// Swap + local-merge for the two sorted halves [lo, mid) and [mid, hi) of
/// the chunk array, each half fully sorted across its chunks.
template <typename T>
sim::Task<void> MergeStage(MergeContext<T> ctx, int lo, int hi) {
  auto& chunks = *ctx.chunks;
  const int g = hi - lo;
  const int h = g / 2;
  const std::int64_t m = ctx.m;
  const std::int64_t half = static_cast<std::int64_t>(h) * m;

  // Leftmost pivot across the concatenated halves. Reads of device memory
  // model the P2P/binary-search accesses of Algorithm 1.
  auto read_left = [&chunks, lo, m](std::int64_t i) -> T {
    return chunks[static_cast<std::size_t>(lo + i / m)].primary[i % m];
  };
  auto read_right = [&chunks, lo, h, m](std::int64_t i) -> T {
    return chunks[static_cast<std::size_t>(lo + h + i / m)].primary[i % m];
  };
  const PivotResult pr =
      SelectPivot<T>(read_left, read_right, half, ctx.pivot_policy);
  const double pivot_cost = pr.reads * kPivotRemoteReadLatency;
  ctx.stats->pivot_seconds += pivot_cost;
  ctx.stats->merge_stages += 1;
  co_await sim::Delay{ctx.platform->simulator(), pivot_cost};
  const std::int64_t p = pr.pivot;
  if (p == 0) co_return;  // halves already ordered: skip the swap entirely

  ctx.stats->p2p_bytes +=
      2.0 * static_cast<double>(p) * sizeof(T) * ctx.platform->scale();

  // Exchange the last p keys of the left half with the first p keys of the
  // right half, segment by segment so no copy crosses a chunk boundary.
  // Swaps land in the aux buffers; the kept remainders are copied
  // device-locally (overlapped with the P2P transfers).
  struct Touched {
    bool any = false;
    std::int64_t swap_begin = 0;  // local range [swap_begin, swap_end)
    std::int64_t swap_end = 0;    // received from the remote half
  };
  std::vector<Touched> touched(static_cast<std::size_t>(g));

  std::int64_t j = 0;
  while (j < p) {
    const std::int64_t a_pos = half - p + j;  // in left half
    const std::int64_t b_pos = j;             // in right half
    const std::int64_t a_off = a_pos % m;
    const std::int64_t b_off = b_pos % m;
    const std::int64_t len =
        std::min({m - a_off, m - b_off, p - j});
    const int ci = lo + static_cast<int>(a_pos / m);
    const int cj = lo + h + static_cast<int>(b_pos / m);
    auto& left = chunks[static_cast<std::size_t>(ci)];
    auto& right = chunks[static_cast<std::size_t>(cj)];
    // Bidirectional P2P copies, each driven by its source GPU.
    left.device->stream(0).MemcpyPeerAsync(right.aux, b_off, left.primary,
                                           a_off, len);
    right.device->stream(0).MemcpyPeerAsync(left.aux, a_off, right.primary,
                                            b_off, len);
    auto& tl = touched[static_cast<std::size_t>(ci - lo)];
    if (!tl.any) {
      tl.any = true;
      tl.swap_begin = a_off;
      tl.swap_end = a_off + len;
    } else {
      tl.swap_begin = std::min(tl.swap_begin, a_off);
      tl.swap_end = std::max(tl.swap_end, a_off + len);
    }
    auto& tr = touched[static_cast<std::size_t>(cj - lo)];
    if (!tr.any) {
      tr.any = true;
      tr.swap_begin = b_off;
      tr.swap_end = b_off + len;
    } else {
      tr.swap_begin = std::min(tr.swap_begin, b_off);
      tr.swap_end = std::max(tr.swap_end, b_off + len);
    }
    j += len;
  }

  // Device-local copies of the kept remainders into aux (stream 1: the
  // local engine overlaps the P2P stream).
  for (int c = 0; c < g; ++c) {
    auto& t = touched[static_cast<std::size_t>(c)];
    if (!t.any) continue;
    auto& chunk = chunks[static_cast<std::size_t>(lo + c)];
    if (t.swap_begin > 0) {
      chunk.device->stream(1).MemcpyDtoDAsync(chunk.aux, 0, chunk.primary, 0,
                                              t.swap_begin);
    }
    if (t.swap_end < m) {
      chunk.device->stream(1).MemcpyDtoDAsync(chunk.aux, t.swap_end,
                                              chunk.primary, t.swap_end,
                                              m - t.swap_end);
    }
  }

  // Barrier: all P2P and local copies of this stage must land before the
  // local merges read the aux buffers.
  {
    std::vector<sim::JoinerPtr> joins;
    for (int c = 0; c < g; ++c) {
      if (!touched[static_cast<std::size_t>(c)].any) continue;
      auto& chunk = chunks[static_cast<std::size_t>(lo + c)];
      joins.push_back(sim::Spawn(chunk.device->stream(0).Synchronize()));
      joins.push_back(sim::Spawn(chunk.device->stream(1).Synchronize()));
    }
    co_await sim::WhenAll(std::move(joins));
  }

  // Local merges: aux holds [kept][received] (left chunks) or
  // [received][kept] (right chunks) — in both cases two sorted runs split
  // at the swap boundary. Fully-swapped chunks (boundary at 0 or m) just
  // exchange buffer roles.
  for (int c = 0; c < g; ++c) {
    auto& t = touched[static_cast<std::size_t>(c)];
    if (!t.any) continue;
    auto& chunk = chunks[static_cast<std::size_t>(lo + c)];
    const bool full_chunk_swap = t.swap_begin == 0 && t.swap_end == m;
    if (full_chunk_swap) {
      std::swap(chunk.primary, chunk.aux);
      continue;
    }
    const std::int64_t split = c < h ? t.swap_begin : t.swap_end;
    gpusort::MergeLocalAsync(chunk.device->stream(0), chunk.primary, 0,
                             chunk.aux, 0, split, split, m - split);
  }
  {
    std::vector<sim::JoinerPtr> joins;
    for (int c = 0; c < g; ++c) {
      if (!touched[static_cast<std::size_t>(c)].any) continue;
      auto& chunk = chunks[static_cast<std::size_t>(lo + c)];
      joins.push_back(sim::Spawn(chunk.device->stream(0).Synchronize()));
    }
    co_await sim::WhenAll(std::move(joins));
  }
}

/// Algorithm 2: recursive merge of chunks [lo, hi).
template <typename T>
sim::Task<void> MergeChunks(MergeContext<T> ctx, int lo, int hi) {
  const int g = hi - lo;
  if (g < 2) co_return;
  const int mid = lo + g / 2;
  if (g > 2) {
    std::vector<sim::JoinerPtr> joins;
    joins.push_back(sim::Spawn(MergeChunks(ctx, lo, mid)));
    joins.push_back(sim::Spawn(MergeChunks(ctx, mid, hi)));
    co_await sim::WhenAll(std::move(joins));
  }
  co_await MergeStage(ctx, lo, hi);
  if (g > 2) {
    std::vector<sim::JoinerPtr> joins;
    joins.push_back(sim::Spawn(MergeChunks(ctx, lo, mid)));
    joins.push_back(sim::Spawn(MergeChunks(ctx, mid, hi)));
    co_await sim::WhenAll(std::move(joins));
  }
}

}  // namespace p2p_internal

/// Reentrant coroutine form of P2pSort: validates, allocates, and runs the
/// three phases on the platform's *shared* simulator without driving it, so
/// several sorts may execute concurrently and genuinely contend in the flow
/// network (the multi-tenant service in src/sched runs jobs this way). On
/// completion `*out` holds the stats or the error; `total_seconds` and the
/// phase breakdown span this call only — contention from co-running tenants
/// shows up as longer phases, not as a separate term. Device buffers are
/// allocated eagerly, before the first suspension point, so a caller that
/// reserved memory may release the reservation immediately before awaiting.
template <typename T>
sim::Task<void> P2pSortTask(vgpu::Platform* platform,
                            vgpu::HostBuffer<T>* data, SortOptions options,
                            Result<SortStats>* out) {
  using p2p_internal::Chunk;
  using p2p_internal::MergeContext;

  std::vector<int> gpus = options.gpu_set;
  if (gpus.empty()) {
    for (int g = 0; g < platform->num_devices(); ++g) gpus.push_back(g);
  }
  const int g = static_cast<int>(gpus.size());
  if ((g & (g - 1)) != 0) {
    *out = Status::Invalid("P2P sort requires a power-of-two GPU count, got " +
                           std::to_string(g));
    co_return;
  }
  for (int id : gpus) {
    if (id < 0 || id >= platform->num_devices()) {
      *out = Status::Invalid("no such GPU: " + std::to_string(id));
      co_return;
    }
  }
  const std::int64_t n = data->size();
  SortStats stats;
  stats.algorithm = "P2P sort";
  stats.num_gpus = g;
  stats.keys = static_cast<std::int64_t>(
      static_cast<double>(n) * platform->scale());
  if (n == 0) {
    *out = std::move(stats);
    co_return;
  }

  const std::int64_t m = (n + g - 1) / g;  // chunk size, last chunk padded
  std::vector<Chunk<T>> chunks(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    auto& chunk = chunks[static_cast<std::size_t>(i)];
    chunk.device = &platform->device(gpus[static_cast<std::size_t>(i)]);
    if (chunk.device->failed()) {
      *out = chunk.device->fail_status();
      co_return;
    }
    // A fresh job must not inherit a previous tenant's sticky copy errors.
    chunk.device->ResetStreamErrors();
    auto primary = chunk.device->template Allocate<T>(m);
    if (!primary.ok()) {
      *out = primary.status();
      co_return;
    }
    chunk.primary = std::move(*primary);
    auto aux = chunk.device->template Allocate<T>(m);
    if (!aux.ok()) {
      *out = aux.status();
      co_return;
    }
    chunk.aux = std::move(*aux);
  }

  obs::PhaseTracker phase_metrics(platform->metrics(), &platform->network(),
                                  &platform->topology(), "p2p");
  const double t0 = platform->simulator().Now();
  phase_metrics.StartPhase("htod", t0);
  // Phase 1a: HtoD (pad the tail of the last chunk with +inf sentinels).
  auto upload = [&](int i) -> sim::Task<void> {
    auto& chunk = chunks[static_cast<std::size_t>(i)];
    const std::int64_t begin = static_cast<std::int64_t>(i) * m;
    const std::int64_t count = std::max<std::int64_t>(
        0, std::min(m, n - begin));  // trailing chunks may be all padding
    auto& stream = chunk.device->stream(0);
    if (count > 0) {
      stream.MemcpyHtoDAsync(chunk.primary, 0, *data, begin, count);
    }
    if (count < m) {
      T* pad_begin = chunk.primary.data() + count;
      const std::int64_t pad = m - count;
      const double fill_time = static_cast<double>(pad) * sizeof(T) *
                               platform->scale() /
                               chunk.device->spec().memory_bandwidth;
      stream.LaunchAsync(
          fill_time,
          [pad_begin, pad] {
            std::fill(pad_begin, pad_begin + pad, SortableLimits<T>::Max());
          },
          "pad-fill");
    }
    co_await stream.Synchronize();
  };
  {
    std::vector<sim::JoinerPtr> joins;
    for (int i = 0; i < g; ++i) joins.push_back(sim::Spawn(upload(i)));
    co_await sim::WhenAll(std::move(joins));
  }
  if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
    *out = st;  // frame destruction frees the device buffers
    co_return;
  }
  const double t_htod = platform->simulator().Now();
  phase_metrics.StartPhase("sort", t_htod);

  // Phase 1b: local chunk sorts.
  auto sort_chunk = [&](int i) -> sim::Task<void> {
    auto& chunk = chunks[static_cast<std::size_t>(i)];
    auto& stream = chunk.device->stream(0);
    gpusort::SortAsync(stream, chunk.primary, 0, m, chunk.aux,
                       options.device_sort);
    co_await stream.Synchronize();
  };
  {
    std::vector<sim::JoinerPtr> joins;
    for (int i = 0; i < g; ++i) joins.push_back(sim::Spawn(sort_chunk(i)));
    co_await sim::WhenAll(std::move(joins));
  }
  if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  const double t_sort = platform->simulator().Now();
  phase_metrics.StartPhase("merge", t_sort);

  // Phase 2: recursive P2P merge.
  MergeContext<T> ctx{platform, &chunks, m, &stats, options.pivot_policy};
  co_await p2p_internal::MergeChunks(ctx, 0, g);
  if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  const double t_merge = platform->simulator().Now();
  phase_metrics.StartPhase("dtoh", t_merge);

  // Phase 3: DtoH (sentinels at the global tail stay behind).
  auto download = [&](int i) -> sim::Task<void> {
    auto& chunk = chunks[static_cast<std::size_t>(i)];
    const std::int64_t begin = static_cast<std::int64_t>(i) * m;
    const std::int64_t count = std::max<std::int64_t>(
        0, std::min(m, n - begin));
    auto& stream = chunk.device->stream(0);
    if (count > 0) {
      stream.MemcpyDtoHAsync(*data, begin, chunk.primary, 0, count);
    }
    co_await stream.Synchronize();
  };
  {
    std::vector<sim::JoinerPtr> joins;
    for (int i = 0; i < g; ++i) joins.push_back(sim::Spawn(download(i)));
    co_await sim::WhenAll(std::move(joins));
  }
  if (Status st = p2p_internal::ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  phase_metrics.Finish(platform->simulator().Now());
  stats.total_seconds = platform->simulator().Now() - t0;
  stats.phases.htod = t_htod - t0;
  stats.phases.sort = t_sort - t_htod;
  stats.phases.merge = t_merge - t_sort;
  stats.phases.dtoh = t0 + stats.total_seconds - t_merge;
  *out = std::move(stats);
}

/// Sorts `data` (host memory, NUMA node 0 by convention) ascending using
/// the P2P multi-GPU algorithm on `options.gpu_set`. The data must fit the
/// combined memory of the selected GPUs (primary + auxiliary buffer per
/// GPU). Returns phase-level timing statistics in simulated seconds. Drives
/// the platform's simulator to completion; for concurrent execution on a
/// shared simulator use P2pSortTask.
template <typename T>
Result<SortStats> P2pSort(vgpu::Platform* platform, vgpu::HostBuffer<T>* data,
                          const SortOptions& options) {
  Result<SortStats> out = Status::Internal("P2P sort task never ran");
  MGS_RETURN_IF_ERROR(
      platform->Run(P2pSortTask(platform, data, options, &out)).status());
  return out;
}

}  // namespace mgs::core

#endif  // MGS_CORE_P2P_SORT_H_
