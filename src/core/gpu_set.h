// GPU-set selection and ordering (Sections 5.4 & 6): "when sorting with g
// GPUs, we always choose the GPU set with the best transfer performance,
// which includes optimizing the GPU set order for P2P sort."

#ifndef MGS_CORE_GPU_SET_H_
#define MGS_CORE_GPU_SET_H_

#include <vector>

#include "topo/topology.h"
#include "util/status.h"

namespace mgs::core {

/// Chooses g GPUs with the highest aggregate CPU-GPU copy throughput
/// (spreading across PCIe switches / NUMA nodes) and, for P2P sort, orders
/// them so pair-wise merge partners (positions 2i, 2i+1) are directly
/// P2P-interconnected where the topology allows.
///
/// `for_p2p_merge` additionally optimizes the order for the P2P merge
/// stages; HET sort is order-insensitive (Section 5.4).
Result<std::vector<int>> ChooseGpuSet(const topo::Topology& topology, int g,
                                      bool for_p2p_merge);

/// Like ChooseGpuSet, but restricted to the `allowed` GPU ids and aware of
/// background load: candidate sets are scored by the aggregate HtoD rate
/// the *candidate's own* flows would receive under weighted max-min sharing
/// while every GPU in `busy` keeps one concurrent HtoD flow active (running
/// tenants hold their host links). This is the scoring the topology-aware
/// placer in src/sched uses: on a DGX A100 it steers a new job away from
/// the PCIe switch of a running one. Ties break lexicographically, so the
/// choice is deterministic. `allowed` must be non-empty; `busy` may overlap
/// `allowed` (GPU sharing) or be empty, in which case this equals
/// ChooseGpuSet restricted to `allowed`. `host_numa` is the memory node the
/// candidate's HtoD flows stage from (multi-node clusters score from the
/// job's own node's socket; the default is the single-machine MEM0).
Result<std::vector<int>> ChooseGpuSetConstrained(const topo::Topology& topology,
                                                 int g, bool for_p2p_merge,
                                                 const std::vector<int>& allowed,
                                                 const std::vector<int>& busy,
                                                 int host_numa = 0);

/// Estimated P2P merge-phase cost of a given GPU order (lower is better):
/// the sum over merge stages of the slowest pairwise swap bandwidth's
/// inverse. Exposed for the GPU-order ablation bench.
Result<double> P2pOrderCost(const topo::Topology& topology,
                            const std::vector<int>& gpus);

}  // namespace mgs::core

#endif  // MGS_CORE_GPU_SET_H_
