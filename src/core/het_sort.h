// Heterogeneous multi-GPU sort (Section 5.3): GPUs sort chunks, the CPU
// multiway-merges the sorted sublists (gnu_parallel-class loser-tree merge).
//
// Large data (exceeding the combined GPU memory) is sorted in chunk groups:
// each GPU repeatedly receives a chunk, sorts it, and returns it while the
// next chunk streams in on the other copy engine. Two buffer schemes:
//   * 3n (Stehle et al., Fig. 10): three buffers per GPU; copies of chunks
//     i-1 / i+1 fully overlap the sort of chunk i (in-place transfer swap
//     on the third buffer);
//   * 2n (ours, Fig. 11): two larger buffers; the sort blocks copies, but
//     fewer, bigger chunks reach the final merge.
// Optional eager merging (Gowanlock et al.): completed chunk groups are
// merged on the CPU while the GPUs keep sorting, reducing the final merge's
// fan-in from c*g to c-1+g at the cost of contending for host memory
// bandwidth (Section 6.2 shows this loses on modern systems).

#ifndef MGS_CORE_HET_SORT_H_
#define MGS_CORE_HET_SORT_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/common.h"
#include "cpusort/multiway_merge.h"
#include "exec/executor.h"
#include "gpusort/device_sort.h"
#include "vgpu/platform.h"

namespace mgs::core {

enum class BufferScheme {
  k2n,  // two buffers per GPU, sort blocks copies
  k3n,  // three buffers per GPU, full copy/compute overlap
};

inline const char* BufferSchemeToString(BufferScheme s) {
  return s == BufferScheme::k2n ? "2n" : "3n";
}

/// Out-of-core spill policy: when the working set exceeds the granted GPU
/// buffers (more than one chunk group), sorted runs can be staged to a
/// simulated NVMe device instead of being presumed DRAM-resident until the
/// final merge — the storage-bound third regime of the 2n/3n schemes.
enum class SpillMode {
  kOff,    // never spill (the paper's in-memory assumption)
  kAuto,   // spill when chunk groups > 1 and the topology has an NVMe
  kForce,  // always spill (error if the topology has no NVMe)
};

inline const char* SpillModeToString(SpillMode m) {
  switch (m) {
    case SpillMode::kOff:
      return "off";
    case SpillMode::kAuto:
      return "auto";
    case SpillMode::kForce:
      return "force";
  }
  return "unknown";
}

struct HetOptions : SortOptions {
  BufferScheme scheme = BufferScheme::k2n;
  bool eager_merge = false;
  /// Cap on per-GPU memory used for chunk buffers (0 = all free memory).
  /// The paper compares 2n and 3n at an equal 33 GB budget per GPU.
  double gpu_memory_budget = 0;
  /// Out-of-core spill tier (see SpillMode).
  SpillMode spill = SpillMode::kOff;
  /// NVMe device to spill to; -1 picks the device on the merge socket
  /// (falling back to nvme0).
  int spill_nvme = -1;
};

/// Per-doubling throughput penalty of the k-way CPU merge (Section 6.1.1:
/// merging four chunks instead of two costs ~8% more).
inline double MergeEngineWeight(int k) {
  if (k <= 2) return 1.0;
  return 1.0 + 0.08 * (std::log2(static_cast<double>(k)) - 1.0);
}

namespace het_internal {

/// Tracks completion of chunk groups for eager merging.
struct GroupTracker {
  int group_size = 0;
  std::vector<int> done_count;
  std::vector<std::shared_ptr<sim::Trigger>> complete;

  void Init(int groups, int g) {
    group_size = g;
    done_count.assign(static_cast<std::size_t>(groups), 0);
    complete.clear();
    for (int i = 0; i < groups; ++i) {
      complete.push_back(std::make_shared<sim::Trigger>());
    }
  }
  void MarkChunkDone(int group) {
    if (++done_count[static_cast<std::size_t>(group)] == group_size) {
      complete[static_cast<std::size_t>(group)]->Fire();
    }
  }
};

template <typename T>
struct GpuState {
  vgpu::Device* device = nullptr;
  std::vector<vgpu::DeviceBuffer<T>> buffers;
};

/// Sorted sublists land back in the host buffer in place; these views
/// describe them for the final merge.
struct Sublist {
  std::int64_t begin = 0;
  std::int64_t count = 0;
  int group = 0;
};

[[gnu::noinline]] inline sim::Task<void> MarkDoneOn(std::shared_ptr<sim::Trigger> ev,
                                  GroupTracker* tracker, int group) {
  co_await ev->Wait();
  tracker->MarkChunkDone(group);
}

/// One spill transfer with bounded retry: an NVMe outage mid-transfer
/// aborts the flow with kUnavailable; back off (simulated time) and retry,
/// so a flapping device costs latency, not the job. Non-transient errors
/// propagate immediately.
inline sim::Task<Status> NvmeTransferWithRetry(vgpu::Platform* platform,
                                               int nvme, double bytes,
                                               bool write) {
  constexpr int kMaxAttempts = 6;
  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    st = co_await platform->NvmeTransfer(nvme, bytes, write);
    if (st.ok() || st.code() != StatusCode::kUnavailable) co_return st;
    co_await sim::Delay{platform->simulator(),
                        0.05 * static_cast<double>(1 << attempt)};
  }
  co_return st;
}

/// Everything the per-GPU pipelines and graph step bodies need. Pointer
/// fields refer into HetSortTask's coroutine frame, which outlives every
/// step (the task joins all pipelines / the executor before returning).
///
/// These live at namespace scope rather than as lambdas inside HetSortTask:
/// a coroutine lambda nested in a function template shares the enclosing
/// instantiation's COMDAT group, and when the linker picks another TU's
/// group the lambda's frame helpers can be discarded while local data still
/// references them ("defined in discarded section"). A namespace-scope
/// template coroutine owns its group, so selection stays self-consistent.
template <typename T>
struct HetContext {
  vgpu::Platform* platform = nullptr;
  vgpu::HostBuffer<T>* data = nullptr;
  std::vector<GpuState<T>>* state = nullptr;
  const std::vector<Sublist>* sublists = nullptr;
  GroupTracker* tracker = nullptr;
  gpusort::SortAlgo device_sort = gpusort::SortAlgo::kThrustRadix;
  int sb = 0;  // first stream index (SortOptions::stream_base)
  int g = 1;
  std::int64_t num_chunks = 0;
  double* htod_busy = nullptr;
  double* sort_busy = nullptr;
  double* dtoh_busy = nullptr;

  double Now() const { return platform->simulator().Now(); }
  GpuState<T>& gpu(int i) const {
    return (*state)[static_cast<std::size_t>(i)];
  }
  const Sublist& sub(std::int64_t c) const {
    return (*sublists)[static_cast<std::size_t>(c)];
  }
};

/// One GPU's 2n pipeline over its chunk sequence (chunks i, i+g, ...).
template <typename T>
[[gnu::noinline]] sim::Task<void> Pipeline2n(HetContext<T> ctx, int i) {
  auto& s = ctx.gpu(i);
  auto& in = s.device->stream(ctx.sb);
  auto& out = s.device->stream(ctx.sb + 1);
  int cur = 0;  // buffer holding the chunk being sorted
  bool first = true;
  for (std::int64_t c = i; c < ctx.num_chunks; c += ctx.g) {
    const auto& sub = ctx.sub(c);
    auto& buf = s.buffers[static_cast<std::size_t>(cur)];
    auto& aux = s.buffers[static_cast<std::size_t>(1 - cur)];
    if (first) {
      in.MemcpyHtoDAsync(buf, 0, *ctx.data, sub.begin, sub.count);
      first = false;
    }
    // Sort blocks all copies: both buffers must be free.
    co_await in.Synchronize();
    co_await out.Synchronize();
    *ctx.htod_busy = std::max(*ctx.htod_busy, ctx.Now());
    gpusort::SortAsync(in, buf, 0, sub.count, aux, ctx.device_sort);
    co_await in.Synchronize();
    *ctx.sort_busy = std::max(*ctx.sort_busy, ctx.Now());
    // Copy the sorted chunk back while the next chunk streams in.
    out.MemcpyDtoHAsync(*ctx.data, sub.begin, buf, 0, sub.count);
    sim::Spawn(MarkDoneOn(out.RecordEvent(), ctx.tracker, sub.group));
    if (c + ctx.g < ctx.num_chunks) {
      const auto& next = ctx.sub(c + ctx.g);
      in.MemcpyHtoDAsync(aux, 0, *ctx.data, next.begin, next.count);
      cur = 1 - cur;
    }
  }
  co_await in.Synchronize();
  co_await out.Synchronize();
  *ctx.dtoh_busy = std::max(*ctx.dtoh_busy, ctx.Now());
}

/// One GPU's 3n pipeline: copies of chunks k-1 / k+1 overlap the sort of
/// chunk k via the rotating transfer buffer (Fig. 10).
template <typename T>
[[gnu::noinline]] sim::Task<void> Pipeline3n(HetContext<T> ctx, int i) {
  auto& s = ctx.gpu(i);
  auto& in = s.device->stream(ctx.sb);
  auto& out = s.device->stream(ctx.sb + 1);
  auto& compute = s.device->stream(ctx.sb + 2);
  // Buffer roles: sort / aux / transfer, rotating each iteration.
  int sort_buf = 0, aux_buf = 1, xfer_buf = 2;
  std::vector<std::int64_t> mine;
  for (std::int64_t c = i; c < ctx.num_chunks; c += ctx.g) mine.push_back(c);
  if (mine.empty()) co_return;

  // Prime: chunk 0 into the sort buffer.
  {
    const auto& sub = ctx.sub(mine[0]);
    in.MemcpyHtoDAsync(s.buffers[static_cast<std::size_t>(sort_buf)], 0,
                       *ctx.data, sub.begin, sub.count);
    co_await in.Synchronize();
    *ctx.htod_busy = std::max(*ctx.htod_busy, ctx.Now());
  }
  for (std::size_t k = 0; k < mine.size(); ++k) {
    const auto& sub = ctx.sub(mine[k]);
    // Sort chunk k; concurrently the transfer buffer returns chunk k-1 and
    // receives chunk k+1 (in-place transfer swap, Fig. 10).
    gpusort::SortAsync(compute, s.buffers[static_cast<std::size_t>(sort_buf)],
                       0, sub.count,
                       s.buffers[static_cast<std::size_t>(aux_buf)],
                       ctx.device_sort);
    if (k > 0) {
      const auto& prev = ctx.sub(mine[k - 1]);
      out.MemcpyDtoHAsync(*ctx.data, prev.begin,
                          s.buffers[static_cast<std::size_t>(xfer_buf)], 0,
                          prev.count);
      sim::Spawn(MarkDoneOn(out.RecordEvent(), ctx.tracker, prev.group));
    }
    if (k + 1 < mine.size()) {
      const auto& next = ctx.sub(mine[k + 1]);
      in.MemcpyHtoDAsync(s.buffers[static_cast<std::size_t>(xfer_buf)], 0,
                         *ctx.data, next.begin, next.count);
    }
    co_await compute.Synchronize();
    *ctx.sort_busy = std::max(*ctx.sort_busy, ctx.Now());
    co_await in.Synchronize();
    co_await out.Synchronize();
    *ctx.htod_busy = std::max(*ctx.htod_busy, ctx.Now());
    std::swap(sort_buf, xfer_buf);  // transfer buffer now holds chunk k+1
  }
  // Return the final sorted chunk.
  {
    const auto& last = ctx.sub(mine.back());
    out.MemcpyDtoHAsync(*ctx.data, last.begin,
                        s.buffers[static_cast<std::size_t>(xfer_buf)], 0,
                        last.count);
    sim::Spawn(MarkDoneOn(out.RecordEvent(), ctx.tracker, last.group));
    co_await out.Synchronize();
    *ctx.dtoh_busy = std::max(*ctx.dtoh_busy, ctx.Now());
  }
}

// Graph-mode step bodies: the same per-chunk steps the pipelines above
// fuse, as single-node coroutines (docs/executor.md).

/// 2n/3n upload of chunk c into buffer `cur` on the in-stream.
template <typename T>
[[gnu::noinline]] sim::Task<void> StepHtoD(HetContext<T> ctx, int i, std::int64_t c, int cur) {
  auto& s = ctx.gpu(i);
  const auto& sub = ctx.sub(c);
  auto& in = s.device->stream(ctx.sb);
  in.MemcpyHtoDAsync(s.buffers[static_cast<std::size_t>(cur)], 0, *ctx.data,
                     sub.begin, sub.count);
  co_await in.Synchronize();
  *ctx.htod_busy = std::max(*ctx.htod_busy, ctx.Now());
}

/// 2n sort of chunk c in buffer `cur` (the other buffer is scratch, which
/// is why the 2n scheme's sorts block its copies).
template <typename T>
[[gnu::noinline]] sim::Task<void> StepSort2n(HetContext<T> ctx, int i, std::int64_t c,
                           int cur) {
  auto& s = ctx.gpu(i);
  const auto& sub = ctx.sub(c);
  auto& in = s.device->stream(ctx.sb);
  gpusort::SortAsync(in, s.buffers[static_cast<std::size_t>(cur)], 0,
                     sub.count, s.buffers[static_cast<std::size_t>(1 - cur)],
                     ctx.device_sort);
  co_await in.Synchronize();
  *ctx.sort_busy = std::max(*ctx.sort_busy, ctx.Now());
}

/// 2n download of sorted chunk c from buffer `cur` on the out-stream.
template <typename T>
[[gnu::noinline]] sim::Task<void> StepDtoH(HetContext<T> ctx, int i, std::int64_t c, int cur) {
  auto& s = ctx.gpu(i);
  const auto& sub = ctx.sub(c);
  auto& out = s.device->stream(ctx.sb + 1);
  out.MemcpyDtoHAsync(*ctx.data, sub.begin,
                      s.buffers[static_cast<std::size_t>(cur)], 0, sub.count);
  co_await out.Synchronize();
  ctx.tracker->MarkChunkDone(sub.group);
  *ctx.dtoh_busy = std::max(*ctx.dtoh_busy, ctx.Now());
}

/// 3n sort of chunk c in `sort_buf` (scratch is always buffer 1) on the
/// dedicated compute stream.
template <typename T>
[[gnu::noinline]] sim::Task<void> StepSort3n(HetContext<T> ctx, int i, std::int64_t c,
                           int sort_buf) {
  auto& s = ctx.gpu(i);
  const auto& sub = ctx.sub(c);
  auto& compute = s.device->stream(ctx.sb + 2);
  gpusort::SortAsync(compute, s.buffers[static_cast<std::size_t>(sort_buf)],
                     0, sub.count, s.buffers[1], ctx.device_sort);
  co_await compute.Synchronize();
  *ctx.sort_busy = std::max(*ctx.sort_busy, ctx.Now());
}

/// 3n in-place transfer swap on buffer `xfer`: return sorted chunk prev_c
/// (out-stream) while chunk next_c streams in (in-stream). Either side may
/// be absent at the ends of the chunk sequence.
template <typename T>
[[gnu::noinline]] sim::Task<void> StepXfer3n(HetContext<T> ctx, int i, std::int64_t prev_c,
                           std::int64_t next_c, int xfer) {
  auto& s = ctx.gpu(i);
  auto& in = s.device->stream(ctx.sb);
  auto& out = s.device->stream(ctx.sb + 1);
  if (prev_c >= 0) {
    const auto& prev = ctx.sub(prev_c);
    out.MemcpyDtoHAsync(*ctx.data, prev.begin,
                        s.buffers[static_cast<std::size_t>(xfer)], 0,
                        prev.count);
  }
  if (next_c >= 0) {
    const auto& next = ctx.sub(next_c);
    in.MemcpyHtoDAsync(s.buffers[static_cast<std::size_t>(xfer)], 0,
                       *ctx.data, next.begin, next.count);
  }
  co_await out.Synchronize();
  if (prev_c >= 0) {
    ctx.tracker->MarkChunkDone(ctx.sub(prev_c).group);
    *ctx.dtoh_busy = std::max(*ctx.dtoh_busy, ctx.Now());
  }
  co_await in.Synchronize();
  *ctx.htod_busy = std::max(*ctx.htod_busy, ctx.Now());
}

/// 3n final download of the last sorted chunk from buffer `buf`.
template <typename T>
[[gnu::noinline]] sim::Task<void> StepFinal3n(HetContext<T> ctx, int i, std::int64_t c,
                            int buf) {
  auto& s = ctx.gpu(i);
  const auto& sub = ctx.sub(c);
  auto& out = s.device->stream(ctx.sb + 1);
  out.MemcpyDtoHAsync(*ctx.data, sub.begin,
                      s.buffers[static_cast<std::size_t>(buf)], 0, sub.count);
  co_await out.Synchronize();
  ctx.tracker->MarkChunkDone(sub.group);
  *ctx.dtoh_busy = std::max(*ctx.dtoh_busy, ctx.Now());
}

/// Eager merge worker: merges group r's sublists as soon as the group is
/// fully back in host memory (skipping the last group, Section 5.3).
/// CPU-side failures park in *cpu_error; HetSortTask's post-join health
/// check surfaces them (group triggers still fire on a failed device
/// because skipped ops drain the stream FIFO, so this worker cannot wedge).
template <typename T>
struct EagerContext {
  vgpu::Platform* platform = nullptr;
  vgpu::HostBuffer<T>* data = nullptr;
  const std::vector<Sublist>* sublists = nullptr;
  GroupTracker* tracker = nullptr;
  std::vector<std::vector<T>>* eager_runs = nullptr;
  Status* cpu_error = nullptr;
  ThreadPool* host_pool = nullptr;
  int eager_groups = 0;
};

template <typename T>
[[gnu::noinline]] sim::Task<void> EagerWorker(EagerContext<T> ctx) {
  for (int r = 0; r < ctx.eager_groups; ++r) {
    co_await ctx.tracker->complete[static_cast<std::size_t>(r)]->Wait();
    std::vector<cpusort::MergeInput<T>> inputs;
    double bytes = 0;
    for (const auto& sub : *ctx.sublists) {
      if (sub.group != r) continue;
      inputs.push_back(cpusort::MergeInput<T>{
          ctx.data->data() + sub.begin,
          ctx.data->data() + sub.begin + sub.count});
      bytes += static_cast<double>(sub.count) * sizeof(T) *
               ctx.platform->scale();
    }
    const Status st = co_await ctx.platform->CpuMemoryWork(
        0, bytes,
        ctx.platform->topology().cpu_spec().merge_memory_amplification,
        MergeEngineWeight(static_cast<int>(inputs.size())));
    if (!st.ok()) {
      *ctx.cpu_error = st;
      co_return;
    }
    auto& run = (*ctx.eager_runs)[static_cast<std::size_t>(r)];
    run.resize(0);
    std::int64_t total = 0;
    for (const auto& in : inputs) total += in.size();
    run.resize(static_cast<std::size_t>(total));
    cpusort::MultiwayMerge(inputs, run.data(), ctx.host_pool);
  }
}

}  // namespace het_internal

/// Reentrant coroutine form of HetSort: runs on the platform's *shared*
/// simulator without driving it, so the multi-tenant service (src/sched)
/// can execute it concurrently with other jobs — notably as the graceful-
/// degradation fallback when a job's P2P mesh is unhealthy. On completion
/// `*out` holds the stats or the error. Device buffers are allocated
/// eagerly, before the first suspension point (same reservation-handoff
/// contract as P2pSortTask).
template <typename T>
[[gnu::noinline]] sim::Task<void> HetSortTask(vgpu::Platform* platform,
                            vgpu::HostBuffer<T>* data, HetOptions options,
                            Result<SortStats>* out) {
  std::vector<int> gpus = options.gpu_set;
  if (gpus.empty()) {
    for (int g = 0; g < platform->num_devices(); ++g) gpus.push_back(g);
  }
  const int g = static_cast<int>(gpus.size());
  if (g < 1) {
    *out = Status::Invalid("need at least one GPU");
    co_return;
  }
  for (int id : gpus) {
    if (id < 0 || id >= platform->num_devices()) {
      *out = Status::Invalid("no such GPU: " + std::to_string(id));
      co_return;
    }
    if (platform->device(id).failed()) {
      *out = platform->device(id).fail_status();
      co_return;
    }
    // A fresh job must not inherit a previous tenant's sticky copy errors.
    platform->device(id).ResetStreamErrors();
  }
  const std::int64_t n = data->size();
  // HET sort is out-of-place on the host: input regions + merged output
  // must both fit in DRAM (Section 5.3 assumes "sufficiently large" main
  // memory; Table 1 bounds it).
  const double host_mem = platform->topology().cpu_spec().host_memory_bytes;
  if (host_mem > 0) {
    const double needed =
        2.0 * static_cast<double>(n) * sizeof(T) * platform->scale();
    if (needed > host_mem) {
      *out = Status::OutOfMemory(
          "HET sort needs " + FormatBytes(needed) +
          " of host memory (2x data for the out-of-place merge) but the "
          "platform has " +
          FormatBytes(host_mem));
      co_return;
    }
  }
  SortStats stats;
  stats.algorithm = std::string("HET sort (") +
                    BufferSchemeToString(options.scheme) +
                    (options.eager_merge ? ", eager" : "") + ")";
  stats.num_gpus = g;
  stats.keys = static_cast<std::int64_t>(
      static_cast<double>(n) * platform->scale());
  if (n == 0) {
    *out = std::move(stats);
    co_return;
  }

  // Chunk geometry: the buffer scheme divides each GPU's memory budget into
  // 2 or 3 equal buffers; the chunk size is one buffer, capped so a single
  // group suffices for in-memory data (then 2n and 3n behave identically,
  // Section 6.1).
  const int buffers_per_gpu = options.scheme == BufferScheme::k2n ? 2 : 3;
  double budget = options.gpu_memory_budget;
  std::int64_t max_chunk = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < g; ++i) {
    auto& dev = platform->device(gpus[static_cast<std::size_t>(i)]);
    double free = dev.memory_free();
    if (budget > 0) free = std::min(free, budget);
    const std::int64_t per_buffer = static_cast<std::int64_t>(
        free / buffers_per_gpu / platform->scale() / sizeof(T));
    max_chunk = std::min(max_chunk, per_buffer);
  }
  if (max_chunk < 1) {
    *out = Status::OutOfMemory("GPU buffers too small");
    co_return;
  }
  const std::int64_t per_gpu_ceiling = (n + g - 1) / g;
  const std::int64_t m = std::min(max_chunk, per_gpu_ceiling);
  const std::int64_t num_chunks = (n + m - 1) / m;
  const int groups = static_cast<int>((num_chunks + g - 1) / g);
  stats.chunk_groups = groups;

  // Allocate buffers.
  std::vector<het_internal::GpuState<T>> state(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    auto& s = state[static_cast<std::size_t>(i)];
    s.device = &platform->device(gpus[static_cast<std::size_t>(i)]);
    for (int b = 0; b < buffers_per_gpu; ++b) {
      auto buf = s.device->template Allocate<T>(m);
      if (!buf.ok()) {
        *out = buf.status();
        co_return;
      }
      s.buffers.push_back(std::move(*buf));
    }
  }

  std::vector<het_internal::Sublist> sublists;
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const std::int64_t begin = c * m;
    sublists.push_back(het_internal::Sublist{begin, std::min(m, n - begin),
                                             static_cast<int>(c / g)});
  }

  het_internal::GroupTracker tracker;
  tracker.Init(groups, g);

  // Eager-merge bookkeeping: merged group runs are built in host scratch.
  std::vector<std::vector<T>> eager_runs;
  const int eager_groups = options.eager_merge ? std::max(0, groups - 1) : 0;
  eager_runs.resize(static_cast<std::size_t>(eager_groups));

  double t0 = 0, t_gpu_phase = 0;
  double htod_busy = 0, sort_busy = 0, dtoh_busy = 0;  // phase attribution
  const int sb = options.stream_base;

  het_internal::HetContext<T> ctx;
  ctx.platform = platform;
  ctx.data = data;
  ctx.state = &state;
  ctx.sublists = &sublists;
  ctx.tracker = &tracker;
  ctx.device_sort = options.device_sort;
  ctx.sb = sb;
  ctx.g = g;
  ctx.num_chunks = num_chunks;
  ctx.htod_busy = &htod_busy;
  ctx.sort_busy = &sort_busy;
  ctx.dtoh_busy = &dtoh_busy;

  Status cpu_error = Status::OK();
  het_internal::EagerContext<T> ectx;
  ectx.platform = platform;
  ectx.data = data;
  ectx.sublists = &sublists;
  ectx.tracker = &tracker;
  ectx.eager_runs = &eager_runs;
  ectx.cpu_error = &cpu_error;
  ectx.host_pool = options.host_pool;
  ectx.eager_groups = eager_groups;

  t0 = platform->simulator().Now();
  sim::JoinerPtr eager_join;
  if (options.exec_mode == ExecMode::kPhased) {
    std::vector<sim::JoinerPtr> joins;
    for (int i = 0; i < g; ++i) {
      joins.push_back(sim::Spawn(options.scheme == BufferScheme::k2n
                                     ? het_internal::Pipeline2n(ctx, i)
                                     : het_internal::Pipeline3n(ctx, i)));
    }
    if (eager_groups > 0) {
      eager_join = sim::Spawn(het_internal::EagerWorker(ectx));
    }
    co_await sim::WhenAll(std::move(joins));
  } else {
    // Graph mode: the same per-chunk steps as the pipelines above, as
    // explicit nodes. Within one GPU the dependency edges reproduce the
    // scheme's buffer discipline exactly; the win is cross-job: a shared
    // executor interleaves this job's nodes with other tenants'. The
    // executor is chosen before the build so the graph's node storage can
    // come from its recycling pool.
    exec::GraphExecutor local_executor(platform);
    exec::GraphExecutor* executor =
        options.executor ? options.executor : &local_executor;
    exec::TaskGraph graph = executor->AcquireGraph();
    constexpr exec::BufferToken kHostToken = -1;
    graph.AddInput(kHostToken);
    // Chunk-level tokens: upload completed / sorted result available.
    auto up_tok = [](std::int64_t c) -> exec::BufferToken {
      return c * 2 + 2;
    };
    auto sorted_tok = [](std::int64_t c) -> exec::BufferToken {
      return c * 2 + 3;
    };

    for (int i = 0; i < g; ++i) {
      const int dev = gpus[static_cast<std::size_t>(i)];
      std::vector<std::int64_t> mine;
      for (std::int64_t c = i; c < num_chunks; c += g) mine.push_back(c);
      if (mine.empty()) continue;
      if (options.scheme == BufferScheme::k2n) {
        exec::NodeId prev_sort = -1, prev_down = -1;
        for (std::size_t k = 0; k < mine.size(); ++k) {
          const std::int64_t c = mine[k];
          const int cur = static_cast<int>(k % 2);
          const exec::NodeId h = graph.AddNode(
              exec::NodeKind::kHtoDCopy, dev,
              [ctx, i, c, cur] {
                return het_internal::StepHtoD(ctx, i, c, cur);
              },
              "htod" + std::to_string(c));
          graph.Consumes(h, kHostToken);
          graph.Produces(h, up_tok(c));
          // The sort scratches the other buffer, so the next upload (into
          // that buffer) and this chunk's sort both wait on the previous
          // sort / download ("sort blocks copies").
          if (prev_sort >= 0) graph.AddEdge(prev_sort, h);
          const exec::NodeId sn = graph.AddNode(
              exec::NodeKind::kChunkSort, dev,
              [ctx, i, c, cur] {
                return het_internal::StepSort2n(ctx, i, c, cur);
              },
              "sort" + std::to_string(c));
          graph.AddEdge(h, sn);
          if (prev_down >= 0) graph.AddEdge(prev_down, sn);
          graph.Consumes(sn, up_tok(c));
          graph.Produces(sn, sorted_tok(c));
          const exec::NodeId dn = graph.AddNode(
              exec::NodeKind::kDtoHCopy, dev,
              [ctx, i, c, cur] {
                return het_internal::StepDtoH(ctx, i, c, cur);
              },
              "dtoh" + std::to_string(c));
          graph.AddEdge(sn, dn);
          graph.Consumes(dn, sorted_tok(c));
          prev_sort = sn;
          prev_down = dn;
        }
      } else {
        const std::size_t K = mine.size();
        const exec::NodeId prime = graph.AddNode(
            exec::NodeKind::kHtoDCopy, dev,
            [ctx, i, c = mine[0]] {
              return het_internal::StepHtoD(ctx, i, c, 0);
            },
            "htod" + std::to_string(mine[0]));
        graph.Consumes(prime, kHostToken);
        graph.Produces(prime, up_tok(mine[0]));
        exec::NodeId prev_s = prime, prev_x = prime;
        for (std::size_t k = 0; k < K; ++k) {
          const std::int64_t c = mine[k];
          const int sort_buf = k % 2 == 0 ? 0 : 2;
          const int xfer = k % 2 == 0 ? 2 : 0;
          const exec::NodeId sn = graph.AddNode(
              exec::NodeKind::kChunkSort, dev,
              [ctx, i, c, sort_buf] {
                return het_internal::StepSort3n(ctx, i, c, sort_buf);
              },
              "sort" + std::to_string(c));
          graph.AddEdge(prev_s, sn);
          if (prev_x != prev_s) graph.AddEdge(prev_x, sn);
          graph.Consumes(sn, up_tok(c));
          graph.Produces(sn, sorted_tok(c));
          const std::int64_t prev_c = k > 0 ? mine[k - 1] : -1;
          const std::int64_t next_c = k + 1 < K ? mine[k + 1] : -1;
          if (prev_c >= 0 || next_c >= 0) {
            const exec::NodeId xn = graph.AddNode(
                exec::NodeKind::kBlockSwap, dev,
                [ctx, i, prev_c, next_c, xfer] {
                  return het_internal::StepXfer3n(ctx, i, prev_c, next_c,
                                                  xfer);
                },
                "xfer" + std::to_string(c));
            graph.AddEdge(prev_s, xn);
            if (prev_x != prev_s) graph.AddEdge(prev_x, xn);
            if (prev_c >= 0) graph.Consumes(xn, sorted_tok(prev_c));
            if (next_c >= 0) {
              graph.Consumes(xn, kHostToken);
              graph.Produces(xn, up_tok(next_c));
            }
            prev_x = xn;
          }
          prev_s = sn;
        }
        const exec::NodeId fn = graph.AddNode(
            exec::NodeKind::kDtoHCopy, dev,
            [ctx, i, c = mine.back(), buf = (K - 1) % 2 == 0 ? 0 : 2] {
              return het_internal::StepFinal3n(ctx, i, c, buf);
            },
            "dtoh" + std::to_string(mine.back()));
        graph.AddEdge(prev_s, fn);
        if (prev_x != prev_s) graph.AddEdge(prev_x, fn);
        graph.Consumes(fn, sorted_tok(mine.back()));
      }
    }

    exec::GraphJobOptions job_options;
    job_options.priority = options.exec_priority;
    job_options.label = "het";
    if (eager_groups > 0) {
      eager_join = sim::Spawn(het_internal::EagerWorker(ectx));
    }
    co_await executor->Run(std::move(graph), std::move(job_options),
                           options.exec_report);
  }
  if (eager_join) co_await *eager_join;
  t_gpu_phase = platform->simulator().Now();

  // The pipelines above run to completion even when a device fails mid-way
  // (its remaining ops are skipped with sticky errors); check health before
  // trusting the sorted sublists.
  for (auto& s : state) {
    if (Status st = s.device->FirstError(); !st.ok()) {
      *out = st;
      co_return;
    }
  }
  if (!cpu_error.ok()) {
    *out = cpu_error;
    co_return;
  }

  // Out-of-core spill tier: with more than one chunk group the sorted runs
  // exceed the granted GPU buffers, and under kAuto/kForce they are staged
  // to NVMe as produced and read back for the final merge. Functionally the
  // runs already live in the host buffer (the simulation moves time, not
  // bytes); the spill bills the two storage round-trips that a real
  // out-of-core run would pay, run by run, so a mid-spill NVMe outage hits
  // a transfer in flight and exercises the retry path.
  const double t_spill_begin = platform->simulator().Now();
  if (options.spill != SpillMode::kOff) {
    const bool want_spill =
        options.spill == SpillMode::kForce || groups > 1;
    int nvme = options.spill_nvme;
    if (nvme < 0) nvme = platform->topology().NvmeForSocket(0);
    if (nvme < 0 && options.spill == SpillMode::kForce) {
      *out = Status::FailedPrecondition(
          "spill forced but the topology has no NVMe device");
      co_return;
    }
    if (want_spill && nvme >= 0) {
      const auto spill_one = [&](double bytes,
                                 bool write) -> sim::Task<Status> {
        return het_internal::NvmeTransferWithRetry(platform, nvme, bytes,
                                                   write);
      };
      int runs = 0;
      double spilled = 0;
      for (const auto& sub : sublists) {
        if (options.eager_merge && sub.group < eager_groups) continue;
        const double bytes =
            static_cast<double>(sub.count) * sizeof(T) * platform->scale();
        if (Status st = co_await spill_one(bytes, /*write=*/true); !st.ok()) {
          *out = st;
          co_return;
        }
        ++runs;
        spilled += bytes;
      }
      for (const auto& run : eager_runs) {
        const double bytes =
            static_cast<double>(run.size()) * sizeof(T) * platform->scale();
        if (Status st = co_await spill_one(bytes, /*write=*/true); !st.ok()) {
          *out = st;
          co_return;
        }
        ++runs;
        spilled += bytes;
      }
      // Read-back feeding the merge (one streaming pass over all runs).
      if (Status st = co_await spill_one(spilled, /*write=*/false);
          !st.ok()) {
        *out = st;
        co_return;
      }
      stats.spilled_runs = runs;
      stats.spilled_bytes = spilled;
      stats.spill_nvme = nvme;
    }
  }
  stats.phases.spill = platform->simulator().Now() - t_spill_begin;

  // Final CPU multiway merge.
  std::vector<cpusort::MergeInput<T>> inputs;
  for (const auto& run : eager_runs) {
    inputs.push_back(
        cpusort::MergeInput<T>{run.data(), run.data() + run.size()});
  }
  for (const auto& sub : sublists) {
    if (options.eager_merge && sub.group < eager_groups) continue;
    inputs.push_back(cpusort::MergeInput<T>{
        data->data() + sub.begin, data->data() + sub.begin + sub.count});
  }
  stats.final_merge_sublists = static_cast<int>(inputs.size());
  if (inputs.size() > 1) {
    const double out_bytes =
        static_cast<double>(n) * sizeof(T) * platform->scale();
    const Status st = co_await platform->CpuMemoryWork(
        0, out_bytes,
        platform->topology().cpu_spec().merge_memory_amplification,
        MergeEngineWeight(static_cast<int>(inputs.size())));
    if (!st.ok()) {
      *out = st;
      co_return;
    }
    std::vector<T> result(static_cast<std::size_t>(n));
    cpusort::MultiwayMerge(inputs, result.data(), options.host_pool);
    data->vector() = std::move(result);
  }
  const double merge_phase =
      platform->simulator().Now() - t_gpu_phase - stats.phases.spill;
  stats.total_seconds = platform->simulator().Now() - t0;

  // Phase attribution (best effort under pipelining: boundaries follow the
  // last GPU completing each phase, matching the paper's definition).
  stats.phases.merge = merge_phase;
  const double gpu_phase = t_gpu_phase - t0;
  const double htod_end = std::min(htod_busy - t0, gpu_phase);
  const double sort_end = std::min(std::max(sort_busy - t0, htod_end),
                                   gpu_phase);
  stats.phases.htod = htod_end;
  stats.phases.sort = sort_end - htod_end;
  stats.phases.dtoh = gpu_phase - sort_end;
  // Phases overlap under pipelining, so publish the post-hoc attribution
  // rather than scoped registry deltas.
  obs::RecordPhaseBreakdown(platform->metrics(), "het",
                            {{"htod", stats.phases.htod},
                             {"sort", stats.phases.sort},
                             {"spill", stats.phases.spill},
                             {"merge", stats.phases.merge},
                             {"dtoh", stats.phases.dtoh}});
  *out = std::move(stats);
}

/// Sorts `data` ascending with the heterogeneous algorithm. Unlike P2P
/// sort, the data may exceed the combined GPU memory (chunk groups) and any
/// GPU count >= 1 works. Drives the platform's simulator to completion;
/// use HetSortTask directly to compose with other work on a shared clock.
template <typename T>
Result<SortStats> HetSort(vgpu::Platform* platform, vgpu::HostBuffer<T>* data,
                          const HetOptions& options) {
  Result<SortStats> out = Status::Internal("HET sort task never ran");
  MGS_RETURN_IF_ERROR(
      platform->Run(HetSortTask(platform, data, options, &out)).status());
  return out;
}

}  // namespace mgs::core

#endif  // MGS_CORE_HET_SORT_H_
