// Heterogeneous multi-GPU sort (Section 5.3): GPUs sort chunks, the CPU
// multiway-merges the sorted sublists (gnu_parallel-class loser-tree merge).
//
// Large data (exceeding the combined GPU memory) is sorted in chunk groups:
// each GPU repeatedly receives a chunk, sorts it, and returns it while the
// next chunk streams in on the other copy engine. Two buffer schemes:
//   * 3n (Stehle et al., Fig. 10): three buffers per GPU; copies of chunks
//     i-1 / i+1 fully overlap the sort of chunk i (in-place transfer swap
//     on the third buffer);
//   * 2n (ours, Fig. 11): two larger buffers; the sort blocks copies, but
//     fewer, bigger chunks reach the final merge.
// Optional eager merging (Gowanlock et al.): completed chunk groups are
// merged on the CPU while the GPUs keep sorting, reducing the final merge's
// fan-in from c*g to c-1+g at the cost of contending for host memory
// bandwidth (Section 6.2 shows this loses on modern systems).

#ifndef MGS_CORE_HET_SORT_H_
#define MGS_CORE_HET_SORT_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/common.h"
#include "cpusort/multiway_merge.h"
#include "gpusort/device_sort.h"
#include "vgpu/platform.h"

namespace mgs::core {

enum class BufferScheme {
  k2n,  // two buffers per GPU, sort blocks copies
  k3n,  // three buffers per GPU, full copy/compute overlap
};

inline const char* BufferSchemeToString(BufferScheme s) {
  return s == BufferScheme::k2n ? "2n" : "3n";
}

struct HetOptions : SortOptions {
  BufferScheme scheme = BufferScheme::k2n;
  bool eager_merge = false;
  /// Cap on per-GPU memory used for chunk buffers (0 = all free memory).
  /// The paper compares 2n and 3n at an equal 33 GB budget per GPU.
  double gpu_memory_budget = 0;
};

/// Per-doubling throughput penalty of the k-way CPU merge (Section 6.1.1:
/// merging four chunks instead of two costs ~8% more).
inline double MergeEngineWeight(int k) {
  if (k <= 2) return 1.0;
  return 1.0 + 0.08 * (std::log2(static_cast<double>(k)) - 1.0);
}

namespace het_internal {

/// Tracks completion of chunk groups for eager merging.
struct GroupTracker {
  int group_size = 0;
  std::vector<int> done_count;
  std::vector<std::shared_ptr<sim::Trigger>> complete;

  void Init(int groups, int g) {
    group_size = g;
    done_count.assign(static_cast<std::size_t>(groups), 0);
    complete.clear();
    for (int i = 0; i < groups; ++i) {
      complete.push_back(std::make_shared<sim::Trigger>());
    }
  }
  void MarkChunkDone(int group) {
    if (++done_count[static_cast<std::size_t>(group)] == group_size) {
      complete[static_cast<std::size_t>(group)]->Fire();
    }
  }
};

}  // namespace het_internal

/// Reentrant coroutine form of HetSort: runs on the platform's *shared*
/// simulator without driving it, so the multi-tenant service (src/sched)
/// can execute it concurrently with other jobs — notably as the graceful-
/// degradation fallback when a job's P2P mesh is unhealthy. On completion
/// `*out` holds the stats or the error. Device buffers are allocated
/// eagerly, before the first suspension point (same reservation-handoff
/// contract as P2pSortTask).
template <typename T>
sim::Task<void> HetSortTask(vgpu::Platform* platform,
                            vgpu::HostBuffer<T>* data, HetOptions options,
                            Result<SortStats>* out) {
  std::vector<int> gpus = options.gpu_set;
  if (gpus.empty()) {
    for (int g = 0; g < platform->num_devices(); ++g) gpus.push_back(g);
  }
  const int g = static_cast<int>(gpus.size());
  if (g < 1) {
    *out = Status::Invalid("need at least one GPU");
    co_return;
  }
  for (int id : gpus) {
    if (id < 0 || id >= platform->num_devices()) {
      *out = Status::Invalid("no such GPU: " + std::to_string(id));
      co_return;
    }
    if (platform->device(id).failed()) {
      *out = platform->device(id).fail_status();
      co_return;
    }
    // A fresh job must not inherit a previous tenant's sticky copy errors.
    platform->device(id).ResetStreamErrors();
  }
  const std::int64_t n = data->size();
  // HET sort is out-of-place on the host: input regions + merged output
  // must both fit in DRAM (Section 5.3 assumes "sufficiently large" main
  // memory; Table 1 bounds it).
  const double host_mem = platform->topology().cpu_spec().host_memory_bytes;
  if (host_mem > 0) {
    const double needed =
        2.0 * static_cast<double>(n) * sizeof(T) * platform->scale();
    if (needed > host_mem) {
      *out = Status::OutOfMemory(
          "HET sort needs " + FormatBytes(needed) +
          " of host memory (2x data for the out-of-place merge) but the "
          "platform has " +
          FormatBytes(host_mem));
      co_return;
    }
  }
  SortStats stats;
  stats.algorithm = std::string("HET sort (") +
                    BufferSchemeToString(options.scheme) +
                    (options.eager_merge ? ", eager" : "") + ")";
  stats.num_gpus = g;
  stats.keys = static_cast<std::int64_t>(
      static_cast<double>(n) * platform->scale());
  if (n == 0) {
    *out = std::move(stats);
    co_return;
  }

  // Chunk geometry: the buffer scheme divides each GPU's memory budget into
  // 2 or 3 equal buffers; the chunk size is one buffer, capped so a single
  // group suffices for in-memory data (then 2n and 3n behave identically,
  // Section 6.1).
  const int buffers_per_gpu = options.scheme == BufferScheme::k2n ? 2 : 3;
  double budget = options.gpu_memory_budget;
  std::int64_t max_chunk = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < g; ++i) {
    auto& dev = platform->device(gpus[static_cast<std::size_t>(i)]);
    double free = dev.memory_free();
    if (budget > 0) free = std::min(free, budget);
    const std::int64_t per_buffer = static_cast<std::int64_t>(
        free / buffers_per_gpu / platform->scale() / sizeof(T));
    max_chunk = std::min(max_chunk, per_buffer);
  }
  if (max_chunk < 1) {
    *out = Status::OutOfMemory("GPU buffers too small");
    co_return;
  }
  const std::int64_t per_gpu_ceiling = (n + g - 1) / g;
  const std::int64_t m = std::min(max_chunk, per_gpu_ceiling);
  const std::int64_t num_chunks = (n + m - 1) / m;
  const int groups = static_cast<int>((num_chunks + g - 1) / g);
  stats.chunk_groups = groups;

  // Allocate buffers.
  struct GpuState {
    vgpu::Device* device;
    std::vector<vgpu::DeviceBuffer<T>> buffers;
  };
  std::vector<GpuState> state(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    auto& s = state[static_cast<std::size_t>(i)];
    s.device = &platform->device(gpus[static_cast<std::size_t>(i)]);
    for (int b = 0; b < buffers_per_gpu; ++b) {
      auto buf = s.device->template Allocate<T>(m);
      if (!buf.ok()) {
        *out = buf.status();
        co_return;
      }
      s.buffers.push_back(std::move(*buf));
    }
  }

  // Sorted sublists land back in the host buffer in place; these views
  // describe them for the final merge.
  struct Sublist {
    std::int64_t begin;
    std::int64_t count;
    int group;
  };
  std::vector<Sublist> sublists;
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const std::int64_t begin = c * m;
    sublists.push_back(Sublist{begin, std::min(m, n - begin),
                               static_cast<int>(c / g)});
  }

  het_internal::GroupTracker tracker;
  tracker.Init(groups, g);

  // Eager-merge bookkeeping: merged group runs are built in host scratch.
  std::vector<std::vector<T>> eager_runs;
  const int eager_groups = options.eager_merge ? std::max(0, groups - 1) : 0;
  eager_runs.resize(static_cast<std::size_t>(eager_groups));

  double t0 = 0, t_gpu_phase = 0;
  double htod_busy = 0, sort_busy = 0, dtoh_busy = 0;  // phase attribution

  // One GPU's pipeline over its chunk sequence (chunk indices i, i+g, ...).
  auto pipeline_2n = [&](int i) -> sim::Task<void> {
    auto& s = state[static_cast<std::size_t>(i)];
    auto& in = s.device->stream(0);
    auto& out = s.device->stream(1);
    int cur = 0;  // buffer holding the chunk being sorted
    bool first = true;
    for (std::int64_t c = i; c < num_chunks; c += g) {
      const auto& sub = sublists[static_cast<std::size_t>(c)];
      auto& buf = s.buffers[static_cast<std::size_t>(cur)];
      auto& aux = s.buffers[static_cast<std::size_t>(1 - cur)];
      if (first) {
        in.MemcpyHtoDAsync(buf, 0, *data, sub.begin, sub.count);
        first = false;
      }
      // Sort blocks all copies: both buffers must be free.
      const double before_sync = platform->simulator().Now();
      co_await in.Synchronize();
      co_await out.Synchronize();
      htod_busy = std::max(htod_busy, platform->simulator().Now());
      gpusort::SortAsync(in, buf, 0, sub.count, aux, options.device_sort);
      co_await in.Synchronize();
      sort_busy = std::max(sort_busy, platform->simulator().Now());
      (void)before_sync;
      // Copy the sorted chunk back while the next chunk streams in.
      out.MemcpyDtoHAsync(*data, sub.begin, buf, 0, sub.count);
      const int group = sub.group;
      auto done = out.RecordEvent();
      sim::Spawn([](std::shared_ptr<sim::Trigger> ev,
                    het_internal::GroupTracker* tracker,
                    int group) -> sim::Task<void> {
        co_await ev->Wait();
        tracker->MarkChunkDone(group);
      }(done, &tracker, group));
      if (c + g < num_chunks) {
        const auto& next = sublists[static_cast<std::size_t>(c + g)];
        in.MemcpyHtoDAsync(aux, 0, *data, next.begin, next.count);
        cur = 1 - cur;
      }
    }
    co_await in.Synchronize();
    co_await out.Synchronize();
    dtoh_busy = std::max(dtoh_busy, platform->simulator().Now());
  };

  auto pipeline_3n = [&](int i) -> sim::Task<void> {
    auto& s = state[static_cast<std::size_t>(i)];
    auto& in = s.device->stream(0);
    auto& out = s.device->stream(1);
    auto& compute = s.device->stream(2);
    // Buffer roles: sort / aux / transfer, rotating each iteration.
    int sort_buf = 0, aux_buf = 1, xfer_buf = 2;
    std::vector<std::int64_t> mine;
    for (std::int64_t c = i; c < num_chunks; c += g) mine.push_back(c);
    if (mine.empty()) co_return;

    // Prime: chunk 0 into the sort buffer.
    {
      const auto& sub = sublists[static_cast<std::size_t>(mine[0])];
      in.MemcpyHtoDAsync(s.buffers[static_cast<std::size_t>(sort_buf)], 0,
                         *data, sub.begin, sub.count);
      co_await in.Synchronize();
      htod_busy = std::max(htod_busy, platform->simulator().Now());
    }
    for (std::size_t k = 0; k < mine.size(); ++k) {
      const auto& sub = sublists[static_cast<std::size_t>(mine[k])];
      // Sort chunk k; concurrently the transfer buffer returns chunk k-1
      // and receives chunk k+1 (in-place transfer swap, Fig. 10).
      gpusort::SortAsync(compute, s.buffers[static_cast<std::size_t>(sort_buf)],
                         0, sub.count,
                         s.buffers[static_cast<std::size_t>(aux_buf)],
                         options.device_sort);
      if (k > 0) {
        const auto& prev = sublists[static_cast<std::size_t>(mine[k - 1])];
        out.MemcpyDtoHAsync(*data, prev.begin,
                            s.buffers[static_cast<std::size_t>(xfer_buf)], 0,
                            prev.count);
        const int group = prev.group;
        auto done = out.RecordEvent();
        sim::Spawn([](std::shared_ptr<sim::Trigger> ev,
                      het_internal::GroupTracker* tracker,
                      int group) -> sim::Task<void> {
          co_await ev->Wait();
          tracker->MarkChunkDone(group);
        }(done, &tracker, group));
      }
      if (k + 1 < mine.size()) {
        const auto& next = sublists[static_cast<std::size_t>(mine[k + 1])];
        in.MemcpyHtoDAsync(s.buffers[static_cast<std::size_t>(xfer_buf)], 0,
                           *data, next.begin, next.count);
      }
      co_await compute.Synchronize();
      sort_busy = std::max(sort_busy, platform->simulator().Now());
      co_await in.Synchronize();
      co_await out.Synchronize();
      htod_busy = std::max(htod_busy, platform->simulator().Now());
      std::swap(sort_buf, xfer_buf);  // transfer buffer now holds chunk k+1
    }
    // Return the final sorted chunk.
    {
      const auto& last = sublists[static_cast<std::size_t>(mine.back())];
      out.MemcpyDtoHAsync(*data, last.begin,
                          s.buffers[static_cast<std::size_t>(xfer_buf)], 0,
                          last.count);
      const int group = last.group;
      auto done = out.RecordEvent();
      sim::Spawn([](std::shared_ptr<sim::Trigger> ev,
                    het_internal::GroupTracker* tracker,
                    int group) -> sim::Task<void> {
        co_await ev->Wait();
        tracker->MarkChunkDone(group);
      }(done, &tracker, group));
      co_await out.Synchronize();
      dtoh_busy = std::max(dtoh_busy, platform->simulator().Now());
    }
  };

  // Eager merge worker: merges group r's sublists as soon as the group is
  // fully back in host memory (skipping the last group, Section 5.3).
  // CPU-side failures park in `cpu_error`; the post-join health check
  // surfaces them (group triggers still fire on a failed device because
  // skipped ops drain the stream FIFO, so this worker cannot wedge).
  Status cpu_error = Status::OK();
  auto eager_worker = [&]() -> sim::Task<void> {
    for (int r = 0; r < eager_groups; ++r) {
      co_await tracker.complete[static_cast<std::size_t>(r)]->Wait();
      std::vector<cpusort::MergeInput<T>> inputs;
      double bytes = 0;
      for (const auto& sub : sublists) {
        if (sub.group != r) continue;
        inputs.push_back(cpusort::MergeInput<T>{
            data->data() + sub.begin, data->data() + sub.begin + sub.count});
        bytes += static_cast<double>(sub.count) * sizeof(T) *
                 platform->scale();
      }
      const Status st = co_await platform->CpuMemoryWork(
          0, bytes, platform->topology().cpu_spec().merge_memory_amplification,
          MergeEngineWeight(static_cast<int>(inputs.size())));
      if (!st.ok()) {
        cpu_error = st;
        co_return;
      }
      auto& run = eager_runs[static_cast<std::size_t>(r)];
      run.resize(0);
      std::int64_t total = 0;
      for (const auto& in : inputs) total += in.size();
      run.resize(static_cast<std::size_t>(total));
      cpusort::MultiwayMerge(inputs, run.data(), options.host_pool);
    }
  };

  t0 = platform->simulator().Now();
  std::vector<sim::JoinerPtr> joins;
  for (int i = 0; i < g; ++i) {
    joins.push_back(sim::Spawn(options.scheme == BufferScheme::k2n
                                   ? pipeline_2n(i)
                                   : pipeline_3n(i)));
  }
  sim::JoinerPtr eager_join;
  if (eager_groups > 0) eager_join = sim::Spawn(eager_worker());
  co_await sim::WhenAll(std::move(joins));
  if (eager_join) co_await *eager_join;
  t_gpu_phase = platform->simulator().Now();

  // The pipelines above run to completion even when a device fails mid-way
  // (its remaining ops are skipped with sticky errors); check health before
  // trusting the sorted sublists.
  for (auto& s : state) {
    if (Status st = s.device->FirstError(); !st.ok()) {
      *out = st;
      co_return;
    }
  }
  if (!cpu_error.ok()) {
    *out = cpu_error;
    co_return;
  }

  // Final CPU multiway merge.
  std::vector<cpusort::MergeInput<T>> inputs;
  for (const auto& run : eager_runs) {
    inputs.push_back(
        cpusort::MergeInput<T>{run.data(), run.data() + run.size()});
  }
  for (const auto& sub : sublists) {
    if (options.eager_merge && sub.group < eager_groups) continue;
    inputs.push_back(cpusort::MergeInput<T>{
        data->data() + sub.begin, data->data() + sub.begin + sub.count});
  }
  stats.final_merge_sublists = static_cast<int>(inputs.size());
  if (inputs.size() > 1) {
    const double out_bytes =
        static_cast<double>(n) * sizeof(T) * platform->scale();
    const Status st = co_await platform->CpuMemoryWork(
        0, out_bytes,
        platform->topology().cpu_spec().merge_memory_amplification,
        MergeEngineWeight(static_cast<int>(inputs.size())));
    if (!st.ok()) {
      *out = st;
      co_return;
    }
    std::vector<T> result(static_cast<std::size_t>(n));
    cpusort::MultiwayMerge(inputs, result.data(), options.host_pool);
    data->vector() = std::move(result);
  }
  const double merge_phase = platform->simulator().Now() - t_gpu_phase;
  stats.total_seconds = platform->simulator().Now() - t0;

  // Phase attribution (best effort under pipelining: boundaries follow the
  // last GPU completing each phase, matching the paper's definition).
  stats.phases.merge = merge_phase;
  const double gpu_phase = t_gpu_phase - t0;
  const double htod_end = std::min(htod_busy - t0, gpu_phase);
  const double sort_end = std::min(std::max(sort_busy - t0, htod_end),
                                   gpu_phase);
  stats.phases.htod = htod_end;
  stats.phases.sort = sort_end - htod_end;
  stats.phases.dtoh = gpu_phase - sort_end;
  // Phases overlap under pipelining, so publish the post-hoc attribution
  // rather than scoped registry deltas.
  obs::RecordPhaseBreakdown(platform->metrics(), "het",
                            {{"htod", stats.phases.htod},
                             {"sort", stats.phases.sort},
                             {"merge", stats.phases.merge},
                             {"dtoh", stats.phases.dtoh}});
  *out = std::move(stats);
}

/// Sorts `data` ascending with the heterogeneous algorithm. Unlike P2P
/// sort, the data may exceed the combined GPU memory (chunk groups) and any
/// GPU count >= 1 works. Drives the platform's simulator to completion;
/// use HetSortTask directly to compose with other work on a shared clock.
template <typename T>
Result<SortStats> HetSort(vgpu::Platform* platform, vgpu::HostBuffer<T>* data,
                          const HetOptions& options) {
  Result<SortStats> out = Status::Internal("HET sort task never ran");
  MGS_RETURN_IF_ERROR(
      platform->Run(HetSortTask(platform, data, options, &out)).status());
  return out;
}

}  // namespace mgs::core

#endif  // MGS_CORE_HET_SORT_H_
