// CPU-only sorting baseline: PARADIS (Cho et al.), the paper's comparison
// point in Section 6. The functional sort is our real PARADIS-style
// implementation (src/cpusort/paradis_sort.h); the simulated duration comes
// from the per-system calibrated rate (the figures were measured on POWER9
// / Xeon / EPYC hosts, not on this machine).

#ifndef MGS_CORE_CPU_BASELINE_H_
#define MGS_CORE_CPU_BASELINE_H_

#include "core/common.h"
#include "cpusort/paradis_sort.h"
#include "vgpu/platform.h"

namespace mgs::core {

/// Simulated duration of a PARADIS run over `logical_keys` keys of
/// `key_bytes` width on `platform`'s host CPUs.
inline double ParadisDuration(const vgpu::Platform& platform,
                              double logical_keys, std::size_t key_bytes) {
  const auto& cpu = platform.topology().cpu_spec();
  const double rate = key_bytes <= 4
                          ? cpu.paradis_rate_32
                          : cpu.paradis_rate_32 * topo::cal::kParadis64BitFactor;
  return logical_keys / rate;
}

/// Sorts `data` in place with PARADIS on the host CPUs. `pool` parallelizes
/// the functional sort; the simulated duration comes from the calibrated
/// rate either way.
template <typename T>
Result<SortStats> CpuSortBaseline(vgpu::Platform* platform,
                                  vgpu::HostBuffer<T>* data,
                                  ThreadPool* pool = nullptr) {
  SortStats stats;
  stats.algorithm = "PARADIS (CPU)";
  stats.num_gpus = 0;
  const std::int64_t n = data->size();
  stats.keys = static_cast<std::int64_t>(
      static_cast<double>(n) * platform->scale());
  const double duration = ParadisDuration(
      *platform, static_cast<double>(stats.keys), sizeof(T));
  auto root = [&]() -> sim::Task<void> {
    co_await platform->CpuBusy(duration);
    cpusort::ParadisSort(data->data(), n, pool);
  };
  MGS_ASSIGN_OR_RETURN(stats.total_seconds, platform->Run(root()));
  return stats;
}

}  // namespace mgs::core

#endif  // MGS_CORE_CPU_BASELINE_H_
