// Radix/range-partitioning multi-GPU sort — the algorithm the paper's
// Discussion (Section 7) proposes as future work: "reduce the P2P
// communication by designing a radix partitioning-based multi-GPU sorting
// algorithm which would require swapping keys between GPUs only once
// (all-to-all). This approach would highly benefit systems with many
// NVSwitch-interconnected GPUs such as the DGX A100."
//
// Phases:
//   1. HtoD: chunks to the g GPUs (any g >= 1, not only powers of two).
//   2. Splitter selection: each GPU contributes a key sample; the host
//      sorts the combined sample and picks g-1 quantile splitters.
//   3. Partition kernel: each GPU partitions its chunk into g contiguous
//      buckets (bucket j holds keys destined for GPU j).
//   4. One all-to-all exchange: bucket j of every GPU is copied (P2P; the
//      diagonal device-locally) into GPU j's receive buffer.
//   5. Each GPU locally sorts its received keys — partitions are disjoint
//      ranges, so no merge phase exists.
//   6. DtoH at the global offsets given by the partition sizes.
//
// Sampling makes partitions approximately balanced; receive buffers carry
// a slack factor and the sort fails gracefully (kOutOfMemory) if a skewed
// distribution overflows it — callers can retry with more slack.

#ifndef MGS_CORE_RADIX_PARTITION_SORT_H_
#define MGS_CORE_RADIX_PARTITION_SORT_H_

#include <algorithm>
#include <vector>

#include "core/common.h"
#include "gpusort/device_sort.h"
#include "vgpu/platform.h"

namespace mgs::core {

struct RadixPartitionOptions : SortOptions {
  /// Sample keys per GPU for splitter selection.
  int samples_per_gpu = 256;
  /// Receive-buffer headroom over the perfectly-balanced n/g.
  double slack = 1.25;
};

/// Sorts `data` with the partition-then-sort algorithm. Requires the data
/// (plus slack) to fit the combined GPU memory.
template <typename T>
Result<SortStats> RadixPartitionSort(vgpu::Platform* platform,
                                     vgpu::HostBuffer<T>* data,
                                     const RadixPartitionOptions& options) {
  std::vector<int> gpus = options.gpu_set;
  if (gpus.empty()) {
    for (int g = 0; g < platform->num_devices(); ++g) gpus.push_back(g);
  }
  const int g = static_cast<int>(gpus.size());
  if (g < 1) return Status::Invalid("need at least one GPU");
  for (int id : gpus) {
    if (id < 0 || id >= platform->num_devices()) {
      return Status::Invalid("no such GPU: " + std::to_string(id));
    }
  }
  const std::int64_t n = data->size();
  SortStats stats;
  stats.algorithm = "RDX sort (partition + all-to-all)";
  stats.num_gpus = g;
  stats.keys = static_cast<std::int64_t>(
      static_cast<double>(n) * platform->scale());
  if (n == 0) return stats;

  const std::int64_t m = (n + g - 1) / g;  // send-side chunk
  const std::int64_t recv_cap = static_cast<std::int64_t>(
      static_cast<double>(m) * options.slack) + g;

  struct Gpu {
    vgpu::Device* device;
    vgpu::DeviceBuffer<T> chunk;      // input chunk, later the sort scratch
    vgpu::DeviceBuffer<T> buckets;    // partitioned send data
    vgpu::DeviceBuffer<T> recv;      // received partition (then sorted)
    std::int64_t count = 0;           // valid keys in chunk
    std::vector<std::int64_t> bucket_offset;  // g+1 offsets into `buckets`
    std::int64_t recv_count = 0;
  };
  std::vector<Gpu> state(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    auto& s = state[static_cast<std::size_t>(i)];
    s.device = &platform->device(gpus[static_cast<std::size_t>(i)]);
    MGS_ASSIGN_OR_RETURN(s.chunk, s.device->template Allocate<T>(recv_cap));
    MGS_ASSIGN_OR_RETURN(s.buckets, s.device->template Allocate<T>(m));
    MGS_ASSIGN_OR_RETURN(s.recv, s.device->template Allocate<T>(recv_cap));
    const std::int64_t begin = static_cast<std::int64_t>(i) * m;
    s.count = std::max<std::int64_t>(0, std::min(m, n - begin));
  }

  double t0 = 0, t_htod = 0, t_partition = 0, t_exchange = 0, t_sort = 0;
  std::vector<T> splitters;  // g-1 keys
  obs::PhaseTracker phase_metrics(platform->metrics(), &platform->network(),
                                  &platform->topology(), "rdx");

  auto root = [&]() -> sim::Task<void> {
    t0 = platform->simulator().Now();
    phase_metrics.StartPhase("htod", t0);
    // Phase 1: HtoD.
    {
      std::vector<sim::JoinerPtr> joins;
      for (int i = 0; i < g; ++i) {
        auto upload = [&](int idx) -> sim::Task<void> {
          auto& s = state[static_cast<std::size_t>(idx)];
          if (s.count > 0) {
            s.device->stream(0).MemcpyHtoDAsync(
                s.chunk, 0, *data, static_cast<std::int64_t>(idx) * m,
                s.count);
          }
          co_await s.device->stream(0).Synchronize();
        };
        joins.push_back(sim::Spawn(upload(i)));
      }
      co_await sim::WhenAll(std::move(joins));
    }
    t_htod = platform->simulator().Now();
    phase_metrics.StartPhase("partition", t_htod);

    // Phase 2: splitter selection from per-GPU samples (host-side; the
    // device reads are modeled like the pivot-selection accesses).
    {
      std::vector<T> sample;
      int reads = 0;
      for (int i = 0; i < g; ++i) {
        auto& s = state[static_cast<std::size_t>(i)];
        if (s.count == 0) continue;
        const int take = options.samples_per_gpu;
        for (int k = 0; k < take; ++k) {
          const std::int64_t pos =
              static_cast<std::int64_t>((s.count - 1) *
                                        (static_cast<double>(k) / take));
          sample.push_back(s.chunk[pos]);
          ++reads;
        }
      }
      std::sort(sample.begin(), sample.end());
      splitters.clear();
      for (int j = 1; j < g; ++j) {
        splitters.push_back(
            sample[sample.size() * static_cast<std::size_t>(j) /
                   static_cast<std::size_t>(g)]);
      }
      const double cost = reads * kPivotRemoteReadLatency;
      stats.pivot_seconds += cost;
      co_await sim::Delay{platform->simulator(), cost};
    }

    // Phase 3: partition kernels (one linear pass over the chunk).
    {
      std::vector<sim::JoinerPtr> joins;
      for (int i = 0; i < g; ++i) {
        auto partition = [&](int idx) -> sim::Task<void> {
          auto& s = state[static_cast<std::size_t>(idx)];
          const double scale = platform->scale();
          // A partition pass moves each key once: HBM-bound like one radix
          // pass, ~1/4 of a full device sort.
          const double duration =
              gpusort::SortDuration(s.device->spec(),
                                    gpusort::SortAlgo::kThrustRadix,
                                    static_cast<double>(s.count) * scale,
                                    sizeof(T)) /
              4.0;
          T* in = s.chunk.data();
          T* out = s.buckets.data();
          auto* offsets = &s.bucket_offset;
          const std::int64_t count = s.count;
          const auto* splits = &splitters;
          const int groups = g;
          s.device->stream(0).LaunchAsync(
              duration,
              [in, out, offsets, count, splits, groups] {
                // Counting pass + stable scatter by destination GPU.
                std::vector<std::int64_t> size(
                    static_cast<std::size_t>(groups), 0);
                auto dest = [&](const T& key) {
                  return static_cast<int>(
                      std::upper_bound(splits->begin(), splits->end(), key) -
                      splits->begin());
                };
                for (std::int64_t k = 0; k < count; ++k) {
                  ++size[static_cast<std::size_t>(dest(in[k]))];
                }
                offsets->assign(static_cast<std::size_t>(groups) + 1, 0);
                for (int b = 0; b < groups; ++b) {
                  (*offsets)[static_cast<std::size_t>(b) + 1] =
                      (*offsets)[static_cast<std::size_t>(b)] +
                      size[static_cast<std::size_t>(b)];
                }
                std::vector<std::int64_t> cursor(offsets->begin(),
                                                 offsets->end() - 1);
                for (std::int64_t k = 0; k < count; ++k) {
                  out[cursor[static_cast<std::size_t>(dest(in[k]))]++] =
                      in[k];
                }
              },
              "partition");
          co_await s.device->stream(0).Synchronize();
        };
        joins.push_back(sim::Spawn(partition(i)));
      }
      co_await sim::WhenAll(std::move(joins));
    }
    t_partition = platform->simulator().Now();
    phase_metrics.Finish(t_partition);
  };

  MGS_ASSIGN_OR_RETURN(double first_half, platform->Run(root()));
  (void)first_half;

  // Receive offsets: recv_off[j][i] = where GPU i's bucket j lands in GPU
  // j's receive buffer (host-side plan; sizes are known after partition).
  std::vector<std::vector<std::int64_t>> recv_off(
      static_cast<std::size_t>(g),
      std::vector<std::int64_t>(static_cast<std::size_t>(g) + 1, 0));
  for (int j = 0; j < g; ++j) {
    std::int64_t acc = 0;
    for (int i = 0; i < g; ++i) {
      recv_off[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          acc;
      const auto& off = state[static_cast<std::size_t>(i)].bucket_offset;
      acc += off[static_cast<std::size_t>(j) + 1] -
             off[static_cast<std::size_t>(j)];
    }
    recv_off[static_cast<std::size_t>(j)][static_cast<std::size_t>(g)] = acc;
    state[static_cast<std::size_t>(j)].recv_count = acc;
    if (acc > recv_cap) {
      return Status::OutOfMemory(
          "partition skew overflowed GPU " + std::to_string(j) +
          "'s receive buffer (" + std::to_string(acc) + " > " +
          std::to_string(recv_cap) + "); increase options.slack");
    }
  }

  auto second = [&]() -> sim::Task<void> {
    phase_metrics.StartPhase("exchange", platform->simulator().Now());
    // Phase 4: single all-to-all exchange.
    for (int i = 0; i < g; ++i) {
      auto& src = state[static_cast<std::size_t>(i)];
      for (int j = 0; j < g; ++j) {
        auto& dst = state[static_cast<std::size_t>(j)];
        const auto& off = src.bucket_offset;
        const std::int64_t begin = off[static_cast<std::size_t>(j)];
        const std::int64_t len =
            off[static_cast<std::size_t>(j) + 1] - begin;
        if (len == 0) continue;
        const std::int64_t dst_at =
            recv_off[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
        if (i == j) {
          src.device->stream(1).MemcpyDtoDAsync(dst.recv, dst_at,
                                                src.buckets, begin, len);
        } else {
          src.device->stream(0).MemcpyPeerAsync(dst.recv, dst_at,
                                                src.buckets, begin, len);
          stats.p2p_bytes += static_cast<double>(len) * sizeof(T) *
                             platform->scale();
        }
      }
    }
    {
      std::vector<sim::JoinerPtr> joins;
      for (int i = 0; i < g; ++i) {
        auto& s = state[static_cast<std::size_t>(i)];
        joins.push_back(sim::Spawn(s.device->stream(0).Synchronize()));
        joins.push_back(sim::Spawn(s.device->stream(1).Synchronize()));
      }
      co_await sim::WhenAll(std::move(joins));
    }
    t_exchange = platform->simulator().Now();
    phase_metrics.StartPhase("sort", t_exchange);

    // Phase 5: local sorts of the received partitions (chunk is scratch).
    {
      std::vector<sim::JoinerPtr> joins;
      for (int i = 0; i < g; ++i) {
        auto sort_local = [&](int idx) -> sim::Task<void> {
          auto& s = state[static_cast<std::size_t>(idx)];
          if (s.recv_count > 0) {
            gpusort::SortAsync(s.device->stream(0), s.recv, 0, s.recv_count,
                               s.chunk, options.device_sort);
          }
          co_await s.device->stream(0).Synchronize();
        };
        joins.push_back(sim::Spawn(sort_local(i)));
      }
      co_await sim::WhenAll(std::move(joins));
    }
    t_sort = platform->simulator().Now();
    phase_metrics.StartPhase("dtoh", t_sort);

    // Phase 6: DtoH at global offsets.
    {
      std::int64_t out = 0;
      std::vector<sim::JoinerPtr> joins;
      for (int i = 0; i < g; ++i) {
        auto& s = state[static_cast<std::size_t>(i)];
        const std::int64_t at = out;
        out += s.recv_count;
        auto download = [&, at](int idx) -> sim::Task<void> {
          auto& gs = state[static_cast<std::size_t>(idx)];
          if (gs.recv_count > 0) {
            gs.device->stream(0).MemcpyDtoHAsync(*data, at, gs.recv, 0,
                                                 gs.recv_count);
          }
          co_await gs.device->stream(0).Synchronize();
        };
        joins.push_back(sim::Spawn(download(i)));
      }
      co_await sim::WhenAll(std::move(joins));
    }
    phase_metrics.Finish(platform->simulator().Now());
  };
  MGS_ASSIGN_OR_RETURN(double second_half, platform->Run(second()));

  stats.total_seconds = first_half + second_half;
  stats.phases.htod = t_htod - t0;
  stats.phases.sort = (t_partition - t_htod) + (t_sort - t_exchange);
  stats.phases.merge = t_exchange - t_partition;  // the all-to-all
  stats.phases.dtoh = stats.total_seconds - (t_sort - t0);
  stats.merge_stages = 1;
  return stats;
}

}  // namespace mgs::core

#endif  // MGS_CORE_RADIX_PARTITION_SORT_H_
