// Hybrid out-of-core sort — the question Section 7 leaves open: "future
// research should evaluate the suitability of a P2P-based GPU merge for
// large data."
//
// Like HET sort, the data streams through the GPUs in chunk groups; unlike
// HET sort, each group is merged *on the GPUs* with the P2P merge phase
// before returning to the host, so a group comes back as ONE sorted run.
// The final CPU multiway merge then has fan-in c (number of groups) instead
// of c*g (number of chunks) — it trades extra P2P traffic for a lighter
// host-side merge, which pays off exactly where the paper says the CPU
// merge is the bottleneck (NVLink/NVSwitch platforms).

#ifndef MGS_CORE_HYBRID_SORT_H_
#define MGS_CORE_HYBRID_SORT_H_

#include <algorithm>
#include <vector>

#include "core/het_sort.h"  // MergeEngineWeight
#include "core/p2p_sort.h"
#include "cpusort/multiway_merge.h"

namespace mgs::core {

struct HybridOptions : SortOptions {
  /// Cap on per-GPU memory used for chunk buffers (0 = all free memory).
  double gpu_memory_budget = 0;
};

/// Sorts `data` (any size that fits host memory) on g = 2^k GPUs: per
/// chunk group, chunks are sorted and P2P-merged on the GPUs; groups are
/// multiway-merged on the CPU.
template <typename T>
Result<SortStats> HybridSort(vgpu::Platform* platform,
                             vgpu::HostBuffer<T>* data,
                             const HybridOptions& options) {
  using p2p_internal::Chunk;
  using p2p_internal::MergeContext;

  std::vector<int> gpus = options.gpu_set;
  if (gpus.empty()) {
    for (int g = 0; g < platform->num_devices(); ++g) gpus.push_back(g);
  }
  const int g = static_cast<int>(gpus.size());
  if ((g & (g - 1)) != 0) {
    return Status::Invalid("hybrid sort requires a power-of-two GPU count");
  }
  const std::int64_t n = data->size();
  SortStats stats;
  stats.algorithm = "HYB sort (P2P group merge + CPU merge)";
  stats.num_gpus = g;
  stats.keys = static_cast<std::int64_t>(
      static_cast<double>(n) * platform->scale());
  if (n == 0) return stats;

  // Chunk size: two buffers per GPU (primary + aux), like P2P sort.
  std::int64_t max_chunk = std::numeric_limits<std::int64_t>::max();
  for (int id : gpus) {
    auto& dev = platform->device(id);
    double free = dev.memory_free();
    if (options.gpu_memory_budget > 0) {
      free = std::min(free, options.gpu_memory_budget);
    }
    max_chunk = std::min(
        max_chunk,
        static_cast<std::int64_t>(free / 2 / platform->scale() / sizeof(T)));
  }
  if (max_chunk < 1) return Status::OutOfMemory("GPU buffers too small");
  const std::int64_t per_gpu_ceiling = (n + g - 1) / g;
  const std::int64_t m = std::min(max_chunk, per_gpu_ceiling);
  const std::int64_t group_span = m * g;
  const int groups = static_cast<int>((n + group_span - 1) / group_span);
  stats.chunk_groups = groups;
  stats.final_merge_sublists = groups;

  std::vector<Chunk<T>> chunks(static_cast<std::size_t>(g));
  for (int i = 0; i < g; ++i) {
    auto& chunk = chunks[static_cast<std::size_t>(i)];
    chunk.device = &platform->device(gpus[static_cast<std::size_t>(i)]);
    MGS_ASSIGN_OR_RETURN(chunk.primary,
                         chunk.device->template Allocate<T>(m));
    MGS_ASSIGN_OR_RETURN(chunk.aux, chunk.device->template Allocate<T>(m));
  }

  double t0 = 0, gpu_phase_end = 0;
  obs::PhaseTracker phase_metrics(platform->metrics(), &platform->network(),
                                  &platform->topology(), "hyb");
  auto root = [&]() -> sim::Task<void> {
    t0 = platform->simulator().Now();
    phase_metrics.StartPhase("sort", t0);
    for (int r = 0; r < groups; ++r) {
      const std::int64_t group_begin = static_cast<std::int64_t>(r) * group_span;
      const std::int64_t group_count =
          std::min(group_span, n - group_begin);
      const std::int64_t cm = (group_count + g - 1) / g;  // this group's m

      // Upload + pad + sort each chunk of the group.
      auto prepare = [&](int i) -> sim::Task<void> {
        auto& chunk = chunks[static_cast<std::size_t>(i)];
        const std::int64_t begin = group_begin + static_cast<std::int64_t>(i) * cm;
        const std::int64_t count = std::max<std::int64_t>(
            0, std::min(cm, n - begin));
        auto& stream = chunk.device->stream(0);
        if (count > 0) {
          stream.MemcpyHtoDAsync(chunk.primary, 0, *data, begin, count);
        }
        if (count < cm) {
          T* pad_begin = chunk.primary.data() + count;
          const std::int64_t pad = cm - count;
          const double fill_time = static_cast<double>(pad) * sizeof(T) *
                                   platform->scale() /
                                   chunk.device->spec().memory_bandwidth;
          stream.LaunchAsync(
              fill_time,
              [pad_begin, pad] {
                std::fill(pad_begin, pad_begin + pad,
                          SortableLimits<T>::Max());
              },
              "pad-fill");
        }
        gpusort::SortAsync(stream, chunk.primary, 0, cm, chunk.aux,
                           options.device_sort);
        co_await stream.Synchronize();
      };
      {
        std::vector<sim::JoinerPtr> joins;
        for (int i = 0; i < g; ++i) joins.push_back(sim::Spawn(prepare(i)));
        co_await sim::WhenAll(std::move(joins));
      }

      // P2P merge of the group into one sorted run across the chunks.
      MergeContext<T> ctx{platform, &chunks, cm, &stats,
                          options.pivot_policy};
      co_await p2p_internal::MergeChunks(ctx, 0, g);

      // Return the run to its host region (sentinels stay behind).
      auto download = [&](int i) -> sim::Task<void> {
        auto& chunk = chunks[static_cast<std::size_t>(i)];
        const std::int64_t begin = group_begin + static_cast<std::int64_t>(i) * cm;
        const std::int64_t count = std::max<std::int64_t>(
            0, std::min(cm, n - begin));
        auto& stream = chunk.device->stream(0);
        if (count > 0) {
          stream.MemcpyDtoHAsync(*data, begin, chunk.primary, 0, count);
        }
        co_await stream.Synchronize();
      };
      {
        std::vector<sim::JoinerPtr> joins;
        for (int i = 0; i < g; ++i) joins.push_back(sim::Spawn(download(i)));
        co_await sim::WhenAll(std::move(joins));
      }
    }
    gpu_phase_end = platform->simulator().Now();
    phase_metrics.StartPhase("merge", gpu_phase_end);

    // Final CPU multiway merge of the c group runs.
    if (groups > 1) {
      std::vector<cpusort::MergeInput<T>> inputs;
      for (int r = 0; r < groups; ++r) {
        const std::int64_t begin = static_cast<std::int64_t>(r) * group_span;
        const std::int64_t count = std::min(group_span, n - begin);
        inputs.push_back(cpusort::MergeInput<T>{
            data->data() + begin, data->data() + begin + count});
      }
      const double out_bytes =
          static_cast<double>(n) * sizeof(T) * platform->scale();
      co_await platform->CpuMemoryWork(
          0, out_bytes,
          platform->topology().cpu_spec().merge_memory_amplification,
          MergeEngineWeight(groups));
      std::vector<T> result(static_cast<std::size_t>(n));
      cpusort::MultiwayMerge(inputs, result.data(), options.host_pool);
      data->vector() = std::move(result);
    }
    phase_metrics.Finish(platform->simulator().Now());
  };
  MGS_ASSIGN_OR_RETURN(stats.total_seconds, platform->Run(root()));
  // Coarse attribution: the streamed GPU phase (transfers + sorts + P2P
  // merges) vs the final CPU merge.
  stats.phases.sort = gpu_phase_end - t0;
  stats.phases.merge = stats.total_seconds - (gpu_phase_end - t0);
  return stats;
}

}  // namespace mgs::core

#endif  // MGS_CORE_HYBRID_SORT_H_
