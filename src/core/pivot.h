// Leftmost pivot selection (Section 5.2, Algorithm 1).
//
// Given two sorted arrays A and B of equal length n (each possibly spread
// over several GPU chunks), the pivot p is the number of keys to exchange:
// the last p keys of A swap with the first p keys of B, after which every
// key in A is <= every key in B. Our implementation returns the *leftmost*
// valid pivot — the minimum number of keys to transfer over the P2P
// interconnect; for already-ordered halves it returns 0 and the swap is
// skipped entirely (the paper's optimization over Tanasic et al.).

#ifndef MGS_CORE_PIVOT_H_
#define MGS_CORE_PIVOT_H_

#include <cstdint>
#include <functional>

namespace mgs::core {

/// Read accessor for a (possibly chunked) sorted device array: returns the
/// key at global index i in [0, n). Reads of the remote half model P2P
/// memory accesses.
template <typename T>
using KeyReader = std::function<T(std::int64_t)>;

/// Statistics of one pivot selection.
struct PivotResult {
  std::int64_t pivot = 0;       // keys to swap
  int reads = 0;                // total keys inspected (latency model)
};

/// Which valid pivot to pick. The set of valid pivots is a contiguous
/// interval (its width is the number of tied keys at the boundary):
/// kLeftmost minimizes the P2P transfer volume (the paper's optimization);
/// kRightmost maximizes it (an upper bound for any valid selection, used by
/// the ablation bench to quantify the optimization).
enum class PivotPolicy { kLeftmost, kRightmost };

/// Leftmost valid pivot for sorted arrays A and B of equal size n.
///
/// Validity of p requires max(A') <= min(B') after the swap, which reduces
/// to A[n-p-1] <= B[p] and B[p-1] <= A[n-p] (with virtual -inf / +inf
/// sentinels at the boundaries). The set of valid pivots is a contiguous
/// interval; its minimum is the smallest p with A[n-p-1] <= B[p], which a
/// binary search finds in O(log n) reads.
template <typename T>
PivotResult SelectPivot(const KeyReader<T>& a, const KeyReader<T>& b,
                        std::int64_t n,
                        PivotPolicy policy = PivotPolicy::kLeftmost) {
  PivotResult result;
  if (n <= 0) return result;
  if (policy == PivotPolicy::kRightmost) {
    // Largest p with B[p-1] <= A[n-p] (p = 0 is always valid).
    auto not_too_many = [&](std::int64_t p) {
      if (p <= 0) return true;
      result.reads += 2;
      return !(a(n - p) < b(p - 1));  // b[p-1] <= a[n-p]
    };
    std::int64_t lo = 0, hi = n;  // invariant: Q(lo) true
    while (lo < hi) {
      const std::int64_t mid = lo + (hi - lo + 1) / 2;
      if (not_too_many(mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    result.pivot = lo;
    return result;
  }
  // Predicate R(p): swapping p keys is "enough" (A's kept part cannot
  // exceed B's kept part). R is monotone in p and R(n) is true.
  auto enough = [&](std::int64_t p) {
    if (p >= n) return true;  // A[-1] = -inf
    const std::int64_t ai = n - p - 1;
    if (ai < 0) return true;
    result.reads += 2;
    return !(b(p) < a(ai));  // a[ai] <= b[p]
  };
  std::int64_t lo = 0, hi = n;  // invariant: R(hi) true, R(lo-1) false
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (enough(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.pivot = lo;
  return result;
}

}  // namespace mgs::core

#endif  // MGS_CORE_PIVOT_H_
