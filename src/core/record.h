// Key-value records: what a database actually sorts (index entries, rowid
// pairs, merge-join inputs — Section 1 motivates sorting with exactly these
// workloads). The paper evaluates raw keys; this extension makes every
// algorithm in the library (device radix sorts, PARADIS, multiway merge,
// P2P/HET/RDX sort) work on fixed-width key/payload records with zero
// algorithm changes: ordering comes from operator< and radix digit
// extraction from the key's order-preserving encoding.

#ifndef MGS_CORE_RECORD_H_
#define MGS_CORE_RECORD_H_

#include <cstdint>
#include <limits>

#include "core/common.h"
#include "cpusort/radix_traits.h"

namespace mgs::core {

/// A fixed-width sortable record: ordered by `key`; `value` (e.g. a rowid
/// or tuple pointer) travels with it. POD, 8/12/16 bytes depending on K/V.
template <typename K, typename V>
struct Record {
  K key;
  V value;

  friend bool operator<(const Record& a, const Record& b) {
    return a.key < b.key;
  }
  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// The common database case: 32-bit key, 32-bit rowid.
using IndexEntry32 = Record<std::int32_t, std::uint32_t>;
/// Wide rows: 64-bit key, 64-bit tuple id.
using IndexEntry64 = Record<std::int64_t, std::uint64_t>;

/// A multi-column ORDER BY row: ORDER BY a, b, c with a rowid payload.
/// Columns a and b are composed into one 64-bit normalized key
/// (Encode(a) << 32 | Encode(b)), so a single integer compare — and the
/// radix digit stream — settles both leading columns hot; column c breaks
/// ties cold through operator<, exactly like a string key's suffix. The
/// rowid is payload and never participates in ordering.
struct SortRecord {
  std::uint64_t norm = 0;    // composed normalized key for (a, b)
  std::int64_t c = 0;        // third ORDER BY column, tie-break only
  std::uint64_t rowid = 0;   // payload

  static std::uint64_t Compose(std::int32_t a, std::int32_t b) {
    return (static_cast<std::uint64_t>(
                cpusort::RadixTraits<std::int32_t>::Encode(a))
            << 32) |
           cpusort::RadixTraits<std::int32_t>::Encode(b);
  }

  static SortRecord Make(std::int32_t a, std::int32_t b, std::int64_t c,
                         std::uint64_t rowid) {
    return SortRecord{Compose(a, b), c, rowid};
  }

  std::int32_t a() const {
    return cpusort::RadixTraits<std::int32_t>::Decode(
        static_cast<std::uint32_t>(norm >> 32));
  }
  std::int32_t b() const {
    return cpusort::RadixTraits<std::int32_t>::Decode(
        static_cast<std::uint32_t>(norm));
  }

  friend bool operator<(const SortRecord& x, const SortRecord& y) {
    if (x.norm != y.norm) return x.norm < y.norm;
    return x.c < y.c;
  }
  friend bool operator==(const SortRecord& x, const SortRecord& y) {
    return x.norm == y.norm && x.c == y.c && x.rowid == y.rowid;
  }
};

static_assert(sizeof(SortRecord) == 24);

}  // namespace mgs::core

namespace mgs::core {

/// Padding sentinel for records: maximal key (payload irrelevant).
template <typename K, typename V>
struct SortableLimits<Record<K, V>> {
  static Record<K, V> Max() {
    return Record<K, V>{std::numeric_limits<K>::max(), V{}};
  }
};

/// Padding sentinel for SortRecord: maximal on both ordering columns.
template <>
struct SortableLimits<SortRecord> {
  static SortRecord Max() {
    return SortRecord{~0ull, std::numeric_limits<std::int64_t>::max(), ~0ull};
  }
};

}  // namespace mgs::core

namespace mgs::cpusort {

/// Radix sorting of records: digits come from the key's order-preserving
/// encoding; Decode is never used by the radix kernels (they move whole
/// elements), so it is deliberately unavailable for records.
template <typename K, typename V>
struct RadixTraits<mgs::core::Record<K, V>> {
  using Unsigned = typename RadixTraits<K>::Unsigned;
  static Unsigned Encode(const mgs::core::Record<K, V>& r) {
    return RadixTraits<K>::Encode(r.key);
  }
};

/// SortRecord radix-sorts on the composed (a, b) normalized key; column c
/// is settled by the prefix-tie fix-up pass (kPrefixOnly).
template <>
struct RadixTraits<mgs::core::SortRecord> {
  using Unsigned = std::uint64_t;
  static constexpr bool kPrefixOnly = true;
  static Unsigned Encode(const mgs::core::SortRecord& r) { return r.norm; }
};

}  // namespace mgs::cpusort

#endif  // MGS_CORE_RECORD_H_
