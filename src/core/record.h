// Key-value records: what a database actually sorts (index entries, rowid
// pairs, merge-join inputs — Section 1 motivates sorting with exactly these
// workloads). The paper evaluates raw keys; this extension makes every
// algorithm in the library (device radix sorts, PARADIS, multiway merge,
// P2P/HET/RDX sort) work on fixed-width key/payload records with zero
// algorithm changes: ordering comes from operator< and radix digit
// extraction from the key's order-preserving encoding.

#ifndef MGS_CORE_RECORD_H_
#define MGS_CORE_RECORD_H_

#include <cstdint>
#include <limits>

#include "core/common.h"
#include "cpusort/radix_traits.h"

namespace mgs::core {

/// A fixed-width sortable record: ordered by `key`; `value` (e.g. a rowid
/// or tuple pointer) travels with it. POD, 8/12/16 bytes depending on K/V.
template <typename K, typename V>
struct Record {
  K key;
  V value;

  friend bool operator<(const Record& a, const Record& b) {
    return a.key < b.key;
  }
  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// The common database case: 32-bit key, 32-bit rowid.
using IndexEntry32 = Record<std::int32_t, std::uint32_t>;
/// Wide rows: 64-bit key, 64-bit tuple id.
using IndexEntry64 = Record<std::int64_t, std::uint64_t>;

}  // namespace mgs::core

namespace mgs::core {

/// Padding sentinel for records: maximal key (payload irrelevant).
template <typename K, typename V>
struct SortableLimits<Record<K, V>> {
  static Record<K, V> Max() {
    return Record<K, V>{std::numeric_limits<K>::max(), V{}};
  }
};

}  // namespace mgs::core

namespace mgs::cpusort {

/// Radix sorting of records: digits come from the key's order-preserving
/// encoding; Decode is never used by the radix kernels (they move whole
/// elements), so it is deliberately unavailable for records.
template <typename K, typename V>
struct RadixTraits<mgs::core::Record<K, V>> {
  using Unsigned = typename RadixTraits<K>::Unsigned;
  static Unsigned Encode(const mgs::core::Record<K, V>& r) {
    return RadixTraits<K>::Encode(r.key);
  }
};

}  // namespace mgs::cpusort

#endif  // MGS_CORE_RECORD_H_
