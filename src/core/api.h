// Public umbrella API for multi-GPU sorting.
//
// Quickstart:
//
//   auto platform = mgs::vgpu::Platform::Create(mgs::topo::MakeDgxA100());
//   mgs::vgpu::HostBuffer<int32_t> data(my_keys);
//   mgs::core::SortOptions options;
//   options.gpu_set = *mgs::core::ChooseGpuSet((*platform)->topology(), 4,
//                                              /*for_p2p_merge=*/true);
//   auto stats = mgs::core::P2pSort((*platform).get(), &data, options);
//   // data is sorted; stats->phases holds the HtoD/sort/merge/DtoH split.

#ifndef MGS_CORE_API_H_
#define MGS_CORE_API_H_

#include "core/common.h"        // IWYU pragma: export
#include "core/cpu_baseline.h"  // IWYU pragma: export
#include "core/gpu_set.h"       // IWYU pragma: export
#include "core/het_sort.h"      // IWYU pragma: export
#include "core/p2p_sort.h"      // IWYU pragma: export
#include "core/pivot.h"         // IWYU pragma: export

#endif  // MGS_CORE_API_H_
