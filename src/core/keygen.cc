#include "core/keygen.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace mgs::core {

namespace {

constexpr char kPrintable[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";

std::string RandomWord(SplitMix64& rng, std::size_t min_len,
                       std::size_t max_len) {
  const std::size_t len =
      min_len + static_cast<std::size_t>(rng.Next() % (max_len - min_len + 1));
  std::string s(len, '\0');
  for (auto& ch : s) ch = kPrintable[rng.Next() % 64];
  return s;
}

std::vector<StringKey> UniformStrings(std::int64_t n, std::uint64_t seed,
                                      StringArena* arena) {
  SplitMix64 rng(seed);
  std::vector<StringKey> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    keys.push_back(arena->Add(RandomWord(rng, 4, 24)));
  }
  return keys;
}

std::vector<StringKey> ZipfVocabulary(std::int64_t n, double theta,
                                      std::uint64_t seed, StringArena* arena) {
  // Build a fixed vocabulary once, then draw ranks zipfian (same
  // inverse-CDF power method as datagen's numeric Zipf): heavy duplication
  // on the most popular words, which stresses equal-key runs in both the
  // radix fix-up and the merge paths.
  constexpr std::int64_t kVocab = 4096;
  SplitMix64 vocab_rng(seed ^ 0x57a6c0de57a6c0deULL);
  std::vector<StringKey> vocab;
  vocab.reserve(kVocab);
  for (std::int64_t i = 0; i < kVocab; ++i) {
    vocab.push_back(arena->Add(RandomWord(vocab_rng, 3, 16)));
  }
  SplitMix64 rng(seed);
  const double exponent = 1.0 / (1.0 - std::min(theta, 0.999));
  std::vector<StringKey> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto rank = static_cast<std::int64_t>(
        static_cast<double>(kVocab) * std::pow(rng.NextDouble(), exponent));
    keys.push_back(vocab[static_cast<std::size_t>(
        std::min(rank, kVocab - 1))]);
  }
  return keys;
}

std::vector<StringKey> UrlKeys(std::int64_t n, std::uint64_t seed,
                               StringArena* arena) {
  // URL-like keys: a handful of domains, so huge groups of keys share a
  // prefix far longer than the 8 normalized bytes ("https://" alone fills
  // the prefix) — every comparison and every radix pass degenerates to the
  // cold tie-break path. This is the adversarial shape the property tests
  // lean on.
  static constexpr const char* kDomains[] = {
      "https://shard-a.example.com/", "https://shard-b.example.com/",
      "https://cdn.example.net/assets/", "https://api.example.org/v2/"};
  SplitMix64 rng(seed);
  std::vector<StringKey> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::string url = kDomains[rng.Next() % 4];
    url += RandomWord(rng, 1, 12);
    if (rng.Next() % 2) {
      url += '/';
      url += RandomWord(rng, 1, 8);
    }
    keys.push_back(arena->Add(url));
  }
  return keys;
}

}  // namespace

std::vector<StringKey> GenerateStringKeys(std::int64_t n,
                                          const DataGenOptions& options,
                                          StringArena* arena) {
  std::vector<StringKey> keys;
  switch (options.distribution) {
    case Distribution::kUniform:
      keys = UniformStrings(n, options.seed, arena);
      break;
    case Distribution::kZipf:
      keys = ZipfVocabulary(n, options.zipf_theta, options.seed, arena);
      break;
    case Distribution::kNormal:
    case Distribution::kNearlySorted:
      keys = UrlKeys(n, options.seed, arena);
      break;
    case Distribution::kSorted:
      keys = UniformStrings(n, options.seed, arena);
      std::sort(keys.begin(), keys.end());
      break;
    case Distribution::kReverseSorted:
      keys = UniformStrings(n, options.seed, arena);
      std::sort(keys.begin(), keys.end());
      std::reverse(keys.begin(), keys.end());
      break;
  }
  return keys;
}

std::vector<SortRecord> GenerateRecords(std::int64_t n,
                                        const DataGenOptions& options) {
  // Leading ORDER BY columns follow the requested numeric distribution;
  // column b is drawn from a small domain so composed-key ties on `a`
  // resolve within the normalized key, and column c from a tiny domain so
  // the cold tie-break path genuinely runs.
  std::vector<std::int32_t> a = GenerateKeys<std::int32_t>(n, options);
  SplitMix64 rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<SortRecord> records;
  records.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto b = static_cast<std::int32_t>(rng.Next() % 1024);
    const auto c = static_cast<std::int64_t>(rng.Next() % 16);
    records.push_back(SortRecord::Make(a[static_cast<std::size_t>(i)], b, c,
                                       static_cast<std::uint64_t>(i)));
  }
  return records;
}

}  // namespace mgs::core
