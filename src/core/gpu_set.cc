#include "core/gpu_set.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace mgs::core {

namespace {

// Static weighted max-min rate allocation over a set of paths (the same
// progressive-filling rule as sim::FlowNetwork, but without a simulator):
// returns the aggregate steady-state rate of the first `scored` paths (the
// remainder are background flows that contend but are not counted).
double AggregateRate(const topo::Topology& topology,
                     const std::vector<std::vector<sim::PathHop>>& paths,
                     std::size_t scored) {
  std::map<sim::ResourceId, double> remaining;
  for (const auto& path : paths) {
    for (const auto& hop : path) {
      remaining.emplace(hop.resource, topology.ResourceCapacity(hop.resource));
    }
  }
  const std::size_t n = paths.size();
  std::vector<bool> frozen(n, false);
  std::vector<double> rate(n, 0.0);
  std::size_t num_frozen = 0;
  while (num_frozen < n) {
    double share = std::numeric_limits<double>::infinity();
    for (auto& [res, cap] : remaining) {
      double denom = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        for (const auto& hop : paths[i]) {
          if (hop.resource == res) denom += hop.weight;
        }
      }
      if (denom > 0) share = std::min(share, std::max(0.0, cap) / denom);
    }
    if (!std::isfinite(share)) break;
    bool froze = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      bool bottlenecked = false;
      for (const auto& hop : paths[i]) {
        double denom = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (frozen[j]) continue;
          for (const auto& h2 : paths[j]) {
            if (h2.resource == hop.resource) denom += h2.weight;
          }
        }
        if (denom > 0 && remaining[hop.resource] / denom <= share * (1 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[i] = share;
      frozen[i] = true;
      ++num_frozen;
      froze = true;
      for (const auto& hop : paths[i]) {
        remaining[hop.resource] -= share * hop.weight;
      }
    }
    if (!froze) break;
  }
  double total = 0;
  for (std::size_t i = 0; i < std::min(scored, rate.size()); ++i) {
    total += rate[i];
  }
  return total;
}

Result<double> HtoDAggregate(const topo::Topology& topology,
                             const std::vector<int>& gpus,
                             const std::vector<int>& busy, int host_numa) {
  std::vector<std::vector<sim::PathHop>> paths;
  for (int g : gpus) {
    MGS_ASSIGN_OR_RETURN(
        auto path,
        topology.CopyPath(topo::CopyKind::kHostToDevice,
                          topo::Endpoint::HostMemory(host_numa),
                          topo::Endpoint::Gpu(g)));
    paths.push_back(std::move(path));
  }
  const std::size_t scored = paths.size();
  for (int g : busy) {
    MGS_ASSIGN_OR_RETURN(
        auto path,
        topology.CopyPath(topo::CopyKind::kHostToDevice,
                          topo::Endpoint::HostMemory(host_numa),
                          topo::Endpoint::Gpu(g)));
    paths.push_back(std::move(path));
  }
  return AggregateRate(topology, paths, scored);
}

Result<double> PairP2pBandwidth(const topo::Topology& topology, int a,
                                int b) {
  return topology.LoneFlowBandwidth(topo::CopyKind::kPeerToPeer,
                                    topo::Endpoint::Gpu(a),
                                    topo::Endpoint::Gpu(b));
}

Result<double> OrderCostRecursive(
    const std::vector<std::vector<double>>& pbw,
    const std::vector<int>& order, int lo, int hi) {
  const int g = hi - lo;
  if (g < 2) return 0.0;
  double worst = std::numeric_limits<double>::infinity();
  for (int i = 0; i < g / 2; ++i) {
    worst = std::min(worst, pbw[static_cast<std::size_t>(order[lo + i])]
                               [static_cast<std::size_t>(order[hi - 1 - i])]);
  }
  const double stage = 1.0 / worst;
  const int mid = lo + g / 2;
  MGS_ASSIGN_OR_RETURN(double left, OrderCostRecursive(pbw, order, lo, mid));
  MGS_ASSIGN_OR_RETURN(double right, OrderCostRecursive(pbw, order, mid, hi));
  // The pre- and post-stage recursions each run concurrently across halves.
  return 2.0 * std::max(left, right) + stage;
}

}  // namespace

Result<double> P2pOrderCost(const topo::Topology& topology,
                            const std::vector<int>& gpus) {
  const int total = topology.num_gpus();
  std::vector<std::vector<double>> pbw(
      static_cast<std::size_t>(total),
      std::vector<double>(static_cast<std::size_t>(total), 0.0));
  for (int a : gpus) {
    for (int b : gpus) {
      if (a == b) continue;
      MGS_ASSIGN_OR_RETURN(pbw[static_cast<std::size_t>(a)]
                              [static_cast<std::size_t>(b)],
                           PairP2pBandwidth(topology, a, b));
    }
  }
  return OrderCostRecursive(pbw, gpus, 0, static_cast<int>(gpus.size()));
}

Result<std::vector<int>> ChooseGpuSet(const topo::Topology& topology, int g,
                                      bool for_p2p_merge) {
  std::vector<int> all;
  for (int id = 0; id < topology.num_gpus(); ++id) all.push_back(id);
  return ChooseGpuSetConstrained(topology, g, for_p2p_merge, all, {});
}

Result<std::vector<int>> ChooseGpuSetConstrained(
    const topo::Topology& topology, int g, bool for_p2p_merge,
    const std::vector<int>& allowed, const std::vector<int>& busy,
    int host_numa) {
  const int total = topology.num_gpus();
  std::vector<int> candidates = allowed;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (int id : candidates) {
    if (id < 0 || id >= total) {
      return Status::Invalid("no such GPU: " + std::to_string(id));
    }
  }
  if (g < 1 || g > static_cast<int>(candidates.size())) {
    return Status::Invalid("requested " + std::to_string(g) + " GPUs of " +
                           std::to_string(candidates.size()) + " allowed");
  }
  if (!topology.compiled()) {
    return Status::FailedPrecondition("topology not compiled");
  }

  // Step 1: the GPU combination with the best aggregate HtoD throughput
  // (parallel copy from `host_numa`, sharing links with the busy GPUs'
  // flows), ties broken lexicographically.
  std::vector<int> best_set;
  double best_rate = -1;
  std::vector<int> combo;
  auto enumerate = [&](auto&& self, std::size_t next) -> Status {
    if (static_cast<int>(combo.size()) == g) {
      MGS_ASSIGN_OR_RETURN(const double rate,
                           HtoDAggregate(topology, combo, busy, host_numa));
      if (rate > best_rate * (1 + 1e-9)) {
        best_rate = rate;
        best_set = combo;
      }
      return Status::OK();
    }
    for (std::size_t i = next; i < candidates.size(); ++i) {
      combo.push_back(candidates[i]);
      MGS_RETURN_IF_ERROR(self(self, i + 1));
      combo.pop_back();
    }
    return Status::OK();
  };
  MGS_RETURN_IF_ERROR(enumerate(enumerate, 0));

  if (!for_p2p_merge || g < 2) return best_set;

  // Step 2: order the set to minimize the estimated P2P merge cost. The
  // pairwise bandwidth matrix is computed once; permutations are scored
  // from it.
  const int ntot = topology.num_gpus();
  std::vector<std::vector<double>> pbw(
      static_cast<std::size_t>(ntot),
      std::vector<double>(static_cast<std::size_t>(ntot), 0.0));
  for (int a : best_set) {
    for (int b : best_set) {
      if (a == b) continue;
      MGS_ASSIGN_OR_RETURN(pbw[static_cast<std::size_t>(a)]
                              [static_cast<std::size_t>(b)],
                           PairP2pBandwidth(topology, a, b));
    }
  }
  std::sort(best_set.begin(), best_set.end());
  std::vector<int> best_order = best_set;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> perm = best_set;
  do {
    // Canonical form: within each pair the order is symmetric; skip
    // non-canonical duplicates cheaply.
    bool canonical = true;
    for (std::size_t i = 0; i + 1 < perm.size(); i += 2) {
      if (perm[i] > perm[i + 1]) {
        canonical = false;
        break;
      }
    }
    if (!canonical) continue;
    MGS_ASSIGN_OR_RETURN(
        const double cost,
        OrderCostRecursive(pbw, perm, 0, static_cast<int>(perm.size())));
    if (cost < best_cost * (1 - 1e-12)) {
      best_cost = cost;
      best_order = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best_order;
}

}  // namespace mgs::core
