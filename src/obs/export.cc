#include "obs/export.h"

#include <fstream>
#include <limits>
#include <sstream>

namespace mgs::obs {

namespace {

/// Shortest decimal that round-trips the double exactly.
std::string Num(double value) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += "\"";
  return out;
}

/// `le` label value for a bucket bound: "+Inf" for the overflow bucket.
std::string LeValue(double bound) {
  if (bound == std::numeric_limits<double>::infinity()) return "+Inf";
  return Num(bound);
}

/// Labels plus an extra pair appended (for `le` on histogram buckets).
std::string LabelsWith(const Labels& labels, const std::string& key,
                       const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return FormatLabels(all);
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const auto& [name, family] : registry.families()) {
    if (!family.help.empty()) {
      os << "# HELP " << name << " " << family.help << "\n";
    }
    os << "# TYPE " << name << " " << MetricKindToString(family.kind) << "\n";
    switch (family.kind) {
      case MetricKind::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          os << name << FormatLabels(labels) << " " << Num(counter->value())
             << "\n";
        }
        break;
      case MetricKind::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          os << name << FormatLabels(labels) << " " << Num(gauge->value())
             << "\n";
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          for (std::size_t b = 0; b <= histogram->num_buckets(); ++b) {
            os << name << "_bucket"
               << LabelsWith(labels, "le", LeValue(histogram->UpperBound(b)))
               << " " << histogram->CumulativeCount(b) << "\n";
          }
          os << name << "_sum" << FormatLabels(labels) << " "
             << Num(histogram->sum()) << "\n";
          os << name << "_count" << FormatLabels(labels) << " "
             << histogram->count() << "\n";
        }
        break;
    }
  }
  return os.str();
}

std::string ToJson(const MetricsRegistry& registry) {
  std::ostringstream os;
  os << "{\"families\":[";
  bool first_family = true;
  for (const auto& [name, family] : registry.families()) {
    if (!first_family) os << ",";
    first_family = false;
    os << "{\"name\":\"" << JsonEscape(name) << "\",\"kind\":\""
       << MetricKindToString(family.kind) << "\",\"help\":\""
       << JsonEscape(family.help) << "\",\"metrics\":[";
    bool first_metric = true;
    const auto emit_labels = [&os](const Labels& labels) {
      os << "\"labels\":{";
      bool first = true;
      for (const auto& [key, value] : labels) {
        if (!first) os << ",";
        first = false;
        os << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
      }
      os << "}";
    };
    switch (family.kind) {
      case MetricKind::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          if (!first_metric) os << ",";
          first_metric = false;
          os << "{";
          emit_labels(labels);
          os << ",\"value\":" << Num(counter->value()) << "}";
        }
        break;
      case MetricKind::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          if (!first_metric) os << ",";
          first_metric = false;
          os << "{";
          emit_labels(labels);
          os << ",\"value\":" << Num(gauge->value()) << "}";
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          if (!first_metric) os << ",";
          first_metric = false;
          os << "{";
          emit_labels(labels);
          os << ",\"count\":" << histogram->count()
             << ",\"sum\":" << Num(histogram->sum()) << ",\"buckets\":[";
          for (std::size_t b = 0; b <= histogram->num_buckets(); ++b) {
            if (b > 0) os << ",";
            os << "{\"le\":";
            const double bound = histogram->UpperBound(b);
            if (bound == std::numeric_limits<double>::infinity()) {
              os << "\"+Inf\"";
            } else {
              os << Num(bound);
            }
            os << ",\"count\":" << histogram->CumulativeCount(b) << "}";
          }
          os << "]}";
        }
        break;
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string ToCsv(const MetricsRegistry& registry) {
  std::ostringstream os;
  os << "kind,name,labels,field,value\n";
  for (const auto& [name, family] : registry.families()) {
    const std::string kind = MetricKindToString(family.kind);
    const auto row = [&](const Labels& labels, const std::string& field,
                         const std::string& value) {
      os << kind << "," << CsvEscape(name) << ","
         << CsvEscape(FormatLabels(labels)) << "," << CsvEscape(field) << ","
         << value << "\n";
    };
    switch (family.kind) {
      case MetricKind::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          row(labels, "value", Num(counter->value()));
        }
        break;
      case MetricKind::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          row(labels, "value", Num(gauge->value()));
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          for (std::size_t b = 0; b <= histogram->num_buckets(); ++b) {
            row(labels, "le=" + LeValue(histogram->UpperBound(b)),
                std::to_string(histogram->CumulativeCount(b)));
          }
          row(labels, "sum", Num(histogram->sum()));
          row(labels, "count", std::to_string(histogram->count()));
        }
        break;
    }
  }
  return os.str();
}

Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path) {
  std::string body;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    body = ToJson(registry);
  } else if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    body = ToCsv(registry);
  } else {
    body = ToPrometheusText(registry);
  }
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open metrics file: " + path);
  f << body;
  return f.good() ? Status::OK()
                  : Status::Internal("failed writing metrics file: " + path);
}

}  // namespace mgs::obs
