// Phase/link attribution instrumentation on top of the metrics registry.
//
// SyncFlowMetrics mirrors the flow network's per-link accounting (bytes,
// busy time, saturation time — see sim/flow_network.h) into registry
// counters, so exporters and the explain report see live link state.
//
// PhaseTracker scopes a sorter's execution into named phases (htod / sort /
// merge / dtoh, the paper's Section 6.1 breakdown) and, at each boundary,
// records registry-delta attributions: per-phase duration histograms,
// per-phase per-link byte/busy-time deltas, and the per-phase kernel busy
// time of the busiest GPU. The explain report (obs/explain.h) turns these
// into "the merge phase was bound on nvl-x1(GPU1-GPU3)" style claims.

#ifndef MGS_OBS_PHASE_H_
#define MGS_OBS_PHASE_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/flow_network.h"
#include "topo/topology.h"

namespace mgs::obs {

// Metric names shared by the instrumentation below, the vgpu layer, and
// the explain report.
inline constexpr char kLinkBytes[] = "mgs_link_bytes_total";
inline constexpr char kLinkBusySeconds[] = "mgs_link_busy_seconds_total";
inline constexpr char kLinkSaturatedSeconds[] =
    "mgs_link_saturated_seconds_total";
inline constexpr char kSimTimeSeconds[] = "mgs_sim_time_seconds";
inline constexpr char kKernelBusySeconds[] = "mgs_kernel_busy_seconds_total";
inline constexpr char kCopyBytes[] = "mgs_copy_bytes_total";
inline constexpr char kCopyOps[] = "mgs_copy_ops_total";
inline constexpr char kCopyErrors[] = "mgs_copy_errors_total";
inline constexpr char kCopySeconds[] = "mgs_copy_seconds";
inline constexpr char kKernelSeconds[] = "mgs_kernel_seconds";
inline constexpr char kKernelInvocations[] = "mgs_kernel_invocations_total";
inline constexpr char kCpuPhaseSeconds[] = "mgs_cpu_phase_seconds";
inline constexpr char kCpuBytes[] = "mgs_cpu_bytes_total";
inline constexpr char kNvmeBytes[] = "mgs_nvme_bytes_total";
inline constexpr char kPhaseSeconds[] = "mgs_sort_phase_seconds";
inline constexpr char kPhaseLinkBytes[] = "mgs_sort_phase_link_bytes_total";
inline constexpr char kPhaseLinkBusySeconds[] =
    "mgs_sort_phase_link_busy_seconds_total";
inline constexpr char kPhaseKernelBusySeconds[] =
    "mgs_sort_phase_kernel_busy_seconds_total";

/// Mirrors the flow network's cumulative per-link bytes / busy seconds /
/// saturated seconds into `registry` (counters labeled by link name and
/// physical kind) and stamps the `mgs_sim_time_seconds` gauge with
/// `now_seconds`. Idempotent: counters advance to the network's current
/// totals no matter how often it is called. Settles in-flight flows first.
void SyncFlowMetrics(sim::FlowNetwork* net, const topo::Topology& topology,
                     double now_seconds, MetricsRegistry* registry);

/// Scoped phase attribution for one sorter run. All methods are no-ops when
/// constructed with a null registry, so sorters call it unconditionally.
///
///   obs::PhaseTracker phases(reg, &net, &topo, "p2p");
///   phases.StartPhase("htod", now);   // opens htod
///   phases.StartPhase("sort", now);   // closes htod, opens sort
///   phases.Finish(now);               // closes the last phase
class PhaseTracker {
 public:
  PhaseTracker(MetricsRegistry* registry, sim::FlowNetwork* net,
               const topo::Topology* topology, std::string algo);

  /// Closes the currently-open phase (if any) at `now` and opens `name`.
  void StartPhase(const std::string& name, double now);

  /// Closes the open phase and records nothing further.
  void Finish(double now);

 private:
  void Snapshot();
  void ClosePhase(double now);

  MetricsRegistry* registry_;  // nullptr = disabled
  sim::FlowNetwork* net_;
  const topo::Topology* topology_;
  std::string algo_;
  std::vector<topo::Topology::LinkResource> links_;
  std::string phase_;  // currently open phase ("" = none)
  double phase_begin_ = 0;
  std::vector<double> link_bytes_;
  std::vector<double> link_busy_;
  std::vector<double> kernel_busy_;  // per GPU
};

/// Publishes an already-computed phase breakdown (name -> seconds) as
/// phase-duration histogram observations, without link attribution. Sorters
/// whose phases overlap under pipelining (HET sort) report this way.
void RecordPhaseBreakdown(
    MetricsRegistry* registry, const std::string& algo,
    const std::vector<std::pair<std::string, double>>& phases);

}  // namespace mgs::obs

#endif  // MGS_OBS_PHASE_H_
