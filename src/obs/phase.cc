#include "obs/phase.h"

#include <algorithm>

namespace mgs::obs {

namespace {

/// Advances counter `name{labels}` to `total` (counters are monotone; the
/// delta is what accumulated since the last sync).
void SetCounterTotal(MetricsRegistry* registry, const std::string& name,
                     Labels labels, const std::string& help, double total) {
  Counter& counter = registry->GetCounter(name, std::move(labels), help);
  counter.Add(total - counter.value());
}

}  // namespace

void SyncFlowMetrics(sim::FlowNetwork* net, const topo::Topology& topology,
                     double now_seconds, MetricsRegistry* registry) {
  if (registry == nullptr) return;
  net->SettleTraffic();
  for (const auto& link : topology.LinkResources()) {
    const Labels labels{{"link", link.name},
                        {"kind", topo::LinkKindToString(link.kind)}};
    SetCounterTotal(registry, kLinkBytes, labels,
                    "Weighted bytes that crossed an interconnect link "
                    "resource",
                    net->ResourceTraffic(link.resource));
    SetCounterTotal(registry, kLinkBusySeconds, labels,
                    "Simulated seconds a link resource carried at least one "
                    "flow",
                    net->ResourceBusySeconds(link.resource));
    SetCounterTotal(registry, kLinkSaturatedSeconds, labels,
                    "Simulated seconds a link resource was allocated at "
                    "capacity",
                    net->ResourceSaturatedSeconds(link.resource));
  }
  registry
      ->GetGauge(kSimTimeSeconds, {},
                 "Simulated clock at the last metrics sync")
      .Set(now_seconds);
}

PhaseTracker::PhaseTracker(MetricsRegistry* registry, sim::FlowNetwork* net,
                           const topo::Topology* topology, std::string algo)
    : registry_(registry),
      net_(net),
      topology_(topology),
      algo_(std::move(algo)) {
  if (registry_ == nullptr) return;
  links_ = topology_->LinkResources();
  link_bytes_.resize(links_.size());
  link_busy_.resize(links_.size());
  kernel_busy_.resize(static_cast<std::size_t>(topology_->num_gpus()));
}

void PhaseTracker::Snapshot() {
  net_->SettleTraffic();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    link_bytes_[i] = net_->ResourceTraffic(links_[i].resource);
    link_busy_[i] = net_->ResourceBusySeconds(links_[i].resource);
  }
  for (std::size_t g = 0; g < kernel_busy_.size(); ++g) {
    kernel_busy_[g] = registry_->CounterValue(
        kKernelBusySeconds, {{"gpu", std::to_string(g)}});
  }
}

void PhaseTracker::ClosePhase(double now) {
  if (phase_.empty()) return;
  const std::string phase = std::move(phase_);
  phase_.clear();
  registry_
      ->GetHistogram(kPhaseSeconds, {{"algo", algo_}, {"phase", phase}},
                     "Sorter phase durations (Section 6.1 breakdown)")
      .Observe(now - phase_begin_);

  // Registry-delta attribution: what moved, and which links were occupied,
  // during this phase alone.
  net_->SettleTraffic();
  double max_kernel_delta = 0;
  for (std::size_t g = 0; g < kernel_busy_.size(); ++g) {
    const double value = registry_->CounterValue(
        kKernelBusySeconds, {{"gpu", std::to_string(g)}});
    max_kernel_delta = std::max(max_kernel_delta, value - kernel_busy_[g]);
  }
  registry_
      ->GetCounter(kPhaseKernelBusySeconds,
                   {{"algo", algo_}, {"phase", phase}},
                   "Kernel busy seconds of the busiest GPU within a phase")
      .Add(max_kernel_delta);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const double bytes =
        net_->ResourceTraffic(links_[i].resource) - link_bytes_[i];
    const double busy =
        net_->ResourceBusySeconds(links_[i].resource) - link_busy_[i];
    if (bytes <= 0 && busy <= 0) continue;
    const Labels labels{
        {"algo", algo_}, {"phase", phase}, {"link", links_[i].name}};
    registry_
        ->GetCounter(kPhaseLinkBytes, labels,
                     "Weighted bytes a link carried during a sorter phase")
        .Add(bytes);
    registry_
        ->GetCounter(kPhaseLinkBusySeconds, labels,
                     "Seconds a link was occupied during a sorter phase")
        .Add(busy);
  }
}

void PhaseTracker::StartPhase(const std::string& name, double now) {
  if (registry_ == nullptr) return;
  ClosePhase(now);
  phase_ = name;
  phase_begin_ = now;
  Snapshot();
}

void PhaseTracker::Finish(double now) {
  if (registry_ == nullptr) return;
  ClosePhase(now);
}

void RecordPhaseBreakdown(
    MetricsRegistry* registry, const std::string& algo,
    const std::vector<std::pair<std::string, double>>& phases) {
  if (registry == nullptr) return;
  for (const auto& [phase, seconds] : phases) {
    registry
        ->GetHistogram(kPhaseSeconds, {{"algo", algo}, {"phase", phase}},
                       "Sorter phase durations (Section 6.1 breakdown)")
        .Observe(seconds);
  }
}

}  // namespace mgs::obs
