// Unified telemetry: a simulated-time-aware metrics registry with labeled
// counters, gauges, and log-bucketed histograms.
//
// Every layer of the sort stack publishes through one MetricsRegistry —
// vgpu copies (bytes/ops per link class and direction), flow-network links
// (bytes / busy time / saturation), kernel launches (invocation histograms),
// sorter phase breakdowns, and the multi-tenant scheduler (queue depth,
// rejections, SLO burn). Exporters (obs/export.h) serialize a registry as
// Prometheus text exposition, JSON, or CSV; the bottleneck-attribution
// report (obs/explain.h) is computed from registry contents alone.
//
// Naming scheme (see docs/observability.md): all metrics are prefixed
// `mgs_`, counters end in `_total`, time-valued metrics end in `_seconds`,
// and label keys are lower-case snake. Metric handles returned by
// GetCounter/GetGauge/GetHistogram are stable for the registry's lifetime,
// so hot paths may cache them.
//
// The registry is deliberately clock-free: all durations observed into it
// are *simulated* seconds supplied by the caller, which is what makes the
// same metrics meaningful in unit tests, benches, and service runs.

#ifndef MGS_OBS_METRICS_H_
#define MGS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mgs::obs {

/// A label set: key/value pairs. Registries normalize label order, so
/// {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Renders labels canonically: `{a="1",b="2"}` (empty string for none).
std::string FormatLabels(const Labels& labels);

/// Monotonically increasing value (bytes moved, ops executed). Negative
/// deltas are ignored: counters never go down.
class Counter {
 public:
  void Add(double delta) {
    if (delta > 0) value_ += delta;
  }
  void Inc() { value_ += 1.0; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0;
};

/// Point-in-time value (queue depth, memory pressure).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Log-spaced histogram buckets: finite upper bounds first_bound * growth^i
/// for i in [0, num_buckets), plus an implicit +Inf overflow bucket. The
/// defaults cover simulated durations from 1 µs to ~3 days.
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 4.0;
  int num_buckets = 20;

  bool operator==(const HistogramOptions&) const = default;
};

/// Cumulative histogram over log-spaced buckets (Prometheus `le` semantics:
/// an observation lands in the first bucket whose upper bound is >= it).
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void Observe(double value);

  const HistogramOptions& options() const { return options_; }
  /// Number of finite buckets (the +Inf bucket is index num_buckets()).
  std::size_t num_buckets() const { return bounds_.size(); }
  /// Upper bound of finite bucket i; +Inf for i == num_buckets().
  double UpperBound(std::size_t i) const;
  /// Observations in bucket i alone (i in [0, num_buckets()]).
  std::uint64_t BucketCount(std::size_t i) const { return counts_[i]; }
  /// Observations in buckets [0, i] (Prometheus-style cumulative count).
  std::uint64_t CumulativeCount(std::size_t i) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  friend class MetricsRegistry;
  HistogramOptions options_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  double sum_ = 0;
  std::uint64_t count_ = 0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindToString(MetricKind kind);

/// The registry: families of like-named metrics, each holding one series
/// per label set. Lookups create on first use; re-registering a name with a
/// different kind (or a histogram with different buckets) is a programming
/// error and aborts.
class MetricsRegistry {
 public:
  /// One family: every series sharing a metric name.
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    HistogramOptions histogram_options;
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Counter& GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "");
  Gauge& GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "");
  Histogram& GetHistogram(const std::string& name, Labels labels = {},
                          const std::string& help = "",
                          HistogramOptions options = {});

  /// Current value of a counter series, 0 if it does not exist (does not
  /// create the series — delta trackers poll with this).
  double CounterValue(const std::string& name, Labels labels = {}) const;
  /// Current value of a gauge series, 0 if absent.
  double GaugeValue(const std::string& name, Labels labels = {}) const;

  /// Families in name order (exporters iterate this).
  const std::map<std::string, Family>& families() const { return families_; }
  const Family* FindFamily(const std::string& name) const;

  std::size_t num_families() const { return families_.size(); }

  /// Merges a shard into this registry: counters and histograms accumulate,
  /// gauges take the shard's value (last writer wins). Shards must agree on
  /// metric kinds and histogram bucketing. Worker threads that record into
  /// private registries are folded into the main one this way.
  void MergeFrom(const MetricsRegistry& shard);

  void Clear() { families_.clear(); }

 private:
  Family& GetFamily(const std::string& name, MetricKind kind,
                    const std::string& help);

  std::map<std::string, Family> families_;
};

}  // namespace mgs::obs

#endif  // MGS_OBS_METRICS_H_
