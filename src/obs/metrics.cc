#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mgs::obs {

namespace {

void NormalizeLabels(Labels* labels) {
  std::sort(labels->begin(), labels->end());
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  for (char ch : value) {
    if (ch == '\\' || ch == '"') out += '\\';
    if (ch == '\n') {
      out += "\\n";
      continue;
    }
    out += ch;
  }
  return out;
}

}  // namespace

std::string FormatLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  out += "}";
  return out;
}

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(HistogramOptions options) : options_(options) {
  CheckOk(options.first_bound > 0 && options.growth > 1 &&
                  options.num_buckets > 0
              ? Status::OK()
              : Status::Invalid("histogram buckets must be positive and "
                                "log-spaced (growth > 1)"));
  bounds_.reserve(static_cast<std::size_t>(options.num_buckets));
  double bound = options.first_bound;
  for (int i = 0; i < options.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  // First finite bucket with UpperBound >= value (le semantics); overflow
  // observations land in the +Inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  ++counts_[index];
  sum_ += value;
  ++count_;
}

double Histogram::UpperBound(std::size_t i) const {
  if (i >= bounds_.size()) return std::numeric_limits<double>::infinity();
  return bounds_[i];
}

std::uint64_t Histogram::CumulativeCount(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < counts_.size(); ++b) {
    total += counts_[b];
  }
  return total;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Family& MetricsRegistry::GetFamily(const std::string& name,
                                                    MetricKind kind,
                                                    const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.name = name;
    family.kind = kind;
    family.help = help;
  } else {
    CheckOk(family.kind == kind
                ? Status::OK()
                : Status::Invalid(
                      "metric '" + name + "' registered as " +
                      MetricKindToString(family.kind) + ", requested as " +
                      MetricKindToString(kind)));
    if (family.help.empty()) family.help = help;
  }
  return family;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, Labels labels,
                                     const std::string& help) {
  NormalizeLabels(&labels);
  Family& family = GetFamily(name, MetricKind::kCounter, help);
  auto& slot = family.counters[std::move(labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, Labels labels,
                                 const std::string& help) {
  NormalizeLabels(&labels);
  Family& family = GetFamily(name, MetricKind::kGauge, help);
  auto& slot = family.gauges[std::move(labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         Labels labels,
                                         const std::string& help,
                                         HistogramOptions options) {
  NormalizeLabels(&labels);
  Family& family = GetFamily(name, MetricKind::kHistogram, help);
  if (family.histograms.empty()) {
    family.histogram_options = options;
  } else {
    CheckOk(family.histogram_options == options
                ? Status::OK()
                : Status::Invalid("metric '" + name +
                                  "' re-registered with different histogram "
                                  "buckets"));
  }
  auto& slot = family.histograms[std::move(labels)];
  if (!slot) slot = std::make_unique<Histogram>(options);
  return *slot;
}

const MetricsRegistry::Family* MetricsRegistry::FindFamily(
    const std::string& name) const {
  const auto it = families_.find(name);
  return it == families_.end() ? nullptr : &it->second;
}

double MetricsRegistry::CounterValue(const std::string& name,
                                     Labels labels) const {
  const Family* family = FindFamily(name);
  if (family == nullptr || family->kind != MetricKind::kCounter) return 0;
  NormalizeLabels(&labels);
  const auto it = family->counters.find(labels);
  return it == family->counters.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(const std::string& name,
                                   Labels labels) const {
  const Family* family = FindFamily(name);
  if (family == nullptr || family->kind != MetricKind::kGauge) return 0;
  NormalizeLabels(&labels);
  const auto it = family->gauges.find(labels);
  return it == family->gauges.end() ? 0 : it->second->value();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& shard) {
  for (const auto& [name, family] : shard.families_) {
    switch (family.kind) {
      case MetricKind::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          GetCounter(name, labels, family.help).Add(counter->value());
        }
        break;
      case MetricKind::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          GetGauge(name, labels, family.help).Set(gauge->value());
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          Histogram& mine = GetHistogram(name, labels, family.help,
                                         family.histogram_options);
          for (std::size_t b = 0; b < histogram->counts_.size(); ++b) {
            mine.counts_[b] += histogram->counts_[b];
          }
          mine.sum_ += histogram->sum_;
          mine.count_ += histogram->count_;
        }
        break;
    }
  }
}

}  // namespace mgs::obs
