// Metric names for the fault-injection and resilience layer. The injector
// (src/fault) publishes the fault-side series; the multi-tenant service
// (src/sched) publishes the recovery-side series. Kept here — like
// obs/phase.h — so exporters, the explain report, and tests share one
// vocabulary.

#ifndef MGS_OBS_RESILIENCE_H_
#define MGS_OBS_RESILIENCE_H_

namespace mgs::obs {

// ---- fault injector (src/fault) -------------------------------------------

/// Scheduled fault events fired, labeled {type=gpu-fail|link-degrade|
/// link-down|link-up|copy-error-rate}.
inline constexpr char kFaultEvents[] = "mgs_fault_events_total";
/// Transient copy errors injected by the oracle (a subset of
/// mgs_copy_errors_total, which also counts downstream sticky failures).
inline constexpr char kFaultCopyErrors[] = "mgs_fault_copy_errors_total";
/// Point-in-time fault state of the platform.
inline constexpr char kFaultGpusFailed[] = "mgs_fault_gpus_failed";
inline constexpr char kFaultLinksDegraded[] = "mgs_fault_links_degraded";
inline constexpr char kFaultLinksDown[] = "mgs_fault_links_down";

// ---- scheduler recovery (src/sched) ---------------------------------------

/// Retry dispatches after a retryable (kUnavailable) failure.
inline constexpr char kSchedRetries[] = "mgs_sched_job_retries_total";
/// Jobs that finished successfully after at least one retry.
inline constexpr char kSchedRecovered[] = "mgs_sched_jobs_recovered_total";
/// Jobs rerouted from the P2P sorter to the HET (via-host) sorter because
/// their mesh was degraded.
inline constexpr char kSchedHetFallbacks[] = "mgs_sched_het_fallbacks_total";
/// Healthy (non-failed) GPUs and their fraction of the fleet, sampled by
/// the health monitor.
inline constexpr char kSchedHealthyGpus[] = "mgs_sched_healthy_gpus";
inline constexpr char kSchedAvailability[] = "mgs_sched_gpu_availability";
/// Mean time to repair: per-job seconds between first failure and eventual
/// success, observed when a retried job completes.
inline constexpr char kSchedMttrSeconds[] = "mgs_sched_job_mttr_seconds";

}  // namespace mgs::obs

#endif  // MGS_OBS_RESILIENCE_H_
