// Metric-name vocabulary for the service throughput path (batch
// coalescing and the result cache), in the resilience.h mold: the names
// live here so the server, tests and dashboards agree on spelling.
//
// Counters (monotonic):
//   mgs_sched_coalesced_batches_total  device passes that carried > 1 job
//   mgs_sched_coalesced_jobs_total     jobs that rode such a pass
//   mgs_sched_dedup_hits_total         jobs completed from a twin's result

#ifndef MGS_OBS_SERVICE_H_
#define MGS_OBS_SERVICE_H_

namespace mgs::obs {

inline constexpr const char* kSchedCoalescedBatches =
    "mgs_sched_coalesced_batches_total";
inline constexpr const char* kSchedCoalescedJobs =
    "mgs_sched_coalesced_jobs_total";
inline constexpr const char* kSchedDedupHits = "mgs_sched_dedup_hits_total";

}  // namespace mgs::obs

#endif  // MGS_OBS_SERVICE_H_
