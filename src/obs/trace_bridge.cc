#include "obs/trace_bridge.h"

namespace mgs::obs {

TraceCounterBridge::TraceCounterBridge(const MetricsRegistry* registry,
                                       sim::TraceRecorder* trace,
                                       std::vector<std::string> family_prefixes)
    : registry_(registry),
      trace_(trace),
      family_prefixes_(std::move(family_prefixes)) {}

bool TraceCounterBridge::Tracked(const std::string& family_name) const {
  if (family_prefixes_.empty()) return true;
  for (const auto& prefix : family_prefixes_) {
    if (family_name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void TraceCounterBridge::Sample(double now_seconds) {
  const double dt = now_seconds - last_time_;
  for (const auto& [name, family] : registry_->families()) {
    if (family.kind != MetricKind::kCounter || !Tracked(name)) continue;
    for (const auto& [labels, counter] : family.counters) {
      const std::string key = name + FormatLabels(labels);
      double& last = last_values_[key];
      if (primed_ && dt > 0) {
        const double rate = (counter->value() - last) / dt;
        trace_->AddCounter("metrics:" + name,
                           labels.empty() ? name : FormatLabels(labels),
                           now_seconds, rate);
      }
      last = counter->value();
    }
  }
  last_time_ = now_seconds;
  primed_ = true;
}

}  // namespace mgs::obs
