#include "obs/explain.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/phase.h"
#include "util/units.h"

namespace mgs::obs {

namespace {

std::string LabelValue(const Labels& labels, const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return "";
}

/// Canonical execution order for known phase names; unknown phases sort
/// after, alphabetically.
int PhaseRank(const std::string& phase) {
  static const char* kOrder[] = {"htod",  "partition", "sort",
                                 "local-merge", "split", "exchange",
                                 "shuffle", "merge",  "dtoh"};
  for (std::size_t i = 0; i < std::size(kOrder); ++i) {
    if (phase == kOrder[i]) return static_cast<int>(i);
  }
  return static_cast<int>(std::size(kOrder));
}

std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", 100.0 * fraction);
  return buf;
}

}  // namespace

ExplainReport BuildExplainReport(const MetricsRegistry& registry,
                                 const ExplainOptions& options) {
  ExplainReport report;
  report.elapsed_seconds = registry.GaugeValue(kSimTimeSeconds);

  // ---- links: join bytes / busy / saturated families on the link label.
  if (const auto* bytes_family = registry.FindFamily(kLinkBytes)) {
    for (const auto& [labels, counter] : bytes_family->counters) {
      ExplainLink link;
      link.name = LabelValue(labels, "link");
      link.kind = LabelValue(labels, "kind");
      link.bytes = counter->value();
      link.busy_seconds = registry.CounterValue(kLinkBusySeconds, labels);
      link.saturated_seconds =
          registry.CounterValue(kLinkSaturatedSeconds, labels);
      if (report.elapsed_seconds > 0) {
        link.busy_fraction = link.busy_seconds / report.elapsed_seconds;
        link.saturated_fraction =
            link.saturated_seconds / report.elapsed_seconds;
      }
      report.links.push_back(std::move(link));
    }
  }
  std::sort(report.links.begin(), report.links.end(),
            [](const ExplainLink& a, const ExplainLink& b) {
              if (a.saturated_seconds != b.saturated_seconds) {
                return a.saturated_seconds > b.saturated_seconds;
              }
              if (a.busy_seconds != b.busy_seconds) {
                return a.busy_seconds > b.busy_seconds;
              }
              return a.name < b.name;
            });
  if (options.top_k_links > 0 &&
      report.links.size() > static_cast<std::size_t>(options.top_k_links)) {
    report.links.resize(static_cast<std::size_t>(options.top_k_links));
  }

  // ---- phases: one entry per (algo, phase) of the duration histogram,
  // attributed via the per-phase link/kernel delta counters.
  if (const auto* phase_family = registry.FindFamily(kPhaseSeconds)) {
    for (const auto& [labels, histogram] : phase_family->histograms) {
      ExplainPhase phase;
      phase.algo = LabelValue(labels, "algo");
      phase.phase = LabelValue(labels, "phase");
      phase.seconds = histogram->sum();
      phase.runs = static_cast<int>(histogram->count());
      phase.kernel_busy_seconds = registry.CounterValue(
          kPhaseKernelBusySeconds,
          {{"algo", phase.algo}, {"phase", phase.phase}});
      report.phases.push_back(std::move(phase));
    }
  }
  if (const auto* link_family = registry.FindFamily(kPhaseLinkBusySeconds)) {
    for (auto& phase : report.phases) {
      for (const auto& [labels, counter] : link_family->counters) {
        if (LabelValue(labels, "algo") != phase.algo ||
            LabelValue(labels, "phase") != phase.phase) {
          continue;
        }
        if (counter->value() > phase.link_busy_seconds) {
          phase.link_busy_seconds = counter->value();
          phase.bottleneck_link = LabelValue(labels, "link");
          phase.link_bytes = registry.CounterValue(kPhaseLinkBytes, labels);
        }
      }
    }
  }
  for (auto& phase : report.phases) {
    if (phase.seconds > 0) {
      phase.link_busy_fraction = phase.link_busy_seconds / phase.seconds;
      phase.kernel_busy_fraction = phase.kernel_busy_seconds / phase.seconds;
    }
    phase.transfer_bound =
        phase.link_busy_seconds >= phase.kernel_busy_seconds;
  }
  std::sort(report.phases.begin(), report.phases.end(),
            [](const ExplainPhase& a, const ExplainPhase& b) {
              if (a.algo != b.algo) return a.algo < b.algo;
              const int ra = PhaseRank(a.phase), rb = PhaseRank(b.phase);
              if (ra != rb) return ra < rb;
              return a.phase < b.phase;
            });

  // ---- per-GPU compute occupancy.
  if (const auto* kernel_family = registry.FindFamily(kKernelBusySeconds)) {
    for (const auto& [labels, counter] : kernel_family->counters) {
      ExplainGpu gpu;
      gpu.gpu = LabelValue(labels, "gpu");
      gpu.kernel_busy_seconds = counter->value();
      if (report.elapsed_seconds > 0) {
        gpu.busy_fraction = gpu.kernel_busy_seconds / report.elapsed_seconds;
      }
      report.gpus.push_back(std::move(gpu));
    }
    std::sort(report.gpus.begin(), report.gpus.end(),
              [](const ExplainGpu& a, const ExplainGpu& b) {
                if (a.gpu.size() != b.gpu.size()) {
                  return a.gpu.size() < b.gpu.size();  // "2" before "10"
                }
                return a.gpu < b.gpu;
              });
  }
  return report;
}

std::string RenderExplainReport(const ExplainReport& report) {
  std::ostringstream os;
  os << "=== explain: bottleneck attribution over "
     << FormatDuration(report.elapsed_seconds) << " simulated ===\n";

  os << "top links (by saturation, then busy time):\n";
  if (report.links.empty()) {
    os << "  (no link traffic recorded)\n";
  }
  for (const auto& link : report.links) {
    os << "  " << link.name << " [" << link.kind << "]  busy " << Pct(
        link.busy_fraction)
       << "  saturated " << Pct(link.saturated_fraction) << "  "
       << FormatBytes(link.bytes) << "\n";
  }

  os << "phases:\n";
  if (report.phases.empty()) {
    os << "  (no phase instrumentation recorded)\n";
  }
  for (const auto& phase : report.phases) {
    os << "  " << phase.algo << "/" << phase.phase << "  "
       << FormatDuration(phase.seconds);
    if (phase.runs > 1) os << " (" << phase.runs << " runs)";
    if (!phase.bottleneck_link.empty() || phase.kernel_busy_seconds > 0) {
      os << "  -> " << (phase.transfer_bound ? "transfer-bound" : "compute-bound");
      if (phase.transfer_bound && !phase.bottleneck_link.empty()) {
        os << " on " << phase.bottleneck_link << " (link busy "
           << Pct(phase.link_busy_fraction) << ", "
           << FormatBytes(phase.link_bytes) << ")";
      } else if (!phase.transfer_bound) {
        os << " (kernel busy " << Pct(phase.kernel_busy_fraction);
        if (!phase.bottleneck_link.empty()) {
          os << ", busiest link " << phase.bottleneck_link << " "
             << Pct(phase.link_busy_fraction);
        }
        os << ")";
      }
    }
    os << "\n";
  }

  os << "per-GPU compute busy fraction:\n";
  if (report.gpus.empty()) {
    os << "  (no kernel instrumentation recorded)\n";
  }
  for (const auto& gpu : report.gpus) {
    os << "  GPU" << gpu.gpu << "  " << Pct(gpu.busy_fraction) << "  ("
       << FormatDuration(gpu.kernel_busy_seconds) << " in kernels)\n";
  }
  return os.str();
}

}  // namespace mgs::obs
