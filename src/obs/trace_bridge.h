// Registry -> Chrome-trace bridge: periodic counter-delta tracks.
//
// A TraceCounterBridge samples a MetricsRegistry's counter families and
// appends Chrome counter events (rates: delta / elapsed) to a
// TraceRecorder, so registry-backed series — per-link bytes, copy volumes,
// scheduler rejections — render as counter tracks next to the op spans in
// ui.perfetto.dev. The multi-tenant service's utilization sampler drives
// this once per sampling tick.

#ifndef MGS_OBS_TRACE_BRIDGE_H_
#define MGS_OBS_TRACE_BRIDGE_H_

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/trace.h"

namespace mgs::obs {

class TraceCounterBridge {
 public:
  /// Samples every counter family whose name starts with one of
  /// `family_prefixes` (empty = all counter families). One Chrome counter
  /// track per family; one series per label set.
  TraceCounterBridge(const MetricsRegistry* registry,
                     sim::TraceRecorder* trace,
                     std::vector<std::string> family_prefixes = {});

  /// Emits one sample per tracked series: the counter's increase since the
  /// previous Sample divided by the elapsed simulated time (a per-second
  /// rate). The first call only establishes the baseline.
  void Sample(double now_seconds);

 private:
  bool Tracked(const std::string& family_name) const;

  const MetricsRegistry* registry_;
  sim::TraceRecorder* trace_;
  std::vector<std::string> family_prefixes_;
  std::map<std::string, double> last_values_;  // family + labels -> value
  double last_time_ = 0;
  bool primed_ = false;
};

}  // namespace mgs::obs

#endif  // MGS_OBS_TRACE_BRIDGE_H_
