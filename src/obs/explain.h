// Bottleneck-attribution "explain" report, computed from a MetricsRegistry
// snapshot alone.
//
// Answers the paper's diagnostic questions (Figs. 12-14, Section 4) for any
// instrumented run: which interconnect links saturated and for how long,
// whether each sorter phase was transfer-bound or compute-bound (and on
// which link / GPU), and how busy each GPU's compute engine was. Surfaced
// by `mgsort_cli --explain`.

#ifndef MGS_OBS_EXPLAIN_H_
#define MGS_OBS_EXPLAIN_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mgs::obs {

struct ExplainOptions {
  /// Links listed in the saturation table.
  int top_k_links = 5;
};

/// One interconnect link's whole-run load.
struct ExplainLink {
  std::string name;
  std::string kind;               // physical family ("nvlink2", "pcie4", ...)
  double bytes = 0;               // weighted bytes carried
  double busy_seconds = 0;        // time with >= 1 flow
  double saturated_seconds = 0;   // time allocated at capacity
  double busy_fraction = 0;       // busy / elapsed
  double saturated_fraction = 0;  // saturated / elapsed
};

/// One sorter phase's boundness attribution.
struct ExplainPhase {
  std::string algo;
  std::string phase;
  double seconds = 0;              // total across runs of this phase
  int runs = 0;                    // histogram count
  std::string bottleneck_link;     // busiest link during the phase ("" none)
  double link_busy_seconds = 0;    // that link's in-phase busy time
  double link_bytes = 0;           // that link's in-phase bytes
  double link_busy_fraction = 0;   // link busy / phase seconds
  double kernel_busy_seconds = 0;  // busiest GPU's in-phase kernel time
  double kernel_busy_fraction = 0;
  /// True when the busiest link outweighs the busiest GPU: the phase's
  /// critical path ran through the interconnect, not compute.
  bool transfer_bound = false;
};

/// One GPU's compute-engine occupancy.
struct ExplainGpu {
  std::string gpu;
  double kernel_busy_seconds = 0;
  double busy_fraction = 0;  // kernel busy / elapsed
};

struct ExplainReport {
  double elapsed_seconds = 0;
  std::vector<ExplainLink> links;    // top-k, most saturated/busiest first
  std::vector<ExplainPhase> phases;  // execution order (htod, sort, ...)
  std::vector<ExplainGpu> gpus;
};

/// Builds the report from registry contents (the metrics written by
/// SyncFlowMetrics, PhaseTracker, and the vgpu kernel instrumentation).
ExplainReport BuildExplainReport(const MetricsRegistry& registry,
                                 const ExplainOptions& options = {});

/// Renders the report as the CLI's human-readable text block.
std::string RenderExplainReport(const ExplainReport& report);

}  // namespace mgs::obs

#endif  // MGS_OBS_EXPLAIN_H_
