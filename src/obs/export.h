// Registry exporters: Prometheus text exposition, JSON snapshot, CSV.
//
// All three render the same data; the JSON and CSV forms exist so offline
// tooling (notebooks, spreadsheets) can consume a snapshot without a
// Prometheus parser. Numbers are emitted with max_digits10 precision, so a
// snapshot round-trips exactly.

#ifndef MGS_OBS_EXPORT_H_
#define MGS_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace mgs::obs {

/// Prometheus text exposition format (version 0.0.4): `# HELP` / `# TYPE`
/// headers per family; histograms expand into `_bucket{le=...}`, `_sum`,
/// `_count` series.
std::string ToPrometheusText(const MetricsRegistry& registry);

/// JSON snapshot:
///   {"families":[{"name":...,"kind":...,"help":...,"metrics":[
///      {"labels":{...},"value":v} |
///      {"labels":{...},"count":n,"sum":s,"buckets":[{"le":b,"count":c}..]}
///   ]}]}
std::string ToJson(const MetricsRegistry& registry);

/// CSV with header `kind,name,labels,field,value`; histogram buckets become
/// one row per bucket (field `le=<bound>`) plus `sum` and `count` rows.
std::string ToCsv(const MetricsRegistry& registry);

/// Writes the registry to `path`, choosing the format from the extension:
/// `.json` -> JSON, `.csv` -> CSV, anything else (`.prom`, `.txt`, ...) ->
/// Prometheus text.
Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace mgs::obs

#endif  // MGS_OBS_EXPORT_H_
