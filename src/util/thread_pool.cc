#include "util/thread_pool.h"

#include <algorithm>

namespace mgs {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t min_shard) {
  if (n <= 0) return;
  const int shards =
      static_cast<int>(std::min<std::int64_t>(num_threads(),
                                              (n + min_shard - 1) / min_shard));
  if (shards <= 1) {
    fn(0, n);
    return;
  }
  const std::int64_t per = (n + shards - 1) / shards;
  for (int s = 0; s < shards; ++s) {
    const std::int64_t begin = s * per;
    const std::int64_t end = std::min<std::int64_t>(begin + per, n);
    if (begin >= end) break;
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace mgs
