// Benchmark reporting: aligned console tables reproducing the paper's rows
// and series, plus optional CSV dumps (set MGS_BENCH_CSV_DIR).

#ifndef MGS_UTIL_REPORT_H_
#define MGS_UTIL_REPORT_H_

#include <optional>
#include <string>
#include <vector>

namespace mgs {

/// One experiment table: fixed columns, string cells, auto-aligned printing.
class ReportTable {
 public:
  ReportTable(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  /// Convenience for numeric cells.
  static std::string Num(double v, int precision = 2);

  /// Prints an aligned table to stdout.
  void Print() const;

  /// Writes the table as CSV to `<dir>/<slug(title)>.csv`.
  /// Returns the path written, or nullopt on failure.
  std::optional<std::string> WriteCsv(const std::string& dir) const;

  /// Prints, and writes CSV when the MGS_BENCH_CSV_DIR env var is set.
  void Emit() const;

  const std::string& title() const { return title_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner for a bench binary.
void PrintBanner(const std::string& text);

}  // namespace mgs

#endif  // MGS_UTIL_REPORT_H_
