// Workload data generation: the key distributions and data types evaluated
// in the paper (Section 6.1 uses uniform int32; Section 6.3 varies
// distribution and type).

#ifndef MGS_UTIL_DATAGEN_H_
#define MGS_UTIL_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mgs {

/// Key distributions from Section 6.3 (Figure 16), plus Zipf as an extra
/// skewed workload for duplicate-heavy ablations.
enum class Distribution {
  kUniform,
  kNormal,
  kSorted,
  kReverseSorted,
  kNearlySorted,
  kZipf,
};

const char* DistributionToString(Distribution d);
Result<Distribution> DistributionFromString(const std::string& name);

/// Element types evaluated in Section 6.3.
enum class DataType { kInt32, kInt64, kFloat32, kFloat64 };

const char* DataTypeToString(DataType t);
std::size_t DataTypeSize(DataType t);

/// Key shape, orthogonal to DataType: the paper stops at fixed-width
/// numerics (kNumeric); kString sorts variable-length strings through
/// core::StringKey and kRecord multi-column rows through core::SortRecord
/// (generators live in core/keygen.h — they need core types).
enum class KeyKind { kNumeric, kString, kRecord };

const char* KeyKindToString(KeyKind k);
Result<KeyKind> KeyKindFromString(const std::string& name);

/// Options controlling generation.
struct DataGenOptions {
  Distribution distribution = Distribution::kUniform;
  std::uint64_t seed = 42;
  /// Fraction of out-of-place elements for kNearlySorted (paper: "nearly").
  double nearly_sorted_noise = 0.01;
  /// Zipf skew parameter.
  double zipf_theta = 0.99;
};

/// Fills `out` with `n` keys of the requested distribution. Deterministic
/// for a fixed seed. T must be one of int32_t, int64_t, float, double.
template <typename T>
void GenerateKeys(std::int64_t n, const DataGenOptions& options,
                  std::vector<T>* out);

/// Convenience: allocate and fill.
template <typename T>
std::vector<T> GenerateKeys(std::int64_t n, const DataGenOptions& options) {
  std::vector<T> v;
  GenerateKeys<T>(n, options, &v);
  return v;
}

/// SplitMix64: tiny, fast, high-quality 64-bit mixing PRNG used by all
/// generators (deterministic and seedable, unlike std::mt19937 across
/// platforms ~10x slower for bulk fills).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace mgs

#endif  // MGS_UTIL_DATAGEN_H_
