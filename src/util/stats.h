// Small statistics helpers used by the benchmark harness.

#ifndef MGS_UTIL_STATS_H_
#define MGS_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace mgs {

/// Accumulates samples; exposes mean / min / max / stddev.
class RunningStats {
 public:
  void Add(double x) {
    samples_.push_back(x);
  }

  std::size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double Min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  double StdDev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = Mean();
    double s = 0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

 private:
  std::vector<double> samples_;
};

/// Nearest rank for percentile p of n samples, 1-based. The small slack
/// before the ceiling absorbs binary-fraction error: 99.9% of 1000 must be
/// rank 999, not ceil(999.0000000000001) = 1000.
inline std::size_t PercentileRank(double p, std::size_t n) {
  const double clamped = std::min(100.0, std::max(0.0, p));
  const double exact = clamped / 100.0 * static_cast<double>(n);
  return static_cast<std::size_t>(std::ceil(exact - 1e-9));
}

/// Nearest-rank percentile (p in [0, 100]) of `samples`; 0 for an empty
/// input. Takes the samples by value because it sorts them.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = PercentileRank(p, samples.size());
  return samples[rank == 0 ? 0 : rank - 1];
}

/// Distribution summary over latency-like samples (used by the sort
/// service for end-to-end latency, queueing delay, and service time).
struct LatencySummary {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
  double mean = 0;
  double max = 0;
  std::size_t count = 0;
};

inline LatencySummary Summarize(const std::vector<double>& samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank lookups on the one sorted copy (Percentile would re-sort).
  auto at = [&sorted](double p) {
    const std::size_t rank = PercentileRank(p, sorted.size());
    return sorted[rank == 0 ? 0 : rank - 1];
  };
  s.p50 = at(50);
  s.p95 = at(95);
  s.p99 = at(99);
  s.p999 = at(99.9);
  s.max = sorted.back();
  double sum = 0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(sorted.size());
  return s;
}

}  // namespace mgs

#endif  // MGS_UTIL_STATS_H_
