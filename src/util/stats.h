// Small statistics helpers used by the benchmark harness.

#ifndef MGS_UTIL_STATS_H_
#define MGS_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace mgs {

/// Accumulates samples; exposes mean / min / max / stddev.
class RunningStats {
 public:
  void Add(double x) {
    samples_.push_back(x);
  }

  std::size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double Min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  double StdDev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = Mean();
    double s = 0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
  }

 private:
  std::vector<double> samples_;
};

}  // namespace mgs

#endif  // MGS_UTIL_STATS_H_
