// Status / Result error model, in the style of Apache Arrow and Abseil.
//
// Library code in this project does not throw exceptions across public API
// boundaries; fallible operations return `Status` or `Result<T>`.

#ifndef MGS_UTIL_STATUS_H_
#define MGS_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace mgs {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kFailedPrecondition,
  kUnavailable,  // transient/retryable: lost device, downed link, flaky copy
};

/// Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// An OK status carries no allocation; error states allocate a small state
/// block. `Status` is cheap to move and to test for `ok()`.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& st);

/// Either a value of type T or an error `Status`.
///
/// Accessing the value of an errored result aborts (programming error);
/// callers must check `ok()` or use the ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {}   // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(v_);
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckOk() const;
  std::variant<T, Status> v_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& st);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal::DieOnBadResult(status());
}

#define MGS_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::mgs::Status _st = (expr);                      \
    if (!_st.ok()) return _st;                       \
  } while (0)

#define MGS_CONCAT_IMPL(a, b) a##b
#define MGS_CONCAT(a, b) MGS_CONCAT_IMPL(a, b)

#define MGS_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto MGS_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!MGS_CONCAT(_res_, __LINE__).ok())                       \
    return MGS_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(MGS_CONCAT(_res_, __LINE__)).ValueOrDie()

/// Aborts the process if `st` is not OK. For use at the edges (main, tests).
void CheckOk(const Status& st);

template <typename T>
T CheckOk(Result<T> result) {
  CheckOk(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace mgs

#endif  // MGS_UTIL_STATUS_H_
