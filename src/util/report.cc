#include "util/report.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace mgs {

ReportTable::ReportTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void ReportTable::Print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), cells[c].c_str(),
                  c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 != columns_.size()) rule += "  ";
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

namespace {
std::string Slug(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::optional<std::string> ReportTable::WriteCsv(const std::string& dir) const {
  const std::string path = dir + "/" + Slug(title_) + ".csv";
  std::ofstream f(path);
  if (!f) return std::nullopt;
  auto write_row = [&f](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      f << CsvEscape(cells[c]) << (c + 1 == cells.size() ? "\n" : ",");
    }
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
  return path;
}

void ReportTable::Emit() const {
  Print();
  if (const char* dir = std::getenv("MGS_BENCH_CSV_DIR")) {
    if (auto path = WriteCsv(dir)) {
      std::printf("[csv] %s\n", path->c_str());
    }
  }
}

void PrintBanner(const std::string& text) {
  std::string rule(text.size() + 4, '=');
  std::printf("%s\n| %s |\n%s\n", rule.c_str(), text.c_str(), rule.c_str());
  std::fflush(stdout);
}

}  // namespace mgs
