// Byte / throughput / key-count unit helpers.
//
// Conventions used throughout this project (matching the paper):
//   * "GB" means 1e9 bytes (decimal), as interconnect bandwidths are quoted
//     in GB/s decimal.
//   * Throughput is bytes per (simulated) second, durations are seconds.
//   * "B keys" in the paper means 1e9 (billion) keys.

#ifndef MGS_UTIL_UNITS_H_
#define MGS_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace mgs {

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

inline constexpr std::int64_t kKilo = 1'000;
inline constexpr std::int64_t kMega = 1'000'000;
inline constexpr std::int64_t kGiga = 1'000'000'000;

/// Bytes → "X.Y GB" style human string.
std::string FormatBytes(double bytes);

/// Bytes/second → "X.Y GB/s" style human string.
std::string FormatThroughput(double bytes_per_sec);

/// Seconds → "123.4 ms" / "1.23 s" style human string.
std::string FormatDuration(double seconds);

/// Key count → "2.0B keys" / "512M keys" style human string.
std::string FormatKeys(std::int64_t keys);

}  // namespace mgs

#endif  // MGS_UTIL_UNITS_H_
