#include "util/datagen.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mgs {

const char* DistributionToString(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kNormal:
      return "normal";
    case Distribution::kSorted:
      return "sorted";
    case Distribution::kReverseSorted:
      return "reverse-sorted";
    case Distribution::kNearlySorted:
      return "nearly-sorted";
    case Distribution::kZipf:
      return "zipf";
  }
  return "unknown";
}

Result<Distribution> DistributionFromString(const std::string& name) {
  if (name == "uniform") return Distribution::kUniform;
  if (name == "normal") return Distribution::kNormal;
  if (name == "sorted") return Distribution::kSorted;
  if (name == "reverse-sorted") return Distribution::kReverseSorted;
  if (name == "nearly-sorted") return Distribution::kNearlySorted;
  if (name == "zipf") return Distribution::kZipf;
  return Status::Invalid("unknown distribution: " + name);
}

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat32:
      return "float32";
    case DataType::kFloat64:
      return "float64";
  }
  return "unknown";
}

std::size_t DataTypeSize(DataType t) {
  switch (t) {
    case DataType::kInt32:
    case DataType::kFloat32:
      return 4;
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
  }
  return 0;
}

const char* KeyKindToString(KeyKind k) {
  switch (k) {
    case KeyKind::kNumeric:
      return "numeric";
    case KeyKind::kString:
      return "string";
    case KeyKind::kRecord:
      return "record";
  }
  return "unknown";
}

Result<KeyKind> KeyKindFromString(const std::string& name) {
  if (name == "numeric") return KeyKind::kNumeric;
  if (name == "string") return KeyKind::kString;
  if (name == "record") return KeyKind::kRecord;
  return Status::Invalid("unknown key kind: " + name);
}

namespace {

// Maps a raw 64-bit random value to a key of type T spanning (most of) its
// domain. Floats get finite values in [-1e9, 1e9].
template <typename T>
T ToKey(std::uint64_t bits) {
  if constexpr (std::is_same_v<T, std::int32_t>) {
    return static_cast<std::int32_t>(bits);
  } else if constexpr (std::is_same_v<T, std::int64_t>) {
    return static_cast<std::int64_t>(bits);
  } else {
    const double unit =
        static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
    return static_cast<T>((unit - 0.5) * 2e9);
  }
}

// Monotone key for the sorted/reverse-sorted generators: rank i of n mapped
// into the type's domain, with duplicates when n exceeds the domain.
template <typename T>
T RankKey(std::int64_t i, std::int64_t n) {
  const double unit = n <= 1 ? 0.0 : static_cast<double>(i) / (n - 1);
  if constexpr (std::is_same_v<T, std::int32_t>) {
    return static_cast<std::int32_t>(unit * 4.0e9 - 2.0e9);
  } else if constexpr (std::is_same_v<T, std::int64_t>) {
    return static_cast<std::int64_t>(unit * 1.8e18 - 9.0e17);
  } else {
    return static_cast<T>((unit - 0.5) * 2e9);
  }
}

template <typename T>
void FillUniform(std::int64_t n, std::uint64_t seed, std::vector<T>* out) {
  SplitMix64 rng(seed);
  for (std::int64_t i = 0; i < n; ++i) (*out)[i] = ToKey<T>(rng.Next());
}

template <typename T>
void FillNormal(std::int64_t n, std::uint64_t seed, std::vector<T>* out) {
  // Box-Muller on SplitMix64; mean 0, sigma covering ~1/8 of the domain so
  // that duplicates stay rare for 64-bit types and realistic for 32-bit.
  SplitMix64 rng(seed);
  const double sigma = std::is_same_v<T, std::int32_t> ? 2.5e8 : 1.0e8;
  for (std::int64_t i = 0; i < n; i += 2) {
    double u1 = rng.NextDouble();
    double u2 = rng.NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double z0 = r * std::cos(2.0 * M_PI * u2);
    const double z1 = r * std::sin(2.0 * M_PI * u2);
    (*out)[i] = static_cast<T>(z0 * sigma);
    if (i + 1 < n) (*out)[i + 1] = static_cast<T>(z1 * sigma);
  }
}

template <typename T>
void FillZipf(std::int64_t n, double theta, std::uint64_t seed,
              std::vector<T>* out) {
  // Approximate Zipf over 1e6 distinct values via the inverse-CDF power
  // method: rank = N * u^(1/(1-theta)) biases toward small ranks.
  SplitMix64 rng(seed);
  constexpr double kDomain = 1e6;
  const double exponent = 1.0 / (1.0 - std::min(theta, 0.999));
  for (std::int64_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    const double rank = kDomain * std::pow(u, exponent);
    (*out)[i] = static_cast<T>(rank);
  }
}

}  // namespace

template <typename T>
void GenerateKeys(std::int64_t n, const DataGenOptions& options,
                  std::vector<T>* out) {
  out->resize(static_cast<std::size_t>(n));
  if (n == 0) return;
  switch (options.distribution) {
    case Distribution::kUniform:
      FillUniform<T>(n, options.seed, out);
      break;
    case Distribution::kNormal:
      FillNormal<T>(n, options.seed, out);
      break;
    case Distribution::kSorted:
      for (std::int64_t i = 0; i < n; ++i) (*out)[i] = RankKey<T>(i, n);
      break;
    case Distribution::kReverseSorted:
      for (std::int64_t i = 0; i < n; ++i) {
        (*out)[i] = RankKey<T>(n - 1 - i, n);
      }
      break;
    case Distribution::kNearlySorted: {
      for (std::int64_t i = 0; i < n; ++i) (*out)[i] = RankKey<T>(i, n);
      SplitMix64 rng(options.seed);
      const auto swaps = static_cast<std::int64_t>(
          static_cast<double>(n) * options.nearly_sorted_noise);
      for (std::int64_t s = 0; s < swaps; ++s) {
        const auto a = static_cast<std::int64_t>(rng.Next() % n);
        const auto b = static_cast<std::int64_t>(rng.Next() % n);
        std::swap((*out)[a], (*out)[b]);
      }
      break;
    }
    case Distribution::kZipf:
      FillZipf<T>(n, options.zipf_theta, options.seed, out);
      break;
  }
}

template void GenerateKeys<std::int32_t>(std::int64_t, const DataGenOptions&,
                                         std::vector<std::int32_t>*);
template void GenerateKeys<std::int64_t>(std::int64_t, const DataGenOptions&,
                                         std::vector<std::int64_t>*);
template void GenerateKeys<float>(std::int64_t, const DataGenOptions&,
                                  std::vector<float>*);
template void GenerateKeys<double>(std::int64_t, const DataGenOptions&,
                                   std::vector<double>*);

}  // namespace mgs
