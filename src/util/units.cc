#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace mgs {

namespace {
std::string Format(const char* fmt, double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v, suffix);
  return buf;
}
}  // namespace

std::string FormatBytes(double bytes) {
  if (bytes >= kGB) return Format("%.2f %s", bytes / kGB, "GB");
  if (bytes >= kMB) return Format("%.2f %s", bytes / kMB, "MB");
  if (bytes >= kKB) return Format("%.2f %s", bytes / kKB, "KB");
  return Format("%.0f %s", bytes, "B");
}

std::string FormatThroughput(double bytes_per_sec) {
  if (bytes_per_sec >= kGB) {
    return Format("%.1f %s", bytes_per_sec / kGB, "GB/s");
  }
  if (bytes_per_sec >= kMB) {
    return Format("%.1f %s", bytes_per_sec / kMB, "MB/s");
  }
  return Format("%.1f %s", bytes_per_sec / kKB, "KB/s");
}

std::string FormatDuration(double seconds) {
  if (seconds >= 1.0) return Format("%.3f %s", seconds, "s");
  if (seconds >= 1e-3) return Format("%.2f %s", seconds * 1e3, "ms");
  if (seconds >= 1e-6) return Format("%.2f %s", seconds * 1e6, "us");
  return Format("%.1f %s", seconds * 1e9, "ns");
}

std::string FormatKeys(std::int64_t keys) {
  if (keys >= kGiga) {
    return Format("%.2f%s keys", static_cast<double>(keys) / kGiga, "B");
  }
  if (keys >= kMega) {
    return Format("%.1f%s keys", static_cast<double>(keys) / kMega, "M");
  }
  if (keys >= kKilo) {
    return Format("%.1f%s keys", static_cast<double>(keys) / kKilo, "K");
  }
  return Format("%.0f%s keys", static_cast<double>(keys), "");
}

}  // namespace mgs
