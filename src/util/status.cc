#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace mgs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfMemory:
      return "Out of memory";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<State>(State{code, std::move(message)});
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code());
  s += ": ";
  s += message();
  return s;
}

std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

namespace internal {
void DieOnBadResult(const Status& st) {
  std::fprintf(stderr, "Result accessed with error status: %s\n",
               st.ToString().c_str());
  std::abort();
}
}  // namespace internal

void CheckOk(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "Fatal status: %s\n", st.ToString().c_str());
    std::abort();
  }
}

}  // namespace mgs
