// A small fixed-size thread pool with a parallel-for helper.
//
// The CPU sorting substrate (PARADIS, multiway merge) is genuinely parallel
// code; this pool is its execution engine. It is also used to speed up the
// functional layer of the GPU simulator.

#ifndef MGS_UTIL_THREAD_POOL_H_
#define MGS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mgs {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 → hardware concurrency).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> fn);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(begin, end) over `num_threads` contiguous shards of [0, n) and
  /// waits. Runs inline when n is small or the pool has one thread.
  void ParallelFor(std::int64_t n,
                   const std::function<void(std::int64_t, std::int64_t)>& fn,
                   std::int64_t min_shard = 1024);

  /// Process-wide default pool (hardware concurrency).
  static ThreadPool* Default();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace mgs

#endif  // MGS_UTIL_THREAD_POOL_H_
