// A counting semaphore for simulated resources with a bounded admission
// window (e.g. the per-NIC in-flight transfer budget of the distributed
// shuffle). Modeled on vgpu::SimMutex: coroutine awaiters queue FIFO, so
// acquisition order — and therefore the whole simulation — stays
// deterministic.

#ifndef MGS_SIM_SEMAPHORE_H_
#define MGS_SIM_SEMAPHORE_H_

#include <coroutine>
#include <deque>

namespace mgs::sim {

class Semaphore {
 public:
  explicit Semaphore(int limit) : available_(limit) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  int available() const { return available_; }
  std::size_t waiters() const { return waiters_.size(); }

  /// Awaitable acquisition of one slot; FIFO among waiters.
  auto Acquire() {
    struct Awaiter {
      Semaphore* semaphore;
      bool await_ready() const noexcept { return semaphore->available_ > 0; }
      void await_suspend(std::coroutine_handle<> h) {
        semaphore->waiters_.push_back(h);
      }
      void await_resume() const noexcept { --semaphore->available_; }
    };
    return Awaiter{this};
  }

  /// Returns one slot; resumes the next waiter (which re-claims it).
  void Release() {
    ++available_;
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      h.resume();  // its await_resume decrements available_ again
    }
  }

 private:
  int available_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace mgs::sim

#endif  // MGS_SIM_SEMAPHORE_H_
