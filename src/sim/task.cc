#include "sim/task.h"

namespace mgs::sim {

namespace {

// Eager, self-destroying coroutine used to drive a lazy Task to completion.
struct DetachedRunner {
  struct promise_type {
    DetachedRunner get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

}  // namespace

JoinerPtr Spawn(Task<void> task) {
  auto joiner = std::make_shared<Joiner>();
  // The runner coroutine keeps the task frame alive in its parameter; the
  // lambda has this (friend) function's access to Joiner::done_.
  [](Task<void> t, JoinerPtr j) -> DetachedRunner {
    co_await std::move(t);
    j->done_.Fire();
  }(std::move(task), joiner);
  return joiner;
}

Task<void> WhenAll(std::vector<JoinerPtr> joiners) {
  for (auto& j : joiners) {
    co_await j->Wait();
  }
}

Task<void> WhenAll(std::vector<Task<void>> tasks) {
  std::vector<JoinerPtr> joiners;
  joiners.reserve(tasks.size());
  for (auto& t : tasks) joiners.push_back(Spawn(std::move(t)));
  for (auto& j : joiners) {
    co_await j->Wait();
  }
}

Status RunToCompletion(Simulator* simulator, Task<void> task) {
  auto joiner = Spawn(std::move(task));
  simulator->Run();
  if (!joiner->done()) {
    return Status::Internal(
        "simulation reached quiescence before the root task completed "
        "(deadlocked host logic: a co_await never fired)");
  }
  return Status::OK();
}

}  // namespace mgs::sim
