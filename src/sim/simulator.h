// Discrete-event simulation core: a virtual clock and an event queue.
//
// All timing in this project is *simulated time* (seconds). Host logic
// (multi-GPU sort orchestration) runs as coroutines resumed by events; GPU
// copies and kernels are events whose completion times come from the flow
// network (src/sim/flow_network.h) and kernel cost models (src/vgpu).
//
// The simulator is deterministic: events at equal timestamps fire in
// scheduling order.

#ifndef MGS_SIM_SIMULATOR_H_
#define MGS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/status.h"

namespace mgs::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  double Now() const { return now_; }

  /// Schedules `fn` to run at `Now() + delay_seconds`. Negative delays are
  /// clamped to zero.
  EventId Schedule(double delay_seconds, std::function<void()> fn);

  /// Schedules `fn` at an absolute virtual time (>= Now()).
  EventId ScheduleAt(double time_seconds, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already fired or never existed.
  void Cancel(EventId id);

  /// Runs events until the queue is empty. Returns the final virtual time.
  double Run();

  /// Runs events until the queue is empty or `deadline` is reached.
  double RunUntil(double deadline);

  /// Number of events processed so far (for tests/diagnostics).
  std::uint64_t events_processed() const { return events_processed_; }

  /// True if no events are pending.
  bool Idle() const { return live_events_ == 0; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t events_processed_ = 0;
  std::size_t live_events_ = 0;  // queued minus cancelled
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;  // sorted-insert not needed; small
  bool IsCancelled(EventId id);
};

}  // namespace mgs::sim

#endif  // MGS_SIM_SIMULATOR_H_
