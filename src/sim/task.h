// Minimal C++20 coroutine support for simulated host logic.
//
// The multi-GPU sorting algorithms are written as coroutines that read like
// the CUDA host code they reproduce:
//
//   sim::Task<void> SortChunk(vgpu::Device& dev, ...) {
//     co_await dev.stream(0).MemcpyAsync(...);   // suspends for sim-time
//     co_await dev.stream(0).Launch(...);
//   }
//
// `Task<T>` is lazy: it starts when awaited. `Spawn()` starts a task eagerly
// and returns a `Joiner` that can be awaited later — this is how concurrent
// per-GPU pipelines are expressed. `WhenAll` composes both.

#ifndef MGS_SIM_TASK_H_
#define MGS_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace mgs::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

/// A lazily-started coroutine producing T. Move-only; the handle is
/// destroyed with the Task (after completion, the frame is still owned by
/// the Task object).
template <typename T = void>
class Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  /// when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        if (handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(*handle.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }

  /// Releases ownership of the coroutine frame (used by Spawn).
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {
template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}
inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}
}  // namespace detail

/// One-shot completion event. Coroutines `co_await trigger.Wait()`; a later
/// `Fire()` resumes all waiters (in registration order). Await after Fire
/// completes immediately.
class Trigger {
 public:
  bool fired() const { return fired_; }

  void Fire() {
    if (fired_) return;
    fired_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) h.resume();
  }

  auto Wait() {
    struct Awaiter {
      Trigger* trigger;
      bool await_ready() const noexcept { return trigger->fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        trigger->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Awaitable that suspends the coroutine for `delay` simulated seconds.
struct Delay {
  Simulator& simulator;
  double delay;

  bool await_ready() const noexcept { return delay <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    simulator.Schedule(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// Handle to an eagerly-started task; awaitable; shared so multiple parties
/// may join.
class Joiner {
 public:
  auto Wait() { return done_.Wait(); }
  bool done() const { return done_.fired(); }

  auto operator co_await() { return done_.Wait(); }

 private:
  friend std::shared_ptr<Joiner> Spawn(Task<void> task);
  Trigger done_;
};

using JoinerPtr = std::shared_ptr<Joiner>;

/// Starts `task` immediately (runs until its first suspension point) and
/// returns a joiner that fires when it completes. The coroutine frame is
/// kept alive by the runner coroutine. Exceptions escaping the task
/// terminate the process (simulated host logic reports errors via Status).
JoinerPtr Spawn(Task<void> task);

/// Awaits every joiner in order; completes when all have completed.
Task<void> WhenAll(std::vector<JoinerPtr> joiners);

/// Spawns all tasks concurrently, then awaits them all.
Task<void> WhenAll(std::vector<Task<void>> tasks);

/// Convenience used at the edges: spawn `task`, run the simulator to
/// completion, and require that the task finished (no deadlock).
Status RunToCompletion(Simulator* simulator, Task<void> task);

}  // namespace mgs::sim

#endif  // MGS_SIM_TASK_H_
