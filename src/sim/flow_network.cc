#include "sim/flow_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mgs::sim {

namespace {
// Completion epsilon: flows within this many bytes of done are done
// (guards against floating-point drift never quite reaching zero).
constexpr double kByteEpsilon = 1e-3;
}  // namespace

ResourceId FlowNetwork::AddResource(std::string name,
                                    double capacity_bytes_per_sec) {
  resources_.push_back(Resource{std::move(name), capacity_bytes_per_sec});
  return static_cast<ResourceId>(resources_.size() - 1);
}

FlowId FlowNetwork::StartFlow(double bytes, std::vector<PathHop> path,
                              FlowCallback on_complete, double lead_latency) {
  const FlowId id = next_flow_id_++;
  if (bytes <= kByteEpsilon) {
    // Zero-byte transfers complete after the wire latency but still
    // asynchronously, preserving event ordering for callers.
    simulator_->Schedule(lead_latency, [on_complete = std::move(on_complete)] {
      on_complete(Status::OK());
    });
    return id;
  }
  if (lead_latency > 0) {
    // The first byte arrives after the latency; bandwidth is contended
    // only once bytes are in flight.
    simulator_->Schedule(
        lead_latency, [this, bytes, path = std::move(path),
                       on_complete = std::move(on_complete)]() mutable {
          StartFlow(bytes, std::move(path), std::move(on_complete), 0.0);
        });
    return id;
  }
  AdvanceProgress();
  flows_.push_back(Flow{id, bytes, std::move(path), std::move(on_complete)});
  RecomputeRates();
  ScheduleNextCompletion();
  return id;
}

FlowId FlowNetwork::StartFlow(double bytes, std::vector<PathHop> path,
                              std::function<void()> on_complete,
                              double lead_latency) {
  return StartFlow(
      bytes, std::move(path),
      FlowCallback([on_complete = std::move(on_complete)](const Status&) {
        on_complete();
      }),
      lead_latency);
}

Task<Status> FlowNetwork::Transfer(double bytes, std::vector<PathHop> path,
                                   double lead_latency) {
  Trigger done;
  Status result;
  StartFlow(
      bytes, std::move(path),
      FlowCallback([&done, &result](const Status& st) {
        result = st;
        done.Fire();
      }),
      lead_latency);
  co_await done.Wait();
  co_return result;
}

void FlowNetwork::SetResourceCapacity(ResourceId id,
                                      double capacity_bytes_per_sec) {
  auto& resource = resources_[static_cast<std::size_t>(id)];
  if (resource.capacity == capacity_bytes_per_sec) return;
  // Settle in-flight progress at the old rates before the capacity change
  // takes effect, then re-run progressive filling under the new capacity.
  AdvanceProgress();
  resource.capacity = capacity_bytes_per_sec;
  RecomputeRates();
  ScheduleNextCompletion();
}

int FlowNetwork::AbortFlowsCrossing(ResourceId resource, const Status& status) {
  AdvanceProgress();
  std::vector<FlowCallback> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    const bool crosses =
        std::any_of(it->path.begin(), it->path.end(), [&](const PathHop& hop) {
          return hop.resource == resource;
        });
    if (crosses) {
      callbacks.push_back(std::move(it->on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  if (callbacks.empty()) return 0;
  RecomputeRates();
  ScheduleNextCompletion();
  // Fire last: callbacks may start new flows and re-enter the network.
  for (auto& cb : callbacks) cb(status);
  return static_cast<int>(callbacks.size());
}

double FlowNetwork::FlowRate(FlowId id) const {
  for (const auto& f : flows_) {
    if (f.id == id) return f.rate;
  }
  return 0.0;
}

std::vector<std::pair<FlowId, double>> FlowNetwork::CurrentRates() const {
  std::vector<std::pair<FlowId, double>> out;
  out.reserve(flows_.size());
  for (const auto& f : flows_) out.emplace_back(f.id, f.rate);
  return out;
}

void FlowNetwork::AdvanceProgress() {
  const double now = simulator_->Now();
  const double dt = now - last_update_time_;
  last_update_time_ = now;
  if (dt <= 0) return;
  // Rates are constant over [last_update, now] (they only change at flow
  // start/finish, which both advance progress first), so the interval's
  // per-resource load is simply the sum of rate * weight across its flows.
  std::vector<double> load(resources_.size(), 0.0);
  for (auto& f : flows_) {
    const double delivered =
        std::min(f.remaining_bytes, f.rate * dt);
    f.remaining_bytes -= delivered;
    for (const auto& hop : f.path) {
      resources_[static_cast<std::size_t>(hop.resource)].traffic +=
          delivered * hop.weight;
      load[static_cast<std::size_t>(hop.resource)] += f.rate * hop.weight;
    }
  }
  constexpr double kSaturationFraction = 0.999;
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    if (load[r] <= 0) continue;
    resources_[r].busy_seconds += dt;
    if (resources_[r].capacity > 0 &&
        load[r] >= kSaturationFraction * resources_[r].capacity) {
      resources_[r].saturated_seconds += dt;
    }
  }
}

double FlowNetwork::ResourceTraffic(ResourceId id) const {
  return resources_[static_cast<std::size_t>(id)].traffic;
}

void FlowNetwork::ResetTraffic() {
  for (auto& r : resources_) {
    r.traffic = 0;
    r.busy_seconds = 0;
    r.saturated_seconds = 0;
  }
}

double FlowNetwork::ResourceBusySeconds(ResourceId id) const {
  return resources_[static_cast<std::size_t>(id)].busy_seconds;
}

double FlowNetwork::ResourceSaturatedSeconds(ResourceId id) const {
  return resources_[static_cast<std::size_t>(id)].saturated_seconds;
}

std::pair<std::string, double> FlowNetwork::BusiestResource(
    double since_seconds) const {
  const double elapsed = simulator_->Now() - since_seconds;
  if (elapsed <= 0) return {"", 0.0};
  std::pair<std::string, double> best{"", 0.0};
  for (const auto& r : resources_) {
    if (r.capacity <= 0) continue;
    const double utilization = r.traffic / (r.capacity * elapsed);
    if (utilization > best.second) best = {r.name, utilization};
  }
  return best;
}

std::vector<std::pair<std::string, double>> FlowNetwork::Utilizations(
    double since_seconds) const {
  const double elapsed = simulator_->Now() - since_seconds;
  std::vector<std::pair<std::string, double>> out;
  if (elapsed <= 0) return out;
  out.reserve(resources_.size());
  for (const auto& r : resources_) {
    const double utilization =
        r.capacity > 0 ? r.traffic / (r.capacity * elapsed) : 0.0;
    out.emplace_back(r.name, utilization);
  }
  return out;
}

void FlowNetwork::RecomputeRates() {
  // Weighted max-min fair allocation by progressive filling.
  const std::size_t n = flows_.size();
  if (n == 0) return;
  std::vector<double> remaining_cap(resources_.size());
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    remaining_cap[r] = resources_[r].capacity;
  }
  std::vector<bool> frozen(n, false);
  std::size_t num_frozen = 0;

  while (num_frozen < n) {
    // Fair share on each resource crossed by at least one unfrozen flow.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      double denom = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        for (const auto& hop : flows_[i].path) {
          if (static_cast<std::size_t>(hop.resource) == r) {
            denom += hop.weight;
          }
        }
      }
      if (denom > 0) {
        bottleneck_share =
            std::min(bottleneck_share, std::max(0.0, remaining_cap[r]) / denom);
      }
    }
    if (!std::isfinite(bottleneck_share)) {
      // Remaining flows cross no capacity resource: unconstrained. This is a
      // modeling error; give them a huge rate so they complete immediately.
      for (std::size_t i = 0; i < n; ++i) {
        if (!frozen[i]) {
          flows_[i].rate = 1e18;
          frozen[i] = true;
          ++num_frozen;
        }
      }
      break;
    }

    // Find the bottleneck resource(s): those whose share equals the minimum,
    // and freeze every unfrozen flow crossing one of them at that share.
    constexpr double kRelTol = 1.0 + 1e-12;
    std::vector<bool> is_bottleneck(resources_.size(), false);
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      double denom = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        for (const auto& hop : flows_[i].path) {
          if (static_cast<std::size_t>(hop.resource) == r) {
            denom += hop.weight;
          }
        }
      }
      if (denom > 0 &&
          std::max(0.0, remaining_cap[r]) / denom <= bottleneck_share * kRelTol) {
        is_bottleneck[r] = true;
      }
    }

    bool froze_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      bool on_bottleneck = false;
      for (const auto& hop : flows_[i].path) {
        if (is_bottleneck[static_cast<std::size_t>(hop.resource)]) {
          on_bottleneck = true;
          break;
        }
      }
      if (!on_bottleneck) continue;
      flows_[i].rate = bottleneck_share;
      frozen[i] = true;
      ++num_frozen;
      froze_any = true;
      for (const auto& hop : flows_[i].path) {
        remaining_cap[static_cast<std::size_t>(hop.resource)] -=
            bottleneck_share * hop.weight;
      }
    }
    // Progress guarantee: the bottleneck always freezes at least one flow.
    assert(froze_any);
    if (!froze_any) break;  // defensive in release builds
  }
}

void FlowNetwork::ScheduleNextCompletion() {
  ++generation_;
  if (flows_.empty()) return;
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& f : flows_) {
    if (f.rate > 0) {
      earliest = std::min(earliest, f.remaining_bytes / f.rate);
    }
  }
  if (!std::isfinite(earliest)) return;  // all rates zero: stalled network
  const std::uint64_t gen = generation_;
  simulator_->Schedule(earliest, [this, gen] { OnCompletionEvent(gen); });
  completion_scheduled_ = true;
}

void FlowNetwork::OnCompletionEvent(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer allocation
  AdvanceProgress();
  // A flow is also done when its residual bytes cannot hold simulated time
  // back by one representable tick: with time-to-completion below the ulp of
  // Now(), the completion event would re-fire at the same instant forever
  // (AdvanceProgress sees dt == 0 and delivers nothing).
  const double now = simulator_->Now();
  const double time_ulp =
      std::nextafter(now, std::numeric_limits<double>::infinity()) - now;
  // Collect finished flows, remove them, then fire callbacks (callbacks may
  // start new flows and re-enter the network).
  std::vector<FlowCallback> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining_bytes <= kByteEpsilon ||
        (it->rate > 0 && it->remaining_bytes <= it->rate * time_ulp)) {
      callbacks.push_back(std::move(it->on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  RecomputeRates();
  ScheduleNextCompletion();
  for (auto& cb : callbacks) cb(Status::OK());
}

}  // namespace mgs::sim
