#include "sim/flow_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mgs::sim {

namespace {
// Completion epsilon: flows within this many bytes of done are done
// (guards against floating-point drift never quite reaching zero).
constexpr double kByteEpsilon = 1e-3;
// Bottleneck tie tolerance: resources whose fair share is within one part
// in 1e12 of the round minimum freeze together.
constexpr double kRelTol = 1.0 + 1e-12;
// Rate given to flows that cross no capacity resource (a modeling error):
// effectively infinite, so they complete at their start instant.
constexpr double kUnconstrainedRate = 1e18;
}  // namespace

ResourceId FlowNetwork::AddResource(std::string name,
                                    double capacity_bytes_per_sec) {
  Resource resource;
  resource.name = std::move(name);
  resource.capacity = capacity_bytes_per_sec;
  resources_.push_back(std::move(resource));
  load_scratch_.push_back(0.0);
  return static_cast<ResourceId>(resources_.size() - 1);
}

FlowId FlowNetwork::StartFlow(double bytes, std::vector<PathHop> path,
                              FlowCallback on_complete, double lead_latency) {
  const FlowId id = next_flow_id_++;
  if (lead_latency > 0) {
    // The first byte arrives after the latency; bandwidth is contended only
    // once bytes are in flight. The flow keeps its id across the deferral
    // and is abortable while it waits (see AbortFlowsCrossing).
    pending_.emplace(
        id, PendingFlow{bytes, std::move(path), std::move(on_complete)});
    simulator_->Schedule(lead_latency, [this, id] { ActivateDeferred(id); });
    return id;
  }
  Activate(id, bytes, std::move(path), std::move(on_complete));
  return id;
}

FlowId FlowNetwork::StartFlow(double bytes, std::vector<PathHop> path,
                              std::function<void()> on_complete,
                              double lead_latency) {
  return StartFlow(
      bytes, std::move(path),
      FlowCallback([on_complete = std::move(on_complete)](const Status&) {
        on_complete();
      }),
      lead_latency);
}

Task<Status> FlowNetwork::Transfer(double bytes, std::vector<PathHop> path,
                                   double lead_latency) {
  Trigger done;
  Status result;
  StartFlow(
      bytes, std::move(path),
      FlowCallback([&done, &result](const Status& st) {
        result = st;
        done.Fire();
      }),
      lead_latency);
  co_await done.Wait();
  co_return result;
}

void FlowNetwork::ActivateDeferred(FlowId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // aborted during its latency window
  PendingFlow pending = std::move(it->second);
  pending_.erase(it);
  Activate(id, pending.bytes, std::move(pending.path),
           std::move(pending.on_complete));
}

void FlowNetwork::Activate(FlowId id, double bytes, std::vector<PathHop> path,
                           FlowCallback on_complete) {
  AdvanceProgress();
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
    flows_cold_.emplace_back();
  }
  Flow& f = flows_[slot];
  FlowCold& cold = flows_cold_[slot];
  f.id = id;
  f.remaining_bytes = std::max(bytes, 0.0);
  cold.path = std::move(path);
  cold.on_complete = std::move(on_complete);
  f.rate = 0.0;
  f.order_pos = static_cast<std::uint32_t>(order_.size());
  f.in_heap = false;
  order_.push_back(slot);
  flow_index_.emplace(id, slot);
  for (const auto& hop : cold.path) {
    Resource& res = resources_[static_cast<std::size_t>(hop.resource)];
    res.members.push_back(Member{slot, hop.weight});
    // Appending on the right extends the cached sum exactly as a fresh
    // left-to-right rescan would, keeping the denominator bitwise faithful.
    res.live_denom += hop.weight;
    if (!res.in_active_list) {
      res.in_active_list = true;
      active_resources_.push_back(hop.resource);
    }
  }
  RecomputeRates();
  ScheduleNextCompletion();
}

void FlowNetwork::SetResourceCapacity(ResourceId id,
                                      double capacity_bytes_per_sec) {
  auto& resource = resources_[static_cast<std::size_t>(id)];
  if (resource.capacity == capacity_bytes_per_sec) return;
  // Settle in-flight progress at the old rates before the capacity change
  // takes effect, then re-run progressive filling under the new capacity.
  AdvanceProgress();
  resource.capacity = capacity_bytes_per_sec;
  RecomputeRates();
  ScheduleNextCompletion();
}

int FlowNetwork::AbortFlowsCrossing(ResourceId resource, const Status& status) {
  AdvanceProgress();
  // In-flight victims come straight off the resource's adjacency list (no
  // full flow scan); dedupe via the scratch mark and tear them down in
  // activation order, like completions.
  std::vector<std::uint32_t> victims;
  for (const Member& m :
       resources_[static_cast<std::size_t>(resource)].members) {
    Flow& f = flows_[m.slot];
    if (!f.marked) {
      f.marked = true;
      victims.push_back(m.slot);
    }
  }
  std::sort(victims.begin(), victims.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return flows_[a].order_pos < flows_[b].order_pos;
            });
  std::vector<FlowCallback> callbacks;
  callbacks.reserve(victims.size());
  for (std::uint32_t slot : victims) {
    flows_[slot].marked = false;
    callbacks.push_back(std::move(flows_cold_[slot].on_complete));
  }
  if (!victims.empty()) {
    EraseFlows(victims);
    RecomputeRates();
    ScheduleNextCompletion();
  }
  // Flows still inside their lead-latency window cross the resource just as
  // surely — a dead link must not let them slip through and complete OK.
  std::vector<FlowId> pending_victims;
  for (const auto& [id, pending] : pending_) {
    const bool crosses = std::any_of(
        pending.path.begin(), pending.path.end(),
        [&](const PathHop& hop) { return hop.resource == resource; });
    if (crosses) pending_victims.push_back(id);
  }
  std::sort(pending_victims.begin(), pending_victims.end());
  for (FlowId id : pending_victims) {
    auto it = pending_.find(id);
    callbacks.push_back(std::move(it->second.on_complete));
    pending_.erase(it);
  }
  // Fire last: callbacks may start new flows and re-enter the network.
  for (auto& cb : callbacks) cb(status);
  return static_cast<int>(callbacks.size());
}

double FlowNetwork::FlowRate(FlowId id) const {
  auto it = flow_index_.find(id);
  if (it == flow_index_.end()) return 0.0;
  return flows_[it->second].rate;
}

std::vector<std::pair<FlowId, double>> FlowNetwork::CurrentRates() const {
  std::vector<std::pair<FlowId, double>> out;
  out.reserve(order_.size());
  for (std::uint32_t slot : order_) {
    out.emplace_back(flows_[slot].id, flows_[slot].rate);
  }
  return out;
}

void FlowNetwork::AdvanceProgress() {
  const double now = simulator_->Now();
  const double dt = now - last_update_time_;
  last_update_time_ = now;
  if (dt <= 0) return;
  // Rates are constant over [last_update, now] (they only change at flow
  // start/finish, which both advance progress first), so per-resource load
  // is the cached allocated_load built by the last settling pass — no
  // per-hop walk needed. Load is billed at the *delivered* rate: when a
  // flow's remaining bytes run out mid-interval (e.g. a same-instant
  // capacity change settles past its finish), the clamped average — not the
  // full allocated rate — counts toward traffic, busy, and saturation time,
  // so occupancy attribution cannot exceed what was actually carried. Only
  // such exhausted flows pay a per-hop correction walk.
  touched_scratch_.clear();  // resources owed a clamp correction
  for (std::uint32_t slot : order_) {
    Flow& f = flows_[slot];
    const double full = f.rate * dt;
    if (full <= 0) continue;  // parked (zero rate)
    if (f.remaining_bytes >= full) {
      f.remaining_bytes -= full;
      continue;
    }
    const double delivered = f.remaining_bytes;
    f.remaining_bytes = 0;
    const double shortfall_rate = f.rate - delivered / dt;
    for (const auto& hop : flows_cold_[slot].path) {
      const auto r = static_cast<std::size_t>(hop.resource);
      if (load_scratch_[r] == 0) touched_scratch_.push_back(hop.resource);
      load_scratch_[r] += shortfall_rate * hop.weight;
    }
  }
  constexpr double kSaturationFraction = 0.999;
  for (ResourceId id : active_resources_) {
    const auto r = static_cast<std::size_t>(id);
    Resource& res = resources_[r];
    double load = res.allocated_load;
    if (load_scratch_[r] != 0) {
      load -= load_scratch_[r];
      load_scratch_[r] = 0;
    }
    if (load <= 0) continue;
    res.traffic += load * dt;
    res.busy_seconds += dt;
    if (res.capacity > 0 && load >= kSaturationFraction * res.capacity) {
      res.saturated_seconds += dt;
    }
  }
}

double FlowNetwork::ResourceTraffic(ResourceId id) const {
  return resources_[static_cast<std::size_t>(id)].traffic;
}

void FlowNetwork::ResetTraffic() {
  for (auto& r : resources_) {
    r.traffic = 0;
    r.busy_seconds = 0;
    r.saturated_seconds = 0;
  }
}

double FlowNetwork::ResourceBusySeconds(ResourceId id) const {
  return resources_[static_cast<std::size_t>(id)].busy_seconds;
}

double FlowNetwork::ResourceSaturatedSeconds(ResourceId id) const {
  return resources_[static_cast<std::size_t>(id)].saturated_seconds;
}

std::pair<std::string, double> FlowNetwork::BusiestResource(
    double since_seconds) const {
  const double elapsed = simulator_->Now() - since_seconds;
  if (elapsed <= 0) return {"", 0.0};
  std::pair<std::string, double> best{"", 0.0};
  for (const auto& r : resources_) {
    if (r.capacity <= 0) continue;
    const double utilization = r.traffic / (r.capacity * elapsed);
    if (utilization > best.second) best = {r.name, utilization};
  }
  return best;
}

std::vector<std::pair<std::string, double>> FlowNetwork::Utilizations(
    double since_seconds) const {
  const double elapsed = simulator_->Now() - since_seconds;
  std::vector<std::pair<std::string, double>> out;
  if (elapsed <= 0) return out;
  out.reserve(resources_.size());
  for (const auto& r : resources_) {
    const double utilization =
        r.capacity > 0 ? r.traffic / (r.capacity * elapsed) : 0.0;
    out.emplace_back(r.name, utilization);
  }
  return out;
}

void FlowNetwork::RecomputeRates() {
  repush_scratch_.clear();
  // Every settling pass rebuilds the per-resource allocated load from the
  // freeze loop; zero it first (covers resources that just lost their last
  // member and are about to be compacted out of the active list).
  for (ResourceId id : active_resources_) {
    resources_[static_cast<std::size_t>(id)].allocated_load = 0;
  }
  if (use_reference_allocator_) {
    RecomputeRatesReference();
  } else {
    RecomputeRatesIncremental();
  }
  RefreshHeap();
}

void FlowNetwork::AssignRate(Flow& flow, double rate) {
  if (rate == flow.rate && flow.in_heap) return;  // projection still valid
  flow.rate = rate;
  ++flow.heap_seq;  // invalidate any previous heap entry
  flow.in_heap = false;
  repush_scratch_.push_back(
      static_cast<std::uint32_t>(&flow - flows_.data()));
}

void FlowNetwork::RefreshHeap() {
  // Under heavy contention a resettling changes almost every rate; one
  // push_heap per flow (plus the stale entries left behind) would swamp the
  // allocator's own savings. Rebuild wholesale instead, which also compacts
  // lazily-deleted entries so the heap stays O(live flows).
  const bool rebuild =
      2 * repush_scratch_.size() >= order_.size() ||
      heap_.size() > 2 * order_.size() + 64;
  if (rebuild) {
    heap_.clear();
    const double now = simulator_->Now();
    for (std::uint32_t slot : order_) {
      Flow& f = flows_[slot];
      if (f.rate <= 0) continue;
      heap_.push_back(
          HeapEntry{now + f.remaining_bytes / f.rate, f.id, f.heap_seq});
      f.in_heap = true;
    }
    // Only the front matters until the next rebuild (scheduling and top
    // validation both look at heap_.front() alone): swap the minimum to the
    // front and defer full heapification until a sparse push or a pop
    // actually needs the invariant.
    if (heap_.size() > 1) {
      std::size_t min_i = 0;
      for (std::size_t i = 1; i < heap_.size(); ++i) {
        if (heap_[i].finish < heap_[min_i].finish) min_i = i;
      }
      std::swap(heap_[0], heap_[min_i]);
    }
    heap_ordered_ = heap_.size() <= 1;
    return;
  }
  for (std::uint32_t slot : repush_scratch_) {
    Flow& f = flows_[slot];
    if (f.rate > 0 && !f.in_heap) PushHeapEntry(f);
  }
}

void FlowNetwork::PushHeapEntry(Flow& flow) {
  EnsureHeapOrdered();
  // Projected absolute finish: AdvanceProgress ran at the top of the
  // current reallocation, so remaining_bytes is fresh as of Now().
  const double finish =
      simulator_->Now() + flow.remaining_bytes / flow.rate;
  heap_.push_back(HeapEntry{finish, flow.id, flow.heap_seq});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return a.finish > b.finish;
                 });
  flow.in_heap = true;
}

void FlowNetwork::EnsureHeapOrdered() {
  if (heap_ordered_) return;
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return a.finish > b.finish;
                 });
  heap_ordered_ = true;
}

void FlowNetwork::CleanHeapTop() {
  auto later = [](const HeapEntry& a, const HeapEntry& b) {
    return a.finish > b.finish;
  };
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    auto it = flow_index_.find(top.flow);
    if (it != flow_index_.end() && flows_[it->second].heap_seq == top.seq) {
      return;  // live entry
    }
    if (!heap_ordered_) {
      // Popping needs the full invariant; heapifying may surface a
      // different (possibly live) front, so re-examine it.
      EnsureHeapOrdered();
      continue;
    }
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

// The incremental weighted max-min allocator. Identical allocation to the
// reference implementation below (same progressive-filling rounds, same
// freeze order, same floating-point operation order for every denominator,
// share, and capacity update — enforced bitwise by the randomized A/B test)
// but scans only resources crossed by live flows, reuses cached unfrozen
// denominators between rounds, and re-sums a denominator fresh only when
// that resource's unfrozen membership actually changed.
void FlowNetwork::RecomputeRatesIncremental() {
  const std::size_t n = order_.size();
  if (n == 0) return;
  // A flow is frozen this settling iff its freeze_epoch matches; bumping
  // the epoch unfreezes everything without an O(flows) reset pass.
  const std::uint64_t epoch = ++settle_epoch_;
  // Compact the active-resource list (dropping resources whose last member
  // left) and seed the round state from the live cached denominators.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < active_resources_.size(); ++i) {
    const ResourceId id = active_resources_[i];
    Resource& res = resources_[static_cast<std::size_t>(id)];
    if (res.members.empty()) {
      res.in_active_list = false;
      continue;
    }
    active_resources_[kept++] = id;
    res.round_denom = res.live_denom;
    res.round_unfrozen = static_cast<std::int32_t>(res.members.size());
    res.remaining_cap = res.capacity;
    res.denom_dirty = false;
  }
  active_resources_.resize(kept);

  std::size_t num_frozen = 0;
  std::uint32_t round = 0;
  while (num_frozen < n) {
    ++round;
    // Fair share on each resource still crossed by an unfrozen flow.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (ResourceId id : active_resources_) {
      const Resource& res = resources_[static_cast<std::size_t>(id)];
      if (res.round_unfrozen <= 0 || res.round_denom <= 0) continue;
      bottleneck_share =
          std::min(bottleneck_share,
                   std::max(0.0, res.remaining_cap) / res.round_denom);
    }
    if (!std::isfinite(bottleneck_share)) {
      // Remaining flows cross no capacity resource: unconstrained. This is
      // a modeling error; give them a huge rate so they complete
      // immediately.
      for (std::uint32_t slot : order_) {
        Flow& f = flows_[slot];
        if (f.freeze_epoch != epoch) {
          AssignRate(f, kUnconstrainedRate);
          f.freeze_epoch = epoch;
          ++num_frozen;
        }
      }
      break;
    }

    // Collect every unfrozen flow crossing a bottleneck resource (share
    // within kRelTol of the minimum), then freeze them in activation order
    // so every capacity subtraction happens in the reference order.
    candidate_scratch_.clear();
    for (ResourceId id : active_resources_) {
      Resource& res = resources_[static_cast<std::size_t>(id)];
      if (res.round_unfrozen <= 0 || res.round_denom <= 0) continue;
      if (std::max(0.0, res.remaining_cap) / res.round_denom <=
          bottleneck_share * kRelTol) {
        for (const Member& m : res.members) {
          Flow& f = flows_[m.slot];
          if (f.freeze_epoch != epoch && !f.marked) {
            f.marked = true;
            candidate_scratch_.push_back(m.slot);
          }
        }
      }
    }
    const bool froze_any = !candidate_scratch_.empty();
    touched_scratch_.clear();
    if (8 * candidate_scratch_.size() < order_.size()) {
      // Sparse round: sort the few candidates into activation order and
      // apply each one's per-hop capacity updates directly off its path.
      std::sort(candidate_scratch_.begin(), candidate_scratch_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return flows_[a].order_pos < flows_[b].order_pos;
                });
      for (std::uint32_t slot : candidate_scratch_) {
        Flow& f = flows_[slot];
        f.marked = false;
        AssignRate(f, bottleneck_share);
        f.freeze_epoch = epoch;
        f.freeze_round = round;
        ++num_frozen;
        for (const auto& hop : flows_cold_[slot].path) {
          Resource& res = resources_[static_cast<std::size_t>(hop.resource)];
          const double alloc = bottleneck_share * hop.weight;
          res.remaining_cap -= alloc;
          res.allocated_load += alloc;
          res.round_unfrozen -= 1;
          if (!res.denom_dirty) {
            res.denom_dirty = true;
            touched_scratch_.push_back(hop.resource);
          }
        }
      }
    } else {
      // Dense round (most flows freezing): one pass over the activation
      // order stamps the rates, then one contiguous pass over each active
      // resource's member list applies the capacity updates. Per resource
      // the freezing members surface in activation order — the exact
      // floating-point update sequence of the per-flow walk — without
      // chasing every flow's separately-allocated path.
      for (std::uint32_t slot : order_) {
        Flow& f = flows_[slot];
        if (!f.marked) continue;
        f.marked = false;
        AssignRate(f, bottleneck_share);
        f.freeze_epoch = epoch;
        f.freeze_round = round;
        ++num_frozen;
      }
      for (ResourceId id : active_resources_) {
        Resource& res = resources_[static_cast<std::size_t>(id)];
        if (res.round_unfrozen <= 0) continue;  // nothing left to freeze
        double cap = res.remaining_cap;
        double load = res.allocated_load;
        std::int32_t unfrozen = res.round_unfrozen;
        for (const Member& m : res.members) {
          const Flow& f = flows_[m.slot];
          if (f.freeze_epoch == epoch && f.freeze_round == round) {
            const double alloc = bottleneck_share * m.weight;
            cap -= alloc;
            load += alloc;
            unfrozen -= 1;
          }
        }
        if (unfrozen != res.round_unfrozen) {
          res.remaining_cap = cap;
          res.allocated_load = load;
          res.round_unfrozen = unfrozen;
          if (!res.denom_dirty) {
            res.denom_dirty = true;
            touched_scratch_.push_back(id);
          }
        }
      }
    }
    // Fresh left-to-right resummation for every resource whose unfrozen
    // membership changed; untouched resources keep their cached value,
    // which is bitwise what a rescan would produce. A fully frozen resource
    // sums nothing — skip the member walk.
    for (ResourceId id : touched_scratch_) {
      Resource& res = resources_[static_cast<std::size_t>(id)];
      res.denom_dirty = false;
      if (res.round_unfrozen <= 0) {
        res.round_denom = 0;
        continue;
      }
      double denom = 0;
      for (const Member& m : res.members) {
        if (flows_[m.slot].freeze_epoch != epoch) denom += m.weight;
      }
      res.round_denom = denom;
    }
    // Progress guarantee: the bottleneck always freezes at least one flow.
    assert(froze_any);
    if (!froze_any) break;  // defensive in release builds
  }
}

// Reference progressive-filling implementation: full rescan of every
// resource x flow x hop per round. Kept verbatim (modulo the slot
// indirection) as the test-only A/B oracle for the incremental allocator.
void FlowNetwork::RecomputeRatesReference() {
  const std::size_t n = order_.size();
  if (n == 0) return;
  std::vector<double> remaining_cap(resources_.size());
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    remaining_cap[r] = resources_[r].capacity;
  }
  std::vector<bool> frozen(n, false);
  std::size_t num_frozen = 0;

  while (num_frozen < n) {
    // Fair share on each resource crossed by at least one unfrozen flow.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      double denom = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        for (const auto& hop : flows_cold_[order_[i]].path) {
          if (static_cast<std::size_t>(hop.resource) == r) {
            denom += hop.weight;
          }
        }
      }
      if (denom > 0) {
        bottleneck_share =
            std::min(bottleneck_share, std::max(0.0, remaining_cap[r]) / denom);
      }
    }
    if (!std::isfinite(bottleneck_share)) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!frozen[i]) {
          AssignRate(flows_[order_[i]], kUnconstrainedRate);
          frozen[i] = true;
          ++num_frozen;
        }
      }
      break;
    }

    // Find the bottleneck resource(s): those whose share equals the minimum,
    // and freeze every unfrozen flow crossing one of them at that share.
    std::vector<bool> is_bottleneck(resources_.size(), false);
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      double denom = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        for (const auto& hop : flows_cold_[order_[i]].path) {
          if (static_cast<std::size_t>(hop.resource) == r) {
            denom += hop.weight;
          }
        }
      }
      if (denom > 0 &&
          std::max(0.0, remaining_cap[r]) / denom <=
              bottleneck_share * kRelTol) {
        is_bottleneck[r] = true;
      }
    }

    bool froze_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      Flow& f = flows_[order_[i]];
      bool on_bottleneck = false;
      for (const auto& hop : flows_cold_[order_[i]].path) {
        if (is_bottleneck[static_cast<std::size_t>(hop.resource)]) {
          on_bottleneck = true;
          break;
        }
      }
      if (!on_bottleneck) continue;
      AssignRate(f, bottleneck_share);
      frozen[i] = true;
      ++num_frozen;
      froze_any = true;
      for (const auto& hop : flows_cold_[order_[i]].path) {
        const double alloc = bottleneck_share * hop.weight;
        remaining_cap[static_cast<std::size_t>(hop.resource)] -= alloc;
        resources_[static_cast<std::size_t>(hop.resource)].allocated_load +=
            alloc;
      }
    }
    assert(froze_any);
    if (!froze_any) break;  // defensive in release builds
  }
}

void FlowNetwork::EraseFlows(const std::vector<std::uint32_t>& slots) {
  touched_scratch_.clear();
  for (std::uint32_t slot : slots) {
    Flow& f = flows_[slot];
    f.erased = true;
    flow_index_.erase(f.id);
    for (const auto& hop : flows_cold_[slot].path) {
      Resource& res = resources_[static_cast<std::size_t>(hop.resource)];
      if (!res.denom_dirty) {
        res.denom_dirty = true;
        touched_scratch_.push_back(hop.resource);
      }
    }
  }
  for (ResourceId id : touched_scratch_) {
    Resource& res = resources_[static_cast<std::size_t>(id)];
    res.denom_dirty = false;
    // Single fused pass: compact out erased members and resum the surviving
    // weights left-to-right, keeping the cached denominator bitwise equal
    // to a from-scratch rescan.
    double denom = 0;
    std::size_t kept = 0;
    for (const Member& m : res.members) {
      if (flows_[m.slot].erased) continue;
      res.members[kept++] = m;
      denom += m.weight;
    }
    res.members.resize(kept);
    res.live_denom = denom;
    // Empty resources are compacted out of active_resources_ lazily, at the
    // next incremental recompute.
  }
  {
    std::size_t kept = 0;
    for (std::uint32_t slot : order_) {
      if (flows_[slot].erased) continue;
      flows_[slot].order_pos = static_cast<std::uint32_t>(kept);
      order_[kept++] = slot;
    }
    order_.resize(kept);
  }
  for (std::uint32_t slot : slots) {
    Flow& f = flows_[slot];
    f.erased = false;
    f.in_heap = false;
    f.rate = 0.0;
    flows_cold_[slot].path.clear();
    flows_cold_[slot].on_complete = nullptr;
    free_slots_.push_back(slot);
  }
}

void FlowNetwork::ScheduleNextCompletion() {
  ++generation_;  // supersede any outstanding completion event
  CleanHeapTop();
  if (heap_.empty()) return;  // no flow with a positive rate: stalled
  const std::uint64_t gen = generation_;
  // ScheduleAt clamps a projection that drifted below Now() to Now().
  simulator_->ScheduleAt(heap_.front().finish,
                         [this, gen] { OnCompletionEvent(gen); });
}

void FlowNetwork::OnCompletionEvent(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer allocation
  AdvanceProgress();
  // A flow is also done when its residual bytes cannot hold simulated time
  // back by one representable tick: with time-to-completion below the ulp of
  // Now(), the completion event would re-fire at the same instant forever
  // (AdvanceProgress sees dt == 0 and delivers nothing). Both doneness
  // tests require a positive rate: a flow parked on a zero-capacity
  // resource (even a zero-byte one) must not complete across a dead link.
  const double now = simulator_->Now();
  const double time_ulp =
      std::nextafter(now, std::numeric_limits<double>::infinity()) - now;
  // Collect finished flows, remove them, then fire callbacks (callbacks may
  // start new flows and re-enter the network).
  std::vector<std::uint32_t> finished;
  std::vector<FlowCallback> callbacks;
  for (std::uint32_t slot : order_) {
    Flow& f = flows_[slot];
    if (f.rate > 0 && (f.remaining_bytes <= kByteEpsilon ||
                       f.remaining_bytes <= f.rate * time_ulp)) {
      finished.push_back(slot);
      callbacks.push_back(std::move(flows_cold_[slot].on_complete));
    }
  }
  if (finished.empty()) {
    // Spurious wake-up: the projection undershot the true finish by a
    // floating-point hair. Re-project the triggering flow from its fresh
    // remaining bytes (strictly in the future now) and rearm.
    CleanHeapTop();
    if (!heap_.empty()) {
      Flow& f = flows_[flow_index_.at(heap_.front().flow)];
      ++f.heap_seq;
      CleanHeapTop();  // drop the now-stale entry we just invalidated
      PushHeapEntry(f);
    }
    ScheduleNextCompletion();
    return;
  }
  EraseFlows(finished);
  RecomputeRates();
  ScheduleNextCompletion();
  for (auto& cb : callbacks) cb(Status::OK());
}

}  // namespace mgs::sim
