#include "sim/trace.h"

#include <fstream>
#include <limits>
#include <sstream>

namespace mgs::sim {

void TraceRecorder::AddSpan(std::string track, std::string name,
                            double begin, double end) {
  spans_.push_back(Span{std::move(track), std::move(name), begin, end});
}

void TraceRecorder::AddCounter(std::string track, std::string name,
                               double time, double value) {
  counters_.push_back(Counter{std::move(track), std::move(name), time, value});
}

void TraceRecorder::AddInstant(std::string track, std::string name,
                               double time) {
  instants_.push_back(Instant{std::move(track), std::move(name), time});
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}
}  // namespace

std::string TraceRecorder::ToChromeTraceJson() const {
  // Assign a stable tid per track, in first-seen order.
  std::map<std::string, int> tids;
  for (const auto& span : spans_) {
    tids.emplace(span.track, static_cast<int>(tids.size()));
  }
  for (const auto& counter : counters_) {
    tids.emplace(counter.track, static_cast<int>(tids.size()));
  }
  for (const auto& instant : instants_) {
    tids.emplace(instant.track, static_cast<int>(tids.size()));
  }
  std::ostringstream os;
  // max_digits10 makes the microsecond timestamps round-trip exactly: the
  // default 6 significant digits truncate any run past ~1 simulated second
  // ("ts":1e+06), collapsing distinct events onto one tick in the viewer.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "[";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << JsonEscape(track) << "\"}}";
  }
  for (const auto& span : spans_) {
    os << ",{\"ph\":\"X\",\"pid\":0,\"tid\":" << tids[span.track]
       << ",\"name\":\"" << JsonEscape(span.name) << "\",\"ts\":"
       << span.begin * 1e6 << ",\"dur\":" << (span.end - span.begin) * 1e6
       << "}";
  }
  for (const auto& counter : counters_) {
    os << ",{\"ph\":\"C\",\"pid\":0,\"tid\":" << tids[counter.track]
       << ",\"name\":\"" << JsonEscape(counter.name) << "\",\"ts\":"
       << counter.time * 1e6 << ",\"args\":{\"value\":" << counter.value
       << "}}";
  }
  for (const auto& instant : instants_) {
    // Scope "t": a thread-scoped tick mark on the instant's own track.
    os << ",{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":"
       << tids[instant.track] << ",\"name\":\"" << JsonEscape(instant.name)
       << "\",\"ts\":" << instant.time * 1e6 << "}";
  }
  os << "]";
  return os.str();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open trace file: " + path);
  f << ToChromeTraceJson();
  return f.good() ? Status::OK()
                  : Status::Internal("failed writing trace file: " + path);
}

}  // namespace mgs::sim
