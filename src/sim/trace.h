// Execution tracing: records op spans (copies, kernels, CPU phases) on
// named tracks and writes them as a Chrome trace-event JSON file
// (chrome://tracing or https://ui.perfetto.dev) — the tool you want when
// staring at a pipeline like HET sort's 3n scheme.

#ifndef MGS_SIM_TRACE_H_
#define MGS_SIM_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace mgs::sim {

class TraceRecorder {
 public:
  struct Span {
    std::string track;
    std::string name;
    double begin;  // simulated seconds
    double end;
  };

  /// A sampled gauge value (rendered as a Chrome counter event): the
  /// multi-tenant service samples per-link utilization this way, so a whole
  /// run's link load is visible next to the copy/kernel spans.
  struct Counter {
    std::string track;
    std::string name;
    double time;  // simulated seconds
    double value;
  };

  /// A point event with no duration (rendered as a Chrome instant event):
  /// fault injections and recovery decisions are marked this way so "GPU2
  /// died here" lines up against the spans it kills.
  struct Instant {
    std::string track;
    std::string name;
    double time;  // simulated seconds
  };

  /// Records one completed span on `track` ("GPU0:in", "CPU", ...).
  void AddSpan(std::string track, std::string name, double begin,
               double end);

  /// Records one counter sample on `track` (series `name`).
  void AddCounter(std::string track, std::string name, double time,
                  double value);

  /// Records one instant event on `track` at `time`.
  void AddInstant(std::string track, std::string name, double time);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Counter>& counters() const { return counters_; }
  const std::vector<Instant>& instants() const { return instants_; }
  std::size_t size() const { return spans_.size(); }
  void Clear() {
    spans_.clear();
    counters_.clear();
    instants_.clear();
  }

  /// Serializes all spans in Chrome trace-event format (1 simulated second
  /// = 1e6 trace microseconds). Tracks become named threads.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  std::vector<Span> spans_;
  std::vector<Counter> counters_;
  std::vector<Instant> instants_;
};

}  // namespace mgs::sim

#endif  // MGS_SIM_TRACE_H_
