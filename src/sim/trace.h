// Execution tracing: records op spans (copies, kernels, CPU phases) on
// named tracks and writes them as a Chrome trace-event JSON file
// (chrome://tracing or https://ui.perfetto.dev) — the tool you want when
// staring at a pipeline like HET sort's 3n scheme.

#ifndef MGS_SIM_TRACE_H_
#define MGS_SIM_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace mgs::sim {

class TraceRecorder {
 public:
  struct Span {
    std::string track;
    std::string name;
    double begin;  // simulated seconds
    double end;
  };

  /// Records one completed span on `track` ("GPU0:in", "CPU", ...).
  void AddSpan(std::string track, std::string name, double begin,
               double end);

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  void Clear() { spans_.clear(); }

  /// Serializes all spans in Chrome trace-event format (1 simulated second
  /// = 1e6 trace microseconds). Tracks become named threads.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace mgs::sim

#endif  // MGS_SIM_TRACE_H_
