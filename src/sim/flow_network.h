// Flow-level bandwidth model: capacity resources + weighted max-min fair
// sharing.
//
// Every data transfer in the simulated platform (HtoD/DtoH copies, P2P
// copies, device-local copies, and bandwidth-bound CPU phases such as the
// multiway merge) is a *flow* that traverses a set of capacity *resources*.
// A resource models anything that can saturate: one direction of a link, a
// duplex-overhead budget shared by both directions of a link, a PCIe switch
// uplink, a CPU interconnect, or a memory controller.
//
// A flow consumes `rate * weight(hop)` of each resource it crosses (weights
// express e.g. write amplification at a memory controller or per-class
// efficiency penalties). Rates are assigned by progressive filling: repeat
// { compute each resource's fair share for its unfrozen flows; freeze the
// flows on the bottleneck resource at that share } — the classic weighted
// max-min allocation. Rates are recomputed whenever a flow starts or
// finishes, which is exactly when the allocation can change.
//
// The allocator is *incremental*: each resource keeps an adjacency list of
// the live flow hops crossing it plus a cached unfrozen-weight denominator,
// so a settling round only touches resources actually crossed by live flows
// instead of rescanning every resource x every flow x every hop. The cached
// denominators are maintained so that they stay bitwise identical to a
// from-scratch rescan (appends extend the sum on the right; removals trigger
// a fresh left-to-right resummation), which keeps the allocation — order,
// rates, and kRelTol tie-breaking — byte-exact with the original
// progressive-filling implementation. That original remains available as a
// test-only oracle (set_use_reference_allocator_for_testing) and the
// equivalence is enforced by a randomized A/B test.
//
// This mechanism is what reproduces the paper's Section 4 phenomena: shared
// PCIe-switch plateaus (Fig. 4), X-Bus-bound remote copies (Fig. 2, 5),
// bidirectional overheads, and the eager-merge memory-bandwidth contention
// of Section 6.2.

#ifndef MGS_SIM_FLOW_NETWORK_H_
#define MGS_SIM_FLOW_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "util/status.h"

namespace mgs::sim {

using ResourceId = std::int32_t;
using FlowId = std::uint64_t;

/// One hop of a flow's path: the resource it crosses and the weight with
/// which its rate counts against that resource's capacity.
struct PathHop {
  ResourceId resource;
  double weight = 1.0;
};

class FlowNetwork {
 public:
  explicit FlowNetwork(Simulator* simulator) : simulator_(simulator) {}

  /// Registers a capacity resource (bytes/second). Returns its id.
  ResourceId AddResource(std::string name, double capacity_bytes_per_sec);

  double capacity(ResourceId id) const { return resources_[id].capacity; }
  const std::string& resource_name(ResourceId id) const {
    return resources_[id].name;
  }
  std::size_t num_resources() const { return resources_.size(); }

  /// Completion callback of a flow. The status is OK when the last byte
  /// arrived, or the abort reason when the flow was torn down mid-flight
  /// (e.g. a link went down or a device failed; see AbortFlowsCrossing).
  using FlowCallback = std::function<void(const Status&)>;

  /// Starts a flow of `bytes` across `path`; `on_complete` fires (as a
  /// simulator event) when the last byte arrives. Zero-byte flows complete
  /// at their start instant (after `lead_latency`) but still asynchronously
  /// — and only if every resource they cross has capacity; over a
  /// zero-capacity resource they park like any other flow until the
  /// capacity returns or they are aborted. `lead_latency` delays the flow's
  /// first byte (wire + setup latency; it neither consumes nor contends for
  /// bandwidth). The returned id identifies the flow for its whole life,
  /// including the latency window.
  FlowId StartFlow(double bytes, std::vector<PathHop> path,
                   FlowCallback on_complete, double lead_latency = 0.0);

  /// Convenience overload for callers that cannot fail (or do not care):
  /// the callback fires on completion *and* on abort.
  FlowId StartFlow(double bytes, std::vector<PathHop> path,
                   std::function<void()> on_complete,
                   double lead_latency = 0.0);

  /// Coroutine-friendly transfer: suspends until the flow completes and
  /// returns its delivery status (OK, or the abort reason).
  Task<Status> Transfer(double bytes, std::vector<PathHop> path,
                        double lead_latency = 0.0);

  /// Changes a resource's capacity at runtime (link degradation or
  /// restoration). In-flight flows are settled at their old rates first,
  /// then every rate is recomputed against the new capacity — the flow-level
  /// analogue of a link renegotiating its width mid-transfer. A capacity of
  /// zero freezes flows crossing the resource (abort them explicitly if the
  /// outage is fail-stop).
  void SetResourceCapacity(ResourceId id, double capacity_bytes_per_sec);

  /// Tears down every flow crossing `resource` — in flight *or* still
  /// inside its lead-latency window — and fires each victim's callback with
  /// `status` (which must be non-OK). Returns the number of flows aborted.
  int AbortFlowsCrossing(ResourceId resource, const Status& status);

  /// Current allocated rate of an active flow (bytes/sec); 0 if unknown or
  /// still inside its lead-latency window.
  double FlowRate(FlowId id) const;

  /// Number of in-flight flows (excludes flows in their latency window).
  std::size_t active_flows() const { return order_.size(); }

  /// Number of flows still inside their lead-latency window.
  std::size_t pending_flows() const { return pending_.size(); }

  /// Recomputed on every change; exposed for tests: the rate each active
  /// flow would get right now, in flow activation order.
  std::vector<std::pair<FlowId, double>> CurrentRates() const;

  /// Cumulative weighted bytes that have crossed a resource since the last
  /// ResetTraffic() (utilization analysis: traffic / (capacity * elapsed)).
  /// Progress is normally accrued lazily, when the flow set changes; call
  /// SettleTraffic() first to read an up-to-the-instant value mid-flight.
  double ResourceTraffic(ResourceId id) const;
  void ResetTraffic();

  /// Cumulative time (seconds) the resource carried any flow since the last
  /// ResetTraffic(), and the portion of that time its delivered load was at
  /// (>= 99.9% of) capacity — i.e. the resource was the active bottleneck.
  /// Billing uses the clamped delivered rate, so a flow that runs out of
  /// bytes mid-interval cannot be billed at its full allocated rate for the
  /// whole interval. Accrued lazily like traffic; SettleTraffic() brings
  /// both up to Now().
  double ResourceBusySeconds(ResourceId id) const;
  double ResourceSaturatedSeconds(ResourceId id) const;

  /// Accrues all in-flight flows' progress up to Now() (rates unchanged),
  /// so periodic samplers see smooth traffic instead of settlement lumps.
  void SettleTraffic() { AdvanceProgress(); }

  /// Name of the resource with the highest utilization over [since, now]
  /// and that utilization in [0, 1]. Returns {"", 0} if no time elapsed.
  /// `since_seconds` must be the time of the last ResetTraffic(), else the
  /// ratio is not a true utilization and can exceed 1.0.
  std::pair<std::string, double> BusiestResource(double since_seconds) const;

  /// Utilization of every resource over [since, now]: cumulative weighted
  /// traffic divided by capacity * elapsed. `since_seconds` must be the
  /// time of the last ResetTraffic for the ratios to be true utilizations
  /// (a stale window start inflates them past 1.0). Empty if no time has
  /// elapsed. Resource order matches resource ids, so callers (e.g. the
  /// src/sched utilization sampler) can diff snapshots.
  std::vector<std::pair<std::string, double>> Utilizations(
      double since_seconds) const;

  /// Testing hook: route every settling round through the original
  /// O(R·F·H)-per-round reference progressive-filling implementation
  /// instead of the incremental allocator. The two must produce bitwise
  /// identical allocations; a randomized A/B test enforces this.
  void set_use_reference_allocator_for_testing(bool use) {
    use_reference_allocator_ = use;
  }

 private:
  /// One hop entry of a live flow crossing a resource, in activation order.
  struct Member {
    std::uint32_t slot;  // index into flows_
    double weight;
  };
  struct Resource {
    std::string name;
    double capacity = 0;
    double traffic = 0;            // cumulative weighted bytes
    double busy_seconds = 0;       // time with any delivered load
    double saturated_seconds = 0;  // time with load >= ~capacity
    // Incremental allocator state. `members` lists the live hop entries
    // crossing this resource in (flow activation, hop) order; `live_denom`
    // caches the sum of their weights, maintained bitwise equal to a fresh
    // left-to-right resummation.
    std::vector<Member> members;
    double live_denom = 0;
    // Sum of rate * weight across members, rebuilt by every settling pass;
    // lets AdvanceProgress accrue traffic per resource instead of per hop.
    double allocated_load = 0;
    // Per-RecomputeRates scratch.
    double round_denom = 0;    // unfrozen-weight denominator this round
    double remaining_cap = 0;  // capacity minus frozen allocations
    std::int32_t round_unfrozen = 0;  // unfrozen member entries left
    bool denom_dirty = false;
    bool in_active_list = false;
  };
  /// Hot per-flow state: everything the per-event O(flows) walks (progress
  /// accrual, completion scan, settling rounds, heap rebuild) touch. Kept
  /// lean on purpose — the path and callback live in the parallel cold slab
  /// below so these walks stream a compact array instead of chasing
  /// per-flow heap allocations.
  struct Flow {
    FlowId id = 0;
    double remaining_bytes = 0;
    double rate = 0.0;
    std::uint32_t order_pos = 0;    // position in order_ (activation order)
    // Frozen-this-settling marker: the flow is frozen iff freeze_epoch
    // equals the allocator's settle_epoch_ (no O(flows) reset pass between
    // settlings); freeze_round further narrows to "frozen in the current
    // progressive-filling round" for the dense member-walk freeze path.
    std::uint32_t freeze_round = 0;
    std::uint64_t freeze_epoch = 0;
    std::uint64_t heap_seq = 0;     // invalidates stale heap entries
    bool in_heap = false;           // has a live completion-heap entry
    bool marked = false;            // scratch: candidate / victim dedup
    bool erased = false;            // scratch: batch erase
  };
  /// Cold per-flow state, parallel to flows_ (indexed by slot): touched only
  /// at activation, teardown, and rare clamp corrections.
  struct FlowCold {
    std::vector<PathHop> path;
    FlowCallback on_complete;
  };
  /// A flow inside its lead-latency window: not yet contending for
  /// bandwidth, but already addressable (by its final FlowId) and abortable
  /// by AbortFlowsCrossing.
  struct PendingFlow {
    double bytes;
    std::vector<PathHop> path;
    FlowCallback on_complete;
  };
  /// Lazily-invalidated completion-heap entry: the projected absolute
  /// finish time of `flow` computed when its rate last changed. Stale
  /// entries (flow gone, or seq mismatch after a rate change) are discarded
  /// when they surface at the top.
  struct HeapEntry {
    double finish;
    FlowId flow;
    std::uint64_t seq;
  };

  void Activate(FlowId id, double bytes, std::vector<PathHop> path,
                FlowCallback on_complete);
  void ActivateDeferred(FlowId id);
  void AdvanceProgress();
  void RecomputeRates();
  void RecomputeRatesIncremental();
  void RecomputeRatesReference();
  /// Records a freshly-allocated rate; when it changed, bumps the heap
  /// sequence (invalidating the old projection) and queues the flow for
  /// RefreshHeap().
  void AssignRate(Flow& flow, double rate);
  /// Re-projects queued flows into the completion heap: one push each when
  /// few rates changed, a wholesale rebuild when most did (also compacts
  /// accumulated stale entries, bounding the heap to O(live flows)).
  void RefreshHeap();
  void PushHeapEntry(Flow& flow);
  /// Restores the heap invariant if a wholesale rebuild deferred it.
  void EnsureHeapOrdered();
  /// Pops stale heap entries until the top is live (or the heap is empty).
  void CleanHeapTop();
  /// Removes the given flow slots (callbacks must already be moved out):
  /// purges resource adjacency lists (with fresh denominator resummation),
  /// the activation-order list, and the id->slot index; recycles the slots.
  void EraseFlows(const std::vector<std::uint32_t>& slots);
  void ScheduleNextCompletion();
  void OnCompletionEvent(std::uint64_t generation);

  Simulator* simulator_;
  std::vector<Resource> resources_;
  // Slot-stable flow slabs (hot + cold, parallel) + free list; `order_`
  // lists live slots in activation order (the order every allocation and
  // callback pass uses).
  std::vector<Flow> flows_;
  std::vector<FlowCold> flows_cold_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> order_;
  // id -> slot for O(1) FlowRate and heap-entry validation.
  std::unordered_map<FlowId, std::uint32_t> flow_index_;
  std::unordered_map<FlowId, PendingFlow> pending_;
  // Min-heap (via std::push_heap/pop_heap) on projected finish time. After
  // a wholesale rebuild only the front is guaranteed minimal; the full heap
  // invariant is restored lazily (heap_ordered_) when first needed.
  std::vector<HeapEntry> heap_;
  bool heap_ordered_ = true;
  // Resources crossed by at least one live flow (may contain stale entries;
  // compacted at the start of each incremental recompute).
  std::vector<ResourceId> active_resources_;
  // Scratch buffers reused across calls to avoid per-event allocation.
  std::vector<double> load_scratch_;  // per-resource delivered load
  std::vector<ResourceId> touched_scratch_;
  std::vector<std::uint32_t> candidate_scratch_;
  std::vector<std::uint32_t> repush_scratch_;  // slots queued for RefreshHeap
  FlowId next_flow_id_ = 1;
  double last_update_time_ = 0.0;
  // Completion-event supersession protocol: exactly one completion event is
  // outstanding at a time, tagged with the value of `generation_` at
  // scheduling. Every reallocation (flow start/finish/abort, capacity
  // change) bumps the counter, so a stale event that fires afterwards sees
  // a mismatched tag and returns without touching anything. This replaces
  // any need to track "is a completion scheduled" separately.
  std::uint64_t generation_ = 0;
  // Current settling pass; compared against Flow::freeze_epoch.
  std::uint64_t settle_epoch_ = 0;
  bool use_reference_allocator_ = false;
};

}  // namespace mgs::sim

#endif  // MGS_SIM_FLOW_NETWORK_H_
