// Flow-level bandwidth model: capacity resources + weighted max-min fair
// sharing.
//
// Every data transfer in the simulated platform (HtoD/DtoH copies, P2P
// copies, device-local copies, and bandwidth-bound CPU phases such as the
// multiway merge) is a *flow* that traverses a set of capacity *resources*.
// A resource models anything that can saturate: one direction of a link, a
// duplex-overhead budget shared by both directions of a link, a PCIe switch
// uplink, a CPU interconnect, or a memory controller.
//
// A flow consumes `rate * weight(hop)` of each resource it crosses (weights
// express e.g. write amplification at a memory controller or per-class
// efficiency penalties). Rates are assigned by progressive filling: repeat
// { compute each resource's fair share for its unfrozen flows; freeze the
// flows on the bottleneck resource at that share } — the classic weighted
// max-min allocation. Rates are recomputed whenever a flow starts or
// finishes, which is exactly when the allocation can change.
//
// This mechanism is what reproduces the paper's Section 4 phenomena: shared
// PCIe-switch plateaus (Fig. 4), X-Bus-bound remote copies (Fig. 2, 5),
// bidirectional overheads, and the eager-merge memory-bandwidth contention
// of Section 6.2.

#ifndef MGS_SIM_FLOW_NETWORK_H_
#define MGS_SIM_FLOW_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "util/status.h"

namespace mgs::sim {

using ResourceId = std::int32_t;
using FlowId = std::uint64_t;

/// One hop of a flow's path: the resource it crosses and the weight with
/// which its rate counts against that resource's capacity.
struct PathHop {
  ResourceId resource;
  double weight = 1.0;
};

class FlowNetwork {
 public:
  explicit FlowNetwork(Simulator* simulator) : simulator_(simulator) {}

  /// Registers a capacity resource (bytes/second). Returns its id.
  ResourceId AddResource(std::string name, double capacity_bytes_per_sec);

  double capacity(ResourceId id) const { return resources_[id].capacity; }
  const std::string& resource_name(ResourceId id) const {
    return resources_[id].name;
  }
  std::size_t num_resources() const { return resources_.size(); }

  /// Completion callback of a flow. The status is OK when the last byte
  /// arrived, or the abort reason when the flow was torn down mid-flight
  /// (e.g. a link went down or a device failed; see AbortFlowsCrossing).
  using FlowCallback = std::function<void(const Status&)>;

  /// Starts a flow of `bytes` across `path`; `on_complete` fires (as a
  /// simulator event) when the last byte arrives. Zero-byte flows complete
  /// immediately. `lead_latency` delays the flow's first byte (wire +
  /// setup latency; it neither consumes nor contends for bandwidth).
  /// Returns the flow id.
  FlowId StartFlow(double bytes, std::vector<PathHop> path,
                   FlowCallback on_complete, double lead_latency = 0.0);

  /// Convenience overload for callers that cannot fail (or do not care):
  /// the callback fires on completion *and* on abort.
  FlowId StartFlow(double bytes, std::vector<PathHop> path,
                   std::function<void()> on_complete,
                   double lead_latency = 0.0);

  /// Coroutine-friendly transfer: suspends until the flow completes and
  /// returns its delivery status (OK, or the abort reason).
  Task<Status> Transfer(double bytes, std::vector<PathHop> path,
                        double lead_latency = 0.0);

  /// Changes a resource's capacity at runtime (link degradation or
  /// restoration). In-flight flows are settled at their old rates first,
  /// then every rate is recomputed against the new capacity — the flow-level
  /// analogue of a link renegotiating its width mid-transfer. A capacity of
  /// zero freezes flows crossing the resource (abort them explicitly if the
  /// outage is fail-stop).
  void SetResourceCapacity(ResourceId id, double capacity_bytes_per_sec);

  /// Tears down every in-flight flow crossing `resource` and fires each
  /// victim's callback with `status` (which must be non-OK). Flows still in
  /// their lead-latency window are not yet in flight and are unaffected.
  /// Returns the number of flows aborted.
  int AbortFlowsCrossing(ResourceId resource, const Status& status);

  /// Current allocated rate of an active flow (bytes/sec); 0 if unknown.
  double FlowRate(FlowId id) const;

  /// Number of in-flight flows.
  std::size_t active_flows() const { return flows_.size(); }

  /// Recomputed on every change; exposed for tests: the rate each active
  /// flow would get right now.
  std::vector<std::pair<FlowId, double>> CurrentRates() const;

  /// Cumulative weighted bytes that have crossed a resource since the last
  /// ResetTraffic() (utilization analysis: traffic / (capacity * elapsed)).
  /// Progress is normally accrued lazily, when the flow set changes; call
  /// SettleTraffic() first to read an up-to-the-instant value mid-flight.
  double ResourceTraffic(ResourceId id) const;
  void ResetTraffic();

  /// Cumulative time (seconds) the resource carried any flow since the last
  /// ResetTraffic(), and the portion of that time its allocated load was at
  /// (>= 99.9% of) capacity — i.e. the resource was the active bottleneck.
  /// Accrued lazily like traffic; SettleTraffic() brings both up to Now().
  double ResourceBusySeconds(ResourceId id) const;
  double ResourceSaturatedSeconds(ResourceId id) const;

  /// Accrues all in-flight flows' progress up to Now() (rates unchanged),
  /// so periodic samplers see smooth traffic instead of settlement lumps.
  void SettleTraffic() { AdvanceProgress(); }

  /// Name of the resource with the highest utilization over [since, now]
  /// and that utilization in [0, 1]. Returns {"", 0} if no time elapsed.
  std::pair<std::string, double> BusiestResource(double since_seconds) const;

  /// Utilization of every resource over [since, now]: cumulative weighted
  /// traffic divided by capacity * elapsed. `since_seconds` must be the
  /// time of the last ResetTraffic for the ratios to be true utilizations.
  /// Empty if no time has elapsed. Resource order matches resource ids, so
  /// callers (e.g. the src/sched utilization sampler) can diff snapshots.
  std::vector<std::pair<std::string, double>> Utilizations(
      double since_seconds) const;

 private:
  struct Resource {
    std::string name;
    double capacity;
    double traffic = 0;            // cumulative weighted bytes
    double busy_seconds = 0;       // time with any allocated load
    double saturated_seconds = 0;  // time with load >= ~capacity
  };
  struct Flow {
    FlowId id;
    double remaining_bytes;
    std::vector<PathHop> path;
    FlowCallback on_complete;
    double rate = 0.0;
  };

  void AdvanceProgress();
  void RecomputeRates();
  void ScheduleNextCompletion();
  void OnCompletionEvent(std::uint64_t generation);

  Simulator* simulator_;
  std::vector<Resource> resources_;
  std::vector<Flow> flows_;
  FlowId next_flow_id_ = 1;
  double last_update_time_ = 0.0;
  std::uint64_t generation_ = 0;  // invalidates stale completion events
  bool completion_scheduled_ = false;
};

}  // namespace mgs::sim

#endif  // MGS_SIM_FLOW_NETWORK_H_
