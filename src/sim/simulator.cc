#include "sim/simulator.h"

#include <algorithm>

namespace mgs::sim {

EventId Simulator::Schedule(double delay_seconds, std::function<void()> fn) {
  if (delay_seconds < 0) delay_seconds = 0;
  return ScheduleAt(now_ + delay_seconds, std::move(fn));
}

EventId Simulator::ScheduleAt(double time_seconds, std::function<void()> fn) {
  if (time_seconds < now_) time_seconds = now_;
  const EventId id = next_id_++;
  queue_.push(Event{time_seconds, next_seq_++, id, std::move(fn)});
  ++live_events_;
  return id;
}

void Simulator::Cancel(EventId id) {
  cancelled_.push_back(id);
  if (live_events_ > 0) --live_events_;
}

bool Simulator::IsCancelled(EventId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  return true;
}

double Simulator::Run() { return RunUntil(1e300); }

double Simulator::RunUntil(double deadline) {
  while (!queue_.empty()) {
    if (queue_.top().time > deadline) break;
    Event ev = queue_.top();
    queue_.pop();
    if (IsCancelled(ev.id)) continue;
    --live_events_;
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
  return now_;
}

}  // namespace mgs::sim
