// A coroutine mutex for simulated hardware engines (copy engines, compute
// queues): ops acquire the engine FIFO and hold it for their duration.

#ifndef MGS_VGPU_SIM_MUTEX_H_
#define MGS_VGPU_SIM_MUTEX_H_

#include <coroutine>
#include <deque>

namespace mgs::vgpu {

class SimMutex {
 public:
  SimMutex() = default;
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  bool locked() const { return locked_; }
  std::size_t waiters() const { return waiters_.size(); }

  /// Awaitable acquisition; FIFO among waiters.
  auto Acquire() {
    struct Awaiter {
      SimMutex* mutex;
      bool await_ready() const noexcept { return !mutex->locked_; }
      void await_suspend(std::coroutine_handle<> h) {
        mutex->waiters_.push_back(h);
      }
      void await_resume() const noexcept { mutex->locked_ = true; }
    };
    return Awaiter{this};
  }

  /// Releases the mutex; resumes the next waiter (which re-locks it).
  void Release() {
    locked_ = false;
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      h.resume();  // its await_resume sets locked_ = true
    }
  }

 private:
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII-ish helper: co_await lock.Hold() inside a scope is not possible with
/// plain RAII (release must happen in coroutine context), so ops call
/// Acquire()/Release() explicitly.

}  // namespace mgs::vgpu

#endif  // MGS_VGPU_SIM_MUTEX_H_
