// Host and device buffers for the virtual GPU runtime.
//
// Device memory is host memory in this simulator; what makes a buffer a
// *device* buffer is (a) capacity accounting against the owning GPU's HBM
// size and (b) the rule that host logic never touches device contents
// directly — only kernels and copies do (tests assert on host buffers).
//
// Scale model: a buffer stores `size()` real ("actual") elements but
// represents `size() * scale` logical elements; the timing layer bills
// logical bytes. Tests and examples run at scale 1 where the two coincide.

#ifndef MGS_VGPU_BUFFER_H_
#define MGS_VGPU_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/status.h"

namespace mgs::vgpu {

class Device;

namespace internal {
/// Untyped backing store with device registration; DeviceBuffer<T> wraps it.
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  DeviceAllocation(Device* device, std::int64_t bytes_actual);
  ~DeviceAllocation();
  DeviceAllocation(DeviceAllocation&& other) noexcept;
  DeviceAllocation& operator=(DeviceAllocation&& other) noexcept;
  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;

  Device* device() const { return device_; }
  std::int64_t bytes_actual() const { return bytes_actual_; }

 private:
  void Free();
  Device* device_ = nullptr;
  std::int64_t bytes_actual_ = 0;
};
}  // namespace internal

/// A typed device-memory buffer of fixed element capacity. Created via
/// Device::Allocate<T>(). Move-only; frees its capacity on destruction.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  int device_id() const;

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T* begin() { return data(); }
  T* end() { return data() + size(); }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  T& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

 private:
  friend class Device;
  DeviceBuffer(internal::DeviceAllocation allocation, std::int64_t count)
      : allocation_(std::move(allocation)),
        data_(static_cast<std::size_t>(count)) {}

  internal::DeviceAllocation allocation_;
  std::vector<T> data_;
};

/// Pinned (page-locked) host memory on a NUMA node. Pageable buffers model
/// the CUDA driver's staging penalty via a bandwidth weight on all copies.
template <typename T>
class HostBuffer {
 public:
  HostBuffer() = default;
  explicit HostBuffer(std::int64_t count, int numa_node = 0,
                      bool pinned = true)
      : data_(static_cast<std::size_t>(count)),
        numa_node_(numa_node),
        pinned_(pinned) {}
  explicit HostBuffer(std::vector<T> data, int numa_node = 0,
                      bool pinned = true)
      : data_(std::move(data)), numa_node_(numa_node), pinned_(pinned) {}

  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  int numa_node() const { return numa_node_; }
  bool pinned() const { return pinned_; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  std::vector<T>& vector() { return data_; }
  const std::vector<T>& vector() const { return data_; }

 private:
  std::vector<T> data_;
  int numa_node_ = 0;
  bool pinned_ = true;
};

}  // namespace mgs::vgpu

#endif  // MGS_VGPU_BUFFER_H_
