#include "vgpu/platform.h"

#include <algorithm>
#include <utility>

namespace mgs::vgpu {

namespace internal {

DeviceAllocation::DeviceAllocation(Device* device, std::int64_t bytes_actual)
    : device_(device), bytes_actual_(bytes_actual) {
  device_->used_logical_bytes_ +=
      static_cast<double>(bytes_actual_) * device_->platform()->scale();
}

DeviceAllocation::~DeviceAllocation() { Free(); }

DeviceAllocation::DeviceAllocation(DeviceAllocation&& other) noexcept
    : device_(std::exchange(other.device_, nullptr)),
      bytes_actual_(std::exchange(other.bytes_actual_, 0)) {}

DeviceAllocation& DeviceAllocation::operator=(
    DeviceAllocation&& other) noexcept {
  if (this != &other) {
    Free();
    device_ = std::exchange(other.device_, nullptr);
    bytes_actual_ = std::exchange(other.bytes_actual_, 0);
  }
  return *this;
}

void DeviceAllocation::Free() {
  if (device_) {
    device_->used_logical_bytes_ -=
        static_cast<double>(bytes_actual_) * device_->platform()->scale();
    device_ = nullptr;
    bytes_actual_ = 0;
  }
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Stream
// ---------------------------------------------------------------------------

Stream::Stream(Platform* platform, Device* device, int id)
    : platform_(platform), device_(device), id_(id) {}

void Stream::Enqueue(std::function<sim::Task<void>()> op) {
  ++ops_enqueued_;
  // The runner keeps `op` (and thus any closure state) alive in its frame
  // until the op's task completes.
  auto run = [](sim::JoinerPtr prev,
                std::function<sim::Task<void>()> op) -> sim::Task<void> {
    if (prev) co_await *prev;
    co_await op();
  };
  tail_ = sim::Spawn(run(tail_, std::move(op)));
}

void Stream::LaunchAsync(double duration_seconds, std::function<void()> body,
                         std::string label) {
  auto* device = device_;
  auto* platform = platform_;
  auto* stream = this;
  Enqueue([stream, device, platform, duration_seconds, body = std::move(body),
           label = std::move(label)]() -> sim::Task<void> {
    // Sticky-error semantics: kernels on an errored stream or a failed
    // device do not launch.
    if (!stream->status().ok() || device->failed()) {
      stream->RecordError(device->failed() ? device->fail_status()
                                           : stream->status());
      co_return;
    }
    auto& engine = device->compute_engine();
    co_await engine.Acquire();
    const double begin = platform->simulator().Now();
    co_await sim::Delay{platform->simulator(), duration_seconds};
    // A fail-stop loss mid-kernel kills it: the time elapsed but the
    // functional effect never lands.
    const bool ok = !device->failed();
    if (ok) body();
    engine.Release();
    const double end = platform->simulator().Now();
    if (auto* trace = platform->trace()) {
      trace->AddSpan("GPU" + std::to_string(device->id()) + ":compute",
                     ok ? label : label + " [failed]", begin, end);
    }
    if (!ok) {
      stream->RecordError(device->fail_status());
      co_return;
    }
    if (auto* metrics = platform->metrics()) {
      const std::string gpu = std::to_string(device->id());
      // The queue-wait portion (begin..acquire) is not kernel time; what the
      // Delay covered is. Busy time feeds per-GPU occupancy in the explain
      // report; the histogram keys on the kernel label for cost-model work.
      metrics
          ->GetHistogram(obs::kKernelSeconds,
                         {{"gpu", gpu}, {"kernel", label}},
                         "Simulated kernel execution durations")
          .Observe(duration_seconds);
      metrics
          ->GetCounter(obs::kKernelInvocations,
                       {{"gpu", gpu}, {"kernel", label}},
                       "Completed kernel launches")
          .Inc();
      metrics
          ->GetCounter(obs::kKernelBusySeconds, {{"gpu", gpu}},
                       "Simulated seconds a GPU's compute queue was executing "
                       "kernels")
          .Add(end - begin);
    }
  });
}

sim::Task<void> Stream::Synchronize() {
  auto tail = tail_;
  if (tail) co_await *tail;
}

std::shared_ptr<sim::Trigger> Stream::RecordEvent() {
  auto event = std::make_shared<sim::Trigger>();
  Enqueue([event]() -> sim::Task<void> {
    event->Fire();
    co_return;
  });
  return event;
}

void Stream::WaitEvent(std::shared_ptr<sim::Trigger> event) {
  Enqueue([event]() -> sim::Task<void> { co_await event->Wait(); });
}

Status Stream::Preflight(topo::Endpoint src, topo::Endpoint dst) {
  if (!status_.ok()) return status_;
  for (const auto& ep : {src, dst}) {
    if (ep.kind != topo::Endpoint::Kind::kGpu) continue;
    const Device& device = platform_->device(ep.id);
    if (device.failed()) return device.fail_status();
  }
  return Status::OK();
}

void Stream::NoteCopyError(const Status& st, topo::CopyKind kind,
                           const std::string& track) {
  RecordError(st);
  if (auto* trace = platform_->trace()) {
    trace->AddInstant(track, "copy-error: " + st.ToString(),
                      platform_->simulator().Now());
  }
  if (auto* metrics = platform_->metrics()) {
    // track is "GPU<id>:<direction>" (see the Memcpy*Async wrappers).
    const std::size_t colon = track.find(':');
    const obs::Labels labels{{"gpu", track.substr(3, colon - 3)},
                             {"direction", track.substr(colon + 1)},
                             {"kind", topo::CopyKindToString(kind)}};
    metrics
        ->GetCounter(obs::kCopyErrors, labels,
                     "vgpu copy operations that failed")
        .Inc();
  }
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

Device::Device(Platform* platform, int id) : platform_(platform), id_(id) {}

const topo::GpuSpec& Device::spec() const {
  return platform_->topology().gpu_spec(id_);
}

int Device::numa_socket() const {
  return platform_->topology().gpu_socket(id_);
}

double Device::memory_capacity() const {
  return spec().memory_capacity_bytes;
}

double Device::memory_free() const {
  return memory_capacity() - used_logical_bytes_;
}

Status Device::Reserve(double logical_bytes) {
  if (logical_bytes < 0) return Status::Invalid("negative reservation");
  if (logical_bytes > memory_available()) {
    return Status::OutOfMemory(
        "device " + std::to_string(id_) + ": reservation of " +
        FormatBytes(logical_bytes) + " exceeds available " +
        FormatBytes(memory_available()));
  }
  reserved_logical_bytes_ += logical_bytes;
  return Status::OK();
}

void Device::Unreserve(double logical_bytes) {
  reserved_logical_bytes_ =
      std::max(0.0, reserved_logical_bytes_ - logical_bytes);
}

double Device::memory_pressure() const {
  const double capacity = memory_capacity();
  if (capacity <= 0) return 1.0;
  return std::min(1.0,
                  (used_logical_bytes_ + reserved_logical_bytes_) / capacity);
}

Stream& Device::stream(int i) {
  while (static_cast<int>(streams_.size()) <= i) {
    streams_.push_back(std::make_unique<Stream>(
        platform_, this, static_cast<int>(streams_.size())));
  }
  return *streams_[static_cast<std::size_t>(i)];
}

void Device::Fail(Status reason) {
  if (failed()) return;
  fail_status_ = reason.ok()
                     ? Status::Unavailable("GPU " + std::to_string(id_) +
                                           " failed")
                     : std::move(reason);
  // DMA engines on a dead device stop mid-burst: tear down every in-flight
  // flow touching its HBM (all copies to/from this GPU cross that
  // resource), so counterpart devices see their copies fail now rather
  // than hang on a zero-rate flow. This also reaches copies still inside
  // their launch-overhead latency window — AbortFlowsCrossing cancels
  // pending deferred flows too, so a copy issued an instant before the
  // failure cannot slip through and complete against a dead device.
  const auto hbm = platform_->topology().GpuHbmResource(id_);
  if (hbm.ok()) {
    platform_->network().AbortFlowsCrossing(*hbm, fail_status_);
  }
}

Status Device::FirstError() const {
  if (failed()) return fail_status_;
  for (const auto& stream : streams_) {
    if (!stream->status().ok()) return stream->status();
  }
  return Status::OK();
}

void Device::ResetStreamErrors() {
  for (auto& stream : streams_) stream->ResetStatus();
}

// ---------------------------------------------------------------------------
// Platform
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Platform>> Platform::Create(
    std::unique_ptr<topo::Topology> topology, PlatformOptions options) {
  if (options.scale < 1.0) {
    return Status::Invalid("scale must be >= 1");
  }
  if (topology == nullptr) return Status::Invalid("null topology");
  auto platform = std::unique_ptr<Platform>(
      new Platform(std::move(topology), options));
  MGS_RETURN_IF_ERROR(platform->topology_->Compile(&platform->network_));
  for (int g = 0; g < platform->topology_->num_gpus(); ++g) {
    platform->devices_.push_back(
        std::make_unique<Device>(platform.get(), g));
  }
  return platform;
}

sim::Task<void> Platform::CpuBusy(double seconds) {
  const double begin = simulator_.Now();
  co_await sim::Delay{simulator_, seconds};
  if (trace_) trace_->AddSpan("CPU", "cpu-busy", begin, simulator_.Now());
  if (metrics_) {
    metrics_
        ->GetHistogram(obs::kCpuPhaseSeconds, {{"phase", "busy"}},
                       "Simulated CPU phase durations")
        .Observe(simulator_.Now() - begin);
  }
}

sim::Task<Status> Platform::CpuMemoryWork(int socket, double logical_bytes,
                                          double amplification,
                                          double engine_weight) {
  auto path = CheckOk(topology_->CpuMemoryWorkPath(socket, amplification));
  // The merge engine is the last hop; scale its weight for k-way penalty.
  if (engine_weight != 1.0 && !path.empty()) {
    path.back().weight *= engine_weight;
  }
  const double begin = simulator_.Now();
  const Status st =
      co_await network_.Transfer(logical_bytes, std::move(path));
  if (trace_) {
    trace_->AddSpan("CPU",
                    "cpu-merge " + FormatBytes(logical_bytes) +
                        (st.ok() ? "" : " [failed]"),
                    begin, simulator_.Now());
  }
  if (metrics_) {
    metrics_
        ->GetHistogram(obs::kCpuPhaseSeconds, {{"phase", "merge"}},
                       "Simulated CPU phase durations")
        .Observe(simulator_.Now() - begin);
    metrics_
        ->GetCounter(obs::kCpuBytes, {{"phase", "merge"}},
                     "Logical bytes processed by bandwidth-bound CPU work")
        .Add(logical_bytes);
  }
  co_return st;
}

sim::Task<Status> Platform::NvmeTransfer(int nvme, double logical_bytes,
                                         bool write) {
  auto path_or = topology_->NvmePath(nvme, write);
  if (!path_or.ok()) co_return path_or.status();
  const double begin = simulator_.Now();
  const Status st =
      co_await network_.Transfer(logical_bytes, std::move(*path_or));
  const char* dir = write ? "spill-write" : "spill-read";
  if (trace_) {
    trace_->AddSpan("NVMe" + std::to_string(nvme),
                    std::string(dir) + " " + FormatBytes(logical_bytes) +
                        (st.ok() ? "" : " [failed]"),
                    begin, simulator_.Now());
  }
  if (metrics_) {
    metrics_
        ->GetHistogram(obs::kCpuPhaseSeconds, {{"phase", dir}},
                       "Simulated CPU phase durations")
        .Observe(simulator_.Now() - begin);
    metrics_
        ->GetCounter(obs::kNvmeBytes,
                     {{"nvme", std::to_string(nvme)},
                      {"dir", write ? "write" : "read"}},
                     "Bytes spilled to / read back from NVMe storage")
        .Add(logical_bytes);
  }
  co_return st;
}

Status Platform::ConsultCopyOracle(const CopyFaultContext& ctx) {
  return fault_oracle_ ? fault_oracle_->OnCopyDelivered(ctx) : Status::OK();
}

Result<double> Platform::Run(sim::Task<void> root) {
  const double start = simulator_.Now();
  MGS_RETURN_IF_ERROR(sim::RunToCompletion(&simulator_, std::move(root)));
  return simulator_.Now() - start;
}

}  // namespace mgs::vgpu
