// The virtual GPU runtime: a CUDA-like host API (devices, streams, events,
// async copies, kernel launches) over the discrete-event simulator.
//
// Functional layer: copies really move bytes between host-resident arrays
// and kernels really execute (the sort primitives in src/gpusort are real
// algorithms), so results are verifiably correct. Timing layer: copies
// become flows across the calibrated topology and kernels take durations
// from the GPU cost model. Reported times are simulated seconds.
//
// Semantics mirror CUDA where it matters to the paper's algorithms:
//  * ops enqueued on one stream execute FIFO; different streams overlap;
//  * each GPU has separate in/out/local copy engines and a compute queue,
//    so HtoD, DtoH and kernels can overlap (the 3n pipeline of Fig. 10);
//  * events provide cross-stream ordering;
//  * copies snapshot their source when the transfer starts and materialize
//    at the destination when it completes (so the paper's "in-place data
//    transfer swap" on one buffer behaves like real DMA).

#ifndef MGS_VGPU_PLATFORM_H_
#define MGS_VGPU_PLATFORM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/phase.h"
#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/trace.h"
#include "topo/topology.h"
#include "util/status.h"
#include "vgpu/buffer.h"
#include "vgpu/sim_mutex.h"

namespace mgs::vgpu {

class Platform;
class Device;

/// Effective-bandwidth penalty for copies from/to pageable (non-pinned)
/// host memory: the CUDA driver stages them through an internal pinned
/// buffer (Section 4.2 motivates pinned memory).
inline constexpr double kPageableCopyWeight = 1.6;

/// Fixed per-copy setup cost (cudaMemcpyAsync launch + DMA descriptor):
/// irrelevant for the paper's 4 GB blocks, dominant below ~100 KB.
inline constexpr double kCopyLaunchOverhead = 5e-6;

/// Context handed to the fault oracle when a copy's data movement finishes.
struct CopyFaultContext {
  topo::CopyKind kind;
  topo::Endpoint src;
  topo::Endpoint dst;
  double logical_bytes = 0;
};

/// Fault hook consulted by the runtime (implemented by src/fault's
/// injector): returning a non-OK status fails the copy as if the hardware
/// reported a DMA error — the destination is not written and the stream
/// records the error.
class FaultOracle {
 public:
  virtual ~FaultOracle() = default;
  virtual Status OnCopyDelivered(const CopyFaultContext& ctx) = 0;
};

/// A CUDA-like stream: FIFO queue of async ops.
class Stream {
 public:
  Stream(Platform* platform, Device* device, int id);

  int id() const { return id_; }
  Device* device() const { return device_; }

  /// Copies `count` elements host->device. Buffers must outlive the op.
  template <typename T>
  void MemcpyHtoDAsync(DeviceBuffer<T>& dst, std::int64_t dst_offset,
                       const HostBuffer<T>& src, std::int64_t src_offset,
                       std::int64_t count);

  /// Copies `count` elements device->host.
  template <typename T>
  void MemcpyDtoHAsync(HostBuffer<T>& dst, std::int64_t dst_offset,
                       const DeviceBuffer<T>& src, std::int64_t src_offset,
                       std::int64_t count);

  /// Copies `count` elements between two GPUs (P2P DMA).
  template <typename T>
  void MemcpyPeerAsync(DeviceBuffer<T>& dst, std::int64_t dst_offset,
                       const DeviceBuffer<T>& src, std::int64_t src_offset,
                       std::int64_t count);

  /// Device-local copy within one GPU's memory.
  template <typename T>
  void MemcpyDtoDAsync(DeviceBuffer<T>& dst, std::int64_t dst_offset,
                       const DeviceBuffer<T>& src, std::int64_t src_offset,
                       std::int64_t count);

  /// Enqueues a kernel: occupies this device's compute queue for
  /// `duration_seconds` (simulated), then runs `body` (the functional
  /// effect). `label` is for diagnostics.
  void LaunchAsync(double duration_seconds, std::function<void()> body,
                   std::string label = "kernel");

  /// Suspends until every op enqueued so far has completed.
  sim::Task<void> Synchronize();

  /// Records an event after the currently-enqueued ops.
  std::shared_ptr<sim::Trigger> RecordEvent();

  /// Makes subsequent ops on this stream wait for `event`.
  void WaitEvent(std::shared_ptr<sim::Trigger> event);

  /// Number of ops enqueued over the stream's lifetime.
  std::int64_t ops_enqueued() const { return ops_enqueued_; }

  /// Sticky error state, CUDA-style: the first failed op poisons the
  /// stream and subsequent ops are skipped (no functional effect, no
  /// simulated time) until ResetStatus(). OK = healthy.
  const Status& status() const { return status_; }
  void ResetStatus() { status_ = Status::OK(); }

  /// Records `st` as the stream's sticky error if it is the first (no-op
  /// for OK statuses).
  void RecordError(const Status& st) {
    if (status_.ok() && !st.ok()) status_ = st;
  }

 private:
  void Enqueue(std::function<sim::Task<void>()> op);

  /// Pre-dispatch health check for an op touching `src`/`dst`: the sticky
  /// stream error, or the fail-stop status of either endpoint device.
  Status Preflight(topo::Endpoint src, topo::Endpoint dst);

  /// Records a failed copy: sticky error + error counter + trace instant.
  void NoteCopyError(const Status& st, topo::CopyKind kind,
                     const std::string& track);

  template <typename T>
  void EnqueueCopy(topo::CopyKind kind, topo::Endpoint src_ep,
                   topo::Endpoint dst_ep, T* dst, const T* src,
                   std::int64_t count, double extra_weight, SimMutex* engine,
                   std::string track);

  Platform* platform_;
  Device* device_;
  int id_;
  sim::JoinerPtr tail_;
  std::int64_t ops_enqueued_ = 0;
  Status status_;
};

/// One simulated GPU.
class Device {
 public:
  Device(Platform* platform, int id);

  int id() const { return id_; }
  Platform* platform() const { return platform_; }
  const topo::GpuSpec& spec() const;
  int numa_socket() const;

  /// Logical memory capacity / free bytes (scale-independent).
  double memory_capacity() const;
  double memory_free() const;
  double memory_used() const { return used_logical_bytes_; }

  /// Scheduler-facing memory reservations (logical bytes): admission and
  /// placement in src/sched claim a job's memory *before* its buffers are
  /// allocated, so several placement decisions made at the same simulated
  /// instant cannot oversubscribe a device. Reservations are bookkeeping
  /// only — Allocate() checks used bytes, not reservations — so the holder
  /// must release them right before allocating for real (P2pSortTask
  /// allocates eagerly, before its first suspension, which makes that
  /// handoff race-free in the single-threaded simulation).
  Status Reserve(double logical_bytes);
  void Unreserve(double logical_bytes);
  double memory_reserved() const { return reserved_logical_bytes_; }

  /// Free memory net of reservations: what a new job may claim now.
  double memory_available() const {
    return memory_free() - reserved_logical_bytes_;
  }

  /// Fraction of capacity committed (used + reserved), in [0, 1]: the
  /// admission controller's load-shedding signal.
  double memory_pressure() const;

  /// Allocates a device buffer of `actual_count` elements (logical size is
  /// actual_count * scale * sizeof(T)); fails if the GPU is out of memory.
  template <typename T>
  Result<DeviceBuffer<T>> Allocate(std::int64_t actual_count);

  /// Largest per-buffer actual element count such that `num_buffers` equal
  /// buffers fit into this GPU's free memory.
  template <typename T>
  std::int64_t MaxBufferElements(int num_buffers) const;

  /// Stream `i` (created on first use).
  Stream& stream(int i);

  SimMutex& in_engine() { return in_engine_; }
  SimMutex& out_engine() { return out_engine_; }
  SimMutex& local_engine() { return local_engine_; }
  SimMutex& compute_engine() { return compute_engine_; }

  /// Fail-stop device loss: marks the GPU failed with `reason` (must be
  /// non-OK; defaults to kUnavailable) and tears down every in-flight flow
  /// touching its HBM, so counterpart GPUs see their copies fail too.
  /// Irreversible — a failed device never dispatches another op.
  void Fail(Status reason);
  bool failed() const { return !fail_status_.ok(); }
  const Status& fail_status() const { return fail_status_; }

  /// The device's fail-stop status, or the first sticky error on any of
  /// its streams. OK = healthy. Sort tasks poll this at phase barriers.
  Status FirstError() const;

  /// Clears sticky stream errors (a new job starting on this device must
  /// not inherit a previous job's copy failures). Does not clear a
  /// fail-stop device failure.
  void ResetStreamErrors();

 private:
  friend class internal::DeviceAllocation;
  Platform* platform_;
  int id_;
  double used_logical_bytes_ = 0;
  double reserved_logical_bytes_ = 0;
  std::vector<std::unique_ptr<Stream>> streams_;
  SimMutex in_engine_, out_engine_, local_engine_, compute_engine_;
  Status fail_status_;  // OK = healthy
};

struct PlatformOptions {
  /// Logical-to-actual scale factor (see DESIGN.md "Scale model"): buffers
  /// hold n/scale real elements, timings bill n logical elements.
  double scale = 1.0;
};

/// A simulated multi-GPU machine: topology + simulator + devices.
class Platform {
 public:
  static Result<std::unique_ptr<Platform>> Create(
      std::unique_ptr<topo::Topology> topology, PlatformOptions options = {});

  sim::Simulator& simulator() { return simulator_; }
  sim::FlowNetwork& network() { return network_; }
  const topo::Topology& topology() const { return *topology_; }
  /// Mutable topology access for runtime link mutation (fault injection):
  /// pair Topology::SetLinkBandwidthFactor / SetLinkUp with network().
  topo::Topology& mutable_topology() { return *topology_; }
  double scale() const { return options_.scale; }

  int num_devices() const { return static_cast<int>(devices_.size()); }
  Device& device(int id) { return *devices_.at(static_cast<std::size_t>(id)); }

  /// Fixed-duration modeled CPU work (e.g. a calibrated PARADIS run).
  sim::Task<void> CpuBusy(double seconds);

  /// Memory-bandwidth-bound CPU work on `socket` (the multiway merge):
  /// processes `logical_bytes` of output, consuming `amplification` bytes
  /// of memory traffic per output byte plus the CPU merge-engine budget
  /// (weighted by `engine_weight` >= 1 to model k-way degradation).
  /// Returns non-OK if the underlying flow was aborted (e.g. the memory
  /// bus was taken down by fault injection).
  sim::Task<Status> CpuMemoryWork(int socket, double logical_bytes,
                                  double amplification, double engine_weight);

  /// One spill transfer between host memory and NVMe device `nvme`
  /// (`write` stages onto the device; otherwise reads back). Bills
  /// `logical_bytes` across the membus and the nvme link; returns
  /// kUnavailable when the nvme link is down or taken down mid-flight
  /// (callers retry with backoff, like any faulted copy).
  sim::Task<Status> NvmeTransfer(int nvme, double logical_bytes, bool write);

  /// Runs `root` to completion on this platform's simulator and returns the
  /// simulated seconds it took.
  Result<double> Run(sim::Task<void> root);

  /// Attaches a trace recorder: every copy, kernel, and CPU phase records a
  /// span (see sim/trace.h). Pass nullptr to detach. Not owned.
  void SetTrace(sim::TraceRecorder* trace) { trace_ = trace; }
  sim::TraceRecorder* trace() const { return trace_; }

  /// Attaches a metrics registry: copies record per-direction byte/op
  /// counters and duration histograms, kernels record invocation histograms
  /// and per-GPU busy time, CPU phases record their own family (see
  /// obs/phase.h for the metric names). Pass nullptr to detach. Not owned.
  void SetMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches a fault oracle consulted when each copy's data movement
  /// completes (see FaultOracle). Pass nullptr to detach. Not owned.
  void SetFaultOracle(FaultOracle* oracle) { fault_oracle_ = oracle; }
  FaultOracle* fault_oracle() const { return fault_oracle_; }

  /// OK without an oracle; otherwise the oracle's verdict for this copy.
  Status ConsultCopyOracle(const CopyFaultContext& ctx);

 private:
  Platform(std::unique_ptr<topo::Topology> topology, PlatformOptions options)
      : topology_(std::move(topology)), options_(options) {}

  std::unique_ptr<topo::Topology> topology_;
  PlatformOptions options_;
  sim::Simulator simulator_;
  sim::FlowNetwork network_{&simulator_};
  std::vector<std::unique_ptr<Device>> devices_;
  sim::TraceRecorder* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  FaultOracle* fault_oracle_ = nullptr;
};

// ---------------------------------------------------------------------------
// inline / template implementations
// ---------------------------------------------------------------------------

template <typename T>
int DeviceBuffer<T>::device_id() const {
  return allocation_.device() ? allocation_.device()->id() : -1;
}

template <typename T>
Result<DeviceBuffer<T>> Device::Allocate(std::int64_t actual_count) {
  if (actual_count < 0) return Status::Invalid("negative allocation");
  const double bytes_actual =
      static_cast<double>(actual_count) * sizeof(T);
  const double bytes_logical = bytes_actual * platform_->scale();
  if (bytes_logical > memory_free()) {
    return Status::OutOfMemory(
        "device " + std::to_string(id_) + ": allocation of " +
        FormatBytes(bytes_logical) + " exceeds free " +
        FormatBytes(memory_free()));
  }
  return DeviceBuffer<T>(
      internal::DeviceAllocation(this,
                                 static_cast<std::int64_t>(bytes_actual)),
      actual_count);
}

template <typename T>
std::int64_t Device::MaxBufferElements(int num_buffers) const {
  const double per_buffer_logical =
      memory_free() / static_cast<double>(num_buffers);
  const double per_buffer_actual = per_buffer_logical / platform_->scale();
  return static_cast<std::int64_t>(per_buffer_actual / sizeof(T));
}

template <typename T>
void Stream::EnqueueCopy(topo::CopyKind kind, topo::Endpoint src_ep,
                         topo::Endpoint dst_ep, T* dst, const T* src,
                         std::int64_t count, double extra_weight,
                         SimMutex* engine, std::string track) {
  const double logical_bytes =
      static_cast<double>(count) * sizeof(T) * platform_->scale();
  auto* platform = platform_;
  auto* stream = this;
  std::string label = std::string(topo::CopyKindToString(kind)) + " " +
                      FormatBytes(logical_bytes);
  Enqueue([platform, stream, kind, src_ep, dst_ep, extra_weight,
           logical_bytes, dst, src, count, engine, track = std::move(track),
           label = std::move(label)]() -> sim::Task<void> {
    // Sticky-error semantics: an op on an errored stream, or touching a
    // failed device, is skipped (no functional effect, no simulated time).
    if (Status pre = stream->Preflight(src_ep, dst_ep); !pre.ok()) {
      stream->NoteCopyError(pre, kind, track);
      co_return;
    }
    // The route resolves at execution time, not enqueue time, so copies
    // issued before a fault pick up the post-fault topology (re-routing
    // around links that have since gone down).
    auto path_or = platform->topology().CopyPath(kind, src_ep, dst_ep);
    auto wire_or = platform->topology().CopyLatency(kind, src_ep, dst_ep);
    if (!path_or.ok() || !wire_or.ok()) {
      stream->NoteCopyError(
          !path_or.ok() ? path_or.status() : wire_or.status(), kind, track);
      co_return;
    }
    auto path = std::move(*path_or);
    if (extra_weight != 1.0) {
      for (auto& hop : path) hop.weight *= extra_weight;
    }
    const double latency = kCopyLaunchOverhead + *wire_or;
    co_await engine->Acquire();
    const double begin = platform->simulator().Now();
    // Snapshot the source as the DMA starts; materialize at completion.
    std::vector<T> staging(src, src + count);
    Status st = co_await platform->network().Transfer(logical_bytes,
                                                      std::move(path),
                                                      latency);
    if (st.ok()) {
      st = platform->ConsultCopyOracle(
          CopyFaultContext{kind, src_ep, dst_ep, logical_bytes});
    }
    if (st.ok()) std::copy(staging.begin(), staging.end(), dst);
    engine->Release();
    const double end = platform->simulator().Now();
    if (auto* trace = platform->trace()) {
      trace->AddSpan(track, st.ok() ? label : label + " [failed]", begin,
                     end);
    }
    if (st.ok() && platform->metrics() != nullptr) {
      auto* metrics = platform->metrics();
      // track is "GPU<id>:<direction>" (see the Memcpy*Async wrappers).
      const std::size_t colon = track.find(':');
      const std::string gpu = track.substr(3, colon - 3);
      const std::string direction = track.substr(colon + 1);
      const obs::Labels labels{{"gpu", gpu},
                               {"direction", direction},
                               {"kind", topo::CopyKindToString(kind)}};
      metrics
          ->GetCounter(obs::kCopyBytes, labels,
                       "Logical bytes moved by vgpu copy operations")
          .Add(logical_bytes);
      metrics
          ->GetCounter(obs::kCopyOps, labels,
                       "Completed vgpu copy operations")
          .Inc();
      metrics
          ->GetHistogram(obs::kCopySeconds,
                         {{"kind", topo::CopyKindToString(kind)}},
                         "Simulated duration of vgpu copy operations")
          .Observe(end - begin);
    }
    if (!st.ok()) stream->NoteCopyError(st, kind, track);
  });
}

template <typename T>
void Stream::MemcpyHtoDAsync(DeviceBuffer<T>& dst, std::int64_t dst_offset,
                             const HostBuffer<T>& src, std::int64_t src_offset,
                             std::int64_t count) {
  CheckOk(src_offset >= 0 && dst_offset >= 0 && count >= 0 &&
                  src_offset + count <= src.size() &&
                  dst_offset + count <= dst.size()
              ? Status::OK()
              : Status::Invalid("MemcpyHtoDAsync: range out of bounds"));
  EnqueueCopy(topo::CopyKind::kHostToDevice,
              topo::Endpoint::HostMemory(src.numa_node()),
              topo::Endpoint::Gpu(dst.device_id()), dst.data() + dst_offset,
              src.data() + src_offset, count,
              src.pinned() ? 1.0 : kPageableCopyWeight, &device_->in_engine(),
              "GPU" + std::to_string(device_->id()) + ":in");
}

template <typename T>
void Stream::MemcpyDtoHAsync(HostBuffer<T>& dst, std::int64_t dst_offset,
                             const DeviceBuffer<T>& src,
                             std::int64_t src_offset, std::int64_t count) {
  CheckOk(src_offset >= 0 && dst_offset >= 0 && count >= 0 &&
                  src_offset + count <= src.size() &&
                  dst_offset + count <= dst.size()
              ? Status::OK()
              : Status::Invalid("MemcpyDtoHAsync: range out of bounds"));
  EnqueueCopy(topo::CopyKind::kDeviceToHost,
              topo::Endpoint::Gpu(src.device_id()),
              topo::Endpoint::HostMemory(dst.numa_node()),
              dst.data() + dst_offset, src.data() + src_offset, count,
              dst.pinned() ? 1.0 : kPageableCopyWeight, &device_->out_engine(),
              "GPU" + std::to_string(device_->id()) + ":out");
}

template <typename T>
void Stream::MemcpyPeerAsync(DeviceBuffer<T>& dst, std::int64_t dst_offset,
                             const DeviceBuffer<T>& src,
                             std::int64_t src_offset, std::int64_t count) {
  CheckOk(src_offset >= 0 && dst_offset >= 0 && count >= 0 &&
                  src_offset + count <= src.size() &&
                  dst_offset + count <= dst.size() &&
                  src.device_id() != dst.device_id()
              ? Status::OK()
              : Status::Invalid("MemcpyPeerAsync: bad ranges or same device"));
  // P2P DMA is driven by the source GPU's copy engine.
  EnqueueCopy(topo::CopyKind::kPeerToPeer, topo::Endpoint::Gpu(src.device_id()),
              topo::Endpoint::Gpu(dst.device_id()), dst.data() + dst_offset,
              src.data() + src_offset, count, 1.0,
              &platform_->device(src.device_id()).out_engine(),
              "GPU" + std::to_string(src.device_id()) + ":out");
}

template <typename T>
void Stream::MemcpyDtoDAsync(DeviceBuffer<T>& dst, std::int64_t dst_offset,
                             const DeviceBuffer<T>& src,
                             std::int64_t src_offset, std::int64_t count) {
  CheckOk(src_offset >= 0 && dst_offset >= 0 && count >= 0 &&
                  src_offset + count <= src.size() &&
                  dst_offset + count <= dst.size() &&
                  src.device_id() == dst.device_id()
              ? Status::OK()
              : Status::Invalid("MemcpyDtoDAsync: bad ranges or devices"));
  EnqueueCopy(topo::CopyKind::kDeviceLocal, topo::Endpoint::Gpu(src.device_id()),
              topo::Endpoint::Gpu(dst.device_id()), dst.data() + dst_offset,
              src.data() + src_offset, count, 1.0, &device_->local_engine(),
              "GPU" + std::to_string(device_->id()) + ":local");
}

}  // namespace mgs::vgpu

#endif  // MGS_VGPU_PLATFORM_H_
