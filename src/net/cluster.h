// Multi-node cluster fabric: N instances of one single-node preset
// (src/topo/systems.h) wired into a shared topology through per-node
// RDMA-class NICs, per-rack leaf switches, and a spine with configurable
// cross-rack oversubscription. The whole fabric compiles into the same
// FlowNetwork as the intra-node links, so NVLink/PCIe flows and inter-node
// RDMA flows contend in one max-min settler — incast, stragglers, and
// spine congestion emerge from the flow model rather than being scripted.
//
// Link naming (all LinkKind::kInfiniband, usable in fault plans):
//   nic<i>    node i's NIC attach links (host side, and NVSwitch side on
//             presets with a GPU fabric). `link=nic2 down` severs node 2.
//   leaf<r>   the NIC->leaf downlinks of every node in rack r (the NIC
//             port itself: directed cap = NIC bandwidth, duplex-capped).
//             `link=leaf0 down` takes out rack 0's leaf switch.
//   spine<r>  rack r's leaf->spine uplink. Its capacity is
//             nodes_per_rack * nic_bandwidth / oversubscription, so
//             oversubscription > 1 makes cross-rack all-to-all incast-bound
//             on the spine.

#ifndef MGS_NET_CLUSTER_H_
#define MGS_NET_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "topo/systems.h"
#include "topo/topology.h"
#include "util/units.h"

namespace mgs::net {

struct ClusterOptions {
  /// Single-node preset appended per node ("ac922" | "delta-d22x" |
  /// "dgx-a100").
  std::string node_system = "dgx-a100";
  int nodes = 2;
  /// Nodes per rack (one leaf switch per rack; last rack may be partial).
  int nodes_per_rack = 2;
  /// Spine uplink capacity divisor: rack uplink carries
  /// nodes_per_rack * nic_bandwidth / oversubscription. 1 = full bisection.
  double oversubscription = 1.0;
  /// Per-direction effective NIC payload bandwidth (HDR InfiniBand-class,
  /// ~200 Gb/s raw => ~24 GB/s effective).
  double nic_bandwidth = 24 * kGB;
  /// Cap on the sum of both NIC directions (full duplex is slightly below
  /// 2x unidirectional on real HCAs).
  double nic_duplex_cap = 44 * kGB;
  double nic_latency = 1.3e-6;    // host/fabric -> NIC hop
  double leaf_latency = 3e-7;     // NIC -> leaf hop
  double spine_latency = 5e-7;    // leaf -> spine hop
};

/// Copyable description of a built cluster: where each node's sockets and
/// GPUs live in the shared topology, and the fabric link names.
class ClusterInfo {
 public:
  ClusterInfo() = default;
  ClusterInfo(ClusterOptions options,
              std::vector<topo::SystemNodeHandles> handles);

  int nodes() const { return static_cast<int>(handles_.size()); }
  int gpus_per_node() const { return gpus_per_node_; }
  int total_gpus() const { return nodes() * gpus_per_node_; }
  int racks() const { return racks_; }
  int nodes_per_rack() const { return options_.nodes_per_rack; }
  double oversubscription() const { return options_.oversubscription; }
  const ClusterOptions& options() const { return options_; }

  int NodeOfGpu(int gpu) const { return gpu / gpus_per_node_; }
  int RackOfNode(int node) const { return node / options_.nodes_per_rack; }
  int FirstGpu(int node) const { return handles_[node].first_gpu; }
  int FirstSocket(int node) const { return handles_[node].first_socket; }
  /// The node's GPU ids, in device order.
  std::vector<int> NodeGpus(int node) const;

  static std::string NicLinkName(int node);
  static std::string LeafLinkName(int rack);
  static std::string SpineLinkName(int rack);

 private:
  ClusterOptions options_;
  std::vector<topo::SystemNodeHandles> handles_;
  int gpus_per_node_ = 0;
  int racks_ = 0;
};

struct Cluster {
  std::unique_ptr<topo::Topology> topology;
  ClusterInfo info;
};

/// Builds the shared-topology cluster. The result's topology is not yet
/// compiled; hand it to vgpu::Platform::Create (which compiles it into the
/// platform's FlowNetwork) or Compile it into a bare network for route
/// probing. Single-rack clusters still get a spine uplink; it just never
/// carries traffic.
Result<Cluster> BuildCluster(const ClusterOptions& options);

}  // namespace mgs::net

#endif  // MGS_NET_CLUSTER_H_
