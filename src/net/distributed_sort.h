// Distributed multi-node sort over the cluster fabric (src/net/cluster.h):
// node-local P2P sort, sampled splitter selection, an RDMA-style all-to-all
// cross-node shuffle with a bounded per-NIC in-flight window, and a final
// node-local multiway merge.
//
// Phases (PhaseTracker algo "dist"):
//   htod        each node uploads its slice from node-local host memory
//   sort        per-GPU chunk sorts
//   local-merge per-node recursive P2P merge (reuses core::p2p_internal)
//   split       sampled splitters + per-node balanced binary search
//   shuffle     all-to-all fragment exchange; cross-node pieces acquire an
//               egress slot on the source NIC and an ingress slot on the
//               destination NIC, so incast presses on the bounded window
//               and the NIC/leaf/spine capacities — stragglers and spine
//               congestion emerge from the flow settler
//   merge       per-GPU iterative pairwise merge of the received runs
//   dtoh        download to node-local host staging
//
// Splitters use balanced equal-range splitting: each node clamps its
// lower/upper-bound range for a splitter toward the proportional position,
// so duplicate-heavy inputs still spread across destinations instead of
// funneling into one receiver. Shuffle transfers retry transient failures
// (injected copy errors, links down mid-flight) with deterministic
// exponential backoff; fail-stop device loss aborts the job as in the
// single-node paths.
//
// Input/output convention: `data` is the logical global array. The model
// treats it as pre-partitioned across node host memories (slice j staged in
// a host buffer on node j's first NUMA node) and re-assembles the sorted
// result functionally — only intra-node and fabric traffic is simulated,
// matching a distributed system whose data is born node-local.

#ifndef MGS_NET_DISTRIBUTED_SORT_H_
#define MGS_NET_DISTRIBUTED_SORT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/common.h"
#include "core/p2p_sort.h"
#include "gpusort/device_sort.h"
#include "net/cluster.h"
#include "obs/phase.h"
#include "sim/semaphore.h"
#include "vgpu/platform.h"

namespace mgs::net {

struct DistSortOptions {
  /// Node-local sort knobs (device_sort, pivot_policy). gpu_set is ignored;
  /// the node set below picks the devices.
  core::SortOptions local;
  /// Cluster nodes participating (indices into the ClusterInfo). Empty =
  /// all nodes.
  std::vector<int> node_set;
  /// Cross-node transfers concurrently in flight per NIC, each direction
  /// (the RDMA queue-depth analogue; shuffle incast presses on this window
  /// before it presses on the wire).
  int max_inflight_per_nic = 4;
  /// Receive-buffer headroom over the perfectly-balanced share. Partition
  /// skew beyond this fails the job with kOutOfMemory.
  double skew_slack = 1.5;
  /// Splitter sample keys taken per GPU chunk.
  int samples_per_gpu = 64;
  /// Transient shuffle-transfer failures retried per piece before the job
  /// fails; backoff doubles from `retry_backoff_seconds` (capped at 64x).
  int max_transfer_retries = 10;
  double retry_backoff_seconds = 0.02;
};

namespace dist_internal {

/// One contiguous shuffle transfer: never crosses a source-chunk boundary,
/// lands in the destination GPU's receive buffer.
struct Piece {
  int src_chunk = 0;
  int dst_chunk = 0;
  std::int64_t src_off = 0;
  std::int64_t dst_off = 0;
  std::int64_t len = 0;
  int src_node = 0;  // node_set-relative indices
  int dst_node = 0;
};

}  // namespace dist_internal

/// Reentrant coroutine form (the sched server runs dist jobs this way; see
/// core::P2pSortTask for the contract). Device buffers are allocated
/// eagerly before the first suspension point. On completion `*out` holds
/// the stats or the error.
template <typename T>
sim::Task<void> DistributedSortTask(vgpu::Platform* platform,
                                    const ClusterInfo& cluster,
                                    vgpu::HostBuffer<T>* data,
                                    DistSortOptions options,
                                    Result<core::SortStats>* out) {
  using core::p2p_internal::Chunk;
  using core::p2p_internal::ChunksHealth;
  using core::p2p_internal::MergeContext;
  using dist_internal::Piece;

  std::vector<int> node_set = options.node_set;
  if (node_set.empty()) {
    for (int i = 0; i < cluster.nodes(); ++i) node_set.push_back(i);
  }
  const int num_nodes = static_cast<int>(node_set.size());
  const int g = cluster.gpus_per_node();
  for (int node : node_set) {
    if (node < 0 || node >= cluster.nodes()) {
      *out = Status::Invalid("no such cluster node: " + std::to_string(node));
      co_return;
    }
  }
  if (g < 1 || (g & (g - 1)) != 0) {
    *out = Status::Invalid(
        "distributed sort requires a power-of-two GPU count per node, got " +
        std::to_string(g));
    co_return;
  }
  const int total_gpus = num_nodes * g;

  const std::int64_t n = data->size();
  core::SortStats stats;
  stats.algorithm = "DIST sort";
  stats.num_gpus = total_gpus;
  stats.nodes = num_nodes;
  stats.keys = static_cast<std::int64_t>(
      static_cast<double>(n) * platform->scale());
  if (n == 0) {
    *out = std::move(stats);
    co_return;
  }

  // Node slices and chunk geometry. Node j (node_set order) owns the
  // logical range [j*n_node, min(n, (j+1)*n_node)); its GPUs each hold one
  // m-element chunk, sentinel-padded past the slice end.
  const std::int64_t n_node = (n + num_nodes - 1) / num_nodes;
  const std::int64_t m = (n_node + g - 1) / g;
  std::vector<std::int64_t> valid(static_cast<std::size_t>(num_nodes));
  for (int j = 0; j < num_nodes; ++j) {
    const std::int64_t begin = static_cast<std::int64_t>(j) * n_node;
    valid[static_cast<std::size_t>(j)] =
        std::max<std::int64_t>(0, std::min(n_node, n - begin));
  }
  // Receive capacity: balanced share plus skew slack.
  const std::int64_t avg = (n + total_gpus - 1) / total_gpus;
  const std::int64_t recv_cap = std::max<std::int64_t>(
      16, static_cast<std::int64_t>(options.skew_slack *
                                    static_cast<double>(avg)) + 16);

  // Eager allocation: chunks in node-major order (chunk j*g + k = node j's
  // k-th GPU) plus per-chunk receive ping-pong buffers.
  std::vector<Chunk<T>> chunks(static_cast<std::size_t>(total_gpus));
  std::vector<vgpu::DeviceBuffer<T>> recv(
      static_cast<std::size_t>(total_gpus));
  std::vector<vgpu::DeviceBuffer<T>> recv_aux(
      static_cast<std::size_t>(total_gpus));
  for (int q = 0; q < total_gpus; ++q) {
    const int node = node_set[static_cast<std::size_t>(q / g)];
    const int gpu = cluster.FirstGpu(node) + q % g;
    auto& chunk = chunks[static_cast<std::size_t>(q)];
    chunk.device = &platform->device(gpu);
    if (chunk.device->failed()) {
      *out = chunk.device->fail_status();
      co_return;
    }
    chunk.device->ResetStreamErrors();
    auto primary = chunk.device->template Allocate<T>(m);
    if (!primary.ok()) {
      *out = primary.status();
      co_return;
    }
    chunk.primary = std::move(*primary);
    auto aux = chunk.device->template Allocate<T>(m);
    if (!aux.ok()) {
      *out = aux.status();
      co_return;
    }
    chunk.aux = std::move(*aux);
    auto rx = chunk.device->template Allocate<T>(recv_cap);
    if (!rx.ok()) {
      *out = rx.status();
      co_return;
    }
    recv[static_cast<std::size_t>(q)] = std::move(*rx);
    auto rx_aux = chunk.device->template Allocate<T>(recv_cap);
    if (!rx_aux.ok()) {
      *out = rx_aux.status();
      co_return;
    }
    recv_aux[static_cast<std::size_t>(q)] = std::move(*rx_aux);
  }

  // Node-local host staging for the input slices (pinned, on the node's
  // first NUMA socket). Populating it from `data` is functional-only: the
  // slice is born node-local.
  std::vector<vgpu::HostBuffer<T>> in_stage;
  in_stage.reserve(static_cast<std::size_t>(num_nodes));
  for (int j = 0; j < num_nodes; ++j) {
    const std::int64_t begin = static_cast<std::int64_t>(j) * n_node;
    const std::int64_t len = valid[static_cast<std::size_t>(j)];
    std::vector<T> slice(data->data() + begin, data->data() + begin + len);
    in_stage.emplace_back(std::move(slice),
                          cluster.FirstSocket(node_set[
                              static_cast<std::size_t>(j)]),
                          /*pinned=*/true);
  }

  obs::PhaseTracker phase_metrics(platform->metrics(), &platform->network(),
                                  &platform->topology(), "dist");
  const double t0 = platform->simulator().Now();
  phase_metrics.StartPhase("htod", t0);

  // ---- htod: upload each node slice; sentinel-pad past the slice end.
  auto upload = [&](int q) -> sim::Task<void> {
    auto& chunk = chunks[static_cast<std::size_t>(q)];
    const int j = q / g;
    const std::int64_t begin = static_cast<std::int64_t>(q % g) * m;
    const std::int64_t count = std::max<std::int64_t>(
        0,
        std::min(m, valid[static_cast<std::size_t>(j)] - begin));
    auto& stream = chunk.device->stream(0);
    if (count > 0) {
      stream.MemcpyHtoDAsync(chunk.primary, 0,
                             in_stage[static_cast<std::size_t>(j)], begin,
                             count);
    }
    if (count < m) {
      T* pad_begin = chunk.primary.data() + count;
      const std::int64_t pad = m - count;
      const double fill_time = static_cast<double>(pad) * sizeof(T) *
                               platform->scale() /
                               chunk.device->spec().memory_bandwidth;
      stream.LaunchAsync(
          fill_time,
          [pad_begin, pad] {
            std::fill(pad_begin, pad_begin + pad,
                      core::SortableLimits<T>::Max());
          },
          "pad-fill");
    }
    co_await stream.Synchronize();
  };
  {
    std::vector<sim::JoinerPtr> joins;
    for (int q = 0; q < total_gpus; ++q) joins.push_back(sim::Spawn(upload(q)));
    co_await sim::WhenAll(std::move(joins));
  }
  if (Status st = ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  const double t_htod = platform->simulator().Now();
  phase_metrics.StartPhase("sort", t_htod);

  // ---- sort: per-GPU chunk sorts.
  auto sort_chunk = [&](int q) -> sim::Task<void> {
    auto& chunk = chunks[static_cast<std::size_t>(q)];
    auto& stream = chunk.device->stream(0);
    gpusort::SortAsync(stream, chunk.primary, 0, m, chunk.aux,
                       options.local.device_sort);
    co_await stream.Synchronize();
  };
  {
    std::vector<sim::JoinerPtr> joins;
    for (int q = 0; q < total_gpus; ++q) {
      joins.push_back(sim::Spawn(sort_chunk(q)));
    }
    co_await sim::WhenAll(std::move(joins));
  }
  if (Status st = ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  const double t_sort = platform->simulator().Now();
  phase_metrics.StartPhase("local-merge", t_sort);

  // ---- local-merge: each node's g chunks into one node-sorted run,
  // reusing the single-node recursive P2P merge (nodes run concurrently;
  // their NVLink traffic contends only inside each node).
  MergeContext<T> merge_ctx{platform, &chunks, m, &stats,
                            options.local.pivot_policy};
  {
    std::vector<sim::JoinerPtr> joins;
    for (int j = 0; j < num_nodes; ++j) {
      joins.push_back(
          sim::Spawn(core::p2p_internal::MergeChunks(merge_ctx, j * g,
                                                     (j + 1) * g)));
    }
    co_await sim::WhenAll(std::move(joins));
  }
  if (Status st = ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  const double t_local_merge = platform->simulator().Now();
  phase_metrics.StartPhase("split", t_local_merge);

  // ---- split: sample each node's sorted slice, pick global splitters at
  // even quantiles, then binary-search per-node cut positions with
  // balanced equal-range splitting (duplicates spread proportionally).
  // Reads model RDMA gather/binary-search accesses, charged per node.
  const auto node_read = [&](int j, std::int64_t pos) -> T {
    return chunks[static_cast<std::size_t>(j * g + static_cast<int>(pos / m))]
        .primary[pos % m];
  };
  std::vector<T> samples;
  std::vector<std::int64_t> split_reads(static_cast<std::size_t>(num_nodes),
                                        0);
  for (int j = 0; j < num_nodes; ++j) {
    const std::int64_t vj = valid[static_cast<std::size_t>(j)];
    if (vj == 0) continue;
    const std::int64_t sj = std::min<std::int64_t>(
        vj, static_cast<std::int64_t>(options.samples_per_gpu) * g);
    for (std::int64_t s = 0; s < sj; ++s) {
      const std::int64_t pos = (2 * s + 1) * vj / (2 * sj);
      samples.push_back(node_read(j, std::min(pos, vj - 1)));
      split_reads[static_cast<std::size_t>(j)] += 1;
    }
  }
  std::sort(samples.begin(), samples.end());
  std::vector<T> splitters;
  for (int t = 1; t < total_gpus; ++t) {
    const std::size_t idx = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(t) * samples.size() /
            static_cast<std::size_t>(total_gpus));
    splitters.push_back(samples[idx]);
  }

  // cut[j][t] = first position of node j's slice belonging to destination
  // >= t; cut[j][0] = 0, cut[j][total_gpus] = valid[j].
  std::vector<std::vector<std::int64_t>> cut(
      static_cast<std::size_t>(num_nodes),
      std::vector<std::int64_t>(static_cast<std::size_t>(total_gpus) + 1, 0));
  const auto bound = [&](int j, const T& key, bool upper) -> std::int64_t {
    std::int64_t lo = 0, hi = valid[static_cast<std::size_t>(j)];
    while (lo < hi) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      const T v = node_read(j, mid);
      split_reads[static_cast<std::size_t>(j)] += 1;
      if (upper ? !(key < v) : v < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  for (int j = 0; j < num_nodes; ++j) {
    const std::int64_t vj = valid[static_cast<std::size_t>(j)];
    auto& cj = cut[static_cast<std::size_t>(j)];
    cj[static_cast<std::size_t>(total_gpus)] = vj;
    for (int t = 1; t < total_gpus; ++t) {
      const T& key = splitters[static_cast<std::size_t>(t - 1)];
      const std::int64_t lo = bound(j, key, /*upper=*/false);
      const std::int64_t hi = bound(j, key, /*upper=*/true);
      // Balanced equal-range split: clamp the proportional position into
      // the run of duplicates (any point inside keeps the global order).
      const std::int64_t target =
          static_cast<std::int64_t>(t) * vj / total_gpus;
      cj[static_cast<std::size_t>(t)] = std::clamp(target, lo, hi);
    }
    // Cuts must be monotone even when clamping fought the duplicates.
    for (int t = 1; t <= total_gpus; ++t) {
      cj[static_cast<std::size_t>(t)] = std::max(
          cj[static_cast<std::size_t>(t)], cj[static_cast<std::size_t>(t - 1)]);
    }
  }
  {
    std::vector<sim::JoinerPtr> joins;
    for (int j = 0; j < num_nodes; ++j) {
      const double cost =
          static_cast<double>(split_reads[static_cast<std::size_t>(j)]) *
          core::kPivotRemoteReadLatency;
      stats.pivot_seconds += cost;
      joins.push_back(sim::Spawn([](vgpu::Platform* p,
                                    double c) -> sim::Task<void> {
        co_await sim::Delay{p->simulator(), c};
      }(platform, cost)));
    }
    co_await sim::WhenAll(std::move(joins));
  }

  // Destination run layout: dest GPU q receives run j (from node j) at
  // run_off[q][j]; check the slack headroom before moving a byte.
  std::vector<std::int64_t> recv_len(static_cast<std::size_t>(total_gpus), 0);
  std::vector<std::vector<std::int64_t>> run_off(
      static_cast<std::size_t>(total_gpus),
      std::vector<std::int64_t>(static_cast<std::size_t>(num_nodes), 0));
  for (int q = 0; q < total_gpus; ++q) {
    std::int64_t off = 0;
    for (int j = 0; j < num_nodes; ++j) {
      run_off[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)] = off;
      off += cut[static_cast<std::size_t>(j)][static_cast<std::size_t>(q + 1)] -
             cut[static_cast<std::size_t>(j)][static_cast<std::size_t>(q)];
    }
    recv_len[static_cast<std::size_t>(q)] = off;
    if (off > recv_cap) {
      *out = Status::OutOfMemory(
          "partition skew overflows the receive buffer of destination GPU " +
          std::to_string(q) + " (" + std::to_string(off) + " > " +
          std::to_string(recv_cap) +
          " elements); raise DistSortOptions::skew_slack");
      co_return;
    }
  }
  const double t_split = platform->simulator().Now();
  phase_metrics.StartPhase("shuffle", t_split);

  // ---- shuffle: all-to-all fragment exchange, split at source-chunk
  // boundaries. Cross-node pieces hold one egress slot on the source NIC
  // and one ingress slot on the destination NIC for the whole transfer
  // (including retries), bounding the in-flight window per HCA.
  std::vector<Piece> pieces;
  for (int j = 0; j < num_nodes; ++j) {
    for (int q = 0; q < total_gpus; ++q) {
      std::int64_t lo = cut[static_cast<std::size_t>(j)][
          static_cast<std::size_t>(q)];
      const std::int64_t hi = cut[static_cast<std::size_t>(j)][
          static_cast<std::size_t>(q + 1)];
      std::int64_t dst_off = run_off[static_cast<std::size_t>(q)][
          static_cast<std::size_t>(j)];
      while (lo < hi) {
        const std::int64_t chunk_end = (lo / m + 1) * m;
        const std::int64_t len = std::min(hi, chunk_end) - lo;
        Piece piece;
        piece.src_chunk = j * g + static_cast<int>(lo / m);
        piece.dst_chunk = q;
        piece.src_off = lo % m;
        piece.dst_off = dst_off;
        piece.len = len;
        piece.src_node = j;
        piece.dst_node = q / g;
        pieces.push_back(piece);
        lo += len;
        dst_off += len;
      }
    }
  }

  std::vector<std::unique_ptr<sim::Semaphore>> egress;
  std::vector<std::unique_ptr<sim::Semaphore>> ingress;
  for (int j = 0; j < num_nodes; ++j) {
    egress.push_back(
        std::make_unique<sim::Semaphore>(options.max_inflight_per_nic));
    ingress.push_back(
        std::make_unique<sim::Semaphore>(options.max_inflight_per_nic));
  }
  // Dedicated stream per piece (ids from 2; 0 and 1 belong to the sort and
  // merge stages), assigned in deterministic spawn order.
  std::vector<int> next_stream(static_cast<std::size_t>(
                                   platform->num_devices()),
                               2);
  Status shuffle_error = Status::OK();

  auto shuffle_piece = [&](Piece piece, int stream_id) -> sim::Task<void> {
    auto& src = chunks[static_cast<std::size_t>(piece.src_chunk)];
    auto& dst = chunks[static_cast<std::size_t>(piece.dst_chunk)];
    auto& dst_recv = recv[static_cast<std::size_t>(piece.dst_chunk)];
    const bool cross_node = piece.src_node != piece.dst_node;
    if (!shuffle_error.ok()) co_return;  // fail fast, skip the window
    if (cross_node) {
      co_await egress[static_cast<std::size_t>(piece.src_node)]->Acquire();
      co_await ingress[static_cast<std::size_t>(piece.dst_node)]->Acquire();
    }
    const double bytes =
        static_cast<double>(piece.len) * sizeof(T) * platform->scale();
    stats.shuffle_bytes += bytes;
    if (cross_node) stats.cross_node_bytes += bytes;

    Status last = Status::OK();
    for (int attempt = 0;; ++attempt) {
      if (!shuffle_error.ok()) break;
      auto& stream = src.device->stream(stream_id);
      if (src.device == dst.device) {
        stream.MemcpyDtoDAsync(dst_recv, piece.dst_off, src.primary,
                               piece.src_off, piece.len);
      } else {
        stream.MemcpyPeerAsync(dst_recv, piece.dst_off, src.primary,
                               piece.src_off, piece.len);
      }
      co_await stream.Synchronize();
      last = stream.status();
      if (last.ok()) break;
      // Fail-stop device loss is permanent; everything else (injected copy
      // errors, a link down mid-flight) is worth retrying after backoff.
      if (src.device->failed() || dst.device->failed()) break;
      if (attempt >= options.max_transfer_retries) break;
      stream.ResetStatus();
      const double backoff =
          options.retry_backoff_seconds *
          static_cast<double>(std::int64_t{1} << std::min(attempt, 6));
      co_await sim::Delay{platform->simulator(), backoff};
    }
    if (cross_node) {
      ingress[static_cast<std::size_t>(piece.dst_node)]->Release();
      egress[static_cast<std::size_t>(piece.src_node)]->Release();
    }
    if (!last.ok() && shuffle_error.ok()) shuffle_error = last;
  };
  {
    std::vector<sim::JoinerPtr> joins;
    for (const Piece& piece : pieces) {
      const int dev =
          chunks[static_cast<std::size_t>(piece.src_chunk)].device->id();
      joins.push_back(sim::Spawn(
          shuffle_piece(piece,
                        next_stream[static_cast<std::size_t>(dev)]++)));
    }
    co_await sim::WhenAll(std::move(joins));
  }
  if (!shuffle_error.ok()) {
    *out = shuffle_error;
    co_return;
  }
  if (Status st = ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  const double t_shuffle = platform->simulator().Now();
  phase_metrics.StartPhase("merge", t_shuffle);

  // ---- merge: per destination GPU, iterative pairwise merge of its
  // received runs, ping-ponging between recv and recv_aux.
  std::vector<vgpu::DeviceBuffer<T>*> final_buf(
      static_cast<std::size_t>(total_gpus), nullptr);
  std::vector<std::int64_t> final_off(static_cast<std::size_t>(total_gpus),
                                      0);
  auto merge_dest = [&](int q) -> sim::Task<void> {
    auto& chunk = chunks[static_cast<std::size_t>(q)];
    std::vector<std::pair<std::int64_t, std::int64_t>> runs;  // (off, len)
    for (int j = 0; j < num_nodes; ++j) {
      const std::int64_t len =
          cut[static_cast<std::size_t>(j)][static_cast<std::size_t>(q + 1)] -
          cut[static_cast<std::size_t>(j)][static_cast<std::size_t>(q)];
      if (len > 0) {
        runs.emplace_back(run_off[static_cast<std::size_t>(q)][
                              static_cast<std::size_t>(j)],
                          len);
      }
    }
    vgpu::DeviceBuffer<T>* cur = &recv[static_cast<std::size_t>(q)];
    vgpu::DeviceBuffer<T>* other = &recv_aux[static_cast<std::size_t>(q)];
    while (runs.size() > 1) {
      std::vector<std::pair<std::int64_t, std::int64_t>> next;
      std::int64_t out_off = 0;
      std::size_t i = 0;
      for (; i + 1 < runs.size(); i += 2) {
        gpusort::MergeLocalAsync(chunk.device->stream(0), *other, out_off,
                                 *cur, runs[i].first, runs[i].second,
                                 runs[i + 1].first, runs[i + 1].second);
        next.emplace_back(out_off, runs[i].second + runs[i + 1].second);
        out_off += runs[i].second + runs[i + 1].second;
      }
      if (i < runs.size()) {  // odd run out: carry it over device-locally
        chunk.device->stream(1).MemcpyDtoDAsync(*other, out_off, *cur,
                                                runs[i].first,
                                                runs[i].second);
        next.emplace_back(out_off, runs[i].second);
      }
      co_await chunk.device->stream(0).Synchronize();
      co_await chunk.device->stream(1).Synchronize();
      std::swap(cur, other);
      runs = std::move(next);
    }
    final_buf[static_cast<std::size_t>(q)] = cur;
    final_off[static_cast<std::size_t>(q)] =
        runs.empty() ? 0 : runs.front().first;
  };
  {
    std::vector<sim::JoinerPtr> joins;
    for (int q = 0; q < total_gpus; ++q) {
      joins.push_back(sim::Spawn(merge_dest(q)));
    }
    co_await sim::WhenAll(std::move(joins));
  }
  if (Status st = ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  const double t_merge = platform->simulator().Now();
  phase_metrics.StartPhase("dtoh", t_merge);

  // ---- dtoh: download to node-local host staging, then assemble the
  // global array functionally (destination ranges are contiguous in q).
  std::vector<std::int64_t> out_begin(static_cast<std::size_t>(total_gpus) +
                                      1,
                                      0);
  for (int q = 0; q < total_gpus; ++q) {
    out_begin[static_cast<std::size_t>(q) + 1] =
        out_begin[static_cast<std::size_t>(q)] +
        recv_len[static_cast<std::size_t>(q)];
  }
  std::vector<vgpu::HostBuffer<T>> out_stage;
  out_stage.reserve(static_cast<std::size_t>(num_nodes));
  for (int j = 0; j < num_nodes; ++j) {
    const std::int64_t len = out_begin[static_cast<std::size_t>((j + 1) * g)] -
                             out_begin[static_cast<std::size_t>(j * g)];
    out_stage.emplace_back(len,
                           cluster.FirstSocket(node_set[
                               static_cast<std::size_t>(j)]),
                           /*pinned=*/true);
  }
  auto download = [&](int q) -> sim::Task<void> {
    auto& chunk = chunks[static_cast<std::size_t>(q)];
    const std::int64_t len = recv_len[static_cast<std::size_t>(q)];
    if (len == 0) co_return;
    const int j = q / g;
    const std::int64_t local_off = out_begin[static_cast<std::size_t>(q)] -
                                   out_begin[static_cast<std::size_t>(j * g)];
    auto& stream = chunk.device->stream(0);
    stream.MemcpyDtoHAsync(out_stage[static_cast<std::size_t>(j)], local_off,
                           *final_buf[static_cast<std::size_t>(q)],
                           final_off[static_cast<std::size_t>(q)], len);
    co_await stream.Synchronize();
  };
  {
    std::vector<sim::JoinerPtr> joins;
    for (int q = 0; q < total_gpus; ++q) {
      joins.push_back(sim::Spawn(download(q)));
    }
    co_await sim::WhenAll(std::move(joins));
  }
  if (Status st = ChunksHealth(chunks); !st.ok()) {
    *out = st;
    co_return;
  }
  for (int j = 0; j < num_nodes; ++j) {
    const auto& stage = out_stage[static_cast<std::size_t>(j)];
    std::copy(stage.data(), stage.data() + stage.size(),
              data->data() + out_begin[static_cast<std::size_t>(j * g)]);
  }

  phase_metrics.Finish(platform->simulator().Now());
  stats.total_seconds = platform->simulator().Now() - t0;
  stats.phases.htod = t_htod - t0;
  stats.phases.sort = t_local_merge - t_htod;  // chunk sorts + local merge
  stats.phases.merge = t_merge - t_local_merge;  // split + shuffle + merge
  stats.phases.dtoh = t0 + stats.total_seconds - t_merge;
  *out = std::move(stats);
}

/// Blocking wrapper: drives the platform's simulator to completion.
template <typename T>
Result<core::SortStats> DistributedSort(vgpu::Platform* platform,
                                        const ClusterInfo& cluster,
                                        vgpu::HostBuffer<T>* data,
                                        const DistSortOptions& options) {
  Result<core::SortStats> out =
      Status::Internal("distributed sort task never ran");
  MGS_RETURN_IF_ERROR(
      platform->Run(DistributedSortTask(platform, cluster, data, options,
                                        &out))
          .status());
  return out;
}

}  // namespace mgs::net

#endif  // MGS_NET_DISTRIBUTED_SORT_H_
