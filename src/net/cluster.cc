#include "net/cluster.h"

#include <utility>

namespace mgs::net {

ClusterInfo::ClusterInfo(ClusterOptions options,
                         std::vector<topo::SystemNodeHandles> handles)
    : options_(std::move(options)), handles_(std::move(handles)) {
  if (!handles_.empty()) gpus_per_node_ = handles_.front().num_gpus;
  racks_ = (nodes() + options_.nodes_per_rack - 1) / options_.nodes_per_rack;
}

std::vector<int> ClusterInfo::NodeGpus(int node) const {
  std::vector<int> gpus;
  gpus.reserve(static_cast<std::size_t>(gpus_per_node_));
  for (int k = 0; k < gpus_per_node_; ++k) {
    gpus.push_back(handles_[static_cast<std::size_t>(node)].first_gpu + k);
  }
  return gpus;
}

std::string ClusterInfo::NicLinkName(int node) {
  return "nic" + std::to_string(node);
}

std::string ClusterInfo::LeafLinkName(int rack) {
  return "leaf" + std::to_string(rack);
}

std::string ClusterInfo::SpineLinkName(int rack) {
  return "spine" + std::to_string(rack);
}

Result<Cluster> BuildCluster(const ClusterOptions& options) {
  if (options.nodes < 1) return Status::Invalid("cluster needs >= 1 node");
  if (options.nodes_per_rack < 1) {
    return Status::Invalid("nodes_per_rack must be >= 1");
  }
  if (options.oversubscription < 1.0) {
    return Status::Invalid(
        "oversubscription must be >= 1 (1 = full bisection bandwidth)");
  }
  if (options.nic_bandwidth <= 0) {
    return Status::Invalid("nic_bandwidth must be positive");
  }

  auto topology = std::make_unique<topo::Topology>(
      options.node_system + " x" + std::to_string(options.nodes) +
      " cluster");
  std::vector<topo::SystemNodeHandles> handles;
  handles.reserve(static_cast<std::size_t>(options.nodes));
  for (int i = 0; i < options.nodes; ++i) {
    auto node = topo::AppendSystemNode(topology.get(), options.node_system);
    MGS_RETURN_IF_ERROR(node.status());
    handles.push_back(*node);
  }
  ClusterInfo info(options, handles);

  // Spine and one leaf switch per rack. The uplink capacity encodes the
  // oversubscription ratio; leaving it un-duplex-capped models a
  // full-duplex switch port pair.
  const topo::NodeId spine = topology->AddSwitch("spine");
  std::vector<topo::NodeId> leaves;
  for (int r = 0; r < info.racks(); ++r) {
    const topo::NodeId leaf =
        topology->AddSwitch("leaf-sw" + std::to_string(r));
    topo::LinkSpec up;
    up.name = ClusterInfo::SpineLinkName(r);
    up.kind = topo::LinkKind::kInfiniband;
    up.cap_ab = options.nodes_per_rack * options.nic_bandwidth /
                options.oversubscription;
    up.latency = options.spine_latency;
    MGS_RETURN_IF_ERROR(topology->Connect(leaf, spine, up));
    leaves.push_back(leaf);
  }

  // Per-node NIC: attach links from the host (and, where the preset has
  // one, the GPU fabric switch — the GPUDirect-style path that bypasses
  // the CPU), then the NIC port itself as the leaf downlink. The port link
  // carries the duplex cap: send + receive share the HCA.
  for (int i = 0; i < info.nodes(); ++i) {
    const auto& h = handles[static_cast<std::size_t>(i)];
    const topo::NodeId nic =
        topology->AddSwitch("nic-sw" + std::to_string(i));
    topo::LinkSpec attach;
    attach.name = ClusterInfo::NicLinkName(i);
    attach.kind = topo::LinkKind::kInfiniband;
    attach.cap_ab = options.nic_bandwidth;
    attach.latency = options.nic_latency;
    MGS_RETURN_IF_ERROR(topology->Connect(h.host_attach, nic, attach));
    if (h.fabric_attach != topo::kInvalidNode) {
      MGS_RETURN_IF_ERROR(topology->Connect(h.fabric_attach, nic, attach));
    }

    topo::LinkSpec port;
    port.name = ClusterInfo::LeafLinkName(info.RackOfNode(i));
    port.kind = topo::LinkKind::kInfiniband;
    port.cap_ab = options.nic_bandwidth;
    port.duplex_cap = options.nic_duplex_cap;
    port.latency = options.leaf_latency;
    MGS_RETURN_IF_ERROR(topology->Connect(
        nic, leaves[static_cast<std::size_t>(info.RackOfNode(i))], port));
  }

  return Cluster{std::move(topology), std::move(info)};
}

}  // namespace mgs::net
