// The three evaluated hardware platforms (Table 1), as calibrated
// topologies.

#ifndef MGS_TOPO_SYSTEMS_H_
#define MGS_TOPO_SYSTEMS_H_

#include <memory>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace mgs::topo {

/// IBM Power System AC922: 2x POWER9, 4x V100, NVLink 2.0 CPU-GPU and P2P
/// (pairs (0,1) and (2,3)), X-Bus CPU-CPU (Table 1a).
std::unique_ptr<Topology> MakeAc922();

/// DELTA System D22x M4 PS: 2x Xeon Gold 6148, 4x V100, PCIe 3.0 CPU-GPU
/// (one switch per GPU), NVLink 2.0 P2P partial mesh (0-1, 0-2, 2-3 double;
/// 1-3 single), UPI CPU-CPU (Table 1b).
std::unique_ptr<Topology> MakeDeltaD22x();

/// NVIDIA DGX A100: 2x EPYC 7742, 8x A100, PCIe 4.0 CPU-GPU (one switch per
/// GPU *pair*), NVLink 3.0 NVSwitch all-to-all P2P, Infinity Fabric CPU-CPU
/// (Table 1c).
std::unique_ptr<Topology> MakeDgxA100();

/// Names accepted by MakeSystem.
std::vector<std::string> SystemNames();

/// Builds a preset by name ("ac922", "delta-d22x", "dgx-a100").
Result<std::unique_ptr<Topology>> MakeSystem(const std::string& name);

/// Where one appended node's resources live in a shared topology, and where
/// a cluster NIC plugs in (src/net builds N-node clusters by appending the
/// same preset N times and wiring NICs to these attach points).
struct SystemNodeHandles {
  int first_socket = 0;
  int num_sockets = 0;
  int first_gpu = 0;
  int num_gpus = 0;
  /// Host-side NIC attach point: the node's first CPU socket node.
  NodeId host_attach = kInvalidNode;
  /// Switch-side attach point (the DGX NVSwitch) for GPUDirect-RDMA-style
  /// paths that bypass the host CPU; kInvalidNode when the preset has no
  /// such fabric.
  NodeId fabric_attach = kInvalidNode;
};

/// Appends one instance of the named preset ("ac922" | "delta-d22x" |
/// "dgx-a100") to an existing topology. Sockets, memories, and GPUs number
/// globally in append order; internal switch names are suffixed so repeated
/// appends stay unambiguous. The topology's CpuSpec is overwritten with the
/// preset's (homogeneous clusters only). The first append into an empty
/// topology produces exactly the single-node preset graph.
Result<SystemNodeHandles> AppendSystemNode(Topology* topo,
                                           const std::string& name);

}  // namespace mgs::topo

#endif  // MGS_TOPO_SYSTEMS_H_
