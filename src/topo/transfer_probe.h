// Flow-level transfer benchmarking: reproduces the paper's Section 4
// methodology (serial / parallel / bidirectional copy scenarios, aggregate
// throughput = total bytes / makespan).

#ifndef MGS_TOPO_TRANSFER_PROBE_H_
#define MGS_TOPO_TRANSFER_PROBE_H_

#include <memory>
#include <vector>

#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace mgs::topo {

/// One copy in a scenario.
struct TransferOp {
  CopyKind kind;
  Endpoint src;
  Endpoint dst;
  double bytes;
};

/// Scenario outcome. The paper reports aggregate throughput: all ops start
/// together; throughput = sum(bytes) / time of last completion.
struct ProbeResult {
  double makespan_seconds = 0;
  double aggregate_throughput = 0;          // bytes/s
  std::vector<double> op_durations;         // per op, seconds
  /// Ops whose flow was torn down instead of delivered (a link went down or
  /// a device failed mid-scenario). Their op_durations entry records the
  /// abort instant, not a delivery time.
  int failed_ops = 0;
  /// The saturated resource over the scenario and its utilization in
  /// [0, 1] (identifies *why* a scenario is slow: "xbus=", "pcie-up=",
  /// host memory, ...). Utilization is measured against the window opened
  /// by the probe's own ResetTraffic() at scenario start — the contract
  /// FlowNetwork::BusiestResource requires to stay within [0, 1].
  std::string bottleneck;
  double bottleneck_utilization = 0;
};

/// Owns a topology compiled into a private simulator + flow network and
/// runs copy scenarios against it.
class TransferProbe {
 public:
  /// Compiles `topology`; dies on modeling errors (presets are validated).
  explicit TransferProbe(std::unique_ptr<Topology> topology);

  const Topology& topology() const { return *topology_; }

  /// Runs all ops concurrently from a common start instant.
  Result<ProbeResult> Run(const std::vector<TransferOp>& ops);

  // -- scenario builders matching the paper's experiments -----------------

  /// Serial HtoD / DtoH copy of `bytes` between NUMA node 0 and one GPU.
  static TransferOp HtoD(int gpu, double bytes, int numa = 0);
  static TransferOp DtoH(int gpu, double bytes, int numa = 0);
  static TransferOp PtoP(int src_gpu, int dst_gpu, double bytes);
  static TransferOp DtoD(int gpu, double bytes);

  /// Bidirectional CPU-GPU copy: one HtoD + one DtoH per listed GPU.
  static std::vector<TransferOp> Bidirectional(const std::vector<int>& gpus,
                                               double bytes_per_direction,
                                               int numa = 0);

  /// The paper's parallel P2P pattern for a GPU set (Section 4.3):
  /// GPU_0 <-> GPU_{g-1}, GPU_1 <-> GPU_{g-2}, ... (bidirectional).
  static std::vector<TransferOp> P2pRing(const std::vector<int>& gpus,
                                         double bytes_per_direction);

  // -- collective patterns (Li et al.-style extension) ---------------------

  /// Root GPU sends a copy of `bytes` to every other GPU in the set.
  static std::vector<TransferOp> Broadcast(int root,
                                           const std::vector<int>& gpus,
                                           double bytes);

  /// Every non-root GPU sends `bytes` to the root.
  static std::vector<TransferOp> Gather(int root,
                                        const std::vector<int>& gpus,
                                        double bytes);

  /// Every ordered pair (i, j), i != j, transfers `bytes` concurrently
  /// (the RDX sort's exchange pattern).
  static std::vector<TransferOp> AllToAll(const std::vector<int>& gpus,
                                          double bytes_per_pair);

 private:
  std::unique_ptr<Topology> topology_;
  sim::Simulator simulator_;
  sim::FlowNetwork network_{&simulator_};
};

}  // namespace mgs::topo

#endif  // MGS_TOPO_TRANSFER_PROBE_H_
