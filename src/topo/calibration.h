// Calibration constants for the three paper platforms.
//
// Every number here is an *effective* rate back-derived from a measurement
// the paper reports (figure / table / in-text number); the derivation is
// noted next to each constant. Capacities are bytes per second (decimal GB),
// kernel/sort rates are keys per second.
//
// Changing a constant here re-shapes every experiment consistently — this is
// the single source of truth for "how fast the paper's hardware was".

#ifndef MGS_TOPO_CALIBRATION_H_
#define MGS_TOPO_CALIBRATION_H_

#include "util/units.h"

namespace mgs::topo::cal {

// ---------------------------------------------------------------------------
// GPU models
// ---------------------------------------------------------------------------

// NVIDIA A100 SXM4 40 GB.
inline constexpr double kA100MemCapacity = 40 * kGB;
// Ampere whitepaper: 1555 GB/s HBM2e.
inline constexpr double kA100MemBandwidth = 1555 * kGB;
// Table 2: Thrust/CUB sort 1e9 32-bit keys in 36 ms => 27.8 Gkeys/s.
inline constexpr double kA100SortRate32 = 1e9 / 36e-3;
// Section 6.3: 64-bit sorts of equal byte volume run "within 95%" of 32-bit
// on the A100 => per-key rate ~ 0.95/2 of the 32-bit rate.
inline constexpr double kA100SortRate64 = kA100SortRate32 * 0.95 / 2.0;
// Device two-way merge (thrust::merge-class): HBM-bound, ~12 bytes moved
// per 32-bit key => 1555/12 ~ 130 Gkeys/s.
inline constexpr double kA100MergeRate32 = 130e9;

// NVIDIA Tesla V100 SXM2 32 GB.
inline constexpr double kV100MemCapacity = 32 * kGB;
// Volta whitepaper: 900 GB/s HBM2.
inline constexpr double kV100MemBandwidth = 900 * kGB;
// Section 6.1.4: "The NVIDIA A100 GPU sorts almost twice as fast as the
// Tesla V100" — Fig. 12 (1 GPU, 2e9 keys, 0.35 s total with ~0.22 s of
// transfers) back-solves to ~15.6 Gkeys/s, a 1.78x ratio.
inline constexpr double kV100SortRate32 = kA100SortRate32 / 1.78;
// Section 6.3: on the V100, 32-bit runs take only 83-88% of 64-bit runs of
// equal byte volume => 64-bit per-key rate ~ 0.85/2 of 32-bit.
inline constexpr double kV100SortRate64 = kV100SortRate32 * 0.85 / 2.0;
inline constexpr double kV100MergeRate32 = 75e9;  // 900 GB/s / 12 B per key

// Single-GPU primitive ratios (Table 2, A100, 1e9 keys):
//   Thrust 36 ms, CUB 36 ms, Stehle 57 ms, MGPU 200 ms.
inline constexpr double kStehleSlowdown = 57.0 / 36.0;  // ~1.6x
inline constexpr double kMgpuSlowdown = 200.0 / 36.0;   // ~5.5x

// ---------------------------------------------------------------------------
// IBM Power System AC922 (Table 1a, Figs. 2 & 5)
// ---------------------------------------------------------------------------

// 3x NVLink 2.0 bricks CPU<->GPU and GPU<->GPU: theoretical 75 GB/s per
// direction, measured 72 GB/s (Fig. 2a); a directly-connected pair moves
// 145 GB/s bidirectionally (Fig. 5b).
inline constexpr double kAc922NvlinkCap = 72 * kGB;
inline constexpr double kAc922NvlinkDuplex = 145 * kGB;

// X-Bus: theoretical 64 GB/s, measured 41 GB/s HtoD-direction and 35 GB/s
// DtoH-direction (Fig. 2a); 54 GB/s duplex (Fig. 2b, pair (2,3) bidi);
// P2P-class DMA achieves only 32-33 GB/s serially (Fig. 5a) => directed
// weight 41/33.
inline constexpr double kAc922XbusCapFwd = 41 * kGB;
inline constexpr double kAc922XbusCapBwd = 35 * kGB;
inline constexpr double kAc922XbusDuplex = 54 * kGB;
inline constexpr double kAc922XbusP2pWeight = 41.0 / 33.0;

// Host memory per NUMA node: parallel local HtoD reaches 141 GB/s and DtoH
// only 109 GB/s (Fig. 2b); four concurrent local streams total 136 GB/s =>
// read cap 150, write cap 110, duplex 136 with writes 1.15x as expensive.
inline constexpr double kAc922MemReadCap = 150 * kGB;
inline constexpr double kAc922MemWriteCap = 110 * kGB;
inline constexpr double kAc922MemDuplex = 136 * kGB;
inline constexpr double kAc922MemWriteWeight = 1.15;

// PARADIS on 2x POWER9 (16 cores each): Fig. 12 reports up to 14x speedup
// for P2P sort (0.24 s at 2e9 keys) => ~3.4 s => 0.595 Gkeys/s.
inline constexpr double kAc922ParadisRate32 = 0.595e9;
// gnu_parallel multiway merge: Fig. 12b, CPU merge of 2 chunks (8 GB) takes
// ~0.16 s => 50 GB/s of merged output.
inline constexpr double kAc922MergeBw = 50 * kGB;

// ---------------------------------------------------------------------------
// DELTA System D22x M4 PS (Table 1b, Figs. 3 & 6)
// ---------------------------------------------------------------------------

// PCIe 3.0 x16 per GPU (exclusive switch per GPU): 12 GB/s HtoD, 13 GB/s
// DtoH, 20 GB/s duplex (Fig. 3a). Host-traversing P2P reaches 9 GB/s
// serially and 30 GB/s for four streams (Fig. 6) => directed weight 12/9
// and the same weight on the duplex budget.
inline constexpr double kDeltaPcieCapHtoD = 12 * kGB;
inline constexpr double kDeltaPcieCapDtoH = 13 * kGB;
inline constexpr double kDeltaPcieDuplex = 20 * kGB;
inline constexpr double kDeltaPcieP2pWeight = 12.0 / 9.0;

// 2x NVLink 2.0 GPU pairs: 48 GB/s serial, 97 GB/s duplex (Fig. 6).
inline constexpr double kDeltaNvlink2Cap = 48 * kGB;
inline constexpr double kDeltaNvlink2Duplex = 97 * kGB;
// Single-NVLink pair (1,3) per Table 1b: 25 GB/s theoretical -> 24 eff.
inline constexpr double kDeltaNvlink1Cap = 24 * kGB;
inline constexpr double kDeltaNvlink1Duplex = 48 * kGB;

// Intel UPI: 62 GB/s per direction (Table 1b); generous duplex.
inline constexpr double kDeltaUpiCap = 62 * kGB;
inline constexpr double kDeltaUpiDuplex = 110 * kGB;

// Host memory per node (Xeon Gold 6148, 6 channels): never the bottleneck
// for PCIe 3.0 systems; STREAM-class numbers.
inline constexpr double kDeltaMemReadCap = 100 * kGB;
inline constexpr double kDeltaMemWriteCap = 80 * kGB;
inline constexpr double kDeltaMemDuplex = 105 * kGB;
inline constexpr double kDeltaMemWriteWeight = 1.15;

// PARADIS on 2x Xeon Gold 6148: Section 6.1.2 reports up to 9x multi-GPU
// speedup; best multi-GPU config sorts 2e9 keys in 0.64 s => ~5.8 s =>
// 0.347 Gkeys/s.
inline constexpr double kDeltaParadisRate32 = 0.347e9;
// Section 6.1.2: CPU merges 3.8x slower than GPU pair (0,1) => ~0.21 s for
// 8 GB of output => 38 GB/s.
inline constexpr double kDeltaMergeBw = 38 * kGB;

// ---------------------------------------------------------------------------
// NVIDIA DGX A100 (Table 1c, Figs. 4 & 7)
// ---------------------------------------------------------------------------

// PCIe 4.0: 25 GB/s serial per GPU (Fig. 4); one switch per GPU *pair*, so
// the uplink is also 25 GB/s — pairs (0,1), (2,3), (4,5), (6,7) share it.
// Local bidi reaches 39 GB/s (duplex); flows that cross the Infinity
// Fabric see only 32 GB/s of duplex (Fig. 4, {4-7} bidi) => remote duplex
// weight 39/32.
inline constexpr double kDgxPcieCap = 25 * kGB;
inline constexpr double kDgxPcieDuplex = 39 * kGB;
inline constexpr double kDgxRemoteDuplexWeight = 39.0 / 32.0;

// NVSwitch: 12x NVLink 3.0 per GPU, theoretical 300 GB/s per direction;
// measured 279 GB/s serial and 530 GB/s per-GPU duplex (Fig. 7). The
// switch fabric itself is non-blocking (8-GPU all-to-all hits 2116 GB/s =
// 8 x 264.5).
inline constexpr double kDgxNvlink3Cap = 279 * kGB;
inline constexpr double kDgxNvlink3Duplex = 530 * kGB;

// AMD Infinity Fabric: 102 GB/s per direction (Table 1c).
inline constexpr double kDgxIfCap = 102 * kGB;
inline constexpr double kDgxIfDuplex = 160 * kGB;

// Host memory per node (EPYC 7742, 8 channels DDR4-3200): the read path
// caps parallel HtoD at 87-89 GB/s for 4+ GPUs (Fig. 4) and the write
// path caps parallel DtoH at 92-104 GB/s.
inline constexpr double kDgxMemReadCap = 88 * kGB;
inline constexpr double kDgxMemWriteCap = 100 * kGB;
inline constexpr double kDgxMemDuplex = 140 * kGB;
inline constexpr double kDgxMemWriteWeight = 1.1;

// PARADIS on 2x EPYC 7742: Fig. 1 sorts 4e9 keys in 2.25 s => 1.78 Gkeys/s.
// (Section 6.1.3's "7.8x" implies ~1.1 Gkeys/s — the paper is internally
// inconsistent here; we calibrate to the headline figure. See DESIGN.md.)
inline constexpr double kDgxParadisRate32 = 1.78e9;
// Fig. 14b: HET sort with 8 GPUs spends ~0.18 s merging 8 GB => 44.5 GB/s.
inline constexpr double kDgxMergeBw = 44.5 * kGB;

// ---------------------------------------------------------------------------
// Cross-cutting CPU-side model parameters
// ---------------------------------------------------------------------------

// Per-hop one-way latencies (after Pearson et al.'s CUDA-primitive
// characterization; only visible for sub-MB transfers).
inline constexpr double kPcieLatency = 1.5e-6;
inline constexpr double kNvlinkLatency = 1.0e-6;
inline constexpr double kNvswitchPortLatency = 0.4e-6;
inline constexpr double kCpuLinkLatency = 0.5e-6;
inline constexpr double kMemBusLatency = 0.1e-6;

// Memory traffic per byte of merged output (read sublists + write output).
inline constexpr double kMergeMemoryAmplification = 2.0;

// PARADIS processes 64-bit keys at half the 32-bit key rate (same bytes/s).
inline constexpr double kParadis64BitFactor = 0.5;

// Loser-tree k-way merge throughput degradation per doubling of k beyond 2
// (Section 6.1.1: merging 4 instead of 2 chunks costs only ~8% more).
inline constexpr double kMergeKPenaltyPerDoubling = 0.04;

}  // namespace mgs::topo::cal

#endif  // MGS_TOPO_CALIBRATION_H_
