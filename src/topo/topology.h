// Interconnect topology: nodes (CPU sockets, host memories, GPUs, switches),
// links with per-direction effective capacities, and route compilation into
// flow-network paths.
//
// A topology is *calibrated*: link capacities are effective rates taken from
// the paper's Section 4 measurements (e.g. "3x NVLink 2.0" is 72 GB/s per
// direction, not the 75 GB/s theoretical peak). Three presets reproduce the
// paper's platforms (src/topo/systems.h); custom topologies can be built
// with the same API (see examples/custom_platform.cc).
//
// Modeling vocabulary (see src/sim/flow_network.h):
//  * each link direction is a capacity resource;
//  * a link may carry a "duplex" resource bounding the sum of both
//    directions (bidirectional overhead: NVLink pairs reach 145 GB/s, not
//    2x72; PCIe 4.0 switches reach 39 GB/s, not 50);
//  * per-class weight factors express measured second-order effects:
//    P2P flows crossing a host interconnect see extra overhead
//    (`p2p_weight`), flows crossing the CPU-CPU interconnect pay a duplex
//    penalty on their PCIe switch (`remote_duplex_weight`), and writes into
//    host memory cost more than reads (`duplex_weight_ba`).

#ifndef MGS_TOPO_TOPOLOGY_H_
#define MGS_TOPO_TOPOLOGY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/flow_network.h"
#include "util/status.h"
#include "util/units.h"

namespace mgs::topo {

/// Kinds of nodes in the interconnect graph. Routes may pass *through* CPU
/// and switch nodes only; GPUs, memories and storage devices are endpoints.
enum class NodeKind { kCpu, kMemory, kGpu, kSwitch, kStorage };

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Physical link families (for display and for topology dumps).
enum class LinkKind {
  kPcie3,
  kPcie4,
  kNvlink2,
  kNvlink3,
  kXBus,
  kUpi,
  kInfinityFabric,
  kMemoryBus,
  kNvswitchFabric,
  /// RDMA-capable cluster interconnect (InfiniBand-class NIC/leaf/spine
  /// links between nodes; see src/net).
  kInfiniband,
  /// NVMe storage link (the out-of-core spill tier; orders of magnitude
  /// slower than the memory bus, which is the point).
  kNvme,
};

const char* LinkKindToString(LinkKind kind);

/// GPU hardware description (used by the kernel cost models in src/vgpu).
struct GpuSpec {
  std::string model;                  // "Tesla V100", "A100"
  double memory_capacity_bytes = 0;   // e.g. 32 GB, 40 GB
  double memory_bandwidth = 0;        // HBM bytes/s (effective)
  /// 32-bit radix-sort throughput, keys/s (Thrust-class primitive).
  double sort_rate_32 = 0;
  /// 64-bit radix-sort throughput, keys/s.
  double sort_rate_64 = 0;
  /// Device two-way merge throughput, 32-bit keys/s.
  double merge_rate_32 = 0;
};

/// Calibrated CPU-side rates (Section 5.3 / 6 baselines).
struct CpuSpec {
  std::string model;
  int sockets = 2;
  int cores = 0;  // total physical cores
  /// Total host DRAM (Table 1). HET sort's out-of-place final merge needs
  /// 2x the data size in host memory; 0 disables the check.
  double host_memory_bytes = 0;
  /// PARADIS parallel radix sort throughput (32-bit keys/s).
  double paradis_rate_32 = 0;
  /// Multiway-merge output throughput, bytes/s (loser-tree k-way merge,
  /// gnu_parallel-class; memory-bandwidth-bound).
  double multiway_merge_bw = 0;
  /// Memory bandwidth consumed by the merge per output byte (reads the
  /// sublists + writes the output).
  double merge_memory_amplification = 2.0;
};

/// One link between two nodes.
struct LinkSpec {
  std::string name;
  LinkKind kind = LinkKind::kPcie3;
  /// Effective payload capacity a->b, bytes/s.
  double cap_ab = 0;
  /// Effective payload capacity b->a, bytes/s (defaults to cap_ab if 0).
  double cap_ba = 0;
  /// Optional cap on the *sum* of both directions (0 = none).
  double duplex_cap = 0;
  /// Weight of a->b (resp. b->a) traffic against the duplex cap.
  double duplex_weight_ab = 1.0;
  double duplex_weight_ba = 1.0;
  /// Weight multiplier for P2P-class flows on the *directed* capacity (DMA
  /// peer copies traversing the host pay measured extra overhead: e.g.
  /// X-Bus 41 -> 33 GB/s serial P2P).
  double p2p_weight = 1.0;
  /// Weight multiplier for P2P-class flows on the duplex budget. Calibrated
  /// separately: the AC922 X-Bus shows no extra duplex penalty for P2P
  /// (53 vs 54 GB/s) while DELTA PCIe 3.0 does (30 vs 40 GB/s).
  double p2p_duplex_weight = 1.0;
  /// Extra duplex weight for flows that also cross a CPU-CPU link
  /// (reproduces the DGX remote-bidi drop: 39 -> 32 GB/s per GPU).
  double remote_duplex_weight = 1.0;
  /// One-way wire/hop latency in seconds (0 = ideal). Irrelevant for the
  /// paper's 4 GB blocks; matters for the small-transfer sweeps
  /// (Pearson et al.-style) in bench_ext_small_transfers.
  double latency = 0.0;
};

/// Copy classes; determine routing and weight factors.
enum class CopyKind { kHostToDevice, kDeviceToHost, kPeerToPeer, kDeviceLocal };

const char* CopyKindToString(CopyKind kind);

/// A copy endpoint: a host memory (NUMA node id) or a GPU (gpu id).
struct Endpoint {
  enum class Kind { kHostMemory, kGpu } kind;
  int id;

  static Endpoint HostMemory(int numa) {
    return Endpoint{Kind::kHostMemory, numa};
  }
  static Endpoint Gpu(int gpu) { return Endpoint{Kind::kGpu, gpu}; }
};

class Topology {
 public:
  explicit Topology(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- construction -------------------------------------------------------

  /// Adds a CPU socket (NUMA node). Returns the socket index (0-based).
  int AddCpuSocket();

  /// Attaches host memory to a socket via a memory-bus link.
  /// `read_cap`/`write_cap`: payload capacity out of / into memory;
  /// `duplex_cap`: combined budget; `write_weight`: extra duplex cost of
  /// writes (dirty-line evictions make DtoH streams more expensive).
  Status AttachHostMemory(int socket, double read_cap, double write_cap,
                          double duplex_cap, double write_weight = 1.0);

  /// Attaches an NVMe storage device to a socket. The device is a leaf
  /// node behind a link named "nvme<i>" (fault-addressable: `nvme=<i>` in
  /// the fault grammar degrades or downs it like any link). `read_cap` /
  /// `write_cap`: payload capacity off / onto the device — NVMe-class, i.e.
  /// far below the memory bus, which is what makes the spill tier a third,
  /// storage-bound regime. Returns the nvme index (0-based).
  Result<int> AttachNvme(int socket, double read_cap, double write_cap,
                         double duplex_cap = 0);

  /// Adds a GPU owned by `numa_socket` (locality only; connectivity comes
  /// from links). Returns the gpu id (0-based).
  int AddGpu(const GpuSpec& spec, int numa_socket);

  /// Adds a switch node (PCIe switch or NVSwitch). Returns its node id.
  NodeId AddSwitch(std::string name);

  /// Connects two nodes. Node handles come from the typed getters below.
  Status Connect(NodeId a, NodeId b, LinkSpec spec);

  void SetCpuSpec(const CpuSpec& spec) { cpu_spec_ = spec; }

  /// Enables multi-hop P2P routing (Section 7 future work): P2P copies may
  /// be forwarded through intermediate GPUs instead of traversing the
  /// host-side CPU interconnect. Each intermediate GPU charges its HBM
  /// (store-and-forward: one write + one read). Off by default — the
  /// paper's algorithms route P2P via the host when no direct link exists.
  void SetMultihopP2p(bool enabled) { multihop_p2p_ = enabled; }
  bool multihop_p2p() const { return multihop_p2p_; }

  // ---- typed node handles --------------------------------------------------

  NodeId CpuNode(int socket) const;
  NodeId GpuNode(int gpu) const;
  NodeId MemoryNode(int socket) const;

  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  int num_sockets() const { return static_cast<int>(cpu_nodes_.size()); }
  int num_nvme() const { return static_cast<int>(nvmes_.size()); }
  int nvme_socket(int nvme) const { return nvmes_.at(nvme).socket; }
  /// First NVMe attached to `socket`, falling back to any NVMe; -1 if none.
  int NvmeForSocket(int socket) const;
  const GpuSpec& gpu_spec(int gpu) const { return gpus_[gpu].spec; }
  int gpu_socket(int gpu) const { return gpus_[gpu].socket; }
  const CpuSpec& cpu_spec() const { return cpu_spec_; }

  // ---- compilation & routing ----------------------------------------------

  /// Creates the capacity resources in `net`. Must be called once before
  /// `CopyPath`. Validates connectivity of all endpoints.
  Status Compile(sim::FlowNetwork* net);

  bool compiled() const { return compiled_; }

  /// Builds the flow path for one copy. For kDeviceLocal, `src` and `dst`
  /// must name the same GPU.
  Result<std::vector<sim::PathHop>> CopyPath(CopyKind kind, Endpoint src,
                                             Endpoint dst) const;

  /// Sum of hop latencies along a copy's route (seconds).
  Result<double> CopyLatency(CopyKind kind, Endpoint src, Endpoint dst) const;

  /// Path for a host-side memory-bandwidth-bound compute phase on `socket`
  /// (e.g. the CPU multiway merge): consumes `amplification` bytes of
  /// memory traffic per logical byte, plus the CPU merge-engine budget.
  Result<std::vector<sim::PathHop>> CpuMemoryWorkPath(
      int socket, double amplification) const;

  /// Path for one spill transfer: host memory <-> NVMe device `nvme`.
  /// `write` = true stages data onto the device (membus read + nvme write);
  /// false reads it back (nvme read + membus write). The nvme link is the
  /// bottleneck by construction, so concurrent spills contend on it under
  /// the usual max-min settling.
  Result<std::vector<sim::PathHop>> NvmePath(int nvme, bool write) const;

  /// True if two GPUs are connected without traversing a CPU-CPU link
  /// (used by GPU-set selection, Section 5.4).
  Result<bool> IsDirectP2p(int gpu_a, int gpu_b) const;

  /// Single-flow steady-state bandwidth for a copy (bytes/s), from the path
  /// alone — used for topology dumps and GPU-set scoring without running a
  /// simulation.
  Result<double> LoneFlowBandwidth(CopyKind kind, Endpoint src,
                                   Endpoint dst) const;

  /// Effective capacity of a compiled resource (bytes/s). Infinity for
  /// unknown ids. Lets callers run static what-if rate analyses (GPU-set
  /// selection) without a live flow network.
  double ResourceCapacity(sim::ResourceId id) const;

  /// One compiled interconnect-link capacity resource (a link direction or
  /// a duplex budget), for per-link utilization reporting.
  struct LinkResource {
    std::string name;          // flow-network resource name
    LinkKind kind;             // physical link family
    sim::ResourceId resource;  // id in the compiled flow network
  };

  /// Every compiled link resource, in link declaration order (directions
  /// first, then the duplex budget where present). Excludes GPU HBM and the
  /// CPU merge engine: those are endpoint budgets, not interconnect links.
  /// The multi-tenant service (src/sched) reports link utilization by
  /// pairing these ids with sim::FlowNetwork::ResourceTraffic. Only valid
  /// after Compile.
  std::vector<LinkResource> LinkResources() const;

  // ---- runtime link state (fault injection) --------------------------------

  /// Degrades (factor < 1) or restores (factor == 1) a link's bandwidth at
  /// runtime: every compiled resource of the link (both directions and the
  /// duplex budget) gets capacity `spec * factor`, and in-flight flows
  /// re-settle at the new rates. `link` is either a bare spec name
  /// ("nvl-x1"), which applies to every link sharing that name, or the
  /// qualified "name(NODEA-NODEB)" form naming exactly one link. Requires a
  /// compiled topology; `net` must be the network it compiled into.
  Status SetLinkBandwidthFactor(const std::string& link, double factor,
                                sim::FlowNetwork* net);

  /// Takes a link down — aborting every in-flight flow crossing it with
  /// kUnavailable and zeroing its capacities — or brings it back up. Down
  /// links are excluded from routing, so copies issued afterwards re-route
  /// around the outage (or fail with kNotFound when no alternative exists).
  Status SetLinkUp(const std::string& link, bool up, sim::FlowNetwork* net);

  /// Runtime state of the first link matching `link` (see above for the
  /// accepted name forms).
  Result<double> LinkBandwidthFactor(const std::string& link) const;
  Result<bool> LinkIsUp(const std::string& link) const;

  /// Qualified names of all links ("nvl-x1(GPU1-GPU3)"), declaration order.
  std::vector<std::string> LinkNames() const;

  /// Number of links currently degraded (up, factor != 1) / down.
  int DegradedLinkCount() const;
  int DownLinkCount() const;

  /// The compiled HBM resource of a GPU. Every copy touching the GPU
  /// crosses its HBM, so aborting flows over this resource models fail-stop
  /// device loss. Only valid after Compile.
  Result<sim::ResourceId> GpuHbmResource(int gpu) const;

  /// Human-readable topology dump (Table 1-style).
  std::string Describe() const;

  /// Human-readable route of a copy, e.g.
  /// "GPU0 -[pcie-dn]-> plx0 -[pcie-up]-> CPU0 <- MEM0". For debugging
  /// calibrations and the topology_explorer example.
  Result<std::string> DescribeRoute(CopyKind kind, Endpoint src,
                                    Endpoint dst) const;

 private:
  struct Node {
    NodeKind kind;
    std::string name;
    int index;  // socket / gpu index; -1 for switches
  };
  struct Gpu {
    GpuSpec spec;
    int socket;
    NodeId node;
    sim::ResourceId hbm = -1;  // device memory resource
  };
  struct NvmeDev {
    NodeId node;
    int socket;
    int link_index;  // the "nvme<i>" link in links_
  };
  struct Link {
    NodeId a;
    NodeId b;
    LinkSpec spec;
    sim::ResourceId res_ab = -1;
    sim::ResourceId res_ba = -1;
    sim::ResourceId res_duplex = -1;
    // Runtime state (fault injection): current bandwidth fraction of the
    // calibrated spec, and whether the link is up at all.
    double factor = 1.0;
    bool up = true;
  };

  struct RouteStep {
    int link_index;
    bool forward;  // payload travels a->b
  };

  Result<std::vector<RouteStep>> Route(NodeId from, NodeId to,
                                       bool p2p_class) const;
  std::string QualifiedLinkName(const Link& link) const;
  std::vector<int> MatchLinks(const std::string& name) const;
  void ApplyLinkState(const Link& link, sim::FlowNetwork* net);
  Result<std::vector<sim::PathHop>> BuildPath(
      const std::vector<RouteStep>& route, CopyKind kind, Endpoint src,
      Endpoint dst) const;
  NodeId EndpointNode(const Endpoint& e) const;
  bool RouteCrossesCpuLink(const std::vector<RouteStep>& route) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> cpu_nodes_;
  std::vector<NodeId> memory_nodes_;  // per socket
  std::vector<Gpu> gpus_;
  std::vector<NvmeDev> nvmes_;
  std::vector<Link> links_;
  CpuSpec cpu_spec_;
  sim::ResourceId cpu_merge_engine_ = -1;
  bool compiled_ = false;
  bool multihop_p2p_ = false;
};

}  // namespace mgs::topo

#endif  // MGS_TOPO_TOPOLOGY_H_
