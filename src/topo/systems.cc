#include "topo/systems.h"

#include "topo/calibration.h"

namespace mgs::topo {

namespace {

GpuSpec V100Spec() {
  GpuSpec spec;
  spec.model = "Tesla V100 SXM2 32GB";
  spec.memory_capacity_bytes = cal::kV100MemCapacity;
  spec.memory_bandwidth = cal::kV100MemBandwidth;
  spec.sort_rate_32 = cal::kV100SortRate32;
  spec.sort_rate_64 = cal::kV100SortRate64;
  spec.merge_rate_32 = cal::kV100MergeRate32;
  return spec;
}

GpuSpec A100Spec() {
  GpuSpec spec;
  spec.model = "A100 SXM4 40GB";
  spec.memory_capacity_bytes = cal::kA100MemCapacity;
  spec.memory_bandwidth = cal::kA100MemBandwidth;
  spec.sort_rate_32 = cal::kA100SortRate32;
  spec.sort_rate_64 = cal::kA100SortRate64;
  spec.merge_rate_32 = cal::kA100MergeRate32;
  return spec;
}

void Must(const Status& st) { CheckOk(st); }

SystemNodeHandles AppendAc922Node(Topology* topo) {
  SystemNodeHandles handles;
  handles.first_socket = topo->num_sockets();
  handles.first_gpu = topo->num_gpus();
  handles.num_sockets = 2;
  handles.num_gpus = 4;

  CpuSpec cpu;
  cpu.model = "2x IBM POWER9 (16 x 2.7 GHz)";
  cpu.sockets = 2;
  cpu.cores = 32;
  cpu.host_memory_bytes = 512 * kGB;  // 2x 256 GB DDR4 (Table 1a)
  cpu.paradis_rate_32 = cal::kAc922ParadisRate32;
  cpu.multiway_merge_bw = cal::kAc922MergeBw;
  cpu.merge_memory_amplification = cal::kMergeMemoryAmplification;
  topo->SetCpuSpec(cpu);

  const int cpu0 = topo->AddCpuSocket();
  const int cpu1 = topo->AddCpuSocket();
  Must(topo->AttachHostMemory(cpu0, cal::kAc922MemReadCap,
                              cal::kAc922MemWriteCap, cal::kAc922MemDuplex,
                              cal::kAc922MemWriteWeight));
  Must(topo->AttachHostMemory(cpu1, cal::kAc922MemReadCap,
                              cal::kAc922MemWriteCap, cal::kAc922MemDuplex,
                              cal::kAc922MemWriteWeight));

  const int g0 = handles.first_gpu;
  for (int g = 0; g < 4; ++g) topo->AddGpu(V100Spec(), g < 2 ? cpu0 : cpu1);

  auto nvlink3x = [](std::string name) {
    LinkSpec spec;
    spec.name = std::move(name);
    spec.kind = LinkKind::kNvlink2;
    spec.cap_ab = cal::kAc922NvlinkCap;
    spec.duplex_cap = cal::kAc922NvlinkDuplex;
    spec.latency = cal::kNvlinkLatency;
    return spec;
  };

  // CPU-GPU: 3x NVLink 2.0 per GPU, to the local socket.
  Must(topo->Connect(topo->CpuNode(cpu0), topo->GpuNode(g0), nvlink3x("nvl")));
  Must(topo->Connect(topo->CpuNode(cpu0), topo->GpuNode(g0 + 1),
                     nvlink3x("nvl")));
  Must(topo->Connect(topo->CpuNode(cpu1), topo->GpuNode(g0 + 2),
                     nvlink3x("nvl")));
  Must(topo->Connect(topo->CpuNode(cpu1), topo->GpuNode(g0 + 3),
                     nvlink3x("nvl")));
  // P2P: 3x NVLink 2.0 within each socket-local pair.
  Must(topo->Connect(topo->GpuNode(g0), topo->GpuNode(g0 + 1),
                     nvlink3x("nvl-p2p")));
  Must(topo->Connect(topo->GpuNode(g0 + 2), topo->GpuNode(g0 + 3),
                     nvlink3x("nvl-p2p")));

  LinkSpec xbus;
  xbus.name = "xbus";
  xbus.kind = LinkKind::kXBus;
  xbus.cap_ab = cal::kAc922XbusCapFwd;
  xbus.cap_ba = cal::kAc922XbusCapBwd;
  xbus.duplex_cap = cal::kAc922XbusDuplex;
  xbus.p2p_weight = cal::kAc922XbusP2pWeight;
  xbus.latency = cal::kCpuLinkLatency;
  Must(topo->Connect(topo->CpuNode(cpu0), topo->CpuNode(cpu1), xbus));

  handles.host_attach = topo->CpuNode(cpu0);
  return handles;
}

SystemNodeHandles AppendDeltaD22xNode(Topology* topo) {
  SystemNodeHandles handles;
  handles.first_socket = topo->num_sockets();
  handles.first_gpu = topo->num_gpus();
  handles.num_sockets = 2;
  handles.num_gpus = 4;

  CpuSpec cpu;
  cpu.model = "2x Intel Xeon Gold 6148 (20 x 2.4 GHz)";
  cpu.sockets = 2;
  cpu.cores = 40;
  cpu.host_memory_bytes = 1510 * kGB;  // 2x 755 GB DDR4 (Table 1b)
  cpu.paradis_rate_32 = cal::kDeltaParadisRate32;
  cpu.multiway_merge_bw = cal::kDeltaMergeBw;
  cpu.merge_memory_amplification = cal::kMergeMemoryAmplification;
  topo->SetCpuSpec(cpu);

  const int cpu0 = topo->AddCpuSocket();
  const int cpu1 = topo->AddCpuSocket();
  Must(topo->AttachHostMemory(cpu0, cal::kDeltaMemReadCap,
                              cal::kDeltaMemWriteCap, cal::kDeltaMemDuplex,
                              cal::kDeltaMemWriteWeight));
  Must(topo->AttachHostMemory(cpu1, cal::kDeltaMemReadCap,
                              cal::kDeltaMemWriteCap, cal::kDeltaMemDuplex,
                              cal::kDeltaMemWriteWeight));

  const int g0 = handles.first_gpu;
  for (int g = 0; g < 4; ++g) topo->AddGpu(V100Spec(), g < 2 ? cpu0 : cpu1);

  // CPU-GPU: PCIe 3.0 x16 with an exclusive switch per GPU; modeled as a
  // single calibrated link (the switch adds no sharing).
  auto pcie3 = [](std::string name) {
    LinkSpec spec;
    spec.name = std::move(name);
    spec.kind = LinkKind::kPcie3;
    spec.cap_ab = cal::kDeltaPcieCapHtoD;   // toward the GPU
    spec.cap_ba = cal::kDeltaPcieCapDtoH;   // toward the host
    spec.duplex_cap = cal::kDeltaPcieDuplex;
    spec.p2p_weight = cal::kDeltaPcieP2pWeight;
    spec.p2p_duplex_weight = cal::kDeltaPcieP2pWeight;
    spec.latency = cal::kPcieLatency;
    return spec;
  };
  Must(topo->Connect(topo->CpuNode(cpu0), topo->GpuNode(g0), pcie3("pcie")));
  Must(topo->Connect(topo->CpuNode(cpu0), topo->GpuNode(g0 + 1),
                     pcie3("pcie")));
  Must(topo->Connect(topo->CpuNode(cpu1), topo->GpuNode(g0 + 2),
                     pcie3("pcie")));
  Must(topo->Connect(topo->CpuNode(cpu1), topo->GpuNode(g0 + 3),
                     pcie3("pcie")));

  // P2P NVLink 2.0 partial mesh (Table 1b): double links 0-1, 0-2, 2-3 and
  // a single link 1-3. Pairs (0,3) and (1,2) traverse the host via PCIe.
  auto nvlink2x = [](std::string name) {
    LinkSpec spec;
    spec.name = std::move(name);
    spec.kind = LinkKind::kNvlink2;
    spec.cap_ab = cal::kDeltaNvlink2Cap;
    spec.duplex_cap = cal::kDeltaNvlink2Duplex;
    spec.latency = cal::kNvlinkLatency;
    return spec;
  };
  LinkSpec nvlink1x;
  nvlink1x.name = "nvl-x1";
  nvlink1x.kind = LinkKind::kNvlink2;
  nvlink1x.cap_ab = cal::kDeltaNvlink1Cap;
  nvlink1x.duplex_cap = cal::kDeltaNvlink1Duplex;
  nvlink1x.latency = cal::kNvlinkLatency;

  Must(topo->Connect(topo->GpuNode(g0), topo->GpuNode(g0 + 1),
                     nvlink2x("nvl-x2")));
  Must(topo->Connect(topo->GpuNode(g0), topo->GpuNode(g0 + 2),
                     nvlink2x("nvl-x2")));
  Must(topo->Connect(topo->GpuNode(g0 + 2), topo->GpuNode(g0 + 3),
                     nvlink2x("nvl-x2")));
  Must(topo->Connect(topo->GpuNode(g0 + 1), topo->GpuNode(g0 + 3), nvlink1x));

  LinkSpec upi;
  upi.name = "upi";
  upi.kind = LinkKind::kUpi;
  upi.cap_ab = cal::kDeltaUpiCap;
  upi.duplex_cap = cal::kDeltaUpiDuplex;
  upi.latency = cal::kCpuLinkLatency;
  Must(topo->Connect(topo->CpuNode(cpu0), topo->CpuNode(cpu1), upi));

  handles.host_attach = topo->CpuNode(cpu0);
  return handles;
}

SystemNodeHandles AppendDgxA100Node(Topology* topo) {
  SystemNodeHandles handles;
  handles.first_socket = topo->num_sockets();
  handles.first_gpu = topo->num_gpus();
  handles.num_sockets = 2;
  handles.num_gpus = 8;

  CpuSpec cpu;
  cpu.model = "2x AMD EPYC 7742 (64 x 2.25 GHz)";
  cpu.sockets = 2;
  cpu.cores = 128;
  cpu.host_memory_bytes = 1024 * kGB;  // 2x 512 GB DDR4 (Table 1c)
  cpu.paradis_rate_32 = cal::kDgxParadisRate32;
  cpu.multiway_merge_bw = cal::kDgxMergeBw;
  cpu.merge_memory_amplification = cal::kMergeMemoryAmplification;
  topo->SetCpuSpec(cpu);

  const int cpu0 = topo->AddCpuSocket();
  const int cpu1 = topo->AddCpuSocket();
  Must(topo->AttachHostMemory(cpu0, cal::kDgxMemReadCap, cal::kDgxMemWriteCap,
                              cal::kDgxMemDuplex, cal::kDgxMemWriteWeight));
  Must(topo->AttachHostMemory(cpu1, cal::kDgxMemReadCap, cal::kDgxMemWriteCap,
                              cal::kDgxMemDuplex, cal::kDgxMemWriteWeight));

  const int g0 = handles.first_gpu;
  for (int g = 0; g < 8; ++g) topo->AddGpu(A100Spec(), g < 4 ? cpu0 : cpu1);

  // PCIe 4.0: one switch per GPU pair; both the GPU-switch and switch-CPU
  // hops are 25 GB/s effective with a 39 GB/s duplex budget, so the uplink
  // is shared by the pair (Fig. 4 pair plateau). Switch names continue the
  // global pair numbering so appended nodes stay unambiguous.
  auto pcie4 = [](std::string name) {
    LinkSpec spec;
    spec.name = std::move(name);
    spec.kind = LinkKind::kPcie4;
    spec.cap_ab = cal::kDgxPcieCap;
    spec.duplex_cap = cal::kDgxPcieDuplex;
    spec.remote_duplex_weight = cal::kDgxRemoteDuplexWeight;
    spec.latency = cal::kPcieLatency / 2;  // per hop; two hops per path
    return spec;
  };
  for (int pair = 0; pair < 4; ++pair) {
    const NodeId sw =
        topo->AddSwitch("plx" + std::to_string(g0 / 2 + pair));
    const int socket = pair < 2 ? cpu0 : cpu1;
    Must(topo->Connect(topo->CpuNode(socket), sw, pcie4("pcie-up")));
    Must(topo->Connect(sw, topo->GpuNode(g0 + 2 * pair), pcie4("pcie-dn")));
    Must(topo->Connect(sw, topo->GpuNode(g0 + 2 * pair + 1),
                       pcie4("pcie-dn")));
  }

  // NVSwitch: every GPU has a 12x NVLink 3.0 port into a non-blocking
  // fabric; the fabric itself imposes no shared cap (Fig. 7 scales to
  // 2116 GB/s on eight GPUs). The first node keeps the historical
  // "nvswitch" name; appended nodes get an ordinal suffix.
  const NodeId nvswitch = topo->AddSwitch(
      g0 == 0 ? "nvswitch" : "nvswitch" + std::to_string(g0 / 8));
  for (int g = 0; g < 8; ++g) {
    LinkSpec spec;
    spec.name = "nvl12";
    spec.kind = LinkKind::kNvlink3;
    spec.cap_ab = cal::kDgxNvlink3Cap;
    spec.duplex_cap = cal::kDgxNvlink3Duplex;
    spec.latency = cal::kNvswitchPortLatency;
    Must(topo->Connect(topo->GpuNode(g0 + g), nvswitch, spec));
  }

  LinkSpec fabric;
  fabric.name = "inf-fabric";
  fabric.kind = LinkKind::kInfinityFabric;
  fabric.cap_ab = cal::kDgxIfCap;
  fabric.duplex_cap = cal::kDgxIfDuplex;
  fabric.latency = cal::kCpuLinkLatency;
  Must(topo->Connect(topo->CpuNode(cpu0), topo->CpuNode(cpu1), fabric));

  handles.host_attach = topo->CpuNode(cpu0);
  handles.fabric_attach = nvswitch;
  return handles;
}

}  // namespace

std::unique_ptr<Topology> MakeAc922() {
  auto topo = std::make_unique<Topology>("IBM Power System AC922");
  AppendAc922Node(topo.get());
  return topo;
}

std::unique_ptr<Topology> MakeDeltaD22x() {
  auto topo = std::make_unique<Topology>("DELTA System D22x M4 PS");
  AppendDeltaD22xNode(topo.get());
  return topo;
}

std::unique_ptr<Topology> MakeDgxA100() {
  auto topo = std::make_unique<Topology>("NVIDIA DGX A100");
  AppendDgxA100Node(topo.get());
  return topo;
}

std::vector<std::string> SystemNames() {
  return {"ac922", "delta-d22x", "dgx-a100"};
}

Result<std::unique_ptr<Topology>> MakeSystem(const std::string& name) {
  if (name == "ac922") return MakeAc922();
  if (name == "delta-d22x") return MakeDeltaD22x();
  if (name == "dgx-a100") return MakeDgxA100();
  return Status::NotFound("unknown system: " + name +
                          " (expected ac922 | delta-d22x | dgx-a100)");
}

Result<SystemNodeHandles> AppendSystemNode(Topology* topo,
                                           const std::string& name) {
  if (topo->compiled()) {
    return Status::FailedPrecondition(
        "AppendSystemNode: topology already compiled");
  }
  if (name == "ac922") return AppendAc922Node(topo);
  if (name == "delta-d22x") return AppendDeltaD22xNode(topo);
  if (name == "dgx-a100") return AppendDgxA100Node(topo);
  return Status::NotFound("unknown system: " + name +
                          " (expected ac922 | delta-d22x | dgx-a100)");
}

}  // namespace mgs::topo
