#include "topo/transfer_probe.h"

#include <algorithm>

namespace mgs::topo {

TransferProbe::TransferProbe(std::unique_ptr<Topology> topology)
    : topology_(std::move(topology)) {
  CheckOk(topology_->Compile(&network_));
}

Result<ProbeResult> TransferProbe::Run(const std::vector<TransferOp>& ops) {
  ProbeResult result;
  result.op_durations.assign(ops.size(), 0.0);
  const double start = simulator_.Now();
  // Open a fresh utilization window: BusiestResource(start) below yields a
  // true [0, 1] utilization only when traffic was reset at `start`.
  network_.ResetTraffic();
  double total_bytes = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& op = ops[i];
    MGS_ASSIGN_OR_RETURN(auto path,
                         topology_->CopyPath(op.kind, op.src, op.dst));
    MGS_ASSIGN_OR_RETURN(const double latency,
                         topology_->CopyLatency(op.kind, op.src, op.dst));
    total_bytes += op.bytes;
    network_.StartFlow(
        op.bytes, std::move(path),
        [this, &result, i, start](const Status& status) {
          result.op_durations[i] = simulator_.Now() - start;
          if (!status.ok()) ++result.failed_ops;
        },
        latency);
  }
  simulator_.Run();
  result.makespan_seconds =
      *std::max_element(result.op_durations.begin(),
                        result.op_durations.end());
  result.aggregate_throughput =
      result.makespan_seconds > 0 ? total_bytes / result.makespan_seconds : 0;
  auto [name, utilization] = network_.BusiestResource(start);
  result.bottleneck = std::move(name);
  result.bottleneck_utilization = utilization;
  return result;
}

TransferOp TransferProbe::HtoD(int gpu, double bytes, int numa) {
  return TransferOp{CopyKind::kHostToDevice, Endpoint::HostMemory(numa),
                    Endpoint::Gpu(gpu), bytes};
}

TransferOp TransferProbe::DtoH(int gpu, double bytes, int numa) {
  return TransferOp{CopyKind::kDeviceToHost, Endpoint::Gpu(gpu),
                    Endpoint::HostMemory(numa), bytes};
}

TransferOp TransferProbe::PtoP(int src_gpu, int dst_gpu, double bytes) {
  return TransferOp{CopyKind::kPeerToPeer, Endpoint::Gpu(src_gpu),
                    Endpoint::Gpu(dst_gpu), bytes};
}

TransferOp TransferProbe::DtoD(int gpu, double bytes) {
  return TransferOp{CopyKind::kDeviceLocal, Endpoint::Gpu(gpu),
                    Endpoint::Gpu(gpu), bytes};
}

std::vector<TransferOp> TransferProbe::Bidirectional(
    const std::vector<int>& gpus, double bytes_per_direction, int numa) {
  std::vector<TransferOp> ops;
  for (int g : gpus) {
    ops.push_back(HtoD(g, bytes_per_direction, numa));
    ops.push_back(DtoH(g, bytes_per_direction, numa));
  }
  return ops;
}

std::vector<TransferOp> TransferProbe::Broadcast(int root,
                                                 const std::vector<int>& gpus,
                                                 double bytes) {
  std::vector<TransferOp> ops;
  for (int g : gpus) {
    if (g != root) ops.push_back(PtoP(root, g, bytes));
  }
  return ops;
}

std::vector<TransferOp> TransferProbe::Gather(int root,
                                              const std::vector<int>& gpus,
                                              double bytes) {
  std::vector<TransferOp> ops;
  for (int g : gpus) {
    if (g != root) ops.push_back(PtoP(g, root, bytes));
  }
  return ops;
}

std::vector<TransferOp> TransferProbe::AllToAll(const std::vector<int>& gpus,
                                                double bytes_per_pair) {
  std::vector<TransferOp> ops;
  for (int a : gpus) {
    for (int b : gpus) {
      if (a != b) ops.push_back(PtoP(a, b, bytes_per_pair));
    }
  }
  return ops;
}

std::vector<TransferOp> TransferProbe::P2pRing(const std::vector<int>& gpus,
                                               double bytes_per_direction) {
  std::vector<TransferOp> ops;
  const std::size_t g = gpus.size();
  for (std::size_t i = 0; i < g / 2; ++i) {
    ops.push_back(PtoP(gpus[i], gpus[g - 1 - i], bytes_per_direction));
    ops.push_back(PtoP(gpus[g - 1 - i], gpus[i], bytes_per_direction));
  }
  return ops;
}

}  // namespace mgs::topo
