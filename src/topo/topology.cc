#include "topo/topology.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

namespace mgs::topo {

const char* LinkKindToString(LinkKind kind) {
  switch (kind) {
    case LinkKind::kPcie3:
      return "PCIe 3.0";
    case LinkKind::kPcie4:
      return "PCIe 4.0";
    case LinkKind::kNvlink2:
      return "NVLink 2.0";
    case LinkKind::kNvlink3:
      return "NVLink 3.0";
    case LinkKind::kXBus:
      return "X-Bus";
    case LinkKind::kUpi:
      return "UPI";
    case LinkKind::kInfinityFabric:
      return "Infinity Fabric";
    case LinkKind::kMemoryBus:
      return "Memory bus";
    case LinkKind::kNvswitchFabric:
      return "NVSwitch fabric";
    case LinkKind::kInfiniband:
      return "InfiniBand";
    case LinkKind::kNvme:
      return "NVMe";
  }
  return "unknown";
}

const char* CopyKindToString(CopyKind kind) {
  switch (kind) {
    case CopyKind::kHostToDevice:
      return "HtoD";
    case CopyKind::kDeviceToHost:
      return "DtoH";
    case CopyKind::kPeerToPeer:
      return "PtoP";
    case CopyKind::kDeviceLocal:
      return "DtoD";
  }
  return "unknown";
}

int Topology::AddCpuSocket() {
  const int socket = static_cast<int>(cpu_nodes_.size());
  nodes_.push_back(Node{NodeKind::kCpu, "CPU" + std::to_string(socket),
                        socket});
  cpu_nodes_.push_back(static_cast<NodeId>(nodes_.size() - 1));
  memory_nodes_.push_back(kInvalidNode);
  return socket;
}

Status Topology::AttachHostMemory(int socket, double read_cap,
                                  double write_cap, double duplex_cap,
                                  double write_weight) {
  if (socket < 0 || socket >= num_sockets()) {
    return Status::Invalid("no such socket: " + std::to_string(socket));
  }
  if (memory_nodes_[socket] != kInvalidNode) {
    return Status::AlreadyExists("socket already has memory attached");
  }
  nodes_.push_back(
      Node{NodeKind::kMemory, "MEM" + std::to_string(socket), socket});
  const NodeId mem = static_cast<NodeId>(nodes_.size() - 1);
  memory_nodes_[socket] = mem;
  LinkSpec spec;
  spec.name = "membus" + std::to_string(socket);
  spec.kind = LinkKind::kMemoryBus;
  spec.cap_ab = read_cap;   // memory -> cpu (reads)
  spec.cap_ba = write_cap;  // cpu -> memory (writes)
  spec.duplex_cap = duplex_cap;
  spec.duplex_weight_ba = write_weight;
  return Connect(mem, cpu_nodes_[socket], spec);
}

Result<int> Topology::AttachNvme(int socket, double read_cap,
                                 double write_cap, double duplex_cap) {
  if (socket < 0 || socket >= num_sockets()) {
    return Status::Invalid("no such socket: " + std::to_string(socket));
  }
  if (compiled_) {
    return Status::FailedPrecondition("AttachNvme after Compile");
  }
  const int nvme = num_nvme();
  nodes_.push_back(
      Node{NodeKind::kStorage, "NVME" + std::to_string(nvme), nvme});
  const NodeId node = static_cast<NodeId>(nodes_.size() - 1);
  LinkSpec spec;
  spec.name = "nvme" + std::to_string(nvme);
  spec.kind = LinkKind::kNvme;
  spec.cap_ab = write_cap;  // cpu -> device (spill writes)
  spec.cap_ba = read_cap;   // device -> cpu (read-back)
  spec.duplex_cap = duplex_cap;
  MGS_RETURN_IF_ERROR(Connect(cpu_nodes_[socket], node, std::move(spec)));
  nvmes_.push_back(
      NvmeDev{node, socket, static_cast<int>(links_.size() - 1)});
  return nvme;
}

int Topology::NvmeForSocket(int socket) const {
  for (int i = 0; i < num_nvme(); ++i) {
    if (nvmes_[i].socket == socket) return i;
  }
  return nvmes_.empty() ? -1 : 0;
}

int Topology::AddGpu(const GpuSpec& spec, int numa_socket) {
  const int gpu = static_cast<int>(gpus_.size());
  nodes_.push_back(Node{NodeKind::kGpu, "GPU" + std::to_string(gpu), gpu});
  gpus_.push_back(Gpu{spec, numa_socket,
                      static_cast<NodeId>(nodes_.size() - 1), -1});
  return gpu;
}

NodeId Topology::AddSwitch(std::string name) {
  nodes_.push_back(Node{NodeKind::kSwitch, std::move(name), -1});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Status Topology::Connect(NodeId a, NodeId b, LinkSpec spec) {
  if (a < 0 || b < 0 || a >= static_cast<NodeId>(nodes_.size()) ||
      b >= static_cast<NodeId>(nodes_.size())) {
    return Status::Invalid("Connect: invalid node id");
  }
  if (a == b) return Status::Invalid("Connect: self-link");
  if (spec.cap_ab <= 0) return Status::Invalid("Connect: cap_ab must be > 0");
  if (spec.cap_ba <= 0) spec.cap_ba = spec.cap_ab;
  links_.push_back(Link{a, b, std::move(spec)});
  return Status::OK();
}

NodeId Topology::CpuNode(int socket) const { return cpu_nodes_.at(socket); }
NodeId Topology::GpuNode(int gpu) const { return gpus_.at(gpu).node; }
NodeId Topology::MemoryNode(int socket) const {
  return memory_nodes_.at(socket);
}

std::vector<Topology::LinkResource> Topology::LinkResources() const {
  std::vector<LinkResource> out;
  for (const auto& link : links_) {
    const std::string base = link.spec.name + "(" + nodes_[link.a].name + "-" +
                             nodes_[link.b].name + ")";
    if (link.res_ab >= 0) {
      out.push_back(LinkResource{base + ">", link.spec.kind, link.res_ab});
    }
    if (link.res_ba >= 0) {
      out.push_back(LinkResource{base + "<", link.spec.kind, link.res_ba});
    }
    if (link.res_duplex >= 0) {
      out.push_back(LinkResource{base + "=", link.spec.kind, link.res_duplex});
    }
  }
  return out;
}

Status Topology::Compile(sim::FlowNetwork* net) {
  if (compiled_) return Status::FailedPrecondition("already compiled");
  for (int s = 0; s < num_sockets(); ++s) {
    if (memory_nodes_[s] == kInvalidNode) {
      return Status::FailedPrecondition("socket " + std::to_string(s) +
                                        " has no host memory attached");
    }
  }
  for (auto& link : links_) {
    const std::string base =
        link.spec.name + "(" + nodes_[link.a].name + "-" + nodes_[link.b].name +
        ")";
    link.res_ab = net->AddResource(base + ">", link.spec.cap_ab);
    link.res_ba = net->AddResource(base + "<", link.spec.cap_ba);
    if (link.spec.duplex_cap > 0) {
      link.res_duplex = net->AddResource(base + "=", link.spec.duplex_cap);
    }
  }
  for (auto& gpu : gpus_) {
    gpu.hbm = net->AddResource("hbm(" + nodes_[gpu.node].name + ")",
                               gpu.spec.memory_bandwidth);
  }
  if (cpu_spec_.multiway_merge_bw > 0) {
    cpu_merge_engine_ =
        net->AddResource("cpu-merge-engine", cpu_spec_.multiway_merge_bw);
  }
  compiled_ = true;
  // Validate reachability: every GPU from every memory, every GPU pair.
  for (int g = 0; g < num_gpus(); ++g) {
    MGS_RETURN_IF_ERROR(
        Route(MemoryNode(0), GpuNode(g), /*p2p_class=*/false).status());
  }
  for (int a = 0; a < num_gpus(); ++a) {
    for (int b = a + 1; b < num_gpus(); ++b) {
      MGS_RETURN_IF_ERROR(
          Route(GpuNode(a), GpuNode(b), /*p2p_class=*/true).status());
    }
  }
  return Status::OK();
}

Result<std::vector<Topology::RouteStep>> Topology::Route(
    NodeId from, NodeId to, bool p2p_class) const {
  const bool allow_gpu_intermediates = p2p_class && multihop_p2p_;
  // Widest-shortest-path search: minimize hop count, then maximize the
  // bottleneck capacity along the payload direction. The tie-break matters:
  // on the DGX A100, GPU->GPU is two hops both via the pair's PCIe switch
  // and via NVSwitch; P2P traffic must take the NVSwitch route.
  // Intermediate nodes must be CPUs or switches: data never routes
  // *through* a GPU (the paper treats multi-hop GPU routing as future
  // work) or through a memory node.
  if (from == to) return std::vector<RouteStep>{};
  struct Label {
    int hops = std::numeric_limits<int>::max();
    double bottleneck = 0;
    NodeId prev_node = kInvalidNode;
    int link_index = -1;
    bool forward = false;
  };
  auto better = [](int hops, double bn, const Label& label) {
    if (hops != label.hops) return hops < label.hops;
    return bn > label.bottleneck;
  };
  std::vector<Label> labels(nodes_.size());
  labels[from].hops = 0;
  labels[from].bottleneck = std::numeric_limits<double>::infinity();
  // Small graphs: Bellman-Ford-style relaxation is simplest and exact for
  // this lexicographic metric.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t li = 0; li < links_.size(); ++li) {
      const Link& link = links_[li];
      if (!link.up) continue;  // down links carry no routes
      for (int dir = 0; dir < 2; ++dir) {
        const NodeId cur = dir == 0 ? link.a : link.b;
        const NodeId next = dir == 0 ? link.b : link.a;
        const bool forward = dir == 0;
        if (labels[cur].hops == std::numeric_limits<int>::max()) continue;
        // Expansion through an intermediate is only allowed for CPU/switch
        // nodes (the origin itself may be a GPU or memory endpoint) —
        // unless multi-hop P2P routing is enabled, which also forwards
        // through GPUs.
        if (cur != from && nodes_[cur].kind != NodeKind::kCpu &&
            nodes_[cur].kind != NodeKind::kSwitch &&
            !(allow_gpu_intermediates &&
              nodes_[cur].kind == NodeKind::kGpu)) {
          continue;
        }
        // Widest tie-break uses the *effective* (possibly degraded)
        // capacity, so equal-hop alternatives avoid throttled links.
        const double cap =
            (forward ? link.spec.cap_ab : link.spec.cap_ba) * link.factor;
        const int hops = labels[cur].hops + 1;
        const double bn = std::min(labels[cur].bottleneck, cap);
        if (better(hops, bn, labels[next])) {
          labels[next] =
              Label{hops, bn, cur, static_cast<int>(li), forward};
          changed = true;
        }
      }
    }
  }
  if (labels[to].hops == std::numeric_limits<int>::max()) {
    return Status::NotFound("no route from " + nodes_[from].name + " to " +
                            nodes_[to].name);
  }
  std::vector<RouteStep> route;
  for (NodeId cur = to; cur != from; cur = labels[cur].prev_node) {
    route.push_back(RouteStep{labels[cur].link_index, labels[cur].forward});
  }
  std::reverse(route.begin(), route.end());
  return route;
}

bool Topology::RouteCrossesCpuLink(const std::vector<RouteStep>& route) const {
  for (const auto& step : route) {
    const Link& link = links_[step.link_index];
    if (nodes_[link.a].kind == NodeKind::kCpu &&
        nodes_[link.b].kind == NodeKind::kCpu) {
      return true;
    }
  }
  return false;
}

NodeId Topology::EndpointNode(const Endpoint& e) const {
  if (e.kind == Endpoint::Kind::kHostMemory) return MemoryNode(e.id);
  return GpuNode(e.id);
}

Result<std::vector<sim::PathHop>> Topology::BuildPath(
    const std::vector<RouteStep>& route, CopyKind kind, Endpoint src,
    Endpoint dst) const {
  const bool p2p = kind == CopyKind::kPeerToPeer;
  const bool crosses_cpu = RouteCrossesCpuLink(route);
  std::vector<sim::PathHop> path;
  // Multi-hop P2P: every intermediate GPU stores and forwards, charging
  // its HBM with one write + one read per byte.
  for (std::size_t s = 0; s + 1 < route.size(); ++s) {
    const Link& link = links_[route[s].link_index];
    const NodeId to_node = route[s].forward ? link.b : link.a;
    if (nodes_[to_node].kind == NodeKind::kGpu) {
      path.push_back(sim::PathHop{gpus_[nodes_[to_node].index].hbm, 2.0});
    }
  }
  for (const auto& step : route) {
    const Link& link = links_[step.link_index];
    const double class_w = p2p ? link.spec.p2p_weight : 1.0;
    path.push_back(sim::PathHop{
        step.forward ? link.res_ab : link.res_ba, class_w});
    if (link.res_duplex >= 0) {
      double w = step.forward ? link.spec.duplex_weight_ab
                              : link.spec.duplex_weight_ba;
      if (p2p) w *= link.spec.p2p_duplex_weight;
      if (crosses_cpu) w *= link.spec.remote_duplex_weight;
      path.push_back(sim::PathHop{link.res_duplex, w});
    }
  }
  // Endpoint device memories.
  auto add_hbm = [&](const Endpoint& e, double weight) {
    if (e.kind == Endpoint::Kind::kGpu) {
      path.push_back(sim::PathHop{gpus_[e.id].hbm, weight});
    }
  };
  if (kind == CopyKind::kDeviceLocal) {
    // Device-local copy: read + write within one HBM.
    add_hbm(src, 2.0);
  } else {
    add_hbm(src, 1.0);
    add_hbm(dst, 1.0);
  }
  return path;
}

Result<std::vector<sim::PathHop>> Topology::CopyPath(CopyKind kind,
                                                     Endpoint src,
                                                     Endpoint dst) const {
  if (!compiled_) return Status::FailedPrecondition("topology not compiled");
  switch (kind) {
    case CopyKind::kHostToDevice:
      if (src.kind != Endpoint::Kind::kHostMemory ||
          dst.kind != Endpoint::Kind::kGpu) {
        return Status::Invalid("HtoD requires host-memory src and GPU dst");
      }
      break;
    case CopyKind::kDeviceToHost:
      if (src.kind != Endpoint::Kind::kGpu ||
          dst.kind != Endpoint::Kind::kHostMemory) {
        return Status::Invalid("DtoH requires GPU src and host-memory dst");
      }
      break;
    case CopyKind::kPeerToPeer:
      if (src.kind != Endpoint::Kind::kGpu ||
          dst.kind != Endpoint::Kind::kGpu || src.id == dst.id) {
        return Status::Invalid("P2P requires two distinct GPUs");
      }
      break;
    case CopyKind::kDeviceLocal:
      if (src.kind != Endpoint::Kind::kGpu || dst.kind != Endpoint::Kind::kGpu ||
          src.id != dst.id) {
        return Status::Invalid("DtoD requires one GPU");
      }
      return BuildPath({}, kind, src, dst);
  }
  MGS_ASSIGN_OR_RETURN(
      auto route,
      Route(EndpointNode(src), EndpointNode(dst),
            kind == CopyKind::kPeerToPeer));
  return BuildPath(route, kind, src, dst);
}

Result<double> Topology::CopyLatency(CopyKind kind, Endpoint src,
                                     Endpoint dst) const {
  if (!compiled_) return Status::FailedPrecondition("topology not compiled");
  if (kind == CopyKind::kDeviceLocal) return 0.0;
  MGS_ASSIGN_OR_RETURN(
      auto route,
      Route(EndpointNode(src), EndpointNode(dst),
            kind == CopyKind::kPeerToPeer));
  double latency = 0;
  for (const auto& step : route) {
    latency += links_[step.link_index].spec.latency;
  }
  return latency;
}

Result<std::vector<sim::PathHop>> Topology::CpuMemoryWorkPath(
    int socket, double amplification) const {
  if (!compiled_) return Status::FailedPrecondition("topology not compiled");
  if (socket < 0 || socket >= num_sockets()) {
    return Status::Invalid("no such socket");
  }
  // Locate the memory-bus link of this socket.
  const NodeId mem = memory_nodes_[socket];
  const NodeId cpu = cpu_nodes_[socket];
  for (const auto& link : links_) {
    if ((link.a == mem && link.b == cpu) || (link.a == cpu && link.b == mem)) {
      std::vector<sim::PathHop> path;
      const bool mem_is_a = link.a == mem;
      const auto read_res = mem_is_a ? link.res_ab : link.res_ba;
      const auto write_res = mem_is_a ? link.res_ba : link.res_ab;
      path.push_back(sim::PathHop{read_res, amplification / 2});
      path.push_back(sim::PathHop{write_res, amplification / 2});
      if (link.res_duplex >= 0) {
        path.push_back(sim::PathHop{link.res_duplex, amplification});
      }
      if (cpu_merge_engine_ >= 0) {
        path.push_back(sim::PathHop{cpu_merge_engine_, 1.0});
      }
      return path;
    }
  }
  return Status::NotFound("socket has no memory bus");
}

Result<std::vector<sim::PathHop>> Topology::NvmePath(int nvme,
                                                     bool write) const {
  if (!compiled_) return Status::FailedPrecondition("topology not compiled");
  if (nvme < 0 || nvme >= num_nvme()) {
    return Status::NotFound("no such nvme: " + std::to_string(nvme));
  }
  const NvmeDev& dev = nvmes_[nvme];
  const Link& nlink = links_[dev.link_index];
  if (!nlink.up) {
    return Status::Unavailable("nvme" + std::to_string(nvme) + " is down");
  }
  std::vector<sim::PathHop> path;
  // Host-memory side: spilling reads the staged runs out of memory; the
  // read-back writes them in.
  const NodeId mem = memory_nodes_[dev.socket];
  const NodeId cpu = cpu_nodes_[dev.socket];
  for (const auto& link : links_) {
    if ((link.a == mem && link.b == cpu) || (link.a == cpu && link.b == mem)) {
      const bool mem_is_a = link.a == mem;
      const auto read_res = mem_is_a ? link.res_ab : link.res_ba;
      const auto write_res = mem_is_a ? link.res_ba : link.res_ab;
      path.push_back(sim::PathHop{write ? read_res : write_res, 1.0});
      if (link.res_duplex >= 0) {
        path.push_back(sim::PathHop{link.res_duplex, 1.0});
      }
      break;
    }
  }
  // Device side: AttachNvme connected cpu(a) -> device(b), so res_ab is the
  // write direction and res_ba the read direction.
  path.push_back(sim::PathHop{write ? nlink.res_ab : nlink.res_ba, 1.0});
  if (nlink.res_duplex >= 0) {
    path.push_back(sim::PathHop{nlink.res_duplex, 1.0});
  }
  return path;
}

Result<bool> Topology::IsDirectP2p(int gpu_a, int gpu_b) const {
  if (gpu_a < 0 || gpu_b < 0 || gpu_a >= num_gpus() || gpu_b >= num_gpus()) {
    return Status::Invalid("no such GPU");
  }
  if (gpu_a == gpu_b) return true;
  MGS_ASSIGN_OR_RETURN(auto route,
                       Route(GpuNode(gpu_a), GpuNode(gpu_b), true));
  for (const auto& step : route) {
    const Link& link = links_[step.link_index];
    if (nodes_[link.a].kind == NodeKind::kCpu ||
        nodes_[link.b].kind == NodeKind::kCpu) {
      return false;
    }
  }
  return true;
}

double Topology::ResourceCapacity(sim::ResourceId res) const {
  for (const auto& link : links_) {
    // Effective values: a degraded or down link reports its runtime
    // capacity, so static what-if analyses (GPU-set scoring, mesh-health
    // checks) see the faulted fabric, not the calibrated one.
    const double f = link.up ? link.factor : 0.0;
    if (link.res_ab == res) return link.spec.cap_ab * f;
    if (link.res_ba == res) return link.spec.cap_ba * f;
    if (link.res_duplex == res) return link.spec.duplex_cap * f;
  }
  for (const auto& gpu : gpus_) {
    if (gpu.hbm == res) return gpu.spec.memory_bandwidth;
  }
  if (res == cpu_merge_engine_ && res >= 0) {
    return cpu_spec_.multiway_merge_bw;
  }
  return std::numeric_limits<double>::infinity();
}

Result<double> Topology::LoneFlowBandwidth(CopyKind kind, Endpoint src,
                                           Endpoint dst) const {
  MGS_ASSIGN_OR_RETURN(auto path, CopyPath(kind, src, dst));
  // A lone flow's rate is limited by the tightest hop.
  double rate = std::numeric_limits<double>::infinity();
  for (const auto& hop : path) {
    rate = std::min(rate, ResourceCapacity(hop.resource) / hop.weight);
  }
  return rate;
}

std::string Topology::QualifiedLinkName(const Link& link) const {
  return link.spec.name + "(" + nodes_[link.a].name + "-" +
         nodes_[link.b].name + ")";
}

std::vector<int> Topology::MatchLinks(const std::string& name) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].spec.name == name || QualifiedLinkName(links_[i]) == name) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

void Topology::ApplyLinkState(const Link& link, sim::FlowNetwork* net) {
  const double f = link.up ? link.factor : 0.0;
  net->SetResourceCapacity(link.res_ab, link.spec.cap_ab * f);
  net->SetResourceCapacity(link.res_ba, link.spec.cap_ba * f);
  if (link.res_duplex >= 0) {
    net->SetResourceCapacity(link.res_duplex, link.spec.duplex_cap * f);
  }
}

Status Topology::SetLinkBandwidthFactor(const std::string& name, double factor,
                                        sim::FlowNetwork* net) {
  if (!compiled_) return Status::FailedPrecondition("topology not compiled");
  if (!(factor > 0)) {
    return Status::Invalid(
        "bandwidth factor must be > 0 (use SetLinkUp(false) for an outage)");
  }
  const auto matches = MatchLinks(name);
  if (matches.empty()) return Status::NotFound("no such link: " + name);
  for (int i : matches) {
    links_[i].factor = factor;
    ApplyLinkState(links_[i], net);
  }
  return Status::OK();
}

Status Topology::SetLinkUp(const std::string& name, bool up,
                           sim::FlowNetwork* net) {
  if (!compiled_) return Status::FailedPrecondition("topology not compiled");
  const auto matches = MatchLinks(name);
  if (matches.empty()) return Status::NotFound("no such link: " + name);
  for (int i : matches) {
    Link& link = links_[i];
    if (link.up == up) continue;
    link.up = up;
    if (!up) {
      // Fail-stop outage: in-flight flows cannot be left to starve on a
      // zero-capacity resource (the network would wedge); tear them down.
      const Status reason = Status::Unavailable(
          "link " + QualifiedLinkName(link) + " is down");
      net->AbortFlowsCrossing(link.res_ab, reason);
      net->AbortFlowsCrossing(link.res_ba, reason);
      if (link.res_duplex >= 0) {
        net->AbortFlowsCrossing(link.res_duplex, reason);
      }
    }
    ApplyLinkState(link, net);
  }
  return Status::OK();
}

Result<double> Topology::LinkBandwidthFactor(const std::string& name) const {
  const auto matches = MatchLinks(name);
  if (matches.empty()) return Status::NotFound("no such link: " + name);
  return links_[matches.front()].factor;
}

Result<bool> Topology::LinkIsUp(const std::string& name) const {
  const auto matches = MatchLinks(name);
  if (matches.empty()) return Status::NotFound("no such link: " + name);
  return links_[matches.front()].up;
}

std::vector<std::string> Topology::LinkNames() const {
  std::vector<std::string> out;
  out.reserve(links_.size());
  for (const auto& link : links_) out.push_back(QualifiedLinkName(link));
  return out;
}

int Topology::DegradedLinkCount() const {
  int n = 0;
  for (const auto& link : links_) {
    if (link.up && link.factor != 1.0) ++n;
  }
  return n;
}

int Topology::DownLinkCount() const {
  int n = 0;
  for (const auto& link : links_) {
    if (!link.up) ++n;
  }
  return n;
}

Result<sim::ResourceId> Topology::GpuHbmResource(int gpu) const {
  if (!compiled_) return Status::FailedPrecondition("topology not compiled");
  if (gpu < 0 || gpu >= num_gpus()) {
    return Status::Invalid("no such GPU: " + std::to_string(gpu));
  }
  return gpus_[gpu].hbm;
}

Result<std::string> Topology::DescribeRoute(CopyKind kind, Endpoint src,
                                            Endpoint dst) const {
  if (!compiled_) return Status::FailedPrecondition("topology not compiled");
  if (kind == CopyKind::kDeviceLocal) {
    return "GPU" + std::to_string(src.id) + " (device-local)";
  }
  MGS_ASSIGN_OR_RETURN(
      auto route,
      Route(EndpointNode(src), EndpointNode(dst),
            kind == CopyKind::kPeerToPeer));
  std::string out =
      src.kind == Endpoint::Kind::kGpu ? "GPU" + std::to_string(src.id)
                                       : "MEM" + std::to_string(src.id);
  for (const auto& step : route) {
    const Link& link = links_[step.link_index];
    const NodeId to = step.forward ? link.b : link.a;
    out += " -[" + link.spec.name + "]-> " + nodes_[to].name;
  }
  return out;
}

std::string Topology::Describe() const {
  std::ostringstream os;
  os << "Topology: " << name_ << "\n";
  os << "  CPU: " << cpu_spec_.model << " (" << cpu_spec_.sockets
     << " sockets, " << cpu_spec_.cores << " cores)\n";
  for (int g = 0; g < num_gpus(); ++g) {
    const auto& spec = gpus_[g].spec;
    os << "  GPU" << g << ": " << spec.model << ", "
       << FormatBytes(spec.memory_capacity_bytes) << " HBM @ "
       << FormatThroughput(spec.memory_bandwidth) << ", NUMA "
       << gpus_[g].socket << "\n";
  }
  for (const auto& link : links_) {
    os << "  " << nodes_[link.a].name << " <-> " << nodes_[link.b].name
       << "  " << link.spec.name << " [" << LinkKindToString(link.spec.kind)
       << "] "
       << FormatThroughput(link.spec.cap_ab) << " / "
       << FormatThroughput(link.spec.cap_ba);
    if (link.spec.duplex_cap > 0) {
      os << " (duplex " << FormatThroughput(link.spec.duplex_cap) << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mgs::topo
