// Single-GPU sorting and merging primitives (Section 5.1, Table 2).
//
// Each primitive couples (a) a real functional algorithm executed on the
// simulated device's memory with (b) a calibrated duration model for the
// GPU it runs on. The four sort primitives stand in for the libraries the
// paper evaluates:
//   kThrustRadix  - thrust::sort (LSB radix, 1.11.0 with decoupled
//                   look-back; Table 2: 36 ms / 1e9 keys on A100)
//   kCubRadix     - cub::DeviceRadixSort (identical backend, 36 ms)
//   kStehleMsb    - Stehle & Jacobsen MSB radix sort (57 ms)
//   kMgpuMerge    - Modern GPU merge sort (200 ms)

#ifndef MGS_GPUSORT_PRIMITIVES_H_
#define MGS_GPUSORT_PRIMITIVES_H_

#include <cstdint>
#include <string>

#include "topo/calibration.h"
#include "topo/topology.h"
#include "util/status.h"

namespace mgs::gpusort {

enum class SortAlgo { kThrustRadix, kCubRadix, kStehleMsb, kMgpuMerge };

const char* SortAlgoToString(SortAlgo algo);

/// Relative slowdown of `algo` vs the Thrust/CUB baseline (Table 2 ratios).
double AlgoSlowdown(SortAlgo algo);

/// Simulated duration of sorting `logical_keys` keys of `key_bytes` width
/// on a GPU described by `gpu`.
double SortDuration(const topo::GpuSpec& gpu, SortAlgo algo,
                    double logical_keys, std::size_t key_bytes);

/// Simulated duration of a device-local two-way merge producing
/// `logical_keys` output keys.
double MergeDuration(const topo::GpuSpec& gpu, double logical_keys,
                     std::size_t key_bytes);

}  // namespace mgs::gpusort

#endif  // MGS_GPUSORT_PRIMITIVES_H_
