#include "gpusort/primitives.h"
#include <cmath>


namespace mgs::gpusort {

const char* SortAlgoToString(SortAlgo algo) {
  switch (algo) {
    case SortAlgo::kThrustRadix:
      return "Thrust";
    case SortAlgo::kCubRadix:
      return "CUB";
    case SortAlgo::kStehleMsb:
      return "Stehle";
    case SortAlgo::kMgpuMerge:
      return "MGPU";
  }
  return "unknown";
}

double AlgoSlowdown(SortAlgo algo) {
  switch (algo) {
    case SortAlgo::kThrustRadix:
    case SortAlgo::kCubRadix:
      return 1.0;
    case SortAlgo::kStehleMsb:
      return topo::cal::kStehleSlowdown;
    case SortAlgo::kMgpuMerge:
      return topo::cal::kMgpuSlowdown;
  }
  return 1.0;
}

double SortDuration(const topo::GpuSpec& gpu, SortAlgo algo,
                    double logical_keys, std::size_t key_bytes) {
  const double base_rate =
      key_bytes <= 4 ? gpu.sort_rate_32 : gpu.sort_rate_64;
  double duration = logical_keys / base_rate * AlgoSlowdown(algo);
  if (algo == SortAlgo::kMgpuMerge) {
    // Merge sort is O(n log n): Table 2's 5.5x ratio is at n = 1e9; scale
    // the log factor relative to that reference point.
    const double ref_log = 30.0;  // log2(1e9)
    const double n_log =
        logical_keys > 1 ? std::log2(logical_keys) : 1.0;
    duration *= n_log / ref_log;
  }
  return duration;
}

double MergeDuration(const topo::GpuSpec& gpu, double logical_keys,
                     std::size_t key_bytes) {
  const double rate_32 = gpu.merge_rate_32;
  const double rate = key_bytes <= 4 ? rate_32 : rate_32 / 2.0;
  return logical_keys / rate;
}

}  // namespace mgs::gpusort
