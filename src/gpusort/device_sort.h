// Stream-level device sort/merge launches: couple the functional algorithms
// (src/cpusort, executing on the simulated device's memory) with the
// calibrated duration model (src/gpusort/primitives.h).

#ifndef MGS_GPUSORT_DEVICE_SORT_H_
#define MGS_GPUSORT_DEVICE_SORT_H_

#include <algorithm>
#include <cstdint>

#include "cpusort/cpusort.h"
#include "gpusort/primitives.h"
#include "vgpu/platform.h"

namespace mgs::gpusort {

/// Enqueues a device sort of data[offset, offset+count) on `stream`.
/// `aux` is the auxiliary buffer thrust::sort/CUB require (capacity >=
/// count); in-place algorithms (Stehle MSB) ignore it. Keys are sorted
/// ascending.
template <typename T>
void SortAsync(vgpu::Stream& stream, vgpu::DeviceBuffer<T>& data,
               std::int64_t offset, std::int64_t count,
               vgpu::DeviceBuffer<T>& aux,
               SortAlgo algo = SortAlgo::kThrustRadix) {
  CheckOk(offset >= 0 && count >= 0 && offset + count <= data.size() &&
                  (algo == SortAlgo::kStehleMsb || count <= aux.size())
              ? Status::OK()
              : Status::Invalid("SortAsync: bad range or aux too small"));
  const auto& spec = stream.device()->spec();
  const double scale = stream.device()->platform()->scale();
  const double duration =
      SortDuration(spec, algo, static_cast<double>(count) * scale, sizeof(T));
  T* d = data.data() + offset;
  T* a = aux.data();
  stream.LaunchAsync(
      duration,
      [d, a, count, algo] {
        switch (algo) {
          case SortAlgo::kThrustRadix:
          case SortAlgo::kCubRadix:
            cpusort::LsbRadixSort(d, a, count);
            break;
          case SortAlgo::kStehleMsb:
            cpusort::ParadisSort(d, count);
            break;
          case SortAlgo::kMgpuMerge:
            cpusort::MergeSort(d, a, count);
            break;
        }
      },
      std::string("sort:") + SortAlgoToString(algo));
}

/// Enqueues a device-local two-way merge: merges the sorted runs
/// src[a_off, a_off+a_len) and src[b_off, b_off+b_len) into
/// dst[dst_off, ...). `dst` must be a different buffer on the same device
/// (thrust::merge is out-of-place).
template <typename T>
void MergeLocalAsync(vgpu::Stream& stream, vgpu::DeviceBuffer<T>& dst,
                     std::int64_t dst_off, const vgpu::DeviceBuffer<T>& src,
                     std::int64_t a_off, std::int64_t a_len,
                     std::int64_t b_off, std::int64_t b_len) {
  CheckOk(a_off >= 0 && b_off >= 0 && a_len >= 0 && b_len >= 0 &&
                  a_off + a_len <= src.size() && b_off + b_len <= src.size() &&
                  dst_off >= 0 && dst_off + a_len + b_len <= dst.size() &&
                  dst.device_id() == src.device_id() && &dst != &src
              ? Status::OK()
              : Status::Invalid("MergeLocalAsync: bad ranges"));
  const auto& spec = stream.device()->spec();
  const double scale = stream.device()->platform()->scale();
  const double duration = MergeDuration(
      spec, static_cast<double>(a_len + b_len) * scale, sizeof(T));
  const T* a = src.data() + a_off;
  const T* b = src.data() + b_off;
  T* out = dst.data() + dst_off;
  stream.LaunchAsync(
      duration,
      [a, a_len, b, b_len, out] {
        std::merge(a, a + a_len, b, b + b_len, out);
      },
      "merge-local");
}

}  // namespace mgs::gpusort

#endif  // MGS_GPUSORT_DEVICE_SORT_H_
