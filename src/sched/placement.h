// Topology-aware placement: which GPUs should a job run on, given what is
// free, what other tenants hold, and how the interconnect is shared?
//
// Candidate GPUs are filtered by memory availability (vgpu reservations
// included) and, unless GPU sharing is enabled, by exclusivity. Candidate
// *sets* are then scored with core::ChooseGpuSetConstrained: the aggregate
// HtoD rate the new job's flows would get under weighted max-min sharing
// while running tenants keep their host links loaded. On a DGX A100 this
// steers a 1-GPU job away from the PCIe switch of a running one — the
// paper's Section 4 shared-switch plateau, used as a scheduling signal.

#ifndef MGS_SCHED_PLACEMENT_H_
#define MGS_SCHED_PLACEMENT_H_

#include <optional>
#include <vector>

#include "net/cluster.h"
#include "util/status.h"
#include "vgpu/platform.h"

namespace mgs::sched {

struct PlacementRequest {
  int gpus = 1;
  /// Logical bytes of device memory the job needs on each of its GPUs.
  double per_gpu_bytes = 0;
  /// Non-empty: exact (ordered) GPU set; the placer only checks it fits.
  std::vector<int> pinned;
};

class Placer {
 public:
  /// `cluster` non-null: the platform is a multi-node cluster and
  /// single-node placements are confined to one node (P2P across the
  /// fabric is the distributed sorter's job, not a side effect of GPU
  /// scoring).
  Placer(vgpu::Platform* platform, bool allow_gpu_sharing,
         const net::ClusterInfo* cluster = nullptr)
      : platform_(platform),
        allow_gpu_sharing_(allow_gpu_sharing),
        cluster_(cluster) {}

  /// GPUs that can host `per_gpu_bytes` more logical bytes right now.
  /// `running_per_gpu[g]` is the number of jobs currently running on GPU g
  /// (busy GPUs are excluded unless sharing is enabled).
  std::vector<int> CandidateGpus(double per_gpu_bytes,
                                 const std::vector<int>& running_per_gpu) const;

  /// Chooses an ordered GPU set for the request, or nullopt when it cannot
  /// run right now (it stays queued). Errors indicate a malformed request.
  Result<std::optional<std::vector<int>>> Place(
      const PlacementRequest& request,
      const std::vector<int>& running_per_gpu) const;

  /// Multi-node placement for distributed jobs: chooses `nodes` whole
  /// cluster nodes, each of whose GPUs is healthy, unoccupied (unless
  /// sharing is on) and can host `per_gpu_bytes`. Rack-aware: the selection
  /// is packed into as few racks as possible so the cross-node shuffle
  /// stays off the (possibly oversubscribed) spine uplinks; ties go to the
  /// lowest rack / node ids, so placement is deterministic. Returns the
  /// ascending node set, or nullopt when the job cannot run right now.
  Result<std::optional<std::vector<int>>> PlaceNodes(
      const net::ClusterInfo& cluster, int nodes, double per_gpu_bytes,
      const std::vector<int>& running_per_gpu) const;

 private:
  vgpu::Platform* platform_;
  bool allow_gpu_sharing_;
  const net::ClusterInfo* cluster_;
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_PLACEMENT_H_
