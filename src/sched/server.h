// SortServer: a simulated multi-tenant sorting service on one shared
// vgpu::Platform.
//
// Tenants submit JobSpecs (open-loop, pre-timed arrivals) or run as
// closed-loop clients (submit, await completion, think, repeat). Each
// arrival passes admission control (sched/admission.h), waits in a
// policy-ordered queue (sched/queue.h), is placed on a GPU set by the
// topology-aware placer (sched/placement.h), and then executes as a
// core::P2pSortTask coroutine on the *shared* simulator — so concurrent
// jobs genuinely contend for PCIe switches, UPI and NVLink in the flow
// network, which is what the latency distribution measures.
//
// The service reports per-job latency percentiles, queueing delay vs
// service time, aggregate throughput, SLO attainment and per-link
// utilization; with a TraceRecorder attached, every job contributes
// queue/run spans and sampled link-utilization counters to one Chrome
// trace for the whole run.

#ifndef MGS_SCHED_SERVER_H_
#define MGS_SCHED_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "net/cluster.h"
#include "sched/admission.h"
#include "sched/job.h"
#include "sched/placement.h"
#include "sched/queue.h"
#include "sched/workload.h"
#include "sim/task.h"
#include "util/stats.h"
#include "vgpu/platform.h"

namespace mgs::sched {

// Metric families the service publishes when the platform has a metrics
// registry attached (vgpu::Platform::SetMetrics).
inline constexpr char kSchedQueueDepth[] = "mgs_sched_queue_depth";
inline constexpr char kSchedRunningJobs[] = "mgs_sched_running_jobs";
inline constexpr char kSchedJobs[] = "mgs_sched_jobs_total";
inline constexpr char kSchedRejections[] = "mgs_sched_rejections_total";
inline constexpr char kSchedSloViolations[] =
    "mgs_sched_slo_violations_total";
inline constexpr char kSchedSloBurnSeconds[] =
    "mgs_sched_slo_burn_seconds_total";
inline constexpr char kSchedJobLatencySeconds[] =
    "mgs_sched_job_latency_seconds";
inline constexpr char kSchedQueueDelaySeconds[] =
    "mgs_sched_queue_delay_seconds";

/// Recovery policy under injected faults (src/fault). Defaults preserve the
/// fail-fast seed behavior: no retries, no health monitor, no fallback.
struct RecoveryOptions {
  /// Retry budget per job for retryable (kUnavailable) failures: transient
  /// copy errors, device loss mid-run, link outages. 0 = fail on first
  /// error.
  int max_retries = 0;
  /// Exponential backoff before requeueing a failed attempt:
  /// base * multiplier^(retry-1), +/- jitter fraction (seeded, so runs with
  /// the same seed back off identically).
  double backoff_base_seconds = 0.25;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.25;
  std::uint64_t jitter_seed = 42;
  /// > 0: before dispatching on a multi-GPU set, compare each pair's lone
  /// P2P bandwidth against its healthy-topology baseline; if any pair is
  /// below this fraction (or unroutable), run the HET (via-host) sorter
  /// instead of the P2P sorter — graceful degradation around sick meshes.
  double het_fallback_below = 0;
  /// > 0: run a periodic health monitor that publishes availability gauges
  /// and permanently fails queued jobs that can no longer be satisfied
  /// (more GPUs requested than remain healthy, or a pinned GPU died) —
  /// without it such jobs would wait forever. Enable whenever faults are
  /// injected.
  double health_check_seconds = 0;
};

struct ServerOptions {
  QueuePolicy policy = QueuePolicy::kFifo;
  AdmissionOptions admission;
  RecoveryOptions recovery;
  /// Cap on co-running jobs (0 = bounded only by GPUs/memory).
  int max_concurrent_jobs = 0;
  /// Allow placing a job on a GPU that is already running another one
  /// (memory permitting). Off by default: exclusive GPUs.
  bool allow_gpu_sharing = false;
  /// How single-node sorts execute: phase barriers (the seed behavior) or
  /// the task-graph executor. Under kGraph the server owns one shared
  /// exec::GraphExecutor, so concurrent jobs interleave at node
  /// granularity and JobSpec::priority extends to node dispatch.
  core::ExecMode exec_mode = core::ExecMode::kPhased;
  /// Check every job's output with std::is_sorted (functional layer).
  bool verify_sorted = true;
  /// > 0: report the fraction of completed jobs with latency <= this.
  double slo_seconds = 0;
  /// > 0: sample per-link utilization counters into the trace this often.
  double utilization_sample_seconds = 0;
  /// Non-null: the platform is a multi-node cluster (net::BuildCluster) and
  /// the server accepts distributed jobs (JobSpec::nodes > 1), placing them
  /// on whole nodes rack-aware and running net::DistributedSortTask. Must
  /// describe the same topology the platform was built from and outlive the
  /// server. Single-node jobs are unaffected.
  const net::ClusterInfo* cluster = nullptr;
};

/// One interconnect link's mean utilization over the service run.
struct LinkLoad {
  std::string name;
  double utilization = 0;  // in [0, 1]
};

struct ServiceReport {
  /// Every job the service saw, in submission (id) order.
  std::vector<JobRecord> jobs;
  /// Job ids in completion order (deterministic for a fixed seed/config).
  std::vector<std::int64_t> completion_order;
  int completed = 0;
  /// Permanent failures only; attempts that were retried successfully count
  /// under `recovered`, not here.
  int failed = 0;
  int rejected = 0;
  /// Completed jobs that needed at least one retry.
  int recovered = 0;
  /// Retry dispatches across all jobs.
  std::int64_t total_retries = 0;
  /// Jobs that ran on the HET fallback path instead of P2P.
  int het_fallbacks = 0;
  /// Mean time to repair: average of finish - first_failure over recovered
  /// jobs (0 when none recovered).
  double mttr_seconds = 0;
  /// Last completion minus first arrival (simulated seconds).
  double makespan = 0;
  LatencySummary latency;       // arrival -> finish, completed jobs
  LatencySummary queue_delay;   // arrival -> dispatch
  LatencySummary service_time;  // dispatch -> finish
  /// Completed logical keys / makespan.
  double aggregate_gkeys_per_sec = 0;
  /// Fraction of completed jobs within ServerOptions::slo_seconds
  /// (-1 when no SLO is configured).
  double slo_attainment = -1;
  /// Per-link mean utilization, busiest first.
  std::vector<LinkLoad> links;
};

class SortServer {
 public:
  SortServer(vgpu::Platform* platform, ServerOptions options);

  /// Queues an open-loop job for arrival at spec.arrival_seconds.
  /// Call before Run(). Returns the job id.
  std::int64_t Submit(JobSpec spec);
  void Submit(const std::vector<JobSpec>& specs);

  /// Adds a closed-loop client population (started by Run()).
  void AddClosedLoop(ClosedLoopOptions options);

  /// Runs the service to completion (all submitted jobs and all client
  /// loops finished) and returns the report. Call once.
  Result<ServiceReport> Run();

  /// Record of a submitted job (valid after Run()).
  const JobRecord& job(std::int64_t id) const;

 private:
  struct JobSlot {
    JobRecord record;
    std::shared_ptr<sim::Trigger> done = std::make_shared<sim::Trigger>();
  };

  double Now() const;
  /// The platform's registry, or nullptr when telemetry is off.
  obs::MetricsRegistry* metrics() const { return platform_->metrics(); }
  /// Refreshes the queue-depth / running-jobs gauges (no-op without a
  /// registry). Called on every queue or dispatch transition.
  void PublishQueueGauges();
  /// Terminal-state accounting: jobs-by-state counter, latency/queue-delay
  /// histograms, and SLO burn for completed jobs.
  void PublishJobOutcome(const JobRecord& rec);
  /// Per-GPU device memory a job needs, mirroring P2pSortTask's allocation
  /// (primary + aux buffer of ceil(n/g) elements each, in logical bytes).
  double PerGpuBytes(const JobSpec& spec) const;

  std::int64_t AddSlot(JobSpec spec);
  void OnArrival(std::int64_t id);
  /// Whole-node placement for a distributed job: fills `node_set` and
  /// returns the flattened GPU set (or nullopt when it cannot run yet).
  Result<std::optional<std::vector<int>>> PlaceDistributed(
      const JobRecord& rec, double per_gpu_bytes,
      std::vector<int>* node_set) const;
  void FinishTerminal(JobSlot& slot);  // fire + bookkeeping for any terminal state
  void TryDispatch();
  void MaybeFinish();
  /// Backoff expiry: puts a kRetryBackoff job back in the queue.
  void RequeueJob(std::int64_t id);
  /// True when the job's P2P mesh is degraded below the fallback threshold
  /// (see RecoveryOptions::het_fallback_below).
  bool ShouldFallBackToHet(const JobRecord& rec) const;
  /// Healthy (non-failed) device count.
  int HealthyGpus() const;

  /// Threads the server's execution mode / shared executor / job priority /
  /// per-job stream range into a sorter's options.
  void ConfigureExec(const JobRecord& rec, core::SortOptions* options) const;

  sim::Task<void> ServiceRoot();
  sim::Task<void> RunJob(std::int64_t id);
  template <typename T>
  sim::Task<void> ExecuteTyped(JobRecord& rec);
  sim::Task<void> ClientLoop(int client_index, ClosedLoopOptions options,
                             std::uint64_t seed);
  sim::Task<void> UtilizationSampler();
  sim::Task<void> HealthMonitor();

  ServiceReport BuildReport() const;

  vgpu::Platform* platform_;
  ServerOptions options_;
  /// Shared node-level executor for all jobs (ServerOptions::exec_mode ==
  /// kGraph only, null otherwise).
  std::unique_ptr<exec::GraphExecutor> executor_;
  AdmissionController admission_;
  Placer placer_;
  JobQueue queue_;

  std::vector<std::unique_ptr<JobSlot>> slots_;  // job id == index
  std::vector<ClosedLoopOptions> closed_loops_;

  std::vector<int> running_per_gpu_;
  int running_jobs_ = 0;
  int unfinished_ = 0;    // slots not yet in a terminal state
  int live_clients_ = 0;  // closed-loop clients still running
  std::vector<std::int64_t> completion_order_;
  sim::Trigger all_done_;
  SplitMix64 jitter_rng_;
  /// Healthy-topology lone P2P bandwidth per GPU pair (flattened n*n; -1 =
  /// unroutable). Captured at construction, before any injected fault, so
  /// ShouldFallBackToHet has an undegraded baseline. Empty unless
  /// recovery.het_fallback_below > 0.
  std::vector<double> p2p_baseline_;
  bool stop_sampler_ = false;
  double service_start_ = 0;
  double service_end_ = 0;
  bool ran_ = false;
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_SERVER_H_
