// SortServer: a simulated multi-tenant sorting service on one shared
// vgpu::Platform.
//
// Tenants submit JobSpecs (open-loop, pre-timed arrivals) or run as
// closed-loop clients (submit, await completion, think, repeat). Each
// arrival passes admission control (sched/admission.h), waits in a
// policy-ordered queue (sched/queue.h), is placed on a GPU set by the
// topology-aware placer (sched/placement.h), and then executes as a
// core::P2pSortTask coroutine on the *shared* simulator — so concurrent
// jobs genuinely contend for PCIe switches, UPI and NVLink in the flow
// network, which is what the latency distribution measures.
//
// The service reports per-job latency percentiles, queueing delay vs
// service time, aggregate throughput, SLO attainment and per-link
// utilization; with a TraceRecorder attached, every job contributes
// queue/run spans and sampled link-utilization counters to one Chrome
// trace for the whole run.

#ifndef MGS_SCHED_SERVER_H_
#define MGS_SCHED_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "net/cluster.h"
#include "sched/admission.h"
#include "sched/job.h"
#include "sched/placement.h"
#include "sched/queue.h"
#include "sched/workload.h"
#include "sim/task.h"
#include "util/stats.h"
#include "vgpu/platform.h"

namespace mgs::sched {

// Metric families the service publishes when the platform has a metrics
// registry attached (vgpu::Platform::SetMetrics).
inline constexpr char kSchedQueueDepth[] = "mgs_sched_queue_depth";
inline constexpr char kSchedRunningJobs[] = "mgs_sched_running_jobs";
inline constexpr char kSchedJobs[] = "mgs_sched_jobs_total";
inline constexpr char kSchedRejections[] = "mgs_sched_rejections_total";
inline constexpr char kSchedSloViolations[] =
    "mgs_sched_slo_violations_total";
inline constexpr char kSchedSloBurnSeconds[] =
    "mgs_sched_slo_burn_seconds_total";
inline constexpr char kSchedJobLatencySeconds[] =
    "mgs_sched_job_latency_seconds";
inline constexpr char kSchedQueueDelaySeconds[] =
    "mgs_sched_queue_delay_seconds";

/// Recovery policy under injected faults (src/fault). Defaults preserve the
/// fail-fast seed behavior: no retries, no health monitor, no fallback.
struct RecoveryOptions {
  /// Retry budget per job for retryable (kUnavailable) failures: transient
  /// copy errors, device loss mid-run, link outages. 0 = fail on first
  /// error.
  int max_retries = 0;
  /// Exponential backoff before requeueing a failed attempt:
  /// base * multiplier^(retry-1), +/- jitter fraction (seeded, so runs with
  /// the same seed back off identically).
  double backoff_base_seconds = 0.25;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.25;
  std::uint64_t jitter_seed = 42;
  /// > 0: before dispatching on a multi-GPU set, compare each pair's lone
  /// P2P bandwidth against its healthy-topology baseline; if any pair is
  /// below this fraction (or unroutable), run the HET (via-host) sorter
  /// instead of the P2P sorter — graceful degradation around sick meshes.
  double het_fallback_below = 0;
  /// > 0: run a periodic health monitor that publishes availability gauges
  /// and permanently fails queued jobs that can no longer be satisfied
  /// (more GPUs requested than remain healthy, or a pinned GPU died) —
  /// without it such jobs would wait forever. Enable whenever faults are
  /// injected.
  double health_check_seconds = 0;
};

/// Batch coalescing: at dispatch time, merge queued small jobs with the
/// same shape (type, GPU count, priority, single-node, unpinned) into the
/// leader's device pass. The batch sorts the concatenated datasets once and
/// splits per-job results (and metrics / SLO attribution) back out —
/// turning many tiny passes into one, which is what a million-job trace
/// needs. Per-job outputs are bitwise-identical to solo runs.
struct CoalesceOptions {
  bool enabled = false;
  /// Only jobs at or below this size coalesce (whales keep solo passes).
  double max_job_keys = 5e8;
  /// Caps per batch: member count and combined logical keys.
  int max_batch_jobs = 64;
  double max_batch_keys = 8e9;
};

/// Result cache: jobs are keyed by dataset identity (DatasetIdentity); a
/// job whose twin is currently queued/running parks and rides the twin's
/// result, and one whose twin recently finished completes instantly from
/// the cached stats. Ready hits bypass admission (serving from cache is
/// exactly what an overloaded service wants). A faulted primary
/// invalidates nothing silently: the first parked twin is promoted to
/// primary and re-sorts.
struct DedupeOptions {
  bool enabled = false;
  /// Max ready (finished) entries kept; oldest evicted first.
  int capacity = 4096;
  /// > 0: a ready entry older than this no longer serves hits.
  double ttl_seconds = 0;
};

/// Out-of-core spill tier: jobs whose working set exceeds what a device can
/// grant run the HET sorter with core::SpillMode::kAuto instead of being
/// rejected for memory. Requires an NVMe device in the topology
/// (topo::AttachNvme); without one the option is inert.
struct SpillOptions {
  bool enabled = false;
  /// Fraction of a device's memory granted to an oversized job's chunk
  /// buffers (the admission reservation is capped to this, which is what
  /// lets the job through admission at all).
  double budget_fraction = 0.25;
};

struct ServerOptions {
  QueuePolicy policy = QueuePolicy::kFifo;
  AdmissionOptions admission;
  RecoveryOptions recovery;
  /// Spill oversized jobs to NVMe instead of rejecting them.
  SpillOptions spill;
  /// Cap on co-running jobs (0 = bounded only by GPUs/memory).
  int max_concurrent_jobs = 0;
  /// Allow placing a job on a GPU that is already running another one
  /// (memory permitting). Off by default: exclusive GPUs.
  bool allow_gpu_sharing = false;
  /// How single-node sorts execute: phase barriers (the seed behavior) or
  /// the task-graph executor. Under kGraph the server owns one shared
  /// exec::GraphExecutor, so concurrent jobs interleave at node
  /// granularity and JobSpec::priority extends to node dispatch.
  core::ExecMode exec_mode = core::ExecMode::kPhased;
  /// Check every job's output with std::is_sorted (functional layer).
  bool verify_sorted = true;
  /// > 0: report the fraction of completed jobs with latency <= this.
  double slo_seconds = 0;
  /// > 0: sample per-link utilization counters into the trace this often.
  double utilization_sample_seconds = 0;
  /// Non-null: the platform is a multi-node cluster (net::BuildCluster) and
  /// the server accepts distributed jobs (JobSpec::nodes > 1), placing them
  /// on whole nodes rack-aware and running net::DistributedSortTask. Must
  /// describe the same topology the platform was built from and outlive the
  /// server. Single-node jobs are unaffected.
  const net::ClusterInfo* cluster = nullptr;
  /// Merge small same-shape jobs into shared device passes.
  CoalesceOptions coalesce;
  /// Reuse results across jobs describing the same dataset.
  DedupeOptions dedupe;
  /// Use the pre-heap dispatch path (full DispatchOrder() walk per event)
  /// instead of the indexed-heap path. Kept as the A/B oracle: both paths
  /// must pick identical dispatch sequences, which the randomized
  /// equivalence tests assert. The heap path additionally skips scans that
  /// provably cannot place anything (no free GPU, exclusive mode).
  bool legacy_scan_dispatch = false;
  /// Include every per-job record in the report. Turn off for million-job
  /// traces where the aggregates are the point and the per-job vector would
  /// dominate memory.
  bool report_jobs = true;
};

/// One interconnect link's mean utilization over the service run.
struct LinkLoad {
  std::string name;
  double utilization = 0;  // in [0, 1]
};

struct ServiceReport {
  /// Every job the service saw, in submission (id) order (empty when
  /// ServerOptions::report_jobs is off).
  std::vector<JobRecord> jobs;
  /// Job ids in completion order (deterministic for a fixed seed/config).
  std::vector<std::int64_t> completion_order;
  int completed = 0;
  /// Permanent failures only; attempts that were retried successfully count
  /// under `recovered`, not here.
  int failed = 0;
  int rejected = 0;
  /// Completed jobs that needed at least one retry.
  int recovered = 0;
  /// Retry dispatches across all jobs.
  std::int64_t total_retries = 0;
  /// Jobs that ran on the HET fallback path instead of P2P.
  int het_fallbacks = 0;
  /// Mean time to repair: average of finish - first_failure over recovered
  /// jobs (0 when none recovered).
  double mttr_seconds = 0;
  /// Last completion minus first arrival (simulated seconds).
  double makespan = 0;
  LatencySummary latency;       // arrival -> finish, completed jobs
  LatencySummary queue_delay;   // arrival -> dispatch
  LatencySummary service_time;  // dispatch -> finish
  /// Completed logical keys / makespan.
  double aggregate_gkeys_per_sec = 0;
  /// Fraction of completed jobs within ServerOptions::slo_seconds
  /// (-1 when no SLO is configured).
  double slo_attainment = -1;
  /// Device passes that carried more than one job, and the jobs they
  /// carried (CoalesceOptions).
  std::int64_t coalesced_batches = 0;
  std::int64_t coalesced_jobs = 0;
  /// Jobs completed by reusing a twin's result (DedupeOptions).
  std::int64_t dedup_hits = 0;
  /// Per-link mean utilization, busiest first.
  std::vector<LinkLoad> links;
};

class SortServer {
 public:
  SortServer(vgpu::Platform* platform, ServerOptions options);

  /// Queues an open-loop job for arrival at spec.arrival_seconds.
  /// Call before Run(). Returns the job id.
  std::int64_t Submit(JobSpec spec);
  void Submit(const std::vector<JobSpec>& specs);

  /// Adds a closed-loop client population (started by Run()).
  void AddClosedLoop(ClosedLoopOptions options);

  /// Runs the service to completion (all submitted jobs and all client
  /// loops finished) and returns the report. Call once.
  Result<ServiceReport> Run();

  /// Record of a submitted job (valid after Run()).
  const JobRecord& job(std::int64_t id) const;

 private:
  struct JobSlot {
    JobRecord record;
    /// Completion trigger, allocated lazily — only closed-loop clients
    /// await individual jobs, and a million-trigger trace would pay the
    /// allocation for nothing. FinishTerminal fires it when present.
    std::shared_ptr<sim::Trigger> done;
    /// This job is the dedupe store's live primary for its dataset.
    bool dedupe_registered = false;
  };

  /// One entry of the result cache, keyed by DatasetKey. Lives from the
  /// first eligible arrival until eviction; `waiters` are parked twins that
  /// ride the primary's result.
  struct DedupeEntry {
    std::int64_t primary = -1;            // live twin being sorted (-1: none)
    std::vector<std::int64_t> waiters;    // parked twins (not in the queue)
    bool ready = false;                   // a finished result is cached
    double finished_at = 0;               // ready-result timestamp (TTL)
    core::SortStats stats;                // cached result
    std::uint64_t result_hash = 0;
    std::int64_t origin = -1;             // job that produced the result
    std::uint64_t lru = 0;                // key into dedupe_lru_ when ready
  };

  double Now() const;
  /// The platform's registry, or nullptr when telemetry is off.
  obs::MetricsRegistry* metrics() const { return platform_->metrics(); }
  /// Refreshes the queue-depth / running-jobs gauges (no-op without a
  /// registry). Called on every queue or dispatch transition.
  void PublishQueueGauges();
  /// Terminal-state accounting: jobs-by-state counter, latency/queue-delay
  /// histograms, and SLO burn for completed jobs.
  void PublishJobOutcome(const JobRecord& rec);
  /// Per-GPU device memory a job needs, mirroring P2pSortTask's allocation
  /// (primary + aux buffer of ceil(n/g) elements each, in logical bytes).
  double PerGpuBytes(const JobSpec& spec) const;

  std::int64_t AddSlot(JobSpec spec);
  void OnArrival(std::int64_t id);
  /// Whole-node placement for a distributed job: fills `node_set` and
  /// returns the flattened GPU set (or nullopt when it cannot run yet).
  Result<std::optional<std::vector<int>>> PlaceDistributed(
      const JobRecord& rec, double per_gpu_bytes,
      std::vector<int>* node_set) const;
  void FinishTerminal(JobSlot& slot);  // fire + bookkeeping for any terminal state
  void TryDispatch();
  /// One dispatch scan. The legacy path materializes the full policy order
  /// and walks it; the heap path peeks O(log Q), popping past unplaceable
  /// heads only under bypassing policies (and restoring them, seq
  /// preserved). Both return true when a job was launched or terminally
  /// failed (so TryDispatch rescans).
  bool ScanDispatchOnce();
  bool HeapDispatchOnce();
  /// Exact fast-path gate for HeapDispatchOnce: in exclusive-GPU mode, no
  /// placement can succeed unless some healthy GPU is idle — skip the scan
  /// entirely. (Always true under gpu sharing.)
  bool AnyFreeGpu() const;
  enum class LaunchResult { kLaunched, kUnplaceable };
  /// Places and launches one queued job (possibly gathering a coalesced
  /// batch behind it). kLaunched also covers placement *errors* (the job
  /// left the queue terminally failed) — either way the queue changed.
  LaunchResult TryLaunch(std::int64_t id);
  void MaybeFinish();

  // --- batch coalescing -----------------------------------------------
  /// May this job share a device pass? (enabled, single-node, unpinned,
  /// small enough.)
  bool CoalesceEligible(const JobSpec& spec) const;
  /// Shape bucket: jobs coalesce only within (type, gpus, priority).
  std::uint64_t CoalesceKey(const JobSpec& spec) const;
  void PushCoalesceIndex(std::int64_t id);
  /// Pulls queued shape-mates of `leader` (already placed on `gpu_set`)
  /// out of the queue into one batch, respecting the batch caps and the
  /// placement's spare device memory. Returns leader + members and updates
  /// `*reserve_bytes` (in: the leader's per-GPU need; out: the batch's).
  std::vector<std::int64_t> GatherBatch(std::int64_t leader,
                                        const std::vector<int>& gpu_set,
                                        double* reserve_bytes);

  // --- result dedupe ----------------------------------------------------
  bool DedupeEligible(const JobSpec& spec) const;
  /// Arrival hook. True when the job was absorbed by the cache — completed
  /// from a ready entry, or parked behind a live primary — and must not be
  /// queued. Registers the job as primary (and lets it queue) otherwise.
  bool TryDedupeOnArrival(std::int64_t id);
  /// Terminal hook for registered primaries: on success, cache the result,
  /// complete all waiters as hits and rotate the LRU; on failure, promote
  /// the first waiter to a fresh primary and requeue it.
  void SettleDedupePrimary(JobSlot& slot);
  void CompleteDedupeHit(JobSlot& slot, DedupeEntry& entry);
  /// Common tail of a finished attempt: retry/backoff scheduling or
  /// terminal accounting. Shared by RunJob and RunBatch members.
  void SettleAttempt(JobSlot& slot);
  /// Backoff expiry: puts a kRetryBackoff job back in the queue.
  void RequeueJob(std::int64_t id);
  /// True when the job's P2P mesh is degraded below the fallback threshold
  /// (see RecoveryOptions::het_fallback_below).
  bool ShouldFallBackToHet(const JobRecord& rec) const;
  /// Healthy (non-failed) device count.
  int HealthyGpus() const;

  /// Threads the server's execution mode / shared executor / job priority /
  /// per-job stream range into a sorter's options.
  void ConfigureExec(const JobRecord& rec, core::SortOptions* options) const;

  sim::Task<void> ServiceRoot();
  sim::Task<void> RunJob(std::int64_t id);
  /// Runs a coalesced batch (leader first) as one device pass and settles
  /// every member. `reserve_bytes` is the leader's per-GPU reservation to
  /// hand off to the sorter's own allocation.
  sim::Task<void> RunBatch(std::vector<std::int64_t> batch,
                           double reserve_bytes);
  template <typename T>
  sim::Task<void> ExecuteTyped(JobRecord& rec);
  template <typename T>
  sim::Task<void> ExecuteBatchTyped(std::vector<std::int64_t>& batch,
                                    JobRecord& leader);
  /// Non-numeric key kinds: generate via core/keygen, sort through the same
  /// P2P / HET routing as ExecuteTyped (always single-node, never batched).
  sim::Task<void> ExecuteStringJob(JobRecord& rec);
  sim::Task<void> ExecuteRecordJob(JobRecord& rec);
  /// True when the job cannot fit its full per-GPU reservation and the
  /// spill tier should carry it (SpillOptions).
  bool SpillJob(const JobSpec& spec) const;
  sim::Task<void> ClientLoop(int client_index, ClosedLoopOptions options,
                             std::uint64_t seed);
  sim::Task<void> UtilizationSampler();
  sim::Task<void> HealthMonitor();

  ServiceReport BuildReport() const;

  vgpu::Platform* platform_;
  ServerOptions options_;
  /// Shared node-level executor for all jobs (ServerOptions::exec_mode ==
  /// kGraph only, null otherwise).
  std::unique_ptr<exec::GraphExecutor> executor_;
  AdmissionController admission_;
  Placer placer_;
  JobQueue queue_;

  std::vector<std::unique_ptr<JobSlot>> slots_;  // job id == index
  std::vector<ClosedLoopOptions> closed_loops_;

  /// Shape bucket -> queued candidate ids, FIFO within a bucket. Purged
  /// lazily: GatherBatch skips ids no longer in the queue, so stale entries
  /// (dispatched, doomed, batched) cost one Contains() each.
  std::unordered_map<std::uint64_t, std::deque<std::int64_t>> coalesce_index_;

  /// Result cache (DedupeOptions). `dedupe_lru_` orders *ready* entries by
  /// last touch for capacity eviction; `dedupe_stamp_` mints touch ids.
  std::unordered_map<DatasetKey, DedupeEntry, DatasetKeyHash> dedupe_;
  std::map<std::uint64_t, DatasetKey> dedupe_lru_;
  std::uint64_t dedupe_stamp_ = 0;

  std::int64_t coalesced_batches_ = 0;
  std::int64_t coalesced_jobs_ = 0;
  std::int64_t dedup_hits_ = 0;

  std::vector<int> running_per_gpu_;
  int running_jobs_ = 0;
  int unfinished_ = 0;    // slots not yet in a terminal state
  int live_clients_ = 0;  // closed-loop clients still running
  std::vector<std::int64_t> completion_order_;
  sim::Trigger all_done_;
  SplitMix64 jitter_rng_;
  /// Healthy-topology lone P2P bandwidth per GPU pair (flattened n*n; -1 =
  /// unroutable). Captured at construction, before any injected fault, so
  /// ShouldFallBackToHet has an undegraded baseline. Empty unless
  /// recovery.het_fallback_below > 0.
  std::vector<double> p2p_baseline_;
  bool stop_sampler_ = false;
  double service_start_ = 0;
  double service_end_ = 0;
  bool ran_ = false;
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_SERVER_H_
