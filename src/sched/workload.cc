#include "sched/workload.h"

#include <algorithm>
#include <cmath>

namespace mgs::sched {

JobSpec SampleJob(const JobMix& mix, SplitMix64& rng) {
  JobSpec spec;
  const double lo = std::log(mix.min_keys);
  const double hi = std::log(mix.max_keys);
  if (mix.distinct_datasets > 0) {
    // Recurring dataset: size and seed are derived deterministically from
    // the drawn pool index, so two jobs that draw the same index describe
    // bit-identical datasets (dedupe twins).
    const std::uint64_t index = rng.Next() %
                                static_cast<std::uint64_t>(mix.distinct_datasets);
    SplitMix64 pool(mix.dataset_pool_seed + index);
    spec.logical_keys =
        std::floor(std::exp(lo + (hi - lo) * pool.NextDouble()));
    spec.seed = pool.Next();
  } else {
    spec.logical_keys =
        std::floor(std::exp(lo + (hi - lo) * rng.NextDouble()));
  }
  if (!mix.gpu_choices.empty()) {
    spec.gpus = mix.gpu_choices[static_cast<std::size_t>(
        rng.Next() % mix.gpu_choices.size())];
  }
  if (!mix.priority_choices.empty()) {
    spec.priority = mix.priority_choices[static_cast<std::size_t>(
        rng.Next() % mix.priority_choices.size())];
  }
  spec.type = mix.type;
  // Assigned, never drawn: key_kind must not consume rng state, so seeded
  // numeric workloads stay bit-identical to before the knob existed.
  spec.key_kind = mix.key_kind;
  spec.distribution = mix.distribution;
  // Fresh-seed draw stays last so the rng consumption order (and thus every
  // seeded workload) is unchanged from before the dataset pool existed.
  if (mix.distinct_datasets <= 0) spec.seed = rng.Next();
  return spec;
}

std::vector<JobSpec> MakePoissonWorkload(const JobMix& mix,
                                         double arrival_rate_hz, int num_jobs,
                                         std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(num_jobs));
  const int tenants = std::max(1, mix.tenants);
  double t = 0;
  for (int i = 0; i < num_jobs; ++i) {
    // Exponential gap via inverse transform; 1 - u keeps log() off zero.
    t += -std::log(1.0 - rng.NextDouble()) / arrival_rate_hz;
    JobSpec spec = SampleJob(mix, rng);
    spec.arrival_seconds = t;
    spec.tenant = "open" + std::to_string(i % tenants);
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

}  // namespace mgs::sched
