// Workload generation for the sort service, in the util/datagen mold:
// deterministic, seedable job streams.
//
// Two client models from the queueing literature:
//  * open loop — Poisson arrivals at a fixed rate, independent of service
//    progress (MakePoissonWorkload); this is what exposes queueing delay
//    and tail latency under overload;
//  * closed loop — N clients that each submit, wait for completion, think,
//    and repeat (ClosedLoopOptions, executed by SortServer::AddClosedLoop);
//    offered load self-regulates to service capacity.

#ifndef MGS_SCHED_WORKLOAD_H_
#define MGS_SCHED_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "sched/job.h"
#include "util/datagen.h"

namespace mgs::sched {

/// The population jobs are drawn from. Sizes are log-uniform between the
/// bounds (sort services see orders-of-magnitude size spread; a linear
/// draw would make every job "large").
struct JobMix {
  double min_keys = 2.5e8;
  double max_keys = 2e9;
  /// GPU counts to draw from, uniformly. Each must be a power of two.
  std::vector<int> gpu_choices = {1, 2, 4};
  /// Priorities to draw from, uniformly (only QueuePolicy::kPriority cares).
  std::vector<int> priority_choices = {0};
  DataType type = DataType::kInt32;
  /// Key shape for every sampled job: numeric (default), string, or record
  /// tenants (see JobSpec::key_kind).
  KeyKind key_kind = KeyKind::kNumeric;
  Distribution distribution = Distribution::kUniform;
  /// Tenant population for MakePoissonWorkload: job i belongs to
  /// "open<i mod tenants>". Clamped to at least 1.
  int tenants = 4;
  /// > 0: draw each job's dataset identity (size and generator seed) from a
  /// recurring pool of this many distinct datasets instead of fresh
  /// randomness. Jobs that draw the same pool index are dedupe twins —
  /// identical (seed, distribution, keys) — which models tenants
  /// re-submitting the same inputs (what the result cache exploits). 0
  /// keeps the classic every-job-unique behavior.
  int distinct_datasets = 0;
  /// Root seed the recurring dataset pool is derived from.
  std::uint64_t dataset_pool_seed = 0x9e3779b97f4a7c15ull;
};

/// Draws one job from the mix (arrival time left at 0 for the caller).
JobSpec SampleJob(const JobMix& mix, SplitMix64& rng);

/// Open-loop stream: `num_jobs` jobs with exponential inter-arrival gaps
/// at `arrival_rate_hz` jobs/sec, sizes/shapes drawn from `mix`.
/// Deterministic for a fixed seed.
std::vector<JobSpec> MakePoissonWorkload(const JobMix& mix,
                                         double arrival_rate_hz, int num_jobs,
                                         std::uint64_t seed);

/// Closed-loop client population (executed by SortServer::AddClosedLoop).
struct ClosedLoopOptions {
  int clients = 2;
  int jobs_per_client = 4;
  /// Idle time between a job completing and the client's next submission.
  double think_seconds = 0;
  JobMix mix;
  std::uint64_t seed = 7;
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_WORKLOAD_H_
