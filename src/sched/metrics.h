// Latency metrics for the sort service: percentiles and distribution
// summaries over per-job samples.

#ifndef MGS_SCHED_METRICS_H_
#define MGS_SCHED_METRICS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace mgs::sched {

/// Nearest-rank percentile (p in [0, 100]) of `samples`; 0 for an empty
/// input. Takes the samples by value because it sorts them.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

/// The latency summary the server reports per distribution (end-to-end
/// latency, queueing delay, service time).
struct LatencySummary {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double mean = 0;
  double max = 0;
  std::size_t count = 0;
};

inline LatencySummary Summarize(const std::vector<double>& samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.p50 = Percentile(samples, 50);
  s.p95 = Percentile(samples, 95);
  s.p99 = Percentile(samples, 99);
  double sum = 0;
  for (double x : samples) {
    sum += x;
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

}  // namespace mgs::sched

#endif  // MGS_SCHED_METRICS_H_
