// Latency metrics for the sort service. The math lives in util/stats.h
// (shared with the benchmark harness); these aliases keep the historical
// sched-qualified names working.

#ifndef MGS_SCHED_METRICS_H_
#define MGS_SCHED_METRICS_H_

#include "util/stats.h"

namespace mgs::sched {

using ::mgs::LatencySummary;
using ::mgs::Percentile;
using ::mgs::Summarize;

}  // namespace mgs::sched

#endif  // MGS_SCHED_METRICS_H_
