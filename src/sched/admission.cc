#include "sched/admission.h"

#include <algorithm>
#include <string>

#include "util/units.h"

namespace mgs::sched {

namespace {

bool IsPowerOfTwo(int x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

Status AdmissionController::Admit(const JobSpec& spec, double per_gpu_bytes,
                                  int queue_depth) const {
  const int n = platform_->num_devices();
  if (!IsPowerOfTwo(spec.gpus)) {
    return Status::Invalid("job requests " + std::to_string(spec.gpus) +
                           " GPUs; the P2P merge tree needs a power of two");
  }
  if (spec.gpus > n) {
    return Status::Invalid("job requests " + std::to_string(spec.gpus) +
                           " GPUs on a " + std::to_string(n) +
                           "-GPU platform");
  }
  if (spec.logical_keys < 1) {
    return Status::Invalid("job has no keys to sort");
  }
  if (!spec.pinned_gpus.empty()) {
    if (static_cast<int>(spec.pinned_gpus.size()) != spec.gpus) {
      return Status::Invalid("pinned GPU set has " +
                             std::to_string(spec.pinned_gpus.size()) +
                             " entries for a " + std::to_string(spec.gpus) +
                             "-GPU job");
    }
    std::vector<int> sorted = spec.pinned_gpus;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::Invalid("pinned GPU set has duplicates");
    }
    for (int id : spec.pinned_gpus) {
      if (id < 0 || id >= n) {
        return Status::Invalid("pinned GPU " + std::to_string(id) +
                               " does not exist");
      }
      if (platform_->device(id).failed()) {
        return Status::Unavailable("pinned GPU " + std::to_string(id) +
                                   " has failed");
      }
      if (platform_->device(id).memory_capacity() < per_gpu_bytes) {
        return Status::OutOfMemory(
            "job needs " + FormatBytes(per_gpu_bytes) + " per GPU; pinned GPU " +
            std::to_string(id) + " has only " +
            FormatBytes(platform_->device(id).memory_capacity()) +
            " of capacity");
      }
    }
  } else {
    // Feasibility: enough devices whose *capacity* (not current free bytes —
    // those may recover) can ever host the per-GPU working set.
    int feasible = 0;
    for (int g = 0; g < n; ++g) {
      if (platform_->device(g).failed()) continue;  // fail-stop loss
      if (platform_->device(g).memory_capacity() >= per_gpu_bytes) ++feasible;
    }
    if (feasible < spec.gpus) {
      return Status::OutOfMemory(
          "job needs " + FormatBytes(per_gpu_bytes) + " on each of " +
          std::to_string(spec.gpus) + " GPUs; only " +
          std::to_string(feasible) + " healthy device(s) are large enough");
    }
  }
  if (options_.max_job_memory_fraction < 1.0) {
    // Only healthy devices back the cap: counting failed (fail-stop)
    // capacity would let a whale claim a fraction of memory the fleet no
    // longer has.
    double fleet_capacity = 0;
    for (int g = 0; g < n; ++g) {
      if (platform_->device(g).failed()) continue;
      fleet_capacity += platform_->device(g).memory_capacity();
    }
    const double total_need = per_gpu_bytes * spec.gpus;
    if (total_need > options_.max_job_memory_fraction * fleet_capacity) {
      return Status::FailedPrecondition(
          "job would claim " + FormatBytes(total_need) + ", over the " +
          std::to_string(options_.max_job_memory_fraction) +
          " fleet-memory cap");
    }
  }
  if (options_.max_queue_depth > 0 && queue_depth >= options_.max_queue_depth) {
    return Status::FailedPrecondition(
        "queue full (" + std::to_string(queue_depth) + " jobs waiting)");
  }
  if (options_.shed_at_pressure > 0 &&
      FleetPressure() >= options_.shed_at_pressure) {
    return Status::FailedPrecondition(
        "shedding load: fleet memory pressure " +
        std::to_string(FleetPressure()) + " >= " +
        std::to_string(options_.shed_at_pressure));
  }
  return Status::OK();
}

double AdmissionController::FleetPressure() const {
  // Failed devices are excluded: they report zero pressure forever, which
  // would dilute the mean and keep the shed threshold from firing exactly
  // when capacity was lost. A fleet with no healthy devices is fully
  // committed (pressure 1), so shedding stays active; an empty platform
  // has nothing to protect and reports 0.
  const int n = platform_->num_devices();
  if (n == 0) return 0;
  double sum = 0;
  int healthy = 0;
  for (int g = 0; g < n; ++g) {
    if (platform_->device(g).failed()) continue;
    sum += platform_->device(g).memory_pressure();
    ++healthy;
  }
  if (healthy == 0) return 1.0;
  return sum / healthy;
}

}  // namespace mgs::sched
