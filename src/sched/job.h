// Job model for the multi-tenant sort service: what a tenant submits
// (JobSpec) and everything the server records about one job's life
// (JobRecord) — arrival, queueing, placement, execution, completion.
//
// All times are simulated seconds on the shared platform clock.

#ifndef MGS_SCHED_JOB_H_
#define MGS_SCHED_JOB_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/common.h"
#include "util/datagen.h"

namespace mgs::sched {

enum class JobState {
  kPending,       // submitted, arrival event not fired yet
  kQueued,        // admitted, waiting for placement
  kRunning,       // placed; sort executing on its GPU set
  kRetryBackoff,  // failed retryably; waiting out the backoff before requeue
  kDone,          // completed, output verified sorted
  kFailed,        // permanent execution error (retry budget exhausted,
                  // allocation failure, corrupt output)
  kRejected,      // refused by admission control
};

inline const char* JobStateToString(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "pending";
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kRetryBackoff:
      return "retry-backoff";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
  }
  return "?";
}

/// One sort request. Logical sizes follow the platform scale model: the
/// server generates ceil(logical_keys / scale) real keys and the timing
/// layer bills the logical bytes.
struct JobSpec {
  std::string tenant = "default";
  /// Open-loop arrival time (sim seconds); closed-loop clients stamp this
  /// at submission.
  double arrival_seconds = 0;
  double logical_keys = 1e9;
  DataType type = DataType::kInt32;
  /// Key shape: numeric (DataType applies), variable-length string keys
  /// (core::StringKey) or multi-column records (core::SortRecord). Non-
  /// numeric kinds are single-node and bypass coalescing/dedup (their
  /// elements are not hashable dataset twins the way numerics are).
  KeyKind key_kind = KeyKind::kNumeric;
  Distribution distribution = Distribution::kUniform;
  std::uint64_t seed = 42;
  /// GPUs requested; must be a power of two (P2P merge tree).
  int gpus = 1;
  /// > 1: a distributed job spanning this many whole cluster nodes (the
  /// server must be configured with ServerOptions::cluster). `gpus` is then
  /// derived as nodes x gpus-per-node, not requested, and the job runs the
  /// net::DistributedSortTask instead of the single-node P2P sorter.
  int nodes = 1;
  /// Larger runs first under QueuePolicy::kPriority.
  int priority = 0;
  /// Non-empty: exact GPU set (ordered), bypassing the placer. The job
  /// waits until every pinned GPU can host it.
  std::vector<int> pinned_gpus;
};

/// Element width for sizing/admission: numeric kinds follow DataType;
/// string and record kinds move fixed 24-byte sort elements (core::StringKey
/// / core::SortRecord) through the device buffers.
inline std::size_t JobElementSize(const JobSpec& spec) {
  return spec.key_kind == KeyKind::kNumeric ? DataTypeSize(spec.type) : 24;
}

/// Logical bytes a job moves through the system end to end (SJF ordering
/// key and admission sizing).
inline double JobBytes(const JobSpec& spec) {
  return spec.logical_keys * static_cast<double>(JobElementSize(spec));
}

/// Content identity of the dataset a spec describes: everything that
/// determines the generated keys — and therefore the sorted output — at a
/// fixed platform scale. (The generator's remaining knobs, noise fraction
/// and zipf theta, are compile-time defaults in the server.) Two specs with
/// equal identities are dedupe twins: sorting either yields bit-identical
/// output, regardless of tenant, GPU count or priority. Used as the result
/// cache key (exact field equality, so hash collisions cannot alias
/// results).
struct DatasetKey {
  DataType type = DataType::kInt32;
  KeyKind key_kind = KeyKind::kNumeric;
  Distribution distribution = Distribution::kUniform;
  std::uint64_t seed = 0;
  double logical_keys = 0;

  friend bool operator==(const DatasetKey&, const DatasetKey&) = default;
};

inline DatasetKey DatasetIdentity(const JobSpec& spec) {
  return DatasetKey{spec.type, spec.key_kind, spec.distribution, spec.seed,
                    spec.logical_keys};
}

/// FNV-1a content hash of a dataset identity (the dedupe cache's hasher).
inline std::uint64_t DatasetFingerprint(const DatasetKey& key) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(static_cast<std::uint64_t>(key.type));
  mix(static_cast<std::uint64_t>(key.key_kind));
  mix(static_cast<std::uint64_t>(key.distribution));
  mix(key.seed);
  std::uint64_t key_bits = 0;
  static_assert(sizeof(key_bits) == sizeof(key.logical_keys));
  std::memcpy(&key_bits, &key.logical_keys, sizeof(key_bits));
  mix(key_bits);
  return h;
}

struct DatasetKeyHash {
  std::size_t operator()(const DatasetKey& key) const {
    return static_cast<std::size_t>(DatasetFingerprint(key));
  }
};

/// Everything the server records about one job.
struct JobRecord {
  std::int64_t id = -1;
  JobSpec spec;
  JobState state = JobState::kPending;
  double arrival = 0;  // admission decision time
  double start = 0;    // dispatch (placement) time
  double finish = 0;   // completion time
  std::vector<int> gpu_set;  // placement (ordered for the P2P merge)
  std::vector<int> node_set; // cluster nodes (distributed jobs only)
  core::SortStats sort;      // phase breakdown (valid when state == kDone)
  std::string error;         // rejection / (last) failure reason
  StatusCode error_code = StatusCode::kOk;  // code behind `error`

  // Resilience bookkeeping (see ServerOptions::recovery).
  int attempts = 0;            // dispatches, including the first
  int retries = 0;             // attempts - 1 for jobs that ever failed
  double first_failure = -1;   // time of the first failed attempt (< 0: none)
  bool het_fallback = false;   // last attempt ran the HET (via-host) sorter

  // Throughput-path bookkeeping (coalescing and dedupe; docs/service.md).
  int batch_jobs = 1;          // members in the device pass that ran this job
  std::int64_t batch_leader = -1;  // leader job id when batch_jobs > 1
  bool dedup_hit = false;      // completed by reusing a twin's result
  std::int64_t dedup_origin = -1;  // the twin whose result was reused
  /// FNV-1a hash of the sorted output bytes (completed jobs). Dedupe twins
  /// and coalesced batch members hash identically to a solo run of the
  /// same spec, which is what the property tests assert.
  std::uint64_t result_hash = 0;

  double queue_delay() const { return start - arrival; }
  double service_time() const { return finish - start; }
  double latency() const { return finish - arrival; }
  /// Completed only after retrying — the job survived a fault.
  bool recovered() const { return state == JobState::kDone && retries > 0; }
  /// Time from first failure to eventual completion (the job's TTR).
  double recovery_seconds() const {
    return first_failure >= 0 ? finish - first_failure : 0;
  }
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_JOB_H_
