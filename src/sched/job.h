// Job model for the multi-tenant sort service: what a tenant submits
// (JobSpec) and everything the server records about one job's life
// (JobRecord) — arrival, queueing, placement, execution, completion.
//
// All times are simulated seconds on the shared platform clock.

#ifndef MGS_SCHED_JOB_H_
#define MGS_SCHED_JOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/common.h"
#include "util/datagen.h"

namespace mgs::sched {

enum class JobState {
  kPending,       // submitted, arrival event not fired yet
  kQueued,        // admitted, waiting for placement
  kRunning,       // placed; sort executing on its GPU set
  kRetryBackoff,  // failed retryably; waiting out the backoff before requeue
  kDone,          // completed, output verified sorted
  kFailed,        // permanent execution error (retry budget exhausted,
                  // allocation failure, corrupt output)
  kRejected,      // refused by admission control
};

inline const char* JobStateToString(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "pending";
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kRetryBackoff:
      return "retry-backoff";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
  }
  return "?";
}

/// One sort request. Logical sizes follow the platform scale model: the
/// server generates ceil(logical_keys / scale) real keys and the timing
/// layer bills the logical bytes.
struct JobSpec {
  std::string tenant = "default";
  /// Open-loop arrival time (sim seconds); closed-loop clients stamp this
  /// at submission.
  double arrival_seconds = 0;
  double logical_keys = 1e9;
  DataType type = DataType::kInt32;
  Distribution distribution = Distribution::kUniform;
  std::uint64_t seed = 42;
  /// GPUs requested; must be a power of two (P2P merge tree).
  int gpus = 1;
  /// > 1: a distributed job spanning this many whole cluster nodes (the
  /// server must be configured with ServerOptions::cluster). `gpus` is then
  /// derived as nodes x gpus-per-node, not requested, and the job runs the
  /// net::DistributedSortTask instead of the single-node P2P sorter.
  int nodes = 1;
  /// Larger runs first under QueuePolicy::kPriority.
  int priority = 0;
  /// Non-empty: exact GPU set (ordered), bypassing the placer. The job
  /// waits until every pinned GPU can host it.
  std::vector<int> pinned_gpus;
};

/// Logical bytes a job moves through the system end to end (SJF ordering
/// key and admission sizing).
inline double JobBytes(const JobSpec& spec) {
  return spec.logical_keys * static_cast<double>(DataTypeSize(spec.type));
}

/// Everything the server records about one job.
struct JobRecord {
  std::int64_t id = -1;
  JobSpec spec;
  JobState state = JobState::kPending;
  double arrival = 0;  // admission decision time
  double start = 0;    // dispatch (placement) time
  double finish = 0;   // completion time
  std::vector<int> gpu_set;  // placement (ordered for the P2P merge)
  std::vector<int> node_set; // cluster nodes (distributed jobs only)
  core::SortStats sort;      // phase breakdown (valid when state == kDone)
  std::string error;         // rejection / (last) failure reason
  StatusCode error_code = StatusCode::kOk;  // code behind `error`

  // Resilience bookkeeping (see ServerOptions::recovery).
  int attempts = 0;            // dispatches, including the first
  int retries = 0;             // attempts - 1 for jobs that ever failed
  double first_failure = -1;   // time of the first failed attempt (< 0: none)
  bool het_fallback = false;   // last attempt ran the HET (via-host) sorter

  double queue_delay() const { return start - arrival; }
  double service_time() const { return finish - start; }
  double latency() const { return finish - arrival; }
  /// Completed only after retrying — the job survived a fault.
  bool recovered() const { return state == JobState::kDone && retries > 0; }
  /// Time from first failure to eventual completion (the job's TTR).
  double recovery_seconds() const {
    return first_failure >= 0 ? finish - first_failure : 0;
  }
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_JOB_H_
