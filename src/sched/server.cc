#include "sched/server.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/het_sort.h"
#include "core/p2p_sort.h"
#include "net/distributed_sort.h"
#include "obs/phase.h"
#include "obs/resilience.h"
#include "obs/trace_bridge.h"

namespace mgs::sched {

namespace {
const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
    default:
      return "other";
  }
}
}  // namespace

SortServer::SortServer(vgpu::Platform* platform, ServerOptions options)
    : platform_(platform),
      options_(std::move(options)),
      admission_(platform, options_.admission),
      placer_(platform, options_.allow_gpu_sharing, options_.cluster),
      queue_(options_.policy),
      running_per_gpu_(static_cast<std::size_t>(platform->num_devices()), 0),
      jitter_rng_(options_.recovery.jitter_seed) {
  if (options_.exec_mode == core::ExecMode::kGraph) {
    executor_ = std::make_unique<exec::GraphExecutor>(platform_);
  }
  if (options_.recovery.het_fallback_below > 0) {
    // Baseline pairwise P2P bandwidth on the healthy topology; injected
    // faults only fire once the simulator runs, so this sees full rates.
    const int n = platform_->num_devices();
    p2p_baseline_.assign(static_cast<std::size_t>(n) * n, -1.0);
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a == b) continue;
        const auto bw = platform_->topology().LoneFlowBandwidth(
            topo::CopyKind::kPeerToPeer, topo::Endpoint::Gpu(a),
            topo::Endpoint::Gpu(b));
        if (bw.ok()) p2p_baseline_[static_cast<std::size_t>(a) * n + b] = *bw;
      }
    }
  }
}

double SortServer::Now() const { return platform_->simulator().Now(); }

double SortServer::PerGpuBytes(const JobSpec& spec) const {
  const double scale = platform_->scale();
  const double actual = std::max(1.0, std::ceil(spec.logical_keys / scale));
  const double elem_bytes = static_cast<double>(DataTypeSize(spec.type)) * scale;
  if (spec.nodes > 1 && options_.cluster != nullptr) {
    // Mirrors net::DistributedSortTask's eager allocation: sort chunk
    // (primary + aux of m = ceil(ceil(n/N)/g) elements) plus the receive
    // ping-pong pair (2 x recv_cap, sized by skew_slack over the balanced
    // share).
    const double g = options_.cluster->gpus_per_node();
    const double m = std::ceil(std::ceil(actual / spec.nodes) / g);
    const double avg = std::ceil(actual / (spec.nodes * g));
    const double recv_cap = std::max(
        16.0, std::floor(net::DistSortOptions{}.skew_slack * avg) + 16.0);
    return (2.0 * m + 2.0 * recv_cap) * elem_bytes;
  }
  const double chunk = std::ceil(actual / spec.gpus);
  return 2.0 * chunk * elem_bytes;
}

std::int64_t SortServer::AddSlot(JobSpec spec) {
  if (spec.nodes > 1 && options_.cluster != nullptr) {
    // A distributed job spans whole nodes; its GPU count is derived, so
    // admission, sizing and the health monitor see the real footprint.
    spec.gpus = spec.nodes * options_.cluster->gpus_per_node();
  }
  const std::int64_t id = static_cast<std::int64_t>(slots_.size());
  auto slot = std::make_unique<JobSlot>();
  slot->record.id = id;
  slot->record.spec = std::move(spec);
  slots_.push_back(std::move(slot));
  ++unfinished_;
  return id;
}

std::int64_t SortServer::Submit(JobSpec spec) {
  return AddSlot(std::move(spec));
}

void SortServer::Submit(const std::vector<JobSpec>& specs) {
  for (const JobSpec& spec : specs) Submit(spec);
}

void SortServer::AddClosedLoop(ClosedLoopOptions options) {
  closed_loops_.push_back(std::move(options));
}

const JobRecord& SortServer::job(std::int64_t id) const {
  return slots_.at(static_cast<std::size_t>(id))->record;
}

void SortServer::FinishTerminal(JobSlot& slot) {
  completion_order_.push_back(slot.record.id);
  PublishJobOutcome(slot.record);
  slot.done->Fire();
  --unfinished_;
  MaybeFinish();
}

void SortServer::PublishQueueGauges() {
  auto* registry = metrics();
  if (registry == nullptr) return;
  registry
      ->GetGauge(kSchedQueueDepth, {},
                 "Jobs admitted but not yet dispatched")
      .Set(static_cast<double>(queue_.size()));
  registry
      ->GetGauge(kSchedRunningJobs, {}, "Jobs currently executing")
      .Set(static_cast<double>(running_jobs_));
}

void SortServer::PublishJobOutcome(const JobRecord& rec) {
  auto* registry = metrics();
  if (registry == nullptr) return;
  registry
      ->GetCounter(kSchedJobs, {{"state", JobStateName(rec.state)}},
                   "Jobs that reached a terminal state, by outcome")
      .Inc();
  if (rec.state != JobState::kDone) return;
  registry
      ->GetHistogram(kSchedJobLatencySeconds, {},
                     "Completed-job latency (arrival to finish)")
      .Observe(rec.latency());
  registry
      ->GetHistogram(kSchedQueueDelaySeconds, {},
                     "Completed-job queueing delay (arrival to dispatch)")
      .Observe(rec.queue_delay());
  if (options_.slo_seconds > 0 && rec.latency() > options_.slo_seconds) {
    registry
        ->GetCounter(kSchedSloViolations, {},
                     "Completed jobs that exceeded the latency SLO")
        .Inc();
    registry
        ->GetCounter(kSchedSloBurnSeconds, {},
                     "Cumulative latency in excess of the SLO across "
                     "violating jobs")
        .Add(rec.latency() - options_.slo_seconds);
  }
}

void SortServer::OnArrival(std::int64_t id) {
  JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
  JobRecord& rec = slot.record;
  rec.arrival = Now();
  Status admit = Status::OK();
  if (rec.spec.nodes > 1) {
    if (options_.cluster == nullptr) {
      admit = Status::Invalid("multi-node job on a server without a cluster");
    } else if (rec.spec.nodes > options_.cluster->nodes()) {
      admit = Status::Invalid(
          "job spans " + std::to_string(rec.spec.nodes) + " nodes on a " +
          std::to_string(options_.cluster->nodes()) + "-node cluster");
    } else if (!rec.spec.pinned_gpus.empty()) {
      admit = Status::Invalid(
          "pinned_gpus is unsupported for multi-node jobs (they occupy "
          "whole nodes)");
    }
  }
  if (admit.ok()) {
    admit = admission_.Admit(rec.spec, PerGpuBytes(rec.spec),
                             static_cast<int>(queue_.size()));
  }
  if (!admit.ok()) {
    rec.state = JobState::kRejected;
    rec.error = admit.ToString();
    rec.start = rec.finish = rec.arrival;
    if (auto* registry = metrics()) {
      registry
          ->GetCounter(kSchedRejections,
                       {{"reason", StatusCodeToString(admit.code())}},
                       "Admission-control rejections, by status code")
          .Inc();
    }
    FinishTerminal(slot);
    return;
  }
  rec.state = JobState::kQueued;
  queue_.Push(id, JobBytes(rec.spec), rec.spec.priority);
  PublishQueueGauges();
  TryDispatch();
}

void SortServer::TryDispatch() {
  bool dispatched = true;
  while (dispatched) {
    dispatched = false;
    if (options_.max_concurrent_jobs > 0 &&
        running_jobs_ >= options_.max_concurrent_jobs) {
      return;
    }
    for (std::int64_t id : queue_.DispatchOrder()) {
      JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
      JobRecord& rec = slot.record;
      PlacementRequest request;
      request.gpus = rec.spec.gpus;
      request.per_gpu_bytes = PerGpuBytes(rec.spec);
      request.pinned = rec.spec.pinned_gpus;
      std::vector<int> node_set;
      auto placed =
          rec.spec.nodes > 1
              ? PlaceDistributed(rec, request.per_gpu_bytes, &node_set)
              : placer_.Place(request, running_per_gpu_);
      if (!placed.ok()) {
        // Malformed beyond what admission caught; fail rather than wedge
        // the queue.
        queue_.Remove(id);
        rec.state = JobState::kFailed;
        rec.error = placed.status().ToString();
        rec.start = rec.finish = Now();
        FinishTerminal(slot);
        dispatched = true;
        break;
      }
      if (!placed->has_value()) {
        if (!queue_.allows_bypass()) break;  // FIFO: head-of-line blocks
        continue;
      }
      queue_.Remove(id);
      rec.gpu_set = **placed;
      rec.node_set = std::move(node_set);
      // Claim the memory now so co-scheduled placements at this instant
      // can't oversubscribe; RunJob hands the claim to the sort task.
      for (int g : rec.gpu_set) {
        CheckOk(platform_->device(g).Reserve(request.per_gpu_bytes));
      }
      sim::Spawn(RunJob(id));
      PublishQueueGauges();
      dispatched = true;
      break;
    }
  }
}

Result<std::optional<std::vector<int>>> SortServer::PlaceDistributed(
    const JobRecord& rec, double per_gpu_bytes,
    std::vector<int>* node_set) const {
  MGS_ASSIGN_OR_RETURN(
      auto nodes, placer_.PlaceNodes(*options_.cluster, rec.spec.nodes,
                                     per_gpu_bytes, running_per_gpu_));
  if (!nodes.has_value()) return std::optional<std::vector<int>>();
  *node_set = std::move(*nodes);
  std::vector<int> gpus;
  for (int node : *node_set) {
    for (int g : options_.cluster->NodeGpus(node)) gpus.push_back(g);
  }
  return std::optional<std::vector<int>>(std::move(gpus));
}

void SortServer::MaybeFinish() {
  if (unfinished_ == 0 && live_clients_ == 0) all_done_.Fire();
}

sim::Task<void> SortServer::RunJob(std::int64_t id) {
  JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
  JobRecord& rec = slot.record;
  rec.state = JobState::kRunning;
  if (rec.attempts == 0) rec.start = Now();
  ++rec.attempts;
  const double attempt_start = Now();
  ++running_jobs_;
  for (int g : rec.gpu_set) {
    ++running_per_gpu_[static_cast<std::size_t>(g)];
  }
  PublishQueueGauges();
  if (auto* trace = platform_->trace()) {
    if (rec.attempts == 1 && rec.start > rec.arrival) {
      trace->AddSpan("sched:queue", "job" + std::to_string(id) + " queued",
                     rec.arrival, rec.start);
    }
  }

  // Reservation handoff: release right before awaiting the sort task, which
  // allocates eagerly (before its first suspension) — race-free in the
  // single-threaded simulation.
  const double per_gpu = PerGpuBytes(rec.spec);
  for (int g : rec.gpu_set) platform_->device(g).Unreserve(per_gpu);
  switch (rec.spec.type) {
    case DataType::kInt32:
      co_await ExecuteTyped<std::int32_t>(rec);
      break;
    case DataType::kInt64:
      co_await ExecuteTyped<std::int64_t>(rec);
      break;
    case DataType::kFloat32:
      co_await ExecuteTyped<float>(rec);
      break;
    case DataType::kFloat64:
      co_await ExecuteTyped<double>(rec);
      break;
  }

  rec.finish = Now();
  --running_jobs_;
  for (int g : rec.gpu_set) {
    --running_per_gpu_[static_cast<std::size_t>(g)];
  }
  PublishQueueGauges();
  if (auto* trace = platform_->trace()) {
    const std::string attempt =
        rec.attempts > 1 ? " try" + std::to_string(rec.attempts) : "";
    trace->AddSpan("sched:gpu" + std::to_string(rec.gpu_set.front()),
                   rec.spec.tenant + "/job" + std::to_string(id) + " g=" +
                       std::to_string(rec.spec.gpus) + attempt,
                   attempt_start, rec.finish);
  }

  if (rec.state == JobState::kFailed) {
    if (rec.first_failure < 0) rec.first_failure = Now();
    // Retry only the transient class: device loss, link outage, injected
    // copy errors. Deterministic failures (bad spec, OOM, corrupt output)
    // would fail again identically.
    if (rec.error_code == StatusCode::kUnavailable &&
        rec.retries < options_.recovery.max_retries) {
      ++rec.retries;
      rec.state = JobState::kRetryBackoff;
      double backoff = options_.recovery.backoff_base_seconds *
                       std::pow(options_.recovery.backoff_multiplier,
                                rec.retries - 1);
      backoff *= 1.0 + options_.recovery.backoff_jitter *
                           (2.0 * jitter_rng_.NextDouble() - 1.0);
      if (auto* registry = metrics()) {
        registry
            ->GetCounter(obs::kSchedRetries, {},
                         "Retry dispatches after retryable failures")
            .Inc();
      }
      if (auto* trace = platform_->trace()) {
        trace->AddInstant("sched:queue",
                          "job" + std::to_string(id) + " retry " +
                              std::to_string(rec.retries) + ": " + rec.error,
                          Now());
      }
      platform_->simulator().Schedule(std::max(0.0, backoff),
                                      [this, id] { RequeueJob(id); });
      TryDispatch();
      co_return;  // not terminal: the job lives on in backoff
    }
  } else if (rec.recovered()) {
    if (auto* registry = metrics()) {
      registry
          ->GetCounter(obs::kSchedRecovered, {},
                       "Jobs completed after at least one retry")
          .Inc();
      registry
          ->GetHistogram(obs::kSchedMttrSeconds, {},
                         "Time from a job's first failure to its eventual "
                         "completion")
          .Observe(rec.recovery_seconds());
    }
    if (auto* trace = platform_->trace()) {
      trace->AddInstant("sched:queue",
                        "job" + std::to_string(id) + " recovered after " +
                            std::to_string(rec.retries) + " retr" +
                            (rec.retries == 1 ? "y" : "ies"),
                        Now());
    }
  }
  FinishTerminal(slot);
  TryDispatch();
}

void SortServer::RequeueJob(std::int64_t id) {
  JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
  JobRecord& rec = slot.record;
  if (rec.state != JobState::kRetryBackoff) return;
  rec.state = JobState::kQueued;
  queue_.Push(id, JobBytes(rec.spec), rec.spec.priority);
  PublishQueueGauges();
  TryDispatch();
}

int SortServer::HealthyGpus() const {
  int healthy = 0;
  for (int g = 0; g < platform_->num_devices(); ++g) {
    if (!platform_->device(g).failed()) ++healthy;
  }
  return healthy;
}

bool SortServer::ShouldFallBackToHet(const JobRecord& rec) const {
  const double frac = options_.recovery.het_fallback_below;
  if (frac <= 0 || rec.gpu_set.size() < 2 || p2p_baseline_.empty()) {
    return false;
  }
  const int n = platform_->num_devices();
  for (std::size_t i = 0; i < rec.gpu_set.size(); ++i) {
    for (std::size_t j = i + 1; j < rec.gpu_set.size(); ++j) {
      const int a = rec.gpu_set[i], b = rec.gpu_set[j];
      const double base = p2p_baseline_[static_cast<std::size_t>(a) * n + b];
      if (base <= 0) continue;  // never routable; P2P sort routes via host
      const auto bw = platform_->topology().LoneFlowBandwidth(
          topo::CopyKind::kPeerToPeer, topo::Endpoint::Gpu(a),
          topo::Endpoint::Gpu(b));
      if (!bw.ok() || *bw < frac * base) return true;
    }
  }
  return false;
}

void SortServer::ConfigureExec(const JobRecord& rec,
                               core::SortOptions* options) const {
  options->exec_mode = options_.exec_mode;
  options->executor = executor_.get();
  // Queue priority carries through to node dispatch: a high-priority job's
  // ready nodes overtake lower-priority jobs' queued nodes at every engine
  // lane, in either policy.
  options->exec_priority = rec.spec.priority;
  // Graph jobs sharing a GPU get disjoint stream ranges (each sorter uses
  // at most 3 streams) so a shared executor can interleave co-tenants
  // without serializing them through one stream FIFO. The barrier path
  // keeps the fixed streams 0-2 it has always used: phase-grained jobs
  // funnel through the same per-device FIFOs, which is exactly the
  // head-of-line blocking the executor retires (bench_exec_overlap).
  if (options_.allow_gpu_sharing &&
      options_.exec_mode == core::ExecMode::kGraph) {
    options->stream_base = 4 * static_cast<int>(rec.id % 8);
  }
}

template <typename T>
sim::Task<void> SortServer::ExecuteTyped(JobRecord& rec) {
  DataGenOptions gen;
  gen.distribution = rec.spec.distribution;
  gen.seed = rec.spec.seed;
  const double scale = platform_->scale();
  const std::int64_t actual = static_cast<std::int64_t>(
      std::max(1.0, std::ceil(rec.spec.logical_keys / scale)));
  // On a cluster, stage the job's data on its own node's socket — numa 0 is
  // node 0's memory, and HtoD from there would drag every other node's jobs
  // across the fabric (and into every fabric fault).
  const int numa =
      options_.cluster != nullptr && !rec.gpu_set.empty()
          ? options_.cluster->FirstSocket(
                options_.cluster->NodeOfGpu(rec.gpu_set.front()))
          : 0;
  vgpu::HostBuffer<T> data(GenerateKeys<T>(actual, gen), numa,
                           /*pinned=*/true);

  Result<core::SortStats> out = Status::Internal("sort task never ran");
  if (rec.spec.nodes > 1) {
    // Distributed job: node-local sorts plus the cross-node shuffle/merge.
    // No HET fallback here — a sick intra-node mesh surfaces as a retryable
    // transfer failure instead.
    net::DistSortOptions dist;
    dist.node_set = rec.node_set;
    co_await net::DistributedSortTask<T>(platform_, *options_.cluster, &data,
                                         dist, &out);
  } else if (ShouldFallBackToHet(rec)) {
    // Graceful degradation: the mesh between these GPUs is sick, so stage
    // through host memory (HET) instead of streaming peer-to-peer.
    rec.het_fallback = true;
    if (auto* registry = metrics()) {
      registry
          ->GetCounter(obs::kSchedHetFallbacks, {},
                       "Jobs rerouted to the HET sorter because their P2P "
                       "mesh was degraded")
          .Inc();
    }
    if (auto* trace = platform_->trace()) {
      trace->AddInstant("sched:queue",
                        "job" + std::to_string(rec.id) +
                            " HET fallback (degraded mesh)",
                        Now());
    }
    core::HetOptions het_options;
    het_options.gpu_set = rec.gpu_set;
    het_options.gpu_memory_budget = PerGpuBytes(rec.spec);
    ConfigureExec(rec, &het_options);
    co_await core::HetSortTask<T>(platform_, &data, het_options, &out);
  } else {
    core::SortOptions sort_options;
    sort_options.gpu_set = rec.gpu_set;
    ConfigureExec(rec, &sort_options);
    co_await core::P2pSortTask<T>(platform_, &data, sort_options, &out);
  }
  if (!out.ok()) {
    rec.state = JobState::kFailed;
    rec.error = out.status().ToString();
    rec.error_code = out.status().code();
    co_return;
  }
  if (options_.verify_sorted &&
      !std::is_sorted(data.vector().begin(), data.vector().end())) {
    rec.state = JobState::kFailed;
    rec.error = "output not sorted";
    rec.error_code = StatusCode::kInternal;
    co_return;
  }
  rec.sort = std::move(*out);
  rec.state = JobState::kDone;
  rec.error.clear();
  rec.error_code = StatusCode::kOk;
}

sim::Task<void> SortServer::ClientLoop(int client_index,
                                       ClosedLoopOptions options,
                                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int j = 0; j < options.jobs_per_client; ++j) {
    JobSpec spec = SampleJob(options.mix, rng);
    spec.tenant = "client" + std::to_string(client_index);
    spec.arrival_seconds = Now();
    const std::int64_t id = AddSlot(std::move(spec));
    auto done = slots_[static_cast<std::size_t>(id)]->done;
    OnArrival(id);
    co_await done->Wait();
    if (options.think_seconds > 0) {
      co_await sim::Delay{platform_->simulator(), options.think_seconds};
    }
  }
  --live_clients_;
  MaybeFinish();
}

sim::Task<void> SortServer::UtilizationSampler() {
  const auto links = platform_->topology().LinkResources();
  auto& network = platform_->network();
  std::vector<double> last_traffic(network.num_resources(), 0);
  double last_time = Now();
  // With both a registry and a trace attached, mirror registry counter
  // rates into the trace as counter tracks (obs/trace_bridge.h).
  std::unique_ptr<obs::TraceCounterBridge> bridge;
  if (metrics() != nullptr && platform_->trace() != nullptr) {
    bridge = std::make_unique<obs::TraceCounterBridge>(metrics(),
                                                       platform_->trace());
    bridge->Sample(last_time);  // prime baselines at service start
  }
  while (!stop_sampler_) {
    co_await sim::Delay{platform_->simulator(),
                        options_.utilization_sample_seconds};
    const double now = Now();
    const double dt = now - last_time;
    if (dt <= 0) continue;
    network.SettleTraffic();
    if (auto* trace = platform_->trace()) {
      for (const auto& link : links) {
        const double traffic = network.ResourceTraffic(link.resource);
        const double util =
            (traffic - last_traffic[link.resource]) /
            (network.capacity(link.resource) * dt);
        trace->AddCounter("link-util", link.name, now, util);
        last_traffic[link.resource] = traffic;
      }
    }
    if (auto* registry = metrics()) {
      obs::SyncFlowMetrics(&network, platform_->topology(), now, registry);
    }
    if (bridge) bridge->Sample(now);
    last_time = now;
  }
}

sim::Task<void> SortServer::HealthMonitor() {
  const int n = platform_->num_devices();
  while (!stop_sampler_) {
    co_await sim::Delay{platform_->simulator(),
                        options_.recovery.health_check_seconds};
    if (stop_sampler_) break;
    const int healthy = HealthyGpus();
    if (auto* registry = metrics()) {
      registry
          ->GetGauge(obs::kSchedHealthyGpus, {},
                     "GPUs currently healthy (not failed)")
          .Set(healthy);
      registry
          ->GetGauge(obs::kSchedAvailability, {},
                     "Healthy fraction of the GPU fleet")
          .Set(n > 0 ? static_cast<double>(healthy) / n : 0);
    }
    // Permanently fail queued jobs that device loss made unsatisfiable;
    // left alone they would wait forever and wedge the service.
    std::vector<std::int64_t> doomed;
    for (std::int64_t id : queue_.DispatchOrder()) {
      const JobRecord& rec = slots_[static_cast<std::size_t>(id)]->record;
      bool dead_pin = false;
      for (int g : rec.spec.pinned_gpus) {
        if (platform_->device(g).failed()) dead_pin = true;
      }
      if (rec.spec.gpus > healthy || dead_pin) doomed.push_back(id);
    }
    for (std::int64_t id : doomed) {
      JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
      JobRecord& rec = slot.record;
      queue_.Remove(id);
      rec.state = JobState::kFailed;
      rec.error = "unsatisfiable after device loss: needs " +
                  std::to_string(rec.spec.gpus) + " GPUs, " +
                  std::to_string(healthy) + " healthy";
      rec.error_code = StatusCode::kUnavailable;
      if (rec.attempts == 0) rec.start = Now();
      rec.finish = Now();
      if (rec.first_failure < 0) rec.first_failure = Now();
      FinishTerminal(slot);
    }
    if (!doomed.empty()) {
      PublishQueueGauges();
      TryDispatch();
    }
  }
}

sim::Task<void> SortServer::ServiceRoot() {
  service_start_ = Now();
  platform_->network().ResetTraffic();

  auto& simulator = platform_->simulator();
  for (const auto& slot : slots_) {
    const std::int64_t id = slot->record.id;
    simulator.ScheduleAt(service_start_ + slot->record.spec.arrival_seconds,
                         [this, id] { OnArrival(id); });
  }
  int client_index = 0;
  for (const ClosedLoopOptions& loop : closed_loops_) {
    SplitMix64 seeder(loop.seed);
    for (int c = 0; c < loop.clients; ++c) {
      ++live_clients_;
      sim::Spawn(ClientLoop(client_index++, loop, seeder.Next()));
    }
  }
  if (options_.utilization_sample_seconds > 0 &&
      (platform_->trace() != nullptr || metrics() != nullptr)) {
    sim::Spawn(UtilizationSampler());
  }
  if (options_.recovery.health_check_seconds > 0) {
    sim::Spawn(HealthMonitor());
  }
  PublishQueueGauges();
  MaybeFinish();  // an empty service finishes immediately
  co_await all_done_.Wait();
  service_end_ = Now();
  stop_sampler_ = true;
  if (auto* registry = metrics()) {
    obs::SyncFlowMetrics(&platform_->network(), platform_->topology(),
                         service_end_, registry);
  }
}

Result<ServiceReport> SortServer::Run() {
  if (ran_) return Status::FailedPrecondition("SortServer::Run called twice");
  ran_ = true;
  MGS_RETURN_IF_ERROR(platform_->Run(ServiceRoot()).status());
  return BuildReport();
}

ServiceReport SortServer::BuildReport() const {
  ServiceReport report;
  report.completion_order = completion_order_;

  std::vector<double> latencies, queue_delays, service_times;
  double first_arrival = 0, last_finish = 0;
  bool any_terminal = false;
  double completed_keys = 0;
  int within_slo = 0;
  double recovery_sum = 0;
  for (const auto& slot : slots_) {
    const JobRecord& rec = slot->record;
    report.jobs.push_back(rec);
    report.total_retries += rec.retries;
    if (rec.het_fallback) ++report.het_fallbacks;
    switch (rec.state) {
      case JobState::kDone:
        ++report.completed;
        if (rec.recovered()) {
          ++report.recovered;
          recovery_sum += rec.recovery_seconds();
        }
        latencies.push_back(rec.latency());
        queue_delays.push_back(rec.queue_delay());
        service_times.push_back(rec.service_time());
        completed_keys += rec.spec.logical_keys;
        if (options_.slo_seconds > 0 &&
            rec.latency() <= options_.slo_seconds) {
          ++within_slo;
        }
        break;
      case JobState::kFailed:
        ++report.failed;
        break;
      case JobState::kRejected:
        ++report.rejected;
        break;
      default:
        break;
    }
    if (rec.state == JobState::kDone || rec.state == JobState::kFailed ||
        rec.state == JobState::kRejected) {
      if (!any_terminal || rec.arrival < first_arrival) {
        first_arrival = any_terminal ? std::min(first_arrival, rec.arrival)
                                     : rec.arrival;
      }
      last_finish = std::max(last_finish, rec.finish);
      any_terminal = true;
    }
  }
  if (any_terminal) report.makespan = last_finish - first_arrival;
  if (report.recovered > 0) {
    report.mttr_seconds = recovery_sum / report.recovered;
  }
  report.latency = Summarize(latencies);
  report.queue_delay = Summarize(queue_delays);
  report.service_time = Summarize(service_times);
  if (report.makespan > 0) {
    report.aggregate_gkeys_per_sec = completed_keys / report.makespan / 1e9;
  }
  if (options_.slo_seconds > 0 && report.completed > 0) {
    report.slo_attainment =
        static_cast<double>(within_slo) / report.completed;
  }

  // Progress accrues lazily (at flow start/finish); settle up to Now() so
  // the utilization window [service_start_, Now()] counts every delivered
  // byte, including flows still in flight when the report is generated.
  platform_->network().SettleTraffic();
  const auto utils = platform_->network().Utilizations(service_start_);
  if (!utils.empty()) {
    for (const auto& link : platform_->topology().LinkResources()) {
      report.links.push_back(
          LinkLoad{link.name, utils[link.resource].second});
    }
    std::sort(report.links.begin(), report.links.end(),
              [](const LinkLoad& a, const LinkLoad& b) {
                if (a.utilization != b.utilization) {
                  return a.utilization > b.utilization;
                }
                return a.name < b.name;
              });
  }
  return report;
}

}  // namespace mgs::sched
