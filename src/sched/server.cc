#include "sched/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <unordered_map>

#include "core/keygen.h"

#include "core/het_sort.h"
#include "core/p2p_sort.h"
#include "net/distributed_sort.h"
#include "obs/phase.h"
#include "obs/resilience.h"
#include "obs/service.h"
#include "obs/trace_bridge.h"

namespace mgs::sched {

namespace {
const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
    default:
      return "other";
  }
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over one element's bytes, repeated `count` times — the building
/// block of JobRecord::result_hash. Hashing a sorted output element by
/// element equals hashing each equal-value run representative `run` times,
/// which is how the batch split attributes outputs without materializing
/// per-member copies.
template <typename T>
std::uint64_t MixValue(std::uint64_t h, const T& value, std::int64_t count) {
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (std::int64_t k = 0; k < count; ++k) {
    for (unsigned char b : bytes) {
      h ^= b;
      h *= kFnvPrime;
    }
  }
  return h;
}

template <typename T>
std::uint64_t HashSortedOutput(const std::vector<T>& data) {
  std::uint64_t h = kFnvOffset;
  for (const T& v : data) h = MixValue(h, v, 1);
  return h;
}

/// StringKey overload: hash the actual string bytes (plus length framing),
/// never the struct — the arena pointer inside StringKey differs run to
/// run, while the content is what identifies the output.
std::uint64_t HashSortedOutput(const std::vector<core::StringKey>& data) {
  std::uint64_t h = kFnvOffset;
  auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= kFnvPrime;
  };
  for (const auto& key : data) {
    std::uint32_t len = key.length;
    for (int shift = 0; shift < 32; shift += 8) {
      mix_byte(static_cast<unsigned char>((len >> shift) & 0xff));
    }
    for (std::uint32_t i = 0; i < key.length; ++i) mix_byte(key.bytes[i]);
  }
  return h;
}
}  // namespace

SortServer::SortServer(vgpu::Platform* platform, ServerOptions options)
    : platform_(platform),
      options_(std::move(options)),
      admission_(platform, options_.admission),
      placer_(platform, options_.allow_gpu_sharing, options_.cluster),
      queue_(options_.policy),
      running_per_gpu_(static_cast<std::size_t>(platform->num_devices()), 0),
      jitter_rng_(options_.recovery.jitter_seed) {
  if (options_.exec_mode == core::ExecMode::kGraph) {
    executor_ = std::make_unique<exec::GraphExecutor>(platform_);
  }
  if (options_.recovery.het_fallback_below > 0) {
    // Baseline pairwise P2P bandwidth on the healthy topology; injected
    // faults only fire once the simulator runs, so this sees full rates.
    const int n = platform_->num_devices();
    p2p_baseline_.assign(static_cast<std::size_t>(n) * n, -1.0);
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a == b) continue;
        const auto bw = platform_->topology().LoneFlowBandwidth(
            topo::CopyKind::kPeerToPeer, topo::Endpoint::Gpu(a),
            topo::Endpoint::Gpu(b));
        if (bw.ok()) p2p_baseline_[static_cast<std::size_t>(a) * n + b] = *bw;
      }
    }
  }
}

double SortServer::Now() const { return platform_->simulator().Now(); }

double SortServer::PerGpuBytes(const JobSpec& spec) const {
  const double scale = platform_->scale();
  const double actual = std::max(1.0, std::ceil(spec.logical_keys / scale));
  const double elem_bytes =
      static_cast<double>(JobElementSize(spec)) * scale;
  if (SpillJob(spec)) {
    // Oversized job riding the spill tier: it runs the HET sorter with a
    // bounded chunk-buffer budget, so the admission reservation is that
    // budget, not the full footprint (which would never be admitted).
    double smallest = std::numeric_limits<double>::infinity();
    for (int d = 0; d < platform_->num_devices(); ++d) {
      smallest = std::min(
          smallest, platform_->topology().gpu_spec(d).memory_capacity_bytes);
    }
    return smallest * options_.spill.budget_fraction;
  }
  if (spec.nodes > 1 && options_.cluster != nullptr) {
    // Mirrors net::DistributedSortTask's eager allocation: sort chunk
    // (primary + aux of m = ceil(ceil(n/N)/g) elements) plus the receive
    // ping-pong pair (2 x recv_cap, sized by skew_slack over the balanced
    // share).
    const double g = options_.cluster->gpus_per_node();
    const double m = std::ceil(std::ceil(actual / spec.nodes) / g);
    const double avg = std::ceil(actual / (spec.nodes * g));
    const double recv_cap = std::max(
        16.0, std::floor(net::DistSortOptions{}.skew_slack * avg) + 16.0);
    return (2.0 * m + 2.0 * recv_cap) * elem_bytes;
  }
  const double chunk = std::ceil(actual / spec.gpus);
  return 2.0 * chunk * elem_bytes;
}

bool SortServer::SpillJob(const JobSpec& spec) const {
  if (!options_.spill.enabled || platform_->topology().num_nvme() == 0) {
    return false;
  }
  if (spec.nodes > 1 && options_.cluster != nullptr) return false;
  const double scale = platform_->scale();
  const double actual = std::max(1.0, std::ceil(spec.logical_keys / scale));
  const double elem_bytes =
      static_cast<double>(JobElementSize(spec)) * scale;
  const double full_per_gpu =
      2.0 * std::ceil(actual / spec.gpus) * elem_bytes;
  double smallest = std::numeric_limits<double>::infinity();
  for (int d = 0; d < platform_->num_devices(); ++d) {
    smallest = std::min(
        smallest, platform_->topology().gpu_spec(d).memory_capacity_bytes);
  }
  return full_per_gpu > smallest;
}

std::int64_t SortServer::AddSlot(JobSpec spec) {
  // String/record sorts are single-node: the distributed shuffle moves raw
  // element bytes between nodes, which would tear arena-backed keys.
  if (spec.key_kind != KeyKind::kNumeric) spec.nodes = 1;
  if (spec.nodes > 1 && options_.cluster != nullptr) {
    // A distributed job spans whole nodes; its GPU count is derived, so
    // admission, sizing and the health monitor see the real footprint.
    spec.gpus = spec.nodes * options_.cluster->gpus_per_node();
  }
  const std::int64_t id = static_cast<std::int64_t>(slots_.size());
  auto slot = std::make_unique<JobSlot>();
  slot->record.id = id;
  slot->record.spec = std::move(spec);
  slots_.push_back(std::move(slot));
  ++unfinished_;
  return id;
}

std::int64_t SortServer::Submit(JobSpec spec) {
  return AddSlot(std::move(spec));
}

void SortServer::Submit(const std::vector<JobSpec>& specs) {
  for (const JobSpec& spec : specs) Submit(spec);
}

void SortServer::AddClosedLoop(ClosedLoopOptions options) {
  closed_loops_.push_back(std::move(options));
}

const JobRecord& SortServer::job(std::int64_t id) const {
  return slots_.at(static_cast<std::size_t>(id))->record;
}

void SortServer::FinishTerminal(JobSlot& slot) {
  completion_order_.push_back(slot.record.id);
  PublishJobOutcome(slot.record);
  if (slot.dedupe_registered) SettleDedupePrimary(slot);
  if (slot.done) slot.done->Fire();
  --unfinished_;
  MaybeFinish();
}

void SortServer::PublishQueueGauges() {
  auto* registry = metrics();
  if (registry == nullptr) return;
  registry
      ->GetGauge(kSchedQueueDepth, {},
                 "Jobs admitted but not yet dispatched")
      .Set(static_cast<double>(queue_.size()));
  registry
      ->GetGauge(kSchedRunningJobs, {}, "Jobs currently executing")
      .Set(static_cast<double>(running_jobs_));
}

void SortServer::PublishJobOutcome(const JobRecord& rec) {
  auto* registry = metrics();
  if (registry == nullptr) return;
  registry
      ->GetCounter(kSchedJobs, {{"state", JobStateName(rec.state)}},
                   "Jobs that reached a terminal state, by outcome")
      .Inc();
  if (rec.state != JobState::kDone) return;
  registry
      ->GetHistogram(kSchedJobLatencySeconds, {},
                     "Completed-job latency (arrival to finish)")
      .Observe(rec.latency());
  registry
      ->GetHistogram(kSchedQueueDelaySeconds, {},
                     "Completed-job queueing delay (arrival to dispatch)")
      .Observe(rec.queue_delay());
  if (options_.slo_seconds > 0 && rec.latency() > options_.slo_seconds) {
    registry
        ->GetCounter(kSchedSloViolations, {},
                     "Completed jobs that exceeded the latency SLO")
        .Inc();
    registry
        ->GetCounter(kSchedSloBurnSeconds, {},
                     "Cumulative latency in excess of the SLO across "
                     "violating jobs")
        .Add(rec.latency() - options_.slo_seconds);
  }
}

void SortServer::OnArrival(std::int64_t id) {
  JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
  JobRecord& rec = slot.record;
  rec.arrival = Now();
  // Ready cache hit first, deliberately ahead of admission: a job whose
  // result is already sitting in the cache costs nothing to serve, which is
  // exactly what an overloaded (queue-full, shedding) service wants.
  if (DedupeEligible(rec.spec)) {
    auto it = dedupe_.find(DatasetIdentity(rec.spec));
    if (it != dedupe_.end() && it->second.ready &&
        (options_.dedupe.ttl_seconds <= 0 ||
         Now() - it->second.finished_at <= options_.dedupe.ttl_seconds)) {
      CompleteDedupeHit(slot, it->second);
      return;
    }
  }
  Status admit = Status::OK();
  if (rec.spec.nodes > 1) {
    if (options_.cluster == nullptr) {
      admit = Status::Invalid("multi-node job on a server without a cluster");
    } else if (rec.spec.nodes > options_.cluster->nodes()) {
      admit = Status::Invalid(
          "job spans " + std::to_string(rec.spec.nodes) + " nodes on a " +
          std::to_string(options_.cluster->nodes()) + "-node cluster");
    } else if (!rec.spec.pinned_gpus.empty()) {
      admit = Status::Invalid(
          "pinned_gpus is unsupported for multi-node jobs (they occupy "
          "whole nodes)");
    }
  }
  if (admit.ok()) {
    admit = admission_.Admit(rec.spec, PerGpuBytes(rec.spec),
                             static_cast<int>(queue_.size()));
  }
  if (!admit.ok()) {
    rec.state = JobState::kRejected;
    rec.error = admit.ToString();
    rec.start = rec.finish = rec.arrival;
    if (auto* registry = metrics()) {
      registry
          ->GetCounter(kSchedRejections,
                       {{"reason", StatusCodeToString(admit.code())}},
                       "Admission-control rejections, by status code")
          .Inc();
    }
    FinishTerminal(slot);
    return;
  }
  rec.state = JobState::kQueued;
  // A twin of a queued/running job parks outside the queue and rides that
  // job's result instead of sorting again.
  if (TryDedupeOnArrival(id)) return;
  queue_.Push(id, JobBytes(rec.spec), rec.spec.priority);
  PushCoalesceIndex(id);
  PublishQueueGauges();
  TryDispatch();
}

void SortServer::TryDispatch() {
  bool dispatched = true;
  while (dispatched) {
    dispatched = false;
    if (options_.max_concurrent_jobs > 0 &&
        running_jobs_ >= options_.max_concurrent_jobs) {
      return;
    }
    if (queue_.empty()) return;
    dispatched = options_.legacy_scan_dispatch ? ScanDispatchOnce()
                                               : HeapDispatchOnce();
  }
}

bool SortServer::ScanDispatchOnce() {
  // The pre-heap path: materialize the whole policy order (O(Q log Q)) and
  // walk it. Kept verbatim as the A/B oracle for HeapDispatchOnce.
  for (std::int64_t id : queue_.DispatchOrder()) {
    switch (TryLaunch(id)) {
      case LaunchResult::kLaunched:
        return true;
      case LaunchResult::kUnplaceable:
        if (!queue_.allows_bypass()) return false;  // FIFO: head-of-line blocks
        continue;
    }
  }
  return false;
}

bool SortServer::HeapDispatchOnce() {
  if (!AnyFreeGpu()) return false;
  if (!queue_.allows_bypass()) {
    // FIFO: only the head may dispatch; one O(log Q) peek decides.
    return TryLaunch(queue_.PeekBest()) == LaunchResult::kLaunched;
  }
  // Bypassing policies: pop past unplaceable heads and restore them
  // afterwards (Restore preserves their arrival seq, so the policy order is
  // exactly what DispatchOrder would have produced).
  std::vector<JobQueue::Entry> skipped;
  bool launched = false;
  while (!queue_.empty()) {
    if (TryLaunch(queue_.PeekBest()) == LaunchResult::kLaunched) {
      launched = true;
      break;
    }
    skipped.push_back(queue_.PopBest());
  }
  for (const JobQueue::Entry& entry : skipped) queue_.Restore(entry);
  return launched;
}

bool SortServer::AnyFreeGpu() const {
  if (options_.allow_gpu_sharing) return true;
  for (int g = 0; g < platform_->num_devices(); ++g) {
    if (!platform_->device(g).failed() &&
        running_per_gpu_[static_cast<std::size_t>(g)] == 0) {
      return true;
    }
  }
  // With every healthy GPU occupied (exclusive mode), CandidateGpus is
  // empty and every placement comes back nullopt — the scan cannot launch
  // anything, so skip it. (A malformed request's placement *error* is
  // delayed until the next scan with an idle GPU; the terminal outcome is
  // unchanged.)
  return false;
}

SortServer::LaunchResult SortServer::TryLaunch(std::int64_t id) {
  JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
  JobRecord& rec = slot.record;
  PlacementRequest request;
  request.gpus = rec.spec.gpus;
  request.per_gpu_bytes = PerGpuBytes(rec.spec);
  request.pinned = rec.spec.pinned_gpus;
  std::vector<int> node_set;
  auto placed = rec.spec.nodes > 1
                    ? PlaceDistributed(rec, request.per_gpu_bytes, &node_set)
                    : placer_.Place(request, running_per_gpu_);
  if (!placed.ok()) {
    // Malformed beyond what admission caught; fail rather than wedge the
    // queue.
    queue_.Remove(id);
    rec.state = JobState::kFailed;
    rec.error = placed.status().ToString();
    rec.start = rec.finish = Now();
    FinishTerminal(slot);
    return LaunchResult::kLaunched;  // the queue changed either way
  }
  if (!placed->has_value()) return LaunchResult::kUnplaceable;
  queue_.Remove(id);
  rec.gpu_set = **placed;
  rec.node_set = std::move(node_set);
  double reserve_bytes = request.per_gpu_bytes;
  std::vector<std::int64_t> batch;
  if (CoalesceEligible(rec.spec)) {
    batch = GatherBatch(id, rec.gpu_set, &reserve_bytes);
  }
  // Claim the memory now so co-scheduled placements at this instant can't
  // oversubscribe; RunJob / RunBatch hand the claim to the sort task.
  for (int g : rec.gpu_set) {
    CheckOk(platform_->device(g).Reserve(reserve_bytes));
  }
  if (batch.size() > 1) {
    sim::Spawn(RunBatch(std::move(batch), reserve_bytes));
  } else {
    sim::Spawn(RunJob(id));
  }
  PublishQueueGauges();
  return LaunchResult::kLaunched;
}

bool SortServer::CoalesceEligible(const JobSpec& spec) const {
  // Numeric kinds only: the batch pass splits members by element counts
  // over a hashable key space; string/record jobs run solo.
  return options_.coalesce.enabled && spec.nodes <= 1 &&
         spec.key_kind == KeyKind::kNumeric && spec.pinned_gpus.empty() &&
         spec.logical_keys <= options_.coalesce.max_job_keys &&
         !SpillJob(spec);
}

std::uint64_t SortServer::CoalesceKey(const JobSpec& spec) const {
  // Bucket routing only — GatherBatch re-checks the exact shape, so a
  // collision merely co-locates two shapes in one bucket.
  return (static_cast<std::uint64_t>(spec.type) << 48) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              spec.priority))
          << 16) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(spec.gpus));
}

void SortServer::PushCoalesceIndex(std::int64_t id) {
  const JobSpec& spec = slots_[static_cast<std::size_t>(id)]->record.spec;
  if (!CoalesceEligible(spec)) return;
  coalesce_index_[CoalesceKey(spec)].push_back(id);
}

std::vector<std::int64_t> SortServer::GatherBatch(
    std::int64_t leader, const std::vector<int>& gpu_set,
    double* reserve_bytes) {
  std::vector<std::int64_t> batch{leader};
  const JobSpec& lead = slots_[static_cast<std::size_t>(leader)]->record.spec;
  auto it = coalesce_index_.find(CoalesceKey(lead));
  if (it == coalesce_index_.end()) return batch;

  // The batch sorts the members' *concatenated* generated keys, so size the
  // reservation from the summed actual (scaled-down) keys — the sum of
  // ceils, not the ceil of the sum.
  const double scale = platform_->scale();
  const double elem_bytes =
      static_cast<double>(DataTypeSize(lead.type)) * scale;
  auto actual_of = [scale](double logical) {
    return std::max(1.0, std::ceil(logical / scale));
  };
  double spare = platform_->device(gpu_set.front()).memory_available();
  for (int g : gpu_set) {
    spare = std::min(spare, platform_->device(g).memory_available());
  }
  double total_logical = lead.logical_keys;
  double total_actual = actual_of(lead.logical_keys);

  std::deque<std::int64_t>& bucket = it->second;
  std::deque<std::int64_t> keep;
  while (!bucket.empty() && static_cast<int>(batch.size()) <
                                options_.coalesce.max_batch_jobs) {
    const std::int64_t cid = bucket.front();
    bucket.pop_front();
    // Lazily purge: dispatched, doomed, re-indexed after a retry — and the
    // leader itself, which TryLaunch already removed.
    if (!queue_.Contains(cid)) continue;
    const JobSpec& cand =
        slots_[static_cast<std::size_t>(cid)]->record.spec;
    if (cand.type != lead.type || cand.gpus != lead.gpus ||
        cand.priority != lead.priority) {  // bucket collision
      keep.push_back(cid);
      continue;
    }
    const double next_actual = total_actual + actual_of(cand.logical_keys);
    const double need =
        2.0 * std::ceil(next_actual / lead.gpus) * elem_bytes;
    if (total_logical + cand.logical_keys > options_.coalesce.max_batch_keys ||
        need > spare) {
      // FIFO within the bucket: stop at the first member that doesn't fit
      // rather than searching past it (keeps the scan O(batch)).
      keep.push_back(cid);
      break;
    }
    queue_.Remove(cid);
    total_logical += cand.logical_keys;
    total_actual = next_actual;
    batch.push_back(cid);
  }
  while (!bucket.empty()) {
    keep.push_back(bucket.front());
    bucket.pop_front();
  }
  bucket = std::move(keep);
  if (bucket.empty()) coalesce_index_.erase(it);

  if (batch.size() > 1) {
    *reserve_bytes = 2.0 * std::ceil(total_actual / lead.gpus) * elem_bytes;
  }
  return batch;
}

Result<std::optional<std::vector<int>>> SortServer::PlaceDistributed(
    const JobRecord& rec, double per_gpu_bytes,
    std::vector<int>* node_set) const {
  MGS_ASSIGN_OR_RETURN(
      auto nodes, placer_.PlaceNodes(*options_.cluster, rec.spec.nodes,
                                     per_gpu_bytes, running_per_gpu_));
  if (!nodes.has_value()) return std::optional<std::vector<int>>();
  *node_set = std::move(*nodes);
  std::vector<int> gpus;
  for (int node : *node_set) {
    for (int g : options_.cluster->NodeGpus(node)) gpus.push_back(g);
  }
  return std::optional<std::vector<int>>(std::move(gpus));
}

void SortServer::MaybeFinish() {
  if (unfinished_ == 0 && live_clients_ == 0) all_done_.Fire();
}

sim::Task<void> SortServer::RunJob(std::int64_t id) {
  JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
  JobRecord& rec = slot.record;
  rec.state = JobState::kRunning;
  if (rec.attempts == 0) rec.start = Now();
  ++rec.attempts;
  rec.batch_jobs = 1;  // attempt-scoped: a retried batch member runs solo
  rec.batch_leader = -1;
  const double attempt_start = Now();
  ++running_jobs_;
  for (int g : rec.gpu_set) {
    ++running_per_gpu_[static_cast<std::size_t>(g)];
  }
  PublishQueueGauges();
  if (auto* trace = platform_->trace()) {
    if (rec.attempts == 1 && rec.start > rec.arrival) {
      trace->AddSpan("sched:queue", "job" + std::to_string(id) + " queued",
                     rec.arrival, rec.start);
    }
  }

  // Reservation handoff: release right before awaiting the sort task, which
  // allocates eagerly (before its first suspension) — race-free in the
  // single-threaded simulation.
  const double per_gpu = PerGpuBytes(rec.spec);
  for (int g : rec.gpu_set) platform_->device(g).Unreserve(per_gpu);
  if (rec.spec.key_kind == KeyKind::kString) {
    co_await ExecuteStringJob(rec);
  } else if (rec.spec.key_kind == KeyKind::kRecord) {
    co_await ExecuteRecordJob(rec);
  } else {
    switch (rec.spec.type) {
      case DataType::kInt32:
        co_await ExecuteTyped<std::int32_t>(rec);
        break;
      case DataType::kInt64:
        co_await ExecuteTyped<std::int64_t>(rec);
        break;
      case DataType::kFloat32:
        co_await ExecuteTyped<float>(rec);
        break;
      case DataType::kFloat64:
        co_await ExecuteTyped<double>(rec);
        break;
    }
  }

  rec.finish = Now();
  --running_jobs_;
  for (int g : rec.gpu_set) {
    --running_per_gpu_[static_cast<std::size_t>(g)];
  }
  PublishQueueGauges();
  if (auto* trace = platform_->trace()) {
    const std::string attempt =
        rec.attempts > 1 ? " try" + std::to_string(rec.attempts) : "";
    trace->AddSpan("sched:gpu" + std::to_string(rec.gpu_set.front()),
                   rec.spec.tenant + "/job" + std::to_string(id) + " g=" +
                       std::to_string(rec.spec.gpus) + attempt,
                   attempt_start, rec.finish);
  }

  SettleAttempt(slot);
  TryDispatch();
}

void SortServer::SettleAttempt(JobSlot& slot) {
  JobRecord& rec = slot.record;
  const std::int64_t id = rec.id;
  if (rec.state == JobState::kFailed) {
    if (rec.first_failure < 0) rec.first_failure = Now();
    // Retry only the transient class: device loss, link outage, injected
    // copy errors. Deterministic failures (bad spec, OOM, corrupt output)
    // would fail again identically.
    if (rec.error_code == StatusCode::kUnavailable &&
        rec.retries < options_.recovery.max_retries) {
      ++rec.retries;
      rec.state = JobState::kRetryBackoff;
      double backoff = options_.recovery.backoff_base_seconds *
                       std::pow(options_.recovery.backoff_multiplier,
                                rec.retries - 1);
      backoff *= 1.0 + options_.recovery.backoff_jitter *
                           (2.0 * jitter_rng_.NextDouble() - 1.0);
      if (auto* registry = metrics()) {
        registry
            ->GetCounter(obs::kSchedRetries, {},
                         "Retry dispatches after retryable failures")
            .Inc();
      }
      if (auto* trace = platform_->trace()) {
        trace->AddInstant("sched:queue",
                          "job" + std::to_string(id) + " retry " +
                              std::to_string(rec.retries) + ": " + rec.error,
                          Now());
      }
      platform_->simulator().Schedule(std::max(0.0, backoff),
                                      [this, id] { RequeueJob(id); });
      return;  // not terminal: the job lives on in backoff
    }
  } else if (rec.recovered()) {
    if (auto* registry = metrics()) {
      registry
          ->GetCounter(obs::kSchedRecovered, {},
                       "Jobs completed after at least one retry")
          .Inc();
      registry
          ->GetHistogram(obs::kSchedMttrSeconds, {},
                         "Time from a job's first failure to its eventual "
                         "completion")
          .Observe(rec.recovery_seconds());
    }
    if (auto* trace = platform_->trace()) {
      trace->AddInstant("sched:queue",
                        "job" + std::to_string(id) + " recovered after " +
                            std::to_string(rec.retries) + " retr" +
                            (rec.retries == 1 ? "y" : "ies"),
                        Now());
    }
  }
  FinishTerminal(slot);
}

sim::Task<void> SortServer::RunBatch(std::vector<std::int64_t> batch,
                                     double reserve_bytes) {
  JobSlot& lead_slot = *slots_[static_cast<std::size_t>(batch.front())];
  JobRecord& leader = lead_slot.record;
  const double attempt_start = Now();
  for (std::int64_t id : batch) {
    JobRecord& rec = slots_[static_cast<std::size_t>(id)]->record;
    rec.state = JobState::kRunning;
    if (rec.attempts == 0) rec.start = Now();
    ++rec.attempts;
    rec.batch_jobs = static_cast<int>(batch.size());
    rec.batch_leader = leader.id;
    if (id != leader.id) rec.gpu_set = leader.gpu_set;
  }
  ++coalesced_batches_;
  coalesced_jobs_ += static_cast<std::int64_t>(batch.size());
  if (auto* registry = metrics()) {
    registry
        ->GetCounter(obs::kSchedCoalescedBatches, {},
                     "Device passes that carried more than one job")
        .Inc();
    registry
        ->GetCounter(obs::kSchedCoalescedJobs, {},
                     "Jobs that rode a coalesced device pass")
        .Add(static_cast<double>(batch.size()));
  }
  // One device pass = one running slot; the concurrency cap counts passes.
  ++running_jobs_;
  for (int g : leader.gpu_set) {
    ++running_per_gpu_[static_cast<std::size_t>(g)];
  }
  PublishQueueGauges();
  if (auto* trace = platform_->trace()) {
    if (leader.attempts == 1 && leader.start > leader.arrival) {
      trace->AddSpan("sched:queue",
                     "job" + std::to_string(leader.id) + " queued",
                     leader.arrival, leader.start);
    }
  }

  // Reservation handoff, as in RunJob: release right before awaiting the
  // sort task, which allocates eagerly before its first suspension.
  for (int g : leader.gpu_set) {
    platform_->device(g).Unreserve(reserve_bytes);
  }
  switch (leader.spec.type) {
    case DataType::kInt32:
      co_await ExecuteBatchTyped<std::int32_t>(batch, leader);
      break;
    case DataType::kInt64:
      co_await ExecuteBatchTyped<std::int64_t>(batch, leader);
      break;
    case DataType::kFloat32:
      co_await ExecuteBatchTyped<float>(batch, leader);
      break;
    case DataType::kFloat64:
      co_await ExecuteBatchTyped<double>(batch, leader);
      break;
  }

  const double finish = Now();
  --running_jobs_;
  for (int g : leader.gpu_set) {
    --running_per_gpu_[static_cast<std::size_t>(g)];
  }
  PublishQueueGauges();
  if (auto* trace = platform_->trace()) {
    trace->AddSpan("sched:gpu" + std::to_string(leader.gpu_set.front()),
                   leader.spec.tenant + "/job" + std::to_string(leader.id) +
                       " batch x" + std::to_string(batch.size()) + " g=" +
                       std::to_string(leader.spec.gpus),
                   attempt_start, finish);
  }
  for (std::int64_t id : batch) {
    JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
    slot.record.finish = finish;
    SettleAttempt(slot);
  }
  TryDispatch();
}

bool SortServer::DedupeEligible(const JobSpec& spec) const {
  // DatasetKey carries key_kind, so string/record twins *could* dedupe —
  // but their cached stats would alias arena-backed outputs; keep the
  // cache numeric-only.
  return options_.dedupe.enabled && spec.nodes <= 1 &&
         spec.key_kind == KeyKind::kNumeric && spec.pinned_gpus.empty();
}

bool SortServer::TryDedupeOnArrival(std::int64_t id) {
  JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
  JobRecord& rec = slot.record;
  if (!DedupeEligible(rec.spec)) return false;
  DedupeEntry& entry = dedupe_[DatasetIdentity(rec.spec)];
  if (entry.primary >= 0) {
    // Park behind the live twin; SettleDedupePrimary completes (or
    // promotes) this job when the primary settles.
    rec.dedup_origin = entry.primary;
    entry.waiters.push_back(id);
    return true;
  }
  // Become the primary. A ready result that survived to this point is
  // stale (the fresh case completed before admission) — supersede it.
  if (entry.ready) {
    dedupe_lru_.erase(entry.lru);
    entry.ready = false;
  }
  entry.primary = id;
  slot.dedupe_registered = true;
  return false;
}

void SortServer::CompleteDedupeHit(JobSlot& slot, DedupeEntry& entry) {
  JobRecord& rec = slot.record;
  rec.state = JobState::kDone;
  // start == finish == now: queueing delay is real (it waited for the
  // primary), service time is zero — SLO attribution charges the wait.
  rec.start = rec.finish = Now();
  rec.sort = entry.stats;
  rec.result_hash = entry.result_hash;
  rec.dedup_hit = true;
  rec.dedup_origin = entry.origin;
  rec.error.clear();
  rec.error_code = StatusCode::kOk;
  ++dedup_hits_;
  if (auto* registry = metrics()) {
    registry
        ->GetCounter(obs::kSchedDedupHits, {},
                     "Jobs completed by reusing a twin's cached result")
        .Inc();
  }
  if (entry.ready) {
    // LRU touch: serving a hit keeps the entry warm.
    dedupe_lru_.erase(entry.lru);
    entry.lru = ++dedupe_stamp_;
    dedupe_lru_[entry.lru] = DatasetIdentity(rec.spec);
  }
  FinishTerminal(slot);
}

void SortServer::SettleDedupePrimary(JobSlot& slot) {
  JobRecord& rec = slot.record;
  slot.dedupe_registered = false;
  auto it = dedupe_.find(DatasetIdentity(rec.spec));
  if (it == dedupe_.end() || it->second.primary != rec.id) return;
  DedupeEntry& entry = it->second;
  entry.primary = -1;
  if (rec.state == JobState::kDone) {
    entry.ready = true;
    entry.finished_at = Now();
    entry.stats = rec.sort;
    entry.result_hash = rec.result_hash;
    entry.origin = rec.id;
    entry.lru = ++dedupe_stamp_;
    dedupe_lru_[entry.lru] = it->first;
    std::vector<std::int64_t> waiters = std::move(entry.waiters);
    entry.waiters.clear();
    for (std::int64_t wid : waiters) {
      CompleteDedupeHit(*slots_[static_cast<std::size_t>(wid)], entry);
    }
    // Capacity eviction, least-recently-touched ready entries first. Only
    // ready entries live in the LRU, and a ready entry has no primary and
    // no waiters, so erasing it drops no live state.
    const std::size_t cap =
        static_cast<std::size_t>(std::max(1, options_.dedupe.capacity));
    while (dedupe_lru_.size() > cap) {
      auto oldest = dedupe_lru_.begin();
      dedupe_.erase(oldest->second);
      dedupe_lru_.erase(oldest);
    }
    return;
  }
  // The primary faulted out, taking its (never-produced) result with it:
  // promote the first parked twin to a fresh primary and queue it.
  if (entry.waiters.empty()) {
    dedupe_.erase(it);
    return;
  }
  const std::int64_t next = entry.waiters.front();
  entry.waiters.erase(entry.waiters.begin());
  entry.primary = next;
  JobSlot& next_slot = *slots_[static_cast<std::size_t>(next)];
  next_slot.dedupe_registered = true;
  next_slot.record.dedup_origin = -1;
  queue_.Push(next, JobBytes(next_slot.record.spec),
              next_slot.record.spec.priority);
  PushCoalesceIndex(next);
  PublishQueueGauges();
  TryDispatch();
}

void SortServer::RequeueJob(std::int64_t id) {
  JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
  JobRecord& rec = slot.record;
  if (rec.state != JobState::kRetryBackoff) return;
  rec.state = JobState::kQueued;
  queue_.Push(id, JobBytes(rec.spec), rec.spec.priority);
  PushCoalesceIndex(id);
  PublishQueueGauges();
  TryDispatch();
}

int SortServer::HealthyGpus() const {
  int healthy = 0;
  for (int g = 0; g < platform_->num_devices(); ++g) {
    if (!platform_->device(g).failed()) ++healthy;
  }
  return healthy;
}

bool SortServer::ShouldFallBackToHet(const JobRecord& rec) const {
  const double frac = options_.recovery.het_fallback_below;
  if (frac <= 0 || rec.gpu_set.size() < 2 || p2p_baseline_.empty()) {
    return false;
  }
  const int n = platform_->num_devices();
  for (std::size_t i = 0; i < rec.gpu_set.size(); ++i) {
    for (std::size_t j = i + 1; j < rec.gpu_set.size(); ++j) {
      const int a = rec.gpu_set[i], b = rec.gpu_set[j];
      const double base = p2p_baseline_[static_cast<std::size_t>(a) * n + b];
      if (base <= 0) continue;  // never routable; P2P sort routes via host
      const auto bw = platform_->topology().LoneFlowBandwidth(
          topo::CopyKind::kPeerToPeer, topo::Endpoint::Gpu(a),
          topo::Endpoint::Gpu(b));
      if (!bw.ok() || *bw < frac * base) return true;
    }
  }
  return false;
}

void SortServer::ConfigureExec(const JobRecord& rec,
                               core::SortOptions* options) const {
  options->exec_mode = options_.exec_mode;
  options->executor = executor_.get();
  // Queue priority carries through to node dispatch: a high-priority job's
  // ready nodes overtake lower-priority jobs' queued nodes at every engine
  // lane, in either policy.
  options->exec_priority = rec.spec.priority;
  // Graph jobs sharing a GPU get disjoint stream ranges (each sorter uses
  // at most 3 streams) so a shared executor can interleave co-tenants
  // without serializing them through one stream FIFO. The barrier path
  // keeps the fixed streams 0-2 it has always used: phase-grained jobs
  // funnel through the same per-device FIFOs, which is exactly the
  // head-of-line blocking the executor retires (bench_exec_overlap).
  if (options_.allow_gpu_sharing &&
      options_.exec_mode == core::ExecMode::kGraph) {
    options->stream_base = 4 * static_cast<int>(rec.id % 8);
  }
}

template <typename T>
sim::Task<void> SortServer::ExecuteTyped(JobRecord& rec) {
  DataGenOptions gen;
  gen.distribution = rec.spec.distribution;
  gen.seed = rec.spec.seed;
  const double scale = platform_->scale();
  const std::int64_t actual = static_cast<std::int64_t>(
      std::max(1.0, std::ceil(rec.spec.logical_keys / scale)));
  // On a cluster, stage the job's data on its own node's socket — numa 0 is
  // node 0's memory, and HtoD from there would drag every other node's jobs
  // across the fabric (and into every fabric fault).
  const int numa =
      options_.cluster != nullptr && !rec.gpu_set.empty()
          ? options_.cluster->FirstSocket(
                options_.cluster->NodeOfGpu(rec.gpu_set.front()))
          : 0;
  vgpu::HostBuffer<T> data(GenerateKeys<T>(actual, gen), numa,
                           /*pinned=*/true);

  Result<core::SortStats> out = Status::Internal("sort task never ran");
  if (rec.spec.nodes > 1) {
    // Distributed job: node-local sorts plus the cross-node shuffle/merge.
    // No HET fallback here — a sick intra-node mesh surfaces as a retryable
    // transfer failure instead.
    net::DistSortOptions dist;
    dist.node_set = rec.node_set;
    co_await net::DistributedSortTask<T>(platform_, *options_.cluster, &data,
                                         dist, &out);
  } else if (SpillJob(rec.spec) || ShouldFallBackToHet(rec)) {
    const bool spilling = SpillJob(rec.spec);
    if (!spilling) {
      // Graceful degradation: the mesh between these GPUs is sick, so stage
      // through host memory (HET) instead of streaming peer-to-peer.
      rec.het_fallback = true;
      if (auto* registry = metrics()) {
        registry
            ->GetCounter(obs::kSchedHetFallbacks, {},
                         "Jobs rerouted to the HET sorter because their P2P "
                         "mesh was degraded")
            .Inc();
      }
      if (auto* trace = platform_->trace()) {
        trace->AddInstant("sched:queue",
                          "job" + std::to_string(rec.id) +
                              " HET fallback (degraded mesh)",
                          Now());
      }
    } else if (auto* trace = platform_->trace()) {
      trace->AddInstant("sched:queue",
                        "job" + std::to_string(rec.id) +
                            " out-of-core (NVMe spill)",
                        Now());
    }
    core::HetOptions het_options;
    het_options.gpu_set = rec.gpu_set;
    het_options.gpu_memory_budget = PerGpuBytes(rec.spec);
    if (spilling) het_options.spill = core::SpillMode::kAuto;
    ConfigureExec(rec, &het_options);
    co_await core::HetSortTask<T>(platform_, &data, het_options, &out);
  } else {
    core::SortOptions sort_options;
    sort_options.gpu_set = rec.gpu_set;
    ConfigureExec(rec, &sort_options);
    co_await core::P2pSortTask<T>(platform_, &data, sort_options, &out);
  }
  if (!out.ok()) {
    rec.state = JobState::kFailed;
    rec.error = out.status().ToString();
    rec.error_code = out.status().code();
    co_return;
  }
  if (options_.verify_sorted &&
      !std::is_sorted(data.vector().begin(), data.vector().end())) {
    rec.state = JobState::kFailed;
    rec.error = "output not sorted";
    rec.error_code = StatusCode::kInternal;
    co_return;
  }
  rec.result_hash = HashSortedOutput(data.vector());
  rec.sort = std::move(*out);
  rec.state = JobState::kDone;
  rec.error.clear();
  rec.error_code = StatusCode::kOk;
}

sim::Task<void> SortServer::ExecuteStringJob(JobRecord& rec) {
  DataGenOptions gen;
  gen.distribution = rec.spec.distribution;
  gen.seed = rec.spec.seed;
  const double scale = platform_->scale();
  const std::int64_t actual = static_cast<std::int64_t>(
      std::max(1.0, std::ceil(rec.spec.logical_keys / scale)));
  const int numa =
      options_.cluster != nullptr && !rec.gpu_set.empty()
          ? options_.cluster->FirstSocket(
                options_.cluster->NodeOfGpu(rec.gpu_set.front()))
          : 0;
  // The arena outlives the sort: every StringKey in flight points into it.
  core::StringArena arena;
  vgpu::HostBuffer<core::StringKey> data(
      core::GenerateStringKeys(actual, gen, &arena), numa, /*pinned=*/true);

  Result<core::SortStats> out = Status::Internal("sort task never ran");
  if (SpillJob(rec.spec) || ShouldFallBackToHet(rec)) {
    const bool spilling = SpillJob(rec.spec);
    if (!spilling) {
      rec.het_fallback = true;
      if (auto* registry = metrics()) {
        registry
            ->GetCounter(obs::kSchedHetFallbacks, {},
                         "Jobs rerouted to the HET sorter because their P2P "
                         "mesh was degraded")
            .Inc();
      }
    }
    core::HetOptions het_options;
    het_options.gpu_set = rec.gpu_set;
    het_options.gpu_memory_budget = PerGpuBytes(rec.spec);
    if (spilling) het_options.spill = core::SpillMode::kAuto;
    ConfigureExec(rec, &het_options);
    co_await core::HetSortTask<core::StringKey>(platform_, &data, het_options,
                                                &out);
  } else {
    core::SortOptions sort_options;
    sort_options.gpu_set = rec.gpu_set;
    ConfigureExec(rec, &sort_options);
    co_await core::P2pSortTask<core::StringKey>(platform_, &data, sort_options,
                                                &out);
  }
  if (!out.ok()) {
    rec.state = JobState::kFailed;
    rec.error = out.status().ToString();
    rec.error_code = out.status().code();
    co_return;
  }
  if (options_.verify_sorted &&
      !std::is_sorted(data.vector().begin(), data.vector().end())) {
    rec.state = JobState::kFailed;
    rec.error = "output not sorted";
    rec.error_code = StatusCode::kInternal;
    co_return;
  }
  rec.result_hash = HashSortedOutput(data.vector());
  rec.sort = std::move(*out);
  rec.state = JobState::kDone;
  rec.error.clear();
  rec.error_code = StatusCode::kOk;
}

sim::Task<void> SortServer::ExecuteRecordJob(JobRecord& rec) {
  DataGenOptions gen;
  gen.distribution = rec.spec.distribution;
  gen.seed = rec.spec.seed;
  const double scale = platform_->scale();
  const std::int64_t actual = static_cast<std::int64_t>(
      std::max(1.0, std::ceil(rec.spec.logical_keys / scale)));
  const int numa =
      options_.cluster != nullptr && !rec.gpu_set.empty()
          ? options_.cluster->FirstSocket(
                options_.cluster->NodeOfGpu(rec.gpu_set.front()))
          : 0;
  vgpu::HostBuffer<core::SortRecord> data(core::GenerateRecords(actual, gen),
                                          numa, /*pinned=*/true);

  Result<core::SortStats> out = Status::Internal("sort task never ran");
  if (SpillJob(rec.spec) || ShouldFallBackToHet(rec)) {
    const bool spilling = SpillJob(rec.spec);
    if (!spilling) {
      rec.het_fallback = true;
      if (auto* registry = metrics()) {
        registry
            ->GetCounter(obs::kSchedHetFallbacks, {},
                         "Jobs rerouted to the HET sorter because their P2P "
                         "mesh was degraded")
            .Inc();
      }
    }
    core::HetOptions het_options;
    het_options.gpu_set = rec.gpu_set;
    het_options.gpu_memory_budget = PerGpuBytes(rec.spec);
    if (spilling) het_options.spill = core::SpillMode::kAuto;
    ConfigureExec(rec, &het_options);
    co_await core::HetSortTask<core::SortRecord>(platform_, &data, het_options,
                                                 &out);
  } else {
    core::SortOptions sort_options;
    sort_options.gpu_set = rec.gpu_set;
    ConfigureExec(rec, &sort_options);
    co_await core::P2pSortTask<core::SortRecord>(platform_, &data,
                                                 sort_options, &out);
  }
  if (!out.ok()) {
    rec.state = JobState::kFailed;
    rec.error = out.status().ToString();
    rec.error_code = out.status().code();
    co_return;
  }
  if (options_.verify_sorted &&
      !std::is_sorted(data.vector().begin(), data.vector().end())) {
    rec.state = JobState::kFailed;
    rec.error = "output not sorted";
    rec.error_code = StatusCode::kInternal;
    co_return;
  }
  rec.result_hash = HashSortedOutput(data.vector());
  rec.sort = std::move(*out);
  rec.state = JobState::kDone;
  rec.error.clear();
  rec.error_code = StatusCode::kOk;
}

template <typename T>
sim::Task<void> SortServer::ExecuteBatchTyped(
    std::vector<std::int64_t>& batch, JobRecord& leader) {
  const double scale = platform_->scale();
  const int numa =
      options_.cluster != nullptr && !leader.gpu_set.empty()
          ? options_.cluster->FirstSocket(
                options_.cluster->NodeOfGpu(leader.gpu_set.front()))
          : 0;
  // Generate every member's dataset (its own seed / distribution / size)
  // into one concatenated buffer, remembering each member's multiset as
  // value counts — that's all the split needs, because sorting is exactly
  // "arrange the multiset in order".
  std::vector<T> all;
  std::vector<std::unordered_map<T, std::int64_t>> counts(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const JobSpec& spec =
        slots_[static_cast<std::size_t>(batch[i])]->record.spec;
    DataGenOptions gen;
    gen.distribution = spec.distribution;
    gen.seed = spec.seed;
    const std::int64_t actual = static_cast<std::int64_t>(
        std::max(1.0, std::ceil(spec.logical_keys / scale)));
    std::vector<T> keys = GenerateKeys<T>(actual, gen);
    counts[i].reserve(keys.size());
    for (const T& v : keys) ++counts[i][v];
    all.insert(all.end(), keys.begin(), keys.end());
  }
  vgpu::HostBuffer<T> data(std::move(all), numa, /*pinned=*/true);

  Result<core::SortStats> out = Status::Internal("sort task never ran");
  if (ShouldFallBackToHet(leader)) {
    for (std::int64_t id : batch) {
      slots_[static_cast<std::size_t>(id)]->record.het_fallback = true;
    }
    if (auto* registry = metrics()) {
      registry
          ->GetCounter(obs::kSchedHetFallbacks, {},
                       "Jobs rerouted to the HET sorter because their P2P "
                       "mesh was degraded")
          .Add(static_cast<double>(batch.size()));
    }
    core::HetOptions het_options;
    het_options.gpu_set = leader.gpu_set;
    het_options.gpu_memory_budget = PerGpuBytes(leader.spec);
    ConfigureExec(leader, &het_options);
    co_await core::HetSortTask<T>(platform_, &data, het_options, &out);
  } else {
    core::SortOptions sort_options;
    sort_options.gpu_set = leader.gpu_set;
    ConfigureExec(leader, &sort_options);
    co_await core::P2pSortTask<T>(platform_, &data, sort_options, &out);
  }

  auto fail_all = [&](const std::string& error, StatusCode code) {
    for (std::int64_t id : batch) {
      JobRecord& rec = slots_[static_cast<std::size_t>(id)]->record;
      rec.state = JobState::kFailed;
      rec.error = error;
      rec.error_code = code;
    }
  };
  if (!out.ok()) {
    // The pass is all-or-nothing: every member shares the fault (and each
    // retries independently, solo, through the normal path).
    fail_all(out.status().ToString(), out.status().code());
    co_return;
  }
  if (options_.verify_sorted &&
      !std::is_sorted(data.vector().begin(), data.vector().end())) {
    fail_all("output not sorted", StatusCode::kInternal);
    co_return;
  }

  // Split the sorted union back into per-member outputs by walking
  // equal-value runs: each member takes its multiset count of the run's
  // value. A member's slice is then bitwise what a solo sort of its own
  // dataset would produce, which the result hashes certify.
  std::vector<std::uint64_t> hashes(batch.size(), kFnvOffset);
  const std::vector<T>& sorted = data.vector();
  std::size_t pos = 0;
  bool split_ok = true;
  while (pos < sorted.size()) {
    std::size_t end = pos + 1;
    while (end < sorted.size() && !(sorted[pos] < sorted[end])) ++end;
    std::int64_t handed = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto hit = counts[i].find(sorted[pos]);
      if (hit == counts[i].end()) continue;
      hashes[i] = MixValue(hashes[i], sorted[pos], hit->second);
      handed += hit->second;
      counts[i].erase(hit);
    }
    if (handed != static_cast<std::int64_t>(end - pos)) {
      split_ok = false;
      break;
    }
    pos = end;
  }
  if (!split_ok) {
    fail_all("batch split mismatch: sorted union does not partition into "
             "member multisets",
             StatusCode::kInternal);
    co_return;
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    JobRecord& rec = slots_[static_cast<std::size_t>(batch[i])]->record;
    rec.sort = *out;
    // The shared pass's timing, attributed to each member; keys stay the
    // member's own so per-job throughput math is honest.
    rec.sort.keys = static_cast<std::int64_t>(rec.spec.logical_keys);
    rec.result_hash = hashes[i];
    rec.state = JobState::kDone;
    rec.error.clear();
    rec.error_code = StatusCode::kOk;
  }
}

sim::Task<void> SortServer::ClientLoop(int client_index,
                                       ClosedLoopOptions options,
                                       std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int j = 0; j < options.jobs_per_client; ++j) {
    JobSpec spec = SampleJob(options.mix, rng);
    spec.tenant = "client" + std::to_string(client_index);
    spec.arrival_seconds = Now();
    const std::int64_t id = AddSlot(std::move(spec));
    // Triggers are lazy (open-loop jobs never need one); a closed-loop
    // client allocates its job's before arrival so it can await completion.
    auto done = std::make_shared<sim::Trigger>();
    slots_[static_cast<std::size_t>(id)]->done = done;
    OnArrival(id);
    co_await done->Wait();
    if (options.think_seconds > 0) {
      co_await sim::Delay{platform_->simulator(), options.think_seconds};
    }
  }
  --live_clients_;
  MaybeFinish();
}

sim::Task<void> SortServer::UtilizationSampler() {
  const auto links = platform_->topology().LinkResources();
  auto& network = platform_->network();
  std::vector<double> last_traffic(network.num_resources(), 0);
  double last_time = Now();
  // With both a registry and a trace attached, mirror registry counter
  // rates into the trace as counter tracks (obs/trace_bridge.h).
  std::unique_ptr<obs::TraceCounterBridge> bridge;
  if (metrics() != nullptr && platform_->trace() != nullptr) {
    bridge = std::make_unique<obs::TraceCounterBridge>(metrics(),
                                                       platform_->trace());
    bridge->Sample(last_time);  // prime baselines at service start
  }
  while (!stop_sampler_) {
    co_await sim::Delay{platform_->simulator(),
                        options_.utilization_sample_seconds};
    const double now = Now();
    const double dt = now - last_time;
    if (dt <= 0) continue;
    network.SettleTraffic();
    if (auto* trace = platform_->trace()) {
      for (const auto& link : links) {
        const double traffic = network.ResourceTraffic(link.resource);
        const double util =
            (traffic - last_traffic[link.resource]) /
            (network.capacity(link.resource) * dt);
        trace->AddCounter("link-util", link.name, now, util);
        last_traffic[link.resource] = traffic;
      }
    }
    if (auto* registry = metrics()) {
      obs::SyncFlowMetrics(&network, platform_->topology(), now, registry);
    }
    if (bridge) bridge->Sample(now);
    last_time = now;
  }
}

sim::Task<void> SortServer::HealthMonitor() {
  const int n = platform_->num_devices();
  while (!stop_sampler_) {
    co_await sim::Delay{platform_->simulator(),
                        options_.recovery.health_check_seconds};
    if (stop_sampler_) break;
    const int healthy = HealthyGpus();
    if (auto* registry = metrics()) {
      registry
          ->GetGauge(obs::kSchedHealthyGpus, {},
                     "GPUs currently healthy (not failed)")
          .Set(healthy);
      registry
          ->GetGauge(obs::kSchedAvailability, {},
                     "Healthy fraction of the GPU fleet")
          .Set(n > 0 ? static_cast<double>(healthy) / n : 0);
    }
    // Permanently fail queued jobs that device loss made unsatisfiable;
    // left alone they would wait forever and wedge the service.
    std::vector<std::int64_t> doomed;
    for (std::int64_t id : queue_.DispatchOrder()) {
      const JobRecord& rec = slots_[static_cast<std::size_t>(id)]->record;
      bool dead_pin = false;
      for (int g : rec.spec.pinned_gpus) {
        if (platform_->device(g).failed()) dead_pin = true;
      }
      if (rec.spec.gpus > healthy || dead_pin) doomed.push_back(id);
    }
    for (std::int64_t id : doomed) {
      JobSlot& slot = *slots_[static_cast<std::size_t>(id)];
      JobRecord& rec = slot.record;
      queue_.Remove(id);
      rec.state = JobState::kFailed;
      rec.error = "unsatisfiable after device loss: needs " +
                  std::to_string(rec.spec.gpus) + " GPUs, " +
                  std::to_string(healthy) + " healthy";
      rec.error_code = StatusCode::kUnavailable;
      if (rec.attempts == 0) rec.start = Now();
      rec.finish = Now();
      if (rec.first_failure < 0) rec.first_failure = Now();
      FinishTerminal(slot);
    }
    if (!doomed.empty()) {
      PublishQueueGauges();
      TryDispatch();
    }
  }
}

sim::Task<void> SortServer::ServiceRoot() {
  service_start_ = Now();
  platform_->network().ResetTraffic();

  auto& simulator = platform_->simulator();
  for (const auto& slot : slots_) {
    const std::int64_t id = slot->record.id;
    simulator.ScheduleAt(service_start_ + slot->record.spec.arrival_seconds,
                         [this, id] { OnArrival(id); });
  }
  int client_index = 0;
  for (const ClosedLoopOptions& loop : closed_loops_) {
    SplitMix64 seeder(loop.seed);
    for (int c = 0; c < loop.clients; ++c) {
      ++live_clients_;
      sim::Spawn(ClientLoop(client_index++, loop, seeder.Next()));
    }
  }
  if (options_.utilization_sample_seconds > 0 &&
      (platform_->trace() != nullptr || metrics() != nullptr)) {
    sim::Spawn(UtilizationSampler());
  }
  if (options_.recovery.health_check_seconds > 0) {
    sim::Spawn(HealthMonitor());
  }
  PublishQueueGauges();
  MaybeFinish();  // an empty service finishes immediately
  co_await all_done_.Wait();
  service_end_ = Now();
  stop_sampler_ = true;
  if (auto* registry = metrics()) {
    obs::SyncFlowMetrics(&platform_->network(), platform_->topology(),
                         service_end_, registry);
  }
}

Result<ServiceReport> SortServer::Run() {
  if (ran_) return Status::FailedPrecondition("SortServer::Run called twice");
  ran_ = true;
  MGS_RETURN_IF_ERROR(platform_->Run(ServiceRoot()).status());
  return BuildReport();
}

ServiceReport SortServer::BuildReport() const {
  ServiceReport report;
  report.completion_order = completion_order_;
  report.coalesced_batches = coalesced_batches_;
  report.coalesced_jobs = coalesced_jobs_;
  report.dedup_hits = dedup_hits_;
  if (options_.report_jobs) report.jobs.reserve(slots_.size());

  std::vector<double> latencies, queue_delays, service_times;
  double first_arrival = 0, last_finish = 0;
  bool any_terminal = false;
  double completed_keys = 0;
  int within_slo = 0;
  double recovery_sum = 0;
  for (const auto& slot : slots_) {
    const JobRecord& rec = slot->record;
    if (options_.report_jobs) report.jobs.push_back(rec);
    report.total_retries += rec.retries;
    if (rec.het_fallback) ++report.het_fallbacks;
    switch (rec.state) {
      case JobState::kDone:
        ++report.completed;
        if (rec.recovered()) {
          ++report.recovered;
          recovery_sum += rec.recovery_seconds();
        }
        latencies.push_back(rec.latency());
        queue_delays.push_back(rec.queue_delay());
        service_times.push_back(rec.service_time());
        completed_keys += rec.spec.logical_keys;
        if (options_.slo_seconds > 0 &&
            rec.latency() <= options_.slo_seconds) {
          ++within_slo;
        }
        break;
      case JobState::kFailed:
        ++report.failed;
        break;
      case JobState::kRejected:
        ++report.rejected;
        break;
      default:
        break;
    }
    if (rec.state == JobState::kDone || rec.state == JobState::kFailed ||
        rec.state == JobState::kRejected) {
      if (!any_terminal || rec.arrival < first_arrival) {
        first_arrival = any_terminal ? std::min(first_arrival, rec.arrival)
                                     : rec.arrival;
      }
      last_finish = std::max(last_finish, rec.finish);
      any_terminal = true;
    }
  }
  if (any_terminal) report.makespan = last_finish - first_arrival;
  if (report.recovered > 0) {
    report.mttr_seconds = recovery_sum / report.recovered;
  }
  report.latency = Summarize(latencies);
  report.queue_delay = Summarize(queue_delays);
  report.service_time = Summarize(service_times);
  if (report.makespan > 0) {
    report.aggregate_gkeys_per_sec = completed_keys / report.makespan / 1e9;
  }
  if (options_.slo_seconds > 0 && report.completed > 0) {
    report.slo_attainment =
        static_cast<double>(within_slo) / report.completed;
  }

  // Progress accrues lazily (at flow start/finish); settle up to Now() so
  // the utilization window [service_start_, Now()] counts every delivered
  // byte, including flows still in flight when the report is generated.
  platform_->network().SettleTraffic();
  const auto utils = platform_->network().Utilizations(service_start_);
  if (!utils.empty()) {
    for (const auto& link : platform_->topology().LinkResources()) {
      report.links.push_back(
          LinkLoad{link.name, utils[link.resource].second});
    }
    std::sort(report.links.begin(), report.links.end(),
              [](const LinkLoad& a, const LinkLoad& b) {
                if (a.utilization != b.utilization) {
                  return a.utilization > b.utilization;
                }
                return a.name < b.name;
              });
  }
  return report;
}

}  // namespace mgs::sched
