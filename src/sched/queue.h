// The pending-job queue with pluggable dispatch policies.
//
// The queue does not own JobRecords; it orders job ids by policy and the
// server walks that order looking for the first job the placer can run.
// FIFO is non-bypassing — arrival order is the contract, so a job that
// cannot be placed blocks everything behind it (head-of-line blocking is a
// *feature* to measure, not a bug). SJF and priority allow backfilling: a
// small job may run while a bigger/earlier one waits for more GPUs.

#ifndef MGS_SCHED_QUEUE_H_
#define MGS_SCHED_QUEUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mgs::sched {

enum class QueuePolicy {
  kFifo,      // arrival order, non-bypassing
  kSjfBytes,  // shortest job first by estimated logical bytes
  kPriority,  // higher JobSpec::priority first, FIFO within a level
};

const char* QueuePolicyToString(QueuePolicy policy);
Result<QueuePolicy> QueuePolicyFromString(const std::string& name);

class JobQueue {
 public:
  explicit JobQueue(QueuePolicy policy) : policy_(policy) {}

  void Push(std::int64_t id, double estimated_bytes, int priority);
  void Remove(std::int64_t id);

  /// Queued job ids in dispatch-preference order (deterministic: ties
  /// break by arrival sequence).
  std::vector<std::int64_t> DispatchOrder() const;

  /// Whether the dispatcher may skip an unplaceable job and try the next
  /// one in DispatchOrder (false only for FIFO).
  bool allows_bypass() const { return policy_ != QueuePolicy::kFifo; }

  QueuePolicy policy() const { return policy_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    std::int64_t id;
    double bytes;
    int priority;
    std::uint64_t seq;
  };

  QueuePolicy policy_;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_QUEUE_H_
