// The pending-job queue with pluggable dispatch policies.
//
// The queue does not own JobRecords; it orders job ids by policy and the
// server walks that order looking for the first job the placer can run.
// FIFO is non-bypassing — arrival order is the contract, so a job that
// cannot be placed blocks everything behind it (head-of-line blocking is a
// *feature* to measure, not a bug). SJF and priority allow backfilling: a
// small job may run while a bigger/earlier one waits for more GPUs.
//
// Internally the queue is an indexed binary heap over the policy's total
// order (ties always break by arrival sequence, so the order is strict and
// deterministic): Push / PopBest / Remove are O(log Q) and PeekBest is
// O(1), which is what lets the dispatcher handle million-job traces —
// the old implementation copy-and-sorted the whole queue on every dispatch
// event (O(Q log Q) per event). DispatchOrder() keeps the full sorted
// listing for cold paths (health scans, tests).

#ifndef MGS_SCHED_QUEUE_H_
#define MGS_SCHED_QUEUE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace mgs::sched {

enum class QueuePolicy {
  kFifo,      // arrival order, non-bypassing
  kSjfBytes,  // shortest job first by estimated logical bytes
  kPriority,  // higher JobSpec::priority first, FIFO within a level
};

const char* QueuePolicyToString(QueuePolicy policy);
Result<QueuePolicy> QueuePolicyFromString(const std::string& name);

class JobQueue {
 public:
  /// A queued job's ordering key. `seq` is assigned at Push and defines the
  /// deterministic tie-break (and FIFO order) for the job's whole stay in
  /// the queue — Restore() re-inserts with the original seq, so a bypass
  /// scan that pops, fails to place, and restores does not reorder anyone.
  struct Entry {
    std::int64_t id;
    double bytes;
    int priority;
    std::uint64_t seq;
  };

  explicit JobQueue(QueuePolicy policy) : policy_(policy) {}

  /// `id` must not already be queued.
  void Push(std::int64_t id, double estimated_bytes, int priority);
  /// No-op if `id` is not queued.
  void Remove(std::int64_t id);
  bool Contains(std::int64_t id) const { return index_.count(id) > 0; }

  /// The next job in dispatch-preference order. Queue must be non-empty.
  std::int64_t PeekBest() const { return heap_.front().id; }
  /// Removes and returns the best entry (for Restore after a failed
  /// placement attempt). Queue must be non-empty.
  Entry PopBest();
  /// Re-inserts an entry previously returned by PopBest, keeping its
  /// original arrival sequence.
  void Restore(const Entry& entry);

  /// Queued job ids in dispatch-preference order (deterministic: ties
  /// break by arrival sequence). O(Q log Q) — cold paths only.
  std::vector<std::int64_t> DispatchOrder() const;
  /// Queued job ids in unspecified (but deterministic) order, O(Q).
  std::vector<std::int64_t> QueuedIds() const;

  /// Whether the dispatcher may skip an unplaceable job and try the next
  /// one in DispatchOrder (false only for FIFO).
  bool allows_bypass() const { return policy_ != QueuePolicy::kFifo; }

  QueuePolicy policy() const { return policy_; }
  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

 private:
  /// Strict total order: does `a` dispatch before `b` under the policy?
  bool Before(const Entry& a, const Entry& b) const;
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  /// Writes `entry` into heap slot `i` and updates the id index.
  void Place(std::size_t i, Entry entry);
  void Insert(Entry entry);

  QueuePolicy policy_;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> heap_;
  std::unordered_map<std::int64_t, std::size_t> index_;  // id -> heap slot
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_QUEUE_H_
