#include "sched/queue.h"

#include <algorithm>

namespace mgs::sched {

const char* QueuePolicyToString(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return "fifo";
    case QueuePolicy::kSjfBytes:
      return "sjf";
    case QueuePolicy::kPriority:
      return "priority";
  }
  return "?";
}

Result<QueuePolicy> QueuePolicyFromString(const std::string& name) {
  if (name == "fifo") return QueuePolicy::kFifo;
  if (name == "sjf") return QueuePolicy::kSjfBytes;
  if (name == "priority") return QueuePolicy::kPriority;
  return Status::Invalid("unknown queue policy: " + name);
}

void JobQueue::Push(std::int64_t id, double estimated_bytes, int priority) {
  entries_.push_back(Entry{id, estimated_bytes, priority, next_seq_++});
}

void JobQueue::Remove(std::int64_t id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

std::vector<std::int64_t> JobQueue::DispatchOrder() const {
  std::vector<Entry> order = entries_;
  switch (policy_) {
    case QueuePolicy::kFifo:
      std::sort(order.begin(), order.end(),
                [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
      break;
    case QueuePolicy::kSjfBytes:
      std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
        if (a.bytes != b.bytes) return a.bytes < b.bytes;
        return a.seq < b.seq;
      });
      break;
    case QueuePolicy::kPriority:
      std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
        if (a.priority != b.priority) return a.priority > b.priority;
        return a.seq < b.seq;
      });
      break;
  }
  std::vector<std::int64_t> ids;
  ids.reserve(order.size());
  for (const auto& e : order) ids.push_back(e.id);
  return ids;
}

}  // namespace mgs::sched
