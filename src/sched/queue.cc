#include "sched/queue.h"

#include <algorithm>

namespace mgs::sched {

const char* QueuePolicyToString(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return "fifo";
    case QueuePolicy::kSjfBytes:
      return "sjf";
    case QueuePolicy::kPriority:
      return "priority";
  }
  return "?";
}

Result<QueuePolicy> QueuePolicyFromString(const std::string& name) {
  if (name == "fifo") return QueuePolicy::kFifo;
  if (name == "sjf") return QueuePolicy::kSjfBytes;
  if (name == "priority") return QueuePolicy::kPriority;
  return Status::Invalid("unknown queue policy: " + name);
}

bool JobQueue::Before(const Entry& a, const Entry& b) const {
  switch (policy_) {
    case QueuePolicy::kFifo:
      break;
    case QueuePolicy::kSjfBytes:
      if (a.bytes != b.bytes) return a.bytes < b.bytes;
      break;
    case QueuePolicy::kPriority:
      if (a.priority != b.priority) return a.priority > b.priority;
      break;
  }
  return a.seq < b.seq;
}

void JobQueue::Place(std::size_t i, Entry entry) {
  index_[entry.id] = i;
  heap_[i] = entry;
}

void JobQueue::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    Entry tmp = heap_[parent];
    Place(parent, heap_[i]);
    Place(i, tmp);
    i = parent;
  }
}

void JobQueue::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && Before(heap_[l], heap_[best])) best = l;
    if (r < n && Before(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    Entry tmp = heap_[best];
    Place(best, heap_[i]);
    Place(i, tmp);
    i = best;
  }
}

void JobQueue::Insert(Entry entry) {
  heap_.push_back(entry);
  index_[entry.id] = heap_.size() - 1;
  SiftUp(heap_.size() - 1);
}

void JobQueue::Push(std::int64_t id, double estimated_bytes, int priority) {
  Insert(Entry{id, estimated_bytes, priority, next_seq_++});
}

void JobQueue::Remove(std::int64_t id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  const std::size_t slot = it->second;
  index_.erase(it);
  const std::size_t last = heap_.size() - 1;
  if (slot != last) {
    Place(slot, heap_[last]);
    heap_.pop_back();
    // The moved entry may violate either direction relative to its new
    // neighborhood; at most one of these does any work.
    SiftUp(slot);
    SiftDown(slot);
  } else {
    heap_.pop_back();
  }
}

JobQueue::Entry JobQueue::PopBest() {
  Entry best = heap_.front();
  Remove(best.id);
  return best;
}

void JobQueue::Restore(const Entry& entry) { Insert(entry); }

std::vector<std::int64_t> JobQueue::DispatchOrder() const {
  std::vector<Entry> order = heap_;
  std::sort(order.begin(), order.end(),
            [this](const Entry& a, const Entry& b) { return Before(a, b); });
  std::vector<std::int64_t> ids;
  ids.reserve(order.size());
  for (const auto& e : order) ids.push_back(e.id);
  return ids;
}

std::vector<std::int64_t> JobQueue::QueuedIds() const {
  std::vector<std::int64_t> ids;
  ids.reserve(heap_.size());
  for (const auto& e : heap_) ids.push_back(e.id);
  return ids;
}

}  // namespace mgs::sched
