// Admission control: refuse work the service can never run (malformed or
// oversized jobs) or should not queue right now (backlog and memory
// pressure), before it costs anything.
//
// Decisions gate on the per-device memory accounting of vgpu::Platform:
// capacity for feasibility ("could this job *ever* be placed?"), and
// used + reserved bytes for pressure shedding ("is the fleet already
// committed past the shed threshold?").

#ifndef MGS_SCHED_ADMISSION_H_
#define MGS_SCHED_ADMISSION_H_

#include "sched/job.h"
#include "util/status.h"
#include "vgpu/platform.h"

namespace mgs::sched {

struct AdmissionOptions {
  /// Reject arrivals once this many jobs are already queued (0 = no limit).
  int max_queue_depth = 256;
  /// A job may claim at most this fraction of the fleet's total GPU memory
  /// (caps whales that would monopolize the service).
  double max_job_memory_fraction = 1.0;
  /// > 0: shed new arrivals while mean device memory pressure
  /// (used + reserved over capacity) is at or above this threshold.
  double shed_at_pressure = 0;
};

class AdmissionController {
 public:
  AdmissionController(vgpu::Platform* platform, AdmissionOptions options)
      : platform_(platform), options_(options) {}

  /// OK to enqueue, or the rejection reason. `per_gpu_bytes` is the job's
  /// device-memory need per GPU; `queue_depth` the current backlog.
  Status Admit(const JobSpec& spec, double per_gpu_bytes,
               int queue_depth) const;

  /// Mean memory pressure across *healthy* devices (the shedding signal).
  /// 1.0 when every device has failed (a dead fleet is fully committed);
  /// 0 on an empty platform.
  double FleetPressure() const;

 private:
  vgpu::Platform* platform_;
  AdmissionOptions options_;
};

}  // namespace mgs::sched

#endif  // MGS_SCHED_ADMISSION_H_
