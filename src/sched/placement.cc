#include "sched/placement.h"

#include <algorithm>

#include "core/gpu_set.h"

namespace mgs::sched {

std::vector<int> Placer::CandidateGpus(
    double per_gpu_bytes, const std::vector<int>& running_per_gpu) const {
  std::vector<int> candidates;
  for (int g = 0; g < platform_->num_devices(); ++g) {
    if (platform_->device(g).failed()) continue;  // fail-stop loss
    const bool busy = running_per_gpu[static_cast<std::size_t>(g)] > 0;
    if (busy && !allow_gpu_sharing_) continue;
    if (platform_->device(g).memory_available() < per_gpu_bytes) continue;
    candidates.push_back(g);
  }
  return candidates;
}

Result<std::optional<std::vector<int>>> Placer::Place(
    const PlacementRequest& request,
    const std::vector<int>& running_per_gpu) const {
  if (request.gpus < 1 || request.gpus > platform_->num_devices()) {
    return Status::Invalid("placement for " + std::to_string(request.gpus) +
                           " GPUs on a " +
                           std::to_string(platform_->num_devices()) +
                           "-GPU platform");
  }
  std::vector<int> candidates =
      CandidateGpus(request.per_gpu_bytes, running_per_gpu);

  if (!request.pinned.empty()) {
    for (int id : request.pinned) {
      if (std::find(candidates.begin(), candidates.end(), id) ==
          candidates.end()) {
        return std::optional<std::vector<int>>();  // pinned GPU not ready
      }
    }
    return std::optional<std::vector<int>>(request.pinned);
  }

  int host_numa = 0;   // memory node the job's HtoD flows stage from
  int confined = -1;   // cluster node the job is confined to
  if (cluster_ != nullptr && cluster_->nodes() > 1) {
    // On a cluster, a single-node job never straddles the fabric: its P2P
    // merge tree would ride NICs and (possibly oversubscribed) spine
    // uplinks and die with every fabric fault. Confine the candidates to
    // the least-loaded node that can host the whole job; multi-node work
    // goes through PlaceNodes instead.
    if (request.gpus > cluster_->gpus_per_node()) {
      return Status::Invalid(
          "job wants " + std::to_string(request.gpus) + " GPUs but a node "
          "has " + std::to_string(cluster_->gpus_per_node()) +
          "; span nodes with JobSpec::nodes instead");
    }
    std::vector<bool> usable(
        static_cast<std::size_t>(platform_->num_devices()), false);
    for (int g : candidates) usable[static_cast<std::size_t>(g)] = true;
    std::vector<int> best;
    for (int node = 0; node < cluster_->nodes(); ++node) {
      std::vector<int> in_node;
      for (int g : cluster_->NodeGpus(node)) {
        if (usable[static_cast<std::size_t>(g)]) in_node.push_back(g);
      }
      if (static_cast<int>(in_node.size()) >= request.gpus &&
          in_node.size() > best.size()) {
        best = std::move(in_node);  // most free GPUs = least interference
        confined = node;
      }
    }
    candidates = std::move(best);
    // Score from the node's own socket: staging from MEM0 would route the
    // scoring paths across the fabric, and a downed fabric link would make
    // an intra-node placement look unroutable.
    if (confined >= 0) host_numa = cluster_->FirstSocket(confined);
  }
  if (static_cast<int>(candidates.size()) < request.gpus) {
    return std::optional<std::vector<int>>();
  }
  std::vector<int> busy;
  for (int g = 0; g < platform_->num_devices(); ++g) {
    if (running_per_gpu[static_cast<std::size_t>(g)] == 0) continue;
    // Confined placements only contend with their own node's tenants; a
    // busy GPU elsewhere shares no intra-node link (and its scoring path
    // could cross downed fabric links).
    if (confined >= 0 && cluster_->NodeOfGpu(g) != confined) continue;
    busy.push_back(g);
  }
  MGS_ASSIGN_OR_RETURN(
      auto set, core::ChooseGpuSetConstrained(platform_->topology(),
                                              request.gpus,
                                              /*for_p2p_merge=*/true,
                                              candidates, busy, host_numa));
  return std::optional<std::vector<int>>(std::move(set));
}

Result<std::optional<std::vector<int>>> Placer::PlaceNodes(
    const net::ClusterInfo& cluster, int nodes, double per_gpu_bytes,
    const std::vector<int>& running_per_gpu) const {
  if (nodes < 1 || nodes > cluster.nodes()) {
    return Status::Invalid("placement for " + std::to_string(nodes) +
                           " nodes on a " + std::to_string(cluster.nodes()) +
                           "-node cluster");
  }
  std::vector<bool> usable(
      static_cast<std::size_t>(platform_->num_devices()), false);
  for (int g : CandidateGpus(per_gpu_bytes, running_per_gpu)) {
    usable[static_cast<std::size_t>(g)] = true;
  }
  // A node is available only when every one of its GPUs can host the job:
  // distributed sorts occupy whole nodes.
  std::vector<std::vector<int>> by_rack(
      static_cast<std::size_t>(cluster.racks()));
  int available = 0;
  for (int node = 0; node < cluster.nodes(); ++node) {
    bool all_usable = true;
    for (int g : cluster.NodeGpus(node)) {
      all_usable = all_usable && usable[static_cast<std::size_t>(g)];
    }
    if (!all_usable) continue;
    by_rack[static_cast<std::size_t>(cluster.RackOfNode(node))].push_back(
        node);
    ++available;
  }
  if (available < nodes) return std::optional<std::vector<int>>();

  // Fewest racks first: fill from the rack with the most available nodes
  // (ties: lowest rack id), nodes in ascending id within each rack.
  std::vector<int> rack_order(by_rack.size());
  for (std::size_t r = 0; r < by_rack.size(); ++r) {
    rack_order[r] = static_cast<int>(r);
  }
  std::stable_sort(rack_order.begin(), rack_order.end(), [&](int a, int b) {
    return by_rack[static_cast<std::size_t>(a)].size() >
           by_rack[static_cast<std::size_t>(b)].size();
  });
  std::vector<int> chosen;
  for (int r : rack_order) {
    for (int node : by_rack[static_cast<std::size_t>(r)]) {
      if (static_cast<int>(chosen.size()) == nodes) break;
      chosen.push_back(node);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return std::optional<std::vector<int>>(std::move(chosen));
}

}  // namespace mgs::sched
