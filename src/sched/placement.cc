#include "sched/placement.h"

#include <algorithm>

#include "core/gpu_set.h"

namespace mgs::sched {

std::vector<int> Placer::CandidateGpus(
    double per_gpu_bytes, const std::vector<int>& running_per_gpu) const {
  std::vector<int> candidates;
  for (int g = 0; g < platform_->num_devices(); ++g) {
    if (platform_->device(g).failed()) continue;  // fail-stop loss
    const bool busy = running_per_gpu[static_cast<std::size_t>(g)] > 0;
    if (busy && !allow_gpu_sharing_) continue;
    if (platform_->device(g).memory_available() < per_gpu_bytes) continue;
    candidates.push_back(g);
  }
  return candidates;
}

Result<std::optional<std::vector<int>>> Placer::Place(
    const PlacementRequest& request,
    const std::vector<int>& running_per_gpu) const {
  if (request.gpus < 1 || request.gpus > platform_->num_devices()) {
    return Status::Invalid("placement for " + std::to_string(request.gpus) +
                           " GPUs on a " +
                           std::to_string(platform_->num_devices()) +
                           "-GPU platform");
  }
  const std::vector<int> candidates =
      CandidateGpus(request.per_gpu_bytes, running_per_gpu);

  if (!request.pinned.empty()) {
    for (int id : request.pinned) {
      if (std::find(candidates.begin(), candidates.end(), id) ==
          candidates.end()) {
        return std::optional<std::vector<int>>();  // pinned GPU not ready
      }
    }
    return std::optional<std::vector<int>>(request.pinned);
  }

  if (static_cast<int>(candidates.size()) < request.gpus) {
    return std::optional<std::vector<int>>();
  }
  std::vector<int> busy;
  for (int g = 0; g < platform_->num_devices(); ++g) {
    if (running_per_gpu[static_cast<std::size_t>(g)] > 0) busy.push_back(g);
  }
  MGS_ASSIGN_OR_RETURN(
      auto set, core::ChooseGpuSetConstrained(platform_->topology(),
                                              request.gpus,
                                              /*for_p2p_merge=*/true,
                                              candidates, busy));
  return std::optional<std::vector<int>>(std::move(set));
}

}  // namespace mgs::sched
