// Declarative fault scenarios: a seeded, time-ordered list of fault events
// replayed on the simulator clock by the injector (src/fault/injector.h).
//
// Two interchangeable surface syntaxes:
//
//  * an inline spec — clauses separated by ';' or newlines, '#' comments:
//
//        seed=7;
//        at=0.3 link=nvl12(GPU6-nvswitch) factor=0.2;   # degrade to 20%
//        at=0.8 link=nvl12(GPU6-nvswitch) factor=1;     # restore
//        at=1.0 link=nvl-x1 down; at=1.6 link=nvl-x1 up # flap
//        at=1.1 gpu=3 fail;                             # fail-stop loss
//        at=0 copy-error rate=0.002 until=2.0           # transient errors
//        at=2.0 nic=1 down; at=2.5 nic=1 up             # node 1 NIC loss
//        at=3.0 rack=0 down; at=3.4 rack=0 up           # rack outage
//
//    `nic=<i>` is sugar for `link=nic<i>` (a cluster node's NIC attach
//    links; src/net/cluster.h) and `rack=<r>` expands to two link events,
//    `leaf<r>` and `spine<r>` — the rack's leaf switch ports and its spine
//    uplink. Both round-trip through ToString as plain link events.
//
//  * a JSON document with the same vocabulary:
//
//        {"seed": 7, "events": [
//          {"at": 0.3, "link": "nvl12(GPU6-nvswitch)", "factor": 0.2},
//          {"at": 1.1, "gpu": 3, "fail": true},
//          {"at": 1.0, "link": "nvl-x1", "down": true},
//          {"at": 0.0, "copy_error_rate": 0.002, "until": 2.0}]}
//
// Link names accept both the bare spec name (applies to every link sharing
// it) and the qualified "name(NodeA-NodeB)" form (see topo::Topology).

#ifndef MGS_FAULT_SCENARIO_H_
#define MGS_FAULT_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mgs::fault {

enum class FaultKind {
  kGpuFail,        // fail-stop device loss
  kLinkBandwidth,  // degrade (factor < 1) or restore (factor == 1)
  kLinkDown,       // link outage: abort crossing flows, exclude from routing
  kLinkUp,         // bring a downed link back
  kCopyErrorRate,  // Bernoulli transient copy errors at delivery time
};

const char* FaultKindToString(FaultKind kind);

struct FaultEvent {
  double at = 0;  // simulator seconds (relative to arming the injector)
  FaultKind kind = FaultKind::kGpuFail;
  int gpu = -1;           // kGpuFail
  std::string link;       // kLinkBandwidth / kLinkDown / kLinkUp
  double factor = 1.0;    // kLinkBandwidth
  double rate = 0;        // kCopyErrorRate: P(error) per copy delivery
  double until = -1;      // kCopyErrorRate window end; < 0 = open-ended
};

struct FaultScenario {
  /// Sorted by `at` (stable: ties keep declaration order).
  std::vector<FaultEvent> events;
  /// Seeds the injector's Bernoulli draws for transient copy errors.
  std::uint64_t seed = 42;

  /// Parses the inline clause grammar above.
  static Result<FaultScenario> Parse(const std::string& spec);

  /// Parses the JSON document form.
  static Result<FaultScenario> ParseJson(const std::string& json);

  /// Resolves a CLI-facing value: "@path" (or a bare path naming a readable
  /// file) loads the file, anything else parses inline. File or inline
  /// content whose first character is '{' parses as JSON.
  static Result<FaultScenario> Load(const std::string& spec_or_path);

  /// Canonical inline-grammar rendering (round-trips through Parse).
  std::string ToString() const;
};

}  // namespace mgs::fault

#endif  // MGS_FAULT_SCENARIO_H_
