// Replays a FaultScenario against a live vgpu::Platform on the simulator
// clock. Deterministic: events fire at their scheduled times, and transient
// copy errors are Bernoulli draws from a SplitMix64 stream seeded by the
// scenario — copies complete in deterministic simulator order, so two runs
// with the same seed inject exactly the same faults.

#ifndef MGS_FAULT_INJECTOR_H_
#define MGS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "fault/scenario.h"
#include "util/datagen.h"
#include "util/status.h"
#include "vgpu/platform.h"

namespace mgs::fault {

class FaultInjector : public vgpu::FaultOracle {
 public:
  /// `seed_mix` folds an external seed (e.g. the CLI --seed) into the
  /// scenario's own seed, so workload and fault randomness vary together.
  FaultInjector(vgpu::Platform* platform, FaultScenario scenario,
                std::uint64_t seed_mix = 0);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Validates the scenario against the platform (GPU ids, link names),
  /// registers this injector as the platform's fault oracle, and schedules
  /// every event at `Now() + event.at`. Call once, before running work.
  Status Arm();

  /// vgpu::FaultOracle: Bernoulli transient-error draw at copy delivery.
  Status OnCopyDelivered(const vgpu::CopyFaultContext& ctx) override;

  struct Stats {
    int events_fired = 0;
    int gpus_failed = 0;
    std::int64_t copy_errors_injected = 0;
  };
  const Stats& stats() const { return stats_; }
  const FaultScenario& scenario() const { return scenario_; }

 private:
  void Fire(const FaultEvent& event);
  void PublishGauges();
  void Note(const std::string& what);

  vgpu::Platform* platform_;
  FaultScenario scenario_;
  SplitMix64 rng_;
  bool armed_ = false;
  double copy_error_rate_ = 0;
  double copy_error_until_ = -1;  // < 0 = open-ended window
  Stats stats_;
};

}  // namespace mgs::fault

#endif  // MGS_FAULT_INJECTOR_H_
