#include "fault/scenario.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace mgs::fault {

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatNumber(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

Result<double> ParseNumber(const std::string& token, const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::Invalid("fault scenario: bad " + what + " '" + token + "'");
  }
  return v;
}

// ---- inline clause grammar -------------------------------------------------

// One clause = whitespace-separated tokens; keyword tokens (fail/down/up/
// copy-error) pick the event kind, key=value tokens fill fields.
Status ParseClause(const std::string& clause, FaultScenario* scenario) {
  std::istringstream in(clause);
  FaultEvent ev;
  bool saw_at = false, saw_gpu = false, saw_link = false, saw_fail = false;
  bool saw_down = false, saw_up = false, saw_factor = false;
  bool saw_copy_error = false, saw_rate = false, saw_seed = false;
  int rack = -1;  // rack= sugar: expands to leaf<r> + spine<r> link events
  std::string token;
  while (in >> token) {
    if (token == "fail") {
      saw_fail = true;
    } else if (token == "down") {
      saw_down = true;
    } else if (token == "up") {
      saw_up = true;
    } else if (token == "copy-error") {
      saw_copy_error = true;
    } else {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return Status::Invalid("fault scenario: unknown token '" + token +
                               "' in clause '" + clause + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "at") {
        MGS_ASSIGN_OR_RETURN(ev.at, ParseNumber(value, "at"));
        saw_at = true;
      } else if (key == "gpu") {
        MGS_ASSIGN_OR_RETURN(const double gpu, ParseNumber(value, "gpu"));
        ev.gpu = static_cast<int>(gpu);
        saw_gpu = true;
      } else if (key == "link") {
        ev.link = value;
        saw_link = true;
      } else if (key == "nic") {
        // Cluster sugar (src/net): nic=2 names node 2's NIC attach links.
        MGS_ASSIGN_OR_RETURN(const double node, ParseNumber(value, "nic"));
        ev.link = "nic" + std::to_string(static_cast<int>(node));
        saw_link = true;
      } else if (key == "nvme") {
        // Storage sugar (topo::AttachNvme): nvme=0 names the nvme0 link,
        // so `nvme=0 down` kills the spill tier mid-transfer.
        MGS_ASSIGN_OR_RETURN(const double dev, ParseNumber(value, "nvme"));
        ev.link = "nvme" + std::to_string(static_cast<int>(dev));
        saw_link = true;
      } else if (key == "rack") {
        // Cluster sugar: rack=1 hits rack 1's leaf switch and spine uplink.
        MGS_ASSIGN_OR_RETURN(const double r, ParseNumber(value, "rack"));
        rack = static_cast<int>(r);
        saw_link = true;
      } else if (key == "factor") {
        MGS_ASSIGN_OR_RETURN(ev.factor, ParseNumber(value, "factor"));
        saw_factor = true;
      } else if (key == "rate") {
        MGS_ASSIGN_OR_RETURN(ev.rate, ParseNumber(value, "rate"));
        saw_rate = true;
      } else if (key == "until") {
        MGS_ASSIGN_OR_RETURN(ev.until, ParseNumber(value, "until"));
      } else if (key == "seed") {
        MGS_ASSIGN_OR_RETURN(const double seed, ParseNumber(value, "seed"));
        scenario->seed = static_cast<std::uint64_t>(seed);
        saw_seed = true;
      } else {
        return Status::Invalid("fault scenario: unknown key '" + key +
                               "' in clause '" + clause + "'");
      }
    }
  }
  const int forms = (saw_gpu || saw_fail ? 1 : 0) + (saw_link ? 1 : 0) +
                    (saw_copy_error ? 1 : 0);
  if (forms == 0) {
    if (saw_seed && !saw_at) return Status::OK();  // bare "seed=N" clause
    return Status::Invalid("fault scenario: clause '" + clause +
                           "' names no fault (expected gpu=, link=, or "
                           "copy-error)");
  }
  if (forms > 1) {
    return Status::Invalid("fault scenario: clause '" + clause +
                           "' mixes fault forms");
  }
  if (saw_gpu || saw_fail) {
    if (!saw_gpu || !saw_fail) {
      return Status::Invalid("fault scenario: GPU loss needs both gpu=ID and "
                             "'fail' in clause '" + clause + "'");
    }
    ev.kind = FaultKind::kGpuFail;
  } else if (saw_link) {
    const int actions = (saw_down ? 1 : 0) + (saw_up ? 1 : 0) +
                        (saw_factor ? 1 : 0);
    if (actions != 1) {
      return Status::Invalid("fault scenario: link event needs exactly one "
                             "of down/up/factor= in clause '" + clause + "'");
    }
    ev.kind = saw_down  ? FaultKind::kLinkDown
              : saw_up  ? FaultKind::kLinkUp
                        : FaultKind::kLinkBandwidth;
    if (saw_factor && ev.factor <= 0) {
      return Status::Invalid("fault scenario: factor must be > 0 (use 'down' "
                             "for an outage) in clause '" + clause + "'");
    }
  } else {
    if (!saw_rate) {
      return Status::Invalid("fault scenario: copy-error needs rate= in "
                             "clause '" + clause + "'");
    }
    if (ev.rate < 0 || ev.rate > 1) {
      return Status::Invalid("fault scenario: rate must be in [0,1] in "
                             "clause '" + clause + "'");
    }
    ev.kind = FaultKind::kCopyErrorRate;
  }
  if (ev.at < 0) {
    return Status::Invalid("fault scenario: at= must be >= 0 in clause '" +
                           clause + "'");
  }
  if (rack >= 0) {
    if (!ev.link.empty()) {
      return Status::Invalid("fault scenario: clause '" + clause +
                             "' mixes rack= with link=/nic=");
    }
    FaultEvent leaf = ev;
    leaf.link = "leaf" + std::to_string(rack);
    scenario->events.push_back(std::move(leaf));
    ev.link = "spine" + std::to_string(rack);
  }
  scenario->events.push_back(std::move(ev));
  return Status::OK();
}

// ---- minimal JSON ----------------------------------------------------------

// Hand-rolled recursive-descent parser for the small scenario documents
// above; the toolchain ships no JSON library and the obs exporters only
// *write* JSON.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> fields; // kObject

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    MGS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content");
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::Invalid("fault scenario JSON: " + msg + " at offset " +
                           std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNum();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (Consume('}')) return v;
    while (true) {
      SkipWs();
      MGS_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      MGS_ASSIGN_OR_RETURN(JsonValue val, ParseValue());
      v.fields.emplace_back(std::move(key.string), std::move(val));
      if (Consume('}')) return v;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (Consume(']')) return v;
    while (true) {
      MGS_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      v.items.push_back(std::move(item));
      if (Consume(']')) return v;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            pos_ += 4;
            c = '?';  // link/scenario names are ASCII; no codepoints needed
            break;
          default:
            return Error("bad escape");
        }
      }
      v.string.push_back(c);
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  Result<JsonValue> ParseBool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
      return v;
    }
    return Error("expected true/false");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return Error("expected null");
    pos_ += 4;
    return JsonValue{};
  }

  Result<JsonValue> ParseNum() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) return Error("expected value");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Result<double> NumberField(const JsonValue& obj, const std::string& key,
                           double fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (v->type != JsonValue::Type::kNumber) {
    return Status::Invalid("fault scenario JSON: '" + key +
                           "' must be a number");
  }
  return v->number;
}

bool BoolField(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->type == JsonValue::Type::kBool && v->boolean;
}

Result<FaultEvent> EventFromJson(const JsonValue& obj) {
  if (obj.type != JsonValue::Type::kObject) {
    return Status::Invalid("fault scenario JSON: events must be objects");
  }
  FaultEvent ev;
  MGS_ASSIGN_OR_RETURN(ev.at, NumberField(obj, "at", 0));
  if (ev.at < 0) {
    return Status::Invalid("fault scenario JSON: 'at' must be >= 0");
  }
  const JsonValue* gpu = obj.Find("gpu");
  const JsonValue* link = obj.Find("link");
  const JsonValue* rate = obj.Find("copy_error_rate");
  const int forms = (gpu ? 1 : 0) + (link ? 1 : 0) + (rate ? 1 : 0);
  if (forms != 1) {
    return Status::Invalid("fault scenario JSON: each event needs exactly "
                           "one of 'gpu', 'link', 'copy_error_rate'");
  }
  if (gpu != nullptr) {
    if (gpu->type != JsonValue::Type::kNumber || !BoolField(obj, "fail")) {
      return Status::Invalid("fault scenario JSON: GPU loss needs numeric "
                             "'gpu' and \"fail\": true");
    }
    ev.kind = FaultKind::kGpuFail;
    ev.gpu = static_cast<int>(gpu->number);
  } else if (link != nullptr) {
    if (link->type != JsonValue::Type::kString) {
      return Status::Invalid("fault scenario JSON: 'link' must be a string");
    }
    ev.link = link->string;
    const JsonValue* factor = obj.Find("factor");
    const int actions = (factor ? 1 : 0) + (BoolField(obj, "down") ? 1 : 0) +
                        (BoolField(obj, "up") ? 1 : 0);
    if (actions != 1) {
      return Status::Invalid("fault scenario JSON: link event needs exactly "
                             "one of 'factor', \"down\": true, \"up\": true");
    }
    if (factor != nullptr) {
      MGS_ASSIGN_OR_RETURN(ev.factor, NumberField(obj, "factor", 1.0));
      if (ev.factor <= 0) {
        return Status::Invalid("fault scenario JSON: factor must be > 0 "
                               "(use \"down\" for an outage)");
      }
      ev.kind = FaultKind::kLinkBandwidth;
    } else {
      ev.kind = BoolField(obj, "down") ? FaultKind::kLinkDown
                                       : FaultKind::kLinkUp;
    }
  } else {
    if (rate->type != JsonValue::Type::kNumber || rate->number < 0 ||
        rate->number > 1) {
      return Status::Invalid("fault scenario JSON: 'copy_error_rate' must "
                             "be a number in [0,1]");
    }
    ev.kind = FaultKind::kCopyErrorRate;
    ev.rate = rate->number;
    MGS_ASSIGN_OR_RETURN(ev.until, NumberField(obj, "until", -1));
  }
  return ev;
}

void SortEvents(FaultScenario* scenario) {
  std::stable_sort(scenario->events.begin(), scenario->events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

}  // namespace

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGpuFail: return "gpu-fail";
    case FaultKind::kLinkBandwidth: return "link-degrade";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kCopyErrorRate: return "copy-error-rate";
  }
  return "?";
}

Result<FaultScenario> FaultScenario::Parse(const std::string& spec) {
  FaultScenario scenario;
  std::istringstream lines(spec);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream clauses(line);
    std::string clause;
    while (std::getline(clauses, clause, ';')) {
      clause = Trim(clause);
      if (clause.empty()) continue;
      MGS_RETURN_IF_ERROR(ParseClause(clause, &scenario));
    }
  }
  SortEvents(&scenario);
  return scenario;
}

Result<FaultScenario> FaultScenario::ParseJson(const std::string& json) {
  MGS_ASSIGN_OR_RETURN(const JsonValue root, JsonParser(json).Parse());
  if (root.type != JsonValue::Type::kObject) {
    return Status::Invalid("fault scenario JSON: top level must be an "
                           "object");
  }
  FaultScenario scenario;
  if (const JsonValue* seed = root.Find("seed")) {
    if (seed->type != JsonValue::Type::kNumber) {
      return Status::Invalid("fault scenario JSON: 'seed' must be a number");
    }
    scenario.seed = static_cast<std::uint64_t>(seed->number);
  }
  if (const JsonValue* events = root.Find("events")) {
    if (events->type != JsonValue::Type::kArray) {
      return Status::Invalid("fault scenario JSON: 'events' must be an "
                             "array");
    }
    for (const JsonValue& item : events->items) {
      MGS_ASSIGN_OR_RETURN(FaultEvent ev, EventFromJson(item));
      scenario.events.push_back(std::move(ev));
    }
  }
  SortEvents(&scenario);
  return scenario;
}

Result<FaultScenario> FaultScenario::Load(const std::string& spec_or_path) {
  std::string text = Trim(spec_or_path);
  std::string path;
  if (!text.empty() && text[0] == '@') {
    path = text.substr(1);
  } else if (text.find_first_of("=;{\n") == std::string::npos) {
    // No grammar characters: only plausible as a file path.
    path = text;
  }
  if (!path.empty()) {
    std::ifstream in(path);
    if (!in) {
      return Status::NotFound("fault scenario file not found: " + path);
    }
    std::ostringstream content;
    content << in.rdbuf();
    text = Trim(content.str());
  }
  if (!text.empty() && text[0] == '{') return ParseJson(text);
  return Parse(text);
}

std::string FaultScenario::ToString() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (const FaultEvent& ev : events) {
    out << "; at=" << FormatNumber(ev.at);
    switch (ev.kind) {
      case FaultKind::kGpuFail:
        out << " gpu=" << ev.gpu << " fail";
        break;
      case FaultKind::kLinkBandwidth:
        out << " link=" << ev.link << " factor=" << FormatNumber(ev.factor);
        break;
      case FaultKind::kLinkDown:
        out << " link=" << ev.link << " down";
        break;
      case FaultKind::kLinkUp:
        out << " link=" << ev.link << " up";
        break;
      case FaultKind::kCopyErrorRate:
        out << " copy-error rate=" << FormatNumber(ev.rate);
        if (ev.until >= 0) out << " until=" << FormatNumber(ev.until);
        break;
    }
  }
  return out.str();
}

}  // namespace mgs::fault
