#include "fault/injector.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/resilience.h"

namespace mgs::fault {

FaultInjector::FaultInjector(vgpu::Platform* platform, FaultScenario scenario,
                             std::uint64_t seed_mix)
    : platform_(platform),
      scenario_(std::move(scenario)),
      rng_(scenario_.seed ^ (seed_mix * 0x9e3779b97f4a7c15ULL)) {}

FaultInjector::~FaultInjector() {
  if (armed_ && platform_->fault_oracle() == this) {
    platform_->SetFaultOracle(nullptr);
  }
}

Status FaultInjector::Arm() {
  if (armed_) return Status::FailedPrecondition("injector already armed");
  for (const FaultEvent& ev : scenario_.events) {
    switch (ev.kind) {
      case FaultKind::kGpuFail:
        if (ev.gpu < 0 || ev.gpu >= platform_->num_devices()) {
          return Status::Invalid("fault scenario: no such GPU: " +
                                 std::to_string(ev.gpu));
        }
        break;
      case FaultKind::kLinkBandwidth:
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        MGS_RETURN_IF_ERROR(
            platform_->topology().LinkIsUp(ev.link).status());
        break;
      case FaultKind::kCopyErrorRate:
        break;
    }
  }
  armed_ = true;
  platform_->SetFaultOracle(this);
  for (const FaultEvent& ev : scenario_.events) {
    platform_->simulator().Schedule(ev.at, [this, ev] { Fire(ev); });
  }
  PublishGauges();
  return Status::OK();
}

void FaultInjector::Fire(const FaultEvent& event) {
  ++stats_.events_fired;
  Status applied = Status::OK();
  std::string what;
  switch (event.kind) {
    case FaultKind::kGpuFail: {
      what = "gpu" + std::to_string(event.gpu) + " fail-stop";
      platform_->device(event.gpu)
          .Fail(Status::Unavailable("fault injection: GPU " +
                                    std::to_string(event.gpu) +
                                    " fail-stop"));
      ++stats_.gpus_failed;
      break;
    }
    case FaultKind::kLinkBandwidth:
      what = "link " + event.link + " factor=" + std::to_string(event.factor);
      applied = platform_->mutable_topology().SetLinkBandwidthFactor(
          event.link, event.factor, &platform_->network());
      break;
    case FaultKind::kLinkDown:
      what = "link " + event.link + " down";
      applied = platform_->mutable_topology().SetLinkUp(
          event.link, false, &platform_->network());
      break;
    case FaultKind::kLinkUp:
      what = "link " + event.link + " up";
      applied = platform_->mutable_topology().SetLinkUp(
          event.link, true, &platform_->network());
      break;
    case FaultKind::kCopyErrorRate:
      what = "copy-error rate=" + std::to_string(event.rate);
      copy_error_rate_ = event.rate;
      copy_error_until_ = event.until;
      break;
  }
  if (!applied.ok()) what += " [" + applied.ToString() + "]";
  Note(what);
  if (auto* metrics = platform_->metrics()) {
    metrics
        ->GetCounter(obs::kFaultEvents,
                     {{"type", FaultKindToString(event.kind)}},
                     "Scheduled fault events fired by the injector")
        .Inc();
  }
  PublishGauges();
}

Status FaultInjector::OnCopyDelivered(const vgpu::CopyFaultContext& ctx) {
  (void)ctx;
  if (copy_error_rate_ <= 0) return Status::OK();
  const double now = platform_->simulator().Now();
  if (copy_error_until_ >= 0 && now > copy_error_until_) return Status::OK();
  if (rng_.NextDouble() >= copy_error_rate_) return Status::OK();
  ++stats_.copy_errors_injected;
  if (auto* metrics = platform_->metrics()) {
    metrics
        ->GetCounter(obs::kFaultCopyErrors, {},
                     "Transient copy errors injected by the fault oracle")
        .Inc();
  }
  Note("transient copy error");
  return Status::Unavailable("fault injection: transient copy error");
}

void FaultInjector::PublishGauges() {
  auto* metrics = platform_->metrics();
  if (metrics == nullptr) return;
  int failed = 0;
  for (int g = 0; g < platform_->num_devices(); ++g) {
    if (platform_->device(g).failed()) ++failed;
  }
  metrics
      ->GetGauge(obs::kFaultGpusFailed, {}, "GPUs currently failed")
      .Set(failed);
  const auto& topo = platform_->topology();
  metrics
      ->GetGauge(obs::kFaultLinksDegraded, {},
                 "Links currently running below calibrated bandwidth")
      .Set(topo.DegradedLinkCount());
  metrics
      ->GetGauge(obs::kFaultLinksDown, {}, "Links currently down")
      .Set(topo.DownLinkCount());
}

void FaultInjector::Note(const std::string& what) {
  if (auto* trace = platform_->trace()) {
    trace->AddInstant("faults", what, platform_->simulator().Now());
  }
}

}  // namespace mgs::fault
