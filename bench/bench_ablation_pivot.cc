// Ablation (ours, motivated by Section 5.2): leftmost vs rightmost valid
// pivot. The leftmost pivot minimizes P2P transfer volume; the gap depends
// on duplicate density and distribution ("the performance gain of this
// optimization depends on the number of duplicate keys and the data
// distribution").

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Ablation: leftmost vs rightmost pivot selection");
  ReportTable table(
      "Pivot policy ablation (2e9 int32, AC922, 2 GPUs)",
      {"distribution", "leftmost [s]", "P2P bytes [GB]", "rightmost [s]",
       "P2P bytes [GB]"});
  for (Distribution dist :
       {Distribution::kUniform, Distribution::kSorted,
        Distribution::kNearlySorted, Distribution::kZipf}) {
    SortConfig config;
    config.system = "ac922";
    config.algo = Algo::kP2p;
    config.gpus = 2;
    config.logical_keys = 2'000'000'000;
    config.distribution = dist;
    core::SortStats left, right;
    config.pivot_policy = core::PivotPolicy::kLeftmost;
    const auto lstats = CheckOk(RunMany(config, &left));
    config.pivot_policy = core::PivotPolicy::kRightmost;
    const auto rstats = CheckOk(RunMany(config, &right));
    table.AddRow({DistributionToString(dist),
                  ReportTable::Num(lstats.Mean(), 3),
                  ReportTable::Num(left.p2p_bytes / kGB, 2),
                  ReportTable::Num(rstats.Mean(), 3),
                  ReportTable::Num(right.p2p_bytes / kGB, 2)});
  }
  table.Emit();
  return 0;
}
