// Section 5.3 (in-text): gnu_parallel::multiway_merge saturates 71-94% of
// the sustainable host memory bandwidth when merging n in {2,8,32}e9 keys
// from k in {2,4,8} sorted sublists. We report the modeled merge durations
// and the implied memory-bandwidth utilization per system, plus a measured
// section running this repo's real cpusort::MultiwayMerge on this machine
// (the substrate the HET sort's CPU phase executes).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "cpusort/multiway_merge.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/report.h"
#include "util/units.h"
#include "vgpu/platform.h"

using namespace mgs;

namespace {

// Native merge throughput of the real substrate: k sorted runs of `per`
// int32 keys each, best of `reps` back-to-back merges.
void RunNative() {
  ReportTable table("Sec 5.3 (measured): cpusort::MultiwayMerge, this host",
                    {"sublists", "keys [1e6]", "merge [ms]", "Mkeys/s"});
  constexpr std::int64_t per = 1 << 21;
  constexpr int reps = 3;
  for (int k : {2, 4, 8, 16}) {
    std::vector<std::vector<std::int32_t>> runs(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      DataGenOptions options;
      options.seed = static_cast<std::uint64_t>(i) + 1;
      runs[static_cast<std::size_t>(i)] =
          GenerateKeys<std::int32_t>(per, options);
      std::sort(runs[static_cast<std::size_t>(i)].begin(),
                runs[static_cast<std::size_t>(i)].end());
    }
    std::vector<cpusort::MergeInput<std::int32_t>> inputs;
    for (const auto& r : runs) {
      inputs.push_back(
          cpusort::MergeInput<std::int32_t>{r.data(), r.data() + r.size()});
    }
    const std::int64_t total = static_cast<std::int64_t>(k) * per;
    std::vector<std::int32_t> out(static_cast<std::size_t>(total));
    double best = 0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      cpusort::MultiwayMerge(inputs, out.data());
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (best == 0 || secs < best) best = secs;
    }
    table.AddRow({std::to_string(k),
                  ReportTable::Num(static_cast<double>(total) / 1e6, 1),
                  ReportTable::Num(best * 1e3, 2),
                  ReportTable::Num(static_cast<double>(total) / best / 1e6,
                                   1)});
  }
  table.Emit();
}

void RunSystem(const std::string& name) {
  ReportTable table(
      "Sec 5.3: multiway merge on " + name,
      {"keys [1e9]", "sublists", "merge [s]", "mem traffic [GB/s]",
       "engine util [%]"});
  for (std::int64_t n : {2'000'000'000LL, 8'000'000'000LL,
                         32'000'000'000LL}) {
    for (int k : {2, 4, 8}) {
      auto platform =
          CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem(name))));
      const auto& cpu = platform->topology().cpu_spec();
      const double bytes = static_cast<double>(n) * 4;
      // The k-way penalty models the loser-tree depth cost.
      const double weight = 1.0 + 0.08 * (k > 2 ? std::log2(k) - 1 : 0);
      auto root = [&]() -> sim::Task<void> {
        co_await platform->CpuMemoryWork(
            0, bytes, cpu.merge_memory_amplification, weight);
      };
      const double secs = CheckOk(platform->Run(root()));
      const double traffic =
          bytes * cpu.merge_memory_amplification / secs / kGB;
      const double util = bytes / secs / cpu.multiway_merge_bw * 100.0;
      table.AddRow({std::to_string(n / 1'000'000'000), std::to_string(k),
                    ReportTable::Num(secs, 2), ReportTable::Num(traffic, 1),
                    ReportTable::Num(util, 0)});
    }
  }
  table.Emit();
}

}  // namespace

int main() {
  PrintBanner("Section 5.3: CPU multiway-merge bandwidth saturation");
  for (const auto& name : topo::SystemNames()) RunSystem(name);
  RunNative();
  return 0;
}
