// Section 5.3 (in-text): gnu_parallel::multiway_merge saturates 71-94% of
// the sustainable host memory bandwidth when merging n in {2,8,32}e9 keys
// from k in {2,4,8} sorted sublists. We report the modeled merge durations
// and the implied memory-bandwidth utilization per system.

#include <cmath>

#include "topo/systems.h"
#include "util/report.h"
#include "util/units.h"
#include "vgpu/platform.h"

using namespace mgs;

namespace {

void RunSystem(const std::string& name) {
  ReportTable table(
      "Sec 5.3: multiway merge on " + name,
      {"keys [1e9]", "sublists", "merge [s]", "mem traffic [GB/s]",
       "engine util [%]"});
  for (std::int64_t n : {2'000'000'000LL, 8'000'000'000LL,
                         32'000'000'000LL}) {
    for (int k : {2, 4, 8}) {
      auto platform =
          CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem(name))));
      const auto& cpu = platform->topology().cpu_spec();
      const double bytes = static_cast<double>(n) * 4;
      // The k-way penalty models the loser-tree depth cost.
      const double weight = 1.0 + 0.08 * (k > 2 ? std::log2(k) - 1 : 0);
      auto root = [&]() -> sim::Task<void> {
        co_await platform->CpuMemoryWork(
            0, bytes, cpu.merge_memory_amplification, weight);
      };
      const double secs = CheckOk(platform->Run(root()));
      const double traffic =
          bytes * cpu.merge_memory_amplification / secs / kGB;
      const double util = bytes / secs / cpu.multiway_merge_bw * 100.0;
      table.AddRow({std::to_string(n / 1'000'000'000), std::to_string(k),
                    ReportTable::Num(secs, 2), ReportTable::Num(traffic, 1),
                    ReportTable::Num(util, 0)});
    }
  }
  table.Emit();
}

}  // namespace

int main() {
  PrintBanner("Section 5.3: CPU multiway-merge bandwidth saturation");
  for (const auto& name : topo::SystemNames()) RunSystem(name);
  return 0;
}
