// Native google-benchmark microbenchmarks of the simulation engine itself:
// event-queue throughput, coroutine spawn/resume cost, flow-network rate
// recomputation, and an end-to-end simulated sort per wall-second. These
// bound how large an experiment the simulator can drive.

#include <benchmark/benchmark.h>

#include "core/p2p_sort.h"
#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "topo/systems.h"
#include "util/datagen.h"

using namespace mgs;

namespace {

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(static_cast<double>(i % 97), [] {});
    }
    sim.Run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(1 << 10)->Arg(1 << 16);

void BM_CoroutineSpawnJoin(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    auto sleeper = [&](double d) -> sim::Task<void> {
      co_await sim::Delay{sim, d};
    };
    std::vector<sim::JoinerPtr> joiners;
    for (int i = 0; i < state.range(0); ++i) {
      joiners.push_back(sim::Spawn(sleeper(0.001 * (i % 13 + 1))));
    }
    CheckOk(sim::RunToCompletion(&sim, sim::WhenAll(std::move(joiners))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineSpawnJoin)->Arg(256)->Arg(4096);

void BM_FlowNetworkContention(benchmark::State& state) {
  // N flows over a shared chain of resources: every arrival/completion
  // triggers a max-min resettling. The 4096-flow arg is the perf-gate
  // workload for the incremental allocator (BENCH_sim.json in CI).
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FlowNetwork net(&sim);
    std::vector<sim::ResourceId> chain;
    for (int r = 0; r < 8; ++r) {
      std::string name("r");
      name += std::to_string(r);
      chain.push_back(net.AddResource(std::move(name), 100.0));
    }
    for (int f = 0; f < state.range(0); ++f) {
      std::vector<sim::PathHop> path;
      for (int r = f % 4; r < 8; r += 2) path.push_back({chain[static_cast<std::size_t>(r)], 1.0});
      net.StartFlow(100.0 + f, path, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowNetworkContention)->Arg(16)->Arg(128)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndP2pSort(benchmark::State& state) {
  // Whole-stack cost: one simulated 8-GPU P2P sort per iteration
  // (functional work on `range` actual keys).
  DataGenOptions gen;
  const auto keys = GenerateKeys<std::int32_t>(state.range(0), gen);
  for (auto _ : state) {
    auto platform = CheckOk(vgpu::Platform::Create(
        topo::MakeDgxA100(), vgpu::PlatformOptions{1000.0}));
    vgpu::HostBuffer<std::int32_t> data(keys);
    core::SortOptions options;
    auto stats = CheckOk(core::P2pSort(platform.get(), &data, options));
    benchmark::DoNotOptimize(stats.total_seconds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndToEndP2pSort)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace

BENCHMARK_MAIN();
