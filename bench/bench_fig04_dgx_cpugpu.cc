// Figure 4: CPU-GPU data transfers on the NVIDIA DGX A100 (PCIe 4.0 with
// one switch per GPU pair; Infinity Fabric to the remote socket).

#include "topo/systems.h"
#include "transfer_bench_util.h"

using namespace mgs;
using namespace mgs::bench;
using topo::TransferProbe;

namespace {

std::vector<topo::TransferOp> HtoDSet(const std::vector<int>& gpus) {
  std::vector<topo::TransferOp> ops;
  for (int g : gpus) ops.push_back(TransferProbe::HtoD(g, kCopyBytes));
  return ops;
}

std::vector<topo::TransferOp> DtoHSet(const std::vector<int>& gpus) {
  std::vector<topo::TransferOp> ops;
  for (int g : gpus) ops.push_back(TransferProbe::DtoH(g, kCopyBytes));
  return ops;
}

}  // namespace

int main() {
  PrintBanner("Figure 4: CPU-GPU data transfers on the DGX A100");
  TransferProbe probe(topo::MakeDgxA100());
  const std::vector<int> quad{0, 2, 4, 6};
  const std::vector<int> all{0, 1, 2, 3, 4, 5, 6, 7};

  RunTransferScenarios(
      "Fig 4: serial and parallel", probe,
      {
          {"{0-3} HtoD", HtoDSet({0}), 24},
          {"{0-3} DtoH", DtoHSet({0}), 24},
          {"{0-3} HtoD/DtoH", TransferProbe::Bidirectional({0}, kCopyBytes),
           39},
          {"{4-7} HtoD", HtoDSet({4}), 24},
          {"{4-7} DtoH", DtoHSet({4}), 25},
          {"{4-7} HtoD/DtoH", TransferProbe::Bidirectional({4}, kCopyBytes),
           32},
          {"(0,1) HtoD", HtoDSet({0, 1}), 25},
          {"(0,1) DtoH", DtoHSet({0, 1}), 26},
          {"(0,1) HtoD/DtoH", TransferProbe::Bidirectional({0, 1}, kCopyBytes),
           29},
          {"(0,2) HtoD", HtoDSet({0, 2}), 49},
          {"(0,2) DtoH", DtoHSet({0, 2}), 47},
          {"(0,2) HtoD/DtoH", TransferProbe::Bidirectional({0, 2}, kCopyBytes),
           82},
          {"(4,6) HtoD", HtoDSet({4, 6}), 46},
          {"(4,6) DtoH", DtoHSet({4, 6}), 47},
          {"(4,6) HtoD/DtoH", TransferProbe::Bidirectional({4, 6}, kCopyBytes),
           61},
          {"(0,2,4,6) HtoD", HtoDSet(quad), 87},
          {"(0,2,4,6) DtoH", DtoHSet(quad), 92},
          {"(0,2,4,6) HtoD/DtoH",
           TransferProbe::Bidirectional(quad, kCopyBytes), 113},
          {"(0-7) HtoD", HtoDSet(all), 89},
          {"(0-7) DtoH", DtoHSet(all), 104},
          {"(0-7) HtoD/DtoH", TransferProbe::Bidirectional(all, kCopyBytes),
           111},
      });
  return 0;
}
