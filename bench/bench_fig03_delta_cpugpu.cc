// Figure 3: CPU-GPU data transfers on the DELTA D22x M4 PS.

#include "topo/systems.h"
#include "transfer_bench_util.h"

using namespace mgs;
using namespace mgs::bench;
using topo::TransferProbe;

int main() {
  PrintBanner("Figure 3: CPU-GPU data transfers on the DELTA D22x");
  TransferProbe probe(topo::MakeDeltaD22x());

  RunTransferScenarios(
      "Fig 3a: serial", probe,
      {
          {"{0,1} HtoD", {TransferProbe::HtoD(0, kCopyBytes)}, 12},
          {"{0,1} DtoH", {TransferProbe::DtoH(0, kCopyBytes)}, 13},
          {"{0,1} HtoD/DtoH", TransferProbe::Bidirectional({0}, kCopyBytes),
           20},
          {"{2,3} HtoD", {TransferProbe::HtoD(2, kCopyBytes)}, 12},
          {"{2,3} DtoH", {TransferProbe::DtoH(2, kCopyBytes)}, 13},
          {"{2,3} HtoD/DtoH", TransferProbe::Bidirectional({2}, kCopyBytes),
           20},
      });

  RunTransferScenarios(
      "Fig 3b: parallel", probe,
      {
          {"(0,1) HtoD",
           {TransferProbe::HtoD(0, kCopyBytes),
            TransferProbe::HtoD(1, kCopyBytes)},
           24},
          {"(0,1) DtoH",
           {TransferProbe::DtoH(0, kCopyBytes),
            TransferProbe::DtoH(1, kCopyBytes)},
           26},
          {"(0,1) HtoD/DtoH", TransferProbe::Bidirectional({0, 1}, kCopyBytes),
           40},
          {"(2,3) HtoD",
           {TransferProbe::HtoD(2, kCopyBytes),
            TransferProbe::HtoD(3, kCopyBytes)},
           24},
          {"(2,3) DtoH",
           {TransferProbe::DtoH(2, kCopyBytes),
            TransferProbe::DtoH(3, kCopyBytes)},
           25},
          {"(2,3) HtoD/DtoH", TransferProbe::Bidirectional({2, 3}, kCopyBytes),
           40},
          {"(0,1,2,3) HtoD",
           {TransferProbe::HtoD(0, kCopyBytes),
            TransferProbe::HtoD(1, kCopyBytes),
            TransferProbe::HtoD(2, kCopyBytes),
            TransferProbe::HtoD(3, kCopyBytes)},
           49},
          {"(0,1,2,3) DtoH",
           {TransferProbe::DtoH(0, kCopyBytes),
            TransferProbe::DtoH(1, kCopyBytes),
            TransferProbe::DtoH(2, kCopyBytes),
            TransferProbe::DtoH(3, kCopyBytes)},
           51},
          {"(0,1,2,3) HtoD/DtoH",
           TransferProbe::Bidirectional({0, 1, 2, 3}, kCopyBytes), 79},
      });
  return 0;
}
