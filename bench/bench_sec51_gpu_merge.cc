// Section 5.2 (in-text): device merge primitive comparison — Thrust's
// two-way merge outperforms MGPU up to 1.7x for two sorted lists of 8 GB
// each. We model Thrust merge at the calibrated device merge rate and MGPU
// at 1.7x slower, and verify the simulated gap.

#include "gpusort/device_sort.h"
#include "topo/systems.h"
#include "util/report.h"

using namespace mgs;

int main() {
  PrintBanner("Section 5.1/5.2: device merge primitives (2 x 8 GB lists)");
  const double keys = 4e9;  // 2 x 2e9 int32
  ReportTable table("GPU merge primitives: 2 sorted lists of 8 GB",
                    {"GPU", "thrust::merge [ms]", "MGPU merge [ms] (1.7x)"});
  for (const auto& name : topo::SystemNames()) {
    auto topology = CheckOk(topo::MakeSystem(name));
    const auto& spec = topology->gpu_spec(0);
    const double thrust_ms =
        gpusort::MergeDuration(spec, keys, 4) * 1e3;
    table.AddRow({spec.model, ReportTable::Num(thrust_ms, 1),
                  ReportTable::Num(thrust_ms * 1.7, 1)});
  }
  table.Emit();
  return 0;
}
