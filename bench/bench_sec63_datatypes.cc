// Section 6.3 (data types): sorting 8 GB of int32/float32 (4e9 keys) and
// int64/float64 (2e9 keys) with both algorithms on two GPUs, on the DGX
// A100 (A100) and the IBM AC922 (V100). Paper: 32/64-bit runs of equal
// byte volume perform within 95% on the A100; on the V100, 32-bit runs
// take only 83-88% of the 64-bit time.

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

namespace {

void RunSystem(const std::string& system, int gpus) {
  struct Row {
    DataType type;
    std::int64_t keys;
  };
  const Row rows[] = {
      {DataType::kInt32, 4'000'000'000},
      {DataType::kFloat32, 4'000'000'000},
      {DataType::kInt64, 2'000'000'000},
      {DataType::kFloat64, 2'000'000'000},
  };
  ReportTable table("Sec 6.3: data types, 8 GB each, " + system + ", " +
                        std::to_string(gpus) + " GPUs",
                    {"type", "keys [1e9]", "P2P [s]", "HET [s]"});
  for (const auto& row : rows) {
    SortConfig p2p;
    p2p.system = system;
    p2p.algo = Algo::kP2p;
    p2p.gpus = gpus;
    p2p.logical_keys = row.keys;
    p2p.type = row.type;
    SortConfig het = p2p;
    het.algo = Algo::kHet2n;
    const auto p2p_stats = CheckOk(RunMany(p2p));
    const auto het_stats = CheckOk(RunMany(het));
    table.AddRow({DataTypeToString(row.type), KeysLabel(row.keys),
                  ReportTable::Num(p2p_stats.Mean(), 3),
                  ReportTable::Num(het_stats.Mean(), 3)});
  }
  table.Emit();
}

}  // namespace

int main() {
  PrintBanner("Section 6.3: sorting varying data types (8 GB runs)");
  RunSystem("dgx-a100", 2);
  RunSystem("ac922", 2);
  return 0;
}
