// Million-job trace throughput for the sort service (ISSUE 9).
//
// The service's unit of scale is jobs-per-wall-second of *simulation*: how
// fast SortServer can chew through an open-loop trace of small jobs. Three
// benchmarks on the DGX A100 model:
//
//   BM_ServiceTrace/100000   the CI smoke trace — 10^5 tiny jobs with batch
//                            coalescing and the result cache on; counters
//                            report sim_jobs_per_wall_sec plus the
//                            completed/failed/rejected split (the CI gate
//                            asserts failed == rejected == 0).
//   BM_ServiceTraceSpeedup   the same workload (5 000 jobs so the slow side
//                            stays affordable) through the pre-PR dispatch
//                            path — legacy full-scan dispatch, no
//                            coalescing, no dedupe — and through the new
//                            path; `speedup` is legacy wall over new wall
//                            (the CI gate asserts >= 3).
//   BM_ServiceTraceMillion   the acceptance run: a full 10^6-job trace,
//                            one iteration. Excluded from CI and from
//                            bench/baselines/sched.json (both filter
//                            -BM_ServiceTraceMillion); run it locally to
//                            reproduce the acceptance numbers.
//
// Wall time gates regressions like every native bench (bench/compare.py vs
// bench/baselines/sched.json).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "sched/server.h"
#include "topo/systems.h"
#include "vgpu/platform.h"

using namespace mgs;
using namespace mgs::sched;

namespace {

// 5e7-2e8 logical keys ride on 25-100 actual keys at this scale: the
// tiny-job regime where per-job constant costs, not sorting, bound service
// throughput.
constexpr double kScale = 2e6;
constexpr double kRateHz = 1e5;  // arrivals far outpace service: deep backlog

JobMix TraceMix() {
  JobMix mix;
  mix.min_keys = 5e7;
  mix.max_keys = 2e8;
  mix.gpu_choices = {1};
  mix.tenants = 8;
  // Recurring datasets: tenants re-submitting the same inputs is what the
  // result cache exploits; 1024 distinct identities over the trace.
  mix.distinct_datasets = 1024;
  return mix;
}

ServerOptions TraceOptions(bool pre_pr) {
  ServerOptions options;
  options.policy = QueuePolicy::kSjfBytes;
  options.admission.max_queue_depth = 0;  // open loop: the backlog is the point
  options.report_jobs = false;            // aggregates only at trace scale
  if (pre_pr) {
    options.legacy_scan_dispatch = true;  // full copy-and-sort per dispatch
  } else {
    options.coalesce.enabled = true;
    options.dedupe.enabled = true;
  }
  return options;
}

ServiceReport RunTrace(const std::vector<JobSpec>& workload, bool pre_pr) {
  auto platform = CheckOk(vgpu::Platform::Create(
      topo::MakeDgxA100(), vgpu::PlatformOptions{kScale}));
  SortServer server(platform.get(), TraceOptions(pre_pr));
  server.Submit(workload);
  return CheckOk(server.Run());
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void ReportTraceCounters(benchmark::State& state, const ServiceReport& report,
                         std::int64_t jobs, double wall) {
  state.counters["sim_jobs_per_wall_sec"] =
      wall > 0 ? static_cast<double>(jobs) / wall : 0;
  state.counters["completed"] = static_cast<double>(report.completed);
  state.counters["failed"] = static_cast<double>(report.failed);
  state.counters["rejected"] = static_cast<double>(report.rejected);
  state.counters["dedup_hits"] = static_cast<double>(report.dedup_hits);
  state.counters["coalesced_jobs"] =
      static_cast<double>(report.coalesced_jobs);
  state.counters["coalesced_batches"] =
      static_cast<double>(report.coalesced_batches);
}

void RunTraceBench(benchmark::State& state, int jobs) {
  const auto workload = MakePoissonWorkload(TraceMix(), kRateHz, jobs, 42);
  double wall = 0;
  std::int64_t ran = 0;
  ServiceReport report;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    report = RunTrace(workload, /*pre_pr=*/false);
    wall += SecondsSince(start);
    ran += jobs;
    benchmark::DoNotOptimize(report.completed);
  }
  if (report.completed + report.failed + report.rejected != jobs) {
    state.SkipWithError("trace lost jobs");
    return;
  }
  ReportTraceCounters(state, report, ran, wall);
}

void BM_ServiceTrace(benchmark::State& state) {
  RunTraceBench(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_ServiceTrace)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_ServiceTraceMillion(benchmark::State& state) {
  RunTraceBench(state, 1000000);
}
BENCHMARK(BM_ServiceTraceMillion)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ServiceTraceSpeedup(benchmark::State& state) {
  constexpr int kJobs = 5000;
  const auto workload = MakePoissonWorkload(TraceMix(), kRateHz, kJobs, 42);
  double legacy_wall = 0, modern_wall = 0;
  bool consistent = true;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    const ServiceReport legacy = RunTrace(workload, /*pre_pr=*/true);
    legacy_wall += SecondsSince(start);
    start = std::chrono::steady_clock::now();
    const ServiceReport modern = RunTrace(workload, /*pre_pr=*/false);
    modern_wall += SecondsSince(start);
    // Both paths must finish every job; the speedup is only meaningful if
    // the work actually happened.
    consistent = consistent && legacy.completed == kJobs &&
                 modern.completed == kJobs && legacy.failed == 0 &&
                 modern.failed == 0;
    benchmark::DoNotOptimize(consistent);
  }
  if (!consistent) {
    state.SkipWithError("legacy and new paths disagree on completions");
    return;
  }
  state.counters["speedup"] =
      modern_wall > 0 ? legacy_wall / modern_wall : 0;
  state.counters["legacy_jobs_per_sec"] =
      legacy_wall > 0 ? kJobs * state.iterations() / legacy_wall : 0;
  state.counters["new_jobs_per_sec"] =
      modern_wall > 0 ? kJobs * state.iterations() / modern_wall : 0;
}
BENCHMARK(BM_ServiceTraceSpeedup)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
