// Figure 7: P2P data transfers on the DGX A100 (NVLink 3.0 NVSwitch).

#include "topo/systems.h"
#include "transfer_bench_util.h"

using namespace mgs;
using namespace mgs::bench;
using topo::TransferProbe;

int main() {
  PrintBanner("Figure 7: P2P data transfers on the DGX A100");
  TransferProbe probe(topo::MakeDgxA100());

  RunTransferScenarios(
      "Fig 7: serial and parallel", probe,
      {
          {"i->j (serial)", {TransferProbe::PtoP(0, 1, kCopyBytes)}, 279},
          {"0<->1", TransferProbe::P2pRing({0, 1}, kCopyBytes), 530},
          {"0<->2", TransferProbe::P2pRing({0, 2}, kCopyBytes), 453},
          {"0<->6, 2<->4", TransferProbe::P2pRing({0, 2, 4, 6}, kCopyBytes),
           894},
          {"0<->3, 1<->2", TransferProbe::P2pRing({0, 1, 2, 3}, kCopyBytes),
           1060},
          {"all eight",
           TransferProbe::P2pRing({0, 1, 2, 3, 4, 5, 6, 7}, kCopyBytes),
           2116},
      });
  return 0;
}
