// Extension: collective P2P patterns (Li et al.'s Tartan-style view of the
// interconnects). Broadcast / gather / all-to-all aggregate throughput per
// system — the all-to-all pattern is what the RDX sort's exchange uses.

#include "topo/systems.h"
#include "topo/transfer_probe.h"
#include "util/report.h"
#include "util/units.h"

using namespace mgs;
using topo::TransferProbe;

int main() {
  PrintBanner("Extension: collective P2P patterns (4 GB per transfer)");
  ReportTable table("Collectives across all GPUs",
                    {"system", "pattern", "aggregate [GB/s]",
                     "bottleneck (util)"});
  for (const auto& name : topo::SystemNames()) {
    TransferProbe probe(CheckOk(topo::MakeSystem(name)));
    std::vector<int> gpus;
    for (int g = 0; g < probe.topology().num_gpus(); ++g) gpus.push_back(g);
    struct Pattern {
      const char* label;
      std::vector<topo::TransferOp> ops;
    };
    const Pattern patterns[] = {
        {"broadcast (GPU0 -> all)",
         TransferProbe::Broadcast(0, gpus, 4 * kGB)},
        {"gather (all -> GPU0)", TransferProbe::Gather(0, gpus, 4 * kGB)},
        {"pairwise ring", TransferProbe::P2pRing(gpus, 4 * kGB)},
        {"all-to-all", TransferProbe::AllToAll(gpus, 4 * kGB)},
    };
    for (const auto& pattern : patterns) {
      const auto r = CheckOk(probe.Run(pattern.ops));
      table.AddRow(
          {name, pattern.label,
           ReportTable::Num(r.aggregate_throughput / kGB, 0),
           r.bottleneck + " (" +
               ReportTable::Num(r.bottleneck_utilization * 100, 0) + "%)"});
    }
  }
  table.Emit();
  return 0;
}
