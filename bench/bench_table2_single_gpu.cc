// Table 2: single-GPU sorting primitives on an NVIDIA A100 sorting 1e9
// 32-bit keys (Thrust / CUB / Stehle MSB radix / MGPU merge sort).
// The kernel durations come from the calibrated cost model; the functional
// algorithms really sort the (scaled) data and the output is verified.

#include <cstdio>

#include "gpusort/device_sort.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/report.h"

using namespace mgs;

namespace {

double RunSingleGpuSort(gpusort::SortAlgo algo) {
  const std::int64_t logical = 1'000'000'000;
  const std::int64_t actual = 1'000'000;
  vgpu::PlatformOptions popts;
  popts.scale = static_cast<double>(logical) / actual;
  auto platform =
      CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), popts));
  auto& dev = platform->device(0);
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(actual, gen);
  vgpu::HostBuffer<std::int32_t> host(keys);
  auto data = CheckOk(dev.Allocate<std::int32_t>(actual));
  auto aux = CheckOk(dev.Allocate<std::int32_t>(actual));
  auto& stream = dev.stream(0);
  // Table 2 times the sort kernel only (no transfers).
  stream.MemcpyHtoDAsync(data, 0, host, 0, actual);
  auto root_upload = [&]() -> sim::Task<void> {
    co_await stream.Synchronize();
  };
  CheckOk(platform->Run(root_upload()).status());
  gpusort::SortAsync(stream, data, 0, actual, aux, algo);
  auto root_sort = [&]() -> sim::Task<void> {
    co_await stream.Synchronize();
  };
  const double duration = CheckOk(platform->Run(root_sort()));
  CheckOk(std::is_sorted(data.begin(), data.end())
              ? Status::OK()
              : Status::Internal("device sort produced unsorted data"));
  return duration;
}

}  // namespace

int main() {
  PrintBanner("Table 2: NVIDIA A100 GPU sorting 1B integers (4 GB)");
  struct Row {
    gpusort::SortAlgo algo;
    const char* type;
    double paper_ms;
  };
  const Row rows[] = {
      {gpusort::SortAlgo::kThrustRadix, "Radix Sort", 36},
      {gpusort::SortAlgo::kCubRadix, "Radix Sort", 36},
      {gpusort::SortAlgo::kStehleMsb, "Radix Sort", 57},
      {gpusort::SortAlgo::kMgpuMerge, "Merge Sort", 200},
  };
  ReportTable table("Table 2: single-GPU primitives, 1e9 int32",
                    {"Algorithm", "Type", "simulated [ms]", "paper [ms]"});
  for (const auto& row : rows) {
    const double ms = RunSingleGpuSort(row.algo) * 1e3;
    table.AddRow({gpusort::SortAlgoToString(row.algo), row.type,
                  ReportTable::Num(ms, 0), ReportTable::Num(row.paper_ms, 0)});
  }
  table.Emit();
  return 0;
}
