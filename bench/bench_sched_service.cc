// Multi-tenant sort service on the DGX A100: a 64-job Poisson stream under
// each queue policy (latency percentiles, queueing delay vs service time,
// aggregate throughput, busiest link), a bit-determinism check (same seed
// and config must replay to the identical makespan and completion order),
// and the PCIe-switch contention experiment — co-scheduled jobs on one
// switch (GPUs 0+1) vs split across switches (GPUs 0+2) vs isolation, the
// Section 4 shared-switch plateau showing up as tenant slowdown.

#include <cstdio>

#include "sched/server.h"
#include "topo/systems.h"
#include "util/report.h"

using namespace mgs;
using namespace mgs::sched;

namespace {

// 2e9 logical keys ride on 1000 actual keys; timings stay paper-scale.
constexpr double kScale = 2e6;

std::unique_ptr<vgpu::Platform> MakeDgx() {
  return CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(),
                                        vgpu::PlatformOptions{kScale}));
}

constexpr int kJobs = 64;
constexpr double kRateHz = 2.0;
constexpr double kSloSeconds = 5.0;

ServiceReport RunPolicy(QueuePolicy policy, std::uint64_t seed) {
  auto platform = MakeDgx();
  ServerOptions options;
  options.policy = policy;
  options.slo_seconds = kSloSeconds;
  SortServer server(platform.get(), options);
  JobMix mix;
  server.Submit(MakePoissonWorkload(mix, kRateHz, kJobs, seed));
  return CheckOk(server.Run());
}

// One job pinned to `gpu`, optionally co-run with a peer pinned to
// `peer_gpu`; returns the gpu-pinned job's service time.
double PinnedServiceTime(int gpu, int peer_gpu) {
  auto platform = MakeDgx();
  SortServer server(platform.get(), ServerOptions{});
  JobSpec spec;
  spec.logical_keys = 2e9;
  spec.gpus = 1;
  spec.pinned_gpus = {gpu};
  server.Submit(spec);
  if (peer_gpu >= 0) {
    spec.pinned_gpus = {peer_gpu};
    server.Submit(spec);
  }
  return CheckOk(server.Run()).jobs[0].service_time();
}

// Kept out of line: GCC 12 emits a spurious -Wuse-after-free when the
// vector size read is inlined next to the report's destructor.
[[gnu::noinline]] int NumJobs(const ServiceReport& report) {
  return static_cast<int>(report.jobs.size());
}

}  // namespace

int main() {
  PrintBanner("Sched service: 64-job Poisson stream on the DGX A100");

  ReportTable policies(
      "Sched: queue policies, 64 jobs @ 2 jobs-s",
      {"policy", "done", "rej", "p50 [s]", "p95 [s]", "p99 [s]",
       "queue mean [s]", "service mean [s]", "Gkeys-s", "makespan [s]",
       "SLO 5s [%]", "busiest link [%]"});
  bool all_completed = true;
  for (QueuePolicy policy : {QueuePolicy::kFifo, QueuePolicy::kSjfBytes,
                             QueuePolicy::kPriority}) {
    const auto report = RunPolicy(policy, /*seed=*/42);
    all_completed &= report.completed + report.rejected == NumJobs(report);
    all_completed &= report.failed == 0;
    const std::string busiest =
        report.links.empty()
            ? "-"
            : report.links[0].name + " " +
                  ReportTable::Num(100 * report.links[0].utilization, 0);
    policies.AddRow({QueuePolicyToString(policy),
                     ReportTable::Num(report.completed, 0),
                     ReportTable::Num(report.rejected, 0),
                     ReportTable::Num(report.latency.p50, 2),
                     ReportTable::Num(report.latency.p95, 2),
                     ReportTable::Num(report.latency.p99, 2),
                     ReportTable::Num(report.queue_delay.mean, 2),
                     ReportTable::Num(report.service_time.mean, 2),
                     ReportTable::Num(report.aggregate_gkeys_per_sec, 2),
                     ReportTable::Num(report.makespan, 2),
                     ReportTable::Num(100 * report.slo_attainment, 0),
                     busiest});
  }
  policies.Emit();
  if (!all_completed) {
    std::fprintf(stderr, "FAIL: jobs failed during the policy sweep\n");
    return 1;
  }

  // Bit-determinism: a fixed seed and config must replay exactly.
  const auto a = RunPolicy(QueuePolicy::kSjfBytes, 42);
  const auto b = RunPolicy(QueuePolicy::kSjfBytes, 42);
  const bool deterministic = a.makespan == b.makespan &&
                             a.completion_order == b.completion_order &&
                             a.latency.p99 == b.latency.p99;
  std::printf("\ndeterminism: %s (makespan %.17g s, %zu-job completion "
              "order %s)\n",
              deterministic ? "OK" : "FAIL", a.makespan,
              a.completion_order.size(),
              deterministic ? "identical" : "DIVERGED");
  if (!deterministic) return 1;

  const double isolated = PinnedServiceTime(0, -1);
  const double shared_switch = PinnedServiceTime(0, 1);   // plx0 sibling
  const double split_switch = PinnedServiceTime(0, 2);    // different switch
  ReportTable contention(
      "Sched: PCIe-switch contention, 2e9-key 1-GPU jobs",
      {"scenario", "GPU0 job [s]", "slowdown x"});
  contention.AddRow({"isolated (GPU0)", ReportTable::Num(isolated, 3),
                     ReportTable::Num(1.0, 2)});
  contention.AddRow({"co-run, shared switch (GPU0+GPU1)",
                     ReportTable::Num(shared_switch, 3),
                     ReportTable::Num(shared_switch / isolated, 2)});
  contention.AddRow({"co-run, split switches (GPU0+GPU2)",
                     ReportTable::Num(split_switch, 3),
                     ReportTable::Num(split_switch / isolated, 2)});
  contention.Emit();

  if (shared_switch < 1.15 * isolated) {
    std::fprintf(stderr,
                 "FAIL: no measurable contention on the shared switch\n");
    return 1;
  }
  if (shared_switch <= split_switch) {
    std::fprintf(stderr,
                 "FAIL: shared-switch co-run should be slower than split\n");
    return 1;
  }
  return 0;
}
