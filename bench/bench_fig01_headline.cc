// Figure 1: sorting 16 GB (4e9 uniform int32 keys) on the DGX A100 —
// CPU (PARADIS) vs one-GPU Thrust vs P2P sort and HET sort on 2/4 GPUs.

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Figure 1: sorting 16 GB on the DGX A100, CPU vs GPUs");
  struct Bar {
    const char* label;
    Algo algo;
    int gpus;
    double paper_s;
  };
  const Bar bars[] = {
      {"PARADIS (CPU)", Algo::kCpuParadis, 0, 2.25},
      {"Thrust (1 GPU)", Algo::kP2p, 1, 1.47},
      {"P2P sort (2 GPUs)", Algo::kP2p, 2, 0.75},
      {"P2P sort (4 GPUs)", Algo::kP2p, 4, 0.45},
      {"HET sort (2 GPUs)", Algo::kHet2n, 2, 1.09},
      {"HET sort (4 GPUs)", Algo::kHet2n, 4, 0.75},
  };
  ReportTable table(
      "Fig 1: 4e9 int32 keys, DGX A100",
      {"configuration", "simulated [s]", "paper [s]", "ratio"});
  for (const auto& bar : bars) {
    SortConfig config;
    config.system = "dgx-a100";
    config.algo = bar.algo;
    config.gpus = bar.gpus;
    config.logical_keys = 4'000'000'000;
    const auto stats = CheckOk(RunMany(config));
    table.AddRow({bar.label, ReportTable::Num(stats.Mean(), 2),
                  ReportTable::Num(bar.paper_s, 2),
                  ReportTable::Num(stats.Mean() / bar.paper_s, 2)});
  }
  table.Emit();
  return 0;
}
