// Shared helper for the Section 4 interconnect benches (Figs. 2-7).

#ifndef MGS_BENCH_TRANSFER_BENCH_UTIL_H_
#define MGS_BENCH_TRANSFER_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "topo/transfer_probe.h"
#include "util/report.h"
#include "util/units.h"

namespace mgs::bench {

inline constexpr double kCopyBytes = 4 * kGB;  // the paper's block size

struct TransferScenario {
  std::string label;
  std::vector<topo::TransferOp> ops;
  double paper_gbs;  // the value the paper's figure reports
};

/// Runs all scenarios on `probe` and emits a table with simulated vs paper
/// throughput.
inline void RunTransferScenarios(const std::string& title,
                                 topo::TransferProbe& probe,
                                 const std::vector<TransferScenario>& list) {
  ReportTable table(title, {"scenario", "simulated [GB/s]", "paper [GB/s]",
                            "ratio", "bottleneck (util)"});
  for (const auto& scenario : list) {
    const auto result = CheckOk(probe.Run(scenario.ops));
    const double gbs = result.aggregate_throughput / kGB;
    table.AddRow({scenario.label, ReportTable::Num(gbs, 1),
                  ReportTable::Num(scenario.paper_gbs, 1),
                  ReportTable::Num(gbs / scenario.paper_gbs, 2),
                  result.bottleneck + " (" +
                      ReportTable::Num(result.bottleneck_utilization * 100,
                                       0) +
                      "%)"});
  }
  table.Emit();
}

}  // namespace mgs::bench

#endif  // MGS_BENCH_TRANSFER_BENCH_UTIL_H_
