// Extension (Section 7 future work): radix-partitioning multi-GPU sort
// with a single all-to-all exchange, vs P2P sort's recursive merge phase.
// The paper predicts this "would highly benefit systems with many
// NVSwitch-interconnected GPUs such as the DGX A100."

#include "benchsuite/suite.h"
#include "core/radix_partition_sort.h"

using namespace mgs;
using namespace mgs::bench;

namespace {

Result<core::SortStats> RunRdx(const std::string& system, int gpus,
                               std::int64_t logical_keys,
                               std::uint64_t seed) {
  const std::int64_t actual =
      std::min<std::int64_t>(logical_keys, ActualKeyCap());
  vgpu::PlatformOptions popts;
  popts.scale = static_cast<double>(logical_keys) / actual;
  MGS_ASSIGN_OR_RETURN(auto topology, topo::MakeSystem(system));
  MGS_ASSIGN_OR_RETURN(auto platform,
                       vgpu::Platform::Create(std::move(topology), popts));
  DataGenOptions gen;
  gen.seed = seed;
  vgpu::HostBuffer<std::int32_t> data(
      GenerateKeys<std::int32_t>(actual, gen));
  core::RadixPartitionOptions options;
  MGS_ASSIGN_OR_RETURN(options.gpu_set,
                       core::ChooseGpuSet(platform->topology(), gpus,
                                          /*for_p2p_merge=*/false));
  MGS_ASSIGN_OR_RETURN(
      auto stats, core::RadixPartitionSort(platform.get(), &data, options));
  if (!std::is_sorted(data.vector().begin(), data.vector().end())) {
    return Status::Internal("RDX sort produced unsorted output");
  }
  return stats;
}

}  // namespace

int main() {
  PrintBanner("Extension: partition-based (RDX) sort vs P2P sort");
  ReportTable table("RDX vs P2P sort (2e9 int32 keys, uniform)",
                    {"system", "GPUs", "P2P sort [s]", "P2P bytes [GB]",
                     "RDX sort [s]", "RDX bytes [GB]", "RDX speedup"});
  struct Case {
    const char* system;
    int gpus;
  };
  for (const Case& c : {Case{"dgx-a100", 2}, Case{"dgx-a100", 4},
                        Case{"dgx-a100", 8}, Case{"ac922", 4},
                        Case{"delta-d22x", 4}}) {
    SortConfig p2p;
    p2p.system = c.system;
    p2p.algo = Algo::kP2p;
    p2p.gpus = c.gpus;
    p2p.logical_keys = 2'000'000'000;
    core::SortStats p2p_last;
    const auto p2p_stats = CheckOk(RunMany(p2p, &p2p_last));

    RunningStats rdx_stats;
    core::SortStats rdx_last;
    for (int r = 0; r < Repeats(); ++r) {
      rdx_last = CheckOk(RunRdx(c.system, c.gpus, 2'000'000'000,
                                42 + static_cast<std::uint64_t>(r)));
      rdx_stats.Add(rdx_last.total_seconds);
    }
    table.AddRow({c.system, std::to_string(c.gpus),
                  ReportTable::Num(p2p_stats.Mean(), 3),
                  ReportTable::Num(p2p_last.p2p_bytes / kGB, 1),
                  ReportTable::Num(rdx_stats.Mean(), 3),
                  ReportTable::Num(rdx_last.p2p_bytes / kGB, 1),
                  ReportTable::Num(p2p_stats.Mean() / rdx_stats.Mean(), 2)});
  }
  table.Emit();
  std::printf(
      "\nSection 7's prediction: fewer exchanged bytes and a flat exchange\n"
      "favor RDX on NVSwitch systems; on partially-connected platforms the\n"
      "all-to-all crosses slow host links and the advantage shrinks.\n");
  return 0;
}
