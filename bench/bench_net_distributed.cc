// Native google-benchmark coverage of the multi-node subsystem (src/net):
// wall-clock cost of building + compiling a cluster fabric and of driving
// the distributed sort end to end. cpu_time feeds the CI perf gate
// (BENCH_net.json vs bench/baselines/net.json); the sim_* counters record
// the *simulated* node-scaling story — throughput grows with nodes at full
// bisection and degrades once the spine is oversubscribed.

#include <benchmark/benchmark.h>

#include "net/cluster.h"
#include "net/distributed_sort.h"
#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "util/datagen.h"
#include "vgpu/platform.h"

using namespace mgs;

namespace {

net::ClusterOptions DeltaCluster(int nodes, int oversub) {
  net::ClusterOptions options;
  options.node_system = "delta-d22x";
  options.nodes = nodes;
  options.nodes_per_rack = 2;
  options.oversubscription = static_cast<double>(oversub);
  return options;
}

void BM_ClusterBuildCompile(benchmark::State& state) {
  // Fabric construction cost: N node systems + leaf/spine, compiled into a
  // fresh flow network (route validation over every GPU pair).
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto cluster = CheckOk(net::BuildCluster(DeltaCluster(nodes, 2)));
    sim::Simulator simulator;
    sim::FlowNetwork network(&simulator);
    CheckOk(cluster.topology->Compile(&network));
    benchmark::DoNotOptimize(cluster.info.total_gpus());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_ClusterBuildCompile)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedSort(benchmark::State& state) {
  // One simulated cluster sort per iteration: node-local P2P sorts, sampled
  // splitters, windowed all-to-all shuffle over NICs/leaf/spine, final
  // node-local merges. Args: {nodes, oversubscription}.
  const int nodes = static_cast<int>(state.range(0));
  const int oversub = static_cast<int>(state.range(1));
  const std::int64_t actual = 1 << 14;  // functional keys
  const double logical = 4e9;           // billed keys (scale model)
  DataGenOptions gen;
  const auto keys = GenerateKeys<std::int32_t>(actual, gen);
  double sim_seconds = 0;
  for (auto _ : state) {
    auto cluster = CheckOk(net::BuildCluster(DeltaCluster(nodes, oversub)));
    auto platform = CheckOk(vgpu::Platform::Create(
        std::move(cluster.topology),
        vgpu::PlatformOptions{logical / static_cast<double>(actual)}));
    vgpu::HostBuffer<std::int32_t> data(keys);
    auto stats = CheckOk(net::DistributedSort<std::int32_t>(
        platform.get(), cluster.info, &data, net::DistSortOptions{}));
    sim_seconds = stats.total_seconds;
    benchmark::ClobberMemory();
  }
  state.counters["sim_seconds"] = sim_seconds;
  state.counters["sim_gkeys_per_s"] = logical / sim_seconds / 1e9;
  state.SetItemsProcessed(state.iterations() * actual);
}
BENCHMARK(BM_DistributedSort)
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
