// Figure 15: sorting large out-of-core data on the DGX A100 with 8 GPUs.
//  (a) HET sort variants: 2n vs 3n buffer schemes, with and without eager
//      merging (both schemes use a 33 GB per-GPU budget as in the paper).
//  (b) the best HET variant (2n, no eager merging) vs CPU-only PARADIS.

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Figure 15: sorting large data on the DGX A100, 8 GPUs");
  const std::vector<std::int64_t> keys{10'000'000'000, 20'000'000'000,
                                       40'000'000'000, 60'000'000'000};
  const double kBudget = 33e9;  // paper: both schemes use 33 GB per GPU

  ReportTable a("Fig 15a: HET sort approaches (8 GPUs, 33 GB/GPU budget)",
                {"keys [1e9]", "3n [s]", "3n+EM [s]", "2n [s]", "2n+EM [s]"});
  for (std::int64_t n : keys) {
    std::vector<std::string> row{KeysLabel(n)};
    for (Algo algo : {Algo::kHet3n, Algo::kHet3nEager, Algo::kHet2n,
                      Algo::kHet2nEager}) {
      SortConfig config;
      config.system = "dgx-a100";
      config.algo = algo;
      config.gpus = 8;
      config.logical_keys = n;
      config.het_gpu_memory_budget = kBudget;
      auto stats = RunMany(config);
      row.push_back(stats.ok() ? ReportTable::Num(stats->Mean(), 2)
                               : std::string("-"));
    }
    a.AddRow(row);
  }
  a.Emit();

  ReportTable b("Fig 15b: HET sort (2n) vs CPU-only PARADIS",
                {"keys [1e9]", "PARADIS [s]", "HET 8 GPUs [s]", "speedup"});
  for (std::int64_t n : keys) {
    SortConfig cpu;
    cpu.system = "dgx-a100";
    cpu.algo = Algo::kCpuParadis;
    cpu.logical_keys = n;
    SortConfig het;
    het.system = "dgx-a100";
    het.algo = Algo::kHet2n;
    het.gpus = 8;
    het.logical_keys = n;
    het.het_gpu_memory_budget = kBudget;
    const auto cpu_stats = CheckOk(RunMany(cpu));
    const auto het_stats = CheckOk(RunMany(het));
    b.AddRow({KeysLabel(n), ReportTable::Num(cpu_stats.Mean(), 2),
              ReportTable::Num(het_stats.Mean(), 2),
              ReportTable::Num(cpu_stats.Mean() / het_stats.Mean(), 2)});
  }
  b.Emit();
  std::printf(
      "\nPaper reference: at 60e9 keys HET sort takes ~10 s (both schemes,\n"
      "no eager merging), eager merging worsens it 1.5-1.75x, and PARADIS\n"
      "takes ~33 s (2.6x slower than HET sort).\n");
  return 0;
}
