// Figure 5: P2P data transfers on the IBM AC922.

#include "topo/systems.h"
#include "transfer_bench_util.h"

using namespace mgs;
using namespace mgs::bench;
using topo::TransferProbe;

int main() {
  PrintBanner("Figure 5: P2P data transfers on the IBM AC922");
  TransferProbe probe(topo::MakeAc922());

  RunTransferScenarios(
      "Fig 5a: serial", probe,
      {
          {"0->1", {TransferProbe::PtoP(0, 1, kCopyBytes)}, 72},
          {"0->2", {TransferProbe::PtoP(0, 2, kCopyBytes)}, 32},
          {"0->3", {TransferProbe::PtoP(0, 3, kCopyBytes)}, 33},
      });

  RunTransferScenarios(
      "Fig 5b: parallel", probe,
      {
          {"0<->1", TransferProbe::P2pRing({0, 1}, kCopyBytes), 145},
          {"2<->3", TransferProbe::P2pRing({2, 3}, kCopyBytes), 145},
          {"0<->3, 1<->2", TransferProbe::P2pRing({0, 1, 2, 3}, kCopyBytes),
           53},
      });
  return 0;
}
