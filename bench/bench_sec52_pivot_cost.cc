// Section 5.2 (in-text): "the pivot selection accounts for 0.03% of the
// total execution time for 2B integers on four GPUs" across the systems.

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Section 5.2: pivot-selection share of the P2P sort runtime");
  ReportTable table("Pivot selection cost (2e9 int32, 4 GPUs)",
                    {"system", "total [s]", "pivot [us]", "share [%]",
                     "paper share [%]"});
  for (const auto& name : topo::SystemNames()) {
    SortConfig config;
    config.system = name;
    config.algo = Algo::kP2p;
    config.gpus = 4;
    config.logical_keys = 2'000'000'000;
    core::SortStats last;
    const auto stats = CheckOk(RunMany(config, &last));
    const double share = last.pivot_seconds / last.total_seconds * 100.0;
    table.AddRow({name, ReportTable::Num(stats.Mean(), 3),
                  ReportTable::Num(last.pivot_seconds * 1e6, 1),
                  ReportTable::Num(share, 4), "0.03"});
  }
  table.Emit();
  return 0;
}
