// Section 6.1.4 (conclusion): GPU-count speedups per system. "On the DGX
// A100 two GPUs are 1.9x and four GPUs 2.9x faster than one"; the AC922
// peaks at two GPUs (1.5x); the DELTA reaches 1.86x / 2.1x. Also checks
// the cross-system claim that the AC922 with two GPUs matches the DGX
// A100 with eight.

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Section 6.1.4: speedup over one GPU (2e9 int32 keys)");
  struct Ref {
    const char* system;
    int gpus;
    double paper_speedup;  // P2P sort vs 1 GPU on the same system
  };
  const Ref refs[] = {
      {"ac922", 2, 1.5},      {"ac922", 4, 0.78},
      {"delta-d22x", 2, 1.86}, {"delta-d22x", 4, 2.1},
      {"dgx-a100", 2, 1.9},   {"dgx-a100", 4, 2.9},
      {"dgx-a100", 8, 3.0},
  };
  ReportTable table("P2P sort speedup vs one GPU",
                    {"system", "GPUs", "simulated", "paper"});
  double base_ac922_2 = 0, base_dgx_8 = 0;
  for (const auto& ref : refs) {
    SortConfig one;
    one.system = ref.system;
    one.algo = Algo::kP2p;
    one.gpus = 1;
    one.logical_keys = 2'000'000'000;
    SortConfig many = one;
    many.gpus = ref.gpus;
    const double t1 = CheckOk(RunMany(one)).Mean();
    const double tg = CheckOk(RunMany(many)).Mean();
    if (std::string(ref.system) == "ac922" && ref.gpus == 2) {
      base_ac922_2 = tg;
    }
    if (std::string(ref.system) == "dgx-a100" && ref.gpus == 8) {
      base_dgx_8 = tg;
    }
    table.AddRow({ref.system, std::to_string(ref.gpus),
                  ReportTable::Num(t1 / tg, 2),
                  ReportTable::Num(ref.paper_speedup, 2)});
  }
  table.Emit();
  std::printf(
      "\nCross-system claim (Section 6.1.4): the AC922 with two GPUs (%.2f s)"
      "\nmatches the DGX A100 with eight (%.2f s) thanks to NVLink 2.0\n"
      "CPU-GPU interconnects.\n",
      base_ac922_2, base_dgx_8);
  return 0;
}
