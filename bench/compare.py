#!/usr/bin/env python3
"""Diff Google-Benchmark JSON output against a committed baseline.

Usage: compare.py BASELINE.json CURRENT.json [--tolerance PCT] [--metric M]

Exits non-zero when any benchmark present in the baseline is slower than
baseline * (1 + tolerance), or has disappeared from the current run (a
silently dropped benchmark must not pass the gate). Benchmarks present only
in the current run are reported but do not affect the verdict: they get a
baseline entry on the next refresh (bench/refresh_baselines.sh).

Tolerance defaults to 25% and can also be set via MGS_BENCH_TOLERANCE
(a plain number, in percent). The compared metric defaults to cpu_time,
which is less sensitive to scheduler noise and VM steal time than
real_time.
"""

import argparse
import json
import os
import signal
import sys


def load_benchmarks(path, role):
    """Returns {name: metric_dict} from a Google-Benchmark JSON file.

    A truncated upload or hand-edited baseline must fail the gate with a
    message naming the broken file, not a traceback: exits 2 on unreadable
    or malformed input.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"compare.py: cannot read {role} {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as e:
        print(f"compare.py: malformed JSON in {role} {path}: {e}",
              file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(doc, dict) or not isinstance(doc.get("benchmarks", []),
                                                   list):
        print(f"compare.py: malformed {role} {path}: expected an object with "
              f"a 'benchmarks' array", file=sys.stderr)
        raise SystemExit(2)
    out = {}
    for b in doc.get("benchmarks", []):
        if not isinstance(b, dict) or "name" not in b:
            print(f"compare.py: malformed {role} {path}: benchmark entry "
                  f"without a name: {b!r}", file=sys.stderr)
            raise SystemExit(2)
        # Skip aggregate rows (mean/median/stddev of --benchmark_repetitions);
        # the gate compares the plain per-benchmark rows.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("MGS_BENCH_TOLERANCE", "25")),
        help="allowed slowdown in percent (default 25, env MGS_BENCH_TOLERANCE)",
    )
    parser.add_argument(
        "--metric",
        default="cpu_time",
        choices=["cpu_time", "real_time"],
        help="which Google-Benchmark time to compare (default cpu_time)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline, "baseline")
    cur = load_benchmarks(args.current, "current run")
    if not base:
        print(f"compare.py: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    band = 1.0 + args.tolerance / 100.0
    regressions = []
    missing = []
    rows = []
    for name in sorted(base):
        b = base[name]
        if name not in cur:
            missing.append(name)
            continue
        c = cur[name]
        if b.get("time_unit", "ns") != c.get("time_unit", "ns"):
            print(f"compare.py: time_unit mismatch for {name}", file=sys.stderr)
            return 2
        bt = float(b[args.metric])
        ct = float(c[args.metric])
        ratio = ct / bt if bt > 0 else float("inf")
        verdict = "OK"
        if ratio > band:
            verdict = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 / band:
            verdict = "faster"
        rows.append((name, bt, ct, ratio, verdict))

    unit = next(iter(base.values())).get("time_unit", "ns")
    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'benchmark':<{width}}  {'base':>12}  {'current':>12}  "
          f"{'ratio':>6}  verdict   [{args.metric}, {unit}, "
          f"tolerance {args.tolerance:g}%]")
    for name, bt, ct, ratio, verdict in rows:
        print(f"{name:<{width}}  {bt:12.0f}  {ct:12.0f}  {ratio:6.2f}  {verdict}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<{width}}  {'-':>12}  "
              f"{float(cur[name][args.metric]):12.0f}  {'-':>6}  new")

    ok = True
    if missing:
        ok = False
        for name in missing:
            print(f"compare.py: baseline benchmark missing from current run: "
                  f"{name}", file=sys.stderr)
    if regressions:
        ok = False
        print(f"compare.py: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:g}%: {', '.join(regressions)}", file=sys.stderr)
    if ok:
        faster = sum(1 for r in rows if r[4] == "faster")
        new = len(set(cur) - set(base))
        summary = f"compare.py: OK — {len(rows)} benchmark(s) within " \
                  f"{args.tolerance:g}% of {os.path.basename(args.baseline)}"
        if faster:
            summary += f", {faster} faster"
        if new:
            summary += f", {new} new"
        print(summary)
    return 0 if ok else 1


if __name__ == "__main__":
    # Die quietly when the output is piped into `head` and the pipe closes.
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
