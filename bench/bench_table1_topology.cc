// Table 1: topology and specification of the evaluated hardware platforms.
// Prints each preset's node/link inventory and a lone-flow bandwidth matrix.

#include <cstdio>

#include "topo/systems.h"
#include "topo/transfer_probe.h"
#include "util/report.h"
#include "util/units.h"

using namespace mgs;

namespace {

void DumpSystem(const std::string& name) {
  topo::TransferProbe probe(CheckOk(topo::MakeSystem(name)));
  const auto& topology = probe.topology();
  std::printf("\n%s\n", topology.Describe().c_str());

  ReportTable matrix("Table 1 (" + name + "): serial P2P bandwidth matrix",
                     [&] {
                       std::vector<std::string> cols{"src\\dst"};
                       for (int g = 0; g < topology.num_gpus(); ++g) {
                         cols.push_back("GPU" + std::to_string(g));
                       }
                       return cols;
                     }());
  for (int a = 0; a < topology.num_gpus(); ++a) {
    std::vector<std::string> row{"GPU" + std::to_string(a)};
    for (int b = 0; b < topology.num_gpus(); ++b) {
      if (a == b) {
        row.push_back("-");
        continue;
      }
      const double bw = CheckOk(topology.LoneFlowBandwidth(
          topo::CopyKind::kPeerToPeer, topo::Endpoint::Gpu(a),
          topo::Endpoint::Gpu(b)));
      row.push_back(ReportTable::Num(bw / kGB, 0));
    }
    matrix.AddRow(row);
  }
  matrix.Emit();

  ReportTable cpugpu("Table 1 (" + name + "): serial CPU-GPU bandwidth",
                     {"GPU", "HtoD [GB/s]", "DtoH [GB/s]"});
  for (int g = 0; g < topology.num_gpus(); ++g) {
    cpugpu.AddRow(
        {"GPU" + std::to_string(g),
         ReportTable::Num(CheckOk(topology.LoneFlowBandwidth(
                              topo::CopyKind::kHostToDevice,
                              topo::Endpoint::HostMemory(0),
                              topo::Endpoint::Gpu(g))) /
                              kGB,
                          1),
         ReportTable::Num(CheckOk(topology.LoneFlowBandwidth(
                              topo::CopyKind::kDeviceToHost,
                              topo::Endpoint::Gpu(g),
                              topo::Endpoint::HostMemory(0))) /
                              kGB,
                          1)});
  }
  cpugpu.Emit();
}

}  // namespace

int main() {
  PrintBanner("Table 1: evaluated hardware platforms");
  for (const auto& name : topo::SystemNames()) DumpSystem(name);
  return 0;
}
