// Section 5.4 (algorithm discussion): the P2P merge phase transfers
// Theta(n/2 * (g-1)) bytes on average for uniform data and O(n * (g-1)) in
// the worst case (reverse-sorted chunks); HET sort transfers nothing
// between GPUs. This bench validates the complexity analysis by counting
// actual exchanged bytes.

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Section 5.4: P2P merge-phase transfer volume");
  const std::int64_t n = 2'000'000'000;  // 8 GB of int32
  ReportTable table(
      "P2P bytes exchanged (2e9 int32 keys, DGX A100)",
      {"GPUs", "uniform [GB]", "theta(n/2*(g-1)) [GB]", "reverse [GB]",
       "O(n*(g-1)) [GB]"});
  for (int g : {2, 4, 8}) {
    SortConfig config;
    config.system = "dgx-a100";
    config.algo = Algo::kP2p;
    config.gpus = g;
    config.logical_keys = n;
    core::SortStats uniform, reverse;
    config.distribution = Distribution::kUniform;
    CheckOk(RunMany(config, &uniform));
    config.distribution = Distribution::kReverseSorted;
    CheckOk(RunMany(config, &reverse));
    const double bytes = static_cast<double>(n) * 4;
    table.AddRow({std::to_string(g),
                  ReportTable::Num(uniform.p2p_bytes / kGB, 1),
                  ReportTable::Num(bytes / 2 * (g - 1) / kGB, 1),
                  ReportTable::Num(reverse.p2p_bytes / kGB, 1),
                  ReportTable::Num(bytes * (g - 1) / kGB, 1)});
  }
  table.Emit();
  std::printf(
      "\nUniform volumes track the average-case bound; reverse-sorted\n"
      "volumes stay within the worst-case bound (stages after the first\n"
      "find partially ordered halves, so the worst case is not tight for\n"
      "g > 2).\n");
  return 0;
}
