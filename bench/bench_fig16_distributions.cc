// Figure 16: sorting 2e9 integers of varying distributions with 2 GPUs on
// the IBM AC922 (uniform / normal / sorted / reverse-sorted / nearly-sorted).

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner(
      "Figure 16: sorting 2e9 keys, varying distributions, AC922, 2 GPUs");
  struct Ref {
    Distribution dist;
    double paper_p2p;
    double paper_het;
  };
  const Ref refs[] = {
      {Distribution::kUniform, 0.24, 0.36},
      {Distribution::kNormal, 0.24, 0.36},
      {Distribution::kSorted, 0.20, 0.35},
      {Distribution::kReverseSorted, 0.26, 0.35},
      {Distribution::kNearlySorted, 0.22, 0.35},
  };
  ReportTable table("Fig 16: distribution sweep (2e9 int32, AC922, 2 GPUs)",
                    {"distribution", "P2P [s]", "paper", "HET [s]", "paper",
                     "P2P bytes [GB]"});
  for (const auto& ref : refs) {
    SortConfig p2p;
    p2p.system = "ac922";
    p2p.algo = Algo::kP2p;
    p2p.gpus = 2;
    p2p.logical_keys = 2'000'000'000;
    p2p.distribution = ref.dist;
    core::SortStats last;
    const auto p2p_stats = CheckOk(RunMany(p2p, &last));
    SortConfig het = p2p;
    het.algo = Algo::kHet2n;
    const auto het_stats = CheckOk(RunMany(het));
    table.AddRow({DistributionToString(ref.dist),
                  ReportTable::Num(p2p_stats.Mean(), 2),
                  ReportTable::Num(ref.paper_p2p, 2),
                  ReportTable::Num(het_stats.Mean(), 2),
                  ReportTable::Num(ref.paper_het, 2),
                  ReportTable::Num(last.p2p_bytes / kGB, 2)});
  }
  table.Emit();
  return 0;
}
