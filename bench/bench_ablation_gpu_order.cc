// Ablation (Section 5.4): the GPU-set *order* matters for P2P sort. On the
// AC922, (0,1,2,3) keeps the pair-wise merge stages on NVLink while
// (0,2,1,3) pushes them across the X-Bus; HET sort is order-insensitive.

#include "benchsuite/suite.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Ablation: GPU set order (Section 5.4)");
  ReportTable table("GPU order, 2e9 int32, AC922, 4 GPUs",
                    {"order", "P2P sort [s]", "HET sort [s]"});
  const std::vector<std::vector<int>> orders{{0, 1, 2, 3}, {0, 2, 1, 3},
                                             {0, 3, 1, 2}};
  for (const auto& order : orders) {
    SortConfig config;
    config.system = "ac922";
    config.logical_keys = 2'000'000'000;
    config.gpu_set = order;
    config.algo = Algo::kP2p;
    const auto p2p = CheckOk(RunMany(config));
    config.algo = Algo::kHet2n;
    const auto het = CheckOk(RunMany(config));
    std::string label;
    for (int g : order) label += std::to_string(g) + " ";
    table.AddRow({label, ReportTable::Num(p2p.Mean(), 3),
                  ReportTable::Num(het.Mean(), 3)});
  }
  table.Emit();

  // The automatic chooser must pick the best of these orders.
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  const auto chosen =
      CheckOk(core::ChooseGpuSet(platform->topology(), 4, true));
  std::string label;
  for (int g : chosen) label += std::to_string(g) + " ";
  std::printf("\nChooseGpuSet(ac922, 4, p2p) = %s\n", label.c_str());
  return 0;
}
