// Section 6 "CPU Sort Baseline": PARADIS vs library sorting primitives.
// Reports (a) the calibrated PARADIS rates per system and (b) real
// wall-clock measurements of our CPU substrate implementations on *this*
// machine (std::sort, LSB radix, PARADIS-style, merge sort), which
// reproduce the qualitative ranking (radix sorts beat comparison sorts).

#include <algorithm>
#include <chrono>

#include "cpusort/cpusort.h"
#include "topo/systems.h"
#include "util/datagen.h"
#include "util/report.h"
#include "util/thread_pool.h"
#include "util/units.h"

using namespace mgs;

namespace {

template <typename F>
double TimeIt(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  PrintBanner("CPU sort baselines (Section 6)");

  ReportTable rates("Calibrated PARADIS rates (paper hosts)",
                    {"system", "CPU", "rate [Gkeys/s, int32]",
                     "2e9 keys [s]"});
  for (const auto& name : topo::SystemNames()) {
    auto topology = CheckOk(topo::MakeSystem(name));
    const auto& cpu = topology->cpu_spec();
    rates.AddRow({name, cpu.model,
                  ReportTable::Num(cpu.paradis_rate_32 / 1e9, 2),
                  ReportTable::Num(2e9 / cpu.paradis_rate_32, 2)});
  }
  rates.Emit();

  const std::int64_t n = 4'000'000;
  DataGenOptions gen;
  auto base = GenerateKeys<std::int32_t>(n, gen);
  ThreadPool pool;
  ReportTable local(
      "Real wall-clock of our CPU substrate (this machine, " +
          std::to_string(pool.num_threads()) + " threads, 4e6 int32)",
      {"algorithm", "time [ms]", "Mkeys/s"});

  auto report = [&](const char* label, auto&& fn) {
    auto data = base;
    const double secs = TimeIt([&] { fn(data); });
    CheckOk(std::is_sorted(data.begin(), data.end())
                ? Status::OK()
                : Status::Internal(std::string(label) + " failed to sort"));
    local.AddRow({label, ReportTable::Num(secs * 1e3, 1),
                  ReportTable::Num(static_cast<double>(n) / secs / 1e6, 1)});
  };
  report("std::sort", [](auto& d) { std::sort(d.begin(), d.end()); });
  report("LSB radix sort", [&](auto& d) {
    std::vector<std::int32_t> aux(d.size());
    cpusort::LsbRadixSort(d.data(), aux.data(),
                          static_cast<std::int64_t>(d.size()), &pool);
  });
  report("PARADIS (in-place MSD radix)", [&](auto& d) {
    cpusort::ParadisSort(d.data(), static_cast<std::int64_t>(d.size()),
                         &pool);
  });
  report("merge sort", [&](auto& d) {
    std::vector<std::int32_t> aux(d.size());
    cpusort::MergeSort(d.data(), aux.data(),
                       static_cast<std::int64_t>(d.size()), &pool);
  });
  report("sample sort (gnu_parallel-class)", [&](auto& d) {
    std::vector<std::int32_t> aux(d.size());
    cpusort::SampleSort(d.data(), aux.data(),
                        static_cast<std::int64_t>(d.size()), &pool);
  });
  local.Emit();
  return 0;
}
