// Section 5.2 (in-text): device-local copies vs P2P transfers. The paper
// measures local copies 3x faster than NVLink 3.0, 5x faster than 3x
// NVLink 2.0, and 42x faster than PCIe 3.0 (host-traversing).

#include "topo/systems.h"
#include "topo/transfer_probe.h"
#include "util/report.h"
#include "util/units.h"

using namespace mgs;
using topo::TransferProbe;

namespace {

void Run(const std::string& system, int src, int dst, double paper_ratio,
         const char* interconnect, ReportTable* table) {
  TransferProbe probe(CheckOk(topo::MakeSystem(system)));
  const double bytes = 4 * kGB;
  const auto local = CheckOk(probe.Run({TransferProbe::DtoD(src, bytes)}));
  const auto p2p = CheckOk(probe.Run({TransferProbe::PtoP(src, dst, bytes)}));
  const double ratio =
      local.aggregate_throughput / p2p.aggregate_throughput;
  table->AddRow(
      {system, interconnect,
       ReportTable::Num(local.aggregate_throughput / kGB, 0),
       ReportTable::Num(p2p.aggregate_throughput / kGB, 0),
       ReportTable::Num(ratio, 1), ReportTable::Num(paper_ratio, 1)});
}

}  // namespace

int main() {
  PrintBanner("Section 5.2: device-local copy vs P2P transfer");
  ReportTable table("Device-local copy vs P2P (4 GB)",
                    {"system", "P2P interconnect", "local [GB/s]",
                     "P2P [GB/s]", "ratio", "paper ratio"});
  Run("dgx-a100", 0, 1, 3.0, "NVLink 3.0 (NVSwitch)", &table);
  Run("ac922", 0, 1, 5.0, "3x NVLink 2.0", &table);
  Run("delta-d22x", 0, 3, 42.0, "PCIe 3.0 (host-traversing)", &table);
  table.Emit();
  return 0;
}
