// Figure 6: P2P data transfers on the DELTA D22x.

#include "topo/systems.h"
#include "transfer_bench_util.h"

using namespace mgs;
using namespace mgs::bench;
using topo::TransferProbe;

int main() {
  PrintBanner("Figure 6: P2P data transfers on the DELTA D22x");
  TransferProbe probe(topo::MakeDeltaD22x());

  RunTransferScenarios(
      "Fig 6a: serial", probe,
      {
          {"0->1", {TransferProbe::PtoP(0, 1, kCopyBytes)}, 48},
          {"0->2", {TransferProbe::PtoP(0, 2, kCopyBytes)}, 48},
          {"0->3 (host-traversing)", {TransferProbe::PtoP(0, 3, kCopyBytes)},
           9},
      });

  RunTransferScenarios(
      "Fig 6b: parallel", probe,
      {
          {"0<->1", TransferProbe::P2pRing({0, 1}, kCopyBytes), 97},
          {"2<->3", TransferProbe::P2pRing({2, 3}, kCopyBytes), 97},
          {"0<->3, 1<->2", TransferProbe::P2pRing({0, 1, 2, 3}, kCopyBytes),
           30},
      });
  return 0;
}
