#!/usr/bin/env bash
# Refreshes bench/baselines/*.json after an intentional performance change.
# One command: ./bench/refresh_baselines.sh [build-dir]
# Builds the three native benchmarks in Release mode and overwrites the
# committed baselines with fresh measurements from this machine. Commit the
# result together with the change that moved the numbers.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j --target bench_native_cpu_primitives \
  bench_native_simulator bench_net_distributed bench_exec_overlap \
  bench_sched_trace bench_sec63_strings

# Older libbenchmark releases only accept a plain double for
# --benchmark_min_time; newer ones also take a "0.4s" suffix form. The
# plain form works everywhere.
"./$BUILD/bench/bench_native_cpu_primitives" \
  --benchmark_min_time=0.4 \
  --benchmark_out=bench/baselines/cpu.json --benchmark_out_format=json
"./$BUILD/bench/bench_native_simulator" \
  --benchmark_min_time=0.4 \
  --benchmark_out=bench/baselines/sim.json --benchmark_out_format=json
"./$BUILD/bench/bench_net_distributed" \
  --benchmark_min_time=0.4 \
  --benchmark_out=bench/baselines/net.json --benchmark_out_format=json
"./$BUILD/bench/bench_exec_overlap" \
  --benchmark_min_time=0.4 \
  --benchmark_out=bench/baselines/exec.json --benchmark_out_format=json
# The million-job run is excluded here and in CI: same code path as the
# 10^5 smoke, 10x the wall time. Run it by hand for acceptance numbers.
"./$BUILD/bench/bench_sched_trace" \
  --benchmark_min_time=0.4 \
  --benchmark_filter=-BM_ServiceTraceMillion \
  --benchmark_out=bench/baselines/sched.json --benchmark_out_format=json
"./$BUILD/bench/bench_sec63_strings" \
  --benchmark_min_time=0.4 \
  --benchmark_out=bench/baselines/keys.json --benchmark_out_format=json

echo "Refreshed bench/baselines/{cpu,sim,net,exec,sched,keys}.json — review and commit."
