// Native google-benchmark microbenchmarks of string- and record-key sorting
// on *this* machine's CPU: what the 8-byte normalized-key prefix buys over
// full string comparison, and what the radix prefix-tie fix-up costs on
// adversarial shared-prefix data. Extends the Section 6.3 datatype study
// beyond fixed-width numerics; gated in CI against
// bench/baselines/keys.json via bench/compare.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/keygen.h"
#include "core/record.h"
#include "core/string_key.h"
#include "cpusort/cpusort.h"
#include "util/datagen.h"
#include "util/thread_pool.h"

using namespace mgs;
using core::SortRecord;
using core::StringArena;
using core::StringKey;

namespace {

std::vector<StringKey> MakeStringKeys(std::int64_t n, Distribution dist,
                                      StringArena* arena) {
  DataGenOptions options;
  options.distribution = dist;
  return core::GenerateStringKeys(n, options, arena);
}

/// Baseline without normalized keys: sorting the strings themselves, full
/// lexicographic comparison on every pair.
void BM_StdStringSort(benchmark::State& state) {
  StringArena arena;
  const auto keys =
      MakeStringKeys(state.range(0), Distribution::kUniform, &arena);
  std::vector<std::string> base;
  base.reserve(keys.size());
  for (const auto& k : keys) base.emplace_back(k.view());
  for (auto _ : state) {
    auto data = base;
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdStringSort)->Arg(1 << 16)->Arg(1 << 18);

/// The same multiset as 24-byte StringKeys: the prefix settles nearly all
/// comparisons with one integer compare.
void BM_StringKeyStdSort(benchmark::State& state) {
  StringArena arena;
  const auto base =
      MakeStringKeys(state.range(0), Distribution::kUniform, &arena);
  for (auto _ : state) {
    auto data = base;
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StringKeyStdSort)->Arg(1 << 16)->Arg(1 << 18);

/// Radix on the prefix digits plus the comparison fix-up for equal-prefix
/// runs (kPrefixOnly traits).
void BM_StringKeyParadis(benchmark::State& state) {
  StringArena arena;
  const auto base =
      MakeStringKeys(state.range(0), Distribution::kUniform, &arena);
  ThreadPool pool;
  for (auto _ : state) {
    auto data = base;
    cpusort::ParadisSort(data.data(), state.range(0), &pool);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StringKeyParadis)->Arg(1 << 16)->Arg(1 << 18);

/// Adversarial case for the fix-up pass: URL-like keys share long domain
/// prefixes, so most pairs tie on the 8-byte prefix and the cold path runs.
void BM_StringKeyParadisSharedPrefix(benchmark::State& state) {
  StringArena arena;
  const auto base =
      MakeStringKeys(state.range(0), Distribution::kNearlySorted, &arena);
  ThreadPool pool;
  for (auto _ : state) {
    auto data = base;
    cpusort::ParadisSort(data.data(), state.range(0), &pool);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StringKeyParadisSharedPrefix)->Arg(1 << 16);

std::vector<SortRecord> MakeRecords(std::int64_t n) {
  DataGenOptions options;
  return core::GenerateRecords(n, options);
}

/// Multi-column records on the composed (a, b) normalized key.
void BM_RecordStdSort(benchmark::State& state) {
  const auto base = MakeRecords(state.range(0));
  for (auto _ : state) {
    auto data = base;
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordStdSort)->Arg(1 << 16)->Arg(1 << 18);

void BM_RecordParadis(benchmark::State& state) {
  const auto base = MakeRecords(state.range(0));
  ThreadPool pool;
  for (auto _ : state) {
    auto data = base;
    cpusort::ParadisSort(data.data(), state.range(0), &pool);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordParadis)->Arg(1 << 16)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
