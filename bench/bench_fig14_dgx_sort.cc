// Figure 14: multi-GPU sort performance on the DGX A100 — P2P sort and
// HET sort scaling (1/2/4/8 GPUs) and the phase breakdown at 2e9 keys.

#include "sort_bench_util.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Figure 14: multi-GPU sort performance on the DGX A100");
  const std::vector<int> gpus{1, 2, 4, 8};
  const std::vector<std::int64_t> keys{
      1'000'000'000, 2'000'000'000, 4'000'000'000, 8'000'000'000,
      16'000'000'000};
  RunSortFigure("Fig 14a", "dgx-a100", Algo::kP2p, gpus, keys,
                {{1, 0.72}, {2, 0.38}, {4, 0.25}, {8, 0.24}});
  RunSortFigure("Fig 14b", "dgx-a100", Algo::kHet2n, gpus, keys,
                {{1, 0.72}, {2, 0.56}, {4, 0.39}, {8, 0.37}});
  return 0;
}
