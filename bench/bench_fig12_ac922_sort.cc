// Figure 12: multi-GPU sort performance on the IBM AC922 — P2P sort and
// HET sort scaling with data size (1/2/4 GPUs) and the phase breakdown at
// 2e9 uniform int32 keys.

#include "sort_bench_util.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Figure 12: multi-GPU sort performance on the IBM AC922");
  const std::vector<int> gpus{1, 2, 4};
  const std::vector<std::int64_t> keys{500'000'000, 1'000'000'000,
                                       2'000'000'000, 4'000'000'000,
                                       8'000'000'000};
  RunSortFigure("Fig 12a", "ac922", Algo::kP2p, gpus, keys,
                {{1, 0.35}, {2, 0.24}, {4, 0.45}});
  RunSortFigure("Fig 12b", "ac922", Algo::kHet2n, gpus, keys,
                {{1, 0.35}, {2, 0.35}, {4, 0.45}});
  return 0;
}
