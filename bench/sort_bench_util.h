// Shared helper for the multi-GPU sorting figures (Figs. 12-14): scaling
// curves over the key count plus the phase breakdown at 2e9 keys.

#ifndef MGS_BENCH_SORT_BENCH_UTIL_H_
#define MGS_BENCH_SORT_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "benchsuite/suite.h"

namespace mgs::bench {

struct BreakdownRef {
  int gpus;
  double paper_total_s;  // figure's bar total at 2e9 keys
};

/// Emits (a) sort duration vs number of keys for each GPU count and (b) the
/// HtoD/Sort/Merge/DtoH breakdown at 2e9 keys, with the paper's totals.
inline void RunSortFigure(const std::string& figure,
                          const std::string& system, Algo algo,
                          const std::vector<int>& gpu_counts,
                          const std::vector<std::int64_t>& key_counts,
                          const std::vector<BreakdownRef>& refs) {
  // Scaling curves. A configuration is skipped when the data exceeds the
  // GPU set's memory (paper curves stop there too).
  ReportTable curve(figure + " (top): " + AlgoToString(algo) +
                        " scaling on " + system,
                    [&] {
                      std::vector<std::string> cols{"keys [1e9]"};
                      for (int g : gpu_counts) {
                        cols.push_back(std::to_string(g) +
                                       (g == 1 ? " GPU [s]" : " GPUs [s]"));
                      }
                      return cols;
                    }());
  for (std::int64_t n : key_counts) {
    std::vector<std::string> row{KeysLabel(n)};
    for (int g : gpu_counts) {
      SortConfig config;
      config.system = system;
      config.algo = algo;
      config.gpus = g;
      config.logical_keys = n;
      auto stats = RunMany(config);
      row.push_back(stats.ok() ? ReportTable::Num(stats->Mean(), 2)
                               : std::string("-"));
    }
    curve.AddRow(row);
  }
  curve.Emit();

  // Phase breakdown at 2e9 keys.
  ReportTable breakdown(
      figure + " (bottom): breakdown at 2e9 keys, " + AlgoToString(algo) +
          ", " + system,
      {"GPUs", "HtoD [s]", "Sort [s]", "Merge [s]", "DtoH [s]", "total [s]",
       "paper total [s]"});
  for (const auto& ref : refs) {
    SortConfig config;
    config.system = system;
    config.algo = algo;
    config.gpus = ref.gpus;
    config.logical_keys = 2'000'000'000;
    core::SortStats last;
    auto stats = RunMany(config, &last);
    if (!stats.ok()) continue;
    breakdown.AddRow({std::to_string(ref.gpus),
                      ReportTable::Num(last.phases.htod, 3),
                      ReportTable::Num(last.phases.sort, 3),
                      ReportTable::Num(last.phases.merge, 3),
                      ReportTable::Num(last.phases.dtoh, 3),
                      ReportTable::Num(stats->Mean(), 2),
                      ReportTable::Num(ref.paper_total_s, 2)});
  }
  breakdown.Emit();
}

}  // namespace mgs::bench

#endif  // MGS_BENCH_SORT_BENCH_UTIL_H_
