// Figure 2: CPU-GPU data transfers on the IBM AC922 (serial and parallel
// HtoD / DtoH / bidirectional, 4 GB per stream, pinned memory, NUMA 0).

#include "topo/systems.h"
#include "transfer_bench_util.h"

using namespace mgs;
using namespace mgs::bench;
using topo::TransferProbe;

int main() {
  PrintBanner("Figure 2: CPU-GPU data transfers on the IBM AC922");
  TransferProbe probe(topo::MakeAc922());

  RunTransferScenarios(
      "Fig 2a: serial", probe,
      {
          {"{0,1} HtoD", {TransferProbe::HtoD(0, kCopyBytes)}, 72},
          {"{0,1} DtoH", {TransferProbe::DtoH(0, kCopyBytes)}, 72},
          {"{0,1} HtoD/DtoH", TransferProbe::Bidirectional({0}, kCopyBytes),
           127},
          {"{2,3} HtoD", {TransferProbe::HtoD(2, kCopyBytes)}, 41},
          {"{2,3} DtoH", {TransferProbe::DtoH(2, kCopyBytes)}, 35},
          {"{2,3} HtoD/DtoH", TransferProbe::Bidirectional({2}, kCopyBytes),
           65},
      });

  RunTransferScenarios(
      "Fig 2b: parallel", probe,
      {
          {"(0,1) HtoD",
           {TransferProbe::HtoD(0, kCopyBytes),
            TransferProbe::HtoD(1, kCopyBytes)},
           141},
          {"(0,1) DtoH",
           {TransferProbe::DtoH(0, kCopyBytes),
            TransferProbe::DtoH(1, kCopyBytes)},
           109},
          {"(0,1) HtoD/DtoH", TransferProbe::Bidirectional({0, 1}, kCopyBytes),
           136},
          {"(2,3) HtoD",
           {TransferProbe::HtoD(2, kCopyBytes),
            TransferProbe::HtoD(3, kCopyBytes)},
           39},
          {"(2,3) DtoH",
           {TransferProbe::DtoH(2, kCopyBytes),
            TransferProbe::DtoH(3, kCopyBytes)},
           30},
          {"(2,3) HtoD/DtoH", TransferProbe::Bidirectional({2, 3}, kCopyBytes),
           54},
          {"(0,1,2,3) HtoD",
           {TransferProbe::HtoD(0, kCopyBytes),
            TransferProbe::HtoD(1, kCopyBytes),
            TransferProbe::HtoD(2, kCopyBytes),
            TransferProbe::HtoD(3, kCopyBytes)},
           74},
          {"(0,1,2,3) DtoH",
           {TransferProbe::DtoH(0, kCopyBytes),
            TransferProbe::DtoH(1, kCopyBytes),
            TransferProbe::DtoH(2, kCopyBytes),
            TransferProbe::DtoH(3, kCopyBytes)},
           54},
          {"(0,1,2,3) HtoD/DtoH",
           TransferProbe::Bidirectional({0, 1, 2, 3}, kCopyBytes), 98},
      });
  return 0;
}
