// Extension: transfer-size sweep (Pearson et al.-style CUDA-primitive
// characterization). The paper uses 4 GB blocks where bandwidth dominates;
// below ~1 MB the launch + wire latency takes over. Prints the classic
// throughput-vs-size curve and the half-bandwidth point per interconnect.

#include <cstdio>

#include "topo/systems.h"
#include "topo/transfer_probe.h"
#include "util/report.h"
#include "util/units.h"

using namespace mgs;
using topo::TransferProbe;

namespace {

void Sweep(const std::string& system, topo::TransferOp (*make)(int, int,
                                                               double),
           int a, int b, const char* what) {
  TransferProbe probe(CheckOk(topo::MakeSystem(system)));
  ReportTable table("Size sweep: " + system + " " + what,
                    {"size", "throughput [GB/s]", "peak fraction"});
  // Peak = throughput at 4 GB.
  const double peak =
      CheckOk(probe.Run({make(a, b, 4 * kGB)})).aggregate_throughput;
  for (double size = 64e3; size <= 4e9; size *= 8) {
    const auto r = CheckOk(probe.Run({make(a, b, size)}));
    table.AddRow({FormatBytes(size),
                  ReportTable::Num(r.aggregate_throughput / kGB, 2),
                  ReportTable::Num(r.aggregate_throughput / peak, 2)});
  }
  table.Emit();
}

topo::TransferOp MakeHtoD(int, int gpu, double bytes) {
  return TransferProbe::HtoD(gpu, bytes);
}
topo::TransferOp MakePtoP(int a, int b, double bytes) {
  return TransferProbe::PtoP(a, b, bytes);
}

}  // namespace

int main() {
  PrintBanner("Extension: transfer-size sweep (latency vs bandwidth)");
  Sweep("dgx-a100", MakeHtoD, 0, 0, "HtoD (PCIe 4.0)");
  Sweep("dgx-a100", MakePtoP, 0, 1, "P2P (NVSwitch)");
  Sweep("ac922", MakePtoP, 0, 1, "P2P (3x NVLink 2.0)");
  Sweep("delta-d22x", MakePtoP, 0, 3, "P2P (host-traversing PCIe 3.0)");
  std::printf(
      "\nNote: wire latencies are per-hop (calibration.h); the paper's 4 GB\n"
      "experiments sit on the bandwidth plateau, so these latencies do not\n"
      "affect any reproduced figure.\n");
  return 0;
}
