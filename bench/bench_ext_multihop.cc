// Extension (Section 7 future work): multi-hop P2P routing. "Data
// transfers are redirected to their destination over multiple GPUs instead
// of traversing the host-side via PCIe 3.0. However, this strategy is
// limited to systems where multi-hop traversals can benefit from
// high-speed interconnects (e.g., DELTA D22x)."

#include "benchsuite/suite.h"
#include "topo/transfer_probe.h"

using namespace mgs;
using namespace mgs::bench;

namespace {

double RunP2pSort(const std::string& system, bool multihop) {
  auto topology = CheckOk(topo::MakeSystem(system));
  topology->SetMultihopP2p(multihop);
  auto platform = CheckOk(vgpu::Platform::Create(
      std::move(topology), vgpu::PlatformOptions{2000.0}));
  DataGenOptions gen;
  auto keys = GenerateKeys<std::int32_t>(1'000'000, gen);  // 2e9 logical
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  core::SortOptions options;
  options.gpu_set =
      CheckOk(core::ChooseGpuSet(platform->topology(), 4, true));
  return CheckOk(core::P2pSort(platform.get(), &data, options))
      .total_seconds;
}

}  // namespace

int main() {
  PrintBanner("Extension: multi-hop P2P routing (Section 7)");

  ReportTable transfers("Serial P2P with and without multi-hop (4 GB)",
                        {"system", "pair", "host route [GB/s]",
                         "multi-hop [GB/s]"});
  struct Pair {
    const char* system;
    int src, dst;
  };
  for (const Pair& p :
       {Pair{"delta-d22x", 0, 3}, Pair{"delta-d22x", 1, 2},
        Pair{"ac922", 0, 2}}) {
    auto base_topo = CheckOk(topo::MakeSystem(p.system));
    topo::TransferProbe base(std::move(base_topo));
    auto multi_topo = CheckOk(topo::MakeSystem(p.system));
    multi_topo->SetMultihopP2p(true);
    topo::TransferProbe multi(std::move(multi_topo));
    const auto b = CheckOk(
        base.Run({topo::TransferProbe::PtoP(p.src, p.dst, 4 * kGB)}));
    const auto m = CheckOk(
        multi.Run({topo::TransferProbe::PtoP(p.src, p.dst, 4 * kGB)}));
    transfers.AddRow(
        {p.system, std::to_string(p.src) + "->" + std::to_string(p.dst),
         ReportTable::Num(b.aggregate_throughput / kGB, 1),
         ReportTable::Num(m.aggregate_throughput / kGB, 1)});
  }
  transfers.Emit();

  ReportTable sort("P2P sort, 2e9 int32 keys, 4 GPUs",
                   {"system", "host routing [s]", "multi-hop [s]",
                    "speedup"});
  for (const char* system : {"delta-d22x", "ac922"}) {
    const double base = RunP2pSort(system, false);
    const double multi = RunP2pSort(system, true);
    sort.AddRow({system, ReportTable::Num(base, 3),
                 ReportTable::Num(multi, 3),
                 ReportTable::Num(base / multi, 2)});
  }
  sort.Emit();
  return 0;
}
