// Extension (Section 7 open question): is a P2P-based GPU merge suitable
// for large out-of-core data? HYB sort merges each chunk group on the GPUs
// (one run per group) before the final CPU merge; HET sort ships raw
// sorted chunks (c*g sublists). Compared on all three systems.

#include "benchsuite/suite.h"
#include "core/hybrid_sort.h"

using namespace mgs;
using namespace mgs::bench;

namespace {

Result<core::SortStats> RunHybrid(const std::string& system, int gpus,
                                  std::int64_t logical_keys, double budget,
                                  std::uint64_t seed) {
  const std::int64_t actual =
      std::min<std::int64_t>(logical_keys, ActualKeyCap());
  vgpu::PlatformOptions popts;
  popts.scale = static_cast<double>(logical_keys) / actual;
  MGS_ASSIGN_OR_RETURN(auto topology, topo::MakeSystem(system));
  MGS_ASSIGN_OR_RETURN(auto platform,
                       vgpu::Platform::Create(std::move(topology), popts));
  DataGenOptions gen;
  gen.seed = seed;
  vgpu::HostBuffer<std::int32_t> data(
      GenerateKeys<std::int32_t>(actual, gen));
  core::HybridOptions options;
  MGS_ASSIGN_OR_RETURN(options.gpu_set,
                       core::ChooseGpuSet(platform->topology(), gpus, true));
  options.gpu_memory_budget = budget;
  MGS_ASSIGN_OR_RETURN(auto stats,
                       core::HybridSort(platform.get(), &data, options));
  if (!std::is_sorted(data.vector().begin(), data.vector().end())) {
    return Status::Internal("HYB sort produced unsorted output");
  }
  return stats;
}

}  // namespace

int main() {
  PrintBanner("Extension: P2P group merge for large data (HYB vs HET)");
  struct Case {
    const char* system;
    int gpus;
  };
  const double kBudget = 33e9;
  for (const Case& c :
       {Case{"dgx-a100", 8}, Case{"ac922", 2}, Case{"delta-d22x", 4}}) {
    ReportTable table(
        std::string("HYB vs HET, large data, ") + c.system + ", " +
            std::to_string(c.gpus) + " GPUs",
        {"keys [1e9]", "HET 2n [s]", "HET sublists", "HYB [s]",
         "HYB runs", "HYB speedup"});
    for (std::int64_t n : {10'000'000'000LL, 20'000'000'000LL,
                           40'000'000'000LL, 60'000'000'000LL}) {
      SortConfig het;
      het.system = c.system;
      het.algo = Algo::kHet2n;
      het.gpus = c.gpus;
      het.logical_keys = n;
      het.het_gpu_memory_budget = kBudget;
      core::SortStats het_last;
      const auto het_stats = CheckOk(RunMany(het, &het_last));

      RunningStats hyb_stats;
      core::SortStats hyb_last;
      for (int r = 0; r < Repeats(); ++r) {
        hyb_last = CheckOk(RunHybrid(c.system, c.gpus, n, kBudget,
                                     42 + static_cast<std::uint64_t>(r)));
        hyb_stats.Add(hyb_last.total_seconds);
      }
      table.AddRow({KeysLabel(n), ReportTable::Num(het_stats.Mean(), 2),
                    std::to_string(het_last.final_merge_sublists),
                    ReportTable::Num(hyb_stats.Mean(), 2),
                    std::to_string(hyb_last.final_merge_sublists),
                    ReportTable::Num(het_stats.Mean() / hyb_stats.Mean(), 2)});
    }
    table.Emit();
  }
  std::printf(
      "\nAnswer to Section 7's open question: mixed. On the DGX A100 the\n"
      "P2P group merge wins decisively while the data fits few groups\n"
      "(up to 1.8x) and still edges out HET at 60e9 keys. But HYB's\n"
      "group-synchronous structure gives up HET's bidirectional transfer\n"
      "pipelining, so on the AC922 it ties (-5%%) and over PCIe 3.0 it\n"
      "clearly loses: a production design would need to overlap the P2P\n"
      "merge of group r with the transfers of group r+1.\n");
  return 0;
}
