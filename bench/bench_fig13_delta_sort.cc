// Figure 13: multi-GPU sort performance on the DELTA D22x — P2P sort and
// HET sort scaling (1/2/4 GPUs) and the phase breakdown at 2e9 keys.

#include "sort_bench_util.h"

using namespace mgs;
using namespace mgs::bench;

int main() {
  PrintBanner("Figure 13: multi-GPU sort performance on the DELTA D22x");
  const std::vector<int> gpus{1, 2, 4};
  const std::vector<std::int64_t> keys{500'000'000, 1'000'000'000,
                                       2'000'000'000, 4'000'000'000,
                                       8'000'000'000};
  RunSortFigure("Fig 13a", "delta-d22x", Algo::kP2p, gpus, keys,
                {{1, 1.37}, {2, 0.74}, {4, 0.64}});
  RunSortFigure("Fig 13b", "delta-d22x", Algo::kHet2n, gpus, keys,
                {{1, 1.37}, {2, 0.90}, {4, 0.64}});
  return 0;
}
