// Native benchmark for the task-graph executor (src/exec): single-tenant
// parity and multi-tenant overlap.
//
// Each benchmark runs the full multi-tenant sort service on a simulated
// DGX A100 twice — once with the phase-barrier oracle, once with the graph
// executor — and reports the *simulated* makespans as counters:
//
//   makespan_phase   barrier-path makespan (simulated seconds)
//   makespan_graph   graph-path makespan (simulated seconds)
//   overlap_gain     makespan_phase / makespan_graph
//
// The measured wall time gates executor overhead like every other native
// bench (bench/compare.py vs bench/baselines/exec.json); the CI perf gate
// additionally asserts overlap_gain >= 1.15 at 4 concurrent tenants — the
// acceptance bar for retiring the phase barriers (ISSUE 8).

#include <benchmark/benchmark.h>

#include "sched/server.h"
#include "topo/systems.h"
#include "vgpu/platform.h"

using namespace mgs;

namespace {

// 2e9 logical keys per tenant at scale 2e6 -> 1000 actual keys: big enough
// that copies dominate (the regime where barriers hurt), small enough that
// one benchmark iteration stays in the milliseconds.
constexpr double kScale = 2e6;

double RunService(core::ExecMode mode, int tenants) {
  auto platform = CheckOk(vgpu::Platform::Create(
      topo::MakeDgxA100(), vgpu::PlatformOptions{kScale}));
  sched::ServerOptions options;
  options.exec_mode = mode;
  options.allow_gpu_sharing = true;
  sched::SortServer server(platform.get(), options);
  for (int i = 0; i < tenants; ++i) {
    sched::JobSpec spec;
    // Near-simultaneous arrivals: all tenants contend for the same pair.
    spec.arrival_seconds = 0.002 * i;
    spec.logical_keys = 2e9;
    spec.gpus = 2;
    spec.pinned_gpus = {0, 1};
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    server.Submit(spec);
  }
  return CheckOk(server.Run()).makespan;
}

void ReportMakespans(benchmark::State& state, double phase, double graph) {
  state.counters["makespan_phase"] = phase;
  state.counters["makespan_graph"] = graph;
  state.counters["overlap_gain"] = graph > 0 ? phase / graph : 0;
}

// One tenant: no cross-job overlap exists, so graph execution must match
// the barrier path (gain ~1.0). Guards against the executor itself adding
// latency.
void BM_ExecSingleTenantParity(benchmark::State& state) {
  double phase = 0, graph = 0;
  for (auto _ : state) {
    phase = RunService(core::ExecMode::kPhased, 1);
    graph = RunService(core::ExecMode::kGraph, 1);
    benchmark::DoNotOptimize(graph);
  }
  ReportMakespans(state, phase, graph);
}
BENCHMARK(BM_ExecSingleTenantParity);

// N tenants sharing one GPU pair: the barrier path funnels every tenant
// through the same per-device streams 0-2, so one tenant's queued op
// head-of-line blocks the next tenant's independent work; the graph path
// gives each job a disjoint stream range and interleaves ready nodes
// work-conserving across all tenants.
void BM_ExecOverlapTenants(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  double phase = 0, graph = 0;
  for (auto _ : state) {
    phase = RunService(core::ExecMode::kPhased, tenants);
    graph = RunService(core::ExecMode::kGraph, tenants);
    benchmark::DoNotOptimize(graph);
  }
  ReportMakespans(state, phase, graph);
}
BENCHMARK(BM_ExecOverlapTenants)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
