// Native google-benchmark microbenchmarks of the real CPU substrate on
// *this* machine: sorting and multiway-merge primitives. These are genuine
// wall-clock measurements (not simulated) and complement the calibrated
// paper-figure benches.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "cpusort/cpusort.h"
#include "util/datagen.h"
#include "util/thread_pool.h"

using namespace mgs;

namespace {

std::vector<std::int32_t> MakeKeys(std::int64_t n, Distribution dist) {
  DataGenOptions options;
  options.distribution = dist;
  return GenerateKeys<std::int32_t>(n, options);
}

void BM_StdSort(benchmark::State& state) {
  const auto base = MakeKeys(state.range(0), Distribution::kUniform);
  for (auto _ : state) {
    auto data = base;
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_LsbRadixSort(benchmark::State& state) {
  const auto base = MakeKeys(state.range(0), Distribution::kUniform);
  std::vector<std::int32_t> aux(base.size());
  for (auto _ : state) {
    auto data = base;
    cpusort::LsbRadixSort(data.data(), aux.data(), state.range(0));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LsbRadixSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_LsbRadixSortPooled(benchmark::State& state) {
  const auto base = MakeKeys(state.range(0), Distribution::kUniform);
  std::vector<std::int32_t> aux(base.size());
  ThreadPool pool;
  for (auto _ : state) {
    auto data = base;
    cpusort::LsbRadixSort(data.data(), aux.data(), state.range(0), &pool);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LsbRadixSortPooled)->Arg(1 << 16)->Arg(1 << 20);

void BM_ParadisSort(benchmark::State& state) {
  const auto base = MakeKeys(state.range(0), Distribution::kUniform);
  ThreadPool pool;
  for (auto _ : state) {
    auto data = base;
    cpusort::ParadisSort(data.data(), state.range(0), &pool);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParadisSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_MergeSort(benchmark::State& state) {
  const auto base = MakeKeys(state.range(0), Distribution::kUniform);
  std::vector<std::int32_t> aux(base.size());
  for (auto _ : state) {
    auto data = base;
    cpusort::MergeSort(data.data(), aux.data(), state.range(0));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_MultiwayMerge(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::int64_t per = state.range(1);
  std::vector<std::vector<std::int32_t>> lists(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    DataGenOptions options;
    options.seed = static_cast<std::uint64_t>(i) + 1;
    lists[static_cast<std::size_t>(i)] =
        GenerateKeys<std::int32_t>(per, options);
    std::sort(lists[static_cast<std::size_t>(i)].begin(),
              lists[static_cast<std::size_t>(i)].end());
  }
  std::vector<std::int32_t> out;
  for (auto _ : state) {
    cpusort::MultiwayMerge(lists, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * k * per);
}
BENCHMARK(BM_MultiwayMerge)
    ->Args({2, 1 << 18})
    ->Args({4, 1 << 18})
    ->Args({8, 1 << 18})
    ->Args({16, 1 << 18});

void BM_LoserTreePop(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<std::vector<std::int32_t>> lists(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    DataGenOptions options;
    options.seed = static_cast<std::uint64_t>(i) + 7;
    lists[static_cast<std::size_t>(i)] =
        GenerateKeys<std::int32_t>(1 << 14, options);
    std::sort(lists[static_cast<std::size_t>(i)].begin(),
              lists[static_cast<std::size_t>(i)].end());
  }
  for (auto _ : state) {
    std::vector<cpusort::LoserTree<std::int32_t>::Source> sources;
    for (const auto& list : lists) {
      sources.push_back({list.data(), list.data() + list.size()});
    }
    cpusort::LoserTree<std::int32_t> tree(std::move(sources));
    std::int64_t sum = 0;
    while (!tree.Empty()) {
      sum += tree.Top();
      tree.Pop();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * k * (1 << 14));
}
BENCHMARK(BM_LoserTreePop)->Arg(2)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
