#include "util/datagen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mgs {
namespace {

TEST(DataGenTest, UniformIsDeterministicForSeed) {
  DataGenOptions opt;
  opt.seed = 7;
  auto a = GenerateKeys<std::int32_t>(1000, opt);
  auto b = GenerateKeys<std::int32_t>(1000, opt);
  EXPECT_EQ(a, b);
  opt.seed = 8;
  auto c = GenerateKeys<std::int32_t>(1000, opt);
  EXPECT_NE(a, c);
}

TEST(DataGenTest, SortedIsSorted) {
  DataGenOptions opt;
  opt.distribution = Distribution::kSorted;
  auto v = GenerateKeys<std::int32_t>(10000, opt);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_LT(v.front(), v.back());
}

TEST(DataGenTest, ReverseSortedIsReverseSorted) {
  DataGenOptions opt;
  opt.distribution = Distribution::kReverseSorted;
  auto v = GenerateKeys<std::int32_t>(10000, opt);
  EXPECT_TRUE(std::is_sorted(v.rbegin(), v.rend()));
}

TEST(DataGenTest, NearlySortedIsMostlySorted) {
  DataGenOptions opt;
  opt.distribution = Distribution::kNearlySorted;
  opt.nearly_sorted_noise = 0.01;
  auto v = GenerateKeys<std::int32_t>(100000, opt);
  std::int64_t inversions_adjacent = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] > v[i]) ++inversions_adjacent;
  }
  EXPECT_GT(inversions_adjacent, 0) << "must not be fully sorted";
  EXPECT_LT(inversions_adjacent, 4000) << "must be mostly sorted";
}

TEST(DataGenTest, UniformCoversDomainBroadly) {
  DataGenOptions opt;
  auto v = GenerateKeys<std::int32_t>(100000, opt);
  const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  EXPECT_LT(*mn, -1'800'000'000);
  EXPECT_GT(*mx, 1'800'000'000);
}

TEST(DataGenTest, NormalIsCentered) {
  DataGenOptions opt;
  opt.distribution = Distribution::kNormal;
  auto v = GenerateKeys<std::int64_t>(100000, opt);
  const double mean =
      std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
  EXPECT_LT(std::abs(mean), 5e6) << "mean should be near zero (sigma 1e8)";
}

TEST(DataGenTest, ZipfIsSkewed) {
  DataGenOptions opt;
  opt.distribution = Distribution::kZipf;
  auto v = GenerateKeys<std::int32_t>(100000, opt);
  // Strong skew toward small ranks: the median must be far below the max.
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_LT(sorted[sorted.size() / 2], sorted.back() / 10);
  EXPECT_GE(sorted.front(), 0);
}

TEST(DataGenTest, FloatKeysAreFinite) {
  DataGenOptions opt;
  auto v = GenerateKeys<float>(10000, opt);
  for (float f : v) EXPECT_TRUE(std::isfinite(f));
  auto d = GenerateKeys<double>(10000, opt);
  for (double f : d) EXPECT_TRUE(std::isfinite(f));
}

TEST(DataGenTest, EmptyAndSingle) {
  DataGenOptions opt;
  EXPECT_TRUE(GenerateKeys<std::int32_t>(0, opt).empty());
  EXPECT_EQ(GenerateKeys<std::int32_t>(1, opt).size(), 1u);
}

TEST(DataGenTest, DistributionRoundTrip) {
  for (auto d : {Distribution::kUniform, Distribution::kNormal,
                 Distribution::kSorted, Distribution::kReverseSorted,
                 Distribution::kNearlySorted, Distribution::kZipf}) {
    auto r = DistributionFromString(DistributionToString(d));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, d);
  }
  EXPECT_FALSE(DistributionFromString("bogus").ok());
}

TEST(DataGenTest, DataTypeSizes) {
  EXPECT_EQ(DataTypeSize(DataType::kInt32), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kFloat32), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kInt64), 8u);
  EXPECT_EQ(DataTypeSize(DataType::kFloat64), 8u);
}

TEST(DataGenTest, SplitMixIsReproducible) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(124);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(DataGenTest, SplitMixDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace mgs
