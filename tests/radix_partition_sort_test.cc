// Tests for the radix-partitioning multi-GPU sort (the Section 7
// future-work algorithm).

#include "core/radix_partition_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/p2p_sort.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::core {
namespace {

struct RdxCase {
  std::string system;
  int gpus;
  std::int64_t n;
  Distribution dist;
};

std::string CaseName(const ::testing::TestParamInfo<RdxCase>& info) {
  const auto& c = info.param;
  std::string s = c.system + "_g" + std::to_string(c.gpus) + "_n" +
                  std::to_string(c.n) + "_";
  for (char ch : std::string(DistributionToString(c.dist))) {
    s += ch == '-' ? '_' : ch;
  }
  std::replace(s.begin(), s.end(), '-', '_');
  return s;
}

class RdxSortSweep : public ::testing::TestWithParam<RdxCase> {};

TEST_P(RdxSortSweep, SortsCorrectly) {
  const auto& c = GetParam();
  auto platform =
      CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem(c.system))));
  DataGenOptions opt;
  opt.distribution = c.dist;
  opt.seed = static_cast<std::uint64_t>(c.n) * 7 + c.gpus;
  auto keys = GenerateKeys<std::int32_t>(c.n, opt);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  RadixPartitionOptions options;
  for (int i = 0; i < c.gpus; ++i) options.gpu_set.push_back(i);
  auto stats = RadixPartitionSort(platform.get(), &data, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(data.vector(), expected);
}

std::vector<RdxCase> MakeCases() {
  std::vector<RdxCase> cases;
  const Distribution dists[] = {Distribution::kUniform, Distribution::kNormal,
                                Distribution::kSorted,
                                Distribution::kReverseSorted};
  for (const char* sys : {"ac922", "dgx-a100"}) {
    // Any GPU count works — including the non-power-of-two 3.
    for (int g : {1, 2, 3, 4}) {
      for (Distribution d : dists) {
        cases.push_back(RdxCase{sys, g, 60'000, d});
      }
    }
  }
  cases.push_back(RdxCase{"dgx-a100", 8, 160'000, Distribution::kUniform});
  cases.push_back(RdxCase{"dgx-a100", 8, 160'001, Distribution::kNormal});
  cases.push_back(RdxCase{"dgx-a100", 5, 1, Distribution::kUniform});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RdxSortSweep, ::testing::ValuesIn(MakeCases()),
                         CaseName);

TEST(RdxSortTest, SkewOverflowReportsOutOfMemory) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  // All-duplicate data: every key lands in one partition.
  vgpu::HostBuffer<std::int32_t> data(
      std::vector<std::int32_t>(50'000, 7));
  RadixPartitionOptions options;
  options.gpu_set = {0, 1, 2, 3};
  options.slack = 1.1;
  auto stats = RadixPartitionSort(platform.get(), &data, options);
  EXPECT_EQ(stats.status().code(), StatusCode::kOutOfMemory);
}

TEST(RdxSortTest, SingleExchangeMovesLessThanP2pMerge) {
  // Uniform data, 8 GPUs: RDX moves ~ (g-1)/g * n keys once; the P2P merge
  // phase moves ~ n/2 per stage across log2(g) stage levels.
  const std::int64_t n = 160'000;
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(n, opt);

  auto p_rdx = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  vgpu::HostBuffer<std::int32_t> d1(keys);
  RadixPartitionOptions rdx;
  auto rdx_stats = CheckOk(RadixPartitionSort(p_rdx.get(), &d1, rdx));

  auto p_p2p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  vgpu::HostBuffer<std::int32_t> d2(keys);
  SortOptions p2p;
  auto p2p_stats = CheckOk(P2pSort(p_p2p.get(), &d2, p2p));

  EXPECT_LT(rdx_stats.p2p_bytes, p2p_stats.p2p_bytes)
      << "one all-to-all must move fewer bytes than the recursive merge";
  EXPECT_EQ(rdx_stats.merge_stages, 1);
}

TEST(RdxSortTest, FasterThanP2pSortOnEightNvswitchGpus) {
  // The Section 7 hypothesis: on the DGX A100 the single all-to-all beats
  // the log-depth merge phase end to end.
  const std::int64_t logical = 2'000'000'000;
  vgpu::PlatformOptions popts{/*scale=*/2000.0};
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(1'000'000, opt);

  auto p_rdx = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), popts));
  vgpu::HostBuffer<std::int32_t> d1(keys);
  RadixPartitionOptions rdx;
  auto rdx_stats = CheckOk(RadixPartitionSort(p_rdx.get(), &d1, rdx));

  auto p_p2p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(), popts));
  vgpu::HostBuffer<std::int32_t> d2(keys);
  SortOptions p2p;
  auto p2p_stats = CheckOk(P2pSort(p_p2p.get(), &d2, p2p));

  EXPECT_LT(rdx_stats.total_seconds, p2p_stats.total_seconds * 1.05)
      << "RDX should be at least competitive on NVSwitch";
  (void)logical;
}

TEST(RdxSortTest, EmptyInput) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  vgpu::HostBuffer<std::int32_t> data(0);
  RadixPartitionOptions options;
  auto stats = RadixPartitionSort(platform.get(), &data, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->total_seconds, 0);
}

}  // namespace
}  // namespace mgs::core
