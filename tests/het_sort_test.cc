// Correctness and timing tests for the heterogeneous multi-GPU sort.

#include "core/het_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cpu_baseline.h"
#include "core/gpu_set.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::core {
namespace {

struct HetCase {
  std::string system;
  int gpus;
  std::int64_t n;
  BufferScheme scheme;
  bool eager;
  double budget;  // per-GPU memory budget (0 = all)
};

std::string CaseName(const ::testing::TestParamInfo<HetCase>& info) {
  const auto& c = info.param;
  std::string s = c.system + "_g" + std::to_string(c.gpus) + "_n" +
                  std::to_string(c.n) + "_" +
                  BufferSchemeToString(c.scheme) + (c.eager ? "_eager" : "");
  std::replace(s.begin(), s.end(), '-', '_');
  return s;
}

class HetSortSweep : public ::testing::TestWithParam<HetCase> {};

TEST_P(HetSortSweep, SortsCorrectly) {
  const auto& c = GetParam();
  auto platform =
      CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem(c.system))));
  DataGenOptions opt;
  opt.seed = static_cast<std::uint64_t>(c.n) * 3 + c.gpus;
  auto keys = GenerateKeys<std::int32_t>(c.n, opt);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HetOptions options;
  options.gpu_set = CheckOk(
      ChooseGpuSet(platform->topology(), c.gpus, /*for_p2p_merge=*/false));
  options.scheme = c.scheme;
  options.eager_merge = c.eager;
  options.gpu_memory_budget = c.budget;
  auto stats = HetSort(platform.get(), &data, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(data.vector(), expected);
}

std::vector<HetCase> MakeCases() {
  std::vector<HetCase> cases;
  for (const char* sys : {"ac922", "delta-d22x", "dgx-a100"}) {
    for (int g : {1, 2, 3, 4}) {
      for (auto scheme : {BufferScheme::k2n, BufferScheme::k3n}) {
        cases.push_back(HetCase{sys, g, 50'000, scheme, false, 0});
      }
    }
  }
  // Out-of-core: budget forces many chunk groups (chunk = budget/2or3).
  for (auto scheme : {BufferScheme::k2n, BufferScheme::k3n}) {
    for (bool eager : {false, true}) {
      cases.push_back(
          HetCase{"dgx-a100", 8, 200'000, scheme, eager, 40'000.0});
      cases.push_back(HetCase{"ac922", 2, 120'000, scheme, eager, 24'000.0});
    }
  }
  // Ragged chunk boundaries.
  cases.push_back(
      HetCase{"dgx-a100", 3, 99'991, BufferScheme::k2n, true, 24'000.0});
  cases.push_back(HetCase{"ac922", 4, 1, BufferScheme::k3n, false, 0});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HetSortSweep, ::testing::ValuesIn(MakeCases()),
                         CaseName);

TEST(HetSortTest, OtherKeyTypes) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  HetOptions options;
  options.gpu_set = {0, 2};
  {
    DataGenOptions opt;
    auto keys = GenerateKeys<float>(20'000, opt);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    vgpu::HostBuffer<float> data(std::move(keys));
    CheckOk(HetSort(platform.get(), &data, options).status());
    EXPECT_EQ(data.vector(), expected);
  }
}

TEST(HetSortTest, StatsReportChunkGroups) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(120'000, opt);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HetOptions options;
  options.gpu_set = {0, 2};
  options.gpu_memory_budget = 80'000;  // chunk = 10'000 keys
  auto stats = CheckOk(HetSort(platform.get(), &data, options));
  EXPECT_EQ(stats.chunk_groups, 6);
  EXPECT_EQ(stats.final_merge_sublists, 12);
  EXPECT_TRUE(std::is_sorted(data.vector().begin(), data.vector().end()));
}

TEST(HetSortTest, EagerMergingReducesFinalFanIn) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(120'000, opt);
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HetOptions options;
  options.gpu_set = {0, 2};
  options.gpu_memory_budget = 80'000;
  options.eager_merge = true;
  auto stats = CheckOk(HetSort(platform.get(), &data, options));
  // 6 groups of 2 chunks: eager merges 5 groups -> 5 runs + last group's 2.
  EXPECT_EQ(stats.final_merge_sublists, 7);
  EXPECT_TRUE(std::is_sorted(data.vector().begin(), data.vector().end()));
}

TEST(HetSortTest, SingleGpuSingleChunkSkipsMerge) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(10'000, opt);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HetOptions options;
  options.gpu_set = {0};
  auto stats = CheckOk(HetSort(platform.get(), &data, options));
  EXPECT_EQ(data.vector(), expected);
  EXPECT_DOUBLE_EQ(stats.phases.merge, 0);
}

TEST(HetSortTest, RejectsDataExceedingHostMemory) {
  // The AC922 has 512 GB of DRAM (Table 1a); HET sort needs 2x the data
  // size for the out-of-place merge, so 300 GB of keys must be rejected.
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922(),
                                                 vgpu::PlatformOptions{1e8}));
  vgpu::HostBuffer<std::int32_t> data(750);  // 300 GB logical
  HetOptions options;
  options.gpu_set = {0, 1};
  EXPECT_EQ(HetSort(platform.get(), &data, options).status().code(),
            StatusCode::kOutOfMemory);
}

TEST(HetSortTest, RejectsBadGpuIds) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  vgpu::HostBuffer<std::int32_t> data(100);
  HetOptions options;
  options.gpu_set = {0, 12};
  EXPECT_FALSE(HetSort(platform.get(), &data, options).ok());
}

// ---------------------------------------------------------------------------
// Timing against the paper
// ---------------------------------------------------------------------------

double RunFig1Het(int gpus) {
  auto platform = CheckOk(vgpu::Platform::Create(
      topo::MakeDgxA100(), vgpu::PlatformOptions{4'000'000.0}));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(1000, opt);  // 4e9 logical
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  HetOptions options;
  options.gpu_set = CheckOk(
      ChooseGpuSet(platform->topology(), gpus, /*for_p2p_merge=*/false));
  return CheckOk(HetSort(platform.get(), &data, options)).total_seconds;
}

TEST(HetSortPaperTest, Figure1TwoGpus) {
  // Paper: 1.09 s for 4e9 keys with two GPUs on the DGX A100.
  EXPECT_NEAR(RunFig1Het(2), 1.09, 0.12);
}

TEST(HetSortPaperTest, Figure1FourGpus) {
  // Paper: 0.75 s with four GPUs.
  EXPECT_NEAR(RunFig1Het(4), 0.75, 0.10);
}

TEST(HetSortPaperTest, Figure1CpuBaseline) {
  // Paper: PARADIS sorts 4e9 keys in 2.25 s on the DGX host.
  auto platform = CheckOk(vgpu::Platform::Create(
      topo::MakeDgxA100(), vgpu::PlatformOptions{4'000'000.0}));
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(1000, opt);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  vgpu::HostBuffer<std::int32_t> data(std::move(keys));
  auto stats = CheckOk(CpuSortBaseline(platform.get(), &data));
  EXPECT_NEAR(stats.total_seconds, 2.25, 0.05);
  EXPECT_EQ(data.vector(), expected) << "functional PARADIS must sort";
}

TEST(HetSortPaperTest, P2pBeatsHetOnNvswitch) {
  // Abstract: "P2P sort outperforms HET sort by up to 1.65x" on the DGX.
  const double het2 = RunFig1Het(2);
  // From the P2P test: ~0.75 s for 2 GPUs.
  EXPECT_GT(het2 / 0.75, 1.3);
  EXPECT_LT(het2 / 0.75, 1.8);
}

}  // namespace
}  // namespace mgs::core
