#include "util/stats.h"

#include <gtest/gtest.h>

namespace mgs {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.Add(2.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 2.5);
  EXPECT_DOUBLE_EQ(s.Max(), 2.5);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0) << "stddev undefined for n<2 -> 0";
}

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(RunningStatsTest, SampleStdDev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  // Known example: population sigma = 2, sample stddev = sqrt(32/7).
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), -3.0);
}

TEST(PercentileTest, NearestRankOnUnsortedInput) {
  std::vector<double> samples;
  for (int i = 1000; i >= 1; --i) samples.push_back(i);  // 1..1000, reversed
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 500);
  EXPECT_DOUBLE_EQ(Percentile(samples, 99), 990);
  EXPECT_DOUBLE_EQ(Percentile(samples, 99.9), 999);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 1000);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 1);
  // The input is taken by value; the caller's vector stays unsorted.
  EXPECT_DOUBLE_EQ(samples.front(), 1000);
}

TEST(PercentileTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(Percentile({7.5}, 99.9), 7.5);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, 50), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, 51), 2.0);
}

TEST(SummarizeTest, AllFieldsFromOneSortedPass) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(i);
  const LatencySummary s = Summarize(samples);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.p50, 500);
  EXPECT_DOUBLE_EQ(s.p95, 950);
  EXPECT_DOUBLE_EQ(s.p99, 990);
  EXPECT_DOUBLE_EQ(s.p999, 999);
  EXPECT_DOUBLE_EQ(s.mean, 500.5);
  EXPECT_DOUBLE_EQ(s.max, 1000);
}

TEST(SummarizeTest, EmptyIsAllZero) {
  const LatencySummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0);
  EXPECT_DOUBLE_EQ(s.p999, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0);
  EXPECT_DOUBLE_EQ(s.max, 0);
}

}  // namespace
}  // namespace mgs
