#include "util/stats.h"

#include <gtest/gtest.h>

namespace mgs {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.Add(2.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 2.5);
  EXPECT_DOUBLE_EQ(s.Max(), 2.5);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0) << "stddev undefined for n<2 -> 0";
}

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(RunningStatsTest, SampleStdDev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  // Known example: population sigma = 2, sample stddev = sqrt(32/7).
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), -3.0);
}

}  // namespace
}  // namespace mgs
