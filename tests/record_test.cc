// Tests for key-value record sorting across the whole stack.

#include "core/record.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/het_sort.h"
#include "core/p2p_sort.h"
#include "core/radix_partition_sort.h"
#include "cpusort/cpusort.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::core {
namespace {

template <typename R>
std::vector<R> MakeRecords(std::int64_t n, std::uint64_t seed) {
  DataGenOptions opt;
  opt.seed = seed;
  auto keys = GenerateKeys<decltype(R{}.key)>(n, opt);
  std::vector<R> records(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    records[static_cast<std::size_t>(i)] = {
        keys[static_cast<std::size_t>(i)],
        static_cast<decltype(R{}.value)>(i)};
  }
  return records;
}

// The value must always travel with its key: validate against a stable
// oracle (equal keys may permute their values between each other only if
// the values' multiset per key is preserved).
template <typename R>
void ExpectValidSort(const std::vector<R>& input,
                     const std::vector<R>& output) {
  ASSERT_EQ(input.size(), output.size());
  EXPECT_TRUE(std::is_sorted(output.begin(), output.end()));
  auto in_sorted = input;
  auto out_sorted = output;
  auto full_less = [](const R& a, const R& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  };
  std::sort(in_sorted.begin(), in_sorted.end(), full_less);
  std::sort(out_sorted.begin(), out_sorted.end(), full_less);
  EXPECT_EQ(in_sorted, out_sorted) << "output must be a permutation";
}

TEST(RecordTest, OrderingAndTraits) {
  IndexEntry32 a{1, 100}, b{2, 0};
  EXPECT_LT(a, b);
  EXPECT_EQ(cpusort::RadixTraits<IndexEntry32>::Encode(a),
            cpusort::RadixTraits<std::int32_t>::Encode(1));
  EXPECT_EQ((SortableLimits<IndexEntry32>::Max().key),
            std::numeric_limits<std::int32_t>::max());
}

TEST(RecordTest, LsbRadixSortsRecords) {
  auto records = MakeRecords<IndexEntry32>(20'000, 1);
  auto input = records;
  std::vector<IndexEntry32> aux(records.size());
  cpusort::LsbRadixSort(records.data(), aux.data(),
                        static_cast<std::int64_t>(records.size()));
  ExpectValidSort(input, records);
}

TEST(RecordTest, ParadisSortsRecords) {
  auto records = MakeRecords<IndexEntry64>(20'000, 2);
  auto input = records;
  cpusort::ParadisSort(records.data(),
                       static_cast<std::int64_t>(records.size()));
  ExpectValidSort(input, records);
}

TEST(RecordTest, MultiwayMergeMergesRecords) {
  std::vector<std::vector<IndexEntry32>> lists(4);
  std::vector<IndexEntry32> all;
  for (int i = 0; i < 4; ++i) {
    lists[static_cast<std::size_t>(i)] =
        MakeRecords<IndexEntry32>(5'000, static_cast<std::uint64_t>(i));
    std::sort(lists[static_cast<std::size_t>(i)].begin(),
              lists[static_cast<std::size_t>(i)].end());
    all.insert(all.end(), lists[static_cast<std::size_t>(i)].begin(),
               lists[static_cast<std::size_t>(i)].end());
  }
  std::vector<IndexEntry32> out;
  cpusort::MultiwayMerge(lists, &out);
  ExpectValidSort(all, out);
}

TEST(RecordTest, P2pSortSortsRecords) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  auto records = MakeRecords<IndexEntry32>(40'000, 3);
  auto input = records;
  vgpu::HostBuffer<IndexEntry32> data(std::move(records));
  SortOptions options;
  options.gpu_set = {0, 2, 4, 6};
  CheckOk(P2pSort(platform.get(), &data, options).status());
  ExpectValidSort(input, data.vector());
}

TEST(RecordTest, P2pSortSortsRecordsWithPadding) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  auto records = MakeRecords<IndexEntry64>(9'999, 4);  // ragged
  auto input = records;
  vgpu::HostBuffer<IndexEntry64> data(std::move(records));
  SortOptions options;
  options.gpu_set = {0, 1};
  CheckOk(P2pSort(platform.get(), &data, options).status());
  ExpectValidSort(input, data.vector());
}

TEST(RecordTest, HetSortSortsRecordsOutOfCore) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  auto records = MakeRecords<IndexEntry32>(100'000, 5);
  auto input = records;
  vgpu::HostBuffer<IndexEntry32> data(std::move(records));
  HetOptions options;
  options.gpu_set = {0, 2};
  options.gpu_memory_budget = 200'000;  // force several chunk groups
  auto stats = CheckOk(HetSort(platform.get(), &data, options));
  EXPECT_GT(stats.chunk_groups, 1);
  ExpectValidSort(input, data.vector());
}

TEST(RecordTest, RdxSortSortsRecords) {
  auto platform = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  auto records = MakeRecords<IndexEntry32>(60'000, 6);
  auto input = records;
  vgpu::HostBuffer<IndexEntry32> data(std::move(records));
  RadixPartitionOptions options;
  options.gpu_set = {0, 2, 4};
  CheckOk(RadixPartitionSort(platform.get(), &data, options).status());
  ExpectValidSort(input, data.vector());
}

}  // namespace
}  // namespace mgs::core
