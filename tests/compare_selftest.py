#!/usr/bin/env python3
"""Selftest for bench/compare.py: the perf gate must pass on identical
numbers, fail on a >tolerance regression (tampered baseline), fail on a
dropped benchmark, and tolerate improvements and new benchmarks."""

import json
import os
import subprocess
import sys
import tempfile


def bench_doc(times):
    return {
        "context": {"executable": "selftest"},
        "benchmarks": [
            {"name": n, "run_type": "iteration", "cpu_time": t,
             "real_time": t, "time_unit": "ns"}
            for n, t in times.items()
        ],
    }


def run(compare, base, cur, extra=None):
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "base.json")
        cp = os.path.join(d, "cur.json")
        json.dump(bench_doc(base), open(bp, "w"))
        json.dump(bench_doc(cur), open(cp, "w"))
        argv = [sys.executable, compare, bp, cp] + (extra or [])
        return subprocess.run(argv, capture_output=True, text=True).returncode


def main():
    compare = sys.argv[1]
    base = {"BM_A/1": 100.0, "BM_B/2": 2000.0}
    failures = []

    def check(name, got, want):
        if got != want:
            failures.append(f"{name}: exit {got}, want {want}")

    check("identical numbers pass", run(compare, base, dict(base)), 0)
    # +30% on one entry trips the default 25% band (the "tampered baseline"
    # acceptance case, driven from the current side of the diff).
    check("30% slowdown fails",
          run(compare, base, {"BM_A/1": 130.0, "BM_B/2": 2000.0}), 1)
    check("30% slowdown passes at 40% tolerance",
          run(compare, base, {"BM_A/1": 130.0, "BM_B/2": 2000.0},
              ["--tolerance", "40"]), 0)
    check("within-band jitter passes",
          run(compare, base, {"BM_A/1": 115.0, "BM_B/2": 1900.0}), 0)
    check("improvement passes",
          run(compare, base, {"BM_A/1": 10.0, "BM_B/2": 200.0}), 0)
    check("dropped benchmark fails",
          run(compare, base, {"BM_A/1": 100.0}), 1)
    check("new benchmark passes",
          run(compare, base,
              {"BM_A/1": 100.0, "BM_B/2": 2000.0, "BM_C/3": 5.0}), 0)
    check("empty baseline is an error", run(compare, {}, base), 2)

    for f in failures:
        print("FAIL:", f)
    print(f"{8 - len(failures)}/8 checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
