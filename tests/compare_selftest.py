#!/usr/bin/env python3
"""Selftest for bench/compare.py: the perf gate must pass on identical
numbers (with an explicit success summary), fail on a >tolerance regression
(tampered baseline), fail on a dropped benchmark, fail clearly — not with a
traceback — on malformed baseline JSON, and tolerate improvements and new
benchmarks."""

import json
import os
import subprocess
import sys
import tempfile


def bench_doc(times):
    return {
        "context": {"executable": "selftest"},
        "benchmarks": [
            {"name": n, "run_type": "iteration", "cpu_time": t,
             "real_time": t, "time_unit": "ns"}
            for n, t in times.items()
        ],
    }


def run(compare, base, cur, extra=None):
    return run_proc(compare, base, cur, extra).returncode


def run_proc(compare, base, cur, extra=None, raw_baseline=None):
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "base.json")
        cp = os.path.join(d, "cur.json")
        if raw_baseline is None:
            json.dump(bench_doc(base), open(bp, "w"))
        else:
            open(bp, "w").write(raw_baseline)
        json.dump(bench_doc(cur), open(cp, "w"))
        argv = [sys.executable, compare, bp, cp] + (extra or [])
        return subprocess.run(argv, capture_output=True, text=True)


def main():
    compare = sys.argv[1]
    base = {"BM_A/1": 100.0, "BM_B/2": 2000.0}
    failures = []

    def check(name, got, want):
        if got != want:
            failures.append(f"{name}: exit {got}, want {want}")

    check("identical numbers pass", run(compare, base, dict(base)), 0)
    # +30% on one entry trips the default 25% band (the "tampered baseline"
    # acceptance case, driven from the current side of the diff).
    check("30% slowdown fails",
          run(compare, base, {"BM_A/1": 130.0, "BM_B/2": 2000.0}), 1)
    check("30% slowdown passes at 40% tolerance",
          run(compare, base, {"BM_A/1": 130.0, "BM_B/2": 2000.0},
              ["--tolerance", "40"]), 0)
    check("within-band jitter passes",
          run(compare, base, {"BM_A/1": 115.0, "BM_B/2": 1900.0}), 0)
    check("improvement passes",
          run(compare, base, {"BM_A/1": 10.0, "BM_B/2": 200.0}), 0)
    check("dropped benchmark fails",
          run(compare, base, {"BM_A/1": 100.0}), 1)
    check("new benchmark passes",
          run(compare, base,
              {"BM_A/1": 100.0, "BM_B/2": 2000.0, "BM_C/3": 5.0}), 0)
    check("empty baseline is an error", run(compare, {}, base), 2)

    # A truncated / hand-mangled baseline must exit 2 with a message naming
    # the file — never a traceback.
    broken = run_proc(compare, None, base, raw_baseline='{"benchmarks": [tru')
    check("malformed baseline JSON is an error", broken.returncode, 2)
    if "malformed JSON in baseline" not in broken.stderr:
        failures.append("malformed baseline: missing clear stderr message, "
                        f"got: {broken.stderr!r}")
    if "Traceback" in broken.stderr:
        failures.append("malformed baseline: crashed with a traceback")

    # A clean pass must say so explicitly (per-baseline summary line), so a
    # green CI log shows which gates actually ran.
    passed = run_proc(compare, base, dict(base))
    check("success summary exit code", passed.returncode, 0)
    if "compare.py: OK" not in passed.stdout or "base.json" not in passed.stdout:
        failures.append("success run: missing 'compare.py: OK ... base.json' "
                        f"summary, got: {passed.stdout!r}")

    for f in failures:
        print("FAIL:", f)
    print(f"{12 - len(failures)}/12 checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
