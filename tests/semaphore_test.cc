// sim::Semaphore: counting admission window with deterministic FIFO wakeup
// (the distributed shuffle bounds per-NIC in-flight transfers with it).

#include "sim/semaphore.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"

namespace mgs::sim {
namespace {

Task<void> HoldSlot(Simulator* simulator, Semaphore* semaphore, int id,
                    double hold_seconds, std::vector<int>* acquire_order) {
  co_await semaphore->Acquire();
  acquire_order->push_back(id);
  co_await Delay{*simulator, hold_seconds};
  semaphore->Release();
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator simulator;
  Semaphore semaphore(2);
  std::vector<int> order;

  auto driver = [&]() -> Task<void> {
    std::vector<JoinerPtr> joins;
    for (int i = 0; i < 5; ++i) {
      joins.push_back(
          Spawn(HoldSlot(&simulator, &semaphore, i, 1.0, &order)));
    }
    co_await WhenAll(std::move(joins));
  };
  ASSERT_TRUE(RunToCompletion(&simulator, driver()).ok());

  // FIFO admission: ids acquire in spawn order, two at a time.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(semaphore.available(), 2);
  EXPECT_EQ(semaphore.waiters(), 0u);
  // 5 holders x 1 s through 2 slots: waves at t=0, 1, 2.
  EXPECT_DOUBLE_EQ(simulator.Now(), 3.0);
}

TEST(SemaphoreTest, ImmediateWhenAvailable) {
  Simulator simulator;
  Semaphore semaphore(3);
  std::vector<int> order;
  auto driver = [&]() -> Task<void> {
    co_await HoldSlot(&simulator, &semaphore, 7, 0.5, &order);
  };
  ASSERT_TRUE(RunToCompletion(&simulator, driver()).ok());
  EXPECT_EQ(order, std::vector<int>{7});
  EXPECT_DOUBLE_EQ(simulator.Now(), 0.5);
  EXPECT_EQ(semaphore.available(), 3);
}

TEST(SemaphoreTest, ReleaseWakesExactlyOne) {
  Simulator simulator;
  Semaphore semaphore(1);
  std::vector<int> order;
  auto driver = [&]() -> Task<void> {
    std::vector<JoinerPtr> joins;
    for (int i = 0; i < 3; ++i) {
      joins.push_back(
          Spawn(HoldSlot(&simulator, &semaphore, i, 0.25, &order)));
    }
    EXPECT_EQ(semaphore.waiters(), 2u);  // 0 got the slot synchronously
    EXPECT_EQ(semaphore.available(), 0);
    co_await WhenAll(std::move(joins));
  };
  ASSERT_TRUE(RunToCompletion(&simulator, driver()).ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(simulator.Now(), 0.75);
}

}  // namespace
}  // namespace mgs::sim
