// Route-composition tests: the exact interconnect sequences every copy
// takes on the three preset platforms (hop-by-hop fidelity to Table 1).

#include <gtest/gtest.h>

#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "topo/systems.h"

namespace mgs::topo {
namespace {

class RoutesTest : public ::testing::Test {
 protected:
  std::unique_ptr<Topology> Compiled(std::unique_ptr<Topology> topo) {
    CheckOk(topo->Compile(&net_));
    return topo;
  }
  std::string Route(const Topology& topo, CopyKind kind, Endpoint src,
                    Endpoint dst) {
    return CheckOk(topo.DescribeRoute(kind, src, dst));
  }
  sim::Simulator sim_;
  sim::FlowNetwork net_{&sim_};
};

TEST_F(RoutesTest, Ac922LocalHtoDUsesNvlinkOnly) {
  auto topo = Compiled(MakeAc922());
  const auto route = Route(*topo, CopyKind::kHostToDevice,
                           Endpoint::HostMemory(0), Endpoint::Gpu(0));
  EXPECT_EQ(route, "MEM0 -[membus0]-> CPU0 -[nvl]-> GPU0");
}

TEST_F(RoutesTest, Ac922RemoteHtoDCrossesXbus) {
  auto topo = Compiled(MakeAc922());
  const auto route = Route(*topo, CopyKind::kHostToDevice,
                           Endpoint::HostMemory(0), Endpoint::Gpu(3));
  EXPECT_EQ(route, "MEM0 -[membus0]-> CPU0 -[xbus]-> CPU1 -[nvl]-> GPU3");
}

TEST_F(RoutesTest, Ac922P2pDirectAndHostTraversing) {
  auto topo = Compiled(MakeAc922());
  EXPECT_EQ(Route(*topo, CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                  Endpoint::Gpu(1)),
            "GPU0 -[nvl-p2p]-> GPU1");
  EXPECT_EQ(Route(*topo, CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                  Endpoint::Gpu(2)),
            "GPU0 -[nvl]-> CPU0 -[xbus]-> CPU1 -[nvl]-> GPU2");
}

TEST_F(RoutesTest, DeltaP2pPrefersNvlinkMesh) {
  auto topo = Compiled(MakeDeltaD22x());
  EXPECT_EQ(Route(*topo, CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                  Endpoint::Gpu(2)),
            "GPU0 -[nvl-x2]-> GPU2");
  // (0,3) has no direct link: PCIe up, UPI across, PCIe down.
  EXPECT_EQ(Route(*topo, CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                  Endpoint::Gpu(3)),
            "GPU0 -[pcie]-> CPU0 -[upi]-> CPU1 -[pcie]-> GPU3");
}

TEST_F(RoutesTest, DeltaMultihopReroutesThroughGpu2) {
  auto raw = MakeDeltaD22x();
  raw->SetMultihopP2p(true);
  auto topo = Compiled(std::move(raw));
  EXPECT_EQ(Route(*topo, CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                  Endpoint::Gpu(3)),
            "GPU0 -[nvl-x2]-> GPU2 -[nvl-x2]-> GPU3");
}

TEST_F(RoutesTest, DgxHtoDGoesThroughPairSwitch) {
  auto topo = Compiled(MakeDgxA100());
  EXPECT_EQ(Route(*topo, CopyKind::kHostToDevice, Endpoint::HostMemory(0),
                  Endpoint::Gpu(1)),
            "MEM0 -[membus0]-> CPU0 -[pcie-up]-> plx0 -[pcie-dn]-> GPU1");
  EXPECT_EQ(Route(*topo, CopyKind::kHostToDevice, Endpoint::HostMemory(0),
                  Endpoint::Gpu(6)),
            "MEM0 -[membus0]-> CPU0 -[inf-fabric]-> CPU1 -[pcie-up]-> plx3 "
            "-[pcie-dn]-> GPU6");
}

TEST_F(RoutesTest, DgxP2pAlwaysUsesNvswitch) {
  auto topo = Compiled(MakeDgxA100());
  EXPECT_EQ(Route(*topo, CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                  Endpoint::Gpu(1)),
            "GPU0 -[nvl12]-> nvswitch -[nvl12]-> GPU1")
      << "P2P must not take the equally-short PCIe-switch route";
  EXPECT_EQ(Route(*topo, CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                  Endpoint::Gpu(7)),
            "GPU0 -[nvl12]-> nvswitch -[nvl12]-> GPU7");
}

TEST_F(RoutesTest, DeviceLocalRoute) {
  auto topo = Compiled(MakeDgxA100());
  EXPECT_EQ(Route(*topo, CopyKind::kDeviceLocal, Endpoint::Gpu(3),
                  Endpoint::Gpu(3)),
            "GPU3 (device-local)");
}

TEST_F(RoutesTest, UncompiledTopologyRejected) {
  auto topo = MakeAc922();
  EXPECT_FALSE(topo->DescribeRoute(CopyKind::kHostToDevice,
                                   Endpoint::HostMemory(0), Endpoint::Gpu(0))
                   .ok());
}

}  // namespace
}  // namespace mgs::topo
