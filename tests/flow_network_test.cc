#include "sim/flow_network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/task.h"

namespace mgs::sim {
namespace {

class FlowNetworkTest : public ::testing::Test {
 protected:
  Simulator sim_;
  FlowNetwork net_{&sim_};
};

TEST_F(FlowNetworkTest, SingleFlowUsesFullCapacity) {
  ResourceId link = net_.AddResource("link", 10.0);  // 10 B/s
  double done_at = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { done_at = sim_.Now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST_F(FlowNetworkTest, ZeroByteFlowCompletesImmediately) {
  bool done = false;
  net_.StartFlow(0.0, {}, [&] { done = true; });
  EXPECT_FALSE(done) << "completion must be asynchronous";
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim_.Now(), 0.0);
}

TEST_F(FlowNetworkTest, TwoFlowsShareBottleneckFairly) {
  ResourceId link = net_.AddResource("link", 10.0);
  double a = -1, b = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { a = sim_.Now(); });
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { b = sim_.Now(); });
  sim_.Run();
  // Both at 5 B/s -> 20 s.
  EXPECT_DOUBLE_EQ(a, 20.0);
  EXPECT_DOUBLE_EQ(b, 20.0);
}

TEST_F(FlowNetworkTest, RatesRiseWhenAFlowFinishes) {
  ResourceId link = net_.AddResource("link", 10.0);
  double small = -1, large = -1;
  net_.StartFlow(50.0, {{link, 1.0}}, [&] { small = sim_.Now(); });
  net_.StartFlow(150.0, {{link, 1.0}}, [&] { large = sim_.Now(); });
  sim_.Run();
  // Share 5/5 until t=10 (small done, large has 100 left), then large runs
  // at 10 B/s for 10 more seconds.
  EXPECT_DOUBLE_EQ(small, 10.0);
  EXPECT_DOUBLE_EQ(large, 20.0);
}

TEST_F(FlowNetworkTest, LateArrivalSplitsRemainingWork) {
  ResourceId link = net_.AddResource("link", 10.0);
  double first = -1, second = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { first = sim_.Now(); });
  sim_.Schedule(5.0, [&] {
    net_.StartFlow(25.0, {{link, 1.0}}, [&] { second = sim_.Now(); });
  });
  sim_.Run();
  // First: 50 bytes by t=5, then 5 B/s. Second: 5 B/s, done at t=10.
  EXPECT_DOUBLE_EQ(second, 10.0);
  // First resumes 10 B/s with 25 left at t=10 -> done 12.5.
  EXPECT_DOUBLE_EQ(first, 12.5);
}

TEST_F(FlowNetworkTest, MultiResourcePathTakesTightestBottleneck) {
  ResourceId wide = net_.AddResource("wide", 100.0);
  ResourceId narrow = net_.AddResource("narrow", 4.0);
  double done = -1;
  net_.StartFlow(40.0, {{wide, 1.0}, {narrow, 1.0}}, [&] { done = sim_.Now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST_F(FlowNetworkTest, WeightedFlowConsumesMoreCapacity) {
  ResourceId link = net_.AddResource("link", 12.0);
  double done = -1;
  // Weight 1.5: effective bandwidth 12/1.5 = 8 B/s.
  net_.StartFlow(80.0, {{link, 1.5}}, [&] { done = sim_.Now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST_F(FlowNetworkTest, WeightedMaxMinSharing) {
  // Two flows, weights 1 and 3, on a 12 B/s link: progressive filling gives
  // each rate 3 (fair share = 12/4), so the weighted flow effectively gets
  // a quarter of the capacity per unit weight.
  ResourceId link = net_.AddResource("link", 12.0);
  double a = -1, b = -1;
  net_.StartFlow(30.0, {{link, 1.0}}, [&] { a = sim_.Now(); });
  net_.StartFlow(30.0, {{link, 3.0}}, [&] { b = sim_.Now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(a, 10.0);
  EXPECT_DOUBLE_EQ(b, 10.0);
}

TEST_F(FlowNetworkTest, UnconstrainedFlowElsewhereGetsLeftover) {
  // Flow A crosses r1 only; flows B and C cross r1 and r2. r2 is the
  // bottleneck for B and C; A picks up the slack on r1.
  ResourceId r1 = net_.AddResource("r1", 10.0);
  ResourceId r2 = net_.AddResource("r2", 4.0);
  net_.StartFlow(1000.0, {{r1, 1.0}}, [] {});
  net_.StartFlow(1000.0, {{r1, 1.0}, {r2, 1.0}}, [] {});
  net_.StartFlow(1000.0, {{r1, 1.0}, {r2, 1.0}}, [] {});
  auto rates = net_.CurrentRates();
  ASSERT_EQ(rates.size(), 3u);
  // B and C frozen at 2 (r2 share), A gets 10 - 4 = 6.
  EXPECT_DOUBLE_EQ(rates[0].second, 6.0);
  EXPECT_DOUBLE_EQ(rates[1].second, 2.0);
  EXPECT_DOUBLE_EQ(rates[2].second, 2.0);
}

TEST_F(FlowNetworkTest, DuplexResourceModelsBidirectionalOverhead) {
  // Two directions of 72 each, duplex budget 127: concurrent bidirectional
  // flows each get 63.5.
  ResourceId fwd = net_.AddResource("fwd", 72.0);
  ResourceId bwd = net_.AddResource("bwd", 72.0);
  ResourceId duplex = net_.AddResource("duplex", 127.0);
  net_.StartFlow(1000.0, {{fwd, 1.0}, {duplex, 1.0}}, [] {});
  net_.StartFlow(1000.0, {{bwd, 1.0}, {duplex, 1.0}}, [] {});
  auto rates = net_.CurrentRates();
  EXPECT_DOUBLE_EQ(rates[0].second, 63.5);
  EXPECT_DOUBLE_EQ(rates[1].second, 63.5);
}

TEST_F(FlowNetworkTest, TransferAwaitable) {
  ResourceId link = net_.AddResource("link", 10.0);
  double done_at = -1;
  std::vector<PathHop> path{{link, 1.0}};
  auto body = [&]() -> Task<void> {
    co_await net_.Transfer(100.0, path);
    done_at = sim_.Now();
  };
  CheckOk(RunToCompletion(&sim_, body()));
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST_F(FlowNetworkTest, CompletionCallbackMayStartNewFlow) {
  ResourceId link = net_.AddResource("link", 10.0);
  double second_done = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] {
    net_.StartFlow(100.0, {{link, 1.0}}, [&] { second_done = sim_.Now(); });
  });
  sim_.Run();
  EXPECT_DOUBLE_EQ(second_done, 20.0);
}

TEST_F(FlowNetworkTest, ActiveFlowCount) {
  ResourceId link = net_.AddResource("link", 10.0);
  net_.StartFlow(100.0, {{link, 1.0}}, [] {});
  net_.StartFlow(200.0, {{link, 1.0}}, [] {});
  EXPECT_EQ(net_.active_flows(), 2u);
  sim_.Run();
  EXPECT_EQ(net_.active_flows(), 0u);
}

TEST_F(FlowNetworkTest, ManyFlowsAggregateThroughput) {
  // Eight bidirectional pairs over a non-blocking fabric: per-GPU duplex
  // 530 caps each pair at 530 total (the DGX Fig. 7 structure).
  std::vector<ResourceId> duplex;
  for (int g = 0; g < 8; ++g) {
    duplex.push_back(net_.AddResource("gpu" + std::to_string(g), 530.0));
  }
  // Pairs (0,7), (1,6), (2,5), (3,4), both directions.
  for (int i = 0; i < 4; ++i) {
    int a = i, b = 7 - i;
    net_.StartFlow(1e6, {{duplex[a], 1.0}, {duplex[b], 1.0}}, [] {});
    net_.StartFlow(1e6, {{duplex[b], 1.0}, {duplex[a], 1.0}}, [] {});
  }
  double total = 0;
  for (auto& [id, rate] : net_.CurrentRates()) total += rate;
  EXPECT_NEAR(total, 8 * 265.0, 1e-6);
}

TEST_F(FlowNetworkTest, TrafficAccountingCountsWeightedBytes) {
  ResourceId link = net_.AddResource("link", 10.0);
  ResourceId heavy = net_.AddResource("heavy", 10.0);
  net_.StartFlow(100.0, {{link, 1.0}, {heavy, 2.0}}, [] {});
  sim_.Run();
  EXPECT_DOUBLE_EQ(net_.ResourceTraffic(link), 100.0);
  EXPECT_DOUBLE_EQ(net_.ResourceTraffic(heavy), 200.0);
  net_.ResetTraffic();
  EXPECT_DOUBLE_EQ(net_.ResourceTraffic(link), 0.0);
}

TEST_F(FlowNetworkTest, TrafficConservedAcrossConcurrentFlows) {
  ResourceId link = net_.AddResource("link", 10.0);
  net_.StartFlow(30.0, {{link, 1.0}}, [] {});
  net_.StartFlow(70.0, {{link, 1.0}}, [] {});
  sim_.Run();
  EXPECT_DOUBLE_EQ(net_.ResourceTraffic(link), 100.0)
      << "every byte crosses the link exactly once";
}

TEST_F(FlowNetworkTest, BusiestResourceIdentifiesBottleneck) {
  ResourceId wide = net_.AddResource("wide", 100.0);
  ResourceId narrow = net_.AddResource("narrow", 10.0);
  const double start = sim_.Now();
  net_.StartFlow(100.0, {{wide, 1.0}, {narrow, 1.0}}, [] {});
  sim_.Run();
  auto [name, utilization] = net_.BusiestResource(start);
  EXPECT_EQ(name, "narrow");
  EXPECT_NEAR(utilization, 1.0, 1e-9);
}

TEST_F(FlowNetworkTest, BusiestResourceWithoutElapsedTime) {
  net_.AddResource("r", 1.0);
  auto [name, utilization] = net_.BusiestResource(sim_.Now());
  EXPECT_EQ(name, "");
  EXPECT_DOUBLE_EQ(utilization, 0.0);
}

}  // namespace
}  // namespace mgs::sim
