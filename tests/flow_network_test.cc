#include "sim/flow_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"

namespace mgs::sim {
namespace {

class FlowNetworkTest : public ::testing::Test {
 protected:
  Simulator sim_;
  FlowNetwork net_{&sim_};
};

TEST_F(FlowNetworkTest, SingleFlowUsesFullCapacity) {
  ResourceId link = net_.AddResource("link", 10.0);  // 10 B/s
  double done_at = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { done_at = sim_.Now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST_F(FlowNetworkTest, ZeroByteFlowCompletesImmediately) {
  bool done = false;
  net_.StartFlow(0.0, {}, [&] { done = true; });
  EXPECT_FALSE(done) << "completion must be asynchronous";
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim_.Now(), 0.0);
}

TEST_F(FlowNetworkTest, TwoFlowsShareBottleneckFairly) {
  ResourceId link = net_.AddResource("link", 10.0);
  double a = -1, b = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { a = sim_.Now(); });
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { b = sim_.Now(); });
  sim_.Run();
  // Both at 5 B/s -> 20 s.
  EXPECT_DOUBLE_EQ(a, 20.0);
  EXPECT_DOUBLE_EQ(b, 20.0);
}

TEST_F(FlowNetworkTest, RatesRiseWhenAFlowFinishes) {
  ResourceId link = net_.AddResource("link", 10.0);
  double small = -1, large = -1;
  net_.StartFlow(50.0, {{link, 1.0}}, [&] { small = sim_.Now(); });
  net_.StartFlow(150.0, {{link, 1.0}}, [&] { large = sim_.Now(); });
  sim_.Run();
  // Share 5/5 until t=10 (small done, large has 100 left), then large runs
  // at 10 B/s for 10 more seconds.
  EXPECT_DOUBLE_EQ(small, 10.0);
  EXPECT_DOUBLE_EQ(large, 20.0);
}

TEST_F(FlowNetworkTest, LateArrivalSplitsRemainingWork) {
  ResourceId link = net_.AddResource("link", 10.0);
  double first = -1, second = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { first = sim_.Now(); });
  sim_.Schedule(5.0, [&] {
    net_.StartFlow(25.0, {{link, 1.0}}, [&] { second = sim_.Now(); });
  });
  sim_.Run();
  // First: 50 bytes by t=5, then 5 B/s. Second: 5 B/s, done at t=10.
  EXPECT_DOUBLE_EQ(second, 10.0);
  // First resumes 10 B/s with 25 left at t=10 -> done 12.5.
  EXPECT_DOUBLE_EQ(first, 12.5);
}

TEST_F(FlowNetworkTest, MultiResourcePathTakesTightestBottleneck) {
  ResourceId wide = net_.AddResource("wide", 100.0);
  ResourceId narrow = net_.AddResource("narrow", 4.0);
  double done = -1;
  net_.StartFlow(40.0, {{wide, 1.0}, {narrow, 1.0}}, [&] { done = sim_.Now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST_F(FlowNetworkTest, WeightedFlowConsumesMoreCapacity) {
  ResourceId link = net_.AddResource("link", 12.0);
  double done = -1;
  // Weight 1.5: effective bandwidth 12/1.5 = 8 B/s.
  net_.StartFlow(80.0, {{link, 1.5}}, [&] { done = sim_.Now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST_F(FlowNetworkTest, WeightedMaxMinSharing) {
  // Two flows, weights 1 and 3, on a 12 B/s link: progressive filling gives
  // each rate 3 (fair share = 12/4), so the weighted flow effectively gets
  // a quarter of the capacity per unit weight.
  ResourceId link = net_.AddResource("link", 12.0);
  double a = -1, b = -1;
  net_.StartFlow(30.0, {{link, 1.0}}, [&] { a = sim_.Now(); });
  net_.StartFlow(30.0, {{link, 3.0}}, [&] { b = sim_.Now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(a, 10.0);
  EXPECT_DOUBLE_EQ(b, 10.0);
}

TEST_F(FlowNetworkTest, UnconstrainedFlowElsewhereGetsLeftover) {
  // Flow A crosses r1 only; flows B and C cross r1 and r2. r2 is the
  // bottleneck for B and C; A picks up the slack on r1.
  ResourceId r1 = net_.AddResource("r1", 10.0);
  ResourceId r2 = net_.AddResource("r2", 4.0);
  net_.StartFlow(1000.0, {{r1, 1.0}}, [] {});
  net_.StartFlow(1000.0, {{r1, 1.0}, {r2, 1.0}}, [] {});
  net_.StartFlow(1000.0, {{r1, 1.0}, {r2, 1.0}}, [] {});
  auto rates = net_.CurrentRates();
  ASSERT_EQ(rates.size(), 3u);
  // B and C frozen at 2 (r2 share), A gets 10 - 4 = 6.
  EXPECT_DOUBLE_EQ(rates[0].second, 6.0);
  EXPECT_DOUBLE_EQ(rates[1].second, 2.0);
  EXPECT_DOUBLE_EQ(rates[2].second, 2.0);
}

TEST_F(FlowNetworkTest, DuplexResourceModelsBidirectionalOverhead) {
  // Two directions of 72 each, duplex budget 127: concurrent bidirectional
  // flows each get 63.5.
  ResourceId fwd = net_.AddResource("fwd", 72.0);
  ResourceId bwd = net_.AddResource("bwd", 72.0);
  ResourceId duplex = net_.AddResource("duplex", 127.0);
  net_.StartFlow(1000.0, {{fwd, 1.0}, {duplex, 1.0}}, [] {});
  net_.StartFlow(1000.0, {{bwd, 1.0}, {duplex, 1.0}}, [] {});
  auto rates = net_.CurrentRates();
  EXPECT_DOUBLE_EQ(rates[0].second, 63.5);
  EXPECT_DOUBLE_EQ(rates[1].second, 63.5);
}

TEST_F(FlowNetworkTest, TransferAwaitable) {
  ResourceId link = net_.AddResource("link", 10.0);
  double done_at = -1;
  std::vector<PathHop> path{{link, 1.0}};
  auto body = [&]() -> Task<void> {
    co_await net_.Transfer(100.0, path);
    done_at = sim_.Now();
  };
  CheckOk(RunToCompletion(&sim_, body()));
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST_F(FlowNetworkTest, CompletionCallbackMayStartNewFlow) {
  ResourceId link = net_.AddResource("link", 10.0);
  double second_done = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] {
    net_.StartFlow(100.0, {{link, 1.0}}, [&] { second_done = sim_.Now(); });
  });
  sim_.Run();
  EXPECT_DOUBLE_EQ(second_done, 20.0);
}

TEST_F(FlowNetworkTest, ActiveFlowCount) {
  ResourceId link = net_.AddResource("link", 10.0);
  net_.StartFlow(100.0, {{link, 1.0}}, [] {});
  net_.StartFlow(200.0, {{link, 1.0}}, [] {});
  EXPECT_EQ(net_.active_flows(), 2u);
  sim_.Run();
  EXPECT_EQ(net_.active_flows(), 0u);
}

TEST_F(FlowNetworkTest, ManyFlowsAggregateThroughput) {
  // Eight bidirectional pairs over a non-blocking fabric: per-GPU duplex
  // 530 caps each pair at 530 total (the DGX Fig. 7 structure).
  std::vector<ResourceId> duplex;
  for (int g = 0; g < 8; ++g) {
    duplex.push_back(net_.AddResource("gpu" + std::to_string(g), 530.0));
  }
  // Pairs (0,7), (1,6), (2,5), (3,4), both directions.
  for (int i = 0; i < 4; ++i) {
    int a = i, b = 7 - i;
    net_.StartFlow(1e6, {{duplex[a], 1.0}, {duplex[b], 1.0}}, [] {});
    net_.StartFlow(1e6, {{duplex[b], 1.0}, {duplex[a], 1.0}}, [] {});
  }
  double total = 0;
  for (auto& [id, rate] : net_.CurrentRates()) total += rate;
  EXPECT_NEAR(total, 8 * 265.0, 1e-6);
}

TEST_F(FlowNetworkTest, TrafficAccountingCountsWeightedBytes) {
  ResourceId link = net_.AddResource("link", 10.0);
  ResourceId heavy = net_.AddResource("heavy", 10.0);
  net_.StartFlow(100.0, {{link, 1.0}, {heavy, 2.0}}, [] {});
  sim_.Run();
  EXPECT_DOUBLE_EQ(net_.ResourceTraffic(link), 100.0);
  EXPECT_DOUBLE_EQ(net_.ResourceTraffic(heavy), 200.0);
  net_.ResetTraffic();
  EXPECT_DOUBLE_EQ(net_.ResourceTraffic(link), 0.0);
}

TEST_F(FlowNetworkTest, TrafficConservedAcrossConcurrentFlows) {
  ResourceId link = net_.AddResource("link", 10.0);
  net_.StartFlow(30.0, {{link, 1.0}}, [] {});
  net_.StartFlow(70.0, {{link, 1.0}}, [] {});
  sim_.Run();
  EXPECT_DOUBLE_EQ(net_.ResourceTraffic(link), 100.0)
      << "every byte crosses the link exactly once";
}

TEST_F(FlowNetworkTest, BusiestResourceIdentifiesBottleneck) {
  ResourceId wide = net_.AddResource("wide", 100.0);
  ResourceId narrow = net_.AddResource("narrow", 10.0);
  const double start = sim_.Now();
  net_.StartFlow(100.0, {{wide, 1.0}, {narrow, 1.0}}, [] {});
  sim_.Run();
  auto [name, utilization] = net_.BusiestResource(start);
  EXPECT_EQ(name, "narrow");
  EXPECT_NEAR(utilization, 1.0, 1e-9);
}

TEST_F(FlowNetworkTest, BusiestResourceWithoutElapsedTime) {
  net_.AddResource("r", 1.0);
  auto [name, utilization] = net_.BusiestResource(sim_.Now());
  EXPECT_EQ(name, "");
  EXPECT_DOUBLE_EQ(utilization, 0.0);
}

// Regression: a latency-deferred flow used to re-enter StartFlow and get a
// fresh FlowId, so the id handed back to the caller reported rate 0 forever.
TEST_F(FlowNetworkTest, FlowIdStableAcrossLatencyDeferral) {
  ResourceId link = net_.AddResource("link", 10.0);
  double done_at = -1;
  const FlowId id = net_.StartFlow(
      100.0, {{link, 1.0}},
      [&](const Status& st) {
        EXPECT_TRUE(st.ok());
        done_at = sim_.Now();
      },
      /*lead_latency=*/2.0);
  EXPECT_EQ(net_.pending_flows(), 1u);
  EXPECT_EQ(net_.active_flows(), 0u);
  EXPECT_DOUBLE_EQ(net_.FlowRate(id), 0.0)
      << "no bandwidth is contended during the latency window";
  double mid_rate = -1;
  bool listed = false;
  sim_.Schedule(5.0, [&] {
    mid_rate = net_.FlowRate(id);
    for (const auto& [fid, rate] : net_.CurrentRates()) {
      if (fid == id) listed = true;
    }
  });
  sim_.Run();
  EXPECT_DOUBLE_EQ(mid_rate, 10.0) << "the caller's id must stay attached";
  EXPECT_TRUE(listed);
  EXPECT_DOUBLE_EQ(done_at, 12.0);  // 2 s latency + 100 bytes at 10 B/s
}

// Regression: flows inside their lead-latency window were invisible to
// AbortFlowsCrossing and sailed across a dead link unharmed.
TEST_F(FlowNetworkTest, AbortDuringLatencyWindowFiresCallback) {
  ResourceId link = net_.AddResource("link", 10.0);
  Status seen = Status::OK();
  double done_at = -1;
  net_.StartFlow(
      100.0, {{link, 1.0}},
      [&](const Status& st) {
        seen = st;
        done_at = sim_.Now();
      },
      /*lead_latency=*/5.0);
  int aborted = -1;
  sim_.Schedule(1.0, [&] {
    aborted = net_.AbortFlowsCrossing(link, Status::Unavailable("link down"));
  });
  sim_.Run();
  EXPECT_EQ(aborted, 1);
  EXPECT_FALSE(seen.ok()) << "a dead link must not deliver the flow OK";
  EXPECT_DOUBLE_EQ(done_at, 1.0);
  EXPECT_EQ(net_.pending_flows(), 0u);
  EXPECT_EQ(net_.active_flows(), 0u);
}

// Regression: zero-byte flows used to complete at their start instant even
// when every resource they crossed had zero capacity (link down).
TEST_F(FlowNetworkTest, ZeroByteFlowOverDownLinkParksUntilAborted) {
  ResourceId link = net_.AddResource("link", 0.0);
  Status seen = Status::OK();
  bool fired = false;
  net_.StartFlow(0.0, {{link, 1.0}}, [&](const Status& st) {
    fired = true;
    seen = st;
  });
  sim_.Run();
  EXPECT_FALSE(fired) << "zero bytes still need a live link to arrive";
  EXPECT_EQ(net_.active_flows(), 1u);
  EXPECT_EQ(net_.AbortFlowsCrossing(link, Status::Unavailable("dead")), 1);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(seen.ok());
}

TEST_F(FlowNetworkTest, ZeroByteFlowOverLiveLinkCompletesImmediately) {
  ResourceId link = net_.AddResource("link", 10.0);
  bool fired = false;
  net_.StartFlow(0.0, {{link, 1.0}}, [&] { fired = true; });
  EXPECT_FALSE(fired) << "completion must be asynchronous";
  sim_.Run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim_.Now(), 0.0);
}

TEST_F(FlowNetworkTest, FlowParkedOnDownLinkResumesWhenCapacityReturns) {
  ResourceId link = net_.AddResource("link", 0.0);
  double done_at = -1;
  net_.StartFlow(100.0, {{link, 1.0}}, [&] { done_at = sim_.Now(); });
  sim_.Schedule(3.0, [&] { net_.SetResourceCapacity(link, 10.0); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done_at, 13.0);
}

// A settling that lands exactly on a flow's floating-point finish instant
// (fl(10/3) rounds up) crosses its last byte mid-interval: billing must use
// the clamped delivered rate, so traffic and the derived link occupancy
// never exceed what was actually carried.
TEST_F(FlowNetworkTest, MidIntervalExhaustionBillsDeliveredRate) {
  ResourceId link = net_.AddResource("link", 3.0);
  ResourceId other = net_.AddResource("other", 5.0);
  const double start = sim_.Now();
  const double finish = 10.0 / 3.0;
  bool done = false;
  // Scheduled before StartFlow, so at t == finish this settles first
  // (FIFO tie-break), before the completion event.
  sim_.Schedule(finish, [&] { net_.SetResourceCapacity(other, 50.0); });
  net_.StartFlow(10.0, {{link, 1.0}}, [&] { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_LE(net_.ResourceTraffic(link), 10.0)
      << "only delivered bytes count, not allocated rate x time";
  EXPECT_NEAR(net_.ResourceTraffic(link), 10.0, 1e-9);
  auto [name, utilization] = net_.BusiestResource(start);
  EXPECT_EQ(name, "link");
  EXPECT_LE(utilization, 1.0);
  EXPECT_DOUBLE_EQ(net_.ResourceBusySeconds(link), finish);
  EXPECT_DOUBLE_EQ(net_.ResourceSaturatedSeconds(link), finish);
}

// ---------------------------------------------------------------------------
// Randomized A/B equivalence: the incremental allocator must produce bitwise
// identical rates, completion times, and statuses to the reference
// progressive-filling oracle on arbitrary workloads.

struct ScriptFlow {
  double start;
  double bytes;
  double lead;
  std::vector<PathHop> path;
};
struct ScriptCapChange {
  double time;
  ResourceId resource;
  double capacity;
};
struct ScriptAbort {
  double time;
  ResourceId resource;
};
struct Script {
  std::vector<double> capacities;
  std::vector<ScriptFlow> flows;
  std::vector<ScriptCapChange> cap_changes;
  std::vector<ScriptAbort> aborts;
  std::vector<double> probe_times;
};

struct RunLog {
  // (script flow index, completion time, delivered OK)
  std::vector<std::tuple<std::size_t, double, bool>> completions;
  std::vector<std::vector<std::pair<FlowId, double>>> snapshots;
};

Script MakeRandomScript(std::mt19937& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  Script s;
  const int num_resources = 1 + static_cast<int>(unit(rng) * 5.999);
  for (int r = 0; r < num_resources; ++r) {
    s.capacities.push_back(unit(rng) < 0.1 ? 0.0 : 0.5 + unit(rng) * 99.5);
  }
  const int num_flows = 1 + static_cast<int>(unit(rng) * 30);
  std::vector<int> resource_ids(static_cast<std::size_t>(num_resources));
  for (int r = 0; r < num_resources; ++r) {
    resource_ids[static_cast<std::size_t>(r)] = r;
  }
  for (int f = 0; f < num_flows; ++f) {
    ScriptFlow flow;
    flow.start = unit(rng) * 20.0;
    flow.bytes = unit(rng) < 0.05 ? 0.0 : unit(rng) * 400.0;
    flow.lead = unit(rng) < 0.5 ? 0.0 : unit(rng) * 3.0;
    std::shuffle(resource_ids.begin(), resource_ids.end(), rng);
    const int hops =
        1 + static_cast<int>(unit(rng) * (std::min(num_resources, 3) - 0.001));
    for (int h = 0; h < hops; ++h) {
      const double weight =
          unit(rng) < 0.05 ? 0.0 : 0.25 + unit(rng) * 3.75;
      flow.path.push_back(
          {static_cast<ResourceId>(resource_ids[static_cast<std::size_t>(h)]),
           weight});
    }
    s.flows.push_back(std::move(flow));
  }
  const int num_changes = static_cast<int>(unit(rng) * 4);
  for (int c = 0; c < num_changes; ++c) {
    s.cap_changes.push_back(
        {unit(rng) * 25.0,
         static_cast<ResourceId>(unit(rng) * (num_resources - 0.001)),
         unit(rng) < 0.2 ? 0.0 : 0.5 + unit(rng) * 99.5});
  }
  const int num_aborts = static_cast<int>(unit(rng) * 2.5);
  for (int a = 0; a < num_aborts; ++a) {
    s.aborts.push_back(
        {unit(rng) * 25.0,
         static_cast<ResourceId>(unit(rng) * (num_resources - 0.001))});
  }
  for (int p = 0; p < 3; ++p) s.probe_times.push_back(unit(rng) * 30.0);
  return s;
}

RunLog RunScript(const Script& script, bool use_reference) {
  Simulator sim;
  FlowNetwork net(&sim);
  net.set_use_reference_allocator_for_testing(use_reference);
  RunLog log;
  for (std::size_t r = 0; r < script.capacities.size(); ++r) {
    std::string name("r");
    name += std::to_string(r);
    net.AddResource(std::move(name), script.capacities[r]);
  }
  for (std::size_t i = 0; i < script.flows.size(); ++i) {
    const ScriptFlow& f = script.flows[i];
    sim.Schedule(f.start, [&net, &sim, &log, &f, i] {
      net.StartFlow(
          f.bytes, f.path,
          [&sim, &log, i](const Status& st) {
            log.completions.emplace_back(i, sim.Now(), st.ok());
          },
          f.lead);
    });
  }
  for (const ScriptCapChange& c : script.cap_changes) {
    sim.Schedule(c.time,
                 [&net, &c] { net.SetResourceCapacity(c.resource, c.capacity); });
  }
  for (const ScriptAbort& a : script.aborts) {
    sim.Schedule(a.time, [&net, &a] {
      net.AbortFlowsCrossing(a.resource, Status::Unavailable("chaos"));
    });
  }
  for (const double t : script.probe_times) {
    sim.Schedule(t, [&net, &log] { log.snapshots.push_back(net.CurrentRates()); });
  }
  sim.Run();
  return log;
}

TEST(FlowNetworkABTest, IncrementalMatchesReferenceBitwise) {
  std::mt19937 rng(20260806u);
  for (int scenario = 0; scenario < 30; ++scenario) {
    SCOPED_TRACE("scenario " + std::to_string(scenario));
    const Script script = MakeRandomScript(rng);
    const RunLog incremental = RunScript(script, /*use_reference=*/false);
    const RunLog reference = RunScript(script, /*use_reference=*/true);
    ASSERT_EQ(incremental.completions.size(), reference.completions.size());
    for (std::size_t i = 0; i < incremental.completions.size(); ++i) {
      EXPECT_EQ(std::get<0>(incremental.completions[i]),
                std::get<0>(reference.completions[i]));
      // EXPECT_EQ on doubles: bitwise-identical completion instants.
      EXPECT_EQ(std::get<1>(incremental.completions[i]),
                std::get<1>(reference.completions[i]));
      EXPECT_EQ(std::get<2>(incremental.completions[i]),
                std::get<2>(reference.completions[i]));
    }
    ASSERT_EQ(incremental.snapshots.size(), reference.snapshots.size());
    for (std::size_t p = 0; p < incremental.snapshots.size(); ++p) {
      ASSERT_EQ(incremental.snapshots[p].size(), reference.snapshots[p].size());
      for (std::size_t f = 0; f < incremental.snapshots[p].size(); ++f) {
        EXPECT_EQ(incremental.snapshots[p][f].first,
                  reference.snapshots[p][f].first);
        EXPECT_EQ(incremental.snapshots[p][f].second,
                  reference.snapshots[p][f].second)
            << "rate diverged for flow " << incremental.snapshots[p][f].first;
      }
    }
  }
}

}  // namespace
}  // namespace mgs::sim
