#include "topo/topology.h"

#include <gtest/gtest.h>

#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace mgs::topo {
namespace {

// A toy platform: one socket, memory, two GPUs on PCIe, a direct P2P link.
std::unique_ptr<Topology> MakeToy() {
  auto topo = std::make_unique<Topology>("toy");
  const int cpu0 = topo->AddCpuSocket();
  CheckOk(topo->AttachHostMemory(cpu0, 100 * kGB, 80 * kGB, 120 * kGB));
  GpuSpec gpu;
  gpu.model = "toy-gpu";
  gpu.memory_capacity_bytes = 8 * kGB;
  gpu.memory_bandwidth = 500 * kGB;
  topo->AddGpu(gpu, cpu0);
  topo->AddGpu(gpu, cpu0);
  LinkSpec pcie;
  pcie.name = "pcie";
  pcie.cap_ab = 10 * kGB;
  pcie.cap_ba = 12 * kGB;
  pcie.duplex_cap = 18 * kGB;
  CheckOk(topo->Connect(topo->CpuNode(0), topo->GpuNode(0), pcie));
  CheckOk(topo->Connect(topo->CpuNode(0), topo->GpuNode(1), pcie));
  LinkSpec nvlink;
  nvlink.name = "nvlink";
  nvlink.cap_ab = 50 * kGB;
  CheckOk(topo->Connect(topo->GpuNode(0), topo->GpuNode(1), nvlink));
  return topo;
}

TEST(TopologyTest, BuildAndCompile) {
  auto topo = MakeToy();
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  EXPECT_TRUE(topo->compiled());
  EXPECT_GT(net.num_resources(), 0u);
}

TEST(TopologyTest, CompileTwiceFails) {
  auto topo = MakeToy();
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  EXPECT_EQ(topo->Compile(&net).code(), StatusCode::kFailedPrecondition);
}

TEST(TopologyTest, CompileWithoutMemoryFails) {
  Topology topo("bad");
  topo.AddCpuSocket();
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  EXPECT_EQ(topo.Compile(&net).code(), StatusCode::kFailedPrecondition);
}

TEST(TopologyTest, ConnectValidation) {
  Topology topo("t");
  const int cpu0 = topo.AddCpuSocket();
  LinkSpec spec;
  spec.cap_ab = kGB;
  EXPECT_EQ(topo.Connect(topo.CpuNode(cpu0), topo.CpuNode(cpu0), spec).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(topo.Connect(topo.CpuNode(cpu0), 999, spec).code(),
            StatusCode::kInvalidArgument);
  LinkSpec zero;
  zero.cap_ab = 0;
  GpuSpec gpu;
  const int g = topo.AddGpu(gpu, cpu0);
  EXPECT_EQ(topo.Connect(topo.CpuNode(cpu0), topo.GpuNode(g), zero).code(),
            StatusCode::kInvalidArgument);
}

TEST(TopologyTest, AttachMemoryTwiceFails) {
  Topology topo("t");
  const int cpu0 = topo.AddCpuSocket();
  ASSERT_TRUE(topo.AttachHostMemory(cpu0, kGB, kGB, kGB).ok());
  EXPECT_EQ(topo.AttachHostMemory(cpu0, kGB, kGB, kGB).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(topo.AttachHostMemory(7, kGB, kGB, kGB).code(),
            StatusCode::kInvalidArgument);
}

TEST(TopologyTest, LoneFlowBandwidthHtoDLimitedByPcie) {
  auto topo = MakeToy();
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  auto bw = topo->LoneFlowBandwidth(CopyKind::kHostToDevice,
                                    Endpoint::HostMemory(0), Endpoint::Gpu(0));
  ASSERT_TRUE(bw.ok());
  EXPECT_DOUBLE_EQ(*bw, 10 * kGB);
  auto back = topo->LoneFlowBandwidth(CopyKind::kDeviceToHost,
                                      Endpoint::Gpu(0),
                                      Endpoint::HostMemory(0));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(*back, 12 * kGB);
}

TEST(TopologyTest, P2pPrefersDirectLink) {
  auto topo = MakeToy();
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  auto bw = topo->LoneFlowBandwidth(CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                                    Endpoint::Gpu(1));
  ASSERT_TRUE(bw.ok());
  EXPECT_DOUBLE_EQ(*bw, 50 * kGB);
  auto direct = topo->IsDirectP2p(0, 1);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(*direct);
}

TEST(TopologyTest, DeviceLocalCopyBoundByHbm) {
  auto topo = MakeToy();
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  auto bw = topo->LoneFlowBandwidth(CopyKind::kDeviceLocal, Endpoint::Gpu(0),
                                    Endpoint::Gpu(0));
  ASSERT_TRUE(bw.ok());
  // Read + write within one HBM: 500/2 GB/s.
  EXPECT_DOUBLE_EQ(*bw, 250 * kGB);
}

TEST(TopologyTest, CopyPathKindValidation) {
  auto topo = MakeToy();
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  // HtoD with two GPUs is invalid.
  EXPECT_FALSE(topo->CopyPath(CopyKind::kHostToDevice, Endpoint::Gpu(0),
                              Endpoint::Gpu(1))
                   .ok());
  // P2P with identical GPUs is invalid.
  EXPECT_FALSE(topo->CopyPath(CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                              Endpoint::Gpu(0))
                   .ok());
  // DtoD with different GPUs is invalid.
  EXPECT_FALSE(topo->CopyPath(CopyKind::kDeviceLocal, Endpoint::Gpu(0),
                              Endpoint::Gpu(1))
                   .ok());
  // Path requests before Compile are rejected.
  auto fresh = MakeToy();
  EXPECT_EQ(fresh
                ->CopyPath(CopyKind::kHostToDevice, Endpoint::HostMemory(0),
                           Endpoint::Gpu(0))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(TopologyTest, CpuMemoryWorkPathHasMergeHops) {
  auto topo = MakeToy();
  CpuSpec cpu;
  cpu.multiway_merge_bw = 40 * kGB;
  topo->SetCpuSpec(cpu);
  sim::Simulator sim;
  sim::FlowNetwork net(&sim);
  ASSERT_TRUE(topo->Compile(&net).ok());
  auto path = topo->CpuMemoryWorkPath(0, 2.0);
  ASSERT_TRUE(path.ok());
  // read + write + duplex + merge engine.
  EXPECT_EQ(path->size(), 4u);
}

TEST(TopologyTest, DescribeMentionsEverything) {
  auto topo = MakeToy();
  const std::string desc = topo->Describe();
  EXPECT_NE(desc.find("GPU0"), std::string::npos);
  EXPECT_NE(desc.find("GPU1"), std::string::npos);
  EXPECT_NE(desc.find("toy-gpu"), std::string::npos);
  EXPECT_NE(desc.find("pcie"), std::string::npos);
}

TEST(TopologyTest, GpuSocketAssignment) {
  auto topo = MakeToy();
  EXPECT_EQ(topo->num_gpus(), 2);
  EXPECT_EQ(topo->gpu_socket(0), 0);
  EXPECT_EQ(topo->num_sockets(), 1);
}

}  // namespace
}  // namespace mgs::topo
