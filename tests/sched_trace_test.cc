// Tests for the trace-throughput machinery (ISSUE 9): the indexed-heap
// queue vs a reference model, heap-vs-legacy dispatch equivalence, batch
// coalescing (bitwise-equal splits, per-job SLO attribution), the result
// cache (parked twins, ready hits, TTL, faulted-primary promotion), and a
// mid-size open-loop trace smoke.

#include "sched/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "fault/injector.h"
#include "fault/scenario.h"
#include "topo/systems.h"

namespace mgs::sched {
namespace {

constexpr double kScale = 2e6;

std::unique_ptr<vgpu::Platform> MakeDgx() {
  return CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(),
                                        vgpu::PlatformOptions{kScale}));
}

JobSpec MakeJob(double arrival, double keys, int gpus,
                std::uint64_t seed = 0) {
  JobSpec spec;
  spec.arrival_seconds = arrival;
  spec.logical_keys = keys;
  spec.gpus = gpus;
  spec.seed = seed ? seed : static_cast<std::uint64_t>(keys) + gpus;
  return spec;
}

// ---------------------------------------------------------------------------
// Indexed heap vs a brute-force reference model
// ---------------------------------------------------------------------------

bool RefBefore(QueuePolicy policy, const JobQueue::Entry& a,
               const JobQueue::Entry& b) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return a.seq < b.seq;
    case QueuePolicy::kSjfBytes:
      if (a.bytes != b.bytes) return a.bytes < b.bytes;
      return a.seq < b.seq;
    case QueuePolicy::kPriority:
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq < b.seq;
  }
  return a.seq < b.seq;
}

TEST(QueueHeapTest, MatchesReferenceModelUnderRandomOperations) {
  for (QueuePolicy policy : {QueuePolicy::kFifo, QueuePolicy::kSjfBytes,
                             QueuePolicy::kPriority}) {
    JobQueue q(policy);
    std::vector<JobQueue::Entry> model;  // mirrors queue contents
    std::mt19937 rng(2026);
    std::uint64_t next_seq = 0;  // mirrors the queue's internal counter
    std::int64_t next_id = 0;
    auto before = [&](const JobQueue::Entry& a, const JobQueue::Entry& b) {
      return RefBefore(policy, a, b);
    };
    auto model_best = [&] {
      return std::min_element(model.begin(), model.end(), before);
    };

    for (int step = 0; step < 3000; ++step) {
      const int op = model.empty() ? 0 : static_cast<int>(rng() % 4);
      if (op == 0) {  // push
        JobQueue::Entry e;
        e.id = next_id++;
        e.bytes = static_cast<double>(rng() % 50);
        e.priority = static_cast<int>(rng() % 4);
        e.seq = next_seq++;
        q.Push(e.id, e.bytes, e.priority);
        model.push_back(e);
      } else if (op == 1) {  // pop best, sometimes restore (seq preserved)
        auto best = model_best();
        EXPECT_EQ(q.PeekBest(), best->id);
        const JobQueue::Entry popped = q.PopBest();
        EXPECT_EQ(popped.id, best->id);
        if (rng() % 2 == 0) {
          q.Restore(popped);
        } else {
          model.erase(best);
        }
      } else if (op == 2) {  // remove an arbitrary id
        const auto victim =
            model.begin() + static_cast<std::ptrdiff_t>(rng() % model.size());
        EXPECT_TRUE(q.Contains(victim->id));
        q.Remove(victim->id);
        EXPECT_FALSE(q.Contains(victim->id));
        model.erase(victim);
      } else {  // removing a non-member is a no-op
        q.Remove(next_id + 1000);
      }
      ASSERT_EQ(q.size(), model.size());
      if (step % 100 == 0) {
        auto sorted = model;
        std::sort(sorted.begin(), sorted.end(), before);
        std::vector<std::int64_t> want;
        want.reserve(sorted.size());
        for (const auto& e : sorted) want.push_back(e.id);
        EXPECT_EQ(q.DispatchOrder(), want)
            << "policy " << QueuePolicyToString(policy) << " step " << step;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Heap dispatch must be observationally identical to the legacy scan
// ---------------------------------------------------------------------------

TEST(DispatchOracleTest, HeapPathMatchesLegacyScanAcrossPolicies) {
  for (QueuePolicy policy : {QueuePolicy::kFifo, QueuePolicy::kSjfBytes,
                             QueuePolicy::kPriority}) {
    auto run = [&](bool legacy) {
      auto platform = MakeDgx();
      ServerOptions options;
      options.policy = policy;
      options.legacy_scan_dispatch = legacy;
      SortServer server(platform.get(), options);
      JobMix mix;  // default mix: 1/2/4-GPU jobs, real backlog at this rate
      server.Submit(MakePoissonWorkload(mix, 30.0, 32, /*seed=*/17));
      return CheckOk(server.Run());
    };
    const auto legacy = run(true);
    const auto heap = run(false);
    EXPECT_EQ(legacy.completion_order, heap.completion_order)
        << "policy " << QueuePolicyToString(policy);
    EXPECT_EQ(legacy.makespan, heap.makespan);  // bitwise: same event sequence
    ASSERT_EQ(legacy.jobs.size(), heap.jobs.size());
    for (std::size_t i = 0; i < legacy.jobs.size(); ++i) {
      EXPECT_EQ(legacy.jobs[i].finish, heap.jobs[i].finish);
      EXPECT_EQ(legacy.jobs[i].gpu_set, heap.jobs[i].gpu_set);
      EXPECT_EQ(legacy.jobs[i].state, heap.jobs[i].state);
    }
  }
}

// ---------------------------------------------------------------------------
// Batch coalescing
// ---------------------------------------------------------------------------

TEST(CoalesceTest, BatchedJobsSplitBitwiseEqualToSoloRuns) {
  // Four same-shape jobs; max_concurrent_jobs=1 so job 0 dispatches solo
  // and jobs 1..3 pile up behind it, then launch as one coalesced pass.
  const std::vector<double> keys = {1.0e8, 1.4e8, 1.8e8, 1.2e8};
  auto run = [&](bool coalesce) {
    auto platform = MakeDgx();
    ServerOptions options;
    options.max_concurrent_jobs = 1;
    options.coalesce.enabled = coalesce;
    options.slo_seconds = 60;
    SortServer server(platform.get(), options);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      server.Submit(
          MakeJob(0.0001 * static_cast<double>(i), keys[i], 1, 100 + i));
    }
    return CheckOk(server.Run());
  };
  const auto solo = run(false);
  const auto batched = run(true);

  ASSERT_EQ(solo.completed, 4);
  ASSERT_EQ(batched.completed, 4);
  EXPECT_EQ(solo.coalesced_batches, 0);
  EXPECT_EQ(batched.coalesced_batches, 1);
  EXPECT_EQ(batched.coalesced_jobs, 3);

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const JobRecord& b = batched.jobs[i];
    const JobRecord& s = solo.jobs[i];
    ASSERT_EQ(b.state, JobState::kDone);
    // The certificate: each member's output hashes identically to the job
    // sorted alone, so the split reproduced the solo result bitwise.
    EXPECT_NE(b.result_hash, 0u);
    EXPECT_EQ(b.result_hash, s.result_hash) << "job " << i;
    EXPECT_EQ(b.sort.keys, s.sort.keys);
    // SLO attribution stays per-job: latency decomposes against the
    // member's own arrival, not the leader's.
    EXPECT_NEAR(b.latency(), b.queue_delay() + b.service_time(), 1e-9);
    EXPECT_GE(b.queue_delay(), 0);
  }
  // Jobs 1..3 ran as one pass under leader 1: shared finish time.
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_EQ(batched.jobs[i].batch_jobs, 3) << "job " << i;
    EXPECT_EQ(batched.jobs[i].batch_leader, 1);
    EXPECT_EQ(batched.jobs[i].finish, batched.jobs[1].finish);
  }
  EXPECT_EQ(batched.jobs[0].batch_jobs, 1);
  EXPECT_DOUBLE_EQ(batched.slo_attainment, 1.0);
}

TEST(CoalesceTest, DifferentShapesNeverShareAPass) {
  // Same arrival pattern but mixed GPU counts and types: every pass stays
  // solo because no two queued jobs share a shape bucket.
  auto platform = MakeDgx();
  ServerOptions options;
  options.max_concurrent_jobs = 1;
  options.coalesce.enabled = true;
  SortServer server(platform.get(), options);
  JobSpec a = MakeJob(0, 1e8, 1, 7);
  JobSpec b = MakeJob(0.0001, 1e8, 2, 8);
  JobSpec c = MakeJob(0.0002, 1e8, 1, 9);
  c.type = DataType::kInt64;
  server.Submit(a);
  server.Submit(b);
  server.Submit(c);
  const auto report = CheckOk(server.Run());
  EXPECT_EQ(report.completed, 3);
  EXPECT_EQ(report.coalesced_batches, 0);
  for (const auto& rec : report.jobs) EXPECT_EQ(rec.batch_jobs, 1);
}

// ---------------------------------------------------------------------------
// Result cache / dedupe
// ---------------------------------------------------------------------------

TEST(DedupeTest, QueuedTwinRidesThePrimary) {
  auto platform = MakeDgx();
  ServerOptions options;
  options.max_concurrent_jobs = 1;
  options.dedupe.enabled = true;
  SortServer server(platform.get(), options);
  server.Submit(MakeJob(0, 2e8, 1, /*seed=*/41));      // id 0: filler, runs
  server.Submit(MakeJob(0.0001, 2e8, 1, /*seed=*/77)); // id 1: primary, queues
  server.Submit(MakeJob(0.0002, 2e8, 1, /*seed=*/77)); // id 2: twin, parks
  const auto report = CheckOk(server.Run());

  ASSERT_EQ(report.completed, 3);
  EXPECT_EQ(report.dedup_hits, 1);
  const JobRecord& primary = report.jobs[1];
  const JobRecord& twin = report.jobs[2];
  EXPECT_FALSE(primary.dedup_hit);
  EXPECT_TRUE(twin.dedup_hit);
  EXPECT_EQ(twin.dedup_origin, 1);
  // The twin completes the instant the primary does, with the primary's
  // exact result; its latency is pure waiting.
  EXPECT_EQ(twin.finish, primary.finish);
  EXPECT_EQ(twin.result_hash, primary.result_hash);
  EXPECT_NE(twin.result_hash, 0u);
  EXPECT_EQ(twin.sort.total_seconds, primary.sort.total_seconds);
  EXPECT_DOUBLE_EQ(twin.service_time(), 0);
  EXPECT_GT(twin.queue_delay(), 0);
}

TEST(DedupeTest, ReadyHitServesInstantlyAndTtlExpires) {
  auto run = [&](double ttl) {
    auto platform = MakeDgx();
    ServerOptions options;
    options.dedupe.enabled = true;
    options.dedupe.ttl_seconds = ttl;
    SortServer server(platform.get(), options);
    server.Submit(MakeJob(0, 2e8, 1, /*seed=*/55));
    server.Submit(MakeJob(10.0, 2e8, 1, /*seed=*/55));  // long after id 0
    return CheckOk(server.Run());
  };
  {
    const auto report = run(/*ttl=*/0);  // 0 = never expires
    ASSERT_EQ(report.completed, 2);
    EXPECT_EQ(report.dedup_hits, 1);
    const JobRecord& hit = report.jobs[1];
    EXPECT_TRUE(hit.dedup_hit);
    EXPECT_EQ(hit.dedup_origin, 0);
    EXPECT_DOUBLE_EQ(hit.latency(), 0);  // served at arrival, from cache
    EXPECT_EQ(hit.result_hash, report.jobs[0].result_hash);
  }
  {
    const auto report = run(/*ttl=*/1.0);  // stale by t=10: full re-sort
    ASSERT_EQ(report.completed, 2);
    EXPECT_EQ(report.dedup_hits, 0);
    EXPECT_FALSE(report.jobs[1].dedup_hit);
    EXPECT_GT(report.jobs[1].service_time(), 0);
    // Same dataset still sorts to the same bits.
    EXPECT_EQ(report.jobs[1].result_hash, report.jobs[0].result_hash);
  }
}

TEST(DedupeTest, FaultedPrimaryPromotesWaiterInsteadOfPoisoningIt) {
  // Find where the primary lands and how long it runs, then kill that GPU
  // mid-service. Deterministic replay makes the probe exact.
  int gpu = -1;
  double service = 0;
  {
    auto platform = MakeDgx();
    ServerOptions options;
    options.dedupe.enabled = true;
    SortServer server(platform.get(), options);
    server.Submit(MakeJob(0, 2e8, 1, /*seed=*/91));
    const auto report = CheckOk(server.Run());
    ASSERT_EQ(report.completed, 1);
    gpu = report.jobs[0].gpu_set.at(0);
    service = report.jobs[0].service_time();
    ASSERT_GT(service, 0);
  }

  auto platform = MakeDgx();
  ServerOptions options;
  options.dedupe.enabled = true;  // max_retries stays 0: first error is fatal
  SortServer server(platform.get(), options);
  fault::FaultInjector injector(
      platform.get(),
      CheckOk(fault::FaultScenario::Parse(
          "at=" + std::to_string(service / 2) + " gpu=" +
          std::to_string(gpu) + " fail")));
  injector.Arm();
  server.Submit(MakeJob(0, 2e8, 1, /*seed=*/91));       // id 0: primary
  server.Submit(MakeJob(0.0001, 2e8, 1, /*seed=*/91));  // id 1: parked twin
  const auto report = CheckOk(server.Run());

  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.dedup_hits, 0);  // the twin never reused a failed result
  EXPECT_EQ(report.jobs[0].state, JobState::kFailed);
  const JobRecord& twin = report.jobs[1];
  EXPECT_EQ(twin.state, JobState::kDone);
  EXPECT_FALSE(twin.dedup_hit);           // promoted: it sorted for itself
  EXPECT_GT(twin.service_time(), 0);
  EXPECT_NE(twin.gpu_set.at(0), gpu);     // on a healthy GPU
  EXPECT_NE(twin.result_hash, 0u);
}

// ---------------------------------------------------------------------------
// Open-loop trace smoke (the benchmark configuration, scaled down)
// ---------------------------------------------------------------------------

TEST(TraceSmokeTest, FiveThousandJobTraceCompletesDeterministically) {
  auto run = [] {
    auto platform = MakeDgx();
    ServerOptions options;
    options.policy = QueuePolicy::kSjfBytes;
    options.admission.max_queue_depth = 0;  // open loop: no shedding
    options.coalesce.enabled = true;
    options.dedupe.enabled = true;
    options.report_jobs = false;  // aggregates only, as in the trace bench
    SortServer server(platform.get(), options);
    JobMix mix;
    mix.min_keys = 5e7;
    mix.max_keys = 2e8;
    mix.gpu_choices = {1};
    mix.tenants = 8;
    mix.distinct_datasets = 256;
    server.Submit(MakePoissonWorkload(mix, 1e4, 5000, /*seed=*/3));
    return CheckOk(server.Run());
  };
  const auto a = run();
  EXPECT_EQ(a.completed, 5000);
  EXPECT_EQ(a.failed, 0);
  EXPECT_EQ(a.rejected, 0);
  EXPECT_TRUE(a.jobs.empty());  // report_jobs off
  EXPECT_EQ(a.completion_order.size(), 5000u);
  EXPECT_GT(a.dedup_hits, 0);
  EXPECT_GT(a.coalesced_jobs, 0);
  EXPECT_GT(a.makespan, 0);

  const auto b = run();
  EXPECT_EQ(a.makespan, b.makespan);  // bitwise determinism
  EXPECT_EQ(a.completion_order, b.completion_order);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.coalesced_batches, b.coalesced_batches);
}

}  // namespace
}  // namespace mgs::sched
