// Cross-cutting invariant and metamorphic tests over the whole library:
// algorithm agreement, determinism, scale-model invariance, phase
// accounting, and idempotence.

#include <gtest/gtest.h>

#include <algorithm>

#include "benchsuite/suite.h"
#include "core/radix_partition_sort.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs {
namespace {

using bench::Algo;
using bench::RunOnce;
using bench::SortConfig;

TEST(InvariantsTest, AllAlgorithmsProduceIdenticalOutput) {
  DataGenOptions gen;
  gen.seed = 77;
  const auto input = GenerateKeys<std::int32_t>(50'000, gen);
  auto expected = input;
  std::sort(expected.begin(), expected.end());

  // P2P.
  {
    auto p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
    vgpu::HostBuffer<std::int32_t> data(input);
    core::SortOptions options;
    options.gpu_set = {0, 2, 4, 6};
    CheckOk(core::P2pSort(p.get(), &data, options).status());
    EXPECT_EQ(data.vector(), expected);
  }
  // HET.
  {
    auto p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
    vgpu::HostBuffer<std::int32_t> data(input);
    core::HetOptions options;
    options.gpu_set = {0, 2, 4, 6};
    CheckOk(core::HetSort(p.get(), &data, options).status());
    EXPECT_EQ(data.vector(), expected);
  }
  // RDX.
  {
    auto p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
    vgpu::HostBuffer<std::int32_t> data(input);
    core::RadixPartitionOptions options;
    options.gpu_set = {0, 2, 4, 6};
    CheckOk(core::RadixPartitionSort(p.get(), &data, options).status());
    EXPECT_EQ(data.vector(), expected);
  }
  // CPU.
  {
    auto p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
    vgpu::HostBuffer<std::int32_t> data(input);
    CheckOk(core::CpuSortBaseline(p.get(), &data).status());
    EXPECT_EQ(data.vector(), expected);
  }
}

TEST(InvariantsTest, SimulationIsDeterministic) {
  SortConfig config;
  config.system = "ac922";
  config.algo = Algo::kP2p;
  config.gpus = 4;
  config.logical_keys = 1'000'000'000;
  const auto a = CheckOk(RunOnce(config));
  const auto b = CheckOk(RunOnce(config));
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.phases.merge, b.phases.merge);
  EXPECT_DOUBLE_EQ(a.p2p_bytes, b.p2p_bytes);
}

TEST(InvariantsTest, ScaleModelInvariance) {
  // The same logical experiment must report (nearly) the same simulated
  // duration regardless of how many actual keys represent it: pivot
  // fractions of uniform data are scale-invariant.
  auto run = [](std::int64_t actual) {
    vgpu::PlatformOptions popts;
    popts.scale = 2e9 / static_cast<double>(actual);
    auto p = CheckOk(vgpu::Platform::Create(topo::MakeAc922(), popts));
    DataGenOptions gen;
    auto keys = GenerateKeys<std::int32_t>(actual, gen);
    vgpu::HostBuffer<std::int32_t> data(std::move(keys));
    core::SortOptions options;
    options.gpu_set = {0, 1};
    return CheckOk(core::P2pSort(p.get(), &data, options)).total_seconds;
  };
  const double coarse = run(50'000);
  const double fine = run(500'000);
  EXPECT_NEAR(coarse, fine, fine * 0.02);
}

TEST(InvariantsTest, PhasesSumToTotalForP2p) {
  SortConfig config;
  config.system = "dgx-a100";
  config.algo = Algo::kP2p;
  config.gpus = 8;
  config.logical_keys = 2'000'000'000;
  const auto stats = CheckOk(RunOnce(config));
  EXPECT_NEAR(stats.phases.total(), stats.total_seconds,
              stats.total_seconds * 1e-9);
}

TEST(InvariantsTest, PhasesSumToTotalForHet) {
  SortConfig config;
  config.system = "ac922";
  config.algo = Algo::kHet2n;
  config.gpus = 2;
  config.logical_keys = 2'000'000'000;
  const auto stats = CheckOk(RunOnce(config));
  EXPECT_NEAR(stats.phases.total(), stats.total_seconds,
              stats.total_seconds * 1e-6);
}

TEST(InvariantsTest, SortingIsIdempotent) {
  DataGenOptions gen;
  auto input = GenerateKeys<std::int32_t>(40'000, gen);
  auto p1 = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  vgpu::HostBuffer<std::int32_t> data(std::move(input));
  core::SortOptions options;
  options.gpu_set = {0, 1};
  CheckOk(core::P2pSort(p1.get(), &data, options).status());
  const auto once = data.vector();
  auto p2 = CheckOk(vgpu::Platform::Create(topo::MakeAc922()));
  auto stats = CheckOk(core::P2pSort(p2.get(), &data, options));
  EXPECT_EQ(data.vector(), once);
  EXPECT_DOUBLE_EQ(stats.p2p_bytes, 0)
      << "re-sorting sorted data must skip every swap";
}

TEST(InvariantsTest, Het2nEquals3nForInMemoryData) {
  // Section 6.1: when the data fits in one chunk group, the pipelining
  // strategies do not apply and 2n == 3n (same chunk size).
  auto run = [](Algo algo) {
    SortConfig config;
    config.system = "dgx-a100";
    config.algo = algo;
    config.gpus = 4;
    config.logical_keys = 2'000'000'000;
    return CheckOk(RunOnce(config)).total_seconds;
  };
  const double two = run(Algo::kHet2n);
  const double three = run(Algo::kHet3n);
  EXPECT_NEAR(two, three, two * 0.05);
}

TEST(InvariantsTest, MoreGpusNeverSlowerOnDgx) {
  // On the DGX the paper measures monotone improvement with GPU count
  // (Fig. 14a) for P2P sort.
  double prev = 1e18;
  for (int g : {1, 2, 4, 8}) {
    SortConfig config;
    config.system = "dgx-a100";
    config.algo = Algo::kP2p;
    config.gpus = g;
    config.logical_keys = 2'000'000'000;
    const double t = CheckOk(RunOnce(config)).total_seconds;
    EXPECT_LE(t, prev * 1.05) << "g=" << g;
    prev = t;
  }
}

TEST(InvariantsTest, RightmostPivotStillSortsEverything) {
  for (auto dist : {Distribution::kUniform, Distribution::kZipf,
                    Distribution::kReverseSorted}) {
    SortConfig config;
    config.system = "ac922";
    config.algo = Algo::kP2p;
    config.gpus = 4;
    config.logical_keys = 500'000'000;
    config.distribution = dist;
    config.pivot_policy = core::PivotPolicy::kRightmost;
    // RunOnce verifies sortedness and the permutation fingerprint.
    CheckOk(RunOnce(config));
  }
}

TEST(InvariantsTest, RightmostNeverMovesFewerBytesThanLeftmost) {
  for (auto dist : {Distribution::kUniform, Distribution::kZipf,
                    Distribution::kNearlySorted}) {
    SortConfig config;
    config.system = "ac922";
    config.algo = Algo::kP2p;
    config.gpus = 2;
    config.logical_keys = 500'000'000;
    config.distribution = dist;
    config.pivot_policy = core::PivotPolicy::kLeftmost;
    const auto left = CheckOk(RunOnce(config));
    config.pivot_policy = core::PivotPolicy::kRightmost;
    const auto right = CheckOk(RunOnce(config));
    EXPECT_GE(right.p2p_bytes, left.p2p_bytes)
        << DistributionToString(dist);
  }
}

TEST(InvariantsTest, ThroughputScalesWithDataSizeLinearly) {
  // Figs. 12-14 (top): both algorithms scale linearly with the key count.
  auto run = [](std::int64_t keys) {
    SortConfig config;
    config.system = "delta-d22x";
    config.algo = Algo::kP2p;
    config.gpus = 2;
    config.logical_keys = keys;
    return CheckOk(RunOnce(config)).total_seconds;
  };
  const double t1 = run(1'000'000'000);
  const double t4 = run(4'000'000'000);
  EXPECT_NEAR(t4 / t1, 4.0, 0.4);
}

}  // namespace
}  // namespace mgs
