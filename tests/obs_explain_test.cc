// Tests for the bottleneck-attribution report (obs/explain.h): report
// construction from a hand-built registry, the rendered text block, and an
// end-to-end partial-mesh run where the report must blame the right link.

#include "obs/explain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/p2p_sort.h"
#include "obs/phase.h"
#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::obs {
namespace {

// Builds the registry an instrumented run would leave behind: 10 simulated
// seconds, two links, one two-phase sorter, two GPUs.
MetricsRegistry TwoLinkRegistry() {
  MetricsRegistry registry;
  registry.GetGauge(kSimTimeSeconds).Set(10.0);

  const Labels fast{{"link", "nvl(GPU0-GPU1)="}, {"kind", "nvlink2"}};
  const Labels slow{{"link", "pcie(CPU0-GPU0)>"}, {"kind", "pcie3"}};
  registry.GetCounter(kLinkBytes, fast).Add(8e9);
  registry.GetCounter(kLinkBusySeconds, fast).Add(4.0);
  registry.GetCounter(kLinkSaturatedSeconds, fast).Add(3.0);
  registry.GetCounter(kLinkBytes, slow).Add(1e9);
  registry.GetCounter(kLinkBusySeconds, slow).Add(6.0);
  registry.GetCounter(kLinkSaturatedSeconds, slow).Add(1.0);

  // Phase "sort": kernels dominate. Phase "merge": the nvl link dominates.
  registry
      .GetHistogram(kPhaseSeconds, {{"algo", "p2p"}, {"phase", "sort"}})
      .Observe(5.0);
  registry
      .GetCounter(kPhaseKernelBusySeconds,
                  {{"algo", "p2p"}, {"phase", "sort"}})
      .Add(4.5);
  registry
      .GetHistogram(kPhaseSeconds, {{"algo", "p2p"}, {"phase", "merge"}})
      .Observe(4.0);
  registry
      .GetCounter(kPhaseKernelBusySeconds,
                  {{"algo", "p2p"}, {"phase", "merge"}})
      .Add(1.0);
  const Labels merge_nvl{
      {"algo", "p2p"}, {"phase", "merge"}, {"link", "nvl(GPU0-GPU1)="}};
  registry.GetCounter(kPhaseLinkBusySeconds, merge_nvl).Add(3.5);
  registry.GetCounter(kPhaseLinkBytes, merge_nvl).Add(6e9);
  const Labels merge_pcie{
      {"algo", "p2p"}, {"phase", "merge"}, {"link", "pcie(CPU0-GPU0)>"}};
  registry.GetCounter(kPhaseLinkBusySeconds, merge_pcie).Add(0.5);
  registry.GetCounter(kPhaseLinkBytes, merge_pcie).Add(2e8);

  registry.GetCounter(kKernelBusySeconds, {{"gpu", "0"}}).Add(6.0);
  registry.GetCounter(kKernelBusySeconds, {{"gpu", "1"}}).Add(2.0);
  return registry;
}

TEST(ExplainTest, LinksSortBySaturationThenBusyTime) {
  const ExplainReport report = BuildExplainReport(TwoLinkRegistry());
  EXPECT_DOUBLE_EQ(report.elapsed_seconds, 10.0);
  ASSERT_EQ(report.links.size(), 2u);
  // nvl saturated 3s beats pcie saturated 1s despite less busy time.
  EXPECT_EQ(report.links[0].name, "nvl(GPU0-GPU1)=");
  EXPECT_EQ(report.links[0].kind, "nvlink2");
  EXPECT_DOUBLE_EQ(report.links[0].busy_fraction, 0.4);
  EXPECT_DOUBLE_EQ(report.links[0].saturated_fraction, 0.3);
  EXPECT_EQ(report.links[1].name, "pcie(CPU0-GPU0)>");
  EXPECT_DOUBLE_EQ(report.links[1].busy_fraction, 0.6);
}

TEST(ExplainTest, TopKLimitsTheLinkTable) {
  ExplainOptions options;
  options.top_k_links = 1;
  const ExplainReport report =
      BuildExplainReport(TwoLinkRegistry(), options);
  ASSERT_EQ(report.links.size(), 1u);
  EXPECT_EQ(report.links[0].name, "nvl(GPU0-GPU1)=");
}

TEST(ExplainTest, PhasesAttributeTransferVsCompute) {
  const ExplainReport report = BuildExplainReport(TwoLinkRegistry());
  ASSERT_EQ(report.phases.size(), 2u);
  // Execution order: sort before merge.
  EXPECT_EQ(report.phases[0].phase, "sort");
  EXPECT_EQ(report.phases[1].phase, "merge");

  const ExplainPhase& sort = report.phases[0];
  EXPECT_FALSE(sort.transfer_bound);  // kernel 4.5s, no in-phase link time
  EXPECT_DOUBLE_EQ(sort.kernel_busy_seconds, 4.5);
  EXPECT_DOUBLE_EQ(sort.kernel_busy_fraction, 0.9);

  const ExplainPhase& merge = report.phases[1];
  EXPECT_TRUE(merge.transfer_bound);  // link 3.5s > kernel 1.0s
  EXPECT_EQ(merge.bottleneck_link, "nvl(GPU0-GPU1)=");
  EXPECT_DOUBLE_EQ(merge.link_busy_seconds, 3.5);
  EXPECT_DOUBLE_EQ(merge.link_bytes, 6e9);
  EXPECT_DOUBLE_EQ(merge.link_busy_fraction, 3.5 / 4.0);
}

TEST(ExplainTest, GpusListedInNumericOrderWithBusyFractions) {
  const ExplainReport report = BuildExplainReport(TwoLinkRegistry());
  ASSERT_EQ(report.gpus.size(), 2u);
  EXPECT_EQ(report.gpus[0].gpu, "0");
  EXPECT_DOUBLE_EQ(report.gpus[0].busy_fraction, 0.6);
  EXPECT_EQ(report.gpus[1].gpu, "1");
  EXPECT_DOUBLE_EQ(report.gpus[1].busy_fraction, 0.2);
}

TEST(ExplainTest, EmptyRegistryProducesEmptyReport) {
  const ExplainReport report = BuildExplainReport(MetricsRegistry{});
  EXPECT_DOUBLE_EQ(report.elapsed_seconds, 0.0);
  EXPECT_TRUE(report.links.empty());
  EXPECT_TRUE(report.phases.empty());
  EXPECT_TRUE(report.gpus.empty());
}

TEST(ExplainRenderTest, MentionsBottlenecksAndPlaceholders) {
  const std::string text =
      RenderExplainReport(BuildExplainReport(TwoLinkRegistry()));
  EXPECT_NE(text.find("=== explain: bottleneck attribution over"),
            std::string::npos);
  EXPECT_NE(text.find("p2p/merge"), std::string::npos);
  EXPECT_NE(text.find("transfer-bound on nvl(GPU0-GPU1)="),
            std::string::npos);
  EXPECT_NE(text.find("p2p/sort"), std::string::npos);
  EXPECT_NE(text.find("compute-bound"), std::string::npos);
  EXPECT_NE(text.find("GPU0"), std::string::npos);

  const std::string empty =
      RenderExplainReport(BuildExplainReport(MetricsRegistry{}));
  EXPECT_NE(empty.find("(no link traffic recorded)"), std::string::npos);
  EXPECT_NE(empty.find("(no phase instrumentation recorded)"),
            std::string::npos);
  EXPECT_NE(empty.find("(no kernel instrumentation recorded)"),
            std::string::npos);
}

// End-to-end on the DELTA partial mesh (Section 3.1.2): NVLink pairs
// 0-1 / 0-2 / 2-3 are double-width ("nvl-x2"), pair 1-3 is single-width
// ("nvl-x1"), and pairs 1-2 / 0-3 have no NVLink at all. With the GPU
// order pinned to {2,0,1,3}, every P2P merge exchange rides NVLink
// (stage 1: 2<->0 and 1<->3; stage 2: middle chunks on 0<->1), so the
// half-bandwidth 1-3 link carries its exchange for the longest and the
// explain report must blame it for the merge phase.
TEST(ExplainEndToEndTest, DeltaPartialMeshMergeBlamesNarrowNvlink) {
  auto platform =
      CheckOk(vgpu::Platform::Create(CheckOk(topo::MakeSystem("delta-d22x"))));
  MetricsRegistry registry;
  platform->SetMetrics(&registry);

  DataGenOptions gen;
  gen.seed = 7;
  vgpu::HostBuffer<std::int32_t> data(GenerateKeys<std::int32_t>(1 << 20, gen));
  core::SortOptions options;
  options.gpu_set = {2, 0, 1, 3};
  auto stats = core::P2pSort(platform.get(), &data, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(std::is_sorted(data.vector().begin(), data.vector().end()));

  SyncFlowMetrics(&platform->network(), platform->topology(),
                  platform->simulator().Now(), &registry);
  ExplainOptions all_links;
  all_links.top_k_links = 0;  // untruncated: host links outrank NVLink
  const ExplainReport report = BuildExplainReport(registry, all_links);
  EXPECT_GT(report.elapsed_seconds, 0.0);
  ASSERT_FALSE(report.links.empty());
  ASSERT_EQ(report.gpus.size(), 4u);

  const auto merge = std::find_if(
      report.phases.begin(), report.phases.end(), [](const ExplainPhase& p) {
        return p.algo == "p2p" && p.phase == "merge";
      });
  ASSERT_NE(merge, report.phases.end());
  EXPECT_GT(merge->seconds, 0.0);
  EXPECT_TRUE(merge->transfer_bound);
  // The narrow nvl-x1 GPU1-GPU3 link is the merge-phase critical path.
  EXPECT_NE(merge->bottleneck_link.find("nvl-x1"), std::string::npos)
      << "bottleneck was " << merge->bottleneck_link;
  EXPECT_GT(merge->link_bytes, 0.0);

  // The same exchange traffic shows up in the whole-run link table.
  const auto narrow = std::find_if(
      report.links.begin(), report.links.end(), [](const ExplainLink& l) {
        return l.name.find("nvl-x1") != std::string::npos;
      });
  ASSERT_NE(narrow, report.links.end());
  EXPECT_GT(narrow->bytes, 0.0);
}

}  // namespace
}  // namespace mgs::obs
