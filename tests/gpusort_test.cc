// Tests for the single-GPU sort/merge primitives: cost model ratios
// (Table 2) and functional correctness on the simulated device.

#include "gpusort/device_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/systems.h"
#include "util/datagen.h"

namespace mgs::gpusort {
namespace {

topo::GpuSpec A100() { return topo::MakeDgxA100()->gpu_spec(0); }
topo::GpuSpec V100() { return topo::MakeAc922()->gpu_spec(0); }

TEST(CostModelTest, Table2ThrustSorts1BKeysIn36ms) {
  EXPECT_NEAR(SortDuration(A100(), SortAlgo::kThrustRadix, 1e9, 4), 36e-3,
              0.5e-3);
}

TEST(CostModelTest, Table2CubEqualsThrust) {
  EXPECT_DOUBLE_EQ(SortDuration(A100(), SortAlgo::kCubRadix, 1e9, 4),
                   SortDuration(A100(), SortAlgo::kThrustRadix, 1e9, 4));
}

TEST(CostModelTest, Table2Stehle57ms) {
  EXPECT_NEAR(SortDuration(A100(), SortAlgo::kStehleMsb, 1e9, 4), 57e-3,
              2e-3);
}

TEST(CostModelTest, Table2Mgpu200ms) {
  EXPECT_NEAR(SortDuration(A100(), SortAlgo::kMgpuMerge, 1e9, 4), 200e-3,
              5e-3);
}

TEST(CostModelTest, V100IsAlmostHalfTheA100) {
  const double a100 = SortDuration(A100(), SortAlgo::kThrustRadix, 1e9, 4);
  const double v100 = SortDuration(V100(), SortAlgo::kThrustRadix, 1e9, 4);
  EXPECT_NEAR(v100 / a100, 1.78, 0.05);
}

TEST(CostModelTest, DataTypeRatiosSection63) {
  // A100: equal byte volumes sort within ~95%: 2e9 int64 vs 4e9 int32.
  const double w32 = SortDuration(A100(), SortAlgo::kThrustRadix, 4e9, 4);
  const double w64 = SortDuration(A100(), SortAlgo::kThrustRadix, 2e9, 8);
  EXPECT_NEAR(w32 / w64, 0.95, 0.03);
  // V100: 32-bit runs take 83-88% of the 64-bit time.
  const double v32 = SortDuration(V100(), SortAlgo::kThrustRadix, 4e9, 4);
  const double v64 = SortDuration(V100(), SortAlgo::kThrustRadix, 2e9, 8);
  EXPECT_GE(v32 / v64, 0.80);
  EXPECT_LE(v32 / v64, 0.90);
}

TEST(CostModelTest, MergeIsFasterThanSort) {
  EXPECT_LT(MergeDuration(A100(), 1e9, 4),
            SortDuration(A100(), SortAlgo::kThrustRadix, 1e9, 4));
}

TEST(CostModelTest, MgpuScalesSuperlinearly) {
  const double small = SortDuration(A100(), SortAlgo::kMgpuMerge, 1e6, 4);
  const double large = SortDuration(A100(), SortAlgo::kMgpuMerge, 1e9, 4);
  EXPECT_GT(large / small, 1000.0) << "n log n growth";
}

// ---------------------------------------------------------------------------
// Functional execution on the simulated device
// ---------------------------------------------------------------------------

class DeviceSortTest : public ::testing::TestWithParam<SortAlgo> {};

TEST_P(DeviceSortTest, SortsOnDevice) {
  auto p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  auto& dev = p->device(0);
  const std::int64_t n = 50'000;
  DataGenOptions opt;
  opt.seed = 99;
  auto keys = GenerateKeys<std::int32_t>(n, opt);
  vgpu::HostBuffer<std::int32_t> h_in(keys), h_out(n);
  auto data = CheckOk(dev.Allocate<std::int32_t>(n));
  auto aux = CheckOk(dev.Allocate<std::int32_t>(n));
  auto& s = dev.stream(0);
  s.MemcpyHtoDAsync(data, 0, h_in, 0, n);
  SortAsync(s, data, 0, n, aux, GetParam());
  s.MemcpyDtoHAsync(h_out, 0, data, 0, n);
  auto root = [&]() -> sim::Task<void> { co_await s.Synchronize(); };
  CheckOk(p->Run(root()).status());
  std::sort(keys.begin(), keys.end());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), h_out.data()));
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, DeviceSortTest,
                         ::testing::Values(SortAlgo::kThrustRadix,
                                           SortAlgo::kCubRadix,
                                           SortAlgo::kStehleMsb,
                                           SortAlgo::kMgpuMerge),
                         [](const auto& info) {
                           return SortAlgoToString(info.param);
                         });

TEST(DeviceSortTest, SortDurationUsesComputeQueue) {
  auto p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100(),
                                          vgpu::PlatformOptions{1e6}));
  auto& dev = p->device(0);
  auto data = CheckOk(dev.Allocate<std::int32_t>(1000));
  auto aux = CheckOk(dev.Allocate<std::int32_t>(1000));
  auto& s = dev.stream(0);
  // 1e9 logical keys: 36 ms on the A100.
  SortAsync(s, data, 0, 1000, aux);
  auto root = [&]() -> sim::Task<void> { co_await s.Synchronize(); };
  EXPECT_NEAR(CheckOk(p->Run(root())), 36e-3, 1e-3);
}

TEST(DeviceMergeTest, MergesTwoRunsOnDevice) {
  auto p = CheckOk(vgpu::Platform::Create(topo::MakeDgxA100()));
  auto& dev = p->device(0);
  const std::int64_t n = 10'000;
  DataGenOptions opt;
  auto keys = GenerateKeys<std::int32_t>(n, opt);
  std::sort(keys.begin(), keys.begin() + n / 4);           // run A
  std::sort(keys.begin() + n / 4, keys.end());             // run B
  vgpu::HostBuffer<std::int32_t> h_in(keys), h_out(n);
  auto data = CheckOk(dev.Allocate<std::int32_t>(n));
  auto aux = CheckOk(dev.Allocate<std::int32_t>(n));
  auto& s = dev.stream(0);
  s.MemcpyHtoDAsync(data, 0, h_in, 0, n);
  MergeLocalAsync(s, aux, 0, data, 0, n / 4, n / 4, n - n / 4);
  s.MemcpyDtoHAsync(h_out, 0, aux, 0, n);
  auto root = [&]() -> sim::Task<void> { co_await s.Synchronize(); };
  CheckOk(p->Run(root()).status());
  std::sort(keys.begin(), keys.end());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), h_out.data()));
}

}  // namespace
}  // namespace mgs::gpusort
