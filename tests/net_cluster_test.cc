// Cluster fabric construction: N appended nodes, NICs, leaf/spine wiring,
// oversubscription arithmetic, fault-plan-compatible link names, and route
// sanity across the compiled flow network.

#include "net/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "sim/flow_network.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "util/units.h"
#include "vgpu/platform.h"

namespace mgs::net {
namespace {

using topo::CopyKind;
using topo::Endpoint;

ClusterOptions SmallDgx(int nodes, double oversub) {
  ClusterOptions options;
  options.node_system = "dgx-a100";
  options.nodes = nodes;
  options.nodes_per_rack = 2;
  options.oversubscription = oversub;
  return options;
}

TEST(ClusterTest, BuildsAndCompiles) {
  auto cluster = BuildCluster(SmallDgx(4, 2.0));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  EXPECT_EQ(cluster->info.nodes(), 4);
  EXPECT_EQ(cluster->info.gpus_per_node(), 8);
  EXPECT_EQ(cluster->info.total_gpus(), 32);
  EXPECT_EQ(cluster->info.racks(), 2);
  EXPECT_EQ(cluster->topology->num_gpus(), 32);
  EXPECT_EQ(cluster->topology->num_sockets(), 8);

  // Compile validates MEM0 -> every GPU and all GPU pairs P2P, i.e. the
  // fabric makes every cross-node route exist.
  sim::Simulator simulator;
  sim::FlowNetwork net(&simulator);
  ASSERT_TRUE(cluster->topology->Compile(&net).ok());
}

TEST(ClusterTest, InfoGeometry) {
  auto cluster = BuildCluster(SmallDgx(5, 1.0));
  ASSERT_TRUE(cluster.ok());
  const ClusterInfo& info = cluster->info;
  EXPECT_EQ(info.racks(), 3);  // 2 + 2 + 1
  EXPECT_EQ(info.NodeOfGpu(0), 0);
  EXPECT_EQ(info.NodeOfGpu(7), 0);
  EXPECT_EQ(info.NodeOfGpu(8), 1);
  EXPECT_EQ(info.NodeOfGpu(39), 4);
  EXPECT_EQ(info.RackOfNode(0), 0);
  EXPECT_EQ(info.RackOfNode(3), 1);
  EXPECT_EQ(info.RackOfNode(4), 2);
  EXPECT_EQ(info.FirstGpu(2), 16);
  EXPECT_EQ(info.FirstSocket(2), 4);
  EXPECT_EQ(info.NodeGpus(1), (std::vector<int>{8, 9, 10, 11, 12, 13, 14,
                                                15}));
}

TEST(ClusterTest, FabricLinkNamesExist) {
  auto cluster = BuildCluster(SmallDgx(4, 2.0));
  ASSERT_TRUE(cluster.ok());
  const auto names = cluster->topology->LinkNames();
  const auto has_link = [&](const std::string& bare) {
    return std::any_of(names.begin(), names.end(),
                       [&](const std::string& qualified) {
                         return qualified.rfind(bare + "(", 0) == 0;
                       });
  };
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(has_link(ClusterInfo::NicLinkName(i))) << "nic" << i;
  }
  EXPECT_TRUE(has_link(ClusterInfo::LeafLinkName(0)));
  EXPECT_TRUE(has_link(ClusterInfo::LeafLinkName(1)));
  EXPECT_TRUE(has_link(ClusterInfo::SpineLinkName(0)));
  EXPECT_TRUE(has_link(ClusterInfo::SpineLinkName(1)));
}

TEST(ClusterTest, CrossNodeRoutesUseTheFabric) {
  auto cluster = BuildCluster(SmallDgx(4, 1.0));
  ASSERT_TRUE(cluster.ok());
  sim::Simulator simulator;
  sim::FlowNetwork net(&simulator);
  ASSERT_TRUE(cluster->topology->Compile(&net).ok());

  // Same-rack cross-node route goes NIC -> leaf -> NIC, no spine.
  auto same_rack = cluster->topology->DescribeRoute(
      CopyKind::kPeerToPeer, Endpoint::Gpu(0), Endpoint::Gpu(8));
  ASSERT_TRUE(same_rack.ok());
  EXPECT_NE(same_rack->find("nic0"), std::string::npos) << *same_rack;
  EXPECT_NE(same_rack->find("leaf0"), std::string::npos) << *same_rack;
  EXPECT_EQ(same_rack->find("spine"), std::string::npos) << *same_rack;

  // Cross-rack route crosses the spine.
  auto cross_rack = cluster->topology->DescribeRoute(
      CopyKind::kPeerToPeer, Endpoint::Gpu(0), Endpoint::Gpu(16));
  ASSERT_TRUE(cross_rack.ok());
  EXPECT_NE(cross_rack->find("spine0"), std::string::npos) << *cross_rack;
  EXPECT_NE(cross_rack->find("spine1"), std::string::npos) << *cross_rack;

  // Intra-node routes stay off the fabric entirely.
  auto local = cluster->topology->DescribeRoute(
      CopyKind::kPeerToPeer, Endpoint::Gpu(0), Endpoint::Gpu(3));
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->find("nic"), std::string::npos) << *local;
}

TEST(ClusterTest, OversubscriptionCapsTheSpine) {
  // With full bisection, cross-rack single-flow bandwidth equals the NIC
  // rate; 4:1 oversubscription drops it to the spine share.
  auto full = BuildCluster(SmallDgx(4, 1.0));
  auto oversub = BuildCluster(SmallDgx(4, 4.0));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(oversub.ok());
  sim::Simulator sim_a, sim_b;
  sim::FlowNetwork net_a(&sim_a), net_b(&sim_b);
  ASSERT_TRUE(full->topology->Compile(&net_a).ok());
  ASSERT_TRUE(oversub->topology->Compile(&net_b).ok());

  const auto lone = [](const Cluster& c, int a, int b) {
    return *c.topology->LoneFlowBandwidth(CopyKind::kPeerToPeer,
                                          Endpoint::Gpu(a),
                                          Endpoint::Gpu(b));
  };
  const double nic_bw = full->info.options().nic_bandwidth;
  // Same rack: NIC-limited either way.
  EXPECT_DOUBLE_EQ(lone(*full, 0, 8), nic_bw);
  EXPECT_DOUBLE_EQ(lone(*oversub, 0, 8), nic_bw);
  // Cross rack: spine-limited only when oversubscribed.
  EXPECT_DOUBLE_EQ(lone(*full, 0, 16), nic_bw);
  EXPECT_DOUBLE_EQ(lone(*oversub, 0, 16), 2 * nic_bw / 4.0);
}

TEST(ClusterTest, WorksForEveryPreset) {
  for (const std::string& system : {"ac922", "delta-d22x", "dgx-a100"}) {
    ClusterOptions options;
    options.node_system = system;
    options.nodes = 2;
    auto cluster = BuildCluster(options);
    ASSERT_TRUE(cluster.ok()) << system << ": "
                              << cluster.status().ToString();
    sim::Simulator simulator;
    sim::FlowNetwork net(&simulator);
    ASSERT_TRUE(cluster->topology->Compile(&net).ok()) << system;
    EXPECT_EQ(cluster->info.total_gpus(), cluster->topology->num_gpus());
  }
}

TEST(ClusterTest, NicFaultSeversOneNode) {
  auto cluster = BuildCluster(SmallDgx(4, 1.0));
  ASSERT_TRUE(cluster.ok());
  auto platform = vgpu::Platform::Create(std::move(cluster->topology));
  ASSERT_TRUE(platform.ok());
  topo::Topology& topology = (*platform)->mutable_topology();

  ASSERT_TRUE(
      topology.SetLinkUp("nic1", false, &(*platform)->network()).ok());
  // Node 1 is unreachable from other nodes...
  EXPECT_FALSE(topology
                   .CopyPath(CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                             Endpoint::Gpu(8))
                   .ok());
  // ...but its intra-node routes and the rest of the fabric still work.
  EXPECT_TRUE(topology
                  .CopyPath(CopyKind::kPeerToPeer, Endpoint::Gpu(8),
                            Endpoint::Gpu(9))
                  .ok());
  EXPECT_TRUE(topology
                  .CopyPath(CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                            Endpoint::Gpu(16))
                  .ok());
  ASSERT_TRUE(
      topology.SetLinkUp("nic1", true, &(*platform)->network()).ok());
  EXPECT_TRUE(topology
                  .CopyPath(CopyKind::kPeerToPeer, Endpoint::Gpu(0),
                            Endpoint::Gpu(8))
                  .ok());
}

TEST(ClusterTest, RejectsBadOptions) {
  ClusterOptions options;
  options.nodes = 0;
  EXPECT_FALSE(BuildCluster(options).ok());
  options = ClusterOptions();
  options.oversubscription = 0.5;
  EXPECT_FALSE(BuildCluster(options).ok());
  options = ClusterOptions();
  options.node_system = "no-such-system";
  EXPECT_FALSE(BuildCluster(options).ok());
  options = ClusterOptions();
  options.nodes_per_rack = 0;
  EXPECT_FALSE(BuildCluster(options).ok());
}

}  // namespace
}  // namespace mgs::net
